file(REMOVE_RECURSE
  "CMakeFiles/topo_test.dir/topo/domains_test.cc.o"
  "CMakeFiles/topo_test.dir/topo/domains_test.cc.o.d"
  "CMakeFiles/topo_test.dir/topo/topology_test.cc.o"
  "CMakeFiles/topo_test.dir/topo/topology_test.cc.o.d"
  "topo_test"
  "topo_test.pdb"
  "topo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
