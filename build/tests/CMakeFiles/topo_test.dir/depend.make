# Empty dependencies file for topo_test.
# This may be replaced when dependencies are built.
