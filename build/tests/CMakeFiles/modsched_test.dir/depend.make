# Empty dependencies file for modsched_test.
# This may be replaced when dependencies are built.
