file(REMOVE_RECURSE
  "CMakeFiles/modsched_test.dir/modsched/modular_test.cc.o"
  "CMakeFiles/modsched_test.dir/modsched/modular_test.cc.o.d"
  "modsched_test"
  "modsched_test.pdb"
  "modsched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modsched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
