# Empty compiler generated dependencies file for fig3_overload_wakeup.
# This may be replaced when dependencies are built.
