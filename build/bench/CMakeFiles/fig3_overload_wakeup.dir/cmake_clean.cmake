file(REMOVE_RECURSE
  "CMakeFiles/fig3_overload_wakeup.dir/fig3_overload_wakeup.cc.o"
  "CMakeFiles/fig3_overload_wakeup.dir/fig3_overload_wakeup.cc.o.d"
  "fig3_overload_wakeup"
  "fig3_overload_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_overload_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
