# Empty dependencies file for table3_missing_domains.
# This may be replaced when dependencies are built.
