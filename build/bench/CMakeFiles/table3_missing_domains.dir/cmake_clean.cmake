file(REMOVE_RECURSE
  "CMakeFiles/table3_missing_domains.dir/table3_missing_domains.cc.o"
  "CMakeFiles/table3_missing_domains.dir/table3_missing_domains.cc.o.d"
  "table3_missing_domains"
  "table3_missing_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_missing_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
