# Empty compiler generated dependencies file for ablation_tunables.
# This may be replaced when dependencies are built.
