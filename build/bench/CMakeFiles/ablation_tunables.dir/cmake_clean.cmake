file(REMOVE_RECURSE
  "CMakeFiles/ablation_tunables.dir/ablation_tunables.cc.o"
  "CMakeFiles/ablation_tunables.dir/ablation_tunables.cc.o.d"
  "ablation_tunables"
  "ablation_tunables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tunables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
