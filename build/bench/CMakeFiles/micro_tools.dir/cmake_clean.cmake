file(REMOVE_RECURSE
  "CMakeFiles/micro_tools.dir/micro_tools.cc.o"
  "CMakeFiles/micro_tools.dir/micro_tools.cc.o.d"
  "micro_tools"
  "micro_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
