# Empty dependencies file for micro_tools.
# This may be replaced when dependencies are built.
