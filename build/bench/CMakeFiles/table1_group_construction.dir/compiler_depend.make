# Empty compiler generated dependencies file for table1_group_construction.
# This may be replaced when dependencies are built.
