file(REMOVE_RECURSE
  "CMakeFiles/table1_group_construction.dir/table1_group_construction.cc.o"
  "CMakeFiles/table1_group_construction.dir/table1_group_construction.cc.o.d"
  "table1_group_construction"
  "table1_group_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_group_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
