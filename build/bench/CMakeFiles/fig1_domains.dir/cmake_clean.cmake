file(REMOVE_RECURSE
  "CMakeFiles/fig1_domains.dir/fig1_domains.cc.o"
  "CMakeFiles/fig1_domains.dir/fig1_domains.cc.o.d"
  "fig1_domains"
  "fig1_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
