# Empty dependencies file for fig1_domains.
# This may be replaced when dependencies are built.
