
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_domains.cc" "bench/CMakeFiles/fig1_domains.dir/fig1_domains.cc.o" "gcc" "bench/CMakeFiles/fig1_domains.dir/fig1_domains.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/wc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/wc_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/wc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/wc_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
