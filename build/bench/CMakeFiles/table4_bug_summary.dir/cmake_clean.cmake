file(REMOVE_RECURSE
  "CMakeFiles/table4_bug_summary.dir/table4_bug_summary.cc.o"
  "CMakeFiles/table4_bug_summary.dir/table4_bug_summary.cc.o.d"
  "table4_bug_summary"
  "table4_bug_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bug_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
