# Empty dependencies file for table4_bug_summary.
# This may be replaced when dependencies are built.
