# Empty compiler generated dependencies file for micro_sched_ops.
# This may be replaced when dependencies are built.
