file(REMOVE_RECURSE
  "CMakeFiles/micro_sched_ops.dir/micro_sched_ops.cc.o"
  "CMakeFiles/micro_sched_ops.dir/micro_sched_ops.cc.o.d"
  "micro_sched_ops"
  "micro_sched_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sched_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
