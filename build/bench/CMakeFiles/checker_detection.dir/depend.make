# Empty dependencies file for checker_detection.
# This may be replaced when dependencies are built.
