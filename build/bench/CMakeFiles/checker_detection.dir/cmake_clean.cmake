file(REMOVE_RECURSE
  "CMakeFiles/checker_detection.dir/checker_detection.cc.o"
  "CMakeFiles/checker_detection.dir/checker_detection.cc.o.d"
  "checker_detection"
  "checker_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
