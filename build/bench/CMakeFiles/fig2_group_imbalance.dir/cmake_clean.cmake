file(REMOVE_RECURSE
  "CMakeFiles/fig2_group_imbalance.dir/fig2_group_imbalance.cc.o"
  "CMakeFiles/fig2_group_imbalance.dir/fig2_group_imbalance.cc.o.d"
  "fig2_group_imbalance"
  "fig2_group_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_group_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
