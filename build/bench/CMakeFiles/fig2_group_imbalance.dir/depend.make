# Empty dependencies file for fig2_group_imbalance.
# This may be replaced when dependencies are built.
