file(REMOVE_RECURSE
  "CMakeFiles/table2_tpch_fixes.dir/table2_tpch_fixes.cc.o"
  "CMakeFiles/table2_tpch_fixes.dir/table2_tpch_fixes.cc.o.d"
  "table2_tpch_fixes"
  "table2_tpch_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tpch_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
