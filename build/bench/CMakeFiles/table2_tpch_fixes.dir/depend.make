# Empty dependencies file for table2_tpch_fixes.
# This may be replaced when dependencies are built.
