file(REMOVE_RECURSE
  "CMakeFiles/fig5_missing_domains.dir/fig5_missing_domains.cc.o"
  "CMakeFiles/fig5_missing_domains.dir/fig5_missing_domains.cc.o.d"
  "fig5_missing_domains"
  "fig5_missing_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_missing_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
