# Empty dependencies file for fig5_missing_domains.
# This may be replaced when dependencies are built.
