file(REMOVE_RECURSE
  "CMakeFiles/wc_workloads.dir/make_r.cc.o"
  "CMakeFiles/wc_workloads.dir/make_r.cc.o.d"
  "CMakeFiles/wc_workloads.dir/nas.cc.o"
  "CMakeFiles/wc_workloads.dir/nas.cc.o.d"
  "CMakeFiles/wc_workloads.dir/tpch.cc.o"
  "CMakeFiles/wc_workloads.dir/tpch.cc.o.d"
  "CMakeFiles/wc_workloads.dir/transient.cc.o"
  "CMakeFiles/wc_workloads.dir/transient.cc.o.d"
  "libwc_workloads.a"
  "libwc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
