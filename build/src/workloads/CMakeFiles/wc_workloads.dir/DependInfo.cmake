
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/make_r.cc" "src/workloads/CMakeFiles/wc_workloads.dir/make_r.cc.o" "gcc" "src/workloads/CMakeFiles/wc_workloads.dir/make_r.cc.o.d"
  "/root/repo/src/workloads/nas.cc" "src/workloads/CMakeFiles/wc_workloads.dir/nas.cc.o" "gcc" "src/workloads/CMakeFiles/wc_workloads.dir/nas.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/workloads/CMakeFiles/wc_workloads.dir/tpch.cc.o" "gcc" "src/workloads/CMakeFiles/wc_workloads.dir/tpch.cc.o.d"
  "/root/repo/src/workloads/transient.cc" "src/workloads/CMakeFiles/wc_workloads.dir/transient.cc.o" "gcc" "src/workloads/CMakeFiles/wc_workloads.dir/transient.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/wc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/wc_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
