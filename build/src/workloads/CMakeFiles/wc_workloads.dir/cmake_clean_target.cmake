file(REMOVE_RECURSE
  "libwc_workloads.a"
)
