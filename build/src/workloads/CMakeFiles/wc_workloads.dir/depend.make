# Empty dependencies file for wc_workloads.
# This may be replaced when dependencies are built.
