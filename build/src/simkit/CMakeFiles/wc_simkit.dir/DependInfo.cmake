
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkit/cpuset.cc" "src/simkit/CMakeFiles/wc_simkit.dir/cpuset.cc.o" "gcc" "src/simkit/CMakeFiles/wc_simkit.dir/cpuset.cc.o.d"
  "/root/repo/src/simkit/event_queue.cc" "src/simkit/CMakeFiles/wc_simkit.dir/event_queue.cc.o" "gcc" "src/simkit/CMakeFiles/wc_simkit.dir/event_queue.cc.o.d"
  "/root/repo/src/simkit/log.cc" "src/simkit/CMakeFiles/wc_simkit.dir/log.cc.o" "gcc" "src/simkit/CMakeFiles/wc_simkit.dir/log.cc.o.d"
  "/root/repo/src/simkit/rng.cc" "src/simkit/CMakeFiles/wc_simkit.dir/rng.cc.o" "gcc" "src/simkit/CMakeFiles/wc_simkit.dir/rng.cc.o.d"
  "/root/repo/src/simkit/time.cc" "src/simkit/CMakeFiles/wc_simkit.dir/time.cc.o" "gcc" "src/simkit/CMakeFiles/wc_simkit.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
