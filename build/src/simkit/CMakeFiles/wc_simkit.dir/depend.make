# Empty dependencies file for wc_simkit.
# This may be replaced when dependencies are built.
