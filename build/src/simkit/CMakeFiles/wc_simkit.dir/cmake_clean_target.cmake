file(REMOVE_RECURSE
  "libwc_simkit.a"
)
