file(REMOVE_RECURSE
  "CMakeFiles/wc_simkit.dir/cpuset.cc.o"
  "CMakeFiles/wc_simkit.dir/cpuset.cc.o.d"
  "CMakeFiles/wc_simkit.dir/event_queue.cc.o"
  "CMakeFiles/wc_simkit.dir/event_queue.cc.o.d"
  "CMakeFiles/wc_simkit.dir/log.cc.o"
  "CMakeFiles/wc_simkit.dir/log.cc.o.d"
  "CMakeFiles/wc_simkit.dir/rng.cc.o"
  "CMakeFiles/wc_simkit.dir/rng.cc.o.d"
  "CMakeFiles/wc_simkit.dir/time.cc.o"
  "CMakeFiles/wc_simkit.dir/time.cc.o.d"
  "libwc_simkit.a"
  "libwc_simkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
