file(REMOVE_RECURSE
  "CMakeFiles/wc_tools.dir/heatmap.cc.o"
  "CMakeFiles/wc_tools.dir/heatmap.cc.o.d"
  "CMakeFiles/wc_tools.dir/profiler.cc.o"
  "CMakeFiles/wc_tools.dir/profiler.cc.o.d"
  "CMakeFiles/wc_tools.dir/recorder.cc.o"
  "CMakeFiles/wc_tools.dir/recorder.cc.o.d"
  "CMakeFiles/wc_tools.dir/sanity_checker.cc.o"
  "CMakeFiles/wc_tools.dir/sanity_checker.cc.o.d"
  "CMakeFiles/wc_tools.dir/trace_io.cc.o"
  "CMakeFiles/wc_tools.dir/trace_io.cc.o.d"
  "libwc_tools.a"
  "libwc_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
