file(REMOVE_RECURSE
  "libwc_tools.a"
)
