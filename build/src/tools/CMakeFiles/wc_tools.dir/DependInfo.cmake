
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/heatmap.cc" "src/tools/CMakeFiles/wc_tools.dir/heatmap.cc.o" "gcc" "src/tools/CMakeFiles/wc_tools.dir/heatmap.cc.o.d"
  "/root/repo/src/tools/profiler.cc" "src/tools/CMakeFiles/wc_tools.dir/profiler.cc.o" "gcc" "src/tools/CMakeFiles/wc_tools.dir/profiler.cc.o.d"
  "/root/repo/src/tools/recorder.cc" "src/tools/CMakeFiles/wc_tools.dir/recorder.cc.o" "gcc" "src/tools/CMakeFiles/wc_tools.dir/recorder.cc.o.d"
  "/root/repo/src/tools/sanity_checker.cc" "src/tools/CMakeFiles/wc_tools.dir/sanity_checker.cc.o" "gcc" "src/tools/CMakeFiles/wc_tools.dir/sanity_checker.cc.o.d"
  "/root/repo/src/tools/trace_io.cc" "src/tools/CMakeFiles/wc_tools.dir/trace_io.cc.o" "gcc" "src/tools/CMakeFiles/wc_tools.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/wc_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/wc_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
