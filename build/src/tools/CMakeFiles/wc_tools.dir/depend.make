# Empty dependencies file for wc_tools.
# This may be replaced when dependencies are built.
