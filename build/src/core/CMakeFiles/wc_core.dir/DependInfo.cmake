
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cfs_rq.cc" "src/core/CMakeFiles/wc_core.dir/cfs_rq.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/cfs_rq.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/wc_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/features.cc.o.d"
  "/root/repo/src/core/pelt.cc" "src/core/CMakeFiles/wc_core.dir/pelt.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/pelt.cc.o.d"
  "/root/repo/src/core/rbtree.cc" "src/core/CMakeFiles/wc_core.dir/rbtree.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/rbtree.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/wc_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/scheduler_balance.cc" "src/core/CMakeFiles/wc_core.dir/scheduler_balance.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/scheduler_balance.cc.o.d"
  "/root/repo/src/core/scheduler_wakeup.cc" "src/core/CMakeFiles/wc_core.dir/scheduler_wakeup.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/scheduler_wakeup.cc.o.d"
  "/root/repo/src/core/weights.cc" "src/core/CMakeFiles/wc_core.dir/weights.cc.o" "gcc" "src/core/CMakeFiles/wc_core.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/wc_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/wc_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
