# Empty compiler generated dependencies file for wc_core.
# This may be replaced when dependencies are built.
