file(REMOVE_RECURSE
  "CMakeFiles/wc_core.dir/cfs_rq.cc.o"
  "CMakeFiles/wc_core.dir/cfs_rq.cc.o.d"
  "CMakeFiles/wc_core.dir/features.cc.o"
  "CMakeFiles/wc_core.dir/features.cc.o.d"
  "CMakeFiles/wc_core.dir/pelt.cc.o"
  "CMakeFiles/wc_core.dir/pelt.cc.o.d"
  "CMakeFiles/wc_core.dir/rbtree.cc.o"
  "CMakeFiles/wc_core.dir/rbtree.cc.o.d"
  "CMakeFiles/wc_core.dir/scheduler.cc.o"
  "CMakeFiles/wc_core.dir/scheduler.cc.o.d"
  "CMakeFiles/wc_core.dir/scheduler_balance.cc.o"
  "CMakeFiles/wc_core.dir/scheduler_balance.cc.o.d"
  "CMakeFiles/wc_core.dir/scheduler_wakeup.cc.o"
  "CMakeFiles/wc_core.dir/scheduler_wakeup.cc.o.d"
  "CMakeFiles/wc_core.dir/weights.cc.o"
  "CMakeFiles/wc_core.dir/weights.cc.o.d"
  "libwc_core.a"
  "libwc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
