file(REMOVE_RECURSE
  "libwc_core.a"
)
