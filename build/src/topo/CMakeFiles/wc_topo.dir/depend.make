# Empty dependencies file for wc_topo.
# This may be replaced when dependencies are built.
