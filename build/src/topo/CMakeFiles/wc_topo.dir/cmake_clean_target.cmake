file(REMOVE_RECURSE
  "libwc_topo.a"
)
