file(REMOVE_RECURSE
  "CMakeFiles/wc_topo.dir/domains.cc.o"
  "CMakeFiles/wc_topo.dir/domains.cc.o.d"
  "CMakeFiles/wc_topo.dir/topology.cc.o"
  "CMakeFiles/wc_topo.dir/topology.cc.o.d"
  "libwc_topo.a"
  "libwc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
