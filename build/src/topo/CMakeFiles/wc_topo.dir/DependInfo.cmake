
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/domains.cc" "src/topo/CMakeFiles/wc_topo.dir/domains.cc.o" "gcc" "src/topo/CMakeFiles/wc_topo.dir/domains.cc.o.d"
  "/root/repo/src/topo/topology.cc" "src/topo/CMakeFiles/wc_topo.dir/topology.cc.o" "gcc" "src/topo/CMakeFiles/wc_topo.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/wc_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
