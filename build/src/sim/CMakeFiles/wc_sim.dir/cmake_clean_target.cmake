file(REMOVE_RECURSE
  "libwc_sim.a"
)
