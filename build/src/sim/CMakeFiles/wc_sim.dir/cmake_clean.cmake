file(REMOVE_RECURSE
  "CMakeFiles/wc_sim.dir/simulator.cc.o"
  "CMakeFiles/wc_sim.dir/simulator.cc.o.d"
  "libwc_sim.a"
  "libwc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
