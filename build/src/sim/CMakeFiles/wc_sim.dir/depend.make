# Empty dependencies file for wc_sim.
# This may be replaced when dependencies are built.
