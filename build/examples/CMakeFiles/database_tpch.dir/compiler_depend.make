# Empty compiler generated dependencies file for database_tpch.
# This may be replaced when dependencies are built.
