file(REMOVE_RECURSE
  "CMakeFiles/database_tpch.dir/database_tpch.cpp.o"
  "CMakeFiles/database_tpch.dir/database_tpch.cpp.o.d"
  "database_tpch"
  "database_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
