# Empty dependencies file for sanity_watchdog.
# This may be replaced when dependencies are built.
