file(REMOVE_RECURSE
  "CMakeFiles/sanity_watchdog.dir/sanity_watchdog.cpp.o"
  "CMakeFiles/sanity_watchdog.dir/sanity_watchdog.cpp.o.d"
  "sanity_watchdog"
  "sanity_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sanity_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
