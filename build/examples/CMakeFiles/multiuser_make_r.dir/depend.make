# Empty dependencies file for multiuser_make_r.
# This may be replaced when dependencies are built.
