file(REMOVE_RECURSE
  "CMakeFiles/multiuser_make_r.dir/multiuser_make_r.cpp.o"
  "CMakeFiles/multiuser_make_r.dir/multiuser_make_r.cpp.o.d"
  "multiuser_make_r"
  "multiuser_make_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_make_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
