file(REMOVE_RECURSE
  "CMakeFiles/scheduler_lab.dir/scheduler_lab.cpp.o"
  "CMakeFiles/scheduler_lab.dir/scheduler_lab.cpp.o.d"
  "scheduler_lab"
  "scheduler_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
