# Empty compiler generated dependencies file for scheduler_lab.
# This may be replaced when dependencies are built.
