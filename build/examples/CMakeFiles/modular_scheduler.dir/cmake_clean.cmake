file(REMOVE_RECURSE
  "CMakeFiles/modular_scheduler.dir/modular_scheduler.cpp.o"
  "CMakeFiles/modular_scheduler.dir/modular_scheduler.cpp.o.d"
  "modular_scheduler"
  "modular_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modular_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
