# Empty dependencies file for modular_scheduler.
# This may be replaced when dependencies are built.
