# Empty compiler generated dependencies file for hotplug_incident.
# This may be replaced when dependencies are built.
