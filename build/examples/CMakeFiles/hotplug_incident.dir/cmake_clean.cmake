file(REMOVE_RECURSE
  "CMakeFiles/hotplug_incident.dir/hotplug_incident.cpp.o"
  "CMakeFiles/hotplug_incident.dir/hotplug_incident.cpp.o.d"
  "hotplug_incident"
  "hotplug_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotplug_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
