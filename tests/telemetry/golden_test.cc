// Golden-file tests for the schedstat report parser and the Chrome-trace
// validator. The existing telemetry tests are round-trip (render → parse),
// which cannot catch a bug that changes renderer and parser symmetrically;
// these fixtures freeze the on-disk formats.
//
// Fixtures live in tests/telemetry/testdata/ and are located through the
// WC_TESTDATA_DIR compile definition, so the tests run from any directory.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/schedstat.h"

namespace wcores {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(WC_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SchedstatGolden, ParsesGoodReport) {
  ParsedSchedstat parsed;
  ASSERT_TRUE(ParseSchedstatReport(ReadFixture("schedstat_good.txt"), &parsed));

  EXPECT_EQ(parsed.version, 1);
  EXPECT_EQ(parsed.timestamp, 2000000000u);
  EXPECT_EQ(parsed.cpus, 2);
  EXPECT_EQ(parsed.nodes, 1);
  EXPECT_EQ(parsed.online, 2);

  EXPECT_EQ(parsed.counters.size(), 6u);
  EXPECT_EQ(parsed.counters.at("forks"), 10u);
  EXPECT_EQ(parsed.counters.at("exits"), 8u);
  EXPECT_EQ(parsed.counters.at("wakeups"), 123u);
  EXPECT_EQ(parsed.counters.at("balance_calls"), 40u);
  EXPECT_EQ(parsed.counters.at("migrations_idle"), 3u);
  EXPECT_EQ(parsed.counters.at("ticks"), 500u);

  ASSERT_EQ(parsed.latencies.size(), 5u);
  const auto& wakeup0 = parsed.latencies.at("cpu0 wakeup");
  EXPECT_EQ(wakeup0.count, 100u);
  EXPECT_DOUBLE_EQ(wakeup0.p50_us, 12.5);
  EXPECT_DOUBLE_EQ(wakeup0.p95_us, 80.25);
  EXPECT_DOUBLE_EQ(wakeup0.p99_us, 95.125);
  EXPECT_DOUBLE_EQ(wakeup0.max_us, 120.0);
  const auto& machine = parsed.latencies.at("machine timeslice");
  EXPECT_EQ(machine.count, 400u);
  EXPECT_DOUBLE_EQ(machine.max_us, 2000.0);
  // The prose verdict table between counters and latencies must be skipped,
  // not parsed into anything.
  EXPECT_EQ(parsed.counters.count("no_busiest"), 0u);
}

TEST(SchedstatGolden, RejectsMalformedReports) {
  ParsedSchedstat parsed;
  EXPECT_FALSE(ParseSchedstatReport(ReadFixture("schedstat_malformed_counter.txt"), &parsed));
  EXPECT_FALSE(ParseSchedstatReport(ReadFixture("schedstat_malformed_lat.txt"), &parsed));
  EXPECT_FALSE(ParseSchedstatReport(ReadFixture("schedstat_missing_header.txt"), &parsed));
}

TEST(ChromeTraceGolden, AcceptsGoodTrace) {
  ChromeTraceCheck check = CheckChromeTrace(ReadFixture("chrome_trace_good.json"));
  EXPECT_TRUE(check.valid_json) << check.error;
  EXPECT_TRUE(check.ts_monotonic);
  EXPECT_TRUE(check.slices_balanced);
  EXPECT_EQ(check.thread_name_records, 2);
  EXPECT_EQ(check.slices, 2u);
  EXPECT_EQ(check.counters, 2u);
  EXPECT_EQ(check.instants, 1u);
  EXPECT_TRUE(check.Ok(2));
  EXPECT_FALSE(check.Ok(4)) << "Ok() must require one thread_name per cpu";
}

TEST(ChromeTraceGolden, FlagsUnbalancedSlices) {
  ChromeTraceCheck check = CheckChromeTrace(ReadFixture("chrome_trace_unbalanced.json"));
  EXPECT_TRUE(check.valid_json) << check.error;
  EXPECT_FALSE(check.slices_balanced);
  EXPECT_FALSE(check.Ok(1));
}

TEST(ChromeTraceGolden, FlagsNonMonotonicTimestamps) {
  ChromeTraceCheck check = CheckChromeTrace(ReadFixture("chrome_trace_nonmonotonic.json"));
  EXPECT_TRUE(check.valid_json) << check.error;
  EXPECT_FALSE(check.ts_monotonic);
  EXPECT_FALSE(check.Ok(1));
}

TEST(ChromeTraceGolden, FlagsInvalidJson) {
  ChromeTraceCheck check = CheckChromeTrace(ReadFixture("chrome_trace_invalid.json"));
  EXPECT_FALSE(check.valid_json);
  EXPECT_FALSE(check.error.empty());
  EXPECT_FALSE(check.Ok(1));
}

}  // namespace
}  // namespace wcores
