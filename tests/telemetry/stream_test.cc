// Streaming telemetry tests: the ring's loss accounting, P² sketch parity
// against the exact batch Summary (the documented error bounds), bit-exact
// accumulator parity on a real scenario, the directed starvation-detector
// scenario, and the one-line JSON summary contract.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/sim/simulator.h"
#include "src/simkit/rng.h"
#include "src/telemetry/stream/analyzer.h"
#include "src/telemetry/stream/quantile.h"
#include "src/telemetry/stream/record.h"
#include "src/telemetry/stream/ring.h"
#include "src/telemetry/stream/stream_sink.h"
#include "src/telemetry/telemetry.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"
#include "src/workloads/make_r.h"

namespace wcores {
namespace {

// ---- Ring ----------------------------------------------------------------

TEST(SpscRing, FifoOrderAndCapacityRounding) {
  SpscRing ring(10);  // Rounds up to 16.
  EXPECT_EQ(ring.capacity(), 16u);
  for (uint64_t i = 0; i < 16; ++i) {
    StreamRecord rec;
    rec.when = i;
    EXPECT_TRUE(ring.TryPush(rec));
  }
  StreamRecord rec;
  rec.when = 99;
  EXPECT_FALSE(ring.TryPush(rec));  // Full: no overwrite, no growth.
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(ring.TryPop(&rec));
    EXPECT_EQ(rec.when, i);
  }
  EXPECT_FALSE(ring.TryPop(&rec));
  // Wrap-around after a full cycle.
  rec.when = 1234;
  EXPECT_TRUE(ring.TryPush(rec));
  ASSERT_TRUE(ring.TryPop(&rec));
  EXPECT_EQ(rec.when, 1234u);
}

TEST(SpscRing, DropsAreCountedNeverSilent) {
  TelemetryStream::Options opts;
  opts.ring_capacity = 8;
  opts.drain_on_full = false;  // Model a consumer that never keeps up.
  opts.analyzer.n_cpus = 1;
  TelemetryStream stream(opts);
  for (int i = 0; i < 100; ++i) {
    stream.OnNrRunning(static_cast<Time>(i), 0, i);
  }
  EXPECT_EQ(stream.events_seen(), 100u);
  EXPECT_EQ(stream.ring().dropped(), 100u - stream.ring().capacity());
  stream.Finish(100);
  // Conservation: every offered event was either analyzed or counted lost.
  EXPECT_EQ(stream.analyzer().events() + stream.ring().dropped(), stream.events_seen());
}

TEST(TelemetryStream, InProcessDrainNeverDrops) {
  TelemetryStream::Options opts;
  opts.ring_capacity = 8;  // Tiny on purpose: forces many drain cycles.
  opts.analyzer.n_cpus = 1;
  TelemetryStream stream(opts);
  for (int i = 0; i < 10000; ++i) {
    stream.OnNrRunning(static_cast<Time>(i), 0, i & 3);
  }
  stream.Finish(10000);
  EXPECT_EQ(stream.ring().dropped(), 0u);
  EXPECT_EQ(stream.analyzer().events(), 10000u);
}

// ---- P² sketch vs exact batch quantiles ----------------------------------

// Rank of `value` in the exact sample set: fraction of samples <= value.
// This is the metric the documented bounds are stated in — rank error is
// meaningful on heavy-tailed distributions where value error is not.
double ExactRank(std::vector<double> samples, double value) {
  size_t at_or_below = 0;
  for (double s : samples) {
    at_or_below += s <= value ? 1 : 0;
  }
  return static_cast<double>(at_or_below) / static_cast<double>(samples.size());
}

TEST(P2Quantile, ExactForFirstFiveSamples) {
  P2Quantile p50(0.5);
  Summary exact;
  const double vals[] = {7, 3, 11, 1, 9};
  for (double v : vals) {
    p50.Add(v);
    exact.Add(v);
    EXPECT_DOUBLE_EQ(p50.Value(), exact.Quantile(0.5)) << "n=" << p50.count();
  }
}

TEST(P2Quantile, UniformStreamRankError) {
  // 100k uniform samples from the seeded Rng: the sketch's estimate must sit
  // within 2 rank points of the target quantile.
  Rng rng(42);
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  P2Quantile p99(0.99);
  std::vector<double> all;
  all.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    double v = static_cast<double>(rng.NextBelow(1000000));
    p50.Add(v);
    p95.Add(v);
    p99.Add(v);
    all.push_back(v);
  }
  EXPECT_NEAR(ExactRank(all, p50.Value()), 0.50, 0.02);
  EXPECT_NEAR(ExactRank(all, p95.Value()), 0.95, 0.02);
  EXPECT_NEAR(ExactRank(all, p99.Value()), 0.99, 0.02);
}

// ---- Fig. 2 parity: stream vs batch LatencyAccountant --------------------

struct ParityRun {
  std::vector<double> exact_rq_wait;   // Machine-wide batch samples.
  std::vector<double> exact_timeslice;
  StreamAnalyzer::ScopeStats machine;
  uint64_t batch_count = 0;
  uint64_t stream_events = 0;
  uint64_t ring_dropped = 0;
  uint64_t task_wait_ns = 0;     // Stream: summed per-task accumulators.
  uint64_t task_runtime_ns = 0;
  double batch_wait_sum = 0;     // Batch: Summary sums.
  double batch_runtime_sum = 0;
};

ParityRun RunFig2(bool fixed) {
  Topology topo = Topology::Bulldozer8x8();
  TelemetrySession telemetry(topo.n_cores());
  TelemetryStream& stream = telemetry.AttachStream(TelemetryStream::ForTopology(topo));
  Simulator::Options opts;
  opts.features.fix_group_imbalance = fixed;
  opts.seed = 3001;
  Simulator sim(topo, opts, telemetry.sink());
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(400);
  config.r_work = Seconds(3);
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(10));
  stream.Finish(sim.Now());

  ParityRun run;
  LatencyDistributions machine = telemetry.latency().Machine();
  run.batch_count = machine.rq_wait.Count();
  run.batch_wait_sum = machine.rq_wait.Sum();
  run.batch_runtime_sum = machine.timeslice.Sum();
  for (double q = 0.0; q <= 1.0; q += 1.0 / 256) {
    run.exact_rq_wait.push_back(machine.rq_wait.Quantile(q));
    run.exact_timeslice.push_back(machine.timeslice.Quantile(q));
  }
  run.machine = stream.analyzer().Machine();
  run.stream_events = stream.analyzer().events();
  run.ring_dropped = stream.ring().dropped();
  for (ThreadId tid = 0; tid < static_cast<ThreadId>(stream.analyzer().tasks()); ++tid) {
    run.task_wait_ns += stream.analyzer().Task(tid).wait_ns;
    run.task_runtime_ns += stream.analyzer().Task(tid).runtime_ns;
  }
  return run;
}

// The documented sketch bounds (see src/telemetry/stream/quantile.h): on the
// fig2 scenarios the P² estimate's exact rank stays within `tol` of the
// target rank, OR — on distributions that concentrate most of their mass
// inside one scheduling quantum, where rank is not a meaningful metric — its
// absolute error stays under 50 us. The interpolated 256-point CDF makes
// ExactRank cheap.
void CheckRank(const ParityRun& run, const std::vector<double>& cdf, double target,
               double estimate, double tol, const char* what) {
  // rank = fraction of the 257 interpolated CDF points <= estimate.
  size_t below = 0;
  for (double v : cdf) {
    below += v <= estimate ? 1 : 0;
  }
  double rank = static_cast<double>(below) / static_cast<double>(cdf.size());
  double exact = cdf[static_cast<size_t>(target * (cdf.size() - 1))];
  constexpr double kAbsFloorNs = 50.0 * 1000;
  EXPECT_TRUE(std::abs(rank - target) <= tol || std::abs(estimate - exact) <= kAbsFloorNs)
      << what << " estimate=" << estimate << " exact=" << exact << " rank=" << rank
      << " batch_count=" << run.batch_count;
}

void CheckParity(const ParityRun& run) {
  // Exact invariants first: the stream saw every sample the batch side saw,
  // and the integer accumulators match the batch sums bit-for-bit (the batch
  // side stores each ns value as a double, exactly representable).
  EXPECT_EQ(run.ring_dropped, 0u);
  EXPECT_EQ(run.machine.rq_wait.count, run.batch_count);
  EXPECT_EQ(static_cast<double>(run.machine.rq_wait.sum_ns), run.batch_wait_sum);
  EXPECT_EQ(static_cast<double>(run.machine.oncpu.sum_ns), run.batch_runtime_sum);
  EXPECT_EQ(run.task_wait_ns, run.machine.rq_wait.sum_ns);
  EXPECT_EQ(run.task_runtime_ns, run.machine.oncpu.sum_ns);

  // Sketch bounds: rank error <= 0.10 at p50, <= 0.05 at p95/p99 for
  // rq-wait; on-cpu stints are near-deterministic quanta (much easier) and
  // get the same bounds.
  CheckRank(run, run.exact_rq_wait, 0.50, run.machine.rq_wait.p50.Value(), 0.10, "rq_wait p50");
  CheckRank(run, run.exact_rq_wait, 0.95, run.machine.rq_wait.p95.Value(), 0.05, "rq_wait p95");
  CheckRank(run, run.exact_rq_wait, 0.99, run.machine.rq_wait.p99.Value(), 0.05, "rq_wait p99");
  CheckRank(run, run.exact_timeslice, 0.50, run.machine.oncpu.p50.Value(), 0.10, "oncpu p50");
  CheckRank(run, run.exact_timeslice, 0.95, run.machine.oncpu.p95.Value(), 0.05, "oncpu p95");
  CheckRank(run, run.exact_timeslice, 0.99, run.machine.oncpu.p99.Value(), 0.05, "oncpu p99");
}

TEST(StreamParity, Fig2StockWithinDocumentedBounds) {
  CheckParity(RunFig2(/*fixed=*/false));
}

TEST(StreamParity, Fig2FixedWithinDocumentedBounds) {
  CheckParity(RunFig2(/*fixed=*/true));
}

// ---- Directed starvation scenario ----------------------------------------

// Twelve compute hogs pinned to one core of a 4-core machine: each stint
// lasts ~min_granularity (3 ms), so every task queues behind eleven others
// for ~33 ms between stints. With a 20 ms horizon the detector must fire;
// the sanity checker must NOT (the other cores are idle, but affinity makes
// the queued work unstealable — exactly the gap the second monitor covers).
TEST(StarvationDetector, CatchesPinnedOverloadTheCheckerCannotSee) {
  Topology topo = Topology::Flat(1, 4, /*smt_width=*/1);
  TelemetrySession telemetry(topo.n_cores());
  TelemetryStream& stream =
      telemetry.AttachStream(TelemetryStream::ForTopology(topo, Milliseconds(20)));
  Simulator::Options opts;
  opts.seed = 77;
  Simulator sim(topo, opts, telemetry.sink());
  for (int i = 0; i < 12; ++i) {
    Simulator::SpawnParams params;
    params.affinity = CpuSet::Single(0);
    params.parent_cpu = 0;
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
              params);
  }
  SanityChecker checker(&sim);
  checker.Start();
  sim.Run(Seconds(5));
  stream.Finish(sim.Now());

  const StreamAnalyzer& a = stream.analyzer();
  ASSERT_GT(a.findings_total(), 0u) << "starvation detector is disarmed";
  EXPECT_GE(a.worst_wait(), Milliseconds(20));
  ASSERT_FALSE(a.findings().empty());
  const StreamFinding& f = a.findings().front();
  EXPECT_GE(f.waited, Milliseconds(20));
  EXPECT_GE(f.detected_at, f.since);
  // The finding carries the session's latency digest (same machinery as the
  // checker's violations).
  EXPECT_NE(f.digest.find("rq_wait"), std::string::npos) << f.digest;
  // The work-conserving invariant never fires: pinned work is unstealable.
  EXPECT_TRUE(checker.violations().empty());
}

TEST(StarvationDetector, QuietWhenHorizonExceedsWorstWait) {
  // Same scenario, horizon far beyond the ~33 ms queueing delay: no
  // findings. Guards against a detector that cries wolf.
  Topology topo = Topology::Flat(1, 4, /*smt_width=*/1);
  TelemetrySession telemetry(topo.n_cores());
  TelemetryStream& stream =
      telemetry.AttachStream(TelemetryStream::ForTopology(topo, Seconds(2)));
  Simulator::Options opts;
  opts.seed = 77;
  Simulator sim(topo, opts, telemetry.sink());
  for (int i = 0; i < 12; ++i) {
    Simulator::SpawnParams params;
    params.affinity = CpuSet::Single(0);
    params.parent_cpu = 0;
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
              params);
  }
  sim.Run(Seconds(5));
  stream.Finish(sim.Now());
  EXPECT_EQ(stream.analyzer().findings_total(), 0u);
}

// ---- Gantt span emitter ---------------------------------------------------

TEST(StreamSpans, WindowedEmitterFlushesCompletedSpans) {
  std::ostringstream spans;
  TelemetryStream::Options opts;
  opts.analyzer.n_cpus = 1;
  opts.analyzer.span_out = &spans;
  opts.analyzer.span_capacity = 4;  // Tiny window: forces mid-run flushes.
  TelemetryStream stream(opts);
  for (int i = 0; i < 10; ++i) {
    Time t0 = static_cast<Time>(i) * 100;
    stream.OnSwitchIn(t0, 0, i % 3, 5);
    stream.OnSwitchOut(t0 + 60, 0, i % 3, 60, i % 2 == 0);
  }
  stream.Finish(1000);
  EXPECT_EQ(stream.analyzer().spans_emitted(), 10u);
  // CSV lines: tid,cpu,start,end,preempted.
  EXPECT_NE(spans.str().find("0,0,0,60,1\n"), std::string::npos) << spans.str();
  int lines = 0;
  for (char c : spans.str()) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 10);
}

// ---- Summary JSON ---------------------------------------------------------

TEST(StreamSummary, OneLineStableAndWithinBudget) {
  Topology topo = Topology::Flat(1, 2, /*smt_width=*/1);
  TelemetrySession telemetry(topo.n_cores());
  TelemetryStream& stream = telemetry.AttachStream(TelemetryStream::ForTopology(topo));
  stream.OnSwitchIn(10, 0, 0, 3);
  stream.OnSwitchOut(20, 0, 0, 10, false);
  stream.Finish(30);
  std::string json = stream.SummaryJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);  // One line.
  for (const char* key :
       {"\"events\":", "\"ring_capacity\":", "\"ring_dropped\":0", "\"tasks\":",
        "\"agg_bytes_peak\":", "\"budget_bytes\":", "\"within_budget\":true", "\"machine\":",
        "\"rq_wait\":", "\"oncpu\":", "\"totals\":", "\"starvation\":", "\"horizon_ns\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing from " << json;
  }
  // Balanced braces, no trailing junk.
  int depth = 0;
  for (char c : json) {
    depth += c == '{' ? 1 : (c == '}' ? -1 : 0);
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_TRUE(stream.analyzer().WithinBudget());
}

}  // namespace
}  // namespace wcores
