#include "src/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "src/metrics/histogram.h"
#include "src/sim/simulator.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/latency.h"
#include "src/telemetry/schedstat.h"
#include "src/tools/recorder.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

// ---- Summary percentiles ---------------------------------------------------

TEST(SummaryTest, QuantilesOfKnownDistribution) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  // Linear interpolation over 100 samples: p50 = 50.5, p95 = 95.05.
  EXPECT_NEAR(s.Quantile(0.50), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 1e-9);
  EXPECT_NEAR(s.Quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
}

TEST(SummaryTest, MergeFoldsSamples) {
  Summary a;
  Summary b;
  a.Add(1);
  a.Add(3);
  b.Add(2);
  b.Add(4);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 4.0);
  EXPECT_NEAR(a.Quantile(0.5), 2.5, 1e-9);
  // Merge after a quantile query (sorted state) still works.
  Summary c;
  c.Add(0.5);
  a.Merge(c);
  EXPECT_DOUBLE_EQ(a.Min(), 0.5);
}

// ---- LatencyAccountant -----------------------------------------------------

TEST(LatencyAccountantTest, AccountsSwitchAndWakeupEvents) {
  LatencyAccountant acct(4);
  acct.OnSwitchIn(Milliseconds(10), /*cpu=*/1, /*tid=*/7, /*waited=*/Microseconds(100));
  acct.OnWakeupLatency(Milliseconds(10), 1, 7, Microseconds(150));
  acct.OnSwitchOut(Milliseconds(14), 1, 7, /*ran=*/Milliseconds(4), /*still_runnable=*/true);

  EXPECT_EQ(acct.Cpu(1).rq_wait.Count(), 1u);
  EXPECT_DOUBLE_EQ(acct.Cpu(1).rq_wait.Max(), static_cast<double>(Microseconds(100)));
  EXPECT_EQ(acct.Thread(7).wakeup_latency.Count(), 1u);
  EXPECT_DOUBLE_EQ(acct.Thread(7).timeslice.Max(), static_cast<double>(Milliseconds(4)));
  // Unknown threads and untouched cpus read as empty, not UB.
  EXPECT_EQ(acct.Thread(99).rq_wait.Count(), 0u);
  EXPECT_EQ(acct.Cpu(3).rq_wait.Count(), 0u);
}

TEST(LatencyAccountantTest, MigrationCostIsMigrationToFirstRun) {
  LatencyAccountant acct(4);
  acct.OnMigration(Milliseconds(5), /*tid=*/9, /*from=*/0, /*to=*/2,
                   MigrationReason::kPeriodicBalance);
  // First switch-in after the migration resolves the pending stamp.
  acct.OnSwitchIn(Milliseconds(7), 2, 9, Microseconds(50));
  ASSERT_EQ(acct.Cpu(2).migration_cost.Count(), 1u);
  EXPECT_DOUBLE_EQ(acct.Cpu(2).migration_cost.Max(), static_cast<double>(Milliseconds(2)));
  EXPECT_EQ(acct.MigrationsInto(2), 1u);
  // A second switch-in does not double-count the migration.
  acct.OnSwitchIn(Milliseconds(9), 2, 9, Microseconds(10));
  EXPECT_EQ(acct.Cpu(2).migration_cost.Count(), 1u);
}

TEST(LatencyAccountantTest, IdleAccounting) {
  LatencyAccountant acct(2);
  acct.OnIdleEnter(Milliseconds(1), 0);
  acct.OnIdleExit(Milliseconds(4), 0, Milliseconds(3));
  EXPECT_EQ(acct.IdleEnters(0), 1u);
  EXPECT_EQ(acct.IdleTime(0), Milliseconds(3));
  EXPECT_EQ(acct.IdleTime(1), Time{0});
}

TEST(LatencyAccountantTest, NodeAndMachineAggregation) {
  LatencyAccountant acct(4);
  acct.OnSwitchIn(1, 0, 1, 100);
  acct.OnSwitchIn(2, 1, 2, 200);
  acct.OnSwitchIn(3, 2, 3, 300);
  CpuSet node0 = CpuSet::FirstN(2);
  EXPECT_EQ(acct.AggregateCpus(node0).rq_wait.Count(), 2u);
  EXPECT_DOUBLE_EQ(acct.AggregateCpus(node0).rq_wait.Max(), 200.0);
  EXPECT_EQ(acct.Machine().rq_wait.Count(), 3u);
}

// ---- EventRecorder additions -----------------------------------------------

TEST(RecorderTelemetryTest, CapacityAndFillFraction) {
  EventRecorder recorder(/*capacity=*/8);
  EXPECT_EQ(recorder.capacity(), 8u);
  EXPECT_DOUBLE_EQ(recorder.FillFraction(), 0.0);
  for (int i = 0; i < 4; ++i) {
    recorder.OnNrRunning(i, 0, i);
  }
  EXPECT_DOUBLE_EQ(recorder.FillFraction(), 0.5);
}

TEST(RecorderTelemetryTest, RecordsNewCallbackKinds) {
  EventRecorder recorder;
  recorder.OnSwitchIn(Milliseconds(1), 2, 5, Microseconds(10));
  recorder.OnSwitchOut(Milliseconds(2), 2, 5, Milliseconds(1), /*still_runnable=*/true);
  recorder.OnWakeupLatency(Milliseconds(2), 2, 6, Microseconds(20));
  recorder.OnIdleEnter(Milliseconds(3), 2);
  recorder.OnIdleExit(Milliseconds(4), 2, Milliseconds(1));
  ASSERT_EQ(recorder.events().size(), 5u);
  EXPECT_EQ(recorder.events()[0].kind, TraceEvent::Kind::kSwitchIn);
  EXPECT_EQ(recorder.events()[1].kind, TraceEvent::Kind::kSwitchOut);
  EXPECT_EQ(recorder.events()[1].sub, 1);  // Still runnable.
  EXPECT_EQ(recorder.events()[2].kind, TraceEvent::Kind::kWakeupLatency);
  EXPECT_EQ(recorder.events()[3].kind, TraceEvent::Kind::kIdleEnter);
  EXPECT_EQ(recorder.events()[4].kind, TraceEvent::Kind::kIdleExit);
  EXPECT_DOUBLE_EQ(recorder.events()[4].value, static_cast<double>(Milliseconds(1)));
}

TEST(RecorderTelemetryTest, MultiSinkFansOutNewCallbacks) {
  EventRecorder a;
  EventRecorder b;
  MultiSink multi;
  multi.Add(&a);
  multi.Add(&b);
  multi.OnSwitchIn(1, 0, 1, 2);
  multi.OnSwitchOut(2, 0, 1, 1, false);
  multi.OnWakeupLatency(3, 0, 1, 4);
  multi.OnIdleEnter(4, 0);
  multi.OnIdleExit(5, 0, 1);
  EXPECT_EQ(a.events().size(), 5u);
  EXPECT_EQ(b.events().size(), 5u);
  EXPECT_EQ(a.events()[2].kind, TraceEvent::Kind::kWakeupLatency);
}

// ---- Schedstat report ------------------------------------------------------

class SchedstatTest : public ::testing::Test {
 protected:
  // A tiny two-node run that exercises forks, wakeups, and balancing.
  std::string RunAndReport() {
    Topology topo = Topology::Flat(2, 2, 1);  // 2 nodes x 2 cores.
    TelemetrySession telemetry(topo.n_cores());
    Simulator::Options opts;
    opts.seed = 42;
    Simulator sim(topo, opts, telemetry.sink());
    for (int i = 0; i < 6; ++i) {
      Simulator::SpawnParams params;
      params.parent_cpu = 0;
      sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                    ComputeAction{Milliseconds(30)}, SleepAction{Milliseconds(5)},
                    ComputeAction{Milliseconds(20)}}),
                params);
    }
    sim.Run(Milliseconds(500));
    now_ = sim.Now();
    report_ = telemetry.Schedstat(sim.sched(), now_);
    return report_;
  }

  std::string report_;
  Time now_ = 0;
};

TEST_F(SchedstatTest, ReportHasExpectedShapeAndParsesBack) {
  RunAndReport();
  EXPECT_NE(report_.find("schedstat version 1"), std::string::npos);
  EXPECT_NE(report_.find("cpus 4 nodes 2 online 4"), std::string::npos);
  EXPECT_NE(report_.find("counter wakeups "), std::string::npos);
  EXPECT_NE(report_.find("lat machine rq_wait "), std::string::npos);
  EXPECT_NE(report_.find("cpustate cpu3 "), std::string::npos);

  ParsedSchedstat parsed;
  ASSERT_TRUE(ParseSchedstatReport(report_, &parsed));
  EXPECT_EQ(parsed.version, 1);
  EXPECT_EQ(parsed.timestamp, now_);
  EXPECT_EQ(parsed.cpus, 4);
  EXPECT_EQ(parsed.nodes, 2);
  EXPECT_EQ(parsed.online, 4);
  EXPECT_EQ(parsed.counters.at("forks"), 6u);
  ASSERT_TRUE(parsed.latencies.count("machine rq_wait"));
  const auto& rq = parsed.latencies.at("machine rq_wait");
  EXPECT_GT(rq.count, 0u);
  EXPECT_LE(rq.p50_us, rq.p95_us);
  EXPECT_LE(rq.p95_us, rq.p99_us);
  EXPECT_LE(rq.p99_us, rq.max_us);
  // Per-cpu scopes exist for every cpu and sum to the machine count.
  uint64_t sum = 0;
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(parsed.latencies.count("cpu" + std::to_string(c) + " rq_wait"));
    sum += parsed.latencies.at("cpu" + std::to_string(c) + " rq_wait").count;
  }
  EXPECT_EQ(sum, rq.count);
}

TEST_F(SchedstatTest, GoldenReportForIdleScheduler) {
  // With no workload at all the report is fully deterministic.
  Topology topo = Topology::Flat(1, 2, 1);
  TelemetrySession telemetry(topo.n_cores());
  Simulator::Options opts;
  Simulator sim(topo, opts, telemetry.sink());
  sim.Run(Milliseconds(1));
  std::string report = telemetry.Schedstat(sim.sched(), sim.Now());
  EXPECT_NE(report.find("schedstat version 1 (wasted-cores telemetry)\n"), std::string::npos);
  EXPECT_NE(report.find("cpus 2 nodes 1 online 2\n"), std::string::npos);
  EXPECT_NE(report.find("counter forks 0\n"), std::string::npos);
  EXPECT_NE(report.find("lat machine wakeup 0 0.000 0.000 0.000 0.000\n"), std::string::npos);
}

TEST(SchedstatParseTest, RejectsMalformedReports) {
  ParsedSchedstat parsed;
  EXPECT_FALSE(ParseSchedstatReport("", &parsed));
  EXPECT_FALSE(ParseSchedstatReport("schedstat version 1\n", &parsed));  // No shape/lat lines.
  EXPECT_FALSE(ParseSchedstatReport(
      "schedstat version 1\ncpus 2 nodes 1 online 2\nlat cpu0 rq_wait oops\n", &parsed));
}

// ---- Chrome trace JSON -----------------------------------------------------

TEST(ChromeTraceTest, JsonRoundTripOnSyntheticEvents) {
  EventRecorder recorder;
  recorder.OnNrRunning(0, 0, 1);
  recorder.OnSwitchIn(Microseconds(10), 0, 5, Microseconds(3));
  recorder.OnLoad(Microseconds(12), 1, 1024.0);
  recorder.OnMigration(Microseconds(15), 6, 0, 1, MigrationReason::kIdleBalance);
  recorder.OnSwitchIn(Microseconds(16), 1, 6, Microseconds(1));
  recorder.OnWakeupLatency(Microseconds(16), 1, 6, Microseconds(2));
  recorder.OnSwitchOut(Microseconds(20), 0, 5, Microseconds(10), false);
  // Note: cpu1's slice for tid 6 is left open — the exporter must close it.

  std::string json = ChromeTraceJson(recorder.events(), /*n_cpus=*/2);
  ChromeTraceCheck check = CheckChromeTrace(json);
  EXPECT_TRUE(check.valid_json) << check.error;
  EXPECT_TRUE(check.ts_monotonic);
  EXPECT_TRUE(check.slices_balanced);
  EXPECT_EQ(check.thread_name_records, 2);
  EXPECT_EQ(check.slices, 2u);
  EXPECT_EQ(check.counters, 2u);
  EXPECT_EQ(check.instants, 2u);  // Migration + wakeup latency.
  EXPECT_TRUE(check.Ok(2));
  EXPECT_FALSE(check.Ok(3));  // Wrong cpu count must not validate.
}

TEST(ChromeTraceTest, TruncatesHugeTracesWithMarkerAndBalancedSlices) {
  // A long alternating switch-in/out stream on one cpu; cut it mid-slice so
  // the exporter must close the open 'B' at the truncation point.
  EventRecorder recorder;
  for (int i = 0; i < 100; ++i) {
    Time t = Microseconds(10 * i);
    recorder.OnSwitchIn(t, 0, 5, 0);
    recorder.OnSwitchOut(t + Microseconds(5), 0, 5, Microseconds(5), true);
  }
  ASSERT_EQ(recorder.events().size(), 200u);

  std::string json = ChromeTraceJson(recorder.events(), /*n_cpus=*/1, /*max_events=*/51);
  ChromeTraceCheck check = CheckChromeTrace(json);
  EXPECT_TRUE(check.valid_json) << check.error;
  EXPECT_TRUE(check.ts_monotonic);
  EXPECT_TRUE(check.slices_balanced);  // The cut slice was closed.
  EXPECT_TRUE(check.Ok(1));
  // 26 switch-ins made it through the cap (events 0..50 = 26 in, 25 out).
  EXPECT_EQ(check.slices, 26u);
  // The truncation marker is present and carries the drop accounting.
  EXPECT_NE(json.find("\"name\":\"trace truncated\""), std::string::npos);
  EXPECT_NE(json.find("\"exported_events\":51"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":149"), std::string::npos);

  // Untruncated export of the same events carries no marker.
  std::string full = ChromeTraceJson(recorder.events(), /*n_cpus=*/1);
  EXPECT_EQ(full.find("trace truncated"), std::string::npos);
  EXPECT_TRUE(CheckChromeTrace(full).Ok(1));
}

TEST(ChromeTraceTest, ParserAcceptsStandardJson) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(ParseJson(R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null})", &v,
                        &err))
      << err;
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(v.Find("b")->Find("c")->str, "x\ny");
  EXPECT_TRUE(v.Find("d")->boolean);
  EXPECT_EQ(v.Find("e")->type, JsonValue::Type::kNull);
}

TEST(ChromeTraceTest, ParserRejectsMalformedJson) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(ParseJson("{", &v, &err));
  EXPECT_FALSE(ParseJson("{\"a\": }", &v, &err));
  EXPECT_FALSE(ParseJson("[1, 2", &v, &err));
  EXPECT_FALSE(ParseJson("{} trailing", &v, &err));
  EXPECT_FALSE(ParseJson("\"unterminated", &v, &err));
  EXPECT_NE(err.find("offset"), std::string::npos);
}

// ---- TelemetrySession ------------------------------------------------------

TEST(TelemetrySessionTest, WritesBothReports) {
  Topology topo = Topology::Flat(1, 2, 1);
  TelemetrySession telemetry(topo.n_cores());
  Simulator::Options opts;
  Simulator sim(topo, opts, telemetry.sink());
  Simulator::SpawnParams params;
  params.parent_cpu = 0;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Milliseconds(5)}}),
            params);
  sim.Run(Milliseconds(20));

  std::string dir = ::testing::TempDir() + "/wc_telemetry_test";
  std::string error;
  ASSERT_TRUE(telemetry.WriteReports(dir, sim.sched(), sim.Now(), "t_", &error)) << error;

  std::ifstream stat_in(dir + "/t_schedstat.txt");
  std::string stat((std::istreambuf_iterator<char>(stat_in)), std::istreambuf_iterator<char>());
  ParsedSchedstat parsed;
  EXPECT_TRUE(ParseSchedstatReport(stat, &parsed));

  std::ifstream trace_in(dir + "/t_trace.json");
  std::string trace((std::istreambuf_iterator<char>(trace_in)),
                    std::istreambuf_iterator<char>());
  EXPECT_TRUE(CheckChromeTrace(trace).Ok(topo.n_cores()));

  EXPECT_FALSE(telemetry.LatencySnapshot().empty());
}

}  // namespace
}  // namespace wcores
