// End-to-end smoke test of the telemetry subsystem (the CI gate the
// observability work is judged by): run the paper's Figure 2 Group Imbalance
// scenario, scaled down, with full telemetry attached, stock vs fixed, and
// assert that
//   * the schedstat report renders and parses back,
//   * the Chrome trace JSON validates (per-cpu tracks, counter tracks,
//     monotonic timestamps, balanced slices),
//   * the fixed scheduler's p99 runqueue wait is measurably lower than the
//     stock scheduler's — the bug is visible in the new metrics, which is
//     the point of collecting them.
#include <gtest/gtest.h>

#include <string>

#include "src/sim/simulator.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/schedstat.h"
#include "src/telemetry/telemetry.h"
#include "src/topo/topology.h"
#include "src/workloads/make_r.h"

namespace wcores {
namespace {

struct SmokeRun {
  ParsedSchedstat stats;
  ChromeTraceCheck trace;
  uint64_t counter_records = 0;
  double p99_rq_wait_us = 0;
};

// The Figure 2 workload (64-thread make + 2 R processes) at the bench's own
// scale: shorter runs quantize every rq-wait sample to one timeslice and the
// stock-vs-fixed gap disappears. ~0.5 s wall per run.
SmokeRun RunGroupImbalance(bool fixed) {
  Topology topo = Topology::Bulldozer8x8();
  TelemetrySession telemetry(topo.n_cores());
  Simulator::Options opts;
  opts.features.fix_group_imbalance = fixed;
  opts.seed = 3001;
  Simulator sim(topo, opts, telemetry.sink());
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(400);
  config.r_work = Seconds(3);
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(10));

  SmokeRun run;
  std::string report = telemetry.Schedstat(sim.sched(), sim.Now());
  EXPECT_TRUE(ParseSchedstatReport(report, &run.stats)) << report.substr(0, 400);

  std::string json = ChromeTraceJson(telemetry.recorder().events(), topo.n_cores());
  run.trace = CheckChromeTrace(json);
  run.counter_records = run.trace.counters;
  run.p99_rq_wait_us = run.stats.latencies.count("machine rq_wait")
                           ? run.stats.latencies.at("machine rq_wait").p99_us
                           : 0;
  return run;
}

TEST(TelemetrySmoke, GroupImbalanceIsVisibleInLatencyTelemetry) {
  SmokeRun stock = RunGroupImbalance(/*fixed=*/false);
  SmokeRun fixed = RunGroupImbalance(/*fixed=*/true);

  // Schedstat reports parse and describe the full machine.
  EXPECT_EQ(stock.stats.cpus, 64);
  EXPECT_EQ(stock.stats.nodes, 8);
  EXPECT_EQ(stock.stats.online, 64);
  EXPECT_GT(stock.stats.counters.at("wakeups"), 0u);
  EXPECT_GT(stock.stats.counters.at("ticks"), 0u);

  // Chrome traces validate: one named track per cpu, counter tracks present.
  for (const SmokeRun* run : {&stock, &fixed}) {
    EXPECT_TRUE(run->trace.valid_json) << run->trace.error;
    EXPECT_TRUE(run->trace.ts_monotonic);
    EXPECT_TRUE(run->trace.slices_balanced);
    EXPECT_EQ(run->trace.thread_name_records, 64);
    EXPECT_GT(run->trace.slices, 0u);
    EXPECT_GT(run->counter_records, 0u);  // rq size / load counter tracks.
    EXPECT_TRUE(run->trace.Ok(64));
  }

  // The Group Imbalance fix measurably lowers the tail runqueue wait: with
  // the bug, the high-load R cores' nodes stop stealing and make threads
  // queue up behind each other.
  ASSERT_GT(stock.p99_rq_wait_us, 0.0);
  ASSERT_GT(fixed.p99_rq_wait_us, 0.0);
  EXPECT_LT(fixed.p99_rq_wait_us, stock.p99_rq_wait_us)
      << "fixed p99 rq_wait " << fixed.p99_rq_wait_us << "us vs stock "
      << stock.p99_rq_wait_us << "us";
}

}  // namespace
}  // namespace wcores
