// Focused load-balancer tests: the Group Imbalance metric in isolation,
// taskset retries, cache-hot filtering, and the considered-core traces the
// visualization tool relies on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/tools/recorder.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

class NullClient : public SchedClient {
 public:
  void KickCpu(CpuId) override {}
  void NohzKick(CpuId) override {}
};

// A microcosm of §3.1 on a flat 2-node/2-core machine:
//   cpu 0 (node 0): one high-load thread (single-thread autogroup, running).
//   cpu 1 (node 0): idle.
//   cpu 2, cpu 3 (node 1): two low-load threads each (8-thread autogroup).
// Node 0's average load exceeds node 1's because of the high-load thread,
// so with the stock metric cpu 1 refuses to steal; with minimum-load
// comparison it steals (node 0's min = 0 < node 1's min).
class GroupImbalanceMicrocosm : public ::testing::Test {
 protected:
  void Build(bool fix) {
    topo_ = std::make_unique<Topology>(Topology::Flat(2, 2, 1));
    SchedFeatures features;
    features.fix_group_imbalance = fix;
    sched_ = std::make_unique<Scheduler>(*topo_, features,
                                         SchedTunables::ForCpus(topo_->n_cores()), &client_);
    // The R-like thread on cpu 0. Slightly raised priority so node 0's
    // average load strictly exceeds node 1's (in the paper's scenario the
    // same skew comes from the R thread's near-1.0 utilization versus the
    // make threads' intermittent sleeps).
    ThreadParams r;
    r.autogroup = sched_->CreateAutogroup();
    r.parent_cpu = 0;
    r.nice = -5;
    sched_->CreateThread(0, r);
    sched_->PickNext(0, 0);
    // The make-like threads on node 1 (8-thread autogroup, 2 per cpu).
    AutogroupId make_group = sched_->CreateAutogroup();
    for (CpuId cpu : {2, 3}) {
      for (int i = 0; i < 4; ++i) {
        ThreadParams m;
        m.autogroup = make_group;
        m.parent_cpu = cpu;
        sched_->CreateThread(0, m);
      }
      sched_->PickNext(0, cpu);
    }
    // cpu 1 stays idle. Advance everyone's runnable averages.
    Time now = Milliseconds(100);
    for (CpuId cpu : {0, 2, 3}) {
      sched_->Tick(now, cpu);
    }
  }

  // cpu 1 goes "newly idle": PickNext triggers idle balancing.
  ThreadId IdleBalanceOnCpu1() { return sched_->PickNext(Milliseconds(100), 1); }

  std::unique_ptr<Topology> topo_;
  NullClient client_;
  std::unique_ptr<Scheduler> sched_;
};

TEST_F(GroupImbalanceMicrocosm, AverageLoadConcealsIdleCore) {
  Build(/*fix=*/false);
  // Preconditions: node-0 average load is higher than node-1's.
  double node0_avg =
      (sched_->RqLoad(Milliseconds(100), 0) + sched_->RqLoad(Milliseconds(100), 1)) / 2;
  double node1_avg =
      (sched_->RqLoad(Milliseconds(100), 2) + sched_->RqLoad(Milliseconds(100), 3)) / 2;
  ASSERT_GT(node0_avg, node1_avg);
  // The stock balancer refuses: cpu 1 stays idle despite 8 waiting threads.
  EXPECT_EQ(IdleBalanceOnCpu1(), kInvalidThread);
  EXPECT_GT(sched_->stats().balance_below_local, 0u);
}

TEST_F(GroupImbalanceMicrocosm, MinimumLoadFixSteals) {
  Build(/*fix=*/true);
  EXPECT_NE(IdleBalanceOnCpu1(), kInvalidThread);
  EXPECT_GT(sched_->stats().migrations_idle, 0u);
}

// ---- Taskset handling (Algorithm 1 lines 18-23) --------------------------------

TEST(BalanceTasksetTest, AffinityFailureSetsImbalancedAndRetries) {
  Topology topo = Topology::Flat(1, 4, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client);
  // cpu 0: three threads pinned to {0, 2}; cpu 2 busy with its own pinned
  // work; cpu 1 tries to steal: the busiest (cpu 0) is unusable -> excluded.
  for (int i = 0; i < 3; ++i) {
    ThreadParams p;
    p.parent_cpu = 0;
    CpuSet mask;
    mask.Set(0);
    mask.Set(2);
    p.affinity = mask;
    sched.CreateThread(0, p);
  }
  sched.PickNext(0, 0);
  ThreadParams q;
  q.parent_cpu = 2;
  sched.CreateThread(0, q);
  sched.CreateThread(0, q);
  sched.PickNext(0, 2);
  Time now = Milliseconds(50);
  ThreadId got = sched.PickNext(now, 1);  // newidle balance on cpu 1.
  // It cannot take cpu 0's pinned threads; it falls back to cpu 2's loose one.
  ASSERT_NE(got, kInvalidThread);
  EXPECT_TRUE(sched.Entity(got).affinity.Test(1));
  EXPECT_GT(sched.stats().balance_affinity_retries, 0u);
}

// ---- Cache-hot filtering -----------------------------------------------------------

TEST(BalanceCacheHotTest, PrefersColdThreads) {
  Topology topo = Topology::Flat(1, 2, 1);
  NullClient client;
  SchedTunables tunables = SchedTunables::ForCpus(2);
  tunables.cache_hot_threshold = Milliseconds(10);
  Scheduler sched(topo, SchedFeatures::Stock(), tunables, &client);
  ThreadParams p;
  p.parent_cpu = 0;
  ThreadId a = sched.CreateThread(0, p);  // Will run (hot).
  ThreadId b = sched.CreateThread(0, p);  // Never ran (cold).
  ThreadId c = sched.CreateThread(0, p);  // Will run later (hot).
  ASSERT_EQ(sched.PickNext(0, 0), a);
  // Rotate: a runs 1ms, then c runs till 2ms; a and c are now cache-hot.
  sched.MutableEntity(a).vruntime += Milliseconds(5);  // Force reordering.
  ASSERT_EQ(sched.PickNext(Milliseconds(1), 0), b);
  sched.MutableEntity(b).vruntime += Milliseconds(5);
  ASSERT_EQ(sched.PickNext(Milliseconds(2), 0), c);
  // cpu 1 steals at t=3ms: b (cold, last_ran=2ms? b ran 1-2ms...).
  // Recompute hotness: a last ran at 1ms (hot within 10ms), b at 2ms (hot),
  // c is running. Everything queued is hot -> the balancer must still move
  // one rather than leave cpu 1 idle.
  ThreadId got = sched.PickNext(Milliseconds(3), 1);
  EXPECT_NE(got, kInvalidThread);

  // After the threshold passes, cold threads are chosen first: requeue the
  // stolen thread's peer scenario is implicitly covered by the pick above.
  EXPECT_GE(sched.stats().migrations_idle, 1u);
}

// ---- Group-stats memo -----------------------------------------------------------------

// Domain trees of different cores share group cpu sets (every top-level
// domain lists the same node groups), so balancing several cores at one
// instant should serve repeats from the memo — and the memo must stay
// bit-coherent with a from-scratch recomputation.
TEST(GroupStatsMemoTest, SharedGroupsHitAcrossCoresAndStayCoherent) {
  Topology topo = Topology::Flat(2, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client);
  // One running thread per core: balancing has stats to aggregate on every
  // level but nothing to move, so the memo stays fresh across all four ticks.
  for (CpuId c = 0; c < 4; ++c) {
    ThreadParams p;
    p.parent_cpu = c;
    sched.CreateThread(0, p);
    sched.PickNext(0, c);
  }
  // Past every level's busy-stretched balance interval, so each tick balances.
  Time now = Seconds(1);
  for (CpuId c = 0; c < 4; ++c) {
    sched.Tick(now, c);
  }
  EXPECT_GT(sched.stats().balance_group_cache_misses, 0u) << "memo never filled";
  EXPECT_GT(sched.stats().balance_group_cache_hits, 0u)
      << "identical group cpu sets across cores were re-aggregated";
  EXPECT_TRUE(sched.ValidateGroupCache(now));

  // A runqueue membership change invalidates through the shared load epoch:
  // the stale memo is vacuously coherent, and the next balancing round
  // refills rather than serving pre-fork aggregates.
  ThreadParams p;
  p.parent_cpu = 0;
  sched.CreateThread(now, p);
  EXPECT_TRUE(sched.ValidateGroupCache(now));
  uint64_t misses_before = sched.stats().balance_group_cache_misses;
  Time later = now + Seconds(2);
  for (CpuId c = 0; c < 4; ++c) {
    sched.Tick(later, c);
  }
  EXPECT_GT(sched.stats().balance_group_cache_misses, misses_before)
      << "memo served across an invalidation boundary";
  EXPECT_TRUE(sched.ValidateGroupCache(later));
}

// ---- Considered-core traces -----------------------------------------------------------

TEST(ConsideredTraceTest, StockWakeupConsidersOnlyOneNode) {
  Topology topo = Topology::Bulldozer8x8();
  EventRecorder recorder;
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(64), &client, &recorder);
  ThreadParams p;
  p.parent_cpu = 8;  // Node 1.
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 8);
  sched.BlockCurrent(Milliseconds(1), 8);
  sched.Wake(Milliseconds(2), tid, 9);
  // Find the wakeup considered-event.
  bool found = false;
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == TraceEvent::Kind::kConsidered &&
        e.sub == static_cast<uint8_t>(ConsideredKind::kWakeup)) {
      found = true;
      EXPECT_TRUE(topo.CpusOfNode(1).ContainsAll(e.considered));
    }
  }
  EXPECT_TRUE(found);
}

TEST(ConsideredTraceTest, FixedWakeupConsidersIdleCoresMachineWide) {
  Topology topo = Topology::Bulldozer8x8();
  EventRecorder recorder;
  NullClient client;
  SchedFeatures features;
  features.fix_overload_wakeup = true;
  Scheduler sched(topo, features, SchedTunables::ForCpus(64), &client, &recorder);
  ThreadParams p;
  p.parent_cpu = 8;
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 8);
  sched.BlockCurrent(Milliseconds(1), 8);
  // Occupy the previous core so the longest-idle path engages.
  ThreadParams q;
  q.parent_cpu = 8;
  sched.CreateThread(Milliseconds(1), q);
  sched.PickNext(Milliseconds(1), 8);
  sched.Wake(Milliseconds(2), tid, 8);
  bool saw_cross_node = false;
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == TraceEvent::Kind::kConsidered &&
        e.sub == static_cast<uint8_t>(ConsideredKind::kWakeup)) {
      if (!topo.CpusOfNode(1).ContainsAll(e.considered)) {
        saw_cross_node = true;
      }
    }
  }
  EXPECT_TRUE(saw_cross_node);
}

TEST(ConsideredTraceTest, BalanceEventsCoverDomainSpan) {
  Topology topo = Topology::Flat(1, 4, 1);
  EventRecorder recorder;
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client, &recorder);
  ThreadParams p;
  p.parent_cpu = 0;
  sched.CreateThread(0, p);
  sched.CreateThread(0, p);
  sched.PickNext(0, 0);
  sched.PickNext(Milliseconds(1), 1);  // newidle balance records an event.
  CpuSet all;
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == TraceEvent::Kind::kConsidered &&
        e.sub == static_cast<uint8_t>(ConsideredKind::kIdleBalance)) {
      all |= e.considered;
    }
  }
  EXPECT_EQ(all, CpuSet::FirstN(4));
}

}  // namespace
}  // namespace wcores
