#include "src/core/cfs_rq.h"

#include <gtest/gtest.h>

#include <deque>

namespace wcores {
namespace {

class CfsRqTest : public ::testing::Test {
 protected:
  CfsRqTest() : tunables_(SchedTunables::ForCpus(64)), rq_(0, &tunables_) {}

  SchedEntity* NewEntity(int nice = 0) {
    entities_.emplace_back();
    SchedEntity& se = entities_.back();
    se.tid = static_cast<ThreadId>(entities_.size() - 1);
    se.SetNice(nice);
    se.affinity = CpuSet::FirstN(64);
    return &se;
  }

  SchedTunables tunables_;
  CfsRunqueue rq_;
  std::deque<SchedEntity> entities_;
};

TEST_F(CfsRqTest, StartsIdle) {
  EXPECT_TRUE(rq_.Idle());
  EXPECT_EQ(rq_.nr_running(), 0);
  EXPECT_EQ(rq_.queued(), 0);
  EXPECT_EQ(rq_.PickNext(0), nullptr);
}

TEST_F(CfsRqTest, EnqueuePickRun) {
  SchedEntity* se = NewEntity();
  rq_.Enqueue(se, 0, CfsRunqueue::EnqueueKind::kNew);
  EXPECT_EQ(rq_.nr_running(), 1);
  EXPECT_TRUE(se->on_rq);
  SchedEntity* picked = rq_.PickNext(0);
  EXPECT_EQ(picked, se);
  EXPECT_TRUE(se->running);
  EXPECT_EQ(rq_.queued(), 0);
  EXPECT_EQ(rq_.nr_running(), 1);  // curr counts.
}

TEST_F(CfsRqTest, UpdateCurrAdvancesVruntime) {
  SchedEntity* se = NewEntity();
  rq_.Enqueue(se, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.UpdateCurr(Milliseconds(10));
  EXPECT_EQ(se->vruntime, Milliseconds(10));  // nice 0: wall rate.
  EXPECT_EQ(se->sum_exec_runtime, Milliseconds(10));
  EXPECT_EQ(se->slice_exec, Milliseconds(10));
}

TEST_F(CfsRqTest, VruntimeScalesWithWeight) {
  SchedEntity* heavy = NewEntity(-5);  // weight 3121.
  rq_.Enqueue(heavy, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.UpdateCurr(Milliseconds(10));
  // delta_vr = 10ms * 1024 / 3121 ~ 3.28ms.
  EXPECT_NEAR(static_cast<double>(heavy->vruntime), 10e6 * 1024 / 3121, 1e4);
}

TEST_F(CfsRqTest, PicksSmallestVruntime) {
  SchedEntity* a = NewEntity();
  SchedEntity* b = NewEntity();
  a->vruntime = Milliseconds(5);
  b->vruntime = Milliseconds(3);
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kMigrate);
  rq_.Enqueue(b, 0, CfsRunqueue::EnqueueKind::kMigrate);
  EXPECT_EQ(rq_.PickNext(0), b);
}

TEST_F(CfsRqTest, PutCurrRequeuesRunnable) {
  SchedEntity* a = NewEntity();
  SchedEntity* b = NewEntity();
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.Enqueue(b, 0, CfsRunqueue::EnqueueKind::kNew);
  SchedEntity* first = rq_.PickNext(0);
  rq_.UpdateCurr(Milliseconds(50));
  rq_.PutCurr(Milliseconds(50), CfsRunqueue::PutKind::kStillRunnable);
  EXPECT_EQ(rq_.nr_running(), 2);
  // The other entity has lower vruntime now.
  SchedEntity* second = rq_.PickNext(Milliseconds(50));
  EXPECT_NE(second, first);
}

TEST_F(CfsRqTest, PutCurrBlockedRemoves) {
  SchedEntity* se = NewEntity();
  rq_.Enqueue(se, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.PutCurr(Milliseconds(1), CfsRunqueue::PutKind::kBlocked);
  EXPECT_TRUE(rq_.Idle());
  EXPECT_FALSE(se->on_rq);
  EXPECT_EQ(se->last_dequeued, Milliseconds(1));
}

TEST_F(CfsRqTest, WakeupPlacementGetsSleeperCredit) {
  // Run one entity far ahead, then wake a long-sleeping one: it is placed
  // half a latency behind min_vruntime, not at its stale old vruntime.
  SchedEntity* hog = NewEntity();
  rq_.Enqueue(hog, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.UpdateCurr(Seconds(1));
  SchedEntity* sleeper = NewEntity();
  sleeper->vruntime = 0;
  rq_.Enqueue(sleeper, Seconds(1), CfsRunqueue::EnqueueKind::kWakeup);
  Time credit = tunables_.sched_latency / 2;
  EXPECT_EQ(sleeper->vruntime, rq_.min_vruntime() - credit);
}

TEST_F(CfsRqTest, WakeupPlacementDoesNotRewindFreshSleeper) {
  SchedEntity* hog = NewEntity();
  rq_.Enqueue(hog, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.UpdateCurr(Seconds(1));
  SchedEntity* sleeper = NewEntity();
  sleeper->vruntime = rq_.min_vruntime() + Milliseconds(1);  // Barely ahead.
  rq_.Enqueue(sleeper, Seconds(1), CfsRunqueue::EnqueueKind::kWakeup);
  EXPECT_EQ(sleeper->vruntime, rq_.min_vruntime() + Milliseconds(1));
}

TEST_F(CfsRqTest, MinVruntimeMonotonic) {
  SchedEntity* a = NewEntity();
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  Time prev = rq_.min_vruntime();
  for (int i = 1; i <= 10; ++i) {
    rq_.UpdateCurr(Milliseconds(10) * i);
    EXPECT_GE(rq_.min_vruntime(), prev);
    prev = rq_.min_vruntime();
  }
  EXPECT_GT(prev, 0u);
}

TEST_F(CfsRqTest, TimesliceSharesLatencyByWeight) {
  SchedEntity* a = NewEntity();
  SchedEntity* b = NewEntity();
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.Enqueue(b, 0, CfsRunqueue::EnqueueKind::kNew);
  // Two equal threads: half the latency each.
  EXPECT_EQ(rq_.TimesliceFor(*a), tunables_.sched_latency / 2);
}

TEST_F(CfsRqTest, TimesliceFloorsAtMinGranularity) {
  std::vector<SchedEntity*> ses;
  for (int i = 0; i < 100; ++i) {
    SchedEntity* se = NewEntity();
    rq_.Enqueue(se, 0, CfsRunqueue::EnqueueKind::kNew);
    ses.push_back(se);
  }
  EXPECT_EQ(rq_.TimesliceFor(*ses[0]), tunables_.min_granularity);
}

TEST_F(CfsRqTest, CheckPreemptTickAfterSliceExpires) {
  SchedEntity* a = NewEntity();
  SchedEntity* b = NewEntity();
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.Enqueue(b, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.UpdateCurr(Milliseconds(1));
  EXPECT_FALSE(rq_.CheckPreemptTick());
  rq_.UpdateCurr(tunables_.sched_latency);  // Far past the slice.
  EXPECT_TRUE(rq_.CheckPreemptTick());
}

TEST_F(CfsRqTest, NoPreemptionWhenAlone) {
  SchedEntity* a = NewEntity();
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.UpdateCurr(Seconds(5));
  EXPECT_FALSE(rq_.CheckPreemptTick());
}

TEST_F(CfsRqTest, CheckPreemptWakeupNeedsMargin) {
  SchedEntity* curr = NewEntity();
  rq_.Enqueue(curr, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  rq_.UpdateCurr(Milliseconds(2));
  SchedEntity woken;
  woken.tid = 99;
  woken.SetNice(0);
  woken.vruntime = curr->vruntime;  // Equal: no preemption.
  EXPECT_FALSE(rq_.CheckPreemptWakeup(woken, Milliseconds(2)));
  woken.vruntime = 0;
  rq_.UpdateCurr(tunables_.wakeup_granularity * 2);
  EXPECT_TRUE(rq_.CheckPreemptWakeup(woken, tunables_.wakeup_granularity * 2));
}

TEST_F(CfsRqTest, PreemptWakeupOnIdleCpu) {
  SchedEntity woken;
  woken.tid = 99;
  EXPECT_TRUE(rq_.CheckPreemptWakeup(woken, 0));
}

TEST_F(CfsRqTest, LoadSumsEntities) {
  SchedEntity* a = NewEntity();
  SchedEntity* b = NewEntity();
  a->load.SetState(0, true);
  b->load.SetState(0, true);
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.Enqueue(b, 0, CfsRunqueue::EnqueueKind::kNew);
  double load = rq_.LoadAt(0, [](AutogroupId) { return 1.0; });
  EXPECT_NEAR(load, 2048.0, 1.0);
  // Autogroup division (§2.2.1).
  double divided = rq_.LoadAt(0, [](AutogroupId) { return 64.0; });
  EXPECT_NEAR(divided, 32.0, 0.1);
}

TEST_F(CfsRqTest, HasStealableRespectsAffinity) {
  SchedEntity* pinned = NewEntity();
  pinned->affinity = CpuSet::Single(0);
  rq_.Enqueue(pinned, 0, CfsRunqueue::EnqueueKind::kNew);
  EXPECT_TRUE(rq_.HasStealableFor(0));
  EXPECT_FALSE(rq_.HasStealableFor(1));
}

TEST_F(CfsRqTest, CurrIsNotStealable) {
  SchedEntity* a = NewEntity();
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.PickNext(0);
  EXPECT_FALSE(rq_.HasStealableFor(1));  // Only curr; nothing queued.
}

TEST_F(CfsRqTest, TotalWeightTracksMembership) {
  SchedEntity* a = NewEntity();
  SchedEntity* b = NewEntity(5);
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.Enqueue(b, 0, CfsRunqueue::EnqueueKind::kNew);
  EXPECT_EQ(rq_.total_weight(), 1024u + 335u);
  rq_.PickNext(0);  // a runs; weight unchanged.
  EXPECT_EQ(rq_.total_weight(), 1024u + 335u);
  rq_.PutCurr(1, CfsRunqueue::PutKind::kBlocked);
  EXPECT_EQ(rq_.total_weight(), 335u);
  rq_.DequeueQueued(b, 1);
  EXPECT_EQ(rq_.total_weight(), 0u);
}

TEST_F(CfsRqTest, FairnessOverManySlices) {
  // Two equal threads alternating under tick-driven preemption split CPU
  // time ~50/50 (the WFQ core of §2.1).
  SchedEntity* a = NewEntity();
  SchedEntity* b = NewEntity();
  rq_.Enqueue(a, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.Enqueue(b, 0, CfsRunqueue::EnqueueKind::kNew);
  Time now = 0;
  rq_.PickNext(now);
  for (int tick = 0; tick < 1000; ++tick) {
    now += Milliseconds(4);
    rq_.UpdateCurr(now);
    if (rq_.CheckPreemptTick()) {
      rq_.PutCurr(now, CfsRunqueue::PutKind::kStillRunnable);
      rq_.PickNext(now);
    }
  }
  double share_a = static_cast<double>(a->sum_exec_runtime) / static_cast<double>(now);
  EXPECT_NEAR(share_a, 0.5, 0.05);
}

TEST_F(CfsRqTest, WeightedFairnessFavorsHigherWeight) {
  // nice -6 vs nice 0: the weight ratio is 3906/1024 ~ 3.81. Tick-driven
  // preemption at 1ms approximates it closely.
  SchedEntity* heavy = NewEntity(-6);
  SchedEntity* light = NewEntity(0);
  rq_.Enqueue(heavy, 0, CfsRunqueue::EnqueueKind::kNew);
  rq_.Enqueue(light, 0, CfsRunqueue::EnqueueKind::kNew);
  Time now = 0;
  rq_.PickNext(now);
  for (int tick = 0; tick < 16000; ++tick) {
    now += Milliseconds(1);
    rq_.UpdateCurr(now);
    if (rq_.CheckPreemptTick()) {
      rq_.PutCurr(now, CfsRunqueue::PutKind::kStillRunnable);
      rq_.PickNext(now);
    }
  }
  double ratio = static_cast<double>(heavy->sum_exec_runtime) /
                 static_cast<double>(light->sum_exec_runtime);
  EXPECT_NEAR(ratio, 3906.0 / 1024.0, 0.4);
}

}  // namespace
}  // namespace wcores
