// Unit tests driving the Scheduler directly through a fake client (no
// simulator): lifecycle, wakeup placement, balancing, NOHZ, hotplug.
#include "src/core/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/topo/topology.h"

namespace wcores {
namespace {

class FakeClient : public SchedClient {
 public:
  void KickCpu(CpuId cpu) override { kicks.push_back(cpu); }
  void NohzKick(CpuId cpu) override { nohz_kicks.push_back(cpu); }

  std::vector<CpuId> kicks;
  std::vector<CpuId> nohz_kicks;
};

class SchedulerTest : public ::testing::Test {
 protected:
  void Build(const Topology& topo, const SchedFeatures& features = SchedFeatures::Stock()) {
    topo_ = std::make_unique<Topology>(topo);
    sched_ = std::make_unique<Scheduler>(*topo_, features, SchedTunables::ForCpus(topo.n_cores()),
                                         &client_);
  }

  // Creates a thread and makes it the running thread of its cpu.
  ThreadId RunThreadOn(Time now, CpuId cpu) {
    ThreadParams params;
    params.parent_cpu = cpu;
    ThreadId tid = sched_->CreateThread(now, params);
    EXPECT_EQ(sched_->PickNext(now, cpu), tid);
    return tid;
  }

  std::unique_ptr<Topology> topo_;
  FakeClient client_;
  std::unique_ptr<Scheduler> sched_;
};

// ---- Lifecycle ---------------------------------------------------------------

TEST_F(SchedulerTest, CreateThreadLandsOnParentCpu) {
  Build(Topology::Flat(2, 4, 1));
  ThreadParams params;
  params.parent_cpu = 5;
  ThreadId tid = sched_->CreateThread(0, params);
  EXPECT_EQ(sched_->Entity(tid).cpu, 5);
  EXPECT_EQ(sched_->NrRunning(5), 1);
  // The idle cpu was kicked to pick it up.
  EXPECT_EQ(client_.kicks, std::vector<CpuId>{5});
}

TEST_F(SchedulerTest, CreateThreadRespectsAffinity) {
  Build(Topology::Flat(2, 4, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  params.affinity = CpuSet::Single(6);
  ThreadId tid = sched_->CreateThread(0, params);
  EXPECT_EQ(sched_->Entity(tid).cpu, 6);
}

TEST_F(SchedulerTest, ExitEmptiesCpu) {
  Build(Topology::Flat(1, 2, 1));
  RunThreadOn(0, 0);
  sched_->ExitCurrent(Milliseconds(1), 0);
  EXPECT_TRUE(sched_->IsIdleCpu(0));
  EXPECT_EQ(sched_->stats().exits, 1u);
}

TEST_F(SchedulerTest, BlockThenWakeRunnableAgain) {
  Build(Topology::Flat(1, 2, 1));
  ThreadId tid = RunThreadOn(0, 0);
  sched_->BlockCurrent(Milliseconds(1), 0);
  EXPECT_FALSE(sched_->Entity(tid).on_rq);
  CpuId cpu = sched_->Wake(Milliseconds(5), tid, 0);
  EXPECT_TRUE(sched_->Entity(tid).on_rq);
  EXPECT_EQ(cpu, 0);  // Previous core was idle: wake there.
}

TEST_F(SchedulerTest, AutogroupMembershipCounts) {
  Build(Topology::Flat(1, 4, 1));
  AutogroupId group = sched_->CreateAutogroup();
  ThreadParams params;
  params.autogroup = group;
  sched_->CreateThread(0, params);
  sched_->CreateThread(0, params);
  EXPECT_DOUBLE_EQ(sched_->AutogroupDivisor(group), 2.0);
  // Root group unaffected.
  EXPECT_DOUBLE_EQ(sched_->AutogroupDivisor(kRootAutogroup), 1.0);
}

TEST_F(SchedulerTest, AutogroupDisabledDividesByOne) {
  SchedFeatures features;
  features.autogroup_enabled = false;
  Build(Topology::Flat(1, 4, 1), features);
  AutogroupId group = sched_->CreateAutogroup();
  ThreadParams params;
  params.autogroup = group;
  sched_->CreateThread(0, params);
  sched_->CreateThread(0, params);
  EXPECT_DOUBLE_EQ(sched_->AutogroupDivisor(group), 1.0);
}

TEST_F(SchedulerTest, RqLoadDividedByAutogroupSize) {
  Build(Topology::Flat(1, 4, 1));
  AutogroupId big = sched_->CreateAutogroup();
  ThreadParams params;
  params.autogroup = big;
  params.parent_cpu = 0;
  for (int i = 0; i < 8; ++i) {
    sched_->CreateThread(0, params);
  }
  ThreadParams solo;
  solo.parent_cpu = 1;
  solo.autogroup = sched_->CreateAutogroup();
  sched_->CreateThread(0, solo);
  // 8 threads / autogroup of 8 = total ~1024; 1 thread / group of 1 = 1024.
  EXPECT_NEAR(sched_->RqLoad(0, 0), 1024.0, 1.0);
  EXPECT_NEAR(sched_->RqLoad(0, 1), 1024.0, 1.0);
}

// ---- Wakeup placement (§3.3) ----------------------------------------------------

TEST_F(SchedulerTest, StockWakeStaysOnNodeEvenIfOtherNodeIdle) {
  Build(Topology::Flat(2, 2, 1));  // Nodes {0,1} and {2,3}.
  // Fill node 0 with two running threads plus our sleeper.
  ThreadId sleeper = RunThreadOn(0, 0);
  sched_->BlockCurrent(Milliseconds(1), 0);
  RunThreadOn(Milliseconds(1), 0);
  RunThreadOn(Milliseconds(1), 1);
  client_.kicks.clear();
  // Node 1 (cpus 2,3) is fully idle; waker runs on cpu 1 (same node as prev).
  CpuId cpu = sched_->Wake(Milliseconds(2), sleeper, 1);
  EXPECT_TRUE(cpu == 0 || cpu == 1) << "woke on " << cpu;
  EXPECT_GE(sched_->NrRunning(cpu), 2);  // Overload-on-Wakeup.
  EXPECT_EQ(sched_->stats().wakeups_on_busy, 1u);
}

TEST_F(SchedulerTest, FixedWakeUsesLongestIdleCore) {
  SchedFeatures features;
  features.fix_overload_wakeup = true;
  Build(Topology::Flat(2, 2, 1), features);
  ThreadId sleeper = RunThreadOn(0, 0);
  sched_->BlockCurrent(Milliseconds(1), 0);
  RunThreadOn(Milliseconds(1), 0);
  RunThreadOn(Milliseconds(1), 1);
  // cpu 2 idle since 0; make cpu 3 idle later so cpu 2 is the longest idle.
  ThreadId t3 = RunThreadOn(Milliseconds(1), 3);
  sched_->PickNext(Milliseconds(2), 3);
  sched_->BlockCurrent(Milliseconds(2), 3);
  (void)t3;
  CpuId cpu = sched_->Wake(Milliseconds(3), sleeper, 1);
  EXPECT_EQ(cpu, 2);  // The longest-idle core in the system.
  EXPECT_EQ(sched_->NrRunning(2), 1);
}

TEST_F(SchedulerTest, FixedWakePrefersIdlePrevCore) {
  SchedFeatures features;
  features.fix_overload_wakeup = true;
  Build(Topology::Flat(2, 2, 1), features);
  ThreadId sleeper = RunThreadOn(0, 1);
  sched_->BlockCurrent(Milliseconds(1), 1);
  // cpu 1 stays idle; other cores idle too. Local core wins.
  CpuId cpu = sched_->Wake(Milliseconds(5), sleeper, 3);
  EXPECT_EQ(cpu, 1);
}

TEST_F(SchedulerTest, StockWakePrefersIdleCoreOfNode) {
  Build(Topology::Flat(2, 4, 1));
  ThreadId sleeper = RunThreadOn(0, 0);
  sched_->BlockCurrent(Milliseconds(1), 0);
  RunThreadOn(Milliseconds(1), 0);  // prev core now busy.
  CpuId cpu = sched_->Wake(Milliseconds(2), sleeper, 0);
  EXPECT_NE(cpu, 0);
  EXPECT_EQ(topo_->NodeOf(cpu), 0);  // Same node, idle core.
  EXPECT_EQ(sched_->stats().wakeups_on_idle, 1u);
}

TEST_F(SchedulerTest, WakeRespectsAffinity) {
  Build(Topology::Flat(2, 2, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  params.affinity = CpuSet::Single(3);
  ThreadId tid = sched_->CreateThread(0, params);
  sched_->PickNext(0, 3);
  sched_->BlockCurrent(Milliseconds(1), 3);
  CpuId cpu = sched_->Wake(Milliseconds(2), tid, 0);
  EXPECT_EQ(cpu, 3);
}

TEST_F(SchedulerTest, WakePreemptionKicksBusyCpu) {
  Build(Topology::Flat(1, 1, 1));
  // A sleeper blocks, then a hog runs far ahead in vruntime; the wake must
  // preempt the hog (sleeper credit puts the woken thread well behind).
  ThreadId sleeper = RunThreadOn(0, 0);
  sched_->BlockCurrent(Milliseconds(1), 0);
  ThreadParams params;
  params.parent_cpu = 0;
  sched_->CreateThread(Milliseconds(1), params);  // The hog.
  sched_->PickNext(Milliseconds(1), 0);
  sched_->Tick(Milliseconds(201), 0);
  client_.kicks.clear();
  sched_->Wake(Milliseconds(201), sleeper, 0);
  EXPECT_TRUE(sched_->NeedResched(0));
  EXPECT_EQ(client_.kicks, std::vector<CpuId>{0});
}

// ---- Idle bookkeeping -------------------------------------------------------------

TEST_F(SchedulerTest, LongestIdleCpuOrdersByIdleSince) {
  Build(Topology::Flat(1, 4, 1));
  // Make cpus 1 and 2 busy then idle at different times.
  RunThreadOn(0, 1);
  RunThreadOn(0, 2);
  sched_->ExitCurrent(Milliseconds(10), 1);
  sched_->PickNext(Milliseconds(10), 1);
  sched_->ExitCurrent(Milliseconds(20), 2);
  sched_->PickNext(Milliseconds(20), 2);
  // cpus 0,3 idle since boot (0) -> longest; among {1,2}, 1 is older.
  CpuSet only12;
  only12.Set(1);
  only12.Set(2);
  EXPECT_EQ(sched_->LongestIdleCpu(only12), 1);
  EXPECT_EQ(sched_->LongestIdleCpu(CpuSet::FirstN(4)), 0);
}

TEST_F(SchedulerTest, CanStealSeesAffinity) {
  Build(Topology::Flat(1, 4, 1));
  ThreadParams pinned;
  pinned.parent_cpu = 0;
  pinned.affinity = CpuSet::Single(0);
  sched_->CreateThread(0, pinned);
  ThreadParams loose;
  loose.parent_cpu = 0;
  sched_->CreateThread(0, loose);
  EXPECT_TRUE(sched_->CanSteal(1, 0));  // The loose thread is stealable.
  sched_->PickNext(0, 0);               // The pinned one was first; runs.
  EXPECT_TRUE(sched_->CanSteal(1, 0));
}

// ---- Load balancing ----------------------------------------------------------------

TEST_F(SchedulerTest, IdleBalancePullsFromOverloadedCore) {
  Build(Topology::Flat(1, 2, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  sched_->CreateThread(0, params);
  sched_->CreateThread(0, params);
  sched_->PickNext(0, 0);
  // cpu 1 runs out of work -> PickNext triggers (new-)idle balance.
  ThreadId pulled = sched_->PickNext(Milliseconds(1), 1);
  EXPECT_NE(pulled, kInvalidThread);
  EXPECT_EQ(sched_->stats().migrations_idle, 1u);
  EXPECT_EQ(sched_->NrRunning(0), 1);
  EXPECT_EQ(sched_->NrRunning(1), 1);
}

TEST_F(SchedulerTest, IdleBalanceRespectsAffinity) {
  Build(Topology::Flat(1, 2, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  params.affinity = CpuSet::Single(0);
  sched_->CreateThread(0, params);
  sched_->CreateThread(0, params);
  sched_->PickNext(0, 0);
  EXPECT_EQ(sched_->PickNext(Milliseconds(1), 1), kInvalidThread);
  EXPECT_EQ(sched_->NrRunning(0), 2);
}

TEST_F(SchedulerTest, TickKicksNohzBalancerWhenOverloaded) {
  Build(Topology::Flat(1, 4, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  sched_->CreateThread(0, params);
  sched_->CreateThread(0, params);
  sched_->PickNext(0, 0);
  sched_->Tick(Milliseconds(4), 0);
  ASSERT_EQ(client_.nohz_kicks.size(), 1u);
  // The first tickless idle core is chosen.
  EXPECT_EQ(client_.nohz_kicks[0], 1);
}

TEST_F(SchedulerTest, NohzKicksAreRateLimited) {
  Build(Topology::Flat(1, 4, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  sched_->CreateThread(0, params);
  sched_->CreateThread(0, params);
  sched_->PickNext(0, 0);
  sched_->Tick(Milliseconds(4), 0);
  sched_->Tick(Milliseconds(4) + 1, 0);  // Within the kick interval.
  EXPECT_EQ(client_.nohz_kicks.size(), 1u);
}

TEST_F(SchedulerTest, RunNohzBalanceSpreadsWork) {
  Build(Topology::Flat(1, 4, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  for (int i = 0; i < 4; ++i) {
    sched_->CreateThread(0, params);
  }
  sched_->PickNext(0, 0);
  client_.kicks.clear();
  // Balance on behalf of all tickless idle cores (intervals start at 0, so
  // advance time beyond the top-level interval).
  sched_->RunNohzBalance(Milliseconds(50), 1);
  EXPECT_GT(sched_->stats().migrations_nohz, 0u);
  EXPECT_GE(sched_->NrRunning(1), 1);
  // Pulling onto a tickless core must kick it awake.
  EXPECT_FALSE(client_.kicks.empty());
}

TEST_F(SchedulerTest, NoBalanceCallsBeforeIntervalElapses) {
  Build(Topology::Flat(1, 4, 1));
  ThreadParams params;
  params.parent_cpu = 0;
  sched_->CreateThread(0, params);
  sched_->CreateThread(0, params);
  sched_->PickNext(0, 0);
  uint64_t calls_before = sched_->stats().balance_calls;
  sched_->RunNohzBalance(Microseconds(100), 1);  // Earlier than any interval.
  uint64_t skips = sched_->stats().balance_interval_skips;
  EXPECT_EQ(sched_->stats().balance_calls, calls_before);
  EXPECT_GT(skips, 0u);
}

// ---- Hotplug (§3.4) -------------------------------------------------------------------

TEST_F(SchedulerTest, OfflineEvacuatesThreads) {
  Build(Topology::Flat(2, 2, 1));
  ThreadParams params;
  params.parent_cpu = 1;
  ThreadId a = sched_->CreateThread(0, params);
  ThreadId b = sched_->CreateThread(0, params);
  sched_->SetCpuOnline(Milliseconds(1), 1, false);
  EXPECT_FALSE(sched_->IsOnline(1));
  EXPECT_EQ(sched_->NrRunning(1), 0);
  EXPECT_NE(sched_->Entity(a).cpu, 1);
  EXPECT_NE(sched_->Entity(b).cpu, 1);
  EXPECT_EQ(sched_->stats().migrations_hotplug, 2u);
}

TEST_F(SchedulerTest, OfflineCpuReceivesNoThreads) {
  Build(Topology::Flat(2, 2, 1));
  sched_->SetCpuOnline(0, 2, false);
  ThreadParams params;
  params.parent_cpu = 2;
  ThreadId tid = sched_->CreateThread(Milliseconds(1), params);
  EXPECT_NE(sched_->Entity(tid).cpu, 2);
}

TEST_F(SchedulerTest, StockRegenerationDropsNumaLevels) {
  Build(Topology::Bulldozer8x8());
  EXPECT_EQ(sched_->Domains(0).domains.size(), 4u);
  sched_->SetCpuOnline(Milliseconds(1), 3, false);
  EXPECT_EQ(sched_->Domains(0).domains.size(), 2u);  // SMT + NODE only.
  sched_->SetCpuOnline(Milliseconds(2), 3, true);
  EXPECT_EQ(sched_->Domains(0).domains.size(), 2u);  // Still broken.
}

TEST_F(SchedulerTest, FixedRegenerationKeepsNumaLevels) {
  SchedFeatures features;
  features.fix_missing_domains = true;
  Build(Topology::Bulldozer8x8(), features);
  sched_->SetCpuOnline(Milliseconds(1), 3, false);
  EXPECT_EQ(sched_->Domains(0).domains.size(), 4u);
  sched_->SetCpuOnline(Milliseconds(2), 3, true);
  EXPECT_EQ(sched_->Domains(0).domains.size(), 4u);
  EXPECT_TRUE(sched_->Domains(0).domains.back().span.Test(3));
}

TEST_F(SchedulerTest, ReonlinedCpuIsUsableAgain) {
  Build(Topology::Flat(1, 2, 1));
  sched_->SetCpuOnline(0, 1, false);
  sched_->SetCpuOnline(Milliseconds(1), 1, true);
  EXPECT_TRUE(sched_->IsOnline(1));
  ThreadParams params;
  params.parent_cpu = 1;
  ThreadId tid = sched_->CreateThread(Milliseconds(2), params);
  EXPECT_EQ(sched_->Entity(tid).cpu, 1);
}

TEST_F(SchedulerTest, AffinityBrokenWhenAllAllowedCpusOffline) {
  Build(Topology::Flat(1, 2, 1));
  ThreadParams params;
  params.parent_cpu = 1;
  params.affinity = CpuSet::Single(1);
  ThreadId tid = sched_->CreateThread(0, params);
  sched_->SetCpuOnline(Milliseconds(1), 1, false);
  // The kernel breaks affinity rather than losing the thread.
  EXPECT_EQ(sched_->Entity(tid).cpu, 0);
  EXPECT_TRUE(sched_->Entity(tid).on_rq);
}

// ---- vruntime re-basing --------------------------------------------------------------

TEST_F(SchedulerTest, CrossCpuWakeRebasesVruntime) {
  SchedFeatures features;
  features.fix_overload_wakeup = true;
  Build(Topology::Flat(1, 2, 1), features);
  ThreadId sleeper = RunThreadOn(0, 0);
  sched_->Tick(Milliseconds(100), 0);  // Accumulate vruntime on cpu 0.
  sched_->BlockCurrent(Milliseconds(100), 0);
  // Occupy cpu 0 so the wake lands on idle cpu 1.
  RunThreadOn(Milliseconds(100), 0);
  CpuId cpu = sched_->Wake(Milliseconds(101), sleeper, 0);
  EXPECT_EQ(cpu, 1);
  // vruntime must be sane relative to cpu 1's min_vruntime (not 100ms ahead).
  EXPECT_LE(sched_->Entity(sleeper).vruntime, Milliseconds(150));
}

TEST_F(SchedulerTest, StatsCountersAdvance) {
  Build(Topology::Flat(1, 2, 1));
  ThreadId tid = RunThreadOn(0, 0);
  sched_->Tick(Milliseconds(4), 0);
  sched_->BlockCurrent(Milliseconds(5), 0);
  sched_->Wake(Milliseconds(6), tid, 0);
  const SchedStats& stats = sched_->stats();
  EXPECT_EQ(stats.forks, 1u);
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.wakeups, 1u);
}

}  // namespace
}  // namespace wcores
