#include "src/core/pelt.h"

#include <gtest/gtest.h>

namespace wcores {
namespace {

TEST(PeltTest, NewTrackerStartsFull) {
  LoadTracker t;
  EXPECT_DOUBLE_EQ(t.ValueAt(0), 1.0);
}

TEST(PeltTest, DecaysTowardZeroWhileBlocked) {
  LoadTracker t;
  t.SetState(0, false);
  double v32 = t.ValueAt(Milliseconds(32));
  EXPECT_NEAR(v32, 0.5, 1e-9);  // One half-life.
  double v64 = t.ValueAt(Milliseconds(64));
  EXPECT_NEAR(v64, 0.25, 1e-9);
}

TEST(PeltTest, GrowsTowardOneWhileRunnable) {
  LoadTracker t(0.0);
  t.SetState(0, true);
  EXPECT_NEAR(t.ValueAt(Milliseconds(32)), 0.5, 1e-9);
  EXPECT_NEAR(t.ValueAt(Milliseconds(320)), 1.0, 1e-3);
}

TEST(PeltTest, ValueAtIsPure) {
  LoadTracker t;
  t.SetState(0, false);
  double a = t.ValueAt(Milliseconds(10));
  double b = t.ValueAt(Milliseconds(10));
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(t.last_update(), 0u);
}

TEST(PeltTest, AdvanceCommitsDecay) {
  LoadTracker t;
  t.SetState(0, false);
  t.Advance(Milliseconds(32));
  EXPECT_EQ(t.last_update(), Milliseconds(32));
  EXPECT_NEAR(t.ValueAt(Milliseconds(32)), 0.5, 1e-9);
  EXPECT_NEAR(t.ValueAt(Milliseconds(64)), 0.25, 1e-9);
}

TEST(PeltTest, FiftyPercentDutyCycleConvergesToHalf) {
  LoadTracker t(0.0);
  Time now = 0;
  for (int i = 0; i < 2000; ++i) {
    t.SetState(now, true);
    now += Milliseconds(1);
    t.SetState(now, false);
    now += Milliseconds(1);
  }
  EXPECT_NEAR(t.ValueAt(now), 0.5, 0.03);
}

TEST(PeltTest, MostlyIdleThreadHasLowLoad) {
  // "If a thread does not use much of a CPU, its load will be decreased
  // accordingly" (§2.2.1): 10% duty cycle -> ~0.1.
  LoadTracker t(0.0);
  Time now = 0;
  for (int i = 0; i < 2000; ++i) {
    t.SetState(now, true);
    now += Microseconds(200);
    t.SetState(now, false);
    now += Microseconds(1800);
  }
  EXPECT_NEAR(t.ValueAt(now), 0.1, 0.03);
}

TEST(PeltTest, LongBlockedGapShortCircuitsToZero) {
  LoadTracker t;
  t.SetState(0, false);
  EXPECT_DOUBLE_EQ(t.ValueAt(Seconds(100)), 0.0);
}

TEST(PeltTest, TimeGoingBackwardsIsClamped) {
  LoadTracker t;
  t.Advance(Milliseconds(10));
  EXPECT_DOUBLE_EQ(t.ValueAt(Milliseconds(5)), t.ValueAt(Milliseconds(10)));
}

TEST(PeltTest, StateIsVisible) {
  LoadTracker t;
  t.SetState(5, true);
  EXPECT_TRUE(t.runnable());
  t.SetState(6, false);
  EXPECT_FALSE(t.runnable());
}

}  // namespace
}  // namespace wcores
