#include "src/core/pelt.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace wcores {
namespace {

TEST(PeltTest, NewTrackerStartsFull) {
  LoadTracker t;
  EXPECT_DOUBLE_EQ(t.ValueAt(0), 1.0);
}

TEST(PeltTest, DecaysTowardZeroWhileBlocked) {
  LoadTracker t;
  t.SetState(0, false);
  double v32 = t.ValueAt(Milliseconds(32));
  EXPECT_NEAR(v32, 0.5, 1e-9);  // One half-life.
  double v64 = t.ValueAt(Milliseconds(64));
  EXPECT_NEAR(v64, 0.25, 1e-9);
}

TEST(PeltTest, GrowsTowardOneWhileRunnable) {
  LoadTracker t(0.0);
  t.SetState(0, true);
  EXPECT_NEAR(t.ValueAt(Milliseconds(32)), 0.5, 1e-9);
  EXPECT_NEAR(t.ValueAt(Milliseconds(320)), 1.0, 1e-3);
}

TEST(PeltTest, ValueAtIsPure) {
  LoadTracker t;
  t.SetState(0, false);
  double a = t.ValueAt(Milliseconds(10));
  double b = t.ValueAt(Milliseconds(10));
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(t.last_update(), 0u);
}

TEST(PeltTest, AdvanceCommitsDecay) {
  LoadTracker t;
  t.SetState(0, false);
  t.Advance(Milliseconds(32));
  EXPECT_EQ(t.last_update(), Milliseconds(32));
  EXPECT_NEAR(t.ValueAt(Milliseconds(32)), 0.5, 1e-9);
  EXPECT_NEAR(t.ValueAt(Milliseconds(64)), 0.25, 1e-9);
}

TEST(PeltTest, FiftyPercentDutyCycleConvergesToHalf) {
  LoadTracker t(0.0);
  Time now = 0;
  for (int i = 0; i < 2000; ++i) {
    t.SetState(now, true);
    now += Milliseconds(1);
    t.SetState(now, false);
    now += Milliseconds(1);
  }
  EXPECT_NEAR(t.ValueAt(now), 0.5, 0.03);
}

TEST(PeltTest, MostlyIdleThreadHasLowLoad) {
  // "If a thread does not use much of a CPU, its load will be decreased
  // accordingly" (§2.2.1): 10% duty cycle -> ~0.1.
  LoadTracker t(0.0);
  Time now = 0;
  for (int i = 0; i < 2000; ++i) {
    t.SetState(now, true);
    now += Microseconds(200);
    t.SetState(now, false);
    now += Microseconds(1800);
  }
  EXPECT_NEAR(t.ValueAt(now), 0.1, 0.03);
}

TEST(PeltTest, LongBlockedGapShortCircuitsToZero) {
  LoadTracker t;
  t.SetState(0, false);
  EXPECT_DOUBLE_EQ(t.ValueAt(Seconds(100)), 0.0);
}

TEST(PeltTest, TimeGoingBackwardsIsClamped) {
  LoadTracker t;
  t.Advance(Milliseconds(10));
  EXPECT_DOUBLE_EQ(t.ValueAt(Milliseconds(5)), t.ValueAt(Milliseconds(10)));
}

TEST(PeltTest, StateIsVisible) {
  LoadTracker t;
  t.SetState(5, true);
  EXPECT_TRUE(t.runnable());
  t.SetState(6, false);
  EXPECT_FALSE(t.runnable());
}

// ---- Decay-forward exactness (the balancer's cross-instant memos) ----------
//
// The golden table below pins the exact IEEE-754 doubles Decay produces at
// period multiples. If any of these drift — a different exp2, a different
// fold, a "harmless" refactor to fixed-point — every cached load in the
// scheduler changes and all sweep trace hashes break, so this test fails
// first, with a readable diff.
TEST(PeltDecayForwardTest, GoldenDecayTable) {
  struct Row {
    Time elapsed;
    double factor;
  };
  const Row kGolden[] = {
      {Milliseconds(1), 0x1.f50765b6e4540p-1},
      {Milliseconds(2), 0x1.ea4afa2a490dap-1},
      {Milliseconds(4), 0x1.d5818dcfba487p-1},
      {Milliseconds(8), 0x1.ae89f995ad3adp-1},
      {Milliseconds(16), 0x1.6a09e667f3bcdp-1},  // Half a half-life: 2^-0.5.
      {Milliseconds(32), 0x1.0000000000000p-1},  // One half-life: exactly 0.5.
      {Milliseconds(48), 0x1.6a09e667f3bcdp-2},
      {Milliseconds(64), 0x1.0000000000000p-2},  // Two half-lives: exactly 0.25.
      {Milliseconds(96), 0x1.0000000000000p-3},
      {Milliseconds(128), 0x1.0000000000000p-4},
      {Milliseconds(320), 0x1.0000000000000p-10},
      {Milliseconds(640), 0x1.0000000000000p-20},  // Saturation horizon itself.
      {Milliseconds(641), 0.0},                    // Past it: exact zero.
      {Seconds(100), 0.0},
  };
  for (const Row& row : kGolden) {
    EXPECT_EQ(LoadTracker::Decay(row.elapsed), row.factor)
        << "Decay(" << row.elapsed << ") drifted";
  }
}

// The closed form DecayPeriods(p, n) == Decay(n*p) is exact by construction;
// the per-period multiplicative roll-forward Decay(p)^n is NOT the same
// doubles. Both facts are part of the design contract: the balancer's caches
// must never scale a sum by a decay product, because that product is not
// bit-identical to re-evaluating the trackers.
TEST(PeltDecayForwardTest, ClosedFormBeatsIteratedMultiply) {
  const Time period = Milliseconds(3);
  double iterated = 1.0;
  bool any_divergence = false;
  for (int n = 1; n <= 64; ++n) {
    iterated *= LoadTracker::Decay(period);
    double closed = LoadTracker::DecayPeriods(period, n);
    EXPECT_EQ(closed, LoadTracker::Decay(period * static_cast<Time>(n)));
    if (closed != iterated) {
      any_divergence = true;
    }
  }
  EXPECT_TRUE(any_divergence)
      << "Decay(p)^n matched Decay(n*p) bit-for-bit across 64 periods; the "
         "constancy-based memo design would be over-conservative";
}

// The identity ConstantFrom's case 1 rests on: for every decay factor k in
// [0, 1], fl(1.0 * k + fl(1.0 - k)) == 1.0 — a fully-ramped runnable tracker
// is a fixed point of ValueAt. Swept densely over elapsed times (which is
// how k values arise in the tracker), including the sub-half-life range
// where k > 0.5 (Sterbenz territory) and the deep tail where fl(1-k) rounds.
TEST(PeltDecayForwardTest, FullyRampedRunnableIsFixedPoint) {
  for (Time elapsed = 1; elapsed <= LoadTracker::kSaturationHorizon + Milliseconds(1);
       elapsed += Microseconds(97)) {
    double k = LoadTracker::Decay(elapsed);
    EXPECT_EQ(1.0 * k + (1.0 - k), 1.0) << "elapsed=" << elapsed << " k=" << k;
  }
  // And through the tracker itself, at awkward instants.
  LoadTracker t(1.0);
  t.SetState(0, true);
  for (Time now : {Nanoseconds(1), Microseconds(1), Microseconds(333), Milliseconds(1),
                   Milliseconds(31), Milliseconds(32), Milliseconds(33), Milliseconds(555),
                   Milliseconds(641), Seconds(100)}) {
    EXPECT_EQ(t.ValueAt(now), 1.0) << "now=" << now;
  }
}

TEST(PeltDecayForwardTest, ConstantFromTruthTable) {
  const Time t0 = Milliseconds(100);

  // Case 1: born full and runnable from birth. (SetState at a later instant
  // would decay the tracker first — trackers are born non-runnable.)
  LoadTracker ramped(1.0);
  ramped.SetState(0, true);
  EXPECT_TRUE(ramped.ConstantFrom(t0));
  EXPECT_TRUE(ramped.ConstantFrom(t0 + Seconds(10)));

  LoadTracker drained(0.0);  // Case 2: fully decayed and blocked.
  drained.SetState(t0, false);
  EXPECT_TRUE(drained.ConstantFrom(t0));

  LoadTracker ramping(0.5);  // Mid-ramp: value genuinely changes.
  ramping.SetState(t0, true);
  EXPECT_FALSE(ramping.ConstantFrom(t0));
  EXPECT_FALSE(ramping.ConstantFrom(t0 + Milliseconds(1)));
  // ...until the query instant clears the saturation horizon (case 3).
  EXPECT_TRUE(ramping.ConstantFrom(t0 + LoadTracker::kSaturationHorizon + 1));

  LoadTracker draining(0.5);  // Mid-decay: same, mirrored.
  draining.SetState(t0, false);
  EXPECT_FALSE(draining.ConstantFrom(t0 + Milliseconds(1)));
  EXPECT_TRUE(draining.ConstantFrom(t0 + LoadTracker::kSaturationHorizon + 1));

  // The predicate's promise, verified literally: once constant, ValueAt
  // returns the same double at every later instant.
  for (const LoadTracker* t : {&ramped, &drained}) {
    double v0 = t->ValueAt(t0);
    for (int n = 1; n <= 64; ++n) {
      EXPECT_EQ(t->ValueAt(t0 + Milliseconds(7) * static_cast<Time>(n)), v0);
    }
  }
}

// Advance cannot break an established constancy: committing a constant
// tracker at a later instant re-derives the same fixed point.
TEST(PeltDecayForwardTest, AdvancePreservesConstancy) {
  LoadTracker t(1.0);
  t.SetState(0, true);
  ASSERT_TRUE(t.ConstantFrom(0));
  for (Time now = Milliseconds(5); now < Seconds(2); now += Milliseconds(173)) {
    t.Advance(now);
    EXPECT_TRUE(t.ConstantFrom(now));
    EXPECT_EQ(t.ValueAt(now + Seconds(1)), 1.0);
  }
}

// A hog that was not born full converges to *exactly* 1.0 by rounding after
// ~54 half-lives of continuous runnability — from then on it is in the
// constant domain and the balancer's caches can roll it forward.
TEST(PeltDecayForwardTest, ContinuousRunnabilityReachesExactOne) {
  LoadTracker t(0.0);
  t.SetState(0, true);
  EXPECT_FALSE(t.ConstantFrom(Milliseconds(500)));
  const Time converged = 54 * LoadTracker::kHalfLife;
  EXPECT_EQ(t.ValueAt(converged), 1.0);
  t.Advance(converged);
  EXPECT_TRUE(t.ConstantFrom(converged));
}

}  // namespace
}  // namespace wcores
