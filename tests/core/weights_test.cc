#include "src/core/weights.h"

#include <gtest/gtest.h>

namespace wcores {
namespace {

TEST(WeightsTest, Nice0IsBaseline) {
  EXPECT_EQ(NiceToWeight(0), kNice0Weight);
  EXPECT_EQ(NiceToWeight(0), 1024u);
}

TEST(WeightsTest, ExtremesMatchKernelTable) {
  EXPECT_EQ(NiceToWeight(-20), 88761u);
  EXPECT_EQ(NiceToWeight(19), 15u);
}

TEST(WeightsTest, MonotonicallyDecreasing) {
  for (int nice = kMinNice; nice < kMaxNice; ++nice) {
    EXPECT_GT(NiceToWeight(nice), NiceToWeight(nice + 1)) << "nice " << nice;
  }
}

TEST(WeightsTest, EachStepIsAboutTwentyFivePercent) {
  // "a thread gets ~10% more CPU per -1 nice step" translates to weight
  // ratios of ~1.25 between adjacent levels.
  for (int nice = kMinNice; nice < kMaxNice; ++nice) {
    double ratio =
        static_cast<double>(NiceToWeight(nice)) / static_cast<double>(NiceToWeight(nice + 1));
    EXPECT_GT(ratio, 1.15) << "nice " << nice;
    EXPECT_LT(ratio, 1.40) << "nice " << nice;
  }
}

TEST(WeightsTest, InverseWeightRoundTrips) {
  // inv_weight = 2^32 / weight within rounding.
  for (int nice = kMinNice; nice <= kMaxNice; ++nice) {
    double product = static_cast<double>(NiceToWeight(nice)) *
                     static_cast<double>(NiceToInverseWeight(nice));
    EXPECT_NEAR(product / 4294967296.0, 1.0, 0.01) << "nice " << nice;
  }
}

TEST(WeightsTest, Nice5IsRoughlyOneThird) {
  // 1024 / 335 ~ 3: a nice-5 thread gets about a third of a nice-0 thread.
  EXPECT_EQ(NiceToWeight(5), 335u);
}

}  // namespace
}  // namespace wcores
