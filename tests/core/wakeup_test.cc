// The stock wakeup path's wake_affine choice (§2.2.2 / §3.3): the scheduler
// chooses between the sleeper's node and the waker's node by load, then
// searches only that node.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/scheduler.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

class NullClient : public SchedClient {
 public:
  void KickCpu(CpuId) override {}
  void NohzKick(CpuId) override {}
};

class WakeAffineTest : public ::testing::Test {
 protected:
  WakeAffineTest()
      : topo_(Topology::Flat(2, 2, 1)),
        sched_(topo_, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client_) {}

  ThreadId MakeSleeperOn(CpuId cpu) {
    ThreadParams p;
    p.parent_cpu = cpu;
    ThreadId tid = sched_.CreateThread(0, p);
    sched_.PickNext(0, cpu);
    sched_.BlockCurrent(Milliseconds(1), cpu);
    return tid;
  }

  void RunHogOn(CpuId cpu) {
    ThreadParams p;
    p.parent_cpu = cpu;
    sched_.CreateThread(Milliseconds(1), p);
    sched_.PickNext(Milliseconds(1), cpu);
    sched_.Tick(Milliseconds(60), cpu);  // Build up PELT load.
  }

  Topology topo_;
  NullClient client_;
  Scheduler sched_;
};

TEST_F(WakeAffineTest, CrossNodeWakerWinsWhenItsNodeIsIdler) {
  ThreadId sleeper = MakeSleeperOn(0);  // Slept on node 0.
  // Node 0 heavily loaded; node 1 (waker's node) empty except the waker.
  RunHogOn(0);
  RunHogOn(1);
  CpuId cpu = sched_.Wake(Milliseconds(61), sleeper, 2);
  EXPECT_EQ(topo_.NodeOf(cpu), 1);  // Migrated toward the idler waker node.
}

TEST_F(WakeAffineTest, SleeperNodeWinsWhenWakerNodeIsBusier) {
  ThreadId sleeper = MakeSleeperOn(0);
  // Waker's node (node 1) is the loaded one.
  RunHogOn(2);
  RunHogOn(3);
  CpuId cpu = sched_.Wake(Milliseconds(61), sleeper, 2);
  EXPECT_EQ(topo_.NodeOf(cpu), 0);  // Stays home.
}

TEST_F(WakeAffineTest, TieKeepsSleeperNode) {
  ThreadId sleeper = MakeSleeperOn(1);
  CpuId cpu = sched_.Wake(Milliseconds(2), sleeper, 2);
  EXPECT_EQ(topo_.NodeOf(cpu), 0);  // Equal (zero) loads: prev node wins.
}

TEST_F(WakeAffineTest, SameNodeWakerNeverLeavesTheNode) {
  // The §3.3 statement: sleeper and waker on the same node -> only that
  // node is considered, even though the other node is fully idle.
  ThreadId sleeper = MakeSleeperOn(0);
  RunHogOn(0);
  RunHogOn(1);  // Node 0 fully busy; node 1 fully idle.
  CpuId cpu = sched_.Wake(Milliseconds(61), sleeper, 1);
  EXPECT_EQ(topo_.NodeOf(cpu), 0);
  EXPECT_GE(sched_.NrRunning(cpu), 2);  // The Overload-on-Wakeup signature.
}

TEST_F(WakeAffineTest, TimerWakeUsesSleeperCoreAsWaker) {
  // Wake with waker == prev core (how the simulator delivers timer wakes):
  // the search set is exactly the sleeper's node.
  ThreadId sleeper = MakeSleeperOn(3);
  CpuId cpu = sched_.Wake(Milliseconds(2), sleeper, 3);
  EXPECT_EQ(cpu, 3);
}

}  // namespace
}  // namespace wcores
