// Directed regressions for the balance-due wheel (the epoch-ized periodic
// balancer): hotplug of the cpu whose dues fire next, feature toggles
// mid-run — the bug class where a memo layer survives a reconfiguration it
// should have observed — and the NOHZ-kick target's equivalence with the
// linear scan it replaced.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

class NullClient : public SchedClient {
 public:
  void KickCpu(CpuId) override {}
  void NohzKick(CpuId) override {}
};

// The scan NohzKickTarget replaced: first online cpu, ascending id, that is
// tickless and idle.
CpuId ScanKickTarget(const Scheduler& sched, int n_cores) {
  for (CpuId c = 0; c < n_cores; ++c) {
    if (sched.IsOnline(c) && sched.IsTickless(c) && sched.IsIdleCpu(c)) {
      return c;
    }
  }
  return kInvalidCpu;
}

// The cpu whose per-cpu wheel holds the earliest idle-path due, recomputed
// from the domain trees (what the wheel itself caches as all_idle).
CpuId CpuHoldingNextDue(const Scheduler& sched, int n_cores) {
  CpuId best = kInvalidCpu;
  Time best_due = 0;
  for (CpuId c = 0; c < n_cores; ++c) {
    if (!sched.IsOnline(c)) {
      continue;
    }
    for (const SchedDomain& sd : sched.Domains(c).domains) {
      Time due = sd.last_balance + sd.balance_interval;
      if (best == kInvalidCpu || due < best_due) {
        best = c;
        best_due = due;
      }
    }
  }
  return best;
}

class BalanceWheelTest : public ::testing::Test {
 protected:
  static constexpr int kCpus = 8;

  void Build() {
    topo_ = std::make_unique<Topology>(Topology::Flat(2, 4, 1));
    sched_ = std::make_unique<Scheduler>(*topo_, SchedFeatures::AllFixed(),
                                         SchedTunables::ForCpus(topo_->n_cores()), &client_);
  }

  // `threads` runnable threads per cpu in `busy`, running the first of
  // each. Two threads makes the cpu overloaded (balancing has something to
  // move); one keeps it busy but sterile (nothing stealable).
  void Populate(const std::vector<CpuId>& busy, int threads) {
    for (CpuId cpu : busy) {
      for (int i = 0; i < threads; ++i) {
        ThreadParams p;
        p.parent_cpu = cpu;
        sched_->CreateThread(clock_, p);
      }
      sched_->PickNext(clock_, cpu);
    }
  }

  // Ticks every busy online cpu once per tick period for `rounds` periods,
  // validating the wheel after every instant. Busy-cpu balance intervals
  // are stretched by busy_balance_factor (32x), so reaching a periodic
  // fire takes spans of ~128 ms — callers pick `rounds` accordingly.
  void TickRounds(int rounds) {
    for (int r = 0; r < rounds; ++r) {
      clock_ += Milliseconds(4);
      for (CpuId c = 0; c < kCpus; ++c) {
        if (sched_->IsOnline(c) && !sched_->IsIdleCpu(c)) {
          sched_->Tick(clock_, c);
        }
      }
      ASSERT_TRUE(sched_->ValidateBalanceWheel()) << "t=" << clock_;
      ASSERT_TRUE(sched_->ValidateIdleIndex()) << "t=" << clock_;
    }
  }

  std::unique_ptr<Topology> topo_;
  NullClient client_;
  std::unique_ptr<Scheduler> sched_;
  Time clock_ = 0;
};

TEST_F(BalanceWheelTest, OfflineCpuHoldingNextDueMidRun) {
  Build();
  Populate({0, 1, 2, 3, 4, 5}, /*threads=*/2);
  ASSERT_TRUE(sched_->ValidateBalanceWheel());

  TickRounds(8);

  // Offline precisely the cpu whose dues fire next: its wheel state must
  // drop out cleanly (fresh domains, fresh wheel) and everyone else's must
  // survive the rebuild.
  CpuId victim = CpuHoldingNextDue(*sched_, kCpus);
  ASSERT_NE(victim, kInvalidCpu);
  clock_ += Milliseconds(1);
  sched_->SetCpuOnline(clock_, victim, false);
  ASSERT_TRUE(sched_->ValidateBalanceWheel()) << "after offlining " << victim;
  ASSERT_TRUE(sched_->ValidateIdleIndex());

  // Balancing must keep firing on the shrunken machine: the rebuilt wheel
  // may not wedge the periodic path (a mis-derived due would push the next
  // fire arbitrarily far out). 60 rounds spans the 32x busy interval of
  // both remaining levels.
  uint64_t calls_before = sched_->stats().balance_calls;
  TickRounds(60);
  EXPECT_GT(sched_->stats().balance_calls, calls_before)
      << "periodic balancing stopped after hotplug of the next-due cpu";

  // And back online: same story.
  clock_ += Milliseconds(1);
  sched_->SetCpuOnline(clock_, victim, true);
  ASSERT_TRUE(sched_->ValidateBalanceWheel()) << "after onlining " << victim;
  calls_before = sched_->stats().balance_calls;
  TickRounds(60);
  EXPECT_GT(sched_->stats().balance_calls, calls_before);
}

TEST_F(BalanceWheelTest, FeatureToggleMidRunRecomputesDues) {
  Build();
  Populate({0, 1, 2, 3}, /*threads=*/2);
  TickRounds(8);

  // Flip every balance-relevant feature mid-run. Metric and autogroup flags
  // take effect immediately (feature generation); domain-construction flags
  // at the next rebuild. The wheel must stay coherent through both.
  sched_->UpdateFeatures(SchedFeatures::Stock());
  ASSERT_TRUE(sched_->ValidateBalanceWheel()) << "after toggling features off";

  uint64_t calls_before = sched_->stats().balance_calls;
  TickRounds(60);
  EXPECT_GT(sched_->stats().balance_calls, calls_before)
      << "periodic balancing stopped after feature toggle";

  // Force a rebuild under the flipped construction flags (hotplug round
  // trip), then flip everything back on mid-run.
  clock_ += Milliseconds(1);
  sched_->SetCpuOnline(clock_, 7, false);
  sched_->SetCpuOnline(clock_, 7, true);
  ASSERT_TRUE(sched_->ValidateBalanceWheel()) << "after rebuild under flipped flags";

  sched_->UpdateFeatures(SchedFeatures::AllFixed());
  ASSERT_TRUE(sched_->ValidateBalanceWheel()) << "after toggling features back on";
  calls_before = sched_->stats().balance_calls;
  TickRounds(60);
  EXPECT_GT(sched_->stats().balance_calls, calls_before);
}

TEST_F(BalanceWheelTest, NohzKickTargetMatchesLinearScan) {
  Build();
  // Start with everything idle: the constructor makes every cpu tickless.
  ASSERT_EQ(sched_->NohzKickTarget(), ScanKickTarget(*sched_, kCpus));

  // Busy cpus 0 and 2 — one thread each, so newidle balancing elsewhere
  // has nothing to steal and the busy/idle split stays put. The first
  // tickless idle cpu is now 1.
  Populate({0, 2}, /*threads=*/1);
  ASSERT_EQ(sched_->NohzKickTarget(), ScanKickTarget(*sched_, kCpus));
  ASSERT_EQ(sched_->NohzKickTarget(), 1);

  // Busy cpu 1 as well: the target shifts past it.
  Populate({1}, /*threads=*/1);
  ASSERT_EQ(sched_->NohzKickTarget(), ScanKickTarget(*sched_, kCpus));
  ASSERT_EQ(sched_->NohzKickTarget(), 3);

  // Offline the would-be target: both sides must skip it.
  clock_ += Milliseconds(1);
  sched_->SetCpuOnline(clock_, 3, false);
  ASSERT_EQ(sched_->NohzKickTarget(), ScanKickTarget(*sched_, kCpus));
  ASSERT_EQ(sched_->NohzKickTarget(), 4);

  // A busy cpu going idle re-enters both views.
  clock_ += Milliseconds(1);
  sched_->BlockCurrent(clock_, 2);
  sched_->PickNext(clock_, 2);
  ASSERT_TRUE(sched_->IsIdleCpu(2));
  ASSERT_EQ(sched_->NohzKickTarget(), ScanKickTarget(*sched_, kCpus));
  ASSERT_EQ(sched_->NohzKickTarget(), 2);

  // Back online: the lower-id idle cpu 2 still wins, and cpu 3 reappears
  // in both views once 2 is busy again.
  clock_ += Milliseconds(1);
  sched_->SetCpuOnline(clock_, 3, true);
  ASSERT_EQ(sched_->NohzKickTarget(), ScanKickTarget(*sched_, kCpus));
  Populate({2}, /*threads=*/1);
  ASSERT_EQ(sched_->NohzKickTarget(), ScanKickTarget(*sched_, kCpus));
  ASSERT_EQ(sched_->NohzKickTarget(), 3);

  ASSERT_TRUE(sched_->ValidateBalanceWheel());
  ASSERT_TRUE(sched_->ValidateIdleIndex());
}

}  // namespace
}  // namespace wcores
