#include "src/core/rbtree.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/simkit/rng.h"

namespace wcores {
namespace {

struct Item {
  uint64_t key = 0;
  int id = 0;
  RbNode node;
};

struct ItemLess {
  bool operator()(const Item& a, const Item& b) const {
    if (a.key != b.key) {
      return a.key < b.key;
    }
    return a.id < b.id;
  }
};

using Tree = RbTree<Item, &Item::node, ItemLess>;

TEST(RbTreeTest, EmptyTree) {
  Tree tree;
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Leftmost(), nullptr);
  EXPECT_EQ(tree.Validate(), 0);
}

TEST(RbTreeTest, SingleInsertErase) {
  Tree tree;
  Item a{5, 0, {}};
  tree.Insert(&a);
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Leftmost(), &a);
  EXPECT_TRUE(Tree::Linked(&a));
  EXPECT_GE(tree.Validate(), 0);
  tree.Erase(&a);
  EXPECT_TRUE(tree.Empty());
  EXPECT_FALSE(Tree::Linked(&a));
}

TEST(RbTreeTest, LeftmostIsMinimum) {
  Tree tree;
  std::vector<Item> items(10);
  uint64_t keys[] = {5, 3, 8, 1, 9, 2, 7, 0, 6, 4};
  for (int i = 0; i < 10; ++i) {
    items[i].key = keys[i];
    items[i].id = i;
    tree.Insert(&items[i]);
    EXPECT_GE(tree.Validate(), 0) << "after insert " << i;
  }
  EXPECT_EQ(tree.Leftmost()->key, 0u);
  tree.Erase(tree.Leftmost());
  EXPECT_EQ(tree.Leftmost()->key, 1u);
}

TEST(RbTreeTest, InOrderTraversalSorted) {
  Tree tree;
  std::vector<Item> items(50);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    items[i].key = rng.NextBelow(1000);
    items[i].id = i;
    tree.Insert(&items[i]);
  }
  uint64_t prev = 0;
  int count = 0;
  tree.ForEach([&](const Item* item) {
    EXPECT_GE(item->key, prev);
    prev = item->key;
    ++count;
    return true;
  });
  EXPECT_EQ(count, 50);
}

TEST(RbTreeTest, ForEachEarlyStop) {
  Tree tree;
  std::vector<Item> items(10);
  for (int i = 0; i < 10; ++i) {
    items[i].key = static_cast<uint64_t>(i);
    items[i].id = i;
    tree.Insert(&items[i]);
  }
  int visited = 0;
  tree.ForEach([&](const Item*) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(RbTreeTest, DuplicateKeysOrderedById) {
  Tree tree;
  std::vector<Item> items(5);
  for (int i = 0; i < 5; ++i) {
    items[i].key = 42;
    items[i].id = i;
    tree.Insert(&items[i]);
  }
  EXPECT_EQ(tree.Leftmost()->id, 0);
  tree.Erase(&items[0]);
  EXPECT_EQ(tree.Leftmost()->id, 1);
  EXPECT_GE(tree.Validate(), 0);
}

TEST(RbTreeTest, EraseMiddleNodesKeepsInvariants) {
  Tree tree;
  std::vector<Item> items(100);
  for (int i = 0; i < 100; ++i) {
    items[i].key = static_cast<uint64_t>(i * 7 % 100);
    items[i].id = i;
    tree.Insert(&items[i]);
  }
  for (int i = 0; i < 100; i += 3) {
    tree.Erase(&items[i]);
    ASSERT_GE(tree.Validate(), 0) << "after erasing " << i;
  }
  EXPECT_EQ(tree.Size(), 100u - 34u);
}

TEST(RbTreeTest, ReinsertAfterErase) {
  Tree tree;
  Item a{1, 0, {}};
  Item b{2, 1, {}};
  tree.Insert(&a);
  tree.Insert(&b);
  tree.Erase(&a);
  a.key = 10;
  tree.Insert(&a);
  EXPECT_EQ(tree.Leftmost(), &b);
  EXPECT_EQ(tree.Size(), 2u);
}

TEST(RbTreeTest, AscendingInsertStaysBalanced) {
  // The classic degenerate case for unbalanced BSTs.
  Tree tree;
  std::vector<Item> items(1024);
  for (int i = 0; i < 1024; ++i) {
    items[i].key = static_cast<uint64_t>(i);
    items[i].id = i;
    tree.Insert(&items[i]);
  }
  int black_height = tree.Validate();
  ASSERT_GT(black_height, 0);
  // Black height of a balanced RB tree with n nodes is <= log2(n+1).
  EXPECT_LE(black_height, 11);
}

TEST(RbTreeTest, DescendingInsertStaysBalanced) {
  Tree tree;
  std::vector<Item> items(1024);
  for (int i = 0; i < 1024; ++i) {
    items[i].key = static_cast<uint64_t>(1024 - i);
    items[i].id = i;
    tree.Insert(&items[i]);
  }
  EXPECT_GT(tree.Validate(), 0);
  EXPECT_EQ(tree.Leftmost()->key, 1u);
}

// Property test: random interleaved inserts/erases mirror a std::multiset.
TEST(RbTreeTest, RandomizedAgainstMultiset) {
  Tree tree;
  constexpr int kItems = 400;
  std::vector<Item> items(kItems);
  std::vector<bool> in_tree(kItems, false);
  std::multiset<uint64_t> mirror;
  Rng rng(99);
  for (int round = 0; round < 20000; ++round) {
    int i = static_cast<int>(rng.NextBelow(kItems));
    if (!in_tree[i]) {
      items[i].key = rng.NextBelow(500);
      items[i].id = i;
      tree.Insert(&items[i]);
      mirror.insert(items[i].key);
      in_tree[i] = true;
    } else {
      tree.Erase(&items[i]);
      mirror.erase(mirror.find(items[i].key));
      in_tree[i] = false;
    }
    if (round % 500 == 0) {
      ASSERT_GE(tree.Validate(), 0) << "round " << round;
    }
    ASSERT_EQ(tree.Size(), mirror.size());
    if (!mirror.empty()) {
      ASSERT_EQ(tree.Leftmost()->key, *mirror.begin());
    } else {
      ASSERT_EQ(tree.Leftmost(), nullptr);
    }
  }
  ASSERT_GE(tree.Validate(), 0);
}

TEST(RbTreeTest, DrainInSortedOrder) {
  Tree tree;
  std::vector<Item> items(257);
  Rng rng(5);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].key = rng.Next();
    items[i].id = static_cast<int>(i);
    tree.Insert(&items[i]);
  }
  uint64_t prev = 0;
  while (!tree.Empty()) {
    Item* min = tree.Leftmost();
    EXPECT_GE(min->key, prev);
    prev = min->key;
    tree.Erase(min);
    ASSERT_GE(tree.Validate(), 0);
  }
}

// ---- Tree-shape proof for the hinted insert ---------------------------------
//
// RbTree::Insert folds a boundary hint into its descent (one root
// comparison routes to the only reachable hint). The optimization claims
// to link every item at exactly the position a hint-free full descent
// would choose — which makes the resulting tree, and therefore every
// traversal and every pick, bit-identical. Prove it: mirror a mixed
// insert/erase workload into a reference tree driven by a textbook
// full-descent insert over the same RbTreeBase machinery, and require
// structurally equal trees (links and colors) at every step.

struct RefItem {
  uint64_t key = 0;
  int id = 0;
  RbNode node;
};

RefItem* RefFromNode(RbNode* node) {
  return reinterpret_cast<RefItem*>(reinterpret_cast<char*>(node) -
                                    offsetof(RefItem, node));
}

void FullDescentInsert(RbTreeBase& base, RefItem* item) {
  RbNode** link = base.mutable_root();
  RbNode* parent = nullptr;
  while (*link != nullptr) {
    parent = *link;
    const RefItem* at = RefFromNode(parent);
    bool less = item->key != at->key ? item->key < at->key : item->id < at->id;
    link = less ? &parent->left : &parent->right;
  }
  base.InsertAt(&item->node, parent, link);
}

// The root of the production tree, reached by walking up from its minimum
// (RbTree does not expose its base).
RbNode* RootOf(Tree& tree) {
  Item* leftmost = tree.Leftmost();
  if (leftmost == nullptr) {
    return nullptr;
  }
  RbNode* n = &leftmost->node;
  while (n->parent != nullptr) {
    n = n->parent;
  }
  return n;
}

bool SameShape(RbNode* a, RbNode* b) {
  if (a == nullptr || b == nullptr) {
    return a == b;
  }
  const Item* ia = reinterpret_cast<Item*>(reinterpret_cast<char*>(a) -
                                           offsetof(Item, node));
  const RefItem* ib = RefFromNode(b);
  if (ia->key != ib->key || ia->id != ib->id || a->red != b->red) {
    return false;
  }
  return SameShape(a->left, b->left) && SameShape(a->right, b->right);
}

TEST(RbTreeTest, HintedInsertMatchesFullDescentShape) {
  const int n = 512;
  Tree tree;
  RbTreeBase ref;
  std::vector<Item> items(n);
  std::vector<RefItem> ref_items(n);
  Rng rng(9);
  std::vector<int> live;
  for (int i = 0; i < n; ++i) {
    // Mix boundary and interior keys, with duplicates: i%4==0 below every
    // prior key (leftmost hint), i%4==1 above (rightmost hint), else
    // interior, every eighth a duplicate of an earlier key.
    uint64_t key;
    if (i % 4 == 0) {
      key = 1000000 - static_cast<uint64_t>(i);
    } else if (i % 4 == 1) {
      key = 2000000 + static_cast<uint64_t>(i);
    } else if (i % 8 == 2 && !live.empty()) {
      key = items[live[rng.Next() % live.size()]].key;
    } else {
      key = 1500000 + rng.Next() % 1000;
    }
    items[i].key = key;
    items[i].id = i;
    ref_items[i].key = key;
    ref_items[i].id = i;
    tree.Insert(&items[i]);
    FullDescentInsert(ref, &ref_items[i]);
    live.push_back(i);
    // Interleave erases so the boundary caches are exercised after
    // arbitrary surgery, not just on a growing tree.
    if (i % 3 == 2) {
      size_t pick = rng.Next() % live.size();
      int victim = live[pick];
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      tree.Erase(&items[victim]);
      ref.Erase(&ref_items[victim].node);
    }
    ASSERT_TRUE(SameShape(RootOf(tree), ref.root()))
        << "hinted insert diverged from full descent at step " << i;
    ASSERT_GE(tree.Validate(), 0);
  }
}

}  // namespace
}  // namespace wcores
