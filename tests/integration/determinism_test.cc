// Determinism regression tests (the gate for hot-path optimizations).
//
// Two guarantees, checked over the figure/table scenario matrix plus a few
// random scenarios:
//  1. Replay: the same scenario run twice produces bit-identical trace
//     streams (equal TraceHashSink digests and event counts).
//  2. Goldens: the digests match the checked-in values below, so any
//     change to scheduler behavior — including an "optimization" that
//     reorders decisions or perturbs a double by 1 ulp — fails loudly.
//     The golden values were recorded before the rb-tree hint-insert,
//     event-pool, and RqLoad-cache optimizations; those must not move them.
//
// To regenerate after an *intentional* behavior change:
//   build/bench/sweep_driver --scale=0.1 --random=2 --seed=99 --threads=1
// and copy the per-scenario hashes printed (and written to BENCH_sweep.json).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "src/tools/sweep/scenario.h"
#include "src/tools/sweep/sweep.h"

namespace wcores {
namespace {

constexpr double kScale = 0.1;
constexpr uint64_t kRandomSeed = 99;
constexpr int kRandomCount = 2;

std::vector<Scenario> TestScenarios() {
  std::vector<Scenario> scenarios = FigureScenarios(kScale);
  for (Scenario& s : RandomScenarios(kRandomSeed, kRandomCount)) {
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

struct Golden {
  const char* name;
  uint64_t hash;
};

// Recorded from the pre-optimization scheduler paths; see file comment.
constexpr Golden kGoldens[] = {
    {"fig2_make_r/stock", 0xcf0d9850fa7837c7ULL},
    {"fig2_make_r/fixed", 0xb11a322f54385baaULL},
    {"fig3_tpch_q18/stock", 0x13d8558978a9f01dULL},
    {"fig3_tpch_q18/fixed", 0x329eae5dcecb0cf8ULL},
    {"table1_nas_cg/stock", 0xf6aae0c10484b70fULL},
    {"table1_nas_cg/fixed", 0xf6aae0c10484b70fULL},
    {"table3_nas_lu/stock", 0xdb6f8a5275531cd7ULL},
    {"table3_nas_lu/fixed", 0xcd8ca251dff34cf4ULL},
    {"random_mix/stock", 0x14ccd2d2fe6f32a0ULL},
    {"random_mix/fixed", 0xcf17e07bf6a12b97ULL},
    {"random/99-0", 0xb4d23d40a72170d5ULL},
    {"random/99-1", 0x2bec4c17f66584e5ULL},
};

TEST(Determinism, SameSeedSameTrace) {
  for (const Scenario& s : TestScenarios()) {
    SCOPED_TRACE(s.name);
    ScenarioResult first = RunScenario(s);
    ScenarioResult second = RunScenario(s);
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.trace_events, second.trace_events);
    EXPECT_EQ(first.sim_events, second.sim_events);
    EXPECT_EQ(first.context_switches, second.context_switches);
    EXPECT_GT(first.trace_events, 0u) << "scenario produced no trace at all";
  }
}

TEST(Determinism, GoldenHashesUnchanged) {
  std::map<std::string, uint64_t> expected;
  for (const Golden& g : kGoldens) {
    expected[g.name] = g.hash;
  }
  std::vector<Scenario> scenarios = TestScenarios();
  ASSERT_EQ(scenarios.size(), expected.size()) << "scenario matrix changed; regenerate goldens";
  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.name);
    ScenarioResult r = RunScenario(s);
    auto it = expected.find(s.name);
    ASSERT_NE(it, expected.end()) << "no golden for scenario " << s.name;
    char actual[32];
    std::snprintf(actual, sizeof(actual), "0x%016llxULL",
                  static_cast<unsigned long long>(r.trace_hash));
    EXPECT_EQ(r.trace_hash, it->second)
        << "scheduler behavior changed for " << s.name << "; actual hash " << actual
        << " (regenerate goldens only for intentional changes)";
  }
}

// The streaming pipeline is a pure observer: attaching it to every golden
// scenario must not move a single trace hash, and the stream itself must
// honor its own contract (every event analyzed, zero drops, within budget).
TEST(Determinism, StreamIsPureObserver) {
  std::map<std::string, uint64_t> expected;
  for (const Golden& g : kGoldens) {
    expected[g.name] = g.hash;
  }
  for (Scenario s : TestScenarios()) {
    s.stream = true;
    SCOPED_TRACE(s.name);
    ScenarioResult r = RunScenario(s);
    auto it = expected.find(s.name);
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(r.trace_hash, it->second) << "attaching the stream changed the trace";
    EXPECT_EQ(r.stream_events, r.trace_events) << "stream missed or invented events";
    EXPECT_EQ(r.stream_ring_dropped, 0u);
    EXPECT_TRUE(r.stream_within_budget);
    EXPECT_FALSE(r.stream_summary.empty());
  }
}

// Parallel execution must be invisible in the results: the sweep at any
// worker count produces the same ordered result set.
TEST(Determinism, SweepThreadCountInvariance) {
  std::vector<Scenario> scenarios = TestScenarios();
  SweepOptions one;
  one.threads = 1;
  SweepReport base = RunSweep(scenarios, one);
  for (int threads : {2, 4}) {
    SweepOptions opts;
    opts.threads = threads;
    SweepReport r = RunSweep(scenarios, opts);
    EXPECT_EQ(base.CombinedHash(), r.CombinedHash()) << "threads=" << threads;
    ASSERT_EQ(base.results.size(), r.results.size());
    for (size_t i = 0; i < r.results.size(); ++i) {
      EXPECT_EQ(base.results[i].name, r.results[i].name);
      EXPECT_EQ(base.results[i].trace_hash, r.results[i].trace_hash);
    }
  }
}

}  // namespace
}  // namespace wcores
