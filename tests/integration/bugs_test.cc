// End-to-end reproduction of the four bugs of §3: each test runs the same
// workload under the stock (buggy) scheduler and under the fixed one, and
// checks that the bug's signature appears only in the stock run.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"
#include "src/tools/sanity_checker.h"
#include "src/workloads/behaviors.h"
#include "src/workloads/make_r.h"
#include "src/workloads/nas.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

namespace wcores {
namespace {

// ---------------------------------------------------------------- §3.1 -----

double MakeCompletionSeconds(const SchedFeatures& features) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features = features;
  opts.seed = 11;
  Simulator sim(topo, opts);
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(300);
  config.r_work = Seconds(3);
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(10));
  EXPECT_TRUE(wl.MakeFinished());
  return ToSeconds(wl.MakeCompletionTime());
}

TEST(GroupImbalanceBugTest, FixSpeedsUpMake) {
  SchedFeatures stock;
  SchedFeatures fixed;
  fixed.fix_group_imbalance = true;
  double buggy = MakeCompletionSeconds(stock);
  double good = MakeCompletionSeconds(fixed);
  // Paper: make completion decreased by 13% with the fix.
  EXPECT_LT(good, buggy * 0.97) << "buggy=" << buggy << " fixed=" << good;
}

TEST(GroupImbalanceBugTest, StockLeavesCoresIdleWhileOthersOverloaded) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = 12;
  Simulator sim(topo, opts);
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(400);
  config.r_work = Seconds(3);
  MakeRWorkload wl(&sim, config);
  wl.Setup();

  // Mid-run, check the bug's signature: some core idle while some core has
  // two or more runnable make threads it could steal.
  int idle_with_overload = 0;
  for (Time t = Milliseconds(60); t <= Milliseconds(300); t += Milliseconds(20)) {
    // Two reference captures keep the callback within InlineCallback's
    // inline buffer; the topology is reachable through the simulator.
    sim.At(t, [&sim, &idle_with_overload] {
      bool any_idle = false;
      bool any_overloaded = false;
      for (CpuId c = 0; c < sim.topo().n_cores(); ++c) {
        int nr = sim.sched().NrRunning(c);
        any_idle = any_idle || nr == 0;
        any_overloaded = any_overloaded || nr >= 2;
      }
      if (any_idle && any_overloaded) {
        ++idle_with_overload;
      }
    });
  }
  sim.Run(Seconds(10));
  EXPECT_GE(idle_with_overload, 5);
}

// ---------------------------------------------------------------- §3.2 -----

double PinnedNasSeconds(NasApp app, const SchedFeatures& features, double scale) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features = features;
  opts.seed = 13;
  Simulator sim(topo, opts);
  NasConfig config;
  config.app = app;
  config.threads = 16;  // As many threads as cores on two nodes.
  config.affinity = topo.CpusOfNode(1) | topo.CpusOfNode(2);  // numactl --cpunodebind=1,2
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = scale;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(120));
  EXPECT_TRUE(wl.Finished()) << NasAppName(app);
  return ToSeconds(wl.CompletionTime());
}

TEST(GroupConstructionBugTest, PinnedLuIsManyTimesSlower) {
  SchedFeatures stock;
  SchedFeatures fixed;
  fixed.fix_group_construction = true;
  double buggy = PinnedNasSeconds(NasApp::kLu, stock, 0.2);
  double good = PinnedNasSeconds(NasApp::kLu, fixed, 0.2);
  // Paper Table 1: lu speeds up 27x. The shape requirement: a large
  // super-linear factor (>4x), far above the 2x CPU-share bound.
  EXPECT_GT(buggy / good, 4.0) << "buggy=" << buggy << " fixed=" << good;
}

TEST(GroupConstructionBugTest, PinnedEpSpeedsUpAboutTwoTimes) {
  SchedFeatures stock;
  SchedFeatures fixed;
  fixed.fix_group_construction = true;
  double buggy = PinnedNasSeconds(NasApp::kEp, stock, 0.5);
  double good = PinnedNasSeconds(NasApp::kEp, fixed, 0.5);
  // ep is embarrassingly parallel: the impact is the pure 2x CPU-share loss.
  EXPECT_GT(buggy / good, 1.5);
  EXPECT_LT(buggy / good, 3.0);
}

TEST(GroupConstructionBugTest, StockKeepsThreadsOnOneNode) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = 14;
  Simulator sim(topo, opts);
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 16;
  config.affinity = topo.CpusOfNode(1) | topo.CpusOfNode(2);
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = 0.5;
  NasWorkload wl(&sim, config);
  wl.Setup();
  int node2_busy_samples = 0;
  for (Time t = Milliseconds(100); t <= Milliseconds(500); t += Milliseconds(50)) {
    sim.At(t, [&sim, &node2_busy_samples] {
      for (CpuId c : sim.topo().CpusOfNode(2)) {
        if (sim.sched().NrRunning(c) > 0) {
          ++node2_busy_samples;
          return;
        }
      }
    });
  }
  sim.Run(Seconds(60));
  // "the pinned application runs only on one node, no matter how many
  // threads it has": node 2 never sees work.
  EXPECT_EQ(node2_busy_samples, 0);
}

// ---------------------------------------------------------------- §3.3 -----

double TpchQ18Seconds(const SchedFeatures& features) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features = features;
  opts.features.autogroup_enabled = false;  // As in the paper's Figure 3 runs.
  opts.seed = 15;
  Simulator sim(topo, opts);
  TpchConfig config;
  config.queries = {TpchQuery18(/*scale=*/4.0)};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  TransientThreadGenerator::Options topts;
  topts.mean_interval = Milliseconds(2);
  TransientThreadGenerator transients(&sim, topts);
  transients.Start();
  sim.Run(Seconds(30));
  EXPECT_TRUE(wl.Finished());
  return ToSeconds(wl.TotalTime());
}

TEST(OverloadOnWakeupBugTest, FixSpeedsUpTpchQ18) {
  SchedFeatures stock;
  SchedFeatures fixed;
  fixed.fix_overload_wakeup = true;
  double buggy = TpchQ18Seconds(stock);
  double good = TpchQ18Seconds(fixed);
  // Paper Table 2: -22.2% on Q18. Shape: a measurable speedup.
  EXPECT_LT(good, buggy * 0.98) << "buggy=" << buggy << " fixed=" << good;
}

TEST(OverloadOnWakeupBugTest, StockWakesOnBusyCoresDespiteIdle) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.autogroup_enabled = false;
  opts.seed = 16;
  Simulator sim(topo, opts);
  TpchConfig config;
  config.queries = {TpchQuery18(/*scale=*/2.0)};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  TransientThreadGenerator::Options topts;
  TransientThreadGenerator transients(&sim, topts);
  transients.Start();
  sim.Run(Seconds(30));
  const SchedStats& stats = sim.sched().stats();
  // Workers wake on busy cores a significant fraction of the time even
  // though the machine is never fully loaded (64 workers + transients on
  // 64 cores, with many sleepers at any instant).
  EXPECT_GT(stats.wakeups_on_busy, stats.wakeups / 50);
}

// ---------------------------------------------------------------- §3.4 -----

double HotplugNasSeconds(NasApp app, const SchedFeatures& features, double scale) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features = features;
  opts.seed = 17;
  Simulator sim(topo, opts);
  // Disable and re-enable a core before launching (the /proc interface).
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  NasConfig config;
  config.app = app;
  config.threads = 64;
  config.spawn_cpu = 0;  // All threads fork from the same root process.
  config.scale = scale;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(600));
  EXPECT_TRUE(wl.Finished()) << NasAppName(app);
  return ToSeconds(wl.CompletionTime());
}

TEST(MissingDomainsBugTest, HotplugConfinesLuToOneNode) {
  SchedFeatures stock;
  SchedFeatures fixed;
  fixed.fix_missing_domains = true;
  double buggy = HotplugNasSeconds(NasApp::kLu, stock, 0.1);
  double good = HotplugNasSeconds(NasApp::kLu, fixed, 0.1);
  // Paper Table 3: lu runs 138x faster without the bug. Shape: a large
  // super-linear factor, well above the 8x CPU-share bound.
  EXPECT_GT(buggy / good, 8.0) << "buggy=" << buggy << " fixed=" << good;
}

TEST(MissingDomainsBugTest, ThreadsStayOnSpawnNode) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = 18;
  Simulator sim(topo, opts);
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 16;
  config.spawn_cpu = 8;  // Node 1.
  config.scale = 0.3;
  NasWorkload wl(&sim, config);
  wl.Setup();
  int off_node_samples = 0;
  for (Time t = Milliseconds(100); t <= Milliseconds(400); t += Milliseconds(50)) {
    sim.At(t, [&sim, &off_node_samples] {
      const Topology& topo = sim.topo();
      for (CpuId c = 0; c < topo.n_cores(); ++c) {
        if (topo.NodeOf(c) != 1 && sim.sched().NrRunning(c) > 0) {
          ++off_node_samples;
          return;
        }
      }
    });
  }
  sim.Run(Seconds(60));
  EXPECT_EQ(off_node_samples, 0);
}

// ------------------------------------------------------------- memo keys ---

// Mid-run feature toggling, as the ablation driver does it: scheduler
// feature flags feed the autogroup divisors that both the RqLoad memo and
// the balancer's group-stats memo bake into their cached sums, so a flip
// that bumps no generation counter would keep serving pre-toggle values
// under post-toggle semantics. The probe is at the *same instant* with the
// same load_versions on purpose — only the feature generation in the key
// can tell the stale fills apart from fresh ones.
TEST(FeatureToggleTest, MidRunGroupImbalanceToggleInvalidatesLoadMemos) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_group_imbalance = true;  // Balancing populates group stats.
  opts.features.autogroup_enabled = true;
  opts.seed = 21;
  Simulator sim(topo, opts);
  AutogroupId grp = sim.CreateAutogroup();
  for (int i = 0; i < 24; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = static_cast<CpuId>(i % topo.n_cores());
    params.autogroup = i % 2 == 0 ? grp : kRootAutogroup;
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
              params);
  }
  sim.Run(Milliseconds(50));

  Scheduler& sched = sim.sched();
  const Time now = sim.Now();
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    (void)sched.RqLoad(now, c);  // Populate the per-rq memo at this instant.
  }
  ASSERT_TRUE(sched.ValidateGroupCache(now));
  const uint64_t gen = sched.feature_generation();

  SchedFeatures toggled = opts.features;
  toggled.fix_group_imbalance = false;  // The ablation's flip...
  toggled.autogroup_enabled = false;    // ...and one that changes every divisor.
  sched.UpdateFeatures(toggled);
  EXPECT_EQ(sched.feature_generation(), gen + 1);

  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    ASSERT_EQ(sched.RqLoad(now, c), sched.RqLoadRecomputed(now, c))
        << "cpu " << c << ": memo served a pre-toggle load";
  }
  ASSERT_TRUE(sched.ValidateGroupCache(now));

  // Flip back: fills made under the toggled generation must not leak into
  // this one either, and the run must stay healthy afterwards.
  sched.UpdateFeatures(opts.features);
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    ASSERT_EQ(sched.RqLoad(now, c), sched.RqLoadRecomputed(now, c)) << "cpu " << c;
  }
  ASSERT_TRUE(sched.ValidateGroupCache(now));
  sim.Run(Milliseconds(100));
  ASSERT_TRUE(sched.ValidateGroupCache(sim.Now()));
}

TEST(MissingDomainsBugTest, FixRestoresCrossNodeBalancing) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_missing_domains = true;
  opts.seed = 19;
  Simulator sim(topo, opts);
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 16;
  config.spawn_cpu = 8;
  config.scale = 0.3;
  NasWorkload wl(&sim, config);
  wl.Setup();
  int off_node_samples = 0;
  for (Time t = Milliseconds(100); t <= Milliseconds(400); t += Milliseconds(50)) {
    sim.At(t, [&sim, &off_node_samples] {
      const Topology& topo = sim.topo();
      for (CpuId c = 0; c < topo.n_cores(); ++c) {
        if (topo.NodeOf(c) != 1 && sim.sched().NrRunning(c) > 0) {
          ++off_node_samples;
          return;
        }
      }
    });
  }
  sim.Run(Seconds(60));
  EXPECT_GT(off_node_samples, 0);
}

}  // namespace
}  // namespace wcores
