// Property-based suites: invariants that must hold across parameter sweeps.
//
//  * Work conservation: with all fixes applied, no long-term
//    idle-while-overloaded episodes survive, across topologies, workload
//    shapes, and seeds (TEST_P sweeps).
//  * Determinism: identical seeds give identical traces.
//  * Conservation of work: total compute consumed equals what was offered.
//  * Accounting: busy time equals the sum of thread run time.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/sim/simulator.h"
#include "src/tools/recorder.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"
#include "src/workloads/behaviors.h"
#include "src/workloads/nas.h"

namespace wcores {
namespace {

// ---- Work conservation under the fixed scheduler ------------------------------

class WorkConservationTest
    : public ::testing::TestWithParam<std::tuple<int /*nodes*/, int /*threads*/, uint64_t>> {};

TEST_P(WorkConservationTest, NoLongTermViolationWithAllFixes) {
  auto [nodes, threads, seed] = GetParam();
  Topology topo = Topology::Flat(nodes, 4, 2);
  Simulator::Options opts;
  opts.features = SchedFeatures::AllFixed();
  opts.seed = seed;
  Simulator sim(topo, opts);
  // A mixed workload: hogs + sleepers, all forked from one core.
  Rng rng(seed);
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = 0;
    if (rng.NextBool(0.5)) {
      sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(4)}}),
                params);
    } else {
      sim.Spawn(std::make_unique<ScriptBehavior>(
                    std::vector<Action>{ComputeAction{Milliseconds(3)},
                                        SleepAction{Milliseconds(1)}},
                    /*repeat=*/1000),
                params);
    }
  }
  SanityChecker::Options copts;
  copts.check_interval = Milliseconds(200);
  copts.confirmation_window = Milliseconds(100);
  SanityChecker checker(&sim, copts);
  checker.Start();
  sim.Run(Seconds(3));
  EXPECT_TRUE(checker.violations().empty())
      << "nodes=" << nodes << " threads=" << threads << " seed=" << seed
      << " first: " << SanityChecker::Report(checker.violations().front());
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkConservationTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(6, 16, 40),
                                            ::testing::Values(1u, 2u, 3u)));

// ---- Determinism ----------------------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, IdenticalSeedsIdenticalTraces) {
  auto run = [&](uint64_t seed) {
    Topology topo = Topology::Bulldozer8x8();
    EventRecorder recorder;
    Simulator::Options opts;
    opts.seed = seed;
    Simulator sim(topo, opts, &recorder);
    NasConfig config;
    config.app = NasApp::kCg;
    config.threads = 16;
    config.scale = 0.05;
    NasWorkload wl(&sim, config);
    wl.Setup();
    sim.Run(Seconds(30));
    EXPECT_TRUE(wl.Finished());
    return std::make_tuple(recorder.events().size(), sim.queue().executed_count(),
                           sim.context_switches(), wl.CompletionTime());
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, ::testing::Values(10u, 20u, 30u, 40u));

// ---- Conservation of compute --------------------------------------------------------

class ComputeConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ComputeConservationTest, AllOfferedWorkIsExecuted) {
  int threads = GetParam();
  Topology topo = Topology::Flat(2, 4, 2);
  Simulator::Options opts;
  opts.seed = 77;
  Simulator sim(topo, opts);
  const Time per_thread = Milliseconds(40);
  std::vector<ThreadId> tids;
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i % topo.n_cores();
    tids.push_back(sim.Spawn(
        std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{per_thread}}),
        params));
  }
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(30)));
  Time total = 0;
  for (ThreadId tid : tids) {
    EXPECT_EQ(sim.thread(tid).total_compute, per_thread) << "tid " << tid;
    total += sim.thread(tid).total_compute;
  }
  EXPECT_EQ(total, per_thread * static_cast<Time>(threads));
  // Busy accounting covers at least the productive compute (plus switches).
  EXPECT_GE(sim.accounting().TotalBusy(), total);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ComputeConservationTest,
                         ::testing::Values(1, 7, 16, 33, 64));

// ---- Oversubscription never deadlocks -------------------------------------------------

class OversubscriptionTest
    : public ::testing::TestWithParam<std::tuple<int /*threads/core*/, bool /*spin*/>> {};

TEST_P(OversubscriptionTest, BarrierAppsFinishUnderAnyOversubscription) {
  auto [per_core, spin] = GetParam();
  Topology topo = Topology::Flat(1, 4, 2);
  Simulator::Options opts;
  opts.seed = 5;
  Simulator sim(topo, opts);
  int threads = 4 * per_core;
  SyncId barrier =
      spin ? sim.CreateSpinBarrier(threads) : sim.CreateBlockingBarrier(threads);
  std::vector<ThreadId> tids;
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = 0;
    tids.push_back(sim.Spawn(std::make_unique<BarrierComputeBehavior>(
                                 barrier, spin ? BarrierMode::kSpin : BarrierMode::kBlock,
                                 Microseconds(500), 0.3, 30),
                             params));
  }
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(120)))
      << per_core << " threads/core, spin=" << spin;
}

INSTANTIATE_TEST_SUITE_P(Oversubscription, OversubscriptionTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Bool()));

// ---- Affinity is never violated -----------------------------------------------------

class AffinityInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AffinityInvarianceTest, PinnedThreadsNeverLeaveTheirMask) {
  // Under hotplug churn, balancing, and wakeups, a pinned thread's cpu must
  // stay inside its mask as long as the mask has online cpus.
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = GetParam();
  Simulator sim(topo, opts);
  CpuSet mask = topo.CpusOfNode(1) | topo.CpusOfNode(2);
  std::vector<ThreadId> pinned;
  for (int i = 0; i < 24; ++i) {
    Simulator::SpawnParams params;
    params.affinity = mask;
    params.parent_cpu = mask.First();
    pinned.push_back(sim.Spawn(std::make_unique<ScriptBehavior>(
                                   std::vector<Action>{ComputeAction{Milliseconds(2)},
                                                       SleepAction{Microseconds(500)}},
                                   /*repeat=*/200),
                               params));
  }
  // Unpinned churn + a hotplug of an out-of-mask core mid-run.
  for (int i = 0; i < 32; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = static_cast<CpuId>(i % topo.n_cores());
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
              params);
  }
  sim.At(Milliseconds(100), [&] { sim.SetCpuOnline(0, false); });
  sim.At(Milliseconds(200), [&] { sim.SetCpuOnline(0, true); });
  bool violated = false;
  // The check needs four locals; park them in a context struct on the stack
  // (it outlives every event — sim.Run returns before the scope ends) so the
  // callback capture is a single pointer.
  struct PinCheckCtx {
    Simulator* sim;
    const std::vector<ThreadId>* pinned;
    const CpuSet* mask;
    bool* violated;
  } ctx{&sim, &pinned, &mask, &violated};
  for (Time t = Milliseconds(20); t <= Milliseconds(900); t += Milliseconds(20)) {
    sim.At(t, [c = &ctx] {
      for (ThreadId tid : *c->pinned) {
        if (c->sim->thread(tid).Alive() && !c->mask->Test(c->sim->sched().Entity(tid).cpu)) {
          *c->violated = true;
        }
      }
    });
  }
  sim.Run(Seconds(5));
  EXPECT_FALSE(violated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffinityInvarianceTest, ::testing::Values(11u, 22u, 33u));

// ---- Hybrid barriers across grace values ------------------------------------------------

class HybridGraceTest : public ::testing::TestWithParam<int> {};

TEST_P(HybridGraceTest, HybridBarrierCompletesAndBlocksWhenSlow) {
  Time grace = Microseconds(static_cast<uint64_t>(GetParam()));
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator::Options opts;
  Simulator sim(topo, opts);
  SyncId barrier = sim.CreateSpinBarrier(2);
  // One fast arriver, one slow: the fast one spins up to `grace` then
  // blocks; both must pass.
  Simulator::SpawnParams p0;
  p0.parent_cpu = 0;
  ThreadId fast = sim.Spawn(
      std::make_unique<ScriptBehavior>(std::vector<Action>{
          ComputeAction{Milliseconds(1)}, SpinBarrierAction{barrier, grace}}),
      p0);
  Simulator::SpawnParams p1;
  p1.parent_cpu = 1;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                ComputeAction{Milliseconds(30)}, SpinBarrierAction{barrier, grace}}),
            p1);
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(5)));
  const SimThread& t = sim.thread(fast);
  // Waited ~29ms: spun at most grace (+scheduling noise), then slept.
  EXPECT_LE(t.spin_time, grace + Milliseconds(1));
  if (grace < Milliseconds(20)) {
    EXPECT_EQ(sim.spin_barrier(barrier).sleeps, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Graces, HybridGraceTest,
                         ::testing::Values(0, 100, 1000, 5000, 50000));

}  // namespace
}  // namespace wcores
