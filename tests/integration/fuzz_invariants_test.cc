// Randomized property fuzzer: seeded random topologies, feature sets, and
// workload mixes, with scheduler invariants checked at fixed virtual-time
// intervals throughout each run.
//
// Invariants per check:
//  * Thread conservation — every alive thread is exactly one of running /
//    queued / blocked; per-cpu on_rq counts match rq->nr_running; the
//    running entity matches CurrentThread.
//  * Per-cfs_rq min_vruntime never decreases.
//  * Load-sum conservation — the (cached) RqLoad equals a from-scratch
//    recomputation, bit for bit.
//  * Runqueue structure — red-black invariants, vruntime ordering, weight
//    accounting (Scheduler::ValidateRq).
//  * Sanity-checker parity — Algorithm 2's CheckOnce fires iff a core is
//    idle while another runqueue holds a thread it could steal.
//
// Seeding: the base seed comes from WC_FUZZ_SEED (env) so a CI failure is
// reproducible locally; every failure message carries the repro command.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pelt.h"
#include "src/sim/simulator.h"
#include "src/simkit/rng.h"
#include "src/telemetry/stream/stream_sink.h"
#include "src/tools/recorder.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

constexpr uint64_t kDefaultBaseSeed = 20260805ULL;
constexpr int kRuns = 6;
constexpr Time kHorizon = Milliseconds(300);
constexpr Time kCheckInterval = Microseconds(997);  // Odd: drifts across ticks.
constexpr Time kHotplugInterval = Microseconds(13831);  // ~21 toggles per run.

uint64_t BaseSeed() {
  const char* env = std::getenv("WC_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefaultBaseSeed;
}

std::string ReproCommand(uint64_t seed) {
  return "reproduce with: WC_FUZZ_SEED=" + std::to_string(seed) +
         " ctest --test-dir build -R FuzzInvariants --output-on-failure";
}

Topology RandomTopology(Rng& rng) {
  switch (rng.NextBelow(4)) {
    case 0: return Topology::Flat(1, 4);
    case 1: return Topology::Flat(2, 4);
    case 2: return Topology::Flat(4, 8);
    default: return Topology::Bulldozer8x8();
  }
}

SchedFeatures RandomFeatures(Rng& rng) {
  SchedFeatures f;
  f.fix_group_imbalance = rng.NextBool(0.5);
  f.fix_group_construction = rng.NextBool(0.5);
  f.fix_overload_wakeup = rng.NextBool(0.5);
  f.fix_missing_domains = rng.NextBool(0.5);
  f.autogroup_enabled = rng.NextBool(0.8);
  return f;
}

void SpawnRandomMix(Simulator& sim, Rng& rng, int threads) {
  int n_cores = sim.topo().n_cores();
  AutogroupId groups[3] = {kRootAutogroup, sim.CreateAutogroup(), sim.CreateAutogroup()};
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = static_cast<CpuId>(rng.NextBelow(static_cast<uint64_t>(n_cores)));
    params.nice = static_cast<int>(rng.NextBelow(7)) - 3;
    params.autogroup = groups[rng.NextBelow(3)];
    if (rng.NextBool(0.25)) {
      params.affinity =
          CpuSet::Single(static_cast<CpuId>(rng.NextBelow(static_cast<uint64_t>(n_cores))));
    }
    std::vector<Action> script;
    if (rng.NextBool(0.3)) {
      script = {ComputeAction{Seconds(1)}};  // Hog: outlives the horizon.
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script)), params);
    } else {
      script = {ComputeAction{rng.NextTime(Microseconds(200), Milliseconds(3))},
                SleepAction{rng.NextTime(Microseconds(100), Milliseconds(2))}};
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script), /*repeat=*/1000), params);
    }
  }
}

// The idle-index oracle: a from-scratch linear scan with the original
// tie-break (lowest idle_since, then lowest cpu id).
CpuId ScanLongestIdle(const Scheduler& sched, int n_cores) {
  CpuId best = kInvalidCpu;
  Time best_since = kTimeNever;
  for (CpuId cpu = 0; cpu < n_cores; ++cpu) {
    if (!sched.IsOnline(cpu) || !sched.IsIdleCpu(cpu)) {
      continue;
    }
    if (sched.IdleSince(cpu) < best_since) {
      best_since = sched.IdleSince(cpu);
      best = cpu;
    }
  }
  return best;
}

// One invariant sweep over the whole machine at the current instant.
class InvariantChecker {
 public:
  explicit InvariantChecker(Simulator* sim)
      : sim_(sim), checker_(sim), last_min_vruntime_(sim->topo().n_cores(), 0) {}

  int checks() const { return checks_; }

  void Check() {
    checks_ += 1;
    const Scheduler& sched = sim_->sched();
    const Time now = sim_->Now();
    const int n_cores = sim_->topo().n_cores();

    // Thread conservation: classify every entity once, from the entity
    // side, and reconcile against every runqueue's own counters.
    std::vector<int> on_rq_count(n_cores, 0);
    std::vector<int> running_count(n_cores, 0);
    for (ThreadId tid = 0; tid < sched.ThreadCount(); ++tid) {
      const SchedEntity& se = sched.Entity(tid);
      if (se.running) {
        ASSERT_TRUE(se.on_rq) << "tid " << tid << " running but not on_rq";
      }
      if (se.on_rq) {
        ASSERT_GE(se.cpu, 0) << "tid " << tid;
        ASSERT_LT(se.cpu, n_cores) << "tid " << tid;
        on_rq_count[se.cpu] += 1;
        if (se.running) {
          running_count[se.cpu] += 1;
          ASSERT_EQ(sched.CurrentThread(se.cpu), tid)
              << "tid " << tid << " claims to run on cpu " << se.cpu;
        }
      }
    }
    for (CpuId cpu = 0; cpu < n_cores; ++cpu) {
      ASSERT_EQ(on_rq_count[cpu], sched.NrRunning(cpu))
          << "cpu " << cpu << ": entity census disagrees with rq nr_running at t=" << now;
      ASSERT_LE(running_count[cpu], 1) << "cpu " << cpu << ": two running entities";
      ThreadId curr = sched.CurrentThread(cpu);
      ASSERT_EQ(running_count[cpu], curr != kInvalidThread ? 1 : 0) << "cpu " << cpu;

      // Runqueue structure.
      ASSERT_TRUE(sched.ValidateRq(cpu)) << "cpu " << cpu << " rq invariants broken at t=" << now;

      // min_vruntime monotonicity.
      Time mv = sched.MinVruntime(cpu);
      ASSERT_GE(mv, last_min_vruntime_[cpu]) << "cpu " << cpu << " min_vruntime went backwards";
      last_min_vruntime_[cpu] = mv;

      // Load-sum conservation: cached == recomputed, exactly.
      ASSERT_EQ(sched.RqLoad(now, cpu), sched.RqLoadRecomputed(now, cpu))
          << "cpu " << cpu << " cached load diverged from recomputation at t=" << now;
    }

    // Balancer group-stats memo coherence: every cached aggregate matches a
    // from-scratch recomputation (the RqLoad cross-check, one level up).
    ASSERT_TRUE(sched.ValidateGroupCache(now))
        << "group-stats memo diverged from recomputation at t=" << now;

    // Idle-index coherence: structure (per-node order, link symmetry,
    // membership == online && tickless) and the answer itself — the indexed
    // LongestIdleCpu must match a fresh linear scan with the original
    // tie-break (lowest idle_since, then lowest cpu).
    ASSERT_TRUE(sched.ValidateIdleIndex()) << "idle index diverged at t=" << now;
    ASSERT_EQ(sched.LongestIdleCpu(sim_->topo().AllCpus()), ScanLongestIdle(sched, n_cores))
        << "indexed LongestIdleCpu disagrees with linear scan at t=" << now;

    // Balance-due wheel coherence: the per-cpu due minima, designation
    // bits, write-through stat mirrors, and NOHZ globals all match a
    // from-scratch recomputation over the domain trees.
    ASSERT_TRUE(sched.ValidateBalanceWheel())
        << "balance wheel diverged from recomputation at t=" << now;

    // Sanity-checker parity with an independent scan.
    bool expect_violation = false;
    for (CpuId idle : sched.OnlineCpus()) {
      if (sched.NrRunning(idle) >= 1) {
        continue;
      }
      for (CpuId busy : sched.OnlineCpus()) {
        if (busy != idle && sched.NrRunning(busy) >= 2 && sched.CanSteal(idle, busy)) {
          expect_violation = true;
          break;
        }
      }
      if (expect_violation) {
        break;
      }
    }
    CpuId idle_cpu = kInvalidCpu;
    CpuId overloaded_cpu = kInvalidCpu;
    bool fired = checker_.CheckOnce(&idle_cpu, &overloaded_cpu);
    ASSERT_EQ(fired, expect_violation) << "sanity checker disagrees with independent scan";
    if (fired) {
      ASSERT_TRUE(sched.IsIdleCpu(idle_cpu));
      ASSERT_GE(sched.NrRunning(overloaded_cpu), 2);
      ASSERT_TRUE(sched.CanSteal(idle_cpu, overloaded_cpu));
      violations_seen_ += 1;
    }
  }

  int violations_seen() const { return violations_seen_; }

 private:
  Simulator* sim_;
  SanityChecker checker_;
  std::vector<Time> last_min_vruntime_;
  int checks_ = 0;
  int violations_seen_ = 0;
};

// Re-arming check callback: one sweep every kCheckInterval until the
// horizon. A named struct (two pointers, trivially copyable) rather than a
// lambda because it reschedules *itself* — a std::function-free event queue
// cannot store a callable that owns another callable.
struct RearmingCheck {
  InvariantChecker* checker;
  Simulator* sim;
  void operator()() const {
    checker->Check();
    if (sim->Now() < kHorizon && !::testing::Test::HasFatalFailure()) {
      sim->After(kCheckInterval, *this);
    }
  }
};

// Random hotplug churn: periodically toggle one non-boot cpu. Cpu 0 stays
// online so evacuation and affinity fallback always have a target. Same
// self-rescheduling shape as RearmingCheck; the Rng lives out-of-line in the
// test body because the callback must stay two pointers wide.
struct RearmingHotplug {
  Simulator* sim;
  Rng* rng;
  void operator()() const {
    int n_cores = sim->topo().n_cores();
    if (n_cores > 1) {
      CpuId victim = static_cast<CpuId>(1 + rng->NextBelow(static_cast<uint64_t>(n_cores - 1)));
      sim->SetCpuOnline(victim, !sim->sched().IsOnline(victim));
    }
    if (sim->Now() < kHorizon && !::testing::Test::HasFatalFailure()) {
      sim->After(kHotplugInterval, *this);
    }
  }
};

TEST(FuzzInvariants, RandomTopologiesAndWorkloads) {
  uint64_t base = BaseSeed();
  for (int run = 0; run < kRuns; ++run) {
    uint64_t seed = base + static_cast<uint64_t>(run);
    SCOPED_TRACE(ReproCommand(seed));

    uint64_t sm = seed;
    Rng rng(SplitMix64(sm));
    Topology topo = RandomTopology(rng);
    Simulator::Options opts;
    opts.features = RandomFeatures(rng);
    opts.seed = seed;
    Simulator sim(topo, opts);
    SpawnRandomMix(sim, rng, static_cast<int>(rng.NextInRange(6, 48)));

    InvariantChecker checker(&sim);
    // Scheduled through the event queue so checks interleave
    // deterministically with scheduler activity.
    sim.After(kCheckInterval, RearmingCheck{&checker, &sim});
    // Half the runs add hotplug churn, so the idle index, the group-stats
    // memo, and domain regeneration are all fuzzed across offline/online
    // transitions, not just in the steady topology.
    Rng hotplug_rng(SplitMix64(sm));
    if (rng.NextBool(0.5)) {
      sim.After(kHotplugInterval / 2, RearmingHotplug{&sim, &hotplug_rng});
    }
    sim.Run(kHorizon);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    EXPECT_GT(checker.checks(), 100) << "fuzz run did too little work to mean anything";
  }
}

// Directed variant: pin every thread to one core of a 4-core machine, so
// three cores idle while the pinned runqueue stacks up. The sanity checker
// must NOT fire (affinity forbids stealing); un-pinning one thread via a
// fresh unpinned spawn must make it fire at the next check.
TEST(FuzzInvariants, SanityCheckerFiresOnStealableBacklog) {
  Topology topo = Topology::Flat(1, 4);
  Simulator::Options opts;
  opts.seed = 7;
  Simulator sim(topo, opts);

  Simulator::SpawnParams pinned;
  pinned.affinity = CpuSet::Single(0);
  pinned.parent_cpu = 0;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
              pinned);
  }
  sim.Run(Milliseconds(1));

  SanityChecker checker(&sim);
  CpuId idle_cpu = kInvalidCpu;
  CpuId overloaded_cpu = kInvalidCpu;
  EXPECT_FALSE(checker.CheckOnce(&idle_cpu, &overloaded_cpu))
      << "checker fired although every queued thread is pinned to the busy core";

  // An unpinned hog spawned onto the overloaded core is stealable; between
  // its enqueue and the next balancing pass the invariant is violated.
  Simulator::SpawnParams unpinned;
  unpinned.parent_cpu = 0;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
            unpinned);
  ASSERT_GE(sim.sched().NrRunning(0), 2);
  bool any_idle = false;
  for (CpuId c = 1; c < 4; ++c) {
    any_idle = any_idle || sim.sched().IsIdleCpu(c);
  }
  if (any_idle) {
    EXPECT_TRUE(checker.CheckOnce(&idle_cpu, &overloaded_cpu))
        << "a core idles while cpu0 holds an unpinned waiting thread";
    EXPECT_EQ(overloaded_cpu, 0);
  }
}

// Regression (idle index vs. hotplug): repeatedly offline and online the
// exact cpu the index would answer with — the head-of-list case, where a
// stale link or a missed unlink corrupts every later query of that node's
// list — and cross-check the indexed answer against the linear scan after
// every transition and after scheduler activity in between.
TEST(FuzzInvariants, IdleIndexSurvivesHotplugOfLongestIdleAnswer) {
  uint64_t seed = BaseSeed() + 4242ULL;
  SCOPED_TRACE(ReproCommand(seed));
  uint64_t sm = seed;
  Rng rng(SplitMix64(sm));

  Topology topo = Topology::Bulldozer8x8();  // Multi-node: per-node idle lists.
  Simulator::Options opts;
  opts.features = RandomFeatures(rng);
  opts.features.fix_overload_wakeup = true;  // Wakeups consult the index too.
  opts.seed = seed;
  Simulator sim(topo, opts);
  SpawnRandomMix(sim, rng, 24);
  sim.Run(Milliseconds(5));

  const int n_cores = topo.n_cores();
  int offlined_rounds = 0;
  for (int round = 0; round < 40 && !::testing::Test::HasFatalFailure(); ++round) {
    const Scheduler& sched = sim.sched();
    ASSERT_EQ(sched.LongestIdleCpu(topo.AllCpus()), ScanLongestIdle(sched, n_cores))
        << "round " << round << " before hotplug";
    CpuId victim = sched.LongestIdleCpu(topo.AllCpus());
    if (victim == kInvalidCpu) {
      sim.Run(sim.Now() + Microseconds(700));
      continue;
    }
    offlined_rounds += 1;

    sim.SetCpuOnline(victim, false);
    ASSERT_TRUE(sched.ValidateIdleIndex()) << "round " << round << " after offlining " << victim;
    ASSERT_EQ(sched.LongestIdleCpu(topo.AllCpus()), ScanLongestIdle(sched, n_cores))
        << "round " << round << " with cpu " << victim << " offline";
    ASSERT_NE(sched.LongestIdleCpu(topo.AllCpus()), victim);

    // Let wakeups, ticks, and balancing run against the shrunken topology.
    sim.Run(sim.Now() + rng.NextTime(Microseconds(300), Milliseconds(2)));
    ASSERT_TRUE(sched.ValidateIdleIndex()) << "round " << round;
    ASSERT_EQ(sched.LongestIdleCpu(topo.AllCpus()), ScanLongestIdle(sched, n_cores))
        << "round " << round << " after running with cpu " << victim << " offline";

    sim.SetCpuOnline(victim, true);
    ASSERT_TRUE(sched.ValidateIdleIndex()) << "round " << round << " after onlining " << victim;
    ASSERT_EQ(sched.LongestIdleCpu(topo.AllCpus()), ScanLongestIdle(sched, n_cores))
        << "round " << round << " with cpu " << victim << " back online";

    sim.Run(sim.Now() + rng.NextTime(Microseconds(300), Milliseconds(2)));
  }
  EXPECT_GT(offlined_rounds, 10) << "machine was never idle enough to exercise the index";
}

// ---- Decay-forward exactness over random runnable sets ----------------------
//
// The balancer's cross-instant memos rest on one claim: when every member
// tracker reports ConstantFrom(t0), the cached group sum at t0 *is* the
// fresh per-entity re-sum at any later instant, bit for bit. This is that
// claim as a property test — random populations, random weights, random
// periods, 1..64 periods forward — rather than the directed cases in
// pelt_test.cc.
TEST(FuzzInvariants, DecayForwardBitIdenticalAcrossPeriods) {
  uint64_t base = BaseSeed();
  int const_seen = 0;
  int nonconst_seen = 0;
  int nonconst_moved = 0;
  for (int run = 0; run < kRuns; ++run) {
    uint64_t seed = base + 77000ULL + static_cast<uint64_t>(run);
    SCOPED_TRACE(ReproCommand(seed));
    uint64_t sm = seed;
    Rng rng(SplitMix64(sm));

    // A population built from the histories that reach the constant domain
    // in production: born-full hogs, never-ran entities, ramped-to-
    // saturation hogs, and long-blocked sleepers (constant by horizon).
    std::vector<LoadTracker> grp;
    std::vector<double> weight;
    const int n = static_cast<int>(rng.NextInRange(4, 24));
    for (int i = 0; i < n; ++i) {
      switch (rng.NextBelow(4)) {
        case 0: {  // Born full and runnable from t=0.
          grp.emplace_back(1.0);
          grp.back().SetState(0, true);
          break;
        }
        case 1: {  // Fully decayed and blocked.
          grp.emplace_back(0.0);
          grp.back().SetState(rng.NextTime(0, Milliseconds(40)), false);
          break;
        }
        case 2: {  // Hog that ramped to exactly 1.0 by rounding.
          grp.emplace_back(0.0);
          grp.back().SetState(0, true);
          grp.back().Advance(54 * LoadTracker::kHalfLife +
                             rng.NextTime(0, Milliseconds(20)));
          break;
        }
        default: {  // Mid-value sleeper; constant once t0 clears the horizon.
          grp.emplace_back(rng.NextDouble());
          grp.back().SetState(rng.NextTime(0, Milliseconds(40)), false);
          break;
        }
      }
      weight.push_back(0.1 + 4.0 * rng.NextDouble());
    }
    // Past every last_update by more than the saturation horizon, so each
    // of the four histories is constant through its own case of the proof.
    const Time t0 = Seconds(3) + rng.NextTime(0, Seconds(1));
    const Time period = rng.NextTime(Microseconds(50), Milliseconds(20));

    double cached = 0;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(grp[i].ConstantFrom(t0)) << "tracker " << i;
      cached += weight[static_cast<size_t>(i)] * grp[i].ValueAt(t0);
    }
    for (int nper = 1; nper <= 64; ++nper) {
      Time t1 = t0 + period * static_cast<Time>(nper);
      double fresh = 0;  // Same fold order as the cached sum.
      for (int i = 0; i < n; ++i) {
        fresh += weight[static_cast<size_t>(i)] * grp[i].ValueAt(t1);
      }
      ASSERT_EQ(fresh, cached) << "period=" << period << " n=" << nper;
    }

    // Mixed population at a nearby instant: the per-entity form of the same
    // claim. ConstantFrom(t0) must imply a bit-identical ValueAt at every
    // later instant; trackers still in motion prove the test has teeth.
    std::vector<LoadTracker> mixed;
    for (int i = 0; i < n; ++i) {
      if (rng.NextBool(0.2)) {  // Constant by value (case 1), at any instant.
        mixed.emplace_back(1.0);
        mixed.back().SetState(0, true);
      } else {  // In motion; constant only once m0 clears the horizon (case 3).
        mixed.emplace_back(rng.NextDouble());
        mixed.back().SetState(rng.NextTime(0, Milliseconds(200)), rng.NextBool(0.5));
      }
    }
    const Time m0 = Milliseconds(200) + rng.NextTime(0, Milliseconds(900));
    for (int i = 0; i < n; ++i) {
      const bool is_const = mixed[static_cast<size_t>(i)].ConstantFrom(m0);
      const double v0 = mixed[static_cast<size_t>(i)].ValueAt(m0);
      bool moved = false;
      for (int nper = 1; nper <= 64; ++nper) {
        double v1 = mixed[static_cast<size_t>(i)].ValueAt(m0 + period * static_cast<Time>(nper));
        if (is_const) {
          ASSERT_EQ(v1, v0) << "tracker " << i << " n=" << nper;
        } else if (v1 != v0) {
          moved = true;
        }
      }
      const_seen += is_const ? 1 : 0;
      nonconst_seen += is_const ? 0 : 1;
      nonconst_moved += moved ? 1 : 0;
    }
  }
  // The property must not hold vacuously: across the runs both populations
  // appear, and some non-constant tracker actually changed value.
  EXPECT_GT(const_seen, 0);
  EXPECT_GT(nonconst_seen, 0);
  EXPECT_GT(nonconst_moved, 0);
}

// ---- Streaming-parity invariant ---------------------------------------------
//
// The one-pass streaming analyzer and the whole-trace recorder observe the
// identical callback stream (fanned out by MultiSink). Every per-task
// accumulator the stream keeps incrementally must therefore equal a
// from-scratch reduction over the recorder's array — bit for bit, integers
// throughout. (The recorder stores nanoseconds in a double; values stay far
// below 2^53, so the uint64 round-trip is exact.)
TEST(FuzzInvariants, StreamingAccumulatorsMatchRecorderBitForBit) {
  uint64_t base = BaseSeed();
  for (int run = 0; run < kRuns; ++run) {
    uint64_t seed = base + 99000ULL + static_cast<uint64_t>(run);
    SCOPED_TRACE(ReproCommand(seed));
    uint64_t sm = seed;
    Rng rng(SplitMix64(sm));
    Topology topo = RandomTopology(rng);
    Simulator::Options opts;
    opts.features = RandomFeatures(rng);
    opts.seed = seed;

    EventRecorder recorder;
    TelemetryStream stream(TelemetryStream::ForTopology(topo));
    MultiSink multi;
    multi.Add(&recorder);
    multi.Add(&stream);
    Simulator sim(topo, opts, &multi);
    SpawnRandomMix(sim, rng, static_cast<int>(rng.NextInRange(6, 48)));
    sim.Run(kHorizon);
    stream.Finish(sim.Now());

    // Conservation first: both sinks saw every callback, nothing dropped.
    ASSERT_EQ(recorder.dropped(), 0u);
    ASSERT_EQ(stream.ring().dropped(), 0u);
    ASSERT_EQ(stream.events_seen(), recorder.events().size());
    ASSERT_EQ(stream.analyzer().events(), recorder.events().size());

    struct Totals {
      uint64_t runtime = 0, wait = 0, switches = 0, wakeups = 0, migrations = 0;
    };
    std::map<ThreadId, Totals> batch;
    uint64_t idle_ns = 0;
    for (const TraceEvent& e : recorder.events()) {
      switch (e.kind) {
        case TraceEvent::Kind::kSwitchIn:
          batch[e.tid].wait += static_cast<uint64_t>(e.value);
          break;
        case TraceEvent::Kind::kSwitchOut:
          batch[e.tid].runtime += static_cast<uint64_t>(e.value);
          batch[e.tid].switches += 1;
          break;
        case TraceEvent::Kind::kWakeupLatency:
          batch[e.tid].wakeups += 1;
          break;
        case TraceEvent::Kind::kMigration:
          batch[e.tid].migrations += 1;
          break;
        case TraceEvent::Kind::kIdleExit:
          idle_ns += static_cast<uint64_t>(e.value);
          break;
        default:
          break;
      }
    }

    ASSERT_GT(batch.size(), 0u) << "fuzz run produced no per-task events";
    uint64_t sum_runtime = 0;
    uint64_t sum_wait = 0;
    for (const auto& [tid, t] : batch) {
      const StreamAnalyzer::TaskStats& s = stream.analyzer().Task(tid);
      ASSERT_TRUE(s.seen) << "tid " << tid << " missing from the stream";
      ASSERT_EQ(s.runtime_ns, t.runtime) << "tid " << tid << " runtime diverged";
      ASSERT_EQ(s.wait_ns, t.wait) << "tid " << tid << " wait diverged";
      ASSERT_EQ(s.switches, t.switches) << "tid " << tid;
      ASSERT_EQ(s.wakeups, t.wakeups) << "tid " << tid;
      ASSERT_EQ(s.migrations, t.migrations) << "tid " << tid;
      sum_runtime += t.runtime;
      sum_wait += t.wait;
    }
    // And the machine-level totals are the per-task sums, also exactly.
    ASSERT_EQ(stream.analyzer().Machine().oncpu.sum_ns, sum_runtime);
    ASSERT_EQ(stream.analyzer().Machine().rq_wait.sum_ns, sum_wait);
    ASSERT_EQ(stream.analyzer().idle_ns(), static_cast<Time>(idle_ns));
  }
}

}  // namespace
}  // namespace wcores
