// Randomized property fuzzer: seeded random topologies, feature sets, and
// workload mixes, with scheduler invariants checked at fixed virtual-time
// intervals throughout each run.
//
// Invariants per check:
//  * Thread conservation — every alive thread is exactly one of running /
//    queued / blocked; per-cpu on_rq counts match rq->nr_running; the
//    running entity matches CurrentThread.
//  * Per-cfs_rq min_vruntime never decreases.
//  * Load-sum conservation — the (cached) RqLoad equals a from-scratch
//    recomputation, bit for bit.
//  * Runqueue structure — red-black invariants, vruntime ordering, weight
//    accounting (Scheduler::ValidateRq).
//  * Sanity-checker parity — Algorithm 2's CheckOnce fires iff a core is
//    idle while another runqueue holds a thread it could steal.
//
// Seeding: the base seed comes from WC_FUZZ_SEED (env) so a CI failure is
// reproducible locally; every failure message carries the repro command.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/simkit/rng.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

constexpr uint64_t kDefaultBaseSeed = 20260805ULL;
constexpr int kRuns = 6;
constexpr Time kHorizon = Milliseconds(300);
constexpr Time kCheckInterval = Microseconds(997);  // Odd: drifts across ticks.

uint64_t BaseSeed() {
  const char* env = std::getenv("WC_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefaultBaseSeed;
}

std::string ReproCommand(uint64_t seed) {
  return "reproduce with: WC_FUZZ_SEED=" + std::to_string(seed) +
         " ctest --test-dir build -R FuzzInvariants --output-on-failure";
}

Topology RandomTopology(Rng& rng) {
  switch (rng.NextBelow(4)) {
    case 0: return Topology::Flat(1, 4);
    case 1: return Topology::Flat(2, 4);
    case 2: return Topology::Flat(4, 8);
    default: return Topology::Bulldozer8x8();
  }
}

SchedFeatures RandomFeatures(Rng& rng) {
  SchedFeatures f;
  f.fix_group_imbalance = rng.NextBool(0.5);
  f.fix_group_construction = rng.NextBool(0.5);
  f.fix_overload_wakeup = rng.NextBool(0.5);
  f.fix_missing_domains = rng.NextBool(0.5);
  f.autogroup_enabled = rng.NextBool(0.8);
  return f;
}

void SpawnRandomMix(Simulator& sim, Rng& rng, int threads) {
  int n_cores = sim.topo().n_cores();
  AutogroupId groups[3] = {kRootAutogroup, sim.CreateAutogroup(), sim.CreateAutogroup()};
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = static_cast<CpuId>(rng.NextBelow(static_cast<uint64_t>(n_cores)));
    params.nice = static_cast<int>(rng.NextBelow(7)) - 3;
    params.autogroup = groups[rng.NextBelow(3)];
    if (rng.NextBool(0.25)) {
      params.affinity =
          CpuSet::Single(static_cast<CpuId>(rng.NextBelow(static_cast<uint64_t>(n_cores))));
    }
    std::vector<Action> script;
    if (rng.NextBool(0.3)) {
      script = {ComputeAction{Seconds(1)}};  // Hog: outlives the horizon.
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script)), params);
    } else {
      script = {ComputeAction{rng.NextTime(Microseconds(200), Milliseconds(3))},
                SleepAction{rng.NextTime(Microseconds(100), Milliseconds(2))}};
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script), /*repeat=*/1000), params);
    }
  }
}

// One invariant sweep over the whole machine at the current instant.
class InvariantChecker {
 public:
  explicit InvariantChecker(Simulator* sim)
      : sim_(sim), checker_(sim), last_min_vruntime_(sim->topo().n_cores(), 0) {}

  int checks() const { return checks_; }

  void Check() {
    checks_ += 1;
    const Scheduler& sched = sim_->sched();
    const Time now = sim_->Now();
    const int n_cores = sim_->topo().n_cores();

    // Thread conservation: classify every entity once, from the entity
    // side, and reconcile against every runqueue's own counters.
    std::vector<int> on_rq_count(n_cores, 0);
    std::vector<int> running_count(n_cores, 0);
    for (ThreadId tid = 0; tid < sched.ThreadCount(); ++tid) {
      const SchedEntity& se = sched.Entity(tid);
      if (se.running) {
        ASSERT_TRUE(se.on_rq) << "tid " << tid << " running but not on_rq";
      }
      if (se.on_rq) {
        ASSERT_GE(se.cpu, 0) << "tid " << tid;
        ASSERT_LT(se.cpu, n_cores) << "tid " << tid;
        on_rq_count[se.cpu] += 1;
        if (se.running) {
          running_count[se.cpu] += 1;
          ASSERT_EQ(sched.CurrentThread(se.cpu), tid)
              << "tid " << tid << " claims to run on cpu " << se.cpu;
        }
      }
    }
    for (CpuId cpu = 0; cpu < n_cores; ++cpu) {
      ASSERT_EQ(on_rq_count[cpu], sched.NrRunning(cpu))
          << "cpu " << cpu << ": entity census disagrees with rq nr_running at t=" << now;
      ASSERT_LE(running_count[cpu], 1) << "cpu " << cpu << ": two running entities";
      ThreadId curr = sched.CurrentThread(cpu);
      ASSERT_EQ(running_count[cpu], curr != kInvalidThread ? 1 : 0) << "cpu " << cpu;

      // Runqueue structure.
      ASSERT_TRUE(sched.ValidateRq(cpu)) << "cpu " << cpu << " rq invariants broken at t=" << now;

      // min_vruntime monotonicity.
      Time mv = sched.MinVruntime(cpu);
      ASSERT_GE(mv, last_min_vruntime_[cpu]) << "cpu " << cpu << " min_vruntime went backwards";
      last_min_vruntime_[cpu] = mv;

      // Load-sum conservation: cached == recomputed, exactly.
      ASSERT_EQ(sched.RqLoad(now, cpu), sched.RqLoadRecomputed(now, cpu))
          << "cpu " << cpu << " cached load diverged from recomputation at t=" << now;
    }

    // Balancer group-stats memo coherence: every cached aggregate matches a
    // from-scratch recomputation (the RqLoad cross-check, one level up).
    ASSERT_TRUE(sched.ValidateGroupCache(now))
        << "group-stats memo diverged from recomputation at t=" << now;

    // Idle-index coherence: structure (per-node order, link symmetry,
    // membership == online && tickless) and the answer itself — the indexed
    // LongestIdleCpu must match a fresh linear scan with the original
    // tie-break (lowest idle_since, then lowest cpu).
    ASSERT_TRUE(sched.ValidateIdleIndex()) << "idle index diverged at t=" << now;
    CpuId scan_best = kInvalidCpu;
    Time scan_since = kTimeNever;
    for (CpuId cpu = 0; cpu < n_cores; ++cpu) {
      if (!sched.IsOnline(cpu) || !sched.IsIdleCpu(cpu)) {
        continue;
      }
      if (sched.IdleSince(cpu) < scan_since) {
        scan_since = sched.IdleSince(cpu);
        scan_best = cpu;
      }
    }
    ASSERT_EQ(sched.LongestIdleCpu(sim_->topo().AllCpus()), scan_best)
        << "indexed LongestIdleCpu disagrees with linear scan at t=" << now;

    // Sanity-checker parity with an independent scan.
    bool expect_violation = false;
    for (CpuId idle : sched.OnlineCpus()) {
      if (sched.NrRunning(idle) >= 1) {
        continue;
      }
      for (CpuId busy : sched.OnlineCpus()) {
        if (busy != idle && sched.NrRunning(busy) >= 2 && sched.CanSteal(idle, busy)) {
          expect_violation = true;
          break;
        }
      }
      if (expect_violation) {
        break;
      }
    }
    CpuId idle_cpu = kInvalidCpu;
    CpuId overloaded_cpu = kInvalidCpu;
    bool fired = checker_.CheckOnce(&idle_cpu, &overloaded_cpu);
    ASSERT_EQ(fired, expect_violation) << "sanity checker disagrees with independent scan";
    if (fired) {
      ASSERT_TRUE(sched.IsIdleCpu(idle_cpu));
      ASSERT_GE(sched.NrRunning(overloaded_cpu), 2);
      ASSERT_TRUE(sched.CanSteal(idle_cpu, overloaded_cpu));
      violations_seen_ += 1;
    }
  }

  int violations_seen() const { return violations_seen_; }

 private:
  Simulator* sim_;
  SanityChecker checker_;
  std::vector<Time> last_min_vruntime_;
  int checks_ = 0;
  int violations_seen_ = 0;
};

// Re-arming check callback: one sweep every kCheckInterval until the
// horizon. A named struct (two pointers, trivially copyable) rather than a
// lambda because it reschedules *itself* — a std::function-free event queue
// cannot store a callable that owns another callable.
struct RearmingCheck {
  InvariantChecker* checker;
  Simulator* sim;
  void operator()() const {
    checker->Check();
    if (sim->Now() < kHorizon && !::testing::Test::HasFatalFailure()) {
      sim->After(kCheckInterval, *this);
    }
  }
};

TEST(FuzzInvariants, RandomTopologiesAndWorkloads) {
  uint64_t base = BaseSeed();
  for (int run = 0; run < kRuns; ++run) {
    uint64_t seed = base + static_cast<uint64_t>(run);
    SCOPED_TRACE(ReproCommand(seed));

    uint64_t sm = seed;
    Rng rng(SplitMix64(sm));
    Topology topo = RandomTopology(rng);
    Simulator::Options opts;
    opts.features = RandomFeatures(rng);
    opts.seed = seed;
    Simulator sim(topo, opts);
    SpawnRandomMix(sim, rng, static_cast<int>(rng.NextInRange(6, 48)));

    InvariantChecker checker(&sim);
    // Scheduled through the event queue so checks interleave
    // deterministically with scheduler activity.
    sim.After(kCheckInterval, RearmingCheck{&checker, &sim});
    sim.Run(kHorizon);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    EXPECT_GT(checker.checks(), 100) << "fuzz run did too little work to mean anything";
  }
}

// Directed variant: pin every thread to one core of a 4-core machine, so
// three cores idle while the pinned runqueue stacks up. The sanity checker
// must NOT fire (affinity forbids stealing); un-pinning one thread via a
// fresh unpinned spawn must make it fire at the next check.
TEST(FuzzInvariants, SanityCheckerFiresOnStealableBacklog) {
  Topology topo = Topology::Flat(1, 4);
  Simulator::Options opts;
  opts.seed = 7;
  Simulator sim(topo, opts);

  Simulator::SpawnParams pinned;
  pinned.affinity = CpuSet::Single(0);
  pinned.parent_cpu = 0;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
              pinned);
  }
  sim.Run(Milliseconds(1));

  SanityChecker checker(&sim);
  CpuId idle_cpu = kInvalidCpu;
  CpuId overloaded_cpu = kInvalidCpu;
  EXPECT_FALSE(checker.CheckOnce(&idle_cpu, &overloaded_cpu))
      << "checker fired although every queued thread is pinned to the busy core";

  // An unpinned hog spawned onto the overloaded core is stealable; between
  // its enqueue and the next balancing pass the invariant is violated.
  Simulator::SpawnParams unpinned;
  unpinned.parent_cpu = 0;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(1)}}),
            unpinned);
  ASSERT_GE(sim.sched().NrRunning(0), 2);
  bool any_idle = false;
  for (CpuId c = 1; c < 4; ++c) {
    any_idle = any_idle || sim.sched().IsIdleCpu(c);
  }
  if (any_idle) {
    EXPECT_TRUE(checker.CheckOnce(&idle_cpu, &overloaded_cpu))
        << "a core idles while cpu0 holds an unpinned waiting thread";
    EXPECT_EQ(overloaded_cpu, 0);
  }
}

}  // namespace
}  // namespace wcores
