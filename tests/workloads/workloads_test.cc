#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/sim/simulator.h"
#include "src/topo/topology.h"
#include "src/workloads/make_r.h"
#include "src/workloads/nas.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

namespace wcores {
namespace {

Simulator::Options Fixed() {
  Simulator::Options opts;
  opts.features = SchedFeatures::AllFixed();
  return opts;
}

// ---- NAS ---------------------------------------------------------------------

TEST(NasWorkloadTest, AllAppsRunToCompletion) {
  for (NasApp app : AllNasApps()) {
    Topology topo = Topology::Flat(2, 4, 2);
    Simulator sim(topo, Fixed());
    NasConfig config;
    config.app = app;
    config.threads = 8;
    config.scale = 0.05;
    NasWorkload wl(&sim, config);
    wl.Setup();
    sim.Run(Seconds(120));
    EXPECT_TRUE(wl.Finished()) << NasAppName(app);
    EXPECT_GT(wl.CompletionTime(), 0u) << NasAppName(app);
    EXPECT_GT(wl.TotalComputeTime(), 0u) << NasAppName(app);
  }
}

TEST(NasWorkloadTest, AppNamesAreUnique) {
  std::set<std::string> names;
  for (NasApp app : AllNasApps()) {
    names.insert(NasAppName(app));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(NasWorkloadTest, AffinityIsRespected) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator sim(topo, Fixed());
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 8;
  config.affinity = topo.CpusOfNode(2);
  config.scale = 0.1;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(60));
  EXPECT_TRUE(wl.Finished());
  for (ThreadId tid : wl.threads()) {
    EXPECT_TRUE(topo.CpusOfNode(2).Test(sim.sched().Entity(tid).cpu));
  }
}

TEST(NasWorkloadTest, LuSpinsMoreThanEp) {
  // The synchronization structure must differ: lu's pipeline burns spin
  // cycles even in a healthy run; ep burns almost none.
  Topology topo = Topology::Flat(2, 4, 2);
  Simulator sim(topo, Fixed());
  NasConfig lu_config;
  lu_config.app = NasApp::kLu;
  lu_config.threads = 8;
  lu_config.scale = 0.05;
  NasWorkload lu(&sim, lu_config);
  lu.Setup();
  sim.Run(Seconds(60));
  ASSERT_TRUE(lu.Finished());

  Simulator sim2(topo, Fixed());
  NasConfig ep_config;
  ep_config.app = NasApp::kEp;
  ep_config.threads = 8;
  ep_config.scale = 0.05;
  NasWorkload ep(&sim2, ep_config);
  ep.Setup();
  sim2.Run(Seconds(60));
  ASSERT_TRUE(ep.Finished());

  EXPECT_GT(lu.TotalSpinTime(), ep.TotalSpinTime());
}

TEST(NasWorkloadTest, ScaleShortensRuns) {
  Topology topo = Topology::Flat(2, 4, 2);
  double times[2];
  int i = 0;
  for (double scale : {0.05, 0.1}) {
    Simulator sim(topo, Fixed());
    NasConfig config;
    config.app = NasApp::kBt;
    config.threads = 8;
    config.scale = scale;
    NasWorkload wl(&sim, config);
    wl.Setup();
    sim.Run(Seconds(60));
    EXPECT_TRUE(wl.Finished());
    times[i++] = ToSeconds(wl.CompletionTime());
  }
  EXPECT_LT(times[0], times[1]);
}

// ---- make + R ----------------------------------------------------------------------

TEST(MakeRWorkloadTest, RunsToCompletion) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator sim(topo, Fixed());
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(50);
  config.r_work = Milliseconds(500);
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(30));
  EXPECT_TRUE(wl.MakeFinished());
  EXPECT_EQ(wl.make_threads().size(), 64u);
  EXPECT_EQ(wl.r_threads().size(), 2u);
  for (Time t : wl.RCompletionTimes()) {
    EXPECT_GT(t, 0u);
  }
}

TEST(MakeRWorkloadTest, ThreeAutogroups) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator sim(topo, Fixed());
  MakeRConfig config;
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  // make threads share one autogroup; each R has its own.
  AutogroupId make_group = sim.sched().Entity(wl.make_threads()[0]).autogroup;
  for (ThreadId tid : wl.make_threads()) {
    EXPECT_EQ(sim.sched().Entity(tid).autogroup, make_group);
  }
  AutogroupId r0 = sim.sched().Entity(wl.r_threads()[0]).autogroup;
  AutogroupId r1 = sim.sched().Entity(wl.r_threads()[1]).autogroup;
  EXPECT_NE(r0, make_group);
  EXPECT_NE(r1, make_group);
  EXPECT_NE(r0, r1);
  // The load division: a make thread's divisor is 64x an R thread's.
  EXPECT_DOUBLE_EQ(sim.sched().AutogroupDivisor(make_group), 64.0);
  EXPECT_DOUBLE_EQ(sim.sched().AutogroupDivisor(r0), 1.0);
}

// ---- TPC-H ----------------------------------------------------------------------------

TEST(TpchWorkloadTest, FullSuiteHas22Queries) {
  std::vector<TpchQuerySpec> suite = FullTpchSuite();
  EXPECT_EQ(suite.size(), 22u);
  EXPECT_EQ(TpchQuery18().id, 18);
  EXPECT_GT(TpchQuery18().stages, 0);
}

TEST(TpchWorkloadTest, Query18IsTheFinestGrained) {
  // Q18 is "one of the queries most sensitive to the bug": most stages.
  std::vector<TpchQuerySpec> suite = FullTpchSuite();
  int q18_stages = TpchQuery18().stages;
  for (const TpchQuerySpec& q : suite) {
    EXPECT_LE(q.stages, q18_stages) << "query " << q.id;
  }
}

TEST(TpchWorkloadTest, RunsAndRecordsQueryTimes) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator sim(topo, Fixed());
  TpchConfig config;
  config.queries = {TpchQuery18(0.3), TpchQuerySpec{1, 5, Milliseconds(1), 0.2}};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(30));
  EXPECT_TRUE(wl.Finished());
  EXPECT_EQ(wl.TotalWorkers(), 64);
  ASSERT_EQ(wl.QueryTimes().size(), 2u);
  EXPECT_GT(wl.QueryTimes()[0], 0u);
  EXPECT_GT(wl.QueryTimes()[1], 0u);
}

TEST(TpchWorkloadTest, WorkerPoolsGetDistinctAutogroups) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator sim(topo, Fixed());
  TpchConfig config;
  config.queries = {TpchQuerySpec{1, 2, Milliseconds(1), 0.0}};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  std::set<AutogroupId> groups;
  for (ThreadId tid : wl.workers()) {
    groups.insert(sim.sched().Entity(tid).autogroup);
  }
  EXPECT_EQ(groups.size(), config.pool_sizes.size());
}

TEST(TpchWorkloadTest, WorkersSleepNotSpin) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator sim(topo, Fixed());
  TpchConfig config;
  config.queries = {TpchQuery18(0.5)};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(30));
  ASSERT_TRUE(wl.Finished());
  for (ThreadId tid : wl.workers()) {
    EXPECT_EQ(sim.thread(tid).spin_time, 0u);
  }
}

// ---- Transient threads -------------------------------------------------------------------

TEST(TransientTest, SpawnsAtRoughlyTheConfiguredRate) {
  Topology topo = Topology::Flat(2, 4, 1);
  Simulator sim(topo, Fixed());
  TransientThreadGenerator::Options opts;
  opts.mean_interval = Milliseconds(2);
  opts.stop_at = Seconds(1);
  TransientThreadGenerator gen(&sim, opts);
  gen.Start();
  sim.Run(Seconds(2));
  // ~500 expected over 1s of spawning.
  EXPECT_GT(gen.spawned(), 350u);
  EXPECT_LT(gen.spawned(), 700u);
  EXPECT_EQ(sim.alive_threads(), 0);  // All transient threads exit quickly.
}

TEST(TransientTest, StopAtHaltsSpawning) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Fixed());
  TransientThreadGenerator::Options opts;
  opts.mean_interval = Milliseconds(10);
  opts.stop_at = Milliseconds(100);
  TransientThreadGenerator gen(&sim, opts);
  gen.Start();
  sim.Run(Seconds(1));
  uint64_t after_stop = gen.spawned();
  sim.Run(Seconds(2));
  EXPECT_EQ(gen.spawned(), after_stop);
}

TEST(TransientTest, ThreadsAreShortLived) {
  // "tasks that last less than a millisecond" (§3.3).
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Fixed());
  TransientThreadGenerator::Options opts;
  opts.stop_at = Milliseconds(100);
  TransientThreadGenerator gen(&sim, opts);
  gen.Start();
  sim.Run(Seconds(1));
  for (int i = 0; i < sim.thread_count(); ++i) {
    const SimThread& t = sim.thread(i);
    EXPECT_LT(t.total_compute, Milliseconds(1));
  }
}

}  // namespace
}  // namespace wcores
