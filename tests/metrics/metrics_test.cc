#include <gtest/gtest.h>

#include "src/metrics/accounting.h"
#include "src/metrics/histogram.h"

namespace wcores {
namespace {

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(SummaryTest, MeanMinMax) {
  Summary s;
  for (double v : {3.0, 1.0, 2.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 6.0);
}

TEST(SummaryTest, QuantilesInterpolate) {
  Summary s;
  for (int i = 0; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.Quantile(0.95), 95.0, 0.01);
}

TEST(SummaryTest, QuantileAfterAddResorts) {
  Summary s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 10.0);
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
}

TEST(SummaryTest, StddevOfConstantIsZero) {
  Summary s;
  s.Add(5.0);
  s.Add(5.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(SummaryTest, StddevSimpleCase) {
  Summary s;
  s.Add(2.0);
  s.Add(4.0);
  // Sample stddev of {2,4}: sqrt(((2-3)^2+(4-3)^2)/1) = sqrt(2).
  EXPECT_NEAR(s.Stddev(), std::sqrt(2.0), 1e-12);
}

TEST(CpuAccountingTest, BusyAccumulatesPerCore) {
  CpuAccounting acct(4);
  acct.AddBusy(0, Milliseconds(10));
  acct.AddBusy(0, Milliseconds(5));
  acct.AddBusy(2, Milliseconds(20));
  EXPECT_EQ(acct.Busy(0), Milliseconds(15));
  EXPECT_EQ(acct.Busy(1), 0u);
  EXPECT_EQ(acct.TotalBusy(), Milliseconds(35));
}

TEST(CpuAccountingTest, UtilizationFractions) {
  CpuAccounting acct(2);
  acct.AddBusy(0, Milliseconds(50));
  EXPECT_DOUBLE_EQ(acct.Utilization(0, Milliseconds(100)), 0.5);
  EXPECT_DOUBLE_EQ(acct.Utilization(1, Milliseconds(100)), 0.0);
  EXPECT_DOUBLE_EQ(acct.MachineUtilization(Milliseconds(100)), 0.25);
}

TEST(CpuAccountingTest, ZeroElapsedIsSafe) {
  CpuAccounting acct(1);
  EXPECT_DOUBLE_EQ(acct.Utilization(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(acct.MachineUtilization(0), 0.0);
}

}  // namespace
}  // namespace wcores
