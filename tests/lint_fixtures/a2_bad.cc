// A2 bad: allocation and container growth one call below a dispatch root.
// The hot set is seeded by name (Simulator::OnTick is an event handler), so
// the growth in the callee is flagged with its witness chain.
#include <vector>

struct Simulator {
  void OnTick() { Account(1); }
  void Account(int ev) {
    log.push_back(ev);
    scratch = new int[16];
  }
  std::vector<int> log;
  int* scratch = nullptr;
};
