// Suppression-grammar fixture: annotations that are themselves findings.
// Not compiled — lint input only.
#include <cstdlib>

int a = rand();  // wc-lint: allow(D3)
int b = rand();  // wc-lint: allow(D3   )
int c = rand();  // wc-lint: allow()
int d = rand();  // wc-lint: allow(D3 unterminated
