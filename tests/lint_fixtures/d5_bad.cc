// D5 fixture: type-erased callbacks in a designated hot-path file. Not
// compiled — lint input only.
#include <functional>

struct Event {
  std::function<void()> callback;  // tracked: indirect call + possible alloc
};

void enqueue(std::function<void(int)> cb);  // tracked
