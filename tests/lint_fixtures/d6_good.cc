// D6 fixture: load reads routed through the group-stats cache, plus
// near-miss identifiers. Not compiled — lint input only.

double group_sum(Time now, CpuId cpu) {
  double load = RqLoad(now, cpu);      // sanctioned memoized accessor
  load += GroupStats(now, g).load;     // sanctioned group aggregate
  double value_at = 0.0;               // identifier, not a call
  (void)value_at;
  return load + ValueAtHome(now);      // different identifier
}
