// D7 fixture: unannotated container growth in bounded-memory code. Not
// compiled — lint input only.

void record(Analyzer* a, const StreamRecord& rec) {
  a->events.push_back(rec);                // tracked: per-event append
  a->spans.emplace_back(rec.when, rec.tid);  // tracked: emplace variant
  a->tails_->push_back(rec.value);         // tracked: arrow access
}
