// D2 fixture: unordered containers in trace-affecting code. Not compiled —
// lint input only.
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, double> load_by_cpu;  // bad: hash-order iteration
std::unordered_set<int> woken;                // bad
std::unordered_multimap<int, int> edges;      // bad
