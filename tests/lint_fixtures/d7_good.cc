// D7 fixture: bounded alternatives and annotated growth. Not compiled —
// lint input only.

void record(Analyzer* a, const StreamRecord& rec) {
  a->ring[a->head & kMask] = rec;          // indexed write into fixed storage
  double push_back = 0.0;                  // identifier, not a member call
  (void)push_back;
  PushBackoff(rec.when);                   // different identifier
  // wc-lint: allow(D7 findings are capped at kMaxFindings and reserved up front)
  a->findings.push_back(rec.tid);
}
