// Suppression fixture: valid allow() annotations in both positions. Not
// compiled — lint input only.
#include <chrono>
#include <cstdlib>

// Trailing annotation: same line as the finding.
auto wall = std::chrono::steady_clock::now();  // wc-lint: allow(D3 measuring host wall time)

// Leading annotation: the line above the finding.
// wc-lint: allow(D3 benchmark warmup entropy is outside the trace)
int warmup = rand();

// A suppression for one rule must not silence another:
// wc-lint: allow(D4 exact sentinel compare)
auto t = std::chrono::steady_clock::now();  // still a D3 finding

bool sentinel(double v) {
  return v == -1.0;  // wc-lint: allow(D4 exact sentinel value, never computed)
}
