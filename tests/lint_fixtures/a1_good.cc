// A1 good: the fold consumes stable ids only, and the env read lives in
// setup code with no call path to (or from) anything trace-affecting —
// interprocedural analysis keeps it legal where a token rule would have to
// either miss the bad case or flag this one.
#include <cstdint>
#include <cstdlib>

struct Fold {
  void Mix(uint64_t v) { state = (state ^ v) * 1099511628211ull; }
  uint64_t state = 14695981039346656037ull;
};

struct Probe {
  void Observe(uint64_t stable_id) { fold.Mix(stable_id); }
  Fold fold;
};

inline bool WantColorOutput() { return std::getenv("WC_COLOR") != nullptr; }
