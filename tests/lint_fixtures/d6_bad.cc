// D6 fixture: per-entity decayed-load reads in balancing code. Not
// compiled — lint input only.

double group_sum(SchedEntity* se, Time now) {
  double load = se->load.ValueAt(now);               // tracked: member call
  load += CfsRunqueue::EntityLoad(*se, now, 1.0);    // tracked: qualified call
  load += rq.LoadAt(now, 1.0);                       // tracked: raw rq fold
  load += RqLoadRecomputed(now, cpu);                // tracked: memo bypass
  return load;
}
