// D1 fixture: ordered containers with deterministic keys, plus shapes that
// must not trip the template scanner. Not compiled — lint input only.
#include <map>
#include <set>
#include <string>
#include <utility>

struct Thread;

std::map<int, Thread*> by_tid;                         // pointer VALUE is fine
std::set<std::string> names;
std::map<std::pair<int, int>, Thread*> by_cpu_and_id;  // pointer only in value
std::multiset<long> timestamps;

int set_like_variable(int set, int x) {
  // `set` as a variable in a comparison followed by multiplication must not
  // parse as a template with a pointer key.
  return set < x * 2 ? set : x;
}

const char* not_code = "std::map<Thread*, int> inside a string literal";
// std::map<Thread*, int> inside a comment
