// D5 fixture: callback shapes without type erasure. Not compiled — lint
// input only.
struct Event {
  void (*callback)(void* ctx);  // plain function pointer
  void* ctx;
};

template <class Fn>
void enqueue(Fn&& fn);  // compile-time callable

namespace mylib {
template <class T>
struct function {};
}  // namespace mylib
mylib::function<void()> foreign;  // not std::function
