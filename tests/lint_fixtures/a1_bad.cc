// A1 bad: nondeterminism reaches the trace fold interprocedurally. The
// pointer-as-integer cast is invisible to token-level D3; only reachability
// connects Probe::Observe to Fold::Mix (the hash fold), and the env read
// hides one call away in a helper the trace-affecting code invokes.
#include <cstdint>
#include <cstdlib>

struct Fold {
  void Mix(uint64_t v) { state = (state ^ v) * 1099511628211ull; }
  uint64_t state = 14695981039346656037ull;
};

inline uint64_t TraceSalt() { return std::getenv("WC_SALT") != nullptr ? 1 : 0; }

struct Probe {
  void Observe(void* obj) {
    fold.Mix(reinterpret_cast<uint64_t>(obj));
    fold.Mix(TraceSalt());
  }
  Fold fold;
};
