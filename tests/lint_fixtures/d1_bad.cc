// D1 fixture: pointer-valued keys in ordered containers. Not compiled —
// lint input only.
#include <map>
#include <set>

struct Thread;

std::map<Thread*, int> runnable_by_thread;          // bad: T* key
std::set<const Thread*> blocked;                    // bad: const T* key
std::multimap<Thread**, int> double_indirection;    // bad: T** key
std::map<int, std::set<Thread*>> nested_value_key;  // bad: inner set keys by pointer
