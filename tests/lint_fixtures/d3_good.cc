// D3 fixture: the deterministic seams that must NOT be flagged. Not
// compiled — lint input only.
#include <cstdint>

struct Rng {
  explicit Rng(uint64_t seed);
  uint64_t Next();
};

struct Sim {
  uint64_t time() const;   // member named `time` is not ::time()
  uint64_t clock() const;  // member named `clock` is not ::clock()
};

using Time = uint64_t;

uint64_t draw(Rng& rng) { return rng.Next(); }        // seeded Rng is the seam
uint64_t now_of(const Sim& sim) { return sim.time(); }  // member call
uint64_t clk(const Sim* sim) { return sim->clock(); }   // member call
Time time_declaration() {
  Time time(0);  // declaration of a variable named `time`, not a call
  return time;
}

namespace mylib {
int rand();
}
int foreign() { return mylib::rand(); }  // another library's rand
