// A3 good: the policy consumes only the public mechanism surface, so the
// same shapes (member call, comparison against mechanism state) are legal.
class SchedPolicy {
 public:
  virtual int SelectWakeCpu(int prev) = 0;
  virtual ~SchedPolicy() = default;
};

class Scheduler {
 public:
  int CfsSelectWakeCpu(int prev) { return prev; }
  int NrRunning(int cpu) const { return cpu == 0 ? 1 : 0; }

 private:
  int IdleBalance(int cpu) { return cpu; }
  int nr_migrations_ = 0;
};

class PolitePolicy : public SchedPolicy {
 public:
  int SelectWakeCpu(int prev) override {
    if (sched_->NrRunning(prev) == 0) {
      return prev;
    }
    return sched_->CfsSelectWakeCpu(prev);
  }

 private:
  Scheduler* sched_ = nullptr;
};
