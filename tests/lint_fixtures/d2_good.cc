// D2 fixture: deterministic containers. Not compiled — lint input only.
#include <map>
#include <set>
#include <vector>

std::map<int, double> load_by_cpu;
std::set<int> woken;
std::vector<int> sorted_edges;

// mylib::unordered_map is some other library's type, not std's (fixtures
// are lint input, not compiled, so the missing declaration is fine).
mylib::unordered_map<int, int> shim;
