// A3 bad: a policy reaches mechanism internals directly — via a private
// method call and a private field write. The friend declaration is exactly
// the backdoor the rule refuses to honor: befriending a policy does not
// make the access architectural.
class SchedPolicy {
 public:
  virtual int SelectWakeCpu(int prev) = 0;
  virtual ~SchedPolicy() = default;
};

class Scheduler {
 public:
  int CfsSelectWakeCpu(int prev) { return prev; }

 private:
  friend class GreedyPolicy;
  int IdleBalance(int cpu) { return cpu; }
  int nr_migrations_ = 0;
};

class GreedyPolicy : public SchedPolicy {
 public:
  int SelectWakeCpu(int prev) override {
    int stolen = sched_->IdleBalance(prev);
    sched_->nr_migrations_ += 1;
    return stolen;
  }

 private:
  Scheduler* sched_ = nullptr;
};
