// A4 good: the pick bumps the load version in the same body (fold order is
// re-keyed), and balancing serves load from its cached aggregate instead of
// re-decaying entities.
struct SchedEntity {
  int weight = 0;
};

struct RbTree {
  void Insert(SchedEntity* se) { root = se; }
  void Erase(SchedEntity* se) { root = (se == root) ? nullptr : root; }
  SchedEntity* root = nullptr;
};

class CfsRunqueue {
 public:
  SchedEntity* PickSpecific(SchedEntity* se) {
    BumpLoadVersion();
    tree_.Erase(se);
    return se;
  }

 private:
  void BumpLoadVersion() { load_version_ += 1; }
  RbTree tree_;
  unsigned long load_version_ = 0;
};

class Scheduler {
 public:
  SchedEntity* PickNext(long now) { return rq_.PickSpecific(&hint_); }
  double BalanceDomain(long now) { return cached_load_; }

 private:
  CfsRunqueue rq_;
  SchedEntity hint_;
  double cached_load_ = 0.0;
};
