// D4 fixture: exact float equality in decision code. Not compiled — lint
// input only.
bool at_unit_load(double load) { return load == 1.0; }      // bad
bool not_half(double frac) { return 0.5 != frac; }          // bad: literal on the left
bool unset(double v) { return v == -1.0; }                  // bad: negated literal
bool fancy(float x) { return x != 2.5f; }                   // bad: float suffix
bool sci(double x) { return x == 1e-9; }                    // bad: exponent literal
