// A2 good: storage is sized in setup code the dispatch roots never reach,
// the handler writes in place, and the one hot-path append carries an
// allow() stating its bound.
#include <vector>

struct Simulator {
  void Prepare() { log.resize(1024); }
  void OnTick() {
    log[cursor % 1024] = 1;
    cursor += 1;
    // wc-lint: allow(A2 ring append; capacity pinned at 1024 by Prepare)
    ring.push_back(cursor);
  }
  std::vector<int> log;
  std::vector<unsigned> ring;
  unsigned cursor = 0;
};
