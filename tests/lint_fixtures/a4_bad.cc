// A4 bad: balance-reachable code re-reads per-entity decayed load, and a
// pick mutates the rq tree without re-keying the load memo — the exact bug
// class a non-leftmost PickSpecific without a load_version bump reintroduces.
struct SchedEntity {
  double ValueAt(long now) const { return static_cast<double>(now) * 0.5; }
};

struct RbTree {
  void Insert(SchedEntity* se) { root = se; }
  void Erase(SchedEntity* se) { root = (se == root) ? nullptr : root; }
  SchedEntity* root = nullptr;
};

class CfsRunqueue {
 public:
  SchedEntity* PickSpecific(SchedEntity* se) {
    tree_.Erase(se);
    return se;
  }

 private:
  void BumpLoadVersion() { load_version_ += 1; }
  RbTree tree_;
  unsigned long load_version_ = 0;
};

class Scheduler {
 public:
  SchedEntity* PickNext(long now) { return rq_.PickSpecific(&hint_); }
  double BalanceDomain(long now) { return hint_.ValueAt(now); }

 private:
  CfsRunqueue rq_;
  SchedEntity hint_;
};
