// D4 fixture: decisions that are fine. Not compiled — lint input only.
#include <cmath>

bool at_count(int n) { return n == 1; }  // integer equality
bool near_unit(double load) { return std::abs(load - 1.0) < 1e-9; }  // epsilon
bool ordered(double a, double b) { return a < b; }  // inequality, not equality
double pick(double x) { return x == x ? x : 0.0; }  // no literal operand (type-blind)
