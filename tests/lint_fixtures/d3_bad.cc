// D3 fixture: every banned nondeterminism source. Not compiled — lint
// input only.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int jitter() { return rand() % 7; }                              // bad: rand()
void reseed() { srand(42); }                                     // bad: srand()
std::random_device entropy;                                      // bad: hardware entropy
auto t0 = std::chrono::steady_clock::now();                      // bad: host clock
auto t1 = std::chrono::system_clock::now();                      // bad: host clock
auto t2 = std::chrono::high_resolution_clock::now();             // bad: host clock
long stamp() { return time(nullptr); }                           // bad: time()
long ticks() { return clock(); }                                 // bad: clock()
const char* home() { return getenv("HOME"); }                    // bad: environment read
const char* shell() { return secure_getenv("SHELL"); }           // bad: environment read
int qualified() { return std::rand(); }                          // bad: std::rand()
