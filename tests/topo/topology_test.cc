#include "src/topo/topology.h"

#include <gtest/gtest.h>

#include "src/topo/domains.h"

namespace wcores {
namespace {

TEST(TopologyTest, FlatBasics) {
  Topology topo = Topology::Flat(4, 8, 2);
  EXPECT_EQ(topo.n_cores(), 32);
  EXPECT_EQ(topo.n_nodes(), 4);
  EXPECT_EQ(topo.cores_per_node(), 8);
  EXPECT_EQ(topo.smt_width(), 2);
  EXPECT_EQ(topo.MaxHops(), 1);
}

TEST(TopologyTest, NodeOfIsNodeMajor) {
  Topology topo = Topology::Flat(4, 8, 2);
  EXPECT_EQ(topo.NodeOf(0), 0);
  EXPECT_EQ(topo.NodeOf(7), 0);
  EXPECT_EQ(topo.NodeOf(8), 1);
  EXPECT_EQ(topo.NodeOf(31), 3);
}

TEST(TopologyTest, CpusOfNodeAreContiguous) {
  Topology topo = Topology::Flat(4, 8, 2);
  EXPECT_EQ(topo.CpusOfNode(1).ToString(), "8-15");
  EXPECT_EQ(topo.CpusOfNode(1).Count(), 8);
}

TEST(TopologyTest, SmtSiblingsPairUp) {
  Topology topo = Topology::Flat(2, 8, 2);
  EXPECT_EQ(topo.SmtSiblings(0).ToString(), "0-1");
  EXPECT_EQ(topo.SmtSiblings(1).ToString(), "0-1");
  EXPECT_EQ(topo.SmtSiblings(6).ToString(), "6-7");
  EXPECT_TRUE(topo.SmtSiblings(5).Test(5));
}

TEST(TopologyTest, SmtWidthOneIsSelfOnly) {
  Topology topo = Topology::Flat(1, 4, 1);
  EXPECT_EQ(topo.SmtSiblings(2).Count(), 1);
  EXPECT_TRUE(topo.SmtSiblings(2).Test(2));
}

TEST(TopologyTest, FlatHopsAreUniform) {
  Topology topo = Topology::Flat(4, 4, 1);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      EXPECT_EQ(topo.NodeHops(a, b), a == b ? 0 : 1);
    }
  }
}

TEST(TopologyTest, AllCpus) {
  Topology topo = Topology::Flat(2, 4, 1);
  EXPECT_EQ(topo.AllCpus().Count(), 8);
}

// --- The paper's machine (Figure 4 / Table 5) ---------------------------------

TEST(BulldozerTest, SixtyFourCoresEightNodes) {
  Topology topo = Topology::Bulldozer8x8();
  EXPECT_EQ(topo.n_cores(), 64);
  EXPECT_EQ(topo.n_nodes(), 8);
  EXPECT_EQ(topo.cores_per_node(), 8);
  EXPECT_EQ(topo.smt_width(), 2);
}

TEST(BulldozerTest, Node0OneHopNeighboursMatchPaper) {
  // §2.2.1: "the first scheduling group contains the cores of Node 0, plus
  // the cores of all the nodes that are one hop apart from Node 0, namely
  // Nodes 1, 2, 4 and 6."
  Topology topo = Topology::Bulldozer8x8();
  std::vector<NodeId> within = topo.NodesWithin(0, 1);
  EXPECT_EQ(within, (std::vector<NodeId>{0, 1, 2, 4, 6}));
}

TEST(BulldozerTest, Node3OneHopNeighboursMatchPaper) {
  // "The second scheduling group contains ... Node 3, plus cores of all
  // nodes that are one hop apart from Node 3: Nodes 1, 2, 4, 5, 7."
  Topology topo = Topology::Bulldozer8x8();
  std::vector<NodeId> within = topo.NodesWithin(3, 1);
  EXPECT_EQ(within, (std::vector<NodeId>{1, 2, 3, 4, 5, 7}));
}

TEST(BulldozerTest, Nodes1And2AreTwoHopsApart) {
  // §3.2: "Nodes 1 and 2 are two hops apart."
  Topology topo = Topology::Bulldozer8x8();
  EXPECT_EQ(topo.NodeHops(1, 2), 2);
}

TEST(BulldozerTest, EveryNodeReachableWithinTwoHops) {
  // Figure 1: "all nodes are reachable in 2 hops."
  Topology topo = Topology::Bulldozer8x8();
  EXPECT_EQ(topo.MaxHops(), 2);
  for (NodeId a = 0; a < 8; ++a) {
    EXPECT_EQ(topo.NodesWithin(a, 2).size(), 8u);
  }
}

TEST(BulldozerTest, HopMatrixSymmetricZeroDiagonal) {
  Topology topo = Topology::Bulldozer8x8();
  for (NodeId a = 0; a < 8; ++a) {
    EXPECT_EQ(topo.NodeHops(a, a), 0);
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(topo.NodeHops(a, b), topo.NodeHops(b, a));
    }
  }
}

TEST(BulldozerTest, CpusWithinUnionsNodes) {
  Topology topo = Topology::Bulldozer8x8();
  CpuSet within1 = topo.CpusWithin(0, 1);
  EXPECT_EQ(within1.Count(), 5 * 8);
  EXPECT_TRUE(within1.ContainsAll(topo.CpusOfNode(0)));
  EXPECT_TRUE(within1.ContainsAll(topo.CpusOfNode(6)));
  EXPECT_FALSE(within1.Intersects(topo.CpusOfNode(3)));
  EXPECT_EQ(topo.CpusWithin(0, 2).Count(), 64);
}

TEST(BulldozerTest, HopMatrixRendering) {
  Topology topo = Topology::Bulldozer8x8();
  std::string matrix = topo.HopMatrixToString();
  EXPECT_NE(matrix.find("N0"), std::string::npos);
  EXPECT_NE(matrix.find("N7"), std::string::npos);
}

// --- Figure 1's 32-core example machine ---------------------------------------

TEST(Example32Test, MatchesFigure1Description) {
  Topology topo = Topology::Example32();
  EXPECT_EQ(topo.n_cores(), 32);
  EXPECT_EQ(topo.n_nodes(), 4);
  EXPECT_EQ(topo.smt_width(), 2);
  // "at the second level of the hierarchy we have a group of three nodes
  // ... reachable from the first core in one hop."
  EXPECT_EQ(topo.NodesWithin(0, 1).size(), 3u);
  // "At the 4th level, we have all nodes of the machine because all nodes
  // are reachable in 2 hops."
  EXPECT_EQ(topo.NodesWithin(0, 2).size(), 4u);
  EXPECT_EQ(topo.MaxHops(), 2);
}

TEST(Example32Test, DomainLevelsMatchFigure1) {
  Topology topo = Topology::Example32();
  DomainBuildOptions opts;
  auto trees = BuildDomains(topo, topo.AllCpus(), opts);
  const auto& domains = trees[0].domains;
  ASSERT_EQ(domains.size(), 4u);
  EXPECT_EQ(domains[0].span.Count(), 2);   // SMT pair.
  EXPECT_EQ(domains[1].span.Count(), 8);   // Node.
  EXPECT_EQ(domains[2].span.Count(), 24);  // Node + the two 1-hop nodes.
  EXPECT_EQ(domains[3].span.Count(), 32);  // Whole machine.
}

TEST(BulldozerTest, SpecDescribesOpteron) {
  Topology topo = Topology::Bulldozer8x8();
  EXPECT_NE(topo.spec().cpus.find("Opteron"), std::string::npos);
  EXPECT_NE(topo.spec().interconnect.find("HyperTransport"), std::string::npos);
}

}  // namespace
}  // namespace wcores
