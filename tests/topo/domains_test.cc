#include "src/topo/domains.h"

#include <gtest/gtest.h>

#include "src/topo/topology.h"

namespace wcores {
namespace {

DomainBuildOptions Stock() {
  DomainBuildOptions opts;
  opts.perspective = GroupPerspective::kCore0;
  return opts;
}

DomainBuildOptions Fixed() {
  DomainBuildOptions opts;
  opts.perspective = GroupPerspective::kPerCore;
  return opts;
}

const SchedDomain& TopDomain(const DomainTree& tree) { return tree.domains.back(); }

TEST(DomainsTest, BottomUpLevelsOnBulldozer) {
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  const DomainTree& tree = trees[0];
  ASSERT_EQ(tree.domains.size(), 4u);  // SMT, NODE, NUMA(1), NUMA(2).
  EXPECT_EQ(tree.domains[0].name, "SMT");
  EXPECT_EQ(tree.domains[1].name, "NODE");
  EXPECT_EQ(tree.domains[2].name, "NUMA(1)");
  EXPECT_EQ(tree.domains[3].name, "NUMA(2)");
}

TEST(DomainsTest, SpansNestUpward) {
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    const DomainTree& tree = trees[c];
    for (size_t i = 0; i + 1 < tree.domains.size(); ++i) {
      EXPECT_TRUE(tree.domains[i + 1].span.ContainsAll(tree.domains[i].span))
          << "cpu " << c << " level " << i;
    }
    EXPECT_TRUE(tree.domains.front().span.Test(c));
  }
}

TEST(DomainsTest, SmtDomainHasPerCpuGroups) {
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  const SchedDomain& smt = trees[5].domains[0];
  EXPECT_EQ(smt.span.ToString(), "4-5");
  ASSERT_EQ(smt.groups.size(), 2u);
  EXPECT_EQ(smt.groups[0].cpus.Count(), 1);
  EXPECT_EQ(smt.local_group, 1);  // cpu 5 is in the second group.
}

TEST(DomainsTest, NodeDomainGroupsAreSmtPairs) {
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  const SchedDomain& node = trees[0].domains[1];
  EXPECT_EQ(node.span.Count(), 8);
  ASSERT_EQ(node.groups.size(), 4u);
  for (const SchedGroup& g : node.groups) {
    EXPECT_EQ(g.cpus.Count(), 2);
  }
}

TEST(DomainsTest, GroupsCoverSpan) {
  Topology topo = Topology::Bulldozer8x8();
  for (const auto& opts : {Stock(), Fixed()}) {
    auto trees = BuildDomains(topo, topo.AllCpus(), opts);
    for (CpuId c = 0; c < topo.n_cores(); ++c) {
      for (const SchedDomain& sd : trees[c].domains) {
        CpuSet covered;
        for (const SchedGroup& g : sd.groups) {
          covered |= g.cpus;
        }
        EXPECT_EQ(covered, sd.span) << "cpu " << c << " domain " << sd.name;
      }
    }
  }
}

TEST(DomainsTest, LocalGroupContainsOwner) {
  Topology topo = Topology::Bulldozer8x8();
  for (const auto& opts : {Stock(), Fixed()}) {
    auto trees = BuildDomains(topo, topo.AllCpus(), opts);
    for (CpuId c = 0; c < topo.n_cores(); ++c) {
      for (const SchedDomain& sd : trees[c].domains) {
        ASSERT_GE(sd.local_group, 0);
        EXPECT_TRUE(sd.groups[sd.local_group].cpus.Test(c));
      }
    }
  }
}

TEST(DomainsTest, StockMachineGroupsMatchPaperExample) {
  // §3.2: "The first two scheduling groups are thus: {0, 1, 2, 4, 6},
  // {1, 2, 3, 4, 5, 7}" (in node numbers), for *every* core.
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  CpuSet group0_nodes = topo.CpusOfNode(0) | topo.CpusOfNode(1) | topo.CpusOfNode(2) |
                        topo.CpusOfNode(4) | topo.CpusOfNode(6);
  CpuSet group1_nodes = topo.CpusOfNode(1) | topo.CpusOfNode(2) | topo.CpusOfNode(3) |
                        topo.CpusOfNode(4) | topo.CpusOfNode(5) | topo.CpusOfNode(7);
  for (CpuId c : {0, 8, 16, 33, 63}) {
    const SchedDomain& top = TopDomain(trees[c]);
    ASSERT_EQ(top.groups.size(), 2u) << "cpu " << c;
    EXPECT_EQ(top.groups[0].cpus, group0_nodes) << "cpu " << c;
    EXPECT_EQ(top.groups[1].cpus, group1_nodes) << "cpu " << c;
  }
}

TEST(DomainsTest, StockGroupsPutNodes1And2Everywhere) {
  // The bug's signature: nodes 1 and 2 (two hops apart) are together in
  // every machine-level group.
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  const SchedDomain& top = TopDomain(trees[16]);  // A node-2 core.
  for (const SchedGroup& g : top.groups) {
    EXPECT_TRUE(g.cpus.Intersects(topo.CpusOfNode(1)));
    EXPECT_TRUE(g.cpus.Intersects(topo.CpusOfNode(2)));
  }
}

TEST(DomainsTest, FixedGroupsSeparateNodes1And2ForNode2Cores) {
  // "After the fix ... Nodes 1 and 2 are no longer included in all
  // scheduling groups," from the perspective of their own cores.
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Fixed());
  const SchedDomain& top = TopDomain(trees[16]);  // A node-2 core.
  bool some_group_separates = false;
  for (const SchedGroup& g : top.groups) {
    bool has1 = g.cpus.Intersects(topo.CpusOfNode(1));
    bool has2 = g.cpus.Intersects(topo.CpusOfNode(2));
    if (has1 != has2) {
      some_group_separates = true;
    }
  }
  EXPECT_TRUE(some_group_separates);
}

TEST(DomainsTest, FixedGroupsSeededFromOwnNode) {
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Fixed());
  for (CpuId c : {0, 8, 16, 24, 40, 63}) {
    const SchedDomain& top = TopDomain(trees[c]);
    EXPECT_EQ(top.groups[0].seed_node, topo.NodeOf(c));
    EXPECT_EQ(top.local_group, 0);
  }
}

TEST(DomainsTest, PerCoreAndCore0AgreeOnFlatMachines) {
  // On a flat interconnect the perspective cannot matter: groups are the
  // individual nodes either way.
  Topology topo = Topology::Flat(4, 4, 2);
  auto stock = BuildDomains(topo, topo.AllCpus(), Stock());
  auto fixed = BuildDomains(topo, topo.AllCpus(), Fixed());
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    const SchedDomain& a = TopDomain(stock[c]);
    const SchedDomain& b = TopDomain(fixed[c]);
    ASSERT_EQ(a.groups.size(), b.groups.size());
    // Same group *sets* (order may differ by seed).
    for (const SchedGroup& ga : a.groups) {
      bool found = false;
      for (const SchedGroup& gb : b.groups) {
        found = found || ga.cpus == gb.cpus;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(DomainsTest, MissingCrossNodeLevelsStopAtNode) {
  // The Missing Scheduling Domains bug: regeneration without the cross-NUMA
  // step leaves each core only SMT and NODE levels.
  Topology topo = Topology::Bulldozer8x8();
  DomainBuildOptions opts = Stock();
  opts.cross_node_levels = false;
  auto trees = BuildDomains(topo, topo.AllCpus(), opts);
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    ASSERT_EQ(trees[c].domains.size(), 2u);
    EXPECT_EQ(TopDomain(trees[c]).name, "NODE");
    EXPECT_EQ(TopDomain(trees[c]).span.Count(), 8);
  }
}

TEST(DomainsTest, OfflineCpusExcluded) {
  Topology topo = Topology::Flat(2, 4, 2);
  CpuSet online = topo.AllCpus();
  online.Clear(3);
  auto trees = BuildDomains(topo, online, Stock());
  EXPECT_TRUE(trees[3].domains.empty());
  for (CpuId c : online) {
    for (const SchedDomain& sd : trees[c].domains) {
      EXPECT_FALSE(sd.span.Test(3)) << "cpu " << c;
      for (const SchedGroup& g : sd.groups) {
        EXPECT_FALSE(g.cpus.Test(3));
      }
    }
  }
}

TEST(DomainsTest, SmtDomainSkippedWhenSiblingOffline) {
  Topology topo = Topology::Flat(1, 4, 2);
  CpuSet online = topo.AllCpus();
  online.Clear(1);  // cpu 0's sibling.
  auto trees = BuildDomains(topo, online, Stock());
  EXPECT_EQ(trees[0].domains.front().name, "NODE");
}

TEST(DomainsTest, BalanceIntervalsDoublePerLevel) {
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  const auto& domains = trees[0].domains;
  for (size_t i = 0; i + 1 < domains.size(); ++i) {
    EXPECT_EQ(domains[i + 1].balance_interval, domains[i].balance_interval * 2);
  }
  EXPECT_EQ(domains[0].balance_interval, Milliseconds(4));
}

TEST(DomainsTest, SingleCoreMachineHasNoDomains) {
  Topology topo = Topology::Flat(1, 1, 1);
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  EXPECT_TRUE(trees[0].domains.empty());
}

TEST(DomainsTest, TreeRendering) {
  Topology topo = Topology::Bulldozer8x8();
  auto trees = BuildDomains(topo, topo.AllCpus(), Stock());
  std::string text = DomainTreeToString(trees[0]);
  EXPECT_NE(text.find("SMT"), std::string::npos);
  EXPECT_NE(text.find("NUMA(2)"), std::string::npos);
  EXPECT_NE(text.find("(local)"), std::string::npos);
}

}  // namespace
}  // namespace wcores
