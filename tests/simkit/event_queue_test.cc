#include "src/simkit/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace wcores {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesNow) {
  EventQueue q;
  Time seen = kTimeNever;
  q.ScheduleAt(100, [&] { q.ScheduleAfter(50, [&] { seen = q.now(); }); });
  q.RunAll();
  EXPECT_EQ(seen, 150u);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(h.Pending());
  h.Cancel();
  EXPECT_FALSE(h.Pending());
  q.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, HandleNotPendingAfterFire) {
  EventQueue q;
  EventHandle h = q.ScheduleAt(10, [] {});
  q.RunAll();
  EXPECT_FALSE(h.Pending());
  h.Cancel();  // Safe no-op.
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<Time> fired;
  for (Time t = 10; t <= 100; t += 10) {
    q.ScheduleAt(t, [&, t] { fired.push_back(t); });
  }
  uint64_t n = q.RunUntil(50);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(q.now(), 50u);
  EXPECT_FALSE(q.Empty());
  q.RunAll();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  q.ScheduleAt(1, [&] {
    ++depth;
    q.ScheduleAfter(1, [&] {
      ++depth;
      q.ScheduleAfter(1, [&] { ++depth; });
    });
  });
  q.RunAll();
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(q.now(), 3u);
}

TEST(EventQueueTest, EmptyAndLiveCountTrackCancellation) {
  EventQueue q;
  EventHandle a = q.ScheduleAt(5, [] {});
  EventHandle b = q.ScheduleAt(6, [] {});
  EXPECT_EQ(q.LiveCount(), 2u);
  a.Cancel();
  EXPECT_EQ(q.LiveCount(), 1u);
  EXPECT_FALSE(q.Empty());
  b.Cancel();
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, ExecutedCountAccumulates) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) {
    q.ScheduleAt(i + 1, [] {});
  }
  q.RunAll();
  EXPECT_EQ(q.executed_count(), 7u);
}

TEST(EventQueueTest, RunOneReturnsFalsePastUntil) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  EXPECT_FALSE(q.RunOne(50));
  EXPECT_EQ(q.now(), 50u);  // Clock advances to the boundary.
  EXPECT_TRUE(q.RunOne(200));
}

}  // namespace
}  // namespace wcores
