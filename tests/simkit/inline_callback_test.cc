#include "src/simkit/inline_callback.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "src/simkit/event_queue.h"

namespace wcores {
namespace {

TEST(InlineCallbackTest, DefaultConstructedIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallbackTest, InvokesStoredCallable) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, CapturesUpToCapacityBytes) {
  // Two pointers — the simulator's worst case — is exactly kCapacity on
  // LP64; the callback must carry both values intact.
  int64_t a = 0;
  int64_t b = 0;
  int64_t* pa = &a;
  int64_t* pb = &b;
  InlineCallback cb([pa, pb] {
    *pa = 7;
    *pb = 11;
  });
  cb();
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 11);
}

TEST(InlineCallbackTest, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  int* p = &hits;
  InlineCallback src([p] { ++*p; });
  InlineCallback dst(std::move(src));
  EXPECT_FALSE(static_cast<bool>(src));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(dst));
  dst();
  EXPECT_EQ(hits, 1);

  InlineCallback assigned;
  assigned = std::move(dst);
  EXPECT_FALSE(static_cast<bool>(dst));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(assigned));
  assigned();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveOnlySemantics) {
  static_assert(!std::is_copy_constructible_v<InlineCallback>);
  static_assert(!std::is_copy_assignable_v<InlineCallback>);
  static_assert(std::is_nothrow_move_constructible_v<InlineCallback>);
  static_assert(std::is_nothrow_move_assignable_v<InlineCallback>);
}

TEST(InlineCallbackTest, CanHoldProbesTheExactBoundary) {
  struct Sixteen {
    char bytes[16];
    void operator()() const {}
  };
  struct Seventeen {
    char bytes[17];
    void operator()() const {}
  };
  struct OverAligned {
    alignas(32) char bytes[8];
    void operator()() const {}
  };
  static_assert(InlineCallback::CanHold<Sixteen>());
  static_assert(!InlineCallback::CanHold<Seventeen>());
  static_assert(!InlineCallback::CanHold<OverAligned>());
  // Captureless lambdas and raw function pointers trivially fit.
  auto lambda = [] {};
  static_assert(InlineCallback::CanHold<decltype(lambda)>());
  static_assert(InlineCallback::CanHold<void (*)()>());
}

// Cancellation interplay with the queue's pooled slots: a cancelled entry's
// InlineCallback stays parked in the heap until pop-time lazy deletion, and
// its (trivially copyable) captures need no destruction; slot recycling must
// not resurrect it.
TEST(InlineCallbackTest, CancelledEntryNeverFiresAfterSlotReuse) {
  EventQueue q;
  int cancelled_hits = 0;
  int live_hits = 0;
  int* pc = &cancelled_hits;
  int* pl = &live_hits;
  EventHandle doomed = q.ScheduleAt(10, [pc] { ++*pc; });
  doomed.Cancel();
  // The freed slot is recycled by the next schedule; its generation bump
  // must keep the dead heap entry dead while the new one fires.
  q.ScheduleAt(10, [pl] { ++*pl; });
  q.RunAll();
  EXPECT_EQ(cancelled_hits, 0);
  EXPECT_EQ(live_hits, 1);
  EXPECT_EQ(q.executed_count(), 1u);
}

TEST(InlineCallbackTest, RescheduleFromInsideCallback) {
  // The self-rescheduling pattern used by ticks: the struct re-passes
  // itself by value, which requires trivially-copyable self-copies to be
  // admitted while an instance is executing.
  struct Rearm {
    EventQueue* q;
    int* count;
    void operator()() const {
      ++*count;
      if (*count < 3) {
        q->ScheduleAfter(5, *this);
      }
    }
  };
  EventQueue q;
  int count = 0;
  q.ScheduleAt(0, Rearm{&q, &count});
  q.RunAll();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.now(), 10u);
}

}  // namespace
}  // namespace wcores
