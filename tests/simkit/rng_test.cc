#include "src/simkit/rng.h"

#include <gtest/gtest.h>

namespace wcores {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const Time mean = Milliseconds(2);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextExponential(mean));
  }
  EXPECT_NEAR(sum / n / static_cast<double>(mean), 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(99);
  b.Next();  // Consume the value used for forking.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SplitMix64Advances) {
  uint64_t state = 0;
  uint64_t a = SplitMix64(state);
  uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace wcores
