#include "src/simkit/cpuset.h"

#include <gtest/gtest.h>

#include <set>

#include "src/simkit/rng.h"

namespace wcores {
namespace {

TEST(CpuSetTest, StartsEmpty) {
  CpuSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.First(), kInvalidCpu);
}

TEST(CpuSetTest, SetTestClear) {
  CpuSet s;
  s.Set(5);
  EXPECT_TRUE(s.Test(5));
  EXPECT_FALSE(s.Test(4));
  EXPECT_EQ(s.Count(), 1);
  s.Clear(5);
  EXPECT_FALSE(s.Test(5));
  EXPECT_TRUE(s.Empty());
}

TEST(CpuSetTest, FirstN) {
  CpuSet s = CpuSet::FirstN(10);
  EXPECT_EQ(s.Count(), 10);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(9));
  EXPECT_FALSE(s.Test(10));
}

TEST(CpuSetTest, Single) {
  CpuSet s = CpuSet::Single(77);
  EXPECT_EQ(s.Count(), 1);
  EXPECT_EQ(s.First(), 77);
}

TEST(CpuSetTest, FirstAndNextCrossWordBoundaries) {
  CpuSet s;
  s.Set(0);
  s.Set(63);
  s.Set(64);
  s.Set(200);
  EXPECT_EQ(s.First(), 0);
  EXPECT_EQ(s.Next(0), 63);
  EXPECT_EQ(s.Next(63), 64);
  EXPECT_EQ(s.Next(64), 200);
  EXPECT_EQ(s.Next(200), kInvalidCpu);
}

TEST(CpuSetTest, NextFromUnsetPosition) {
  CpuSet s;
  s.Set(100);
  EXPECT_EQ(s.Next(3), 100);
  EXPECT_EQ(s.Next(99), 100);
  EXPECT_EQ(s.Next(100), kInvalidCpu);
  EXPECT_EQ(s.Next(kMaxCpus - 1), kInvalidCpu);
}

TEST(CpuSetTest, Iteration) {
  CpuSet s;
  s.Set(3);
  s.Set(70);
  s.Set(130);
  std::vector<CpuId> seen;
  for (CpuId c : s) {
    seen.push_back(c);
  }
  EXPECT_EQ(seen, (std::vector<CpuId>{3, 70, 130}));
}

TEST(CpuSetTest, AndOrNot) {
  CpuSet a = CpuSet::FirstN(8);
  CpuSet b;
  b.Set(6);
  b.Set(7);
  b.Set(8);
  CpuSet band = a & b;
  EXPECT_EQ(band.Count(), 2);
  EXPECT_TRUE(band.Test(6));
  EXPECT_TRUE(band.Test(7));
  CpuSet bor = a | b;
  EXPECT_EQ(bor.Count(), 9);
  CpuSet nota = ~a;
  EXPECT_FALSE(nota.Test(0));
  EXPECT_TRUE(nota.Test(8));
}

TEST(CpuSetTest, IntersectsAndContainsAll) {
  CpuSet a = CpuSet::FirstN(4);
  CpuSet b;
  b.Set(3);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(a.ContainsAll(b));
  EXPECT_FALSE(b.ContainsAll(a));
  CpuSet c;
  c.Set(9);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(CpuSetTest, EqualityOperators) {
  CpuSet a = CpuSet::FirstN(5);
  CpuSet b = CpuSet::FirstN(5);
  EXPECT_EQ(a, b);
  b.Set(100);
  EXPECT_NE(a, b);
}

TEST(CpuSetTest, LessThanIsAStrictTotalOrder) {
  // Word-lexicographic: the first differing 64-bit word decides, so the
  // order is total (usable as a map key) but not numeric or subset-based.
  CpuSet empty;
  CpuSet low = CpuSet::Single(0);
  CpuSet high = CpuSet::Single(200);  // Word 0 is zero; word 3 holds the bit.
  EXPECT_TRUE(empty < low);
  EXPECT_TRUE(empty < high);
  EXPECT_TRUE(high < low);  // low's word 0 (1) exceeds high's word 0 (0).
  EXPECT_FALSE(low < low);
  EXPECT_FALSE(low < empty);
  // Distinct sets compare in exactly one direction.
  CpuSet a = CpuSet::FirstN(3);
  CpuSet b = CpuSet::Single(2);
  EXPECT_NE(a < b, b < a);
  EXPECT_TRUE((a < b) || (b < a));
}

TEST(CpuSetTest, CompoundAssignment) {
  CpuSet a = CpuSet::FirstN(4);
  CpuSet b = CpuSet::Single(10);
  a |= b;
  EXPECT_TRUE(a.Test(10));
  a &= b;
  EXPECT_EQ(a.Count(), 1);
}

TEST(CpuSetTest, ToStringRanges) {
  CpuSet s;
  for (int i = 0; i <= 3; ++i) {
    s.Set(i);
  }
  s.Set(8);
  s.Set(10);
  s.Set(11);
  EXPECT_EQ(s.ToString(), "0-3,8,10-11");
  EXPECT_EQ(CpuSet{}.ToString(), "(empty)");
}

TEST(CpuSetTest, RandomizedAgainstStdSet) {
  Rng rng(123);
  CpuSet s;
  std::set<int> mirror;
  for (int i = 0; i < 2000; ++i) {
    int cpu = static_cast<int>(rng.NextBelow(kMaxCpus));
    if (rng.NextBool(0.5)) {
      s.Set(cpu);
      mirror.insert(cpu);
    } else {
      s.Clear(cpu);
      mirror.erase(cpu);
    }
    ASSERT_EQ(s.Count(), static_cast<int>(mirror.size()));
    ASSERT_EQ(s.First(), mirror.empty() ? kInvalidCpu : *mirror.begin());
  }
  std::vector<int> iterated;
  for (CpuId c : s) {
    iterated.push_back(c);
  }
  EXPECT_EQ(iterated, std::vector<int>(mirror.begin(), mirror.end()));
}

}  // namespace
}  // namespace wcores
