#include "src/simkit/time.h"

#include <gtest/gtest.h>

namespace wcores {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Microseconds(1), 1000u);
  EXPECT_EQ(Milliseconds(1), 1000u * 1000u);
  EXPECT_EQ(Seconds(1), 1000u * 1000u * 1000u);
  EXPECT_EQ(Seconds(2) + Milliseconds(500), Milliseconds(2500));
}

TEST(TimeTest, ToFloatingConversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Microseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Nanoseconds(2500)), 2.5);
}

TEST(TimeTest, FormatPicksUnit) {
  EXPECT_EQ(FormatTime(Nanoseconds(900)), "900ns");
  EXPECT_EQ(FormatTime(Microseconds(12)), "12.000us");
  EXPECT_EQ(FormatTime(Milliseconds(350)), "350.000ms");
  EXPECT_EQ(FormatTime(Seconds(1) + Milliseconds(204)), "1.204s");
}

TEST(TimeTest, NeverIsHuge) {
  EXPECT_GT(kTimeNever, Seconds(1000000));
}

}  // namespace
}  // namespace wcores
