// Deeper synchronization semantics: hand-off ordering, races between
// release and preemption, hybrid-barrier timeouts, early wakes.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

Simulator::Options Opts(uint64_t seed = 1) {
  Simulator::Options o;
  o.seed = seed;
  return o;
}

TEST(SpinLockSemanticsTest, UncontendedAcquireIsFree) {
  Topology topo = Topology::Flat(1, 1, 1);
  Simulator sim(topo, Opts());
  SyncId lock = sim.CreateSpinLock();
  ThreadId tid = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      SpinLockAction{lock}, ComputeAction{Milliseconds(1)}, SpinUnlockAction{lock}}));
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_EQ(sim.thread(tid).spin_time, 0u);
  EXPECT_EQ(sim.spin_lock(lock).contended_acquisitions, 0u);
}

TEST(SpinLockSemanticsTest, RunningSpinnerGetsLockAtRelease) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Opts());
  SyncId lock = sim.CreateSpinLock();
  Simulator::SpawnParams p0;
  p0.parent_cpu = 0;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                SpinLockAction{lock}, ComputeAction{Milliseconds(10)},
                SpinUnlockAction{lock}, ComputeAction{Milliseconds(20)}}),
            p0);
  Simulator::SpawnParams p1;
  p1.parent_cpu = 1;
  ThreadId spinner = sim.Spawn(
      std::make_unique<ScriptBehavior>(std::vector<Action>{
          ComputeAction{Milliseconds(1)}, SpinLockAction{lock}, SpinUnlockAction{lock}}),
      p1);
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  // The spinner acquired at the 10ms release, having spun ~9ms.
  EXPECT_NEAR(ToMilliseconds(sim.thread(spinner).spin_time), 9.0, 0.5);
  EXPECT_NEAR(ToMilliseconds(sim.thread(spinner).finished_at), 10.0, 0.5);
}

TEST(SpinLockSemanticsTest, ManyContendersAllEventuallyAcquire) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Opts(9));
  SyncId lock = sim.CreateSpinLock();
  const int n = 12;  // 3x oversubscribed.
  for (int i = 0; i < n; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i % 4;
    sim.Spawn(std::make_unique<ScriptBehavior>(
                  std::vector<Action>{SpinLockAction{lock}, ComputeAction{Microseconds(300)},
                                      SpinUnlockAction{lock}},
                  /*repeat=*/20),
              params);
  }
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(60)));
  EXPECT_EQ(sim.spin_lock(lock).acquisitions, static_cast<uint64_t>(n) * 20u);
  EXPECT_EQ(sim.spin_lock(lock).holder, kInvalidThread);
}

TEST(MutexSemanticsTest, FifoHandOff) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Opts());
  SyncId mutex = sim.CreateMutex();
  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    // Stagger arrival so the wait order is deterministic: 0,1,2,3.
    tids.push_back(sim.Spawn(
        std::make_unique<ScriptBehavior>(std::vector<Action>{
            ComputeAction{Microseconds(100) * (i + 1)}, MutexLockAction{mutex},
            ComputeAction{Milliseconds(10)}, MutexUnlockAction{mutex}}),
        params));
  }
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(2)));
  // FIFO hand-off: finish order matches arrival order.
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_LT(sim.thread(tids[i]).finished_at, sim.thread(tids[i + 1]).finished_at);
  }
}

TEST(MutexSemanticsTest, WaitersDoNotBurnCpu) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Opts());
  SyncId mutex = sim.CreateMutex();
  for (int i = 0; i < 2; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                  MutexLockAction{mutex}, ComputeAction{Milliseconds(20)},
                  MutexUnlockAction{mutex}}),
              params);
  }
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  // The machine was busy only ~40ms total (plus switches): no spinning.
  EXPECT_LT(sim.accounting().TotalBusy(), Milliseconds(42));
}

TEST(BarrierSemanticsTest, ReusableAcrossGenerations) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Opts());
  SyncId barrier = sim.CreateSpinBarrier(4);
  for (int i = 0; i < 4; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    sim.Spawn(std::make_unique<ScriptBehavior>(
                  std::vector<Action>{ComputeAction{Microseconds(500)},
                                      SpinBarrierAction{barrier}},
                  /*repeat=*/25),
              params);
  }
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(5)));
  EXPECT_EQ(sim.spin_barrier(barrier).crossings, 25u);
  EXPECT_EQ(sim.spin_barrier(barrier).arrived, 0);
  EXPECT_TRUE(sim.spin_barrier(barrier).spinners.empty());
}

TEST(BarrierSemanticsTest, HybridWaiterBlocksAfterGraceAndIsWoken) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Opts());
  SyncId barrier = sim.CreateSpinBarrier(2);
  Simulator::SpawnParams p0;
  p0.parent_cpu = 0;
  ThreadId fast = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                SpinBarrierAction{barrier, Milliseconds(2)},
                                ComputeAction{Milliseconds(1)}}),
                            p0);
  Simulator::SpawnParams p1;
  p1.parent_cpu = 1;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                ComputeAction{Milliseconds(50)}, SpinBarrierAction{barrier, Milliseconds(2)}}),
            p1);
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  const SimThread& t = sim.thread(fast);
  EXPECT_NEAR(ToMilliseconds(t.spin_time), 2.0, 0.3);      // Spun the grace only.
  EXPECT_GE(t.finished_at, Milliseconds(51));              // Woken at release.
  EXPECT_EQ(sim.spin_barrier(barrier).sleeps, 1u);
}

TEST(BarrierSemanticsTest, BlockingBarrierLastArriverWakesAll) {
  Topology topo = Topology::Flat(2, 2, 1);
  Simulator sim(topo, Opts());
  SyncId barrier = sim.CreateBlockingBarrier(4);
  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    tids.push_back(sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                 ComputeAction{Milliseconds(i == 3 ? 40 : 1)},
                                 BlockingBarrierAction{barrier},
                                 ComputeAction{Milliseconds(1)}}),
                             params));
  }
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  for (ThreadId tid : tids) {
    EXPECT_GE(sim.thread(tid).finished_at, Milliseconds(41));
    EXPECT_LE(sim.thread(tid).finished_at, Milliseconds(43));
  }
}

TEST(VarSemanticsTest, MultipleThresholdsReleaseIndependently) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Opts());
  SyncId var = sim.CreateVar();
  Simulator::SpawnParams p1;
  p1.parent_cpu = 1;
  ThreadId early = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                 SpinUntilAction{var, 2}, ComputeAction{Milliseconds(1)}}),
                             p1);
  Simulator::SpawnParams p2;
  p2.parent_cpu = 2;
  ThreadId late = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                SpinUntilAction{var, 5}, ComputeAction{Milliseconds(1)}}),
                            p2);
  Simulator::SpawnParams p0;
  p0.parent_cpu = 0;
  sim.Spawn(std::make_unique<ScriptBehavior>(
                std::vector<Action>{ComputeAction{Milliseconds(4)}, VarAddAction{var, 1}},
                /*repeat=*/5),
            p0);
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_LT(sim.thread(early).finished_at, sim.thread(late).finished_at);
  EXPECT_EQ(sim.VarValue(var), 5);
}

TEST(EventSemanticsTest, SignalOneWakesOneInFifoOrder) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Opts());
  SyncId ev = sim.CreateEvent();
  std::vector<ThreadId> waiters;
  for (int i = 0; i < 3; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    waiters.push_back(
        sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                      ComputeAction{Microseconds(100) * (i + 1)}, EventWaitAction{ev},
                      ComputeAction{Milliseconds(1)}}),
                  params));
  }
  Simulator::SpawnParams p3;
  p3.parent_cpu = 3;
  sim.Spawn(std::make_unique<ScriptBehavior>(
                std::vector<Action>{ComputeAction{Milliseconds(10)}, EventSignalAction{ev, 1}},
                /*repeat=*/3),
            p3);
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_LT(sim.thread(waiters[0]).finished_at, sim.thread(waiters[1]).finished_at);
  EXPECT_LT(sim.thread(waiters[1]).finished_at, sim.thread(waiters[2]).finished_at);
}

TEST(SleepSemanticsTest, EarlyWakeCancelsTimer) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Opts());
  ThreadId sleeper = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      SleepAction{Seconds(10)}, ComputeAction{Milliseconds(1)}}));
  sim.At(Milliseconds(5), [&] { sim.WakeExternal(sleeper); });
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(30)));
  // Woke at 5ms, not at 10s; the later timer fire is ignored.
  EXPECT_LT(sim.thread(sleeper).finished_at, Milliseconds(10));
}

TEST(SleepSemanticsTest, WakeExternalOnRunnableIsNoOp) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Opts());
  ThreadId tid = sim.Spawn(std::make_unique<ScriptBehavior>(
      std::vector<Action>{ComputeAction{Milliseconds(5)}}));
  sim.At(Milliseconds(1), [&] { sim.WakeExternal(tid); });
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_EQ(sim.thread(tid).total_compute, Milliseconds(5));
}

TEST(PreemptionSemanticsTest, SpinnerIsPreemptedBySliceExpiry) {
  // One core: a spinner waiting on a var shares the core with the producer
  // that will satisfy it — only tick preemption lets the producer run.
  Topology topo = Topology::Flat(1, 1, 1);
  Simulator sim(topo, Opts());
  SyncId var = sim.CreateVar();
  ThreadId spinner = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      SpinUntilAction{var, 1}, ComputeAction{Milliseconds(1)}}));
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(2)}, VarAddAction{var, 1}}));
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(5)));
  EXPECT_GT(sim.thread(spinner).spin_time, 0u);
}

TEST(HotplugSemanticsTest, RunningThreadSurvivesCoreOffline) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Opts());
  Simulator::SpawnParams params;
  params.parent_cpu = 0;
  ThreadId tid = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                               ComputeAction{Milliseconds(50)}}),
                           params);
  sim.At(Milliseconds(10), [&] { sim.SetCpuOnline(0, false); });
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_EQ(sim.thread(tid).total_compute, Milliseconds(50));  // No work lost.
  EXPECT_EQ(sim.sched().Entity(tid).cpu, 1);                   // Finished on cpu 1.
}

TEST(HotplugSemanticsTest, SpinnerSurvivesCoreOffline) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Opts());
  SyncId var = sim.CreateVar();
  Simulator::SpawnParams p0;
  p0.parent_cpu = 0;
  ThreadId spinner = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                   SpinUntilAction{var, 1}, ComputeAction{Milliseconds(1)}}),
                               p0);
  Simulator::SpawnParams p1;
  p1.parent_cpu = 1;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                ComputeAction{Milliseconds(30)}, VarAddAction{var, 1}}),
            p1);
  sim.At(Milliseconds(10), [&] { sim.SetCpuOnline(0, false); });
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(5)));
  EXPECT_EQ(sim.thread(spinner).state, ThreadState::kExited);
}

TEST(AccountingSemanticsTest, BusyTimeMatchesComputePlusSpin) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator::Options opts = Opts();
  opts.tunables = SchedTunables::ForCpus(2);
  opts.tunables.context_switch_cost = 0;  // Exact accounting.
  opts.tunables_set = true;
  Simulator sim(topo, opts);
  SyncId barrier = sim.CreateSpinBarrier(2);
  for (int i = 0; i < 2; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                  ComputeAction{Milliseconds(10) * (i + 1)}, SpinBarrierAction{barrier}}),
              params);
  }
  ASSERT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  Time compute = sim.thread(0).total_compute + sim.thread(1).total_compute;
  Time spin = sim.thread(0).spin_time + sim.thread(1).spin_time;
  EXPECT_EQ(sim.accounting().TotalBusy(), compute + spin);
}

}  // namespace
}  // namespace wcores
