#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/topo/topology.h"

namespace wcores {
namespace {

Simulator::Options DefaultOptions() {
  Simulator::Options opts;
  opts.features = SchedFeatures::Stock();
  return opts;
}

TEST(SimulatorTest, SingleComputeThreadRunsToCompletion) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, DefaultOptions());
  ThreadId tid = sim.Spawn(std::make_unique<ScriptBehavior>(
      std::vector<Action>{ComputeAction{Milliseconds(10)}}));
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  const SimThread& t = sim.thread(tid);
  EXPECT_EQ(t.state, ThreadState::kExited);
  EXPECT_EQ(t.total_compute, Milliseconds(10));
  // Started immediately on an idle machine: finishes at ~10ms (+switch cost).
  EXPECT_LT(t.finished_at, Milliseconds(10) + Microseconds(100));
}

TEST(SimulatorTest, TwoThreadsShareOneCoreFairly) {
  Topology topo = Topology::Flat(1, 1, 1);  // One core.
  Simulator sim(topo, DefaultOptions());
  ThreadId a = sim.Spawn(std::make_unique<ScriptBehavior>(
      std::vector<Action>{ComputeAction{Milliseconds(100)}}));
  ThreadId b = sim.Spawn(std::make_unique<ScriptBehavior>(
      std::vector<Action>{ComputeAction{Milliseconds(100)}}));
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(2)));
  // Both need 100ms of CPU on one core: total wall ~200ms and the two
  // finish within one scheduling latency of each other.
  Time fa = sim.thread(a).finished_at;
  Time fb = sim.thread(b).finished_at;
  EXPECT_NEAR(ToMilliseconds(std::max(fa, fb)), 200.0, 15.0);
  EXPECT_LT(ToMilliseconds(fa > fb ? fa - fb : fb - fa), 60.0);
}

TEST(SimulatorTest, IdleBalancePullsWaitingWork) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, DefaultOptions());
  // Four CPU hogs forked on the same core must spread to all four cores.
  std::vector<ThreadId> tids;
  Simulator::SpawnParams params;
  params.parent_cpu = 0;
  for (int i = 0; i < 4; ++i) {
    tids.push_back(sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                 ComputeAction{Milliseconds(100)}}),
                             params));
  }
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(2)));
  // With 4 cores for 4 threads, completion should be ~100ms, not ~400ms.
  for (ThreadId tid : tids) {
    EXPECT_LT(sim.thread(tid).finished_at, Milliseconds(160));
  }
  EXPECT_GT(sim.sched().stats().TotalMigrations(), 0u);
}

TEST(SimulatorTest, SleepWakesAfterDuration) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, DefaultOptions());
  ThreadId tid = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(1)}, SleepAction{Milliseconds(50)},
      ComputeAction{Milliseconds(1)}}));
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  const SimThread& t = sim.thread(tid);
  EXPECT_GE(t.finished_at, Milliseconds(52));
  EXPECT_LT(t.finished_at, Milliseconds(53));
  EXPECT_EQ(t.total_compute, Milliseconds(2));
}

TEST(SimulatorTest, SpinLockMutualExclusionAndHandoff) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, DefaultOptions());
  SyncId lock = sim.CreateSpinLock();
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(std::make_unique<ScriptBehavior>(
        std::vector<Action>{SpinLockAction{lock}, ComputeAction{Milliseconds(5)},
                            SpinUnlockAction{lock}},
        /*repeat=*/10));
  }
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(5)));
  const SpinLock& l = sim.spin_lock(lock);
  EXPECT_EQ(l.holder, kInvalidThread);
  EXPECT_EQ(l.acquisitions, 40u);
  // 40 serialized 5ms critical sections: at least 200ms of wall time.
  EXPECT_GE(sim.Now(), Milliseconds(200));
  EXPECT_GT(l.contended_acquisitions, 0u);
}

TEST(SimulatorTest, SpinWasteAccountedWhileContending) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, DefaultOptions());
  SyncId lock = sim.CreateSpinLock();
  ThreadId holder = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      SpinLockAction{lock}, ComputeAction{Milliseconds(20)}, SpinUnlockAction{lock}}));
  ThreadId spinner = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(1)}, SpinLockAction{lock}, SpinUnlockAction{lock}}));
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  (void)holder;
  // The spinner burned most of the holder's 20ms critical section waiting
  // on its own core (it reaches another core after the first NOHZ kick).
  EXPECT_GE(sim.thread(spinner).spin_time, Milliseconds(10));
  EXPECT_EQ(sim.thread(spinner).total_compute, Milliseconds(1));
}

TEST(SimulatorTest, SpinBarrierReleasesAllParticipants) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, DefaultOptions());
  SyncId barrier = sim.CreateSpinBarrier(4);
  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) {
    // Uneven arrival: thread i computes (i+1)*5ms first. Each starts on its
    // own core so arrival times are exact.
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    tids.push_back(sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                 ComputeAction{Milliseconds(5) * (i + 1)},
                                 SpinBarrierAction{barrier}, ComputeAction{Milliseconds(1)}}),
                             params));
  }
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_EQ(sim.spin_barrier(barrier).crossings, 1u);
  // Everyone finishes just after the slowest participant (20ms).
  for (ThreadId tid : tids) {
    EXPECT_GE(sim.thread(tid).finished_at, Milliseconds(21));
    EXPECT_LT(sim.thread(tid).finished_at, Milliseconds(23));
  }
  // The early arrivals burned CPU spinning.
  EXPECT_GT(sim.thread(tids[0]).spin_time, Milliseconds(10));
}

TEST(SimulatorTest, BlockingBarrierSleepsParticipants) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, DefaultOptions());
  SyncId barrier = sim.CreateBlockingBarrier(4);
  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) {
    tids.push_back(sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
        ComputeAction{Milliseconds(5) * (i + 1)}, BlockingBarrierAction{barrier},
        ComputeAction{Milliseconds(1)}})));
  }
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_EQ(sim.blocking_barrier(barrier).crossings, 1u);
  for (ThreadId tid : tids) {
    // No spinning: waiters sleep.
    EXPECT_EQ(sim.thread(tid).spin_time, 0u);
    EXPECT_GE(sim.thread(tid).finished_at, Milliseconds(21));
  }
}

TEST(SimulatorTest, MutexBlocksAndHandsOff) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, DefaultOptions());
  SyncId mutex = sim.CreateMutex();
  for (int i = 0; i < 2; ++i) {
    sim.Spawn(std::make_unique<ScriptBehavior>(
        std::vector<Action>{MutexLockAction{mutex}, ComputeAction{Milliseconds(10)},
                            MutexUnlockAction{mutex}},
        /*repeat=*/5));
  }
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(2)));
  EXPECT_EQ(sim.mutex(mutex).acquisitions, 10u);
  EXPECT_EQ(sim.mutex(mutex).holder, kInvalidThread);
  EXPECT_GE(sim.Now(), Milliseconds(100));
}

TEST(SimulatorTest, PipelineVarHandoff) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, DefaultOptions());
  SyncId var = sim.CreateVar();
  ThreadId producer = sim.Spawn(std::make_unique<ScriptBehavior>(
      std::vector<Action>{ComputeAction{Milliseconds(2)}, VarAddAction{var, 1}},
      /*repeat=*/5));
  ThreadId consumer = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      SpinUntilAction{var, 5}, ComputeAction{Milliseconds(1)}}));
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  (void)producer;
  EXPECT_EQ(sim.VarValue(var), 5);
  EXPECT_GE(sim.thread(consumer).finished_at, Milliseconds(11));
}

TEST(SimulatorTest, EventWaitAndSignal) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, DefaultOptions());
  SyncId ev = sim.CreateEvent();
  ThreadId waiter = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      EventWaitAction{ev}, ComputeAction{Milliseconds(1)}}));
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(30)}, EventSignalAction{ev, -1}}));
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_GE(sim.thread(waiter).finished_at, Milliseconds(31));
  EXPECT_EQ(sim.thread(waiter).spin_time, 0u);
}

TEST(SimulatorTest, WakeThreadActionWakesBlocked) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, DefaultOptions());
  ThreadId sleeper = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      BlockAction{}, ComputeAction{Milliseconds(1)}}));
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(10)}, WakeThreadAction{sleeper}}));
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_GE(sim.thread(sleeper).finished_at, Milliseconds(11));
}

class BarrierLike : public Behavior {
 public:
  explicit BarrierLike(SyncId barrier) : barrier_(barrier) {}
  Action Next(BehaviorContext& ctx) override {
    if (i_ >= 20) {
      return ExitAction{};
    }
    if (!at_barrier_) {
      at_barrier_ = true;
      return ComputeAction{ctx.rng->NextTime(Microseconds(500), Milliseconds(2))};
    }
    at_barrier_ = false;
    ++i_;
    return SpinBarrierAction{barrier_};
  }

 private:
  SyncId barrier_;
  int i_ = 0;
  bool at_barrier_ = false;
};

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Topology topo = Topology::Flat(2, 4, 2);
    Simulator::Options opts = DefaultOptions();
    opts.seed = seed;
    Simulator sim(topo, opts);
    SyncId barrier = sim.CreateSpinBarrier(8);
    std::vector<Time> finishes;
    std::vector<ThreadId> tids;
    for (int i = 0; i < 8; ++i) {
      tids.push_back(sim.Spawn(std::make_unique<BarrierLike>(barrier)));
    }
    sim.RunUntilAllExited(Seconds(10));
    for (ThreadId tid : tids) {
      finishes.push_back(sim.thread(tid).finished_at);
    }
    return finishes;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimulatorTest, TimerWakeOnOfflinedCoreStillWorks) {
  Topology topo = Topology::Flat(2, 2, 1);
  Simulator sim(topo, DefaultOptions());
  ThreadId tid = sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(1)}, SleepAction{Milliseconds(20)},
      ComputeAction{Milliseconds(1)}}));
  // Offline the core it slept on while it sleeps.
  sim.At(Milliseconds(5), [&] { sim.SetCpuOnline(0, false); });
  EXPECT_TRUE(sim.RunUntilAllExited(Seconds(1)));
  EXPECT_EQ(sim.thread(tid).state, ThreadState::kExited);
}

}  // namespace
}  // namespace wcores
