// wc-lint tests: lexer unit tests, policy parsing/resolution, suppression
// semantics, and the golden-diagnostics run over tests/lint_fixtures/.
//
// To regenerate the golden after an intentional rule/message change, run
// lint_test and copy the "actual" block it prints into
// tests/lint_fixtures/expected.txt (or see scripts/ci.sh for the wc-lint
// invocation over the real tree).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/tools/lint/lexer.h"
#include "src/tools/lint/policy.h"
#include "src/tools/lint/rules.h"

namespace wcores::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- Lexer ---------------------------------------------------------------

std::vector<Token> CodeTokens(std::string_view src) {
  std::vector<Token> out;
  for (Token& t : Lex(src).tokens) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kPreproc &&
        t.kind != TokKind::kAttribute) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

TEST(LintLexer, CommentsAndStringsAreOpaque) {
  auto toks = CodeTokens("int x; // std::map<T*, int>\n\"std::rand()\" /* rand() */ 'r'");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].text, ";");
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[4].kind, TokKind::kString);  // char literal
}

TEST(LintLexer, RawStringSwallowsFakeDelimiters) {
  auto toks = CodeTokens("auto s = R\"x(rand() \" )y\" )x\"; rand");
  // R"x( ... )x" is one string token; the trailing `rand` identifier remains.
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks.back().text, "rand");
}

TEST(LintLexer, PreprocessorLinesWithContinuation) {
  auto lexed = Lex("#define RND() \\\n  rand()\nint y;");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].kind, TokKind::kPreproc);
  // The macro body, continuation included, lives inside the preproc token.
  EXPECT_NE(lexed.tokens[0].text.find("rand"), std::string::npos);
  EXPECT_EQ(lexed.tokens[1].text, "int");
  EXPECT_EQ(lexed.tokens[1].line, 3);
}

TEST(LintLexer, NumberClassification) {
  auto toks = CodeTokens("1 0x1f 1.5 1e9 1e-9 0x1.0p-53 1'000'000 2.5f");
  ASSERT_EQ(toks.size(), 8u);
  bool floats[] = {false, false, true, true, true, true, false, true};
  for (size_t i = 0; i < toks.size(); ++i) {
    EXPECT_EQ(toks[i].kind, TokKind::kNumber) << i;
    EXPECT_EQ(toks[i].is_float, floats[i]) << toks[i].text;
  }
}

TEST(LintLexer, AttributesAreOneOpaqueToken) {
  auto lexed = Lex("[[nodiscard]] int F();\n[[deprecated(\"call rand() instead\")]] int G();");
  int attributes = 0;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kAttribute) {
      ++attributes;
      // The whole [[...]] — string argument included — is one token, so the
      // rand() inside the deprecation message can never trip a rule.
      EXPECT_EQ(t.text.substr(0, 2), "[[");
      EXPECT_EQ(t.text.substr(t.text.size() - 2), "]]");
    }
  }
  EXPECT_EQ(attributes, 2);
  // And rule scanning sees only the declarations.
  auto toks = CodeTokens("[[nodiscard]] int F();");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "int");
}

TEST(LintLexer, PrefixedRawStringsSwallowContents) {
  // u8R / LR / uR prefixes take the raw-string path, not the identifier one.
  auto toks = CodeTokens("auto a = u8R\"(rand())\"; auto b = LR\"q( )\" )q\"; done");
  int strings = 0;
  for (const Token& t : toks) {
    strings += t.kind == TokKind::kString;
    EXPECT_NE(t.text, "rand");
  }
  EXPECT_EQ(strings, 2);
  EXPECT_EQ(toks.back().text, "done");
}

TEST(LintLexer, DigitSeparatorsInAllBases) {
  auto toks = CodeTokens("0xFF'00 0b1010'0101 1'000'000.25 07'77");
  ASSERT_EQ(toks.size(), 4u);
  for (const Token& t : toks) {
    EXPECT_EQ(t.kind, TokKind::kNumber) << t.text;
  }
  EXPECT_FALSE(toks[0].is_float);
  EXPECT_FALSE(toks[1].is_float);
  EXPECT_TRUE(toks[2].is_float);
}

TEST(LintLexer, UnterminatedLiteralIsReportedNotFatal) {
  auto lexed = Lex("const char* s = \"oops\nint next;");
  EXPECT_FALSE(lexed.errors.empty());
  // Lexing continues on the following line.
  bool saw_next = false;
  for (const Token& t : lexed.tokens) {
    saw_next = saw_next || t.text == "next";
  }
  EXPECT_TRUE(saw_next);
}

// ---- Policy --------------------------------------------------------------

TEST(LintPolicy, ParseAndErrors) {
  Policy p = ParsePolicy(
      "# comment\n"
      "D1 error\n"
      "D5 warn event_queue.h\n"
      "D2 banana\n"
      "D3\n"
      "D4 off *.h extra\n");
  ASSERT_EQ(p.directives.size(), 2u);
  EXPECT_EQ(p.directives[0].rule, "D1");
  EXPECT_EQ(p.directives[0].severity, Severity::kError);
  EXPECT_EQ(p.directives[1].file_glob, "event_queue.h");
  ASSERT_EQ(p.errors.size(), 3u);  // banana, missing severity, trailing junk
}

TEST(LintPolicy, GlobMatch) {
  EXPECT_TRUE(GlobMatch("*", "anything.cc"));
  EXPECT_TRUE(GlobMatch("*.h", "scheduler.h"));
  EXPECT_FALSE(GlobMatch("*.h", "scheduler.cc"));
  EXPECT_TRUE(GlobMatch("event_queue.h", "event_queue.h"));
  EXPECT_TRUE(GlobMatch("sim*.cc", "simulator.cc"));
  EXPECT_FALSE(GlobMatch("sim*.cc", "scheduler.cc"));
  EXPECT_TRUE(GlobMatch("*_test.cc", "lint_test.cc"));
}

TEST(LintPolicy, InnerPolicyWinsAndGlobScopes) {
  Policy outer = ParsePolicy("D2 off\nD3 warn\n");
  Policy inner = ParsePolicy("D3 error\nD5 warn simulator.h\n");
  std::map<std::string, Severity> defaults = {{"D1", Severity::kError},
                                              {"D5", Severity::kOff}};
  auto sim = ResolveSeverities({&outer, &inner}, defaults, "simulator.h");
  EXPECT_EQ(sim.at("D1"), Severity::kError);  // default survives
  EXPECT_EQ(sim.at("D2"), Severity::kOff);    // outer only
  EXPECT_EQ(sim.at("D3"), Severity::kError);  // inner overrides outer
  EXPECT_EQ(sim.at("D5"), Severity::kWarn);   // glob matched
  auto other = ResolveSeverities({&outer, &inner}, defaults, "scheduler.cc");
  EXPECT_EQ(other.at("D5"), Severity::kOff);  // glob did not match
}

// ---- Rule/suppression semantics on inline snippets -----------------------

std::map<std::string, Severity> AllError() {
  std::map<std::string, Severity> sev;
  for (const RuleInfo& r : RuleCatalog()) {
    sev[r.id] = Severity::kError;
  }
  return sev;
}

int CountRule(const FileLintResult& r, const std::string& rule, bool suppressed) {
  int n = 0;
  for (const Finding& f : r.findings) {
    n += (f.rule == rule && f.suppressed == suppressed) ? 1 : 0;
  }
  return n;
}

TEST(LintRules, SuppressionCoversSameAndNextLineOnly) {
  std::string src =
      "// wc-lint" ": allow(D3 covers the next line)\n"
      "int a = rand();\n"
      "int b = rand();\n";  // Two lines below the annotation: not covered.
  FileLintResult r = LintSource("snippet.cc", src, AllError());
  EXPECT_EQ(CountRule(r, "D3", /*suppressed=*/true), 1);
  EXPECT_EQ(CountRule(r, "D3", /*suppressed=*/false), 1);
  EXPECT_EQ(r.errors, 1);
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintRules, OffRuleEmitsNothing) {
  std::map<std::string, Severity> sev = AllError();
  sev["D3"] = Severity::kOff;
  FileLintResult r = LintSource("snippet.cc", "int a = rand();\n", sev);
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintRules, WarnDoesNotCountAsError) {
  std::map<std::string, Severity> sev = AllError();
  sev["D5"] = Severity::kWarn;
  FileLintResult r =
      LintSource("snippet.cc", "#include <functional>\nstd::function<void()> cb;\n", sev);
  EXPECT_EQ(r.errors, 0);
  EXPECT_EQ(r.warnings, 1);
}

TEST(LintRules, D6FlagsPerEntityLoadCallsOnly) {
  std::string src =
      "double a = se->load.ValueAt(now);\n"
      "// wc-lint" ": allow(D6 single-entity migration pick)\n"
      "double b = CfsRunqueue::EntityLoad(*se, now, 1.0);\n"
      "int value_at = 0;\n"              // Identifier without a call: clean.
      "double c = ValueAtHome(now);\n";  // Different identifier: clean.
  FileLintResult r = LintSource("snippet.cc", src, AllError());
  EXPECT_EQ(CountRule(r, "D6", /*suppressed=*/false), 1);
  EXPECT_EQ(CountRule(r, "D6", /*suppressed=*/true), 1);
  EXPECT_EQ(r.errors, 1);
}

TEST(LintRules, D7FlagsMemberAppendCallsOnly) {
  std::string src =
      "void f(Analyzer* a, Rec rec) {\n"
      "  a->events.push_back(rec);\n"            // Member call: flagged.
      "  a->spans.emplace_back(rec.when);\n"     // Emplace variant: flagged.
      "// wc-lint" ": allow(D7 heap holds at most one entry per task)\n"
      "  a->heap.push_back(rec.tid);\n"
      "  double push_back = 0.0;\n"              // Identifier, not a call.
      "  PushBackoff(rec.when);\n"               // Different identifier.
      "  push_back + 1.0;\n"                     // No member access, no call.
      "}\n";
  FileLintResult r = LintSource("snippet.cc", src, AllError());
  EXPECT_EQ(CountRule(r, "D7", /*suppressed=*/false), 2);
  EXPECT_EQ(CountRule(r, "D7", /*suppressed=*/true), 1);
  EXPECT_EQ(r.errors, 2);
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintPolicy, D6GlobScopesToBalancingFile) {
  // The shape src/core/.wc-lint.policy uses: opt-in for the balancer file
  // only, so RqLoadRecomputed's definition in scheduler.cc stays legal.
  Policy p = ParsePolicy("D6 error scheduler_balance.cc\n");
  std::map<std::string, Severity> defaults = {{"D6", Severity::kOff}};
  EXPECT_EQ(ResolveSeverities({&p}, defaults, "scheduler_balance.cc").at("D6"),
            Severity::kError);
  EXPECT_EQ(ResolveSeverities({&p}, defaults, "scheduler.cc").at("D6"), Severity::kOff);
}

TEST(LintRules, TemplateScannerHandlesNestedClose) {
  // The >> closing both templates must not leave the scanner confused about
  // the *next* map's key.
  std::string src =
      "#include <map>\n"
      "std::map<int, std::map<int, int>> ok;\n"
      "std::map<Thread*, int> bad;\n";
  FileLintResult r = LintSource("snippet.cc", src, AllError());
  EXPECT_EQ(CountRule(r, "D1", /*suppressed=*/false), 1);
}

// ---- Golden corpus -------------------------------------------------------

TEST(LintGolden, FixtureCorpus) {
  fs::path dir = WC_LINT_FIXTURE_DIR;
  Policy policy = ParsePolicy(ReadFileOrDie(dir / ".wc-lint.policy"));
  ASSERT_TRUE(policy.errors.empty());

  std::vector<fs::path> fixtures;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".cc") {
      fixtures.push_back(e.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_GE(fixtures.size(), 20u) << "fixture corpus shrank";

  std::string actual;
  for (const fs::path& f : fixtures) {
    std::string base = f.filename().string();
    auto sev = ResolveSeverities({&policy}, /*defaults=*/{}, base);
    FileLintResult r = LintSource(base, ReadFileOrDie(f), sev);
    actual += "== " + base + "\n";
    for (const Finding& fi : r.findings) {
      actual += FormatFinding(fi) + "\n";
    }
    actual += "-- errors=" + std::to_string(r.errors) +
              " warnings=" + std::to_string(r.warnings) +
              " suppressed=" + std::to_string(r.suppressed) + "\n";
  }

  std::string expected = ReadFileOrDie(dir / "expected.txt");
  EXPECT_EQ(expected, actual) << "----- actual (copy into expected.txt if intentional) -----\n"
                              << actual;
}

}  // namespace
}  // namespace wcores::lint
