// Fleet sweep service tests: grid expansion, manifest round-trip, receipt
// stores, resume semantics (truncated tails, stale fingerprints, conflicting
// receipts), sharded execution equivalence, and the wc-trend merge/diff
// contracts. The cross-process kill/resume path is exercised by ci.sh stage
// "fleet"; everything here is in-process so it runs under ctest -j.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/tools/sweep/grid.h"
#include "src/tools/sweep/manifest.h"
#include "src/tools/sweep/receipts.h"
#include "src/tools/sweep/shard.h"
#include "src/tools/sweep/sweep.h"
#include "src/tools/trend/trend.h"

namespace wcores {
namespace {

std::string TempPath(const std::string& leaf) {
  static int counter = 0;
  std::string path =
      ::testing::TempDir() + "fleet_test_" + std::to_string(++counter) + "_" + leaf;
  // Paths are deterministic across runs, and the fleet store is *designed*
  // to resume from leftovers — scrub so every test starts cold.
  std::filesystem::remove_all(path);
  return path;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// A small grid that runs fast enough to execute inside unit tests.
GridSpec TinyGrid() {
  GridSpec spec;
  std::string error;
  bool ok = ParseGridSpec(
      "topo=flat1x4;workload=mix;feat=stock,fixed;policy=cfs;mix=4;seeds=2;"
      "scale=0.02;horizon_ms=20;seed=11",
      &spec, &error);
  EXPECT_TRUE(ok) << error;
  return spec;
}

// ---- Grid expansion --------------------------------------------------------

TEST(FleetGrid, DefaultGridIsFleetScale) {
  std::vector<Scenario> scenarios = ExpandGrid(DefaultFleetGrid());
  EXPECT_GE(scenarios.size(), 500u);  // ISSUE acceptance floor.
  std::set<std::string> names;
  std::set<uint64_t> fingerprints;
  for (const Scenario& s : scenarios) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_TRUE(fingerprints.insert(ScenarioFingerprint(s)).second)
        << "fingerprint collision at " << s.name;
  }
}

TEST(FleetGrid, SeedsDeriveFromCellIdentityNotOrder) {
  // Adding a value to one axis must not reseed pre-existing cells.
  GridSpec narrow = TinyGrid();
  GridSpec wide = narrow;
  wide.policies.push_back("o1");
  std::vector<Scenario> a = ExpandGrid(narrow);
  std::vector<Scenario> b = ExpandGrid(wide);
  for (const Scenario& sa : a) {
    bool found = false;
    for (const Scenario& sb : b) {
      if (sb.name == sa.name) {
        EXPECT_EQ(sb.seed, sa.seed) << sa.name;
        EXPECT_EQ(ScenarioFingerprint(sb), ScenarioFingerprint(sa)) << sa.name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << sa.name;
  }
  EXPECT_GT(b.size(), a.size());
}

TEST(FleetGrid, FingerprintSensitivity) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  ASSERT_FALSE(scenarios.empty());
  Scenario s = scenarios[0];
  uint64_t base = ScenarioFingerprint(s);
  Scenario seed = s;
  seed.seed ^= 1;
  EXPECT_NE(ScenarioFingerprint(seed), base);
  Scenario feat = s;
  feat.features.fix_group_imbalance = !feat.features.fix_group_imbalance;
  EXPECT_NE(ScenarioFingerprint(feat), base);
  Scenario pol = s;
  pol.policy = "o1";
  EXPECT_NE(ScenarioFingerprint(pol), base);
  Scenario hor = s;
  hor.horizon += 1;
  EXPECT_NE(ScenarioFingerprint(hor), base);
}

TEST(FleetGrid, ParseGridSpecRejectsBadInput) {
  GridSpec spec;
  std::string error;
  EXPECT_FALSE(ParseGridSpec("bogus_key=1", &spec, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseGridSpec("topo=not_a_topo", &spec, &error));
  EXPECT_FALSE(ParseGridSpec("mix=abc", &spec, &error));
  EXPECT_FALSE(ParseGridSpec("seeds=0", &spec, &error));
  EXPECT_TRUE(ParseGridSpec("default", &spec, &error)) << error;
  EXPECT_EQ(ExpandGrid(spec).size(), ExpandGrid(DefaultFleetGrid()).size());
}

// ---- Manifest --------------------------------------------------------------

TEST(FleetManifest, RoundTripsEveryField) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string path = TempPath("manifest.jsonl");
  WriteManifest(path, scenarios);

  Manifest loaded;
  std::string error;
  ASSERT_TRUE(LoadManifest(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.scenarios.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(loaded.scenarios[i].name, scenarios[i].name);
    EXPECT_EQ(ScenarioFingerprint(loaded.scenarios[i]), ScenarioFingerprint(scenarios[i]));
    EXPECT_EQ(ScenarioToJsonLine(loaded.scenarios[i]), ScenarioToJsonLine(scenarios[i]));
  }
}

TEST(FleetManifest, LoaderRejectsTamperedLine) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string path = TempPath("tampered.jsonl");
  WriteManifest(path, scenarios);

  // Flip a parameter without updating the fingerprint: the loader must
  // notice (this is what catches hand-edited or version-skewed manifests).
  std::string content = ReadAll(path);
  size_t pos = content.find("\"mix_threads\": 4");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, std::string("\"mix_threads\": 4").size(), "\"mix_threads\": 9");
  WriteAll(path, content);

  Manifest loaded;
  std::string error;
  EXPECT_FALSE(LoadManifest(path, &loaded, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(FleetManifest, LoaderRejectsDuplicateNames) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string path = TempPath("dup.jsonl");
  WriteManifest(path, scenarios);
  std::string content = ReadAll(path);
  // Duplicate the first scenario line verbatim and bump the header count.
  size_t header_end = content.find('\n');
  size_t first_end = content.find('\n', header_end + 1);
  std::string first_line = content.substr(header_end + 1, first_end - header_end);
  std::string doctored = "{\"wc_manifest\": 1, \"count\": " +
                         std::to_string(scenarios.size() + 1) + "}\n" +
                         content.substr(header_end + 1) + first_line;
  WriteAll(path, doctored);

  Manifest loaded;
  std::string error;
  EXPECT_FALSE(LoadManifest(path, &loaded, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(FleetManifestDeathTest, WriterChecksDuplicateNames) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  scenarios.push_back(scenarios[0]);
  EXPECT_DEATH(WriteManifest(TempPath("never.jsonl"), scenarios),
               "duplicate scenario name in manifest");
}

// ---- Receipts --------------------------------------------------------------

Receipt MakeReceipt(const std::string& name, uint64_t fp, uint64_t hash) {
  Receipt r;
  r.name = name;
  r.fingerprint = fp;
  r.trace_hash = hash;
  r.trace_events = 42;
  r.sim_events = 7;
  r.context_switches = 3;
  r.migrations = 1;
  r.virtual_s = 0.02;
  r.all_exited = true;
  r.metrics["make_span_s"] = 1.5;
  r.wall_ms = 12.25;
  return r;
}

TEST(FleetReceipts, RoundTrip) {
  Receipt r = MakeReceipt("grid/a", 0xdeadbeefcafef00dull, 0x1122334455667788ull);
  Receipt back;
  std::string error;
  ASSERT_TRUE(ParseReceiptLine(ReceiptLine(r), &back, &error)) << error;
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.fingerprint, r.fingerprint);
  EXPECT_EQ(back.trace_hash, r.trace_hash);
  EXPECT_EQ(back.trace_events, r.trace_events);
  EXPECT_EQ(back.metrics, r.metrics);
  EXPECT_EQ(back.wall_ms, r.wall_ms);

  // Canonical form drops only wall_ms: re-serializing the parsed canonical
  // line must be byte-stable.
  Receipt canon;
  ASSERT_TRUE(ParseReceiptLine(ReceiptCanonical(r), &canon, &error)) << error;
  EXPECT_EQ(ReceiptCanonical(canon), ReceiptCanonical(r));
  EXPECT_EQ(canon.wall_ms, 0);
}

TEST(FleetReceipts, TruncatedTrailingLineIsTolerated) {
  std::string dir = TempPath("store_trunc");
  std::filesystem::create_directories(dir);
  Receipt a = MakeReceipt("grid/a", 1, 10);
  Receipt b = MakeReceipt("grid/b", 2, 20);
  // Simulate a shard killed mid-append: complete line, then half a line.
  WriteAll(dir + "/shard-0.jsonl",
           ReceiptLine(a) + "\n" + ReceiptLine(b).substr(0, 25));

  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;
  ASSERT_EQ(store.receipts.size(), 1u);
  EXPECT_EQ(store.receipts[0].name, "grid/a");
  EXPECT_EQ(store.dropped_trailing, 1);
  EXPECT_EQ(store.dropped_interior, 0);
}

TEST(FleetReceipts, InteriorCorruptionIsCountedSeparately) {
  std::string dir = TempPath("store_interior");
  std::filesystem::create_directories(dir);
  Receipt a = MakeReceipt("grid/a", 1, 10);
  Receipt b = MakeReceipt("grid/b", 2, 20);
  WriteAll(dir + "/shard-0.jsonl",
           ReceiptLine(a) + "\n{broken\n" + ReceiptLine(b) + "\n");

  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;
  ASSERT_EQ(store.receipts.size(), 2u);
  EXPECT_EQ(store.dropped_trailing, 0);
  EXPECT_EQ(store.dropped_interior, 1);
}

TEST(FleetReceipts, CleanPrefixStopsBeforeDirtyTail) {
  Receipt a = MakeReceipt("grid/a", 1, 10);
  std::string good = ReceiptLine(a) + "\n";
  EXPECT_EQ(CleanReceiptPrefixBytes(good), good.size());
  EXPECT_EQ(CleanReceiptPrefixBytes(good + "{half"), good.size());
  EXPECT_EQ(CleanReceiptPrefixBytes(good + good.substr(0, 12)), good.size());
  EXPECT_EQ(CleanReceiptPrefixBytes("{half"), 0u);
  EXPECT_EQ(CleanReceiptPrefixBytes(""), 0u);
}

// ---- Sharded execution and resume ------------------------------------------

// Runs a full single-process reference sweep for `scenarios` and returns the
// merged canonical text via a one-shard RunShard + MergeResults.
std::string ReferenceCanonical(const std::vector<Scenario>& scenarios,
                               const std::string& results_dir, uint64_t* combined) {
  ShardOptions opts;
  opts.results_dir = results_dir;
  opts.shard_index = 0;
  opts.shard_count = 1;
  opts.threads = 2;
  ShardReport report = RunShard(scenarios, opts);
  EXPECT_EQ(report.ran, static_cast<int>(scenarios.size()));

  Manifest manifest;
  manifest.scenarios = scenarios;
  ResultsStore store;
  std::string error;
  EXPECT_TRUE(LoadResultsStore(results_dir, &store, &error)) << error;
  MergeReport merge = MergeResults(manifest, store);
  EXPECT_TRUE(merge.ok());
  if (combined != nullptr) {
    *combined = merge.combined_hash;
  }
  return merge.canonical;
}

TEST(FleetShard, TwoShardsMergeBitIdenticalToSingleProcess) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  uint64_t ref_hash = 0;
  std::string ref = ReferenceCanonical(scenarios, TempPath("ref"), &ref_hash);

  // Two concurrent shards into one store. flock(2) locks are per
  // open-file-description, so claims contend correctly even inside one
  // process.
  std::string dir = TempPath("two");
  ShardReport r0, r1;
  std::thread t0([&]() {
    ShardOptions o{dir, 0, 2, 1};
    r0 = RunShard(scenarios, o);
  });
  std::thread t1([&]() {
    ShardOptions o{dir, 1, 2, 1};
    r1 = RunShard(scenarios, o);
  });
  t0.join();
  t1.join();
  EXPECT_EQ(r0.ran + r0.skipped + r1.ran + r1.skipped + r0.contended + r1.contended,
            static_cast<int>(scenarios.size()) * 2);

  Manifest manifest;
  manifest.scenarios = scenarios;
  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;
  MergeReport merge = MergeResults(manifest, store);
  EXPECT_TRUE(merge.ok()) << (merge.missing.empty() ? "" : merge.missing[0]);
  EXPECT_EQ(merge.canonical, ref);  // Bit-identical to single-process run.
  EXPECT_EQ(merge.combined_hash, ref_hash);
}

TEST(FleetShard, ResumeSkipsCompletedScenarios) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string dir = TempPath("resume");
  ShardOptions opts{dir, 0, 1, 2};
  ShardReport first = RunShard(scenarios, opts);
  EXPECT_EQ(first.ran, static_cast<int>(scenarios.size()));

  ShardReport second = RunShard(scenarios, opts);
  EXPECT_EQ(second.ran, 0);
  EXPECT_EQ(second.skipped, static_cast<int>(scenarios.size()));
}

TEST(FleetShard, TruncatedTailReRunsThatScenarioOnly) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string dir = TempPath("kill");
  ShardOptions opts{dir, 0, 1, 1};
  RunShard(scenarios, opts);

  // Simulate a kill mid-append: chop the last receipt line in half.
  std::string path = dir + "/shard-0.jsonl";
  std::string content = ReadAll(path);
  WriteAll(path, content.substr(0, content.size() - 40));

  ShardReport resumed = RunShard(scenarios, opts);
  EXPECT_EQ(resumed.ran, 1);
  EXPECT_EQ(resumed.skipped, static_cast<int>(scenarios.size()) - 1);

  // The self-repair truncation means the store is clean after resume, and
  // the merged canonical output matches an uninterrupted run.
  uint64_t ref_hash = 0;
  std::string ref = ReferenceCanonical(scenarios, TempPath("kill_ref"), &ref_hash);
  Manifest manifest;
  manifest.scenarios = scenarios;
  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;
  MergeReport merge = MergeResults(manifest, store);
  EXPECT_TRUE(merge.ok());
  EXPECT_EQ(merge.dropped_interior, 0);
  EXPECT_EQ(merge.canonical, ref);
}

TEST(FleetShard, StaleFingerprintForcesReRun) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string dir = TempPath("stale");
  ShardOptions opts{dir, 0, 1, 1};
  RunShard(scenarios, opts);

  // Change the grid under the store: same names, different parameters.
  std::vector<Scenario> shifted = scenarios;
  for (Scenario& s : shifted) {
    s.seed ^= 0x9e3779b97f4a7c15ull;
  }
  ShardReport resumed = RunShard(shifted, opts);
  EXPECT_EQ(resumed.ran, static_cast<int>(shifted.size()));
  EXPECT_EQ(resumed.skipped, 0);
  EXPECT_EQ(resumed.requeued, static_cast<int>(shifted.size()));
}

TEST(FleetShard, ConflictingReceiptsForceReExecution) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string dir = TempPath("conflict");
  ShardOptions opts{dir, 0, 1, 1};
  RunShard(scenarios, opts);

  // Forge a second receipt for scenario 0 with the right fingerprint but a
  // different hash — a determinism violation as seen from the store.
  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;
  Receipt forged = store.receipts[0];
  forged.trace_hash ^= 0xff;
  std::ofstream(dir + "/shard-9.jsonl", std::ios::app) << ReceiptLine(forged) << "\n";

  ShardReport resumed = RunShard(scenarios, opts);
  EXPECT_EQ(resumed.ran, 1);  // Only the conflicted scenario re-runs.
  EXPECT_EQ(resumed.requeued, 1);
  EXPECT_EQ(resumed.skipped, static_cast<int>(scenarios.size()) - 1);
}

TEST(FleetShardDeathTest, DuplicateManifestNamesAreRejected) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  scenarios.push_back(scenarios[0]);
  ShardOptions opts{TempPath("dup_shard"), 0, 1, 1};
  EXPECT_DEATH(RunShard(scenarios, opts), "duplicate scenario name");
}

// ---- wc-trend merge/diff ---------------------------------------------------

TEST(FleetTrend, MergeDetectsMissingAndConflict) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string dir = TempPath("merge_err");
  ShardOptions opts{dir, 0, 1, 1};
  RunShard(scenarios, opts);

  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;

  // Missing: a manifest with one extra scenario nothing receipted.
  std::vector<Scenario> wider = scenarios;
  Scenario extra = scenarios[0];
  extra.name = "grid/extra";
  extra.seed = 999;
  wider.push_back(extra);
  Manifest manifest;
  manifest.scenarios = wider;
  MergeReport missing = MergeResults(manifest, store);
  EXPECT_FALSE(missing.ok());
  ASSERT_EQ(missing.missing.size(), 1u);
  EXPECT_EQ(missing.missing[0], "grid/extra");

  // Conflict: forge a matching-fingerprint, different-hash receipt.
  Receipt forged = store.receipts[0];
  forged.trace_hash ^= 0xff;
  store.receipts.push_back(forged);
  manifest.scenarios = scenarios;
  MergeReport conflict = MergeResults(manifest, store);
  EXPECT_FALSE(conflict.ok());
  ASSERT_EQ(conflict.conflicts.size(), 1u);
  EXPECT_EQ(conflict.conflicts[0], forged.name);

  // Orphan: a receipt whose name the manifest does not know.
  store.receipts.pop_back();
  Receipt orphan = store.receipts[0];
  orphan.name = "grid/ghost";
  store.receipts.push_back(orphan);
  MergeReport orphaned = MergeResults(manifest, store);
  EXPECT_FALSE(orphaned.ok());
  ASSERT_EQ(orphaned.orphans.size(), 1u);
  EXPECT_EQ(orphaned.orphans[0], "grid/ghost");
}

TEST(FleetTrend, MergeDedupsByteIdenticalDuplicates) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string dir = TempPath("merge_dup");
  ShardOptions opts{dir, 0, 1, 1};
  RunShard(scenarios, opts);

  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;
  // A benign claim race: the same scenario receipted twice, same payload
  // (different wall_ms is still canonical-identical).
  Receipt dup = store.receipts[0];
  dup.wall_ms += 5;
  store.receipts.push_back(dup);

  Manifest manifest;
  manifest.scenarios = scenarios;
  MergeReport merge = MergeResults(manifest, store);
  EXPECT_TRUE(merge.ok());
  EXPECT_EQ(merge.duplicates, 1);
  EXPECT_EQ(merge.unique, static_cast<int>(scenarios.size()));
}

TEST(FleetTrend, DiffReportsAddsRemovesHashAndMetricChanges) {
  Receipt a1 = MakeReceipt("grid/a", 1, 10);
  Receipt b1 = MakeReceipt("grid/b", 2, 20);
  Receipt c1 = MakeReceipt("grid/c", 3, 30);
  Receipt a2 = a1;                 // Unchanged.
  Receipt b2 = b1;
  b2.trace_hash = 21;              // Hash drift.
  b2.metrics["make_span_s"] = 2.5; // Metric moved with it.
  Receipt d2 = MakeReceipt("grid/d", 4, 40);  // Added; c removed.

  DiffReport diff = DiffStores({a1, b1, c1}, {a2, b2, d2});
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], "grid/d");
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], "grid/c");
  ASSERT_EQ(diff.hash_changes.size(), 1u);
  EXPECT_EQ(diff.hash_changes[0].name, "grid/b");
  EXPECT_EQ(diff.hash_changes[0].hash_a, 20u);
  EXPECT_EQ(diff.hash_changes[0].hash_b, 21u);
  ASSERT_EQ(diff.metric_deltas.size(), 1u);
  EXPECT_EQ(diff.metric_deltas[0].name, "grid/b");
  EXPECT_EQ(diff.metric_deltas[0].key, "make_span_s");
  EXPECT_EQ(diff.metric_deltas[0].value_a, "1.5");
  EXPECT_EQ(diff.metric_deltas[0].value_b, "2.5");
  EXPECT_EQ(diff.unchanged, 1);

  DiffReport same = DiffStores({a1, b1}, {a1, b1});
  EXPECT_TRUE(same.identical());
  EXPECT_EQ(same.unchanged, 2);
}

TEST(FleetTrend, MergedStoreRoundTripsThroughFile) {
  std::vector<Scenario> scenarios = ExpandGrid(TinyGrid());
  std::string dir = TempPath("round");
  ShardOptions opts{dir, 0, 1, 2};
  RunShard(scenarios, opts);

  Manifest manifest;
  manifest.scenarios = scenarios;
  ResultsStore store;
  std::string error;
  ASSERT_TRUE(LoadResultsStore(dir, &store, &error)) << error;
  MergeReport merge = MergeResults(manifest, store);
  ASSERT_TRUE(merge.ok());

  std::string path = TempPath("merged.jsonl");
  WriteAll(path, merge.canonical);
  std::vector<Receipt> loaded;
  ASSERT_TRUE(LoadMergedStore(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), scenarios.size());
  DiffReport diff = DiffStores(loaded, loaded);
  EXPECT_TRUE(diff.identical());
}

}  // namespace
}  // namespace wcores
