// wc-analyze tests: the declaration parser, symbol table, call graph, the
// A1..A4 interprocedural rules (directed in-memory scenarios and the golden
// fixture corpus), the self-application gate over the real src/ + bench/
// tree, the seeded reintroduction of the PR "PickSpecific without a
// load_version bump" fold-order bug, and strict-JSON validation of the
// SARIF writer.
//
// To regenerate the analyze golden after an intentional change, run this
// binary and copy the "actual" block from the failure message into
// tests/lint_fixtures/analyze_expected.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/chrome_trace.h"
#include "src/tools/lint/ast.h"
#include "src/tools/lint/callgraph.h"
#include "src/tools/lint/driver.h"
#include "src/tools/lint/flow_rules.h"
#include "src/tools/lint/policy.h"
#include "src/tools/lint/symtab.h"

namespace wcores::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

SymbolTable BuildTable(const std::vector<std::pair<std::string, std::string>>& sources) {
  SymbolTable syms;
  for (const auto& [file, src] : sources) {
    syms.AddUnit(ParseUnit(file, src));
  }
  syms.Finalize();
  return syms;
}

// Every A rule at error severity for every analyzed file.
std::map<std::string, std::map<std::string, Severity>> AllAErrors(const SymbolTable& syms) {
  std::map<std::string, std::map<std::string, Severity>> out;
  for (const TranslationUnit& tu : syms.units()) {
    for (const RuleInfo& r : AnalyzeRuleCatalog()) {
      out[tu.file][r.id] = Severity::kError;
    }
  }
  return out;
}

AnalyzeResult Analyze(const std::vector<std::pair<std::string, std::string>>& sources) {
  SymbolTable syms = BuildTable(sources);
  CallGraph graph(syms);
  return RunAnalysis(syms, graph, AnalyzeConfig{}, AllAErrors(syms));
}

int CountRule(const AnalyzeResult& r, const std::string& rule, bool suppressed = false) {
  int n = 0;
  for (const Finding& f : r.findings) {
    n += (f.rule == rule && f.suppressed == suppressed) ? 1 : 0;
  }
  return n;
}

bool HasFinding(const AnalyzeResult& r, const std::string& rule, const std::string& file,
                const std::string& message_piece) {
  for (const Finding& f : r.findings) {
    if (f.rule == rule && f.file == file &&
        f.message.find(message_piece) != std::string::npos) {
      return true;
    }
  }
  return false;
}

const FunctionDef* FindFn(const TranslationUnit& tu, const std::string& name) {
  for (const FunctionDef& f : tu.functions) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

// ---- Declaration parser ----------------------------------------------------

TEST(AnalyzeParser, ClassStructureAccessAndFriends) {
  TranslationUnit tu = ParseUnit("t.cc", R"(
    class Base {
     public:
      virtual void Hook() = 0;
    };
    class Mech : public Base, private Aux {
      int hidden_ = 0;
     public:
      void Open() {}
      int open_field;
     protected:
      void Guarded();
      friend class Buddy;
    };
    struct Pod { int x; double y; };
  )");
  ASSERT_EQ(tu.classes.size(), 3u);
  const ClassInfo& mech = tu.classes[1];
  EXPECT_EQ(mech.name, "Mech");
  ASSERT_EQ(mech.bases.size(), 2u);
  EXPECT_EQ(mech.bases[0], "Base");
  EXPECT_EQ(mech.bases[1], "Aux");
  EXPECT_EQ(mech.members.at("hidden_").access, Access::kPrivate);
  EXPECT_FALSE(mech.members.at("hidden_").is_function);
  EXPECT_EQ(mech.members.at("Open").access, Access::kPublic);
  EXPECT_TRUE(mech.members.at("Open").is_function);
  EXPECT_EQ(mech.members.at("open_field").access, Access::kPublic);
  EXPECT_EQ(mech.members.at("Guarded").access, Access::kProtected);
  ASSERT_EQ(mech.friends.size(), 1u);
  EXPECT_EQ(mech.friends[0], "Buddy");
  // struct members default public.
  EXPECT_EQ(tu.classes[2].members.at("x").access, Access::kPublic);
  EXPECT_TRUE(tu.classes[2].is_struct);
}

TEST(AnalyzeParser, OutOfLineDefinitionsKeepQualifiers) {
  TranslationUnit tu = ParseUnit("t.cc", R"(
    namespace outer {
    int Free(int a) { return a; }
    double Mech::Load(long now) const { return Helper(now); }
    void RbTree<Key>::Insert(Key* k) { size_ += 1; }
    }  // namespace outer
  )");
  ASSERT_EQ(tu.functions.size(), 3u);
  EXPECT_EQ(tu.functions[0].name, "Free");
  EXPECT_TRUE(tu.functions[0].qualifier_chain.empty());
  EXPECT_EQ(tu.functions[1].name, "Load");
  ASSERT_EQ(tu.functions[1].qualifier_chain.size(), 1u);
  EXPECT_EQ(tu.functions[1].qualifier_chain[0], "Mech");
  EXPECT_EQ(tu.functions[2].name, "Insert");
  ASSERT_EQ(tu.functions[2].qualifier_chain.size(), 1u);
  EXPECT_EQ(tu.functions[2].qualifier_chain[0], "RbTree");
}

TEST(AnalyzeParser, BodyFactsCallsFieldsAndOps) {
  TranslationUnit tu = ParseUnit("t.cc", R"(
    void Fn(Obj* o, Obj& q) {
      Plain(1);
      Cls::Qualified(2);
      o->Member(3);
      q.Dotted(4);
      this->Own(5);
      int v = o->field + q.other;
      char* p = new char[8];
      auto h = std::hash<void*>{}(nullptr);
      uint64_t u = reinterpret_cast<uint64_t>(p);
      void* back = reinterpret_cast<void*>(u);
    }
  )");
  ASSERT_EQ(tu.functions.size(), 1u);
  const FunctionDef& fn = tu.functions[0];
  ASSERT_GE(fn.calls.size(), 5u);
  EXPECT_EQ(fn.calls[0].callee, "Plain");
  EXPECT_FALSE(fn.calls[0].via_member);
  EXPECT_EQ(fn.calls[1].callee, "Qualified");
  EXPECT_EQ(fn.calls[1].qualifier, "Cls");
  EXPECT_EQ(fn.calls[2].callee, "Member");
  EXPECT_TRUE(fn.calls[2].via_member);
  EXPECT_EQ(fn.calls[2].object, "o");
  EXPECT_EQ(fn.calls[3].object, "q");
  EXPECT_EQ(fn.calls[4].object, "this");
  bool saw_field = false, saw_other = false;
  for (const FieldUse& fu : fn.field_uses) {
    saw_field = saw_field || (fu.object == "o" && fu.field == "field");
    saw_other = saw_other || (fu.object == "q" && fu.field == "other");
  }
  EXPECT_TRUE(saw_field);
  EXPECT_TRUE(saw_other);
  int new_ops = 0, cast_ops = 0;
  for (const BodyOp& op : fn.ops) {
    new_ops += op.kind == BodyOpKind::kNewExpr;
    cast_ops += op.kind == BodyOpKind::kPtrIntCast;
  }
  EXPECT_EQ(new_ops, 1);
  // hash over a pointer + the int-target reinterpret_cast; the cast BACK to
  // a pointer type is not a pointer-as-integer source.
  EXPECT_EQ(cast_ops, 2);
}

TEST(AnalyzeParser, CtorInitializerListFindsBody) {
  TranslationUnit tu = ParseUnit("t.cc", R"(
    class Widget {
     public:
      Widget(int n) : size_{n}, items_(n, 0) { Validate(); }
     private:
      void Validate() {}
      int size_;
      std::vector<int> items_;
    };
  )");
  const FunctionDef* ctor = FindFn(tu, "Widget");
  ASSERT_NE(ctor, nullptr);
  ASSERT_EQ(ctor->calls.size(), 1u);
  EXPECT_EQ(ctor->calls[0].callee, "Validate");
  EXPECT_EQ(ctor->cls, "Widget");
}

TEST(AnalyzeParser, AttributesRawStringsAndSeparatorsDoNotDesync) {
  TranslationUnit tu = ParseUnit("t.cc", R"xx(
    class Api {
     public:
      [[nodiscard]] int Get() { return 0x1F'FF; }
      [[deprecated("use Get()")]] int Old() { return Get(); }
      const char* Text() { return R"(calls Inside() here don't count)"; }
    };
  )xx");
  ASSERT_EQ(tu.classes.size(), 1u);
  EXPECT_EQ(tu.functions.size(), 3u);
  const FunctionDef* old_fn = FindFn(tu, "Old");
  ASSERT_NE(old_fn, nullptr);
  ASSERT_EQ(old_fn->calls.size(), 1u);
  EXPECT_EQ(old_fn->calls[0].callee, "Get");
  const FunctionDef* text = FindFn(tu, "Text");
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(text->calls.empty());  // Inside() is string content.
}

TEST(AnalyzeParser, AllowAnnotationsAreCollected) {
  TranslationUnit tu = ParseUnit("t.cc",
                                 "// wc-lint"
                                 ": allow(A2 bounded by cpus)\n"
                                 "int x;\n");
  ASSERT_EQ(tu.allows.size(), 1u);
  EXPECT_EQ(tu.allows[0].rule, "A2");
  EXPECT_EQ(tu.allows[0].line, 1);
}

// ---- Symbol table ----------------------------------------------------------

TEST(AnalyzeSymtab, ResolvesOutOfLineOwnersAndInheritance) {
  SymbolTable syms = BuildTable({
      {"a.h", R"(
        class Base { public: void Shared(); };
        class Derived : public Base { public: void Own(); private: int secret_; };
      )"},
      {"a.cc", R"(
        void Base::Shared() {}
        void Derived::Own() { Shared(); }
      )"},
  });
  ASSERT_EQ(syms.functions().size(), 2u);
  EXPECT_EQ(syms.functions()[0].def->cls, "Base");
  EXPECT_EQ(syms.functions()[1].def->cls, "Derived");
  EXPECT_TRUE(syms.DerivesFrom("Derived", "Base"));
  EXPECT_TRUE(syms.DerivesFrom("Derived", "Derived"));
  EXPECT_FALSE(syms.DerivesFrom("Base", "Derived"));
  std::string found_in;
  const MemberInfo* mi = syms.FindMember("Derived", "Shared", &found_in);
  ASSERT_NE(mi, nullptr);
  EXPECT_EQ(found_in, "Base");
  EXPECT_EQ(syms.FindMember("Derived", "secret_")->access, Access::kPrivate);
  EXPECT_EQ(syms.FindMember("Derived", "nope"), nullptr);
}

TEST(AnalyzeCallGraph, ResolvesEdgesAndReachability) {
  SymbolTable syms = BuildTable({{"g.cc", R"(
    struct Leaf { void Work() {} };
    struct Mid {
      void Step() { leaf_.Work(); }
      Leaf leaf_;
    };
    void Root() { Mid m; m.Step(); }
    void Unrelated() {}
  )"}});
  CallGraph graph(syms);
  // Root -> Step -> Work, Unrelated disconnected.
  int root = -1, work = -1, unrelated = -1;
  for (const FnRef& r : syms.functions()) {
    if (r.def->name == "Root") root = r.id;
    if (r.def->name == "Work") work = r.id;
    if (r.def->name == "Unrelated") unrelated = r.id;
  }
  ASSERT_GE(root, 0);
  Reach fwd = graph.Forward({root});
  EXPECT_TRUE(fwd.in_set[work]);
  EXPECT_FALSE(fwd.in_set[unrelated]);
  Reach back = graph.Backward({work});
  EXPECT_TRUE(back.in_set[root]);
  EXPECT_EQ(graph.Chain(back, root), "Root -> Mid::Step -> Leaf::Work");
}

// ---- Directed flow-rule scenarios ------------------------------------------

TEST(AnalyzeRules, A1TaintCrossesTranslationUnits) {
  AnalyzeResult r = Analyze({
      {"fold.h", "struct Fold { void Mix(unsigned long v) { s ^= v; } unsigned long s = 0; };"},
      {"salt.h", "inline int Salt() { return getenv(\"S\") != nullptr; }"},
      {"probe.cc", R"(
        #include "fold.h"
        struct Probe {
          void Observe(void* p) {
            f.Mix(reinterpret_cast<unsigned long>(p));
            f.Mix(static_cast<unsigned long>(Salt()));
          }
          Fold f;
        };
      )"},
  });
  // The cast in trace-affecting code, and the env read one call away.
  EXPECT_TRUE(HasFinding(r, "A1", "probe.cc", "pointer-as-integer"));
  EXPECT_TRUE(HasFinding(r, "A1", "salt.h", "getenv"));
  EXPECT_EQ(r.errors, 2);
}

TEST(AnalyzeRules, A1IgnoresSourcesOffTheTaintPath) {
  AnalyzeResult r = Analyze({
      {"t.cc", R"(
        struct Fold { void Mix(unsigned long v) { s ^= v; } unsigned long s = 0; };
        struct Probe {
          void Observe(unsigned long id) { f.Mix(id); }
          Fold f;
        };
        bool WantColor() { return getenv("COLOR") != nullptr; }
      )"},
  });
  EXPECT_EQ(CountRule(r, "A1"), 0);
  EXPECT_EQ(r.errors, 0);
}

TEST(AnalyzeRules, A2FlagsGrowthOnlyWhenHotReachable) {
  AnalyzeResult r = Analyze({
      {"t.cc", R"(
        struct Simulator {
          void OnTick() { Account(); }
          void Account() { log_.push_back(1); }
          void Prepare() { log_.reserve(64); }
          Vec log_;
        };
      )"},
  });
  EXPECT_TRUE(HasFinding(r, "A2", "t.cc", "container growth .push_back()"));
  EXPECT_FALSE(HasFinding(r, "A2", "t.cc", "reserve"));  // Prepare is cold.
  EXPECT_EQ(r.errors, 1);
}

TEST(AnalyzeRules, A3FlagsMechanismBackdoorsButNotPublicUse) {
  const char* mech = R"(
    class SchedPolicy { public: virtual int SelectWakeCpu(int prev) = 0; };
    class Scheduler {
     public:
      int CfsSelectWakeCpu(int prev) { return prev; }
     private:
      friend class Backdoor;
      int IdleBalance(int cpu) { return cpu; }
      int cpus_ = 0;
    };
  )";
  AnalyzeResult bad = Analyze({
      {"mech.h", mech},
      {"backdoor.cc", R"(
        #include "mech.h"
        class Backdoor : public SchedPolicy {
         public:
          int SelectWakeCpu(int prev) override {
            sched_->cpus_ += 1;
            return Sneak(prev);
          }
         private:
          // Indirection: the helper, not the hook, crosses the boundary.
          int Sneak(int prev) { return sched_->IdleBalance(prev); }
          Scheduler* sched_ = nullptr;
        };
      )"},
  });
  EXPECT_TRUE(HasFinding(bad, "A3", "backdoor.cc", "private mechanism member"));
  EXPECT_TRUE(HasFinding(bad, "A3", "backdoor.cc", "private mechanism field Scheduler::cpus_"));
  EXPECT_EQ(bad.errors, 2);  // Friendship deliberately does not excuse it.

  AnalyzeResult good = Analyze({
      {"mech.h", mech},
      {"polite.cc", R"(
        #include "mech.h"
        class Polite : public SchedPolicy {
         public:
          int SelectWakeCpu(int prev) override { return sched_->CfsSelectWakeCpu(prev); }
         private:
          Scheduler* sched_ = nullptr;
        };
      )"},
  });
  EXPECT_EQ(CountRule(good, "A3"), 0);
  EXPECT_EQ(good.errors, 0);
}

TEST(AnalyzeRules, A4FlagsUnbumpedTreeMutationAndEntityReads) {
  const char* tree = R"(
    struct SchedEntity { double ValueAt(long now) const { return 0; } };
    struct RbTree { void Erase(SchedEntity* se) {} void Insert(SchedEntity* se) {} };
  )";
  AnalyzeResult bad = Analyze({
      {"tree.h", tree},
      {"rq.cc", R"(
        #include "tree.h"
        class CfsRunqueue {
         public:
          void PickSpecific(SchedEntity* se) { tree_.Erase(se); }
         private:
          void BumpLoadVersion() {}
          RbTree tree_;
        };
        class Scheduler {
         public:
          void PickNext(long now) { rq_.PickSpecific(nullptr); }
          double BalanceDomain(long now) { return e_.ValueAt(now); }
         private:
          CfsRunqueue rq_;
          SchedEntity e_;
        };
      )"},
  });
  EXPECT_TRUE(HasFinding(bad, "A4", "rq.cc", "without a BumpLoadVersion()"));
  EXPECT_TRUE(HasFinding(bad, "A4", "rq.cc", "per-entity decayed-load read ValueAt()"));
  EXPECT_EQ(bad.errors, 2);

  AnalyzeResult good = Analyze({
      {"tree.h", tree},
      {"rq.cc", R"(
        #include "tree.h"
        class CfsRunqueue {
         public:
          void PickSpecific(SchedEntity* se) {
            BumpLoadVersion();
            tree_.Erase(se);
          }
         private:
          void BumpLoadVersion() {}
          RbTree tree_;
        };
        class Scheduler {
         public:
          void PickNext(long now) { rq_.PickSpecific(nullptr); }
         private:
          CfsRunqueue rq_;
        };
      )"},
  });
  EXPECT_EQ(CountRule(good, "A4"), 0);
}

TEST(AnalyzeRules, AllowAnnotationSuppressesWithReason) {
  AnalyzeResult r = Analyze({
      {"t.cc", R"(
        struct Simulator {
          void OnTick() {
            // wc-lint: allow(A2 ring append; capacity pinned in setup)
            log_.push_back(1);
          }
          Vec log_;
        };
      )"},
  });
  EXPECT_EQ(CountRule(r, "A2", /*suppressed=*/false), 0);
  EXPECT_EQ(CountRule(r, "A2", /*suppressed=*/true), 1);
  EXPECT_EQ(r.errors, 0);
  EXPECT_EQ(r.suppressed, 1);
  EXPECT_EQ(r.findings[0].suppress_reason, "ring append; capacity pinned in setup");
}

// ---- Golden corpus ---------------------------------------------------------

TEST(AnalyzeGolden, FixtureCorpus) {
  fs::path dir = WC_LINT_FIXTURE_DIR;
  Policy policy = ParsePolicy(ReadFileOrDie(dir / ".wc-lint.policy"));
  ASSERT_TRUE(policy.errors.empty());

  std::vector<fs::path> fixtures;
  for (const auto& e : fs::directory_iterator(dir)) {
    std::string base = e.path().filename().string();
    if (e.path().extension() == ".cc" && base.rfind("a", 0) == 0) {
      fixtures.push_back(e.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_EQ(fixtures.size(), 8u) << "one bad + one good fixture per A rule";

  // Each fixture is a standalone program: its own table, graph, and run.
  std::string actual;
  for (const fs::path& f : fixtures) {
    std::string base = f.filename().string();
    SymbolTable syms = BuildTable({{base, ReadFileOrDie(f)}});
    CallGraph graph(syms);
    std::map<std::string, std::map<std::string, Severity>> sev;
    sev[base] = ResolveSeverities({&policy}, /*defaults=*/{}, base);
    AnalyzeResult r = RunAnalysis(syms, graph, AnalyzeConfig{}, sev);
    actual += "== " + base + "\n";
    for (const Finding& fi : r.findings) {
      actual += FormatFinding(fi) + "\n";
    }
    actual += "-- errors=" + std::to_string(r.errors) +
              " warnings=" + std::to_string(r.warnings) +
              " suppressed=" + std::to_string(r.suppressed) + "\n";
  }

  std::string expected = ReadFileOrDie(dir / "analyze_expected.txt");
  EXPECT_EQ(expected, actual)
      << "----- actual (copy into analyze_expected.txt if intentional) -----\n"
      << actual;
}

// ---- Self-application over the real tree -----------------------------------

// Mirrors wc-analyze's built-in defaults (analyze_main.cc).
std::map<std::string, Severity> AnalyzeDefaults() {
  return {{"A1", Severity::kError},
          {"A2", Severity::kOff},
          {"A3", Severity::kError},
          {"A4", Severity::kError}};
}

struct RealTree {
  SymbolTable syms;
  std::map<std::string, std::map<std::string, Severity>> severities;
};

// Parses src/ + bench/ exactly like the wc-analyze driver (same file walk,
// same policy chains). `mutate` may rewrite one file's source on the way in.
RealTree LoadRealTree(
    const std::function<void(const std::string& file, std::string* src)>& mutate = nullptr) {
  fs::path root = WC_ANALYZE_SOURCE_DIR;
  std::vector<std::string> io_errors;
  std::vector<fs::path> files;
  CollectFiles(root / "src", &files, &io_errors);
  CollectFiles(root / "bench", &files, &io_errors);
  EXPECT_TRUE(io_errors.empty());
  EXPECT_GE(files.size(), 100u);
  std::stable_sort(files.begin(), files.end(), [](const fs::path& a, const fs::path& b) {
    bool ah = a.extension() == ".h" || a.extension() == ".hpp";
    bool bh = b.extension() == ".h" || b.extension() == ".hpp";
    return ah && !bh;
  });
  RealTree tree;
  PolicyCache policies;
  for (const fs::path& file : files) {
    bool ok = false;
    std::string source = ReadFileToString(file, &ok);
    EXPECT_TRUE(ok) << file;
    std::string name = file.generic_string();
    if (mutate) {
      mutate(name, &source);
    }
    std::vector<const Policy*> chain = PolicyChainFor(file, root, &policies, &io_errors);
    tree.severities[name] =
        ResolveSeverities(chain, AnalyzeDefaults(), file.filename().string());
    tree.syms.AddUnit(ParseUnit(name, source));
  }
  tree.syms.Finalize();
  return tree;
}

TEST(AnalyzeSelfApplication, RealTreeIsCleanAndNontrivial) {
  RealTree tree = LoadRealTree();
  CallGraph graph(tree.syms);
  AnalyzeResult r = RunAnalysis(tree.syms, graph, AnalyzeConfig{}, tree.severities);
  std::string transcript;
  for (const Finding& f : r.findings) {
    if (!f.suppressed) {
      transcript += FormatFinding(f) + "\n";
    }
  }
  EXPECT_EQ(r.errors, 0) << transcript;
  EXPECT_EQ(r.warnings, 0) << transcript;
  // The run must be a real analysis, not a degenerate parse: the tree has
  // hundreds of function definitions, a substantial hot set, and the
  // documented waivers (A2 bounds, the sanctioned A4 fold chain, sweep
  // wall-clock A1s).
  EXPECT_GE(r.functions, 500);
  EXPECT_GE(r.hot_reachable, 150);
  EXPECT_GE(r.suppressed, 10);
  EXPECT_EQ(CountRule(r, "A3"), 0);  // Shipped policies honor the boundary.
}

TEST(AnalyzeSelfApplication, InjectedBackdoorPolicyIsFlagged) {
  // The real tree plus one in-memory TU: a SchedPolicy subclass poking
  // Scheduler internals. The real SchedPolicy/Scheduler definitions are the
  // ones being protected, so this is the directed A3 regression.
  RealTree tree = LoadRealTree();
  const char* backdoor = R"(
    #include "src/core/scheduler.h"
    #include "src/modsched/sched_policy.h"
    namespace wcores {
    class BackdoorPolicy : public SchedPolicy {
     public:
      CpuId SelectWakeCpu(Time now, Scheduler* sched, ThreadId tid, CpuId prev) {
        sched->IdleBalance(now, prev);
        return static_cast<CpuId>(sched->group_cache_.size());
      }
    };
    }  // namespace wcores
  )";
  tree.syms.AddUnit(ParseUnit("injected/backdoor_policy.cc", backdoor));
  tree.severities["injected/backdoor_policy.cc"] = AnalyzeDefaults();
  tree.syms.Finalize();
  CallGraph graph(tree.syms);
  AnalyzeResult r = RunAnalysis(tree.syms, graph, AnalyzeConfig{}, tree.severities);
  EXPECT_TRUE(HasFinding(r, "A3", "injected/backdoor_policy.cc",
                         "mechanism member Scheduler::IdleBalance"));
  EXPECT_TRUE(HasFinding(r, "A3", "injected/backdoor_policy.cc",
                         "mechanism field Scheduler::group_cache_"));
  // The real policies stay clean even with the backdoor in the table.
  for (const Finding& f : r.findings) {
    if (f.rule == "A3") {
      EXPECT_EQ(f.file, "injected/backdoor_policy.cc") << FormatFinding(f);
    }
  }
}

TEST(AnalyzeSelfApplication, SeededPickSpecificFoldBugIsCaught) {
  // Reintroduce the PR 7 bug: PickSpecific picking a non-leftmost entity
  // without bumping load_version. The mutation deletes the bump, exactly
  // what the original regression looked like before the fix.
  const std::string kBump =
      "  if (se != tree_.Leftmost()) {\n"
      "    BumpLoadVersion();\n"
      "  }\n";
  bool mutated = false;
  RealTree tree = LoadRealTree([&](const std::string& file, std::string* src) {
    if (file.find("core/cfs_rq.cc") == std::string::npos) {
      return;
    }
    size_t pos = src->find(kBump);
    ASSERT_NE(pos, std::string::npos)
        << "cfs_rq.cc no longer contains the PickSpecific bump guard; update this test";
    src->erase(pos, kBump.size());
    mutated = true;
  });
  ASSERT_TRUE(mutated);
  CallGraph graph(tree.syms);
  AnalyzeResult r = RunAnalysis(tree.syms, graph, AnalyzeConfig{}, tree.severities);
  bool caught = false;
  for (const Finding& f : r.findings) {
    if (f.rule == "A4" && !f.suppressed && f.file.find("cfs_rq.cc") != std::string::npos &&
        f.message.find("PickSpecific") != std::string::npos &&
        f.message.find("without a BumpLoadVersion()") != std::string::npos) {
      caught = true;
    }
  }
  EXPECT_TRUE(caught) << "A4 must flag the seeded fold-order bug";
  EXPECT_EQ(r.errors, 1);  // Exactly the seeded bug; nothing else regressed.
}

// ---- SARIF writer ----------------------------------------------------------

TEST(AnalyzeSarif, StrictJsonWithSchemaRulesAndSuppressions) {
  std::vector<Finding> findings;
  Finding f1;
  f1.file = "a.cc";
  f1.line = 3;
  f1.rule = "A1";
  f1.severity = Severity::kError;
  f1.message = "quoted \"msg\" with\nnewline and \\ backslash";
  findings.push_back(f1);
  Finding f2;
  f2.file = "b.cc";
  f2.line = 9;
  f2.rule = "A2";
  f2.severity = Severity::kWarn;
  f2.suppressed = true;
  f2.suppress_reason = "bounded by cpus";
  findings.push_back(f2);

  fs::path out = fs::path(::testing::TempDir()) / "wc_analyze_test.sarif";
  ASSERT_TRUE(
      WriteSarifReport(out.string(), "wc-analyze", AnalyzeRuleCatalog(), findings, true));

  wcores::JsonValue doc;
  std::string error;
  ASSERT_TRUE(wcores::ParseJson(ReadFileOrDie(out), &doc, &error)) << error;
  ASSERT_EQ(doc.type, wcores::JsonValue::Type::kObject);
  ASSERT_NE(doc.Find("$schema"), nullptr);
  ASSERT_NE(doc.Find("version"), nullptr);
  EXPECT_EQ(doc.Find("version")->str, "2.1.0");
  const auto* runs = doc.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const auto& run = runs->array[0];
  const auto* driver = run.Find("tool")->Find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->Find("name")->str, "wc-analyze");
  EXPECT_EQ(driver->Find("rules")->array.size(), AnalyzeRuleCatalog().size());
  const auto* results = run.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 2u);
  EXPECT_EQ(results->array[0].Find("ruleId")->str, "A1");
  EXPECT_EQ(results->array[0].Find("level")->str, "error");
  EXPECT_EQ(results->array[0].Find("message")->Find("text")->str,
            "quoted \"msg\" with\nnewline and \\ backslash");
  const auto* loc = results->array[0].Find("locations");
  ASSERT_EQ(loc->array.size(), 1u);
  EXPECT_EQ(loc->array[0].Find("physicalLocation")->Find("region")->Find("startLine")->number,
            3.0);
  const auto* supp = results->array[1].Find("suppressions");
  ASSERT_NE(supp, nullptr);
  ASSERT_EQ(supp->array.size(), 1u);
  EXPECT_EQ(supp->array[0].Find("justification")->str, "bounded by cpus");
  // The schema-less legacy shape stays parseable too.
  fs::path legacy = fs::path(::testing::TempDir()) / "wc_analyze_test.json";
  ASSERT_TRUE(
      WriteSarifReport(legacy.string(), "wc-lint", RuleCatalog(), findings, false));
  wcores::JsonValue doc2;
  ASSERT_TRUE(wcores::ParseJson(ReadFileOrDie(legacy), &doc2, &error)) << error;
  EXPECT_EQ(doc2.Find("$schema"), nullptr);
}

}  // namespace
}  // namespace wcores::lint
