#include "src/tools/sanity_checker.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/topo/topology.h"
#include "src/workloads/nas.h"

namespace wcores {
namespace {

TEST(SanityCheckerTest, QuietOnIdleMachine) {
  Topology topo = Topology::Flat(2, 2, 1);
  Simulator sim(topo, Simulator::Options{});
  SanityChecker checker(&sim);
  checker.Start();
  sim.Run(Seconds(5));
  EXPECT_GE(checker.checks_run(), 4u);
  EXPECT_EQ(checker.candidates(), 0u);
  EXPECT_TRUE(checker.violations().empty());
}

TEST(SanityCheckerTest, QuietOnBalancedLoad) {
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Simulator::Options{});
  for (int i = 0; i < 4; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(6)}}),
              params);
  }
  SanityChecker checker(&sim);
  checker.Start();
  sim.Run(Seconds(5));
  EXPECT_TRUE(checker.violations().empty());
}

TEST(SanityCheckerTest, CheckOnceDetectsStealableImbalance) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Simulator::Options{});
  // Two long threads pinned to cpu 0 -> cpu 1 idle, cpu 0 overloaded...
  Simulator::SpawnParams pinned;
  pinned.parent_cpu = 0;
  pinned.affinity = CpuSet::Single(0);
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(2)}}),
            pinned);
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(2)}}),
            pinned);
  sim.Run(Milliseconds(10));
  SanityChecker checker(&sim);
  CpuId idle_cpu;
  CpuId busy_cpu;
  // ...but the queued thread is pinned, so can_steal says NO violation.
  EXPECT_FALSE(checker.CheckOnce(&idle_cpu, &busy_cpu));

  // An unpinned thread on cpu 0 makes it a real violation.
  Simulator::SpawnParams loose;
  loose.parent_cpu = 0;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(2)}}),
            loose);
  EXPECT_TRUE(checker.CheckOnce(&idle_cpu, &busy_cpu));
  EXPECT_EQ(idle_cpu, 1);
  EXPECT_EQ(busy_cpu, 0);
}

TEST(SanityCheckerTest, ShortTermViolationNotFlagged) {
  // "a sanity checker must minimize the probability of flagging short-term
  // transient violations": work appears on an overloaded core but balancing
  // spreads it within the confirmation window.
  Topology topo = Topology::Flat(1, 4, 1);
  Simulator sim(topo, Simulator::Options{});
  SanityChecker::Options opts;
  opts.check_interval = Milliseconds(50);
  opts.confirmation_window = Milliseconds(100);
  SanityChecker checker(&sim, opts);
  checker.Start();
  // Periodically dump four short threads onto cpu 0; they spread and finish
  // quickly, so any violation the checker sees is transient.
  for (Time t = Milliseconds(49); t < Seconds(2); t += Milliseconds(200)) {
    sim.At(t, [&sim] {
      for (int i = 0; i < 4; ++i) {
        Simulator::SpawnParams params;
        params.parent_cpu = 0;
        sim.Spawn(std::make_unique<ScriptBehavior>(
                      std::vector<Action>{ComputeAction{Milliseconds(30)}}),
                  params);
      }
    });
  }
  sim.Run(Seconds(2));
  EXPECT_TRUE(checker.violations().empty());
}

TEST(SanityCheckerTest, FlagsLongTermViolationFromMissingDomainsBug) {
  // The paper's use case: after the hotplug bug, threads are stuck on one
  // node while other nodes idle; the checker must flag it.
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options sopts;
  sopts.seed = 21;
  Simulator sim(topo, sopts);
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 32;
  config.spawn_cpu = 0;
  config.scale = 6.0;  // Long enough to span several checks.
  NasWorkload wl(&sim, config);
  wl.Setup();
  SanityChecker checker(&sim);
  checker.Start();
  sim.Run(Seconds(5));
  ASSERT_FALSE(checker.violations().empty());
  const SanityChecker::Violation& v = checker.violations().front();
  EXPECT_GE(v.overloaded_nr_running, 2);
  // The profile shows balancing activity that failed to resolve it.
  EXPECT_FALSE(SanityChecker::Report(v).empty());
}

TEST(SanityCheckerTest, NoViolationWithAllFixes) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options sopts;
  sopts.features = SchedFeatures::AllFixed();
  sopts.seed = 22;
  Simulator sim(topo, sopts);
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 32;
  config.spawn_cpu = 0;
  config.scale = 6.0;
  NasWorkload wl(&sim, config);
  wl.Setup();
  SanityChecker checker(&sim);
  checker.Start();
  sim.Run(Seconds(5));
  EXPECT_TRUE(checker.violations().empty());
}

TEST(SanityCheckerTest, StopAtHaltsChecking) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator sim(topo, Simulator::Options{});
  SanityChecker::Options opts;
  opts.check_interval = Milliseconds(100);
  opts.stop_at = Milliseconds(350);
  SanityChecker checker(&sim, opts);
  checker.Start();
  sim.Run(Seconds(2));
  EXPECT_EQ(checker.checks_run(), 3u);
}

TEST(SanityCheckerTest, ViolationSnapshotHasPerCpuQueues) {
  Topology topo = Topology::Flat(1, 2, 1);
  Simulator::Options sopts;
  Simulator sim(topo, sopts);
  // Pin two hogs to cpu 0 plus one stealable-but-never-stolen? On a sane
  // scheduler this resolves, so force it: offline cpu1? Then no idle cpu.
  // Instead: affinity {0} for two hogs and one hog allowed {0,1} queued
  // behind them while cpu1 kept busy-idle... Simplest deterministic bug:
  // use the missing-domains machine again but tiny.
  Topology big = Topology::Bulldozer8x8();
  Simulator sim2(big, sopts);
  sim2.SetCpuOnline(3, false);
  sim2.SetCpuOnline(3, true);
  for (int i = 0; i < 16; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = 0;
    sim2.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(10)}}),
               params);
  }
  SanityChecker checker(&sim2);
  checker.Start();
  sim2.Run(Seconds(3));
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations().front().nr_running.size(), 64u);
}

}  // namespace
}  // namespace wcores
