#include "src/tools/profiler.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

TEST(ProfilerTest, StatsDeltaProfile) {
  SchedStats before;
  SchedStats after;
  after.balance_calls = 10;
  after.balance_found_busiest = 4;
  after.balance_below_local = 6;
  after.balance_designation_skips = 20;
  after.balance_affinity_retries = 2;
  after.balance_failures = 1;
  after.migrations_idle = 3;
  after.wakeups = 100;
  after.wakeups_on_busy = 40;
  BalanceProfile p = ProfileFromStats(before, after, 0, Milliseconds(20));
  EXPECT_EQ(p.balance_calls, 10u);
  EXPECT_EQ(p.below_local, 6u);
  EXPECT_EQ(p.designation_skips, 20u);
  EXPECT_EQ(p.migrations, 3u);
  EXPECT_EQ(p.wakeups_on_busy, 40u);
}

TEST(ProfilerTest, ReportIsHumanReadable) {
  SchedStats before;
  SchedStats after;
  after.balance_calls = 7;
  BalanceProfile p = ProfileFromStats(before, after, 0, Milliseconds(20));
  std::string report = ProfileReport(p);
  EXPECT_NE(report.find("balance calls"), std::string::npos);
  EXPECT_NE(report.find("7"), std::string::npos);
}

TEST(ProfilerTest, ConsideredSummaryGroupsByInitiator) {
  EventRecorder recorder;
  recorder.OnConsidered(Milliseconds(1), 0, CpuSet::FirstN(8),
                        ConsideredKind::kPeriodicBalance);
  recorder.OnConsidered(Milliseconds(2), 0, CpuSet::FirstN(2),
                        ConsideredKind::kIdleBalance);
  recorder.OnConsidered(Milliseconds(3), 5, CpuSet::Single(5), ConsideredKind::kNohzBalance);
  recorder.OnConsidered(Milliseconds(4), 0, CpuSet::FirstN(64), ConsideredKind::kWakeup);
  std::string summary = ConsideredSummary(recorder, 0, Seconds(1), 64);
  EXPECT_NE(summary.find("core   0:      2 calls"), std::string::npos);
  EXPECT_NE(summary.find("0-7"), std::string::npos);
  EXPECT_NE(summary.find("core   5:"), std::string::npos);
}

TEST(ProfilerTest, WindowFiltersEvents) {
  EventRecorder recorder;
  recorder.OnConsidered(Milliseconds(1), 0, CpuSet::FirstN(2),
                        ConsideredKind::kPeriodicBalance);
  recorder.OnConsidered(Milliseconds(100), 0, CpuSet::FirstN(2),
                        ConsideredKind::kPeriodicBalance);
  std::string summary = ConsideredSummary(recorder, 0, Milliseconds(50), 64);
  EXPECT_NE(summary.find("1 calls"), std::string::npos);
}

TEST(ProfilerTest, EndToEndCapturesBalancingFailureSignature) {
  // The Missing Scheduling Domains scenario: a profile over a busy window
  // shows balance calls that keep giving up.
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = 31;
  Simulator sim(topo, opts);
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  for (int i = 0; i < 16; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = 0;
    sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(5)}}),
              params);
  }
  sim.Run(Seconds(1));
  SchedStats before = sim.sched().stats();
  sim.Run(Seconds(2));
  BalanceProfile p = ProfileFromStats(before, sim.sched().stats(), Seconds(1), Seconds(2));
  EXPECT_GT(p.balance_calls, 0u);
  EXPECT_EQ(p.migrations, 0u);  // The bug: balancing never crosses nodes.
}

}  // namespace
}  // namespace wcores
