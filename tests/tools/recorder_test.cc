#include "src/tools/recorder.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"
#include "src/tools/heatmap.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

TEST(RecorderTest, RecordsNrRunningChanges) {
  EventRecorder recorder;
  recorder.OnNrRunning(Milliseconds(1), 3, 2);
  recorder.OnLoad(Milliseconds(2), 3, 123.5);
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].kind, TraceEvent::Kind::kNrRunning);
  EXPECT_EQ(recorder.events()[0].cpu, 3);
  EXPECT_DOUBLE_EQ(recorder.events()[0].value, 2.0);
  EXPECT_EQ(recorder.events()[1].kind, TraceEvent::Kind::kLoad);
}

TEST(RecorderTest, CapacityBoundsMemoryLikeThePapersStaticArray) {
  EventRecorder recorder(/*capacity=*/10);
  for (int i = 0; i < 25; ++i) {
    recorder.OnNrRunning(i, 0, i);
  }
  EXPECT_EQ(recorder.events().size(), 10u);
  EXPECT_EQ(recorder.dropped(), 15u);
}

TEST(RecorderTest, DisableStopsRecording) {
  EventRecorder recorder;
  recorder.set_enabled(false);
  recorder.OnNrRunning(0, 0, 1);
  EXPECT_TRUE(recorder.events().empty());
  recorder.set_enabled(true);
  recorder.OnNrRunning(0, 0, 1);
  EXPECT_EQ(recorder.events().size(), 1u);
}

TEST(RecorderTest, CountKind) {
  EventRecorder recorder;
  recorder.OnNrRunning(0, 0, 1);
  recorder.OnNrRunning(1, 0, 2);
  recorder.OnMigration(2, 7, 0, 1, MigrationReason::kIdleBalance);
  EXPECT_EQ(recorder.CountKind(TraceEvent::Kind::kNrRunning), 2u);
  EXPECT_EQ(recorder.CountKind(TraceEvent::Kind::kMigration), 1u);
}

TEST(RecorderTest, MultiSinkFansOut) {
  EventRecorder a;
  EventRecorder b;
  MultiSink multi;
  multi.Add(&a);
  multi.Add(&b);
  multi.OnNrRunning(0, 1, 1);
  multi.OnConsidered(1, 0, CpuSet::FirstN(4), ConsideredKind::kWakeup);
  EXPECT_EQ(a.events().size(), 2u);
  EXPECT_EQ(b.events().size(), 2u);
}

TEST(RecorderTest, SchedulerEmitsEventsEndToEnd) {
  Topology topo = Topology::Flat(1, 2, 1);
  EventRecorder recorder;
  Simulator::Options opts;
  Simulator sim(topo, opts, &recorder);
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(5)}, SleepAction{Milliseconds(5)},
      ComputeAction{Milliseconds(5)}}));
  sim.RunUntilAllExited(Seconds(1));
  EXPECT_GT(recorder.CountKind(TraceEvent::Kind::kNrRunning), 0u);
  EXPECT_GT(recorder.CountKind(TraceEvent::Kind::kLoad), 0u);
  EXPECT_GT(recorder.CountKind(TraceEvent::Kind::kConsidered), 0u);
}

// ---- Heatmap rendering -----------------------------------------------------------

TEST(HeatmapTest, TimeWeightedAverages) {
  std::vector<TraceEvent> events;
  // cpu 0 at 2 threads for the first half of [0, 100ms), 0 after.
  events.push_back(
      TraceEvent{0, TraceEvent::Kind::kNrRunning, 0, 0, -1, -1, 2.0, CpuSet{}});
  events.push_back(TraceEvent{Milliseconds(50), TraceEvent::Kind::kNrRunning, 0, 0, -1, -1, 0.0,
                              CpuSet{}});
  Heatmap map = BuildHeatmap(events, TraceEvent::Kind::kNrRunning, 2, 0, Milliseconds(100), 4);
  EXPECT_DOUBLE_EQ(map.At(0, 0), 2.0);  // [0, 25ms): constant 2.
  EXPECT_DOUBLE_EQ(map.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(map.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(map.At(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(map.At(1, 0), 0.0);  // cpu 1 never reported.
}

TEST(HeatmapTest, PartialBinIsWeighted) {
  std::vector<TraceEvent> events;
  events.push_back(
      TraceEvent{0, TraceEvent::Kind::kNrRunning, 0, 0, -1, -1, 4.0, CpuSet{}});
  events.push_back(TraceEvent{Milliseconds(25), TraceEvent::Kind::kNrRunning, 0, 0, -1, -1, 0.0,
                              CpuSet{}});
  // One bin covering [0, 100ms): average = 4 * 0.25 = 1.
  Heatmap map = BuildHeatmap(events, TraceEvent::Kind::kNrRunning, 1, 0, Milliseconds(100), 1);
  EXPECT_NEAR(map.At(0, 0), 1.0, 1e-9);
}

TEST(HeatmapTest, CsvHasHeaderAndRows) {
  Heatmap map;
  map.n_cpus = 2;
  map.n_bins = 3;
  map.t1 = Milliseconds(3);
  map.cells = {1, 2, 3, 4, 5, 6};
  std::string csv = HeatmapToCsv(map);
  EXPECT_NE(csv.find("core,"), std::string::npos);
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
  EXPECT_NE(csv.find("\n1,"), std::string::npos);
}

TEST(HeatmapTest, AsciiUsesDarknessScale) {
  Heatmap map;
  map.n_cpus = 1;
  map.n_bins = 3;
  map.t1 = Milliseconds(3);
  map.cells = {0.0, 1.0, 2.0};
  std::string art = HeatmapToAscii(map);
  EXPECT_NE(art.find(' '), std::string::npos);  // Zero renders blank.
  EXPECT_NE(art.find('@'), std::string::npos);  // Max renders darkest.
}

TEST(HeatmapTest, AsciiNodeSeparators) {
  Heatmap map;
  map.n_cpus = 4;
  map.n_bins = 3;
  map.t1 = 3;
  map.cells = std::vector<double>(12, 1.0);
  std::string art = HeatmapToAscii(map, /*cores_per_node=*/2);
  EXPECT_NE(art.find("---"), std::string::npos);  // One separator, 3 bins wide.
}

TEST(HeatmapTest, PgmFormat) {
  Heatmap map;
  map.n_cpus = 2;
  map.n_bins = 2;
  map.t1 = 1;
  map.cells = {0, 1, 2, 3};
  std::string pgm = HeatmapToPgm(map);
  EXPECT_EQ(pgm.substr(0, 3), "P2\n");
  EXPECT_NE(pgm.find("255"), std::string::npos);
}

TEST(HeatmapTest, ConsideredCsvFiltersInitiator) {
  std::vector<TraceEvent> events;
  CpuSet set03 = CpuSet::FirstN(4);
  events.push_back(TraceEvent{Milliseconds(1), TraceEvent::Kind::kConsidered,
                              static_cast<uint8_t>(ConsideredKind::kPeriodicBalance), 0, -1, -1,
                              0, set03});
  events.push_back(TraceEvent{Milliseconds(2), TraceEvent::Kind::kConsidered,
                              static_cast<uint8_t>(ConsideredKind::kPeriodicBalance), 5, -1, -1,
                              0, set03});
  std::string csv = ConsideredToCsv(events, 0);
  EXPECT_NE(csv.find("1.000,periodic,0-3"), std::string::npos);
  EXPECT_EQ(csv.find("2.000"), std::string::npos);  // Other initiator excluded.
}

TEST(HeatmapTest, ConsideredUnionIgnoresWakeups) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{0, TraceEvent::Kind::kConsidered,
                              static_cast<uint8_t>(ConsideredKind::kPeriodicBalance), 0, -1, -1,
                              0, CpuSet::FirstN(2)});
  events.push_back(TraceEvent{1, TraceEvent::Kind::kConsidered,
                              static_cast<uint8_t>(ConsideredKind::kWakeup), 0, -1, -1, 0,
                              CpuSet::FirstN(8)});
  CpuSet all = ConsideredUnion(events, 0);
  EXPECT_EQ(all.Count(), 2);
}

TEST(HeatmapTest, ConsideredAsciiMarksColumns) {
  std::vector<TraceEvent> events;
  CpuSet pair;
  pair.Set(0);
  pair.Set(1);
  events.push_back(TraceEvent{0, TraceEvent::Kind::kConsidered,
                              static_cast<uint8_t>(ConsideredKind::kIdleBalance), 0, -1, -1, 0,
                              pair});
  std::string art = ConsideredToAscii(events, 0, 3, 10);
  // cpus 0 and 1 marked, cpu 2 not.
  EXPECT_NE(art.find("0 ||"), std::string::npos);
  EXPECT_NE(art.find("1 ||"), std::string::npos);
}

}  // namespace
}  // namespace wcores
