#include "src/tools/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "src/sim/simulator.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

std::vector<TraceEvent> SampleEvents() {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{Milliseconds(1), TraceEvent::Kind::kNrRunning, 0, 3, -1, -1, 2.0,
                              CpuSet{}});
  events.push_back(TraceEvent{Milliseconds(2), TraceEvent::Kind::kLoad, 0, 3, -1, -1, 123.456,
                              CpuSet{}});
  CpuSet considered;
  considered.Set(0);
  considered.Set(1);
  considered.Set(5);
  events.push_back(TraceEvent{Milliseconds(3), TraceEvent::Kind::kConsidered,
                              static_cast<uint8_t>(ConsideredKind::kNohzBalance), 0, -1, -1, 0,
                              considered});
  events.push_back(TraceEvent{Milliseconds(4), TraceEvent::Kind::kMigration,
                              static_cast<uint8_t>(MigrationReason::kIdleBalance), 2, 7, 42, 0,
                              CpuSet{}});
  return events;
}

TEST(TraceIoTest, CsvHasHeaderAndOneLinePerEvent) {
  std::string csv = TraceToCsv(SampleEvents());
  EXPECT_EQ(csv.substr(0, 3), "ns,");
  int lines = 0;
  for (char c : csv) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 5);  // Header + 4 events.
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  std::vector<TraceEvent> original = SampleEvents();
  std::vector<TraceEvent> loaded;
  ASSERT_TRUE(TraceFromCsv(TraceToCsv(original), &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].when, original[i].when) << i;
    EXPECT_EQ(loaded[i].kind, original[i].kind) << i;
    EXPECT_EQ(loaded[i].sub, original[i].sub) << i;
    EXPECT_EQ(loaded[i].cpu, original[i].cpu) << i;
    EXPECT_EQ(loaded[i].cpu2, original[i].cpu2) << i;
    EXPECT_EQ(loaded[i].tid, original[i].tid) << i;
    EXPECT_DOUBLE_EQ(loaded[i].value, original[i].value) << i;
    EXPECT_EQ(loaded[i].considered, original[i].considered) << i;
  }
}

TEST(TraceIoTest, RejectsMalformedInput) {
  std::vector<TraceEvent> events;
  EXPECT_FALSE(TraceFromCsv("ns,kind\n1,Z,0,0,0,0,0,\n", &events));
  EXPECT_FALSE(TraceFromCsv("header\nnot,enough,fields\n", &events));
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::vector<TraceEvent> events;
  ASSERT_TRUE(TraceFromCsv(TraceToCsv({}), &events));
  EXPECT_TRUE(events.empty());
}

TEST(TraceIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  WriteTraceCsv(path, SampleEvents());
  std::vector<TraceEvent> loaded;
  ASSERT_TRUE(LoadTraceCsv(path, &loaded));
  EXPECT_EQ(loaded.size(), 4u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, LoadMissingFileFails) {
  std::vector<TraceEvent> events;
  EXPECT_FALSE(LoadTraceCsv("/nonexistent/trace.csv", &events));
}

TEST(TraceIoTest, SummaryCountsAndRate) {
  TraceSummary summary = SummarizeTrace(SampleEvents());
  EXPECT_EQ(summary.nr_running_events, 1u);
  EXPECT_EQ(summary.load_events, 1u);
  EXPECT_EQ(summary.considered_events, 1u);
  EXPECT_EQ(summary.migration_events, 1u);
  EXPECT_EQ(summary.Total(), 4u);
  EXPECT_EQ(summary.first, Milliseconds(1));
  EXPECT_EQ(summary.last, Milliseconds(4));
  // 4 events over 3ms.
  EXPECT_NEAR(summary.EventsPerSecond(), 4.0 / 0.003, 1.0);
}

TEST(TraceIoTest, EndToEndSimulationTraceRoundTrips) {
  Topology topo = Topology::Flat(1, 2, 1);
  EventRecorder recorder;
  Simulator::Options opts;
  Simulator sim(topo, opts, &recorder);
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
      ComputeAction{Milliseconds(3)}, SleepAction{Milliseconds(1)},
      ComputeAction{Milliseconds(3)}}));
  sim.RunUntilAllExited(Seconds(1));
  ASSERT_FALSE(recorder.events().empty());
  std::vector<TraceEvent> loaded;
  ASSERT_TRUE(TraceFromCsv(TraceToCsv(recorder.events()), &loaded));
  EXPECT_EQ(loaded.size(), recorder.events().size());
  EXPECT_EQ(SummarizeTrace(loaded).Total(), SummarizeTrace(recorder.events()).Total());
}

}  // namespace
}  // namespace wcores
