// Tests for the shared bench flag parsing and the BENCH_*.json reporter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/telemetry/chrome_trace.h"

namespace wcores {
namespace {

// argv helper: gtest owns real argv, so fabricate one.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (std::string& s : strings) {
      ptrs.push_back(s.data());
    }
  }
  int argc() { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

TEST(BenchArgs, SharedFlags) {
  Argv a({"bin", "--out=artifacts", "--telemetry"});
  BenchOptions opts = ParseBenchArgs(a.argc(), a.argv());
  EXPECT_EQ(opts.out_dir, "artifacts");
  EXPECT_EQ(opts.telemetry_dir, "artifacts/telemetry");
}

TEST(BenchArgs, TelemetryExplicitDir) {
  Argv a({"bin", "--telemetry=tdir"});
  BenchOptions opts = ParseBenchArgs(a.argc(), a.argv());
  EXPECT_EQ(opts.out_dir, "out");
  EXPECT_EQ(opts.telemetry_dir, "tdir");
}

TEST(BenchArgs, ExtraFlagsParsed) {
  std::string threads, scale;
  Argv a({"bin", "--threads=4", "--out=o", "--scale=0.5"});
  BenchOptions opts = ParseBenchArgs(a.argc(), a.argv(),
                                     {{"threads", &threads, "worker threads"},
                                      {"scale", &scale, "workload scale"}});
  EXPECT_EQ(opts.out_dir, "o");
  EXPECT_EQ(threads, "4");
  EXPECT_EQ(scale, "0.5");
}

TEST(BenchArgsDeathTest, UnknownFlagIsHardError) {
  Argv a({"bin", "--bogus=1"});
  EXPECT_EXIT(ParseBenchArgs(a.argc(), a.argv()), ::testing::ExitedWithCode(2), "unknown argument");
}

TEST(BenchArgsDeathTest, ExtraFlagsListedInUsage) {
  std::string threads;
  Argv a({"bin", "--bogus=1"});
  EXPECT_EXIT(ParseBenchArgs(a.argc(), a.argv(), {{"threads", &threads, "worker threads"}}),
              ::testing::ExitedWithCode(2), "--threads=V");
}

TEST(BenchNumericFlags, ParsesValidValues) {
  EXPECT_EQ(ParseIntFlag("threads", "", 8, 1, 64), 8);  // Empty = default.
  EXPECT_EQ(ParseIntFlag("threads", "16", 8, 1, 64), 16);
  EXPECT_EQ(ParseIntFlag("delta", "-3", 0, -10, 10), -3);
  EXPECT_EQ(ParseU64Flag("seed", "", 42u), 42u);
  EXPECT_EQ(ParseU64Flag("seed", "18446744073709551615", 0), UINT64_MAX);
  EXPECT_EQ(ParseDoubleFlag("scale", "", 0.25, 0.0, 10.0), 0.25);
  EXPECT_EQ(ParseDoubleFlag("scale", "0.5", 0.25, 0.0, 10.0), 0.5);
}

TEST(BenchNumericFlagsDeathTest, MalformedValuesAreHardErrors) {
  // The bugfix contract: a typo'd numeric flag takes the same exit(2)
  // hard-error path as an unknown flag — never an uncaught std::stoi throw.
  EXPECT_EXIT(ParseIntFlag("threads", "abc", 1, 1, 64), ::testing::ExitedWithCode(2),
              "invalid value 'abc' for --threads");
  EXPECT_EXIT(ParseIntFlag("threads", "12junk", 1, 1, 64), ::testing::ExitedWithCode(2),
              "invalid value");
}

TEST(BenchNumericFlagsDeathTest, RangeViolationsAreHardErrors) {
  EXPECT_EXIT(ParseIntFlag("threads", "0", 1, 1, 64), ::testing::ExitedWithCode(2),
              "an integer in \\[1, 64\\]");
  EXPECT_EXIT(ParseIntFlag("threads", "9999999999999999999999", 1, 1, 64),
              ::testing::ExitedWithCode(2), "invalid value");
  EXPECT_EXIT(ParseU64Flag("seed", "-1", 0), ::testing::ExitedWithCode(2),
              "an unsigned integer");
  EXPECT_EXIT(ParseU64Flag("seed", "1.5", 0), ::testing::ExitedWithCode(2),
              "an unsigned integer");
  EXPECT_EXIT(ParseDoubleFlag("scale", "nan", 1, 0, 10), ::testing::ExitedWithCode(2),
              "a number in");
  EXPECT_EXIT(ParseDoubleFlag("scale", "11", 1, 0, 10), ::testing::ExitedWithCode(2),
              "a number in \\[0, 10\\]");
  EXPECT_EXIT(ParseDoubleFlag("scale", "x", 1, 0, 10), ::testing::ExitedWithCode(2),
              "invalid value 'x' for --scale");
}

TEST(BenchHostCores, AlwaysAtLeastOne) {
  // The detection-failure bugfix: whatever hardware_concurrency() says, the
  // value recorded and used is >= 1, and `detected` says which case we hit.
  HostCores host = DetectHostCores();
  EXPECT_GE(host.cores, 1);
  if (!host.detected) {
    EXPECT_EQ(host.cores, 1);  // Fallback value is what gets reported.
  }
}

TEST(BenchJson, EscapesStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(BenchJson, NumbersRoundTrip) {
  EXPECT_EQ(JsonNumber(4), "4");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  // A value %g cannot represent exactly falls back to %.17g.
  double v = 1.0 / 3.0;
  EXPECT_EQ(std::strtod(JsonNumber(v).c_str(), nullptr), v);
}

TEST(BenchJson, ReportIsValidJson) {
  BenchReport report;
  report.bench = "unit";
  report.context["build"] = "test";
  report.context_num["host_cores"] = 8;
  BenchReport::Row row;
  row.name = "case/one";
  row.metrics["wall_ms"] = 12.5;
  row.labels["hash"] = "00ff";
  report.rows.push_back(row);
  row.name = "case/two";
  report.rows.push_back(row);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(report.ToJson(), &root, &error)) << error;
  const JsonValue* bench = root.Find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "unit");
  const JsonValue* results = root.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 2u);
  const JsonValue* wall = results->array[0].Find("wall_ms");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(wall->number, 12.5);
  const JsonValue* ctx = root.Find("context");
  ASSERT_NE(ctx, nullptr);
  ASSERT_NE(ctx->Find("host_cores"), nullptr);
  EXPECT_DOUBLE_EQ(ctx->Find("host_cores")->number, 8);
}

}  // namespace
}  // namespace wcores
