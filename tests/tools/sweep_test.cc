// Unit tests for the sweep subsystem: the trace digest, scenario running,
// and the parallel runner's ordering/clamping behavior. The heavyweight
// determinism properties live in tests/integration/determinism_test.cc.
#include <gtest/gtest.h>

#include "src/tools/sweep/scenario.h"
#include "src/tools/sweep/sweep.h"
#include "src/tools/sweep/trace_hash.h"

namespace wcores {
namespace {

TEST(Fnv1a, EmptyIsOffsetBasis) {
  Fnv1a fnv;
  EXPECT_EQ(fnv.digest(), Fnv1a::kOffset);
}

TEST(Fnv1a, OrderSensitive) {
  Fnv1a ab;
  ab.Mix(1);
  ab.Mix(2);
  Fnv1a ba;
  ba.Mix(2);
  ba.Mix(1);
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(Fnv1a, NegativeZeroCollapses) {
  Fnv1a pos;
  pos.MixDouble(0.0);
  Fnv1a neg;
  neg.MixDouble(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());
}

TEST(Fnv1a, OneUlpChangesDigest) {
  Fnv1a a;
  a.MixDouble(1.5);
  Fnv1a b;
  b.MixDouble(1.5000000000000002);  // 1.5 + 1 ulp.
  EXPECT_NE(a.digest(), b.digest());
}

TEST(TraceHashSink, IdenticalStreamsIdenticalDigests) {
  TraceHashSink a;
  TraceHashSink b;
  for (TraceHashSink* sink : {&a, &b}) {
    sink->OnNrRunning(10, 0, 2);
    sink->OnSwitchIn(10, 0, 5, 3);
    sink->OnLoad(11, 0, 1.25);
    sink->OnIdleEnter(12, 1);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.events(), 4u);
  EXPECT_EQ(b.events(), 4u);
}

TEST(TraceHashSink, CallbackKindIsTagged) {
  // Same payload through two different callbacks must not collide.
  TraceHashSink enter;
  enter.OnIdleEnter(10, 3);
  TraceHashSink nr;
  nr.OnNrRunning(10, 3, 0);
  EXPECT_NE(enter.digest(), nr.digest());
}

TEST(Scenario, RunProducesActivity) {
  Scenario s;
  s.name = "unit";
  s.topo = Scenario::Topo::kFlat1x4;
  s.workload = Scenario::Workload::kRandomMix;
  s.mix_threads = 8;
  s.seed = 5;
  s.horizon = Milliseconds(50);
  ScenarioResult r = RunScenario(s);
  EXPECT_EQ(r.name, "unit");
  EXPECT_GT(r.trace_events, 0u);
  EXPECT_GT(r.sim_events, 0u);
  EXPECT_GT(r.context_switches, 0u);
  EXPECT_GT(r.virtual_seconds, 0.0);
}

TEST(Sweep, ResultsKeepInputOrder) {
  std::vector<Scenario> scenarios = RandomScenarios(11, 5);
  for (Scenario& s : scenarios) {
    s.horizon = Milliseconds(20);  // Keep the unit test fast.
  }
  SweepOptions opts;
  opts.threads = 4;
  SweepReport report = RunSweep(scenarios, opts);
  ASSERT_EQ(report.results.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(report.results[i].name, scenarios[i].name);
  }
  EXPECT_GT(report.TotalSimEvents(), 0u);
  EXPECT_GT(report.wall_ms, 0.0);
}

TEST(Sweep, ThreadCountClampedToScenarios) {
  std::vector<Scenario> scenarios = RandomScenarios(3, 2);
  for (Scenario& s : scenarios) {
    s.horizon = Milliseconds(10);
  }
  SweepOptions opts;
  opts.threads = 64;
  SweepReport report = RunSweep(scenarios, opts);
  EXPECT_EQ(report.threads, 2);
  opts.threads = 0;
  report = RunSweep(scenarios, opts);
  EXPECT_EQ(report.threads, 1);
}

TEST(SweepDeathTest, DuplicateScenarioNamesAreRejected) {
  // Scenario::name keys result rows, golden tables, and the fleet receipt
  // store; a silent alias would corrupt all three.
  std::vector<Scenario> scenarios = RandomScenarios(5, 2);
  scenarios[1].name = scenarios[0].name;
  EXPECT_DEATH(RunSweep(scenarios, SweepOptions{}), "duplicate scenario name");
}

TEST(Sweep, EmptyBatch) {
  SweepReport report = RunSweep({}, SweepOptions{});
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(report.CombinedHash(), Fnv1a::kOffset);
  EXPECT_EQ(report.TotalSimEvents(), 0u);
}

TEST(Sweep, FigureScenariosCoverStockAndFixed) {
  std::vector<Scenario> scenarios = FigureScenarios(1.0);
  ASSERT_EQ(scenarios.size() % 2, 0u);
  for (size_t i = 0; i < scenarios.size(); i += 2) {
    EXPECT_NE(scenarios[i].name.find("/stock"), std::string::npos);
    EXPECT_NE(scenarios[i + 1].name.find("/fixed"), std::string::npos);
    EXPECT_FALSE(scenarios[i].features.fix_group_imbalance);
    EXPECT_TRUE(scenarios[i + 1].features.fix_group_imbalance);
  }
}

}  // namespace
}  // namespace wcores
