// Bit-exactness regression for CfsPolicy behind the policy interface.
//
// The arena refactor moved every scheduling decision behind virtual
// SchedPolicy hooks whose defaults delegate to the Scheduler's public CFS
// mechanism methods. Three things pin that this is a pure refactor:
//
//  1. The twelve pre-arena golden trace hashes, re-asserted here with the
//     policy explicitly routed through the registry ("cfs"), so the
//     registry-owned CfsPolicy — not just the scheduler's built-in default —
//     reproduces the seed traces byte-identically.
//  2. The full 16-scenario sweep matrix hashed twice, once per CFS
//     ownership path (built-in default vs. registry instance): combined
//     and per-scenario hashes must match exactly.
//  3. An event-level differential: identical runs on the two paths with a
//     full EventRecorder attached; on any divergence the failure message
//     prints the FIRST diverging event (index, time, kind, cpu, tid,
//     value), which is the diagnostic a hash alone cannot give.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/modsched/policy_registry.h"
#include "src/sim/simulator.h"
#include "src/simkit/rng.h"
#include "src/tools/recorder.h"
#include "src/tools/sweep/scenario.h"
#include "src/tools/sweep/sweep.h"
#include "tests/modsched/conformance_harness.h"

namespace wcores {
namespace {

// The pre-arena seed goldens (tests/integration/determinism_test.cc), which
// date from before SchedPolicy existed. Duplicated on purpose: if both
// copies are "regenerated" in one commit, the diff shows it.
struct Golden {
  const char* name;
  uint64_t hash;
};
constexpr Golden kSeedGoldens[] = {
    {"fig2_make_r/stock", 0xcf0d9850fa7837c7ULL},
    {"fig2_make_r/fixed", 0xb11a322f54385baaULL},
    {"fig3_tpch_q18/stock", 0x13d8558978a9f01dULL},
    {"fig3_tpch_q18/fixed", 0x329eae5dcecb0cf8ULL},
    {"table1_nas_cg/stock", 0xf6aae0c10484b70fULL},
    {"table1_nas_cg/fixed", 0xf6aae0c10484b70fULL},
    {"table3_nas_lu/stock", 0xdb6f8a5275531cd7ULL},
    {"table3_nas_lu/fixed", 0xcd8ca251dff34cf4ULL},
    {"random_mix/stock", 0x14ccd2d2fe6f32a0ULL},
    {"random_mix/fixed", 0xcf17e07bf6a12b97ULL},
    {"random/99-0", 0xb4d23d40a72170d5ULL},
    {"random/99-1", 0x2bec4c17f66584e5ULL},
};

std::vector<Scenario> GoldenMatrix() {
  std::vector<Scenario> scenarios = FigureScenarios(0.1);
  for (Scenario& s : RandomScenarios(99, 2)) {
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

TEST(CfsBitExact, RegistryCfsReproducesSeedGoldens) {
  std::map<std::string, uint64_t> expected;
  for (const Golden& g : kSeedGoldens) {
    expected[g.name] = g.hash;
  }
  for (Scenario& s : GoldenMatrix()) {
    SCOPED_TRACE(s.name);
    s.policy = "cfs";  // Explicitly through the registry.
    ScenarioResult r = RunScenario(s);
    auto it = expected.find(s.name);
    ASSERT_NE(it, expected.end()) << "no seed golden for " << s.name;
    EXPECT_EQ(r.trace_hash, it->second)
        << "CfsPolicy behind the interface diverged from the pre-arena trace";
  }
}

TEST(CfsBitExact, BuiltinAndRegistryPathsHashIdenticallyAcrossSweep) {
  // The full sweep-sized matrix (16 scenarios: 10 figure + 6 random), at a
  // test-friendly scale.
  auto matrix = [](const std::string& policy) {
    std::vector<Scenario> scenarios = FigureScenarios(0.1);
    for (Scenario& s : RandomScenarios(99, 6)) {
      scenarios.push_back(std::move(s));
    }
    for (Scenario& s : scenarios) {
      s.policy = policy;  // "" = built-in default, "cfs" = registry instance.
    }
    return scenarios;
  };
  SweepOptions opts;
  opts.threads = 1;
  SweepReport builtin = RunSweep(matrix(""), opts);
  SweepReport registry = RunSweep(matrix("cfs"), opts);
  ASSERT_EQ(builtin.results.size(), 16u);
  ASSERT_EQ(registry.results.size(), builtin.results.size());
  for (size_t i = 0; i < builtin.results.size(); ++i) {
    EXPECT_EQ(builtin.results[i].trace_hash, registry.results[i].trace_hash)
        << builtin.results[i].name << ": ownership path changed the trace";
    EXPECT_EQ(builtin.results[i].trace_events, registry.results[i].trace_events)
        << builtin.results[i].name;
  }
  EXPECT_EQ(builtin.CombinedHash(), registry.CombinedHash());
}

const char* KindName(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kNrRunning: return "nr_running";
    case TraceEvent::Kind::kLoad: return "load";
    case TraceEvent::Kind::kConsidered: return "considered";
    case TraceEvent::Kind::kMigration: return "migration";
    case TraceEvent::Kind::kSwitchIn: return "switch_in";
    case TraceEvent::Kind::kSwitchOut: return "switch_out";
    case TraceEvent::Kind::kWakeupLatency: return "wakeup_latency";
    case TraceEvent::Kind::kIdleEnter: return "idle_enter";
    case TraceEvent::Kind::kIdleExit: return "idle_exit";
  }
  return "?";
}

std::string Describe(size_t i, const TraceEvent& e) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "event[%zu] t=%lld kind=%s sub=%u cpu=%d cpu2=%d tid=%d value=%.17g",
                i, static_cast<long long>(e.when), KindName(e.kind), e.sub, e.cpu, e.cpu2,
                e.tid, e.value);
  return buf;
}

// The same trace event, field by field.
bool SameEvent(const TraceEvent& a, const TraceEvent& b) {
  return a.when == b.when && a.kind == b.kind && a.sub == b.sub && a.cpu == b.cpu &&
         a.cpu2 == b.cpu2 && a.tid == b.tid && a.value == b.value && a.considered == b.considered;
}

// Event-level differential between the two CFS ownership paths. A hash
// mismatch says "something moved"; this test says *what* moved first.
TEST(CfsBitExact, FirstDivergingEventIsPrintedOnMismatch) {
  uint64_t base = conformance::BaseSeed() + 31000ULL;
  for (int run = 0; run < 3; ++run) {
    uint64_t seed = base + static_cast<uint64_t>(run);
    SCOPED_TRACE(conformance::ReproCommand("cfs", seed));

    auto record = [&](SchedPolicy* policy) {
      uint64_t sm = seed;
      Rng rng(SplitMix64(sm));
      Topology topo = conformance::RandomTopology(rng);
      Simulator::Options opts;
      opts.features = conformance::RandomFeatures(rng);
      opts.seed = seed;
      opts.policy = policy;
      auto recorder = std::make_unique<EventRecorder>();
      Simulator sim(topo, opts, recorder.get());
      conformance::SpawnRandomMix(sim, rng, static_cast<int>(rng.NextInRange(6, 48)));
      sim.Run(Milliseconds(120));
      EXPECT_EQ(recorder->dropped(), 0u);
      return recorder;
    };

    std::unique_ptr<EventRecorder> builtin = record(nullptr);
    std::unique_ptr<SchedPolicy> cfs = CreateSchedPolicy("cfs");
    ASSERT_NE(cfs, nullptr);
    std::unique_ptr<EventRecorder> registry = record(cfs.get());

    const std::vector<TraceEvent>& a = builtin->events();
    const std::vector<TraceEvent>& b = registry->events();
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(SameEvent(a[i], b[i]))
          << "first diverging event:\n  builtin:  " << Describe(i, a[i])
          << "\n  registry: " << Describe(i, b[i]);
    }
    ASSERT_EQ(a.size(), b.size())
        << "traces are a prefix of each other; first extra event:\n  "
        << (a.size() > b.size() ? Describe(n, a[n]) : Describe(n, b[n]));
    ASSERT_GT(a.size(), 1000u) << "differential run produced too little trace to mean anything";
  }
}

}  // namespace
}  // namespace wcores
