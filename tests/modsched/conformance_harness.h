// Reusable cross-policy conformance harness.
//
// Every scheduling policy in the registry (src/modsched/policy_registry.h)
// is run through the same machinery: seeded random topologies, feature
// sets, and workload mixes, with the *mechanism-level* invariants checked
// at fixed virtual-time intervals. These are the guarantees the core owes
// regardless of which policy is making decisions:
//
//  * Thread census — every alive thread is exactly one of running / queued /
//    blocked; per-cpu counts match rq nr_running; the running entity matches
//    CurrentThread.
//  * Placement legality — every on_rq entity sits on an online cpu inside
//    its affinity mask (or anywhere online once the mask has no online
//    member).
//  * Per-cfs_rq min_vruntime never decreases (the runqueue owns vruntime
//    accounting even when a policy picks non-leftmost entities).
//  * Load-sum conservation — cached RqLoad equals a from-scratch
//    recomputation, bit for bit; same for the balancer group-stats memo.
//  * Runqueue structure (red-black invariants, weight accounting) and the
//    incremental idle index vs. a linear-scan oracle.
//  * Sanity-checker parity — Algorithm 2's CheckOnce fires iff an
//    independent scan finds an idle core next to a stealable backlog. (How
//    *often* it fires is the policy's business — COREIDLE packs on purpose —
//    but the detector and the scan must always agree.)
//
// Seeding follows fuzz_invariants_test.cc: WC_FUZZ_SEED (env) overrides the
// base seed and every failure message carries the repro command.
#ifndef TESTS_MODSCHED_CONFORMANCE_HARNESS_H_
#define TESTS_MODSCHED_CONFORMANCE_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/modsched/policy_registry.h"
#include "src/sim/simulator.h"
#include "src/simkit/rng.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"
#include "src/workloads/behaviors.h"

namespace wcores {
namespace conformance {

inline uint64_t BaseSeed() {
  const char* env = std::getenv("WC_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 20260808ULL;
}

inline std::string ReproCommand(const std::string& policy, uint64_t seed) {
  return "policy=" + policy + "; reproduce with: WC_FUZZ_SEED=" + std::to_string(seed) +
         " ctest --test-dir build -R modsched.PolicyConformance --output-on-failure";
}

inline Topology RandomTopology(Rng& rng) {
  switch (rng.NextBelow(4)) {
    case 0: return Topology::Flat(1, 4);
    case 1: return Topology::Flat(2, 4);
    case 2: return Topology::Flat(4, 8);
    default: return Topology::Bulldozer8x8();
  }
}

inline SchedFeatures RandomFeatures(Rng& rng) {
  SchedFeatures f;
  f.fix_group_imbalance = rng.NextBool(0.5);
  f.fix_group_construction = rng.NextBool(0.5);
  f.fix_overload_wakeup = rng.NextBool(0.5);
  f.fix_missing_domains = rng.NextBool(0.5);
  f.autogroup_enabled = rng.NextBool(0.8);
  return f;
}

inline void SpawnRandomMix(Simulator& sim, Rng& rng, int threads) {
  int n_cores = sim.topo().n_cores();
  AutogroupId groups[3] = {kRootAutogroup, sim.CreateAutogroup(), sim.CreateAutogroup()};
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = static_cast<CpuId>(rng.NextBelow(static_cast<uint64_t>(n_cores)));
    params.nice = static_cast<int>(rng.NextBelow(7)) - 3;
    params.autogroup = groups[rng.NextBelow(3)];
    if (rng.NextBool(0.25)) {
      params.affinity =
          CpuSet::Single(static_cast<CpuId>(rng.NextBelow(static_cast<uint64_t>(n_cores))));
    }
    std::vector<Action> script;
    if (rng.NextBool(0.3)) {
      script = {ComputeAction{Seconds(1)}};  // Hog: outlives the horizon.
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script)), params);
    } else {
      script = {ComputeAction{rng.NextTime(Microseconds(200), Milliseconds(3))},
                SleepAction{rng.NextTime(Microseconds(100), Milliseconds(2))}};
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script), /*repeat=*/1000), params);
    }
  }
}

// The idle-index oracle: from-scratch linear scan, original tie-break.
inline CpuId ScanLongestIdle(const Scheduler& sched, int n_cores) {
  CpuId best = kInvalidCpu;
  Time best_since = kTimeNever;
  for (CpuId cpu = 0; cpu < n_cores; ++cpu) {
    if (!sched.IsOnline(cpu) || !sched.IsIdleCpu(cpu)) {
      continue;
    }
    if (sched.IdleSince(cpu) < best_since) {
      best_since = sched.IdleSince(cpu);
      best = cpu;
    }
  }
  return best;
}

// One mechanism-invariant sweep over the whole machine at the current
// instant. Policy-agnostic by construction: nothing here asks who decided a
// placement, only whether the core's bookkeeping is coherent and legal.
class PolicyInvariantChecker {
 public:
  explicit PolicyInvariantChecker(Simulator* sim)
      : sim_(sim), checker_(sim), last_min_vruntime_(sim->topo().n_cores(), 0) {}

  int checks() const { return checks_; }
  int violations_seen() const { return violations_seen_; }

  void Check() {
    checks_ += 1;
    const Scheduler& sched = sim_->sched();
    const Time now = sim_->Now();
    const int n_cores = sim_->topo().n_cores();

    // Census, classified from the entity side.
    std::vector<int> on_rq_count(n_cores, 0);
    std::vector<int> running_count(n_cores, 0);
    for (ThreadId tid = 0; tid < sched.ThreadCount(); ++tid) {
      const SchedEntity& se = sched.Entity(tid);
      if (se.running) {
        ASSERT_TRUE(se.on_rq) << "tid " << tid << " running but not on_rq";
      }
      if (se.on_rq) {
        ASSERT_GE(se.cpu, 0) << "tid " << tid;
        ASSERT_LT(se.cpu, n_cores) << "tid " << tid;
        // Placement legality: online, and inside the affinity mask unless
        // the mask has no online member at this instant.
        ASSERT_TRUE(sched.IsOnline(se.cpu)) << "tid " << tid << " queued on offline cpu";
        ASSERT_TRUE(se.affinity.Test(se.cpu) || (se.affinity & sched.OnlineCpus()).Empty())
            << "tid " << tid << " placed outside its affinity mask on cpu " << se.cpu;
        on_rq_count[se.cpu] += 1;
        if (se.running) {
          running_count[se.cpu] += 1;
          ASSERT_EQ(sched.CurrentThread(se.cpu), tid)
              << "tid " << tid << " claims to run on cpu " << se.cpu;
        }
      }
    }
    for (CpuId cpu = 0; cpu < n_cores; ++cpu) {
      ASSERT_EQ(on_rq_count[cpu], sched.NrRunning(cpu))
          << "cpu " << cpu << ": entity census disagrees with rq nr_running at t=" << now;
      ASSERT_LE(running_count[cpu], 1) << "cpu " << cpu << ": two running entities";
      ThreadId curr = sched.CurrentThread(cpu);
      ASSERT_EQ(running_count[cpu], curr != kInvalidThread ? 1 : 0) << "cpu " << cpu;

      ASSERT_TRUE(sched.ValidateRq(cpu)) << "cpu " << cpu << " rq invariants broken at t=" << now;

      Time mv = sched.MinVruntime(cpu);
      ASSERT_GE(mv, last_min_vruntime_[cpu]) << "cpu " << cpu << " min_vruntime went backwards";
      last_min_vruntime_[cpu] = mv;

      ASSERT_EQ(sched.RqLoad(now, cpu), sched.RqLoadRecomputed(now, cpu))
          << "cpu " << cpu << " cached load diverged from recomputation at t=" << now;
    }

    ASSERT_TRUE(sched.ValidateGroupCache(now))
        << "group-stats memo diverged from recomputation at t=" << now;
    ASSERT_TRUE(sched.ValidateIdleIndex()) << "idle index diverged at t=" << now;
    ASSERT_EQ(sched.LongestIdleCpu(sim_->topo().AllCpus()), ScanLongestIdle(sched, n_cores))
        << "indexed LongestIdleCpu disagrees with linear scan at t=" << now;

    // Sanity-checker parity with an independent scan.
    bool expect_violation = false;
    for (CpuId idle : sched.OnlineCpus()) {
      if (sched.NrRunning(idle) >= 1) {
        continue;
      }
      for (CpuId busy : sched.OnlineCpus()) {
        if (busy != idle && sched.NrRunning(busy) >= 2 && sched.CanSteal(idle, busy)) {
          expect_violation = true;
          break;
        }
      }
      if (expect_violation) {
        break;
      }
    }
    CpuId idle_cpu = kInvalidCpu;
    CpuId overloaded_cpu = kInvalidCpu;
    bool fired = checker_.CheckOnce(&idle_cpu, &overloaded_cpu);
    ASSERT_EQ(fired, expect_violation) << "sanity checker disagrees with independent scan";
    if (fired) {
      ASSERT_TRUE(sched.IsIdleCpu(idle_cpu));
      ASSERT_GE(sched.NrRunning(overloaded_cpu), 2);
      ASSERT_TRUE(sched.CanSteal(idle_cpu, overloaded_cpu));
      violations_seen_ += 1;
    }
  }

 private:
  Simulator* sim_;
  SanityChecker checker_;
  std::vector<Time> last_min_vruntime_;
  int checks_ = 0;
  int violations_seen_ = 0;
};

// Re-arming check callback. Must stay two pointers wide to fit
// InlineCallback's inline buffer, so the cadence is fixed here rather than
// carried in the struct: one sweep every kCheckInterval (odd, so it drifts
// across tick boundaries) until kCheckHorizon.
constexpr Time kCheckInterval = Microseconds(997);
constexpr Time kCheckHorizon = Milliseconds(200);

struct RearmingCheck {
  PolicyInvariantChecker* checker;
  Simulator* sim;
  void operator()() const {
    checker->Check();
    if (sim->Now() < kCheckHorizon && !::testing::Test::HasFatalFailure()) {
      sim->After(kCheckInterval, *this);
    }
  }
};

}  // namespace conformance
}  // namespace wcores

#endif  // TESTS_MODSCHED_CONFORMANCE_HARNESS_H_
