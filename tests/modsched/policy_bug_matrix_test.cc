// Which of the paper's four bugs does each policy exhibit?
//
// The directed scenarios from §3 (Fig. 2 group imbalance, Table 1 group
// construction, Fig. 3 overload-on-wakeup, Fig. 5 missing domains) are run
// under every registered policy, probing each bug's observable signature —
// the same signatures tests/integration/bugs_test.cc pins for stock-vs-fixed
// CFS. The expectation table below is checked in, so a policy change that
// silently acquires or sheds one of the pathologies fails here.
//
// The "fixed" row ablates per bug, the paper's own methodology: each probe
// enables only the fix flag targeting the bug it probes, everything else
// stock. Composing all four fixes is NOT equivalent — the min-load metric
// (the group-imbalance fix) halves the gap to the busiest group's
// *least*-loaded cpu, and when a pinned group is internally uneven that
// budget drops below one autogroup-divided thread load, so AllFixed leaves
// the pinned NAS run confined even though fix_group_construction alone
// spreads it. The ablation keeps each cell about one bug.
//
// Why the table looks the way it does:
//  * cfs/stock exhibits all four — that is the paper.
//  * cfs/fixed exhibits none — each paper patch kills the bug it targets.
//  * o1 (Linux 2.6.8) places wakes on the previous cpu and trusts the
//    balancer: it stacks wakeups (overload-on-wakeup by design) and, since
//    it inherits the stock CFS balancers, keeps their group-imbalance,
//    group-construction, and missing-domain blind spots.
//  * coreidle packs onto a consolidated active set instead of waking onto
//    busy prev cpus, and its active set ignores domains entirely, so the
//    wakeup and hotplug signatures disappear; but packing plus the stock
//    balancers it inherits keeps the pinned two-node NAS run on one node —
//    the same observable as the construction bug, from consolidation
//    rather than from Core 0's broken group list.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/modsched/policy_registry.h"
#include "src/sim/simulator.h"
#include "src/workloads/behaviors.h"
#include "src/workloads/make_r.h"
#include "src/workloads/nas.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

namespace wcores {
namespace {

// One row per (policy, feature set) the arena cares about. "fixed" only
// exists for cfs: the fix flags patch CFS decision paths, so for policies
// that replace those paths the stock row is the policy's behavior.
struct BugMatrixRow {
  const char* policy;        // Registry name; "" = built-in default CFS.
  bool fixed_features;       // Each probe enables the fix for its own bug.
  bool group_imbalance;      // Fig. 2: idle cores while autogrouped make overloads others.
  bool group_construction;   // Table 1: pinned-to-two-nodes app runs on one node.
  bool overload_wakeup;      // Fig. 3: wakes land on busy cores despite idle ones.
  bool missing_domains;      // Fig. 5: after hotplug, threads never leave spawn node.
};

constexpr BugMatrixRow kExpected[] = {
    {"cfs", false, true, true, true, true},
    {"cfs", true, false, false, false, false},
    {"o1", false, true, true, true, true},
    {"coreidle", false, false, true, false, false},
};

// The feature set a probe runs under: stock, except a "fixed" row turns on
// the one flag that patches the bug this probe measures.
SchedFeatures MatrixFeatures(const BugMatrixRow& row, bool SchedFeatures::* fix) {
  SchedFeatures f;
  if (row.fixed_features) {
    f.*fix = true;
  }
  return f;
}

// The simulator borrows both the topology and the policy, so all three live
// together, initialized in place (no return-by-value: a move would relocate
// the topology the simulator holds a reference to). Declaration order is
// lifetime order; the simulator is destroyed first.
struct PolicyRun {
  Topology topo = Topology::Bulldozer8x8();
  std::unique_ptr<SchedPolicy> policy;
  std::unique_ptr<Simulator> sim;

  PolicyRun(const BugMatrixRow& row, SchedFeatures features, uint64_t seed,
            bool autogroup = true) {
    Simulator::Options opts;
    opts.features = features;
    opts.features.autogroup_enabled = autogroup;
    opts.seed = seed;
    if (row.policy[0] != '\0') {
      policy = CreateSchedPolicy(row.policy);
      EXPECT_NE(policy, nullptr) << row.policy;
      opts.policy = policy.get();
    }
    sim = std::make_unique<Simulator>(topo, opts);
  }
};

std::string RowName(const BugMatrixRow& row) {
  return std::string(row.policy) + (row.fixed_features ? "/fixed" : "/stock");
}

// Fig. 2 signature: during the make+R phase, repeatedly observe some core
// idle while another holds >= 2 runnable threads.
bool ExhibitsGroupImbalance(const BugMatrixRow& row) {
  PolicyRun run(row, MatrixFeatures(row, &SchedFeatures::fix_group_imbalance), 12);
  Simulator& sim = *run.sim;
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(400);
  config.r_work = Seconds(3);
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  int idle_with_overload = 0;
  for (Time t = Milliseconds(60); t <= Milliseconds(300); t += Milliseconds(20)) {
    sim.At(t, [&sim, &idle_with_overload] {
      bool any_idle = false;
      bool any_overloaded = false;
      for (CpuId c = 0; c < sim.topo().n_cores(); ++c) {
        int nr = sim.sched().NrRunning(c);
        any_idle = any_idle || nr == 0;
        any_overloaded = any_overloaded || nr >= 2;
      }
      if (any_idle && any_overloaded) {
        ++idle_with_overload;
      }
    });
  }
  sim.Run(Seconds(8));
  return idle_with_overload >= 5;
}

// Node-confinement probe shared by the Table 1 and Fig. 5 signatures:
// sample every 10 ms; while the app is still running anywhere (active
// sample), check whether any cpu OUTSIDE `home_node` runs work. "Confined"
// means a meaningful active window with zero escapes — the activity guard
// keeps a fast-finishing run from passing vacuously.
struct ConfinementProbe {
  Simulator* sim = nullptr;
  int home_node = 1;
  int active_samples = 0;
  int escaped_samples = 0;

  void Sample() {
    const Topology& topo = sim->topo();
    bool active = false;
    bool escaped = false;
    for (CpuId c = 0; c < topo.n_cores(); ++c) {
      if (sim->sched().NrRunning(c) > 0) {
        active = true;
        escaped = escaped || topo.NodeOf(c) != home_node;
      }
    }
    active_samples += active ? 1 : 0;
    escaped_samples += escaped ? 1 : 0;
  }

  bool Confined() const {
    EXPECT_GE(active_samples, 10) << "app finished before the probe saw it run";
    return escaped_samples == 0;
  }
};

void ScheduleConfinementSamples(Simulator& sim, ConfinementProbe& probe) {
  for (Time t = Milliseconds(10); t <= Seconds(2); t += Milliseconds(10)) {
    sim.At(t, [&probe] { probe.Sample(); });
  }
}

// Table 1 signature: an app pinned to nodes 1 and 2, spawned on node 1,
// never runs anything outside node 1 while it is active.
bool ExhibitsGroupConstruction(const BugMatrixRow& row) {
  PolicyRun run(row, MatrixFeatures(row, &SchedFeatures::fix_group_construction), 14);
  Simulator& sim = *run.sim;
  const Topology& topo = sim.topo();
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 16;
  config.affinity = topo.CpusOfNode(1) | topo.CpusOfNode(2);
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = 0.3;
  NasWorkload wl(&sim, config);
  wl.Setup();
  ConfinementProbe probe{&sim, /*home_node=*/1};
  ScheduleConfinementSamples(sim, probe);
  sim.Run(Seconds(40));
  return probe.Confined();
}

// Fig. 3 signature: with a barrier-heavy query plus transient noise, a
// significant fraction of wakeups land on busy cores even though the
// 64-core machine is never saturated.
bool ExhibitsOverloadOnWakeup(const BugMatrixRow& row) {
  PolicyRun run(row, MatrixFeatures(row, &SchedFeatures::fix_overload_wakeup), 16,
                /*autogroup=*/false);
  Simulator& sim = *run.sim;
  TpchConfig config;
  config.queries = {TpchQuery18(/*scale=*/2.0)};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  TransientThreadGenerator::Options topts;
  TransientThreadGenerator transients(&sim, topts);
  transients.Start();
  sim.Run(Seconds(30));
  const SchedStats& stats = sim.sched().stats();
  EXPECT_GT(stats.wakeups, 0u);
  return stats.wakeups_on_busy > stats.wakeups / 50;
}

// Fig. 5 signature: after a cpu is offlined and re-onlined, threads spawned
// on node 1 never run anywhere else.
bool ExhibitsMissingDomains(const BugMatrixRow& row) {
  PolicyRun run(row, MatrixFeatures(row, &SchedFeatures::fix_missing_domains), 18);
  Simulator& sim = *run.sim;
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 16;
  config.spawn_cpu = 8;  // Node 1.
  config.scale = 0.3;
  NasWorkload wl(&sim, config);
  wl.Setup();
  ConfinementProbe probe{&sim, /*home_node=*/1};
  ScheduleConfinementSamples(sim, probe);
  sim.Run(Seconds(40));
  return probe.Confined();
}

TEST(PolicyBugMatrix, EveryPolicyMatchesItsExpectedBugSignature) {
  for (const BugMatrixRow& row : kExpected) {
    SCOPED_TRACE(RowName(row));
    EXPECT_EQ(ExhibitsGroupImbalance(row), row.group_imbalance) << "group-imbalance signature";
    EXPECT_EQ(ExhibitsGroupConstruction(row), row.group_construction)
        << "group-construction signature";
    EXPECT_EQ(ExhibitsOverloadOnWakeup(row), row.overload_wakeup)
        << "overload-on-wakeup signature";
    EXPECT_EQ(ExhibitsMissingDomains(row), row.missing_domains) << "missing-domains signature";
  }
}

// The table must cover the registry: a newly registered policy needs a row
// (and a deliberate decision about which bugs it exhibits) before it ships.
TEST(PolicyBugMatrix, ExpectationTableCoversEveryRegisteredPolicy) {
  for (const std::string& name : SchedPolicyNames()) {
    bool found = false;
    for (const BugMatrixRow& row : kExpected) {
      found = found || name == row.policy;
    }
    EXPECT_TRUE(found) << "policy '" << name
                       << "' registered but absent from the bug-expectation table";
  }
}

}  // namespace
}  // namespace wcores
