// Cross-policy conformance suite: every policy in the registry is run
// through the same three gates.
//
//  1. Mechanism invariants under fuzz — seeded random topologies, feature
//     sets, and workload mixes, with PolicyInvariantChecker sweeps at fixed
//     virtual-time intervals (census, placement legality, vruntime/load
//     conservation, rq structure, idle-index and sanity-checker parity).
//  2. Differential fold — the one-pass streaming analyzer and the
//     whole-trace recorder observe the identical callback stream; every
//     incremental accumulator must equal the from-scratch reduction, bit
//     for bit, under every policy.
//  3. Golden trace hashes — each policy's digest over a fixed mini-matrix
//     is pinned, so a behavior change in *any* policy (not just CFS) fails
//     loudly and prints the per-scenario hashes that moved.
//
// A new policy gets all of this from its one registration line in
// src/modsched/policy_registry.cc; its only extra duty is adding a golden
// row here and an expectation row in policy_bug_matrix_test.cc.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/modsched/policy_registry.h"
#include "src/sim/simulator.h"
#include "src/simkit/rng.h"
#include "src/telemetry/stream/stream_sink.h"
#include "src/tools/recorder.h"
#include "src/tools/sweep/scenario.h"
#include "src/tools/sweep/sweep.h"
#include "tests/modsched/conformance_harness.h"

namespace wcores {
namespace {

using conformance::BaseSeed;
using conformance::PolicyInvariantChecker;
using conformance::RandomFeatures;
using conformance::RandomTopology;
using conformance::RearmingCheck;
using conformance::ReproCommand;
using conformance::SpawnRandomMix;

constexpr int kRunsPerPolicy = 3;

TEST(PolicyConformance, RegistryHasAtLeastThreeDistinctPolicies) {
  const std::vector<std::string>& names = SchedPolicyNames();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "cfs");  // The default comes first.
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]) << "duplicate registration";
    }
    std::unique_ptr<SchedPolicy> a = CreateSchedPolicy(names[i]);
    std::unique_ptr<SchedPolicy> b = CreateSchedPolicy(names[i]);
    ASSERT_NE(a, nullptr) << names[i];
    ASSERT_NE(b, nullptr) << names[i];
    EXPECT_NE(a.get(), b.get()) << "factory must return fresh instances";
    EXPECT_EQ(names[i], a->name()) << "registry key disagrees with policy name()";
  }
  EXPECT_EQ(CreateSchedPolicy("no-such-policy"), nullptr);
}

// Gate 1: the core's invariants hold at every check instant, whichever
// policy is deciding placement and ordering.
TEST(PolicyConformance, MechanismInvariantsHoldUnderEveryPolicy) {
  uint64_t base = BaseSeed();
  for (const std::string& name : SchedPolicyNames()) {
    for (int run = 0; run < kRunsPerPolicy; ++run) {
      uint64_t seed = base + static_cast<uint64_t>(run);
      SCOPED_TRACE(ReproCommand(name, seed));

      uint64_t sm = seed;
      Rng rng(SplitMix64(sm));
      Topology topo = RandomTopology(rng);
      std::unique_ptr<SchedPolicy> policy = CreateSchedPolicy(name);
      ASSERT_NE(policy, nullptr);
      Simulator::Options opts;
      opts.features = RandomFeatures(rng);
      opts.seed = seed;
      opts.policy = policy.get();
      Simulator sim(topo, opts);
      SpawnRandomMix(sim, rng, static_cast<int>(rng.NextInRange(6, 48)));

      PolicyInvariantChecker checker(&sim);
      sim.After(conformance::kCheckInterval, RearmingCheck{&checker, &sim});
      sim.Run(conformance::kCheckHorizon);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
      EXPECT_GT(checker.checks(), 100) << "fuzz run did too little work to mean anything";
    }
  }
}

// Gate 2: streaming accumulators equal the recorder's from-scratch fold
// under every policy — the differential-fuzz half of the suite. A policy
// that, say, drops a trace callback or emits a switch-out without the
// matching switch-in breaks the fold equality even if no invariant sweep
// happens to land on the broken instant.
TEST(PolicyConformance, StreamFoldMatchesRecorderUnderEveryPolicy) {
  uint64_t base = BaseSeed() + 55000ULL;
  for (const std::string& name : SchedPolicyNames()) {
    for (int run = 0; run < 2; ++run) {
      uint64_t seed = base + static_cast<uint64_t>(run);
      SCOPED_TRACE(ReproCommand(name, seed));
      uint64_t sm = seed;
      Rng rng(SplitMix64(sm));
      Topology topo = RandomTopology(rng);
      std::unique_ptr<SchedPolicy> policy = CreateSchedPolicy(name);
      ASSERT_NE(policy, nullptr);
      Simulator::Options opts;
      opts.features = RandomFeatures(rng);
      opts.seed = seed;
      opts.policy = policy.get();

      EventRecorder recorder;
      TelemetryStream stream(TelemetryStream::ForTopology(topo));
      MultiSink multi;
      multi.Add(&recorder);
      multi.Add(&stream);
      Simulator sim(topo, opts, &multi);
      SpawnRandomMix(sim, rng, static_cast<int>(rng.NextInRange(6, 48)));
      sim.Run(Milliseconds(100));
      stream.Finish(sim.Now());

      ASSERT_EQ(recorder.dropped(), 0u);
      ASSERT_EQ(stream.ring().dropped(), 0u);
      ASSERT_EQ(stream.events_seen(), recorder.events().size());

      struct Totals {
        uint64_t runtime = 0, wait = 0, switches = 0, wakeups = 0, migrations = 0;
      };
      std::map<ThreadId, Totals> batch;
      for (const TraceEvent& e : recorder.events()) {
        switch (e.kind) {
          case TraceEvent::Kind::kSwitchIn:
            batch[e.tid].wait += static_cast<uint64_t>(e.value);
            break;
          case TraceEvent::Kind::kSwitchOut:
            batch[e.tid].runtime += static_cast<uint64_t>(e.value);
            batch[e.tid].switches += 1;
            break;
          case TraceEvent::Kind::kWakeupLatency:
            batch[e.tid].wakeups += 1;
            break;
          case TraceEvent::Kind::kMigration:
            batch[e.tid].migrations += 1;
            break;
          default:
            break;
        }
      }
      ASSERT_GT(batch.size(), 0u) << "run produced no per-task events";
      uint64_t sum_runtime = 0;
      uint64_t sum_wait = 0;
      for (const auto& [tid, t] : batch) {
        const StreamAnalyzer::TaskStats& s = stream.analyzer().Task(tid);
        ASSERT_TRUE(s.seen) << "tid " << tid << " missing from the stream";
        ASSERT_EQ(s.runtime_ns, t.runtime) << "tid " << tid << " runtime diverged";
        ASSERT_EQ(s.wait_ns, t.wait) << "tid " << tid << " wait diverged";
        ASSERT_EQ(s.switches, t.switches) << "tid " << tid;
        ASSERT_EQ(s.wakeups, t.wakeups) << "tid " << tid;
        ASSERT_EQ(s.migrations, t.migrations) << "tid " << tid;
        sum_runtime += t.runtime;
        sum_wait += t.wait;
      }
      ASSERT_EQ(stream.analyzer().Machine().oncpu.sum_ns, sum_runtime);
      ASSERT_EQ(stream.analyzer().Machine().rq_wait.sum_ns, sum_wait);
    }
  }
}

// Gate 3: per-policy golden trace hashes over a fixed mini-matrix (the
// figure scenarios at scale 0.05 plus two seeded random mixes). Pinning the
// *combined* digest per policy keeps the table one line per policy; on a
// mismatch the failure prints every per-scenario hash so the divergence is
// localizable. Regenerate a row only for an intentional behavior change in
// that policy.
TEST(PolicyConformance, PerPolicyGoldenTraceHashes) {
  const std::map<std::string, uint64_t> kGolden = {
      {"cfs", 0x2299610f289cd877ULL},
      {"o1", 0xedc8248f6bb3edabULL},
      {"coreidle", 0x97e04ffda6923464ULL},
  };
  for (const std::string& name : SchedPolicyNames()) {
    std::vector<Scenario> matrix = FigureScenarios(0.05);
    for (Scenario& s : RandomScenarios(4321, 2)) {
      matrix.push_back(std::move(s));
    }
    for (Scenario& s : matrix) {
      s.policy = name;
    }
    SweepOptions opts;
    opts.threads = 1;
    SweepReport report = RunSweep(matrix, opts);
    auto it = kGolden.find(name);
    if (it == kGolden.end()) {
      ADD_FAILURE() << "policy '" << name
                    << "' has no golden hash row — add one to PerPolicyGoldenTraceHashes";
      continue;
    }
    if (report.CombinedHash() != it->second) {
      std::string detail;
      for (const ScenarioResult& r : report.results) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "\n  %-24s %016llx", r.name.c_str(),
                      static_cast<unsigned long long>(r.trace_hash));
        detail += buf;
      }
      ADD_FAILURE() << "policy '" << name << "' combined hash "
                    << std::hex << report.CombinedHash() << " != golden " << it->second
                    << std::dec << "; per-scenario hashes:" << detail;
    }
  }
}

}  // namespace
}  // namespace wcores
