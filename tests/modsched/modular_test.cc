// The modular scheduler of §5: optimization modules suggest placements, the
// core enforces the work-conserving invariant.
#include "src/modsched/modules.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

namespace wcores {
namespace {

class NullClient : public SchedClient {
 public:
  void KickCpu(CpuId) override {}
  void NohzKick(CpuId) override {}
};

TEST(ModularSchedTest, SuggestionHonoredWhenTargetIdle) {
  Topology topo = Topology::Flat(2, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client);
  CacheAffinityModule cache;
  sched.set_wake_policy(&cache);
  ThreadParams p;
  p.parent_cpu = 3;
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 3);
  sched.BlockCurrent(Milliseconds(1), 3);
  // Waker on another node; the module wants the (idle) previous core.
  CpuId cpu = sched.Wake(Milliseconds(2), tid, 0);
  EXPECT_EQ(cpu, 3);
  EXPECT_EQ(sched.stats().wake_policy_suggestions, 1u);
  EXPECT_EQ(sched.stats().wake_policy_vetoes, 0u);
}

TEST(ModularSchedTest, CoreVetoesBusySuggestionWhenIdleCoreExists) {
  Topology topo = Topology::Flat(2, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client);
  CacheAffinityModule cache;
  sched.set_wake_policy(&cache);
  ThreadParams p;
  p.parent_cpu = 0;
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 0);
  sched.BlockCurrent(Milliseconds(1), 0);
  // Occupy the previous core; cores 1-3 idle. The module suggests busy
  // core 0; the invariant-preserving core must override.
  ThreadParams q;
  q.parent_cpu = 0;
  sched.CreateThread(Milliseconds(1), q);
  sched.PickNext(Milliseconds(1), 0);
  CpuId cpu = sched.Wake(Milliseconds(2), tid, 0);
  EXPECT_NE(cpu, 0);
  EXPECT_TRUE(sched.IsIdleCpu(0) || sched.NrRunning(cpu) >= 1);
  EXPECT_EQ(sched.stats().wake_policy_vetoes, 1u);
}

TEST(ModularSchedTest, SuggestionTakenWhenNoIdleCoreExists) {
  Topology topo = Topology::Flat(1, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(2), &client);
  CacheAffinityModule cache;
  sched.set_wake_policy(&cache);
  ThreadParams p;
  p.parent_cpu = 0;
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 0);
  sched.BlockCurrent(Milliseconds(1), 0);
  // Fill both cores.
  for (CpuId c = 0; c < 2; ++c) {
    ThreadParams q;
    q.parent_cpu = c;
    sched.CreateThread(Milliseconds(1), q);
    sched.PickNext(Milliseconds(1), c);
  }
  CpuId cpu = sched.Wake(Milliseconds(2), tid, 1);
  EXPECT_EQ(cpu, 0);  // Busy, but nothing idle: cache reuse wins.
  EXPECT_EQ(sched.stats().wake_policy_suggestions, 1u);
}

TEST(ModularSchedTest, AbstainingModuleFallsThroughToStockPath) {
  Topology topo = Topology::Flat(1, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(2), &client);
  class Abstainer : public WakePolicy {
   public:
    CpuId Suggest(const WakeContext&) override { return kInvalidCpu; }
    const char* name() const override { return "abstain"; }
  } abstainer;
  sched.set_wake_policy(&abstainer);
  ThreadParams p;
  p.parent_cpu = 0;
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 0);
  sched.BlockCurrent(Milliseconds(1), 0);
  CpuId cpu = sched.Wake(Milliseconds(2), tid, 0);
  EXPECT_EQ(cpu, 0);  // Stock path: previous core, idle.
  EXPECT_EQ(sched.stats().wake_policy_suggestions, 0u);
}

TEST(ModularSchedTest, ChainUsesPriorityOrder) {
  Topology topo = Topology::Flat(2, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client);
  CacheAffinityModule cache;
  LoadSpreadModule spread;
  ModuleChain chain;
  chain.Add(&cache);
  chain.Add(&spread);
  sched.set_wake_policy(&chain);
  // A never-ran... all threads have a prev cpu once created; exercise the
  // chain: the cache module suggests first.
  ThreadParams p;
  p.parent_cpu = 2;
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 2);
  sched.BlockCurrent(Milliseconds(1), 2);
  CpuId cpu = sched.Wake(Milliseconds(2), tid, 0);
  EXPECT_EQ(cpu, 2);
  EXPECT_STREQ(chain.last_winner(), "cache-affinity");
}

// The chain can own its modules: nothing here keeps the module alive except
// the chain itself, so a lifetime bug would be a use-after-free under ASan.
TEST(ModularSchedTest, ChainOwnsModulesAddedByUniquePtr) {
  Topology topo = Topology::Flat(2, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client);
  auto chain = std::make_unique<ModuleChain>();
  chain->Add(std::make_unique<CacheAffinityModule>());
  chain->Add(std::make_unique<LoadSpreadModule>());
  sched.set_wake_policy(chain.get());
  ThreadParams p;
  p.parent_cpu = 2;
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 2);
  sched.BlockCurrent(Milliseconds(1), 2);
  CpuId cpu = sched.Wake(Milliseconds(2), tid, 0);
  EXPECT_EQ(cpu, 2);
  EXPECT_STREQ(chain->last_winner(), "cache-affinity");
}

TEST(ModularSchedTest, NumaLocalityPrefersIdleCoreOfOwnNode) {
  Topology topo = Topology::Flat(2, 2, 1);
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(4), &client);
  NumaLocalityModule numa;
  sched.set_wake_policy(&numa);
  ThreadParams p;
  p.parent_cpu = 2;  // Node 1.
  ThreadId tid = sched.CreateThread(0, p);
  sched.PickNext(0, 2);
  sched.BlockCurrent(Milliseconds(1), 2);
  // Occupy core 2; core 3 (same node) idle.
  ThreadParams q;
  q.parent_cpu = 2;
  sched.CreateThread(Milliseconds(1), q);
  sched.PickNext(Milliseconds(1), 2);
  CpuId cpu = sched.Wake(Milliseconds(2), tid, 2);
  EXPECT_EQ(cpu, 3);
}

// The §5 demonstration: an aggressively cache-greedy module under the
// invariant-enforcing core does NOT reintroduce the Overload-on-Wakeup
// pathology on the database workload.
TEST(ModularSchedTest, GreedyCacheModuleCannotReintroduceOverloadOnWakeup) {
  auto run = [](bool modular) {
    Topology topo = Topology::Bulldozer8x8();
    Simulator::Options opts;
    opts.features.autogroup_enabled = false;
    opts.seed = 404;
    Simulator sim(topo, opts);
    CacheAffinityModule cache;
    if (modular) {
      sim.sched().set_wake_policy(&cache);
    }
    TpchConfig config;
    config.queries = {TpchQuery18(2.0)};
    TpchWorkload db(&sim, config);
    db.Setup();
    TransientThreadGenerator::Options topts;
    TransientThreadGenerator transients(&sim, topts);
    transients.Start();
    sim.Run(Seconds(30));
    EXPECT_TRUE(db.Finished());
    return ToSeconds(db.TotalTime());
  };
  double stock = run(false);    // Overload-on-Wakeup bug active.
  double modular = run(true);   // Greedy module + invariant-enforcing core.
  // The modular configuration must not be slower than the buggy stock
  // scheduler: the core's veto turns the greedy module into (at worst) the
  // paper's wakeup fix.
  EXPECT_LT(modular, stock * 1.02) << "stock=" << stock << " modular=" << modular;
}

}  // namespace
}  // namespace wcores
