// Using the online sanity checker as a watchdog on a custom workload
// (§4.1): it periodically verifies the work-conserving invariant, tolerates
// short-term violations (they are normal), and flags only the long-term
// ones, attaching a profile of what the balancer was doing.
//
//   $ ./examples/sanity_watchdog
#include <cstdio>
#include <memory>

#include "src/sim/simulator.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"

using namespace wcores;

int main() {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options options;  // Stock scheduler: all four bugs present.
  options.seed = 2024;
  Simulator sim(topo, options);

  // Phase 1 (healthy): a balanced compute load; only short-term violations
  // can occur and the checker must not flag them.
  for (int i = 0; i < 64; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i;
    sim.Spawn(std::make_unique<ScriptBehavior>(
                  std::vector<Action>{ComputeAction{Milliseconds(900)}}),
              params);
  }

  // Phase 2 (buggy): at t=2s an operator "bounces" a core, triggering the
  // Missing Scheduling Domains bug, and launches a 32-thread job from one
  // shell. It gets stuck on one node.
  sim.At(Seconds(2), [&sim] {
    sim.SetCpuOnline(5, false);
    sim.SetCpuOnline(5, true);
    for (int i = 0; i < 32; ++i) {
      Simulator::SpawnParams params;
      params.parent_cpu = 0;
      sim.Spawn(std::make_unique<ScriptBehavior>(
                    std::vector<Action>{ComputeAction{Seconds(2)}}),
                params);
    }
  });

  SanityChecker::Options copts;
  copts.check_interval = Milliseconds(250);  // S
  copts.confirmation_window = Milliseconds(100);  // M
  SanityChecker checker(&sim, copts);
  checker.Start();

  sim.Run(Seconds(6));

  std::printf("checks run:            %llu\n",
              static_cast<unsigned long long>(checker.checks_run()));
  std::printf("candidate violations:  %llu (short-term hits entering the M window)\n",
              static_cast<unsigned long long>(checker.candidates()));
  std::printf("confirmed violations:  %llu\n\n",
              static_cast<unsigned long long>(checker.violations().size()));
  for (size_t i = 0; i < checker.violations().size() && i < 3; ++i) {
    std::printf("%s", SanityChecker::Report(checker.violations()[i]).c_str());
  }
  if (!checker.violations().empty()) {
    std::printf("\nfirst confirmed violation at %s — phase 2 started at 2s, as expected.\n",
                FormatTime(checker.violations().front().detected_at).c_str());
  }
  return 0;
}
