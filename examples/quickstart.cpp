// Quickstart: simulate a small multicore machine under the CFS scheduler.
//
//   $ ./examples/quickstart
//
// Builds a 2-node/8-core machine, spawns a mix of compute-bound and sleepy
// threads forked on a single core, runs until they finish, and prints
// per-core utilization plus scheduler statistics — a one-file tour of the
// public API.
#include <cstdio>
#include <memory>

#include "src/sim/simulator.h"
#include "src/topo/topology.h"

using namespace wcores;

int main() {
  // A machine: 2 NUMA nodes x 4 cores, SMT pairs, flat interconnect.
  Topology topo = Topology::Flat(/*n_nodes=*/2, /*cores_per_node=*/4, /*smt_width=*/2);

  // Scheduler configuration: Stock() reproduces the buggy kernels the paper
  // studied; AllFixed() applies all four fixes.
  Simulator::Options options;
  options.features = SchedFeatures::AllFixed();
  options.seed = 42;
  Simulator sim(topo, options);

  // Six CPU hogs (100ms each) plus two compute/sleep threads, all forked on
  // core 0 — load balancing has to spread them across the machine.
  for (int i = 0; i < 6; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = 0;
    sim.Spawn(std::make_unique<ScriptBehavior>(
                  std::vector<Action>{ComputeAction{Milliseconds(100)}}),
              params);
  }
  for (int i = 0; i < 2; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = 0;
    sim.Spawn(std::make_unique<ScriptBehavior>(
                  std::vector<Action>{ComputeAction{Milliseconds(2)},
                                      SleepAction{Milliseconds(1)}},
                  /*repeat=*/30),
              params);
  }

  bool all_done = sim.RunUntilAllExited(Seconds(5));
  std::printf("all threads finished: %s at t=%s\n", all_done ? "yes" : "NO",
              FormatTime(sim.Now()).c_str());

  std::printf("\nper-core utilization:\n");
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    std::printf("  core %d (node %d): %5.1f%%\n", c, topo.NodeOf(c),
                100.0 * sim.accounting().Utilization(c, sim.Now()));
  }

  const SchedStats& stats = sim.sched().stats();
  std::printf("\nscheduler activity:\n");
  std::printf("  forks %llu, wakeups %llu (%llu onto idle cores)\n",
              static_cast<unsigned long long>(stats.forks),
              static_cast<unsigned long long>(stats.wakeups),
              static_cast<unsigned long long>(stats.wakeups_on_idle));
  std::printf("  balance calls %llu, migrations %llu (idle %llu, nohz %llu, periodic %llu)\n",
              static_cast<unsigned long long>(stats.balance_calls),
              static_cast<unsigned long long>(stats.TotalMigrations()),
              static_cast<unsigned long long>(stats.migrations_idle),
              static_cast<unsigned long long>(stats.migrations_nohz),
              static_cast<unsigned long long>(stats.migrations_periodic));
  std::printf("  context switches %llu, ticks %llu\n",
              static_cast<unsigned long long>(sim.context_switches()),
              static_cast<unsigned long long>(stats.ticks));

  // Per-thread accounting.
  std::printf("\nthreads:\n");
  for (int tid = 0; tid < sim.thread_count(); ++tid) {
    const SimThread& t = sim.thread(tid);
    std::printf("  tid %d: finished at %s, compute %s\n", tid,
                FormatTime(t.finished_at).c_str(), FormatTime(t.total_compute).c_str());
  }
  return 0;
}
