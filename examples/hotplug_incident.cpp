// The §3.4 incident, replayed end to end: an administrator disables a core
// through the /proc-like interface and re-enables it; from then on the
// scheduler never balances across NUMA nodes again, and the next 64-thread
// job runs on a single node. The online sanity checker catches it and the
// profiler explains why every balancing call fails.
//
//   $ ./examples/hotplug_incident [--fixed]
#include <cstdio>
#include <cstring>

#include "src/sim/simulator.h"
#include "src/tools/heatmap.h"
#include "src/tools/profiler.h"
#include "src/tools/recorder.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/domains.h"
#include "src/topo/topology.h"
#include "src/workloads/nas.h"

using namespace wcores;

int main(int argc, char** argv) {
  bool fixed = argc > 1 && std::strcmp(argv[1], "--fixed") == 0;

  Topology topo = Topology::Bulldozer8x8();
  EventRecorder recorder;
  Simulator::Options options;
  options.features.fix_missing_domains = fixed;
  options.seed = 123;
  Simulator sim(topo, options, &recorder);

  std::printf("scheduling domains of core 0 before hotplug:\n%s\n",
              DomainTreeToString(sim.sched().Domains(0)).c_str());

  // The incident: disable core 3, bring it back.
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  std::printf("after disabling + re-enabling core 3 (%s):\n%s\n",
              fixed ? "fixed regeneration" : "stock, cross-NUMA step dropped",
              DomainTreeToString(sim.sched().Domains(0)).c_str());

  // The next job: 64 threads of lu-like work forked from one root process.
  NasConfig config;
  config.app = NasApp::kMg;
  config.threads = 64;
  config.spawn_cpu = 0;
  config.scale = 0.2;
  NasWorkload job(&sim, config);
  job.Setup();

  SanityChecker::Options copts;
  copts.check_interval = Milliseconds(200);
  SanityChecker checker(&sim, copts);
  checker.Start();

  SchedStats before = sim.sched().stats();
  sim.Run(Seconds(60));

  std::printf("job completion: %.3fs (%s)\n", ToSeconds(job.CompletionTime()),
              job.Finished() ? "finished" : "STILL RUNNING");
  std::printf("sanity checker confirmed %llu violations\n",
              static_cast<unsigned long long>(checker.violations().size()));
  if (!checker.violations().empty()) {
    std::printf("%s\n", SanityChecker::Report(checker.violations().front()).c_str());
  }
  BalanceProfile profile = ProfileFromStats(before, sim.sched().stats(), 0, sim.Now());
  std::printf("%s", ProfileReport(profile).c_str());
  std::printf("\nTry:  %s --fixed\n", argv[0]);
  return 0;
}
