// scheduler_lab: a command-line driver for ad-hoc experiments.
//
//   $ ./examples/scheduler_lab --machine=bulldozer --workload=nas:lu:16
//         --pin=1,2 --fix=none --duration=30 --heatmap --checker
//
// Options:
//   --machine=bulldozer | example32 | flat:<nodes>x<cores>   (default bulldozer)
//   --workload=nas:<app>:<threads> | make_r | tpch | hogs:<n>  (default hogs:64)
//   --pin=<node>,<node>,...      taskset the workload to these nodes
//   --fix=none|all|gi,gc,ow,md   which bug fixes to apply (default none)
//   --hotplug=<cpu>              disable+re-enable this core before the run
//   --duration=<seconds>         virtual time budget (default 30)
//   --seed=<n>                   RNG seed (default 1)
//   --heatmap                    print the runqueue-size heatmap at the end
//   --checker                    attach the online sanity checker
//   --no-autogroup               disable autogroups
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/tools/heatmap.h"
#include "src/tools/recorder.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"
#include "src/workloads/make_r.h"
#include "src/workloads/nas.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

using namespace wcores;

namespace {

struct Args {
  std::string machine = "bulldozer";
  std::string workload = "hogs:64";
  std::vector<int> pin_nodes;
  std::string fixes = "none";
  int hotplug_cpu = -1;
  double duration_s = 30;
  uint64_t seed = 1;
  bool heatmap = false;
  bool checker = false;
  bool autogroup = true;
};

bool StartsWith(const char* arg, const char* prefix, const char** value) {
  size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) == 0) {
    *value = arg + n;
    return true;
  }
  return false;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (StartsWith(argv[i], "--machine=", &v)) {
      args.machine = v;
    } else if (StartsWith(argv[i], "--workload=", &v)) {
      args.workload = v;
    } else if (StartsWith(argv[i], "--pin=", &v)) {
      for (const std::string& part : Split(v, ',')) {
        args.pin_nodes.push_back(std::atoi(part.c_str()));
      }
    } else if (StartsWith(argv[i], "--fix=", &v)) {
      args.fixes = v;
    } else if (StartsWith(argv[i], "--hotplug=", &v)) {
      args.hotplug_cpu = std::atoi(v);
    } else if (StartsWith(argv[i], "--duration=", &v)) {
      args.duration_s = std::atof(v);
    } else if (StartsWith(argv[i], "--seed=", &v)) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--heatmap") == 0) {
      args.heatmap = true;
    } else if (std::strcmp(argv[i], "--checker") == 0) {
      args.checker = true;
    } else if (std::strcmp(argv[i], "--no-autogroup") == 0) {
      args.autogroup = false;
    } else {
      std::fprintf(stderr, "unknown option: %s (see the header of this file)\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

Topology MakeMachine(const std::string& spec) {
  if (spec == "bulldozer") {
    return Topology::Bulldozer8x8();
  }
  if (spec == "example32") {
    return Topology::Example32();
  }
  const char* v = nullptr;
  if (StartsWith(spec.c_str(), "flat:", &v)) {
    std::vector<std::string> parts = Split(v, 'x');
    if (parts.size() == 2) {
      return Topology::Flat(std::atoi(parts[0].c_str()), std::atoi(parts[1].c_str()));
    }
  }
  std::fprintf(stderr, "bad --machine (want bulldozer | example32 | flat:NxC)\n");
  std::exit(2);
}

SchedFeatures MakeFeatures(const std::string& fixes, bool autogroup) {
  SchedFeatures f;
  if (fixes == "all") {
    f = SchedFeatures::AllFixed();
  } else if (fixes != "none") {
    for (const std::string& fix : Split(fixes, ',')) {
      if (fix == "gi") {
        f.fix_group_imbalance = true;
      } else if (fix == "gc") {
        f.fix_group_construction = true;
      } else if (fix == "ow") {
        f.fix_overload_wakeup = true;
      } else if (fix == "md") {
        f.fix_missing_domains = true;
      } else {
        std::fprintf(stderr, "bad --fix token '%s' (want gi,gc,ow,md|all|none)\n", fix.c_str());
        std::exit(2);
      }
    }
  }
  f.autogroup_enabled = autogroup;
  return f;
}

NasApp ParseNasApp(const std::string& name) {
  for (NasApp app : AllNasApps()) {
    if (name == NasAppName(app)) {
      return app;
    }
  }
  std::fprintf(stderr, "unknown NAS app '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  Topology topo = MakeMachine(args.machine);

  EventRecorder recorder;
  Simulator::Options options;
  options.features = MakeFeatures(args.fixes, args.autogroup);
  options.seed = args.seed;
  Simulator sim(topo, options, args.heatmap ? &recorder : nullptr);

  if (args.hotplug_cpu >= 0 && args.hotplug_cpu < topo.n_cores()) {
    sim.SetCpuOnline(args.hotplug_cpu, false);
    sim.SetCpuOnline(args.hotplug_cpu, true);
    std::printf("hotplugged core %d (disable + re-enable)\n", args.hotplug_cpu);
  }

  CpuSet pin;
  for (int node : args.pin_nodes) {
    if (node >= 0 && node < topo.n_nodes()) {
      pin |= topo.CpusOfNode(node);
    }
  }

  // Workload setup. The objects must outlive the run.
  std::unique_ptr<NasWorkload> nas;
  std::unique_ptr<MakeRWorkload> make_r;
  std::unique_ptr<TpchWorkload> tpch;
  std::unique_ptr<TransientThreadGenerator> transients;
  std::vector<ThreadId> hogs;

  std::vector<std::string> wparts = Split(args.workload, ':');
  if (wparts[0] == "nas" && wparts.size() >= 2) {
    NasConfig config;
    config.app = ParseNasApp(wparts[1]);
    config.threads = wparts.size() >= 3 ? std::atoi(wparts[2].c_str()) : topo.n_cores();
    config.affinity = pin;
    config.spawn_cpu = pin.Empty() ? 0 : pin.First();
    NasWorkload* wl = new NasWorkload(&sim, config);
    nas.reset(wl);
    nas->Setup();
  } else if (wparts[0] == "make_r") {
    make_r = std::make_unique<MakeRWorkload>(&sim, MakeRConfig{});
    make_r->Setup();
  } else if (wparts[0] == "tpch") {
    TpchConfig config;
    config.queries = {TpchQuery18(2.0)};
    tpch = std::make_unique<TpchWorkload>(&sim, config);
    tpch->Setup();
    transients = std::make_unique<TransientThreadGenerator>(
        &sim, TransientThreadGenerator::Options{});
    transients->Start();
  } else if (wparts[0] == "hogs" && wparts.size() >= 2) {
    int n = std::atoi(wparts[1].c_str());
    for (int i = 0; i < n; ++i) {
      Simulator::SpawnParams params;
      params.parent_cpu = pin.Empty() ? 0 : pin.First();
      params.affinity = pin;
      hogs.push_back(sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{
                                   ComputeAction{Milliseconds(500)}}),
                               params));
    }
  } else {
    std::fprintf(stderr, "bad --workload (want nas:<app>:<n> | make_r | tpch | hogs:<n>)\n");
    return 2;
  }

  std::unique_ptr<SanityChecker> checker;
  if (args.checker) {
    SanityChecker::Options copts;
    copts.check_interval = Milliseconds(250);
    checker = std::make_unique<SanityChecker>(&sim, copts);
    checker->Start();
  }

  sim.Run(Seconds(static_cast<uint64_t>(args.duration_s * 1000)) / 1000);

  // ---- Report ----------------------------------------------------------------
  std::printf("machine %s, fixes=%s, seed=%llu, ran to t=%s\n", args.machine.c_str(),
              args.fixes.c_str(), static_cast<unsigned long long>(args.seed),
              FormatTime(sim.Now()).c_str());
  if (nas != nullptr) {
    std::printf("nas %s: %s, completion %.3fs, spin %.3fs\n", wparts[1].c_str(),
                nas->Finished() ? "finished" : "STILL RUNNING",
                ToSeconds(nas->CompletionTime()), ToSeconds(nas->TotalSpinTime()));
  }
  if (make_r != nullptr) {
    std::printf("make: %s, completion %.3fs\n",
                make_r->MakeFinished() ? "finished" : "STILL RUNNING",
                ToSeconds(make_r->MakeCompletionTime()));
  }
  if (tpch != nullptr) {
    std::printf("tpch: %s, total %.3fs over %zu queries\n",
                tpch->Finished() ? "finished" : "STILL RUNNING", ToSeconds(tpch->TotalTime()),
                tpch->QueryTimes().size());
  }
  if (!hogs.empty()) {
    int done = 0;
    for (ThreadId tid : hogs) {
      done += sim.thread(tid).Alive() ? 0 : 1;
    }
    std::printf("hogs: %d/%zu finished\n", done, hogs.size());
  }

  const SchedStats& stats = sim.sched().stats();
  std::printf("migrations %llu, wakeups %llu (%llu onto busy cores), balance calls %llu\n",
              static_cast<unsigned long long>(stats.TotalMigrations()),
              static_cast<unsigned long long>(stats.wakeups),
              static_cast<unsigned long long>(stats.wakeups_on_busy),
              static_cast<unsigned long long>(stats.balance_calls));

  if (checker != nullptr) {
    std::printf("sanity checker: %llu checks, %llu confirmed violations\n",
                static_cast<unsigned long long>(checker->checks_run()),
                static_cast<unsigned long long>(checker->violations().size()));
    if (!checker->violations().empty()) {
      std::printf("%s", SanityChecker::Report(checker->violations().front()).c_str());
    }
  }
  if (args.heatmap) {
    Heatmap map = BuildHeatmap(recorder.events(), TraceEvent::Kind::kNrRunning, topo.n_cores(),
                               0, sim.Now(), 100);
    std::printf("\nrunqueue sizes over time:\n%s",
                HeatmapToAscii(map, topo.cores_per_node(), 3.0).c_str());
  }
  return 0;
}
