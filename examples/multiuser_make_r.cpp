// The multi-user server of §3.1: a 64-thread kernel `make` plus two R
// processes from different ttys, on the paper's 64-core NUMA machine.
//
//   $ ./examples/multiuser_make_r [--fixed]
//
// Runs the workload under the stock scheduler (Group Imbalance bug present)
// or with the fix, prints a live-style runqueue heatmap from the
// visualization tool, and reports completion times. Attach of the sanity
// checker shows the invariant violations the bug causes.
#include <cstdio>
#include <cstring>

#include "src/sim/simulator.h"
#include "src/tools/heatmap.h"
#include "src/tools/recorder.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"
#include "src/workloads/make_r.h"

using namespace wcores;

int main(int argc, char** argv) {
  bool fixed = argc > 1 && std::strcmp(argv[1], "--fixed") == 0;

  Topology topo = Topology::Bulldozer8x8();
  EventRecorder recorder;
  Simulator::Options options;
  options.features.fix_group_imbalance = fixed;
  options.seed = 7;
  Simulator sim(topo, options, &recorder);

  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(400);
  config.r_work = Seconds(3);
  MakeRWorkload workload(&sim, config);
  workload.Setup();

  // The online sanity checker watches for long-term invariant violations
  // (check every 100ms here so a short run still gets coverage).
  SanityChecker::Options copts;
  copts.check_interval = Milliseconds(100);
  SanityChecker checker(&sim, copts);
  checker.Start();

  sim.Run(Seconds(10));

  std::printf("scheduler: %s\n", fixed ? "Group Imbalance fix applied" : "stock (buggy)");
  std::printf("make completion: %.3fs (paper: 13%% faster with the fix)\n",
              ToSeconds(workload.MakeCompletionTime()));
  for (Time t : workload.RCompletionTimes()) {
    std::printf("R completion:    %.3fs\n", ToSeconds(t));
  }

  Heatmap map = BuildHeatmap(recorder.events(), TraceEvent::Kind::kNrRunning, topo.n_cores(), 0,
                             workload.MakeCompletionTime(), 100);
  std::printf("\nrunqueue sizes over time (rows: cores, grouped by node):\n%s\n",
              HeatmapToAscii(map, topo.cores_per_node(), 3.0).c_str());

  std::printf("sanity checker: %llu checks, %llu confirmed violations\n",
              static_cast<unsigned long long>(checker.checks_run()),
              static_cast<unsigned long long>(checker.violations().size()));
  if (!checker.violations().empty()) {
    std::printf("%s", SanityChecker::Report(checker.violations().front()).c_str());
  }
  std::printf("\nTry:  %s --fixed\n", argv[0]);
  return 0;
}
