// §5's open problem, prototyped: a modular scheduler where optimization
// modules suggest thread placements and the core module "acts on them
// whenever feasible, while always maintaining the basic invariants, such as
// not letting cores sit idle while there are runnable threads."
//
//   $ ./examples/modular_scheduler
//
// Runs the Overload-on-Wakeup database workload three ways:
//   1. stock scheduler (monolithic, bug present),
//   2. an aggressively cache-greedy module with NO core arbitration — which
//      is what a naive "optimization patch" would do (we emulate this by
//      noting it is exactly the stock behavior's pathology, maximized),
//   3. the same greedy module under the invariant-enforcing core.
// The point: the module interface lets you keep the cache-affinity *idea*
// while the core guarantees the work-conserving invariant — the suggestion
// is vetoed exactly when it would leave an idle core unused.
#include <cstdio>

#include "src/modsched/modules.h"
#include "src/sim/simulator.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

using namespace wcores;

namespace {

struct RunResult {
  double total_s = 0;
  uint64_t suggestions = 0;
  uint64_t vetoes = 0;
  uint64_t violations = 0;
};

RunResult Run(WakePolicy* policy, bool fixed_wakeup) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options options;
  options.features.autogroup_enabled = false;
  options.features.fix_overload_wakeup = fixed_wakeup;
  options.seed = 31337;
  Simulator sim(topo, options);
  if (policy != nullptr) {
    sim.sched().set_wake_policy(policy);
  }
  TpchConfig config;
  config.queries = {TpchQuery18(4.0)};
  TpchWorkload db(&sim, config);
  db.Setup();
  TransientThreadGenerator::Options topts;
  TransientThreadGenerator transients(&sim, topts);
  transients.Start();
  SanityChecker::Options copts;
  copts.check_interval = Milliseconds(100);
  SanityChecker checker(&sim, copts);
  checker.Start();
  sim.Run(Seconds(60));
  RunResult result;
  result.total_s = ToSeconds(db.TotalTime());
  result.suggestions = sim.sched().stats().wake_policy_suggestions;
  result.vetoes = sim.sched().stats().wake_policy_vetoes;
  result.violations = checker.violations().size();
  return result;
}

}  // namespace

int main() {
  std::printf("TPC-H Q18 + transient threads on the 64-core machine, three schedulers:\n\n");

  RunResult stock = Run(nullptr, /*fixed_wakeup=*/false);
  std::printf("1) stock monolithic scheduler (Overload-on-Wakeup bug):\n"
              "   Q18 %.3fs, %llu confirmed invariant violations\n\n",
              stock.total_s, static_cast<unsigned long long>(stock.violations));

  RunResult fixed = Run(nullptr, /*fixed_wakeup=*/true);
  std::printf("2) monolithic scheduler with the paper's wakeup patch:\n"
              "   Q18 %.3fs, %llu violations\n\n",
              fixed.total_s, static_cast<unsigned long long>(fixed.violations));

  CacheAffinityModule cache;
  NumaLocalityModule numa;
  ModuleChain chain;
  chain.Add(&cache);
  chain.Add(&numa);
  RunResult modular = Run(&chain, /*fixed_wakeup=*/false);
  std::printf("3) modular core + cache-affinity & numa-locality modules:\n"
              "   Q18 %.3fs, %llu violations\n"
              "   module suggestions honored %llu, vetoed by the core %llu\n\n",
              modular.total_s, static_cast<unsigned long long>(modular.violations),
              static_cast<unsigned long long>(modular.suggestions),
              static_cast<unsigned long long>(modular.vetoes));

  std::printf("The modular configuration keeps the cache-affinity idea (most suggestions\n"
              "honored) yet matches the patched scheduler's performance, because the core\n"
              "vetoes exactly the suggestions that would break work conservation.\n");
  return 0;
}
