// The commercial-database scenario of §3.3: 64 worker threads in unequal
// pools run TPC-H query 18 while transient kernel threads perturb placement.
//
//   $ ./examples/database_tpch [--fixed]
//
// With the stock scheduler, woken workers pile onto busy cores of their
// node while other cores sit idle (Overload-on-Wakeup); with --fixed,
// wakeups go to the longest-idle core. The example prints per-query times
// and the wakeup-placement statistics that explain the difference.
#include <cstdio>
#include <cstring>

#include "src/sim/simulator.h"
#include "src/tools/profiler.h"
#include "src/tools/recorder.h"
#include "src/topo/topology.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

using namespace wcores;

int main(int argc, char** argv) {
  bool fixed = argc > 1 && std::strcmp(argv[1], "--fixed") == 0;

  Topology topo = Topology::Bulldozer8x8();
  EventRecorder recorder;
  Simulator::Options options;
  options.features.fix_overload_wakeup = fixed;
  options.features.autogroup_enabled = false;  // As in the paper's Figure 3.
  options.seed = 99;
  Simulator sim(topo, options, &recorder);

  TpchConfig config;
  config.queries = {TpchQuery18(/*scale=*/2.0), TpchQuery18(/*scale=*/2.0),
                    TpchQuery18(/*scale=*/2.0)};
  TpchWorkload db(&sim, config);
  db.Setup();

  TransientThreadGenerator::Options topts;
  topts.mean_interval = Milliseconds(2);
  TransientThreadGenerator transients(&sim, topts);
  transients.Start();

  SchedStats before = sim.sched().stats();
  sim.Run(Seconds(60));

  std::printf("scheduler: %s\n",
              fixed ? "Overload-on-Wakeup fix applied" : "stock (buggy)");
  std::printf("database: %d workers in %zu container pools; %llu transient kernel threads\n",
              db.TotalWorkers(), config.pool_sizes.size(),
              static_cast<unsigned long long>(transients.spawned()));
  for (size_t q = 0; q < db.QueryTimes().size(); ++q) {
    std::printf("Q18 run %zu: %.3fs\n", q, ToSeconds(db.QueryTimes()[q]));
  }
  std::printf("total: %.3fs (paper: Q18 22%% faster with the fix)\n\n",
              ToSeconds(db.TotalTime()));

  BalanceProfile profile =
      ProfileFromStats(before, sim.sched().stats(), 0, sim.Now());
  std::printf("%s", ProfileReport(profile).c_str());
  std::printf("\nTry:  %s --fixed\n", argv[0]);
  return 0;
}
