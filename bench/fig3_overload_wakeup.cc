// Figure 3: the Overload-on-Wakeup bug, visualized.
//
// The TPC-H-like database (64 workers, autogroups disabled as in the paper)
// plus transient kernel threads. The runqueue-size heatmap shows instances
// of the bug: cores idle for long stretches while others hold two runnable
// database threads; with the fix, wakeups target the longest-idle core and
// the episodes disappear. The bench also quantifies the episodes: total
// virtual time during which some core is idle while another is overloaded
// with stealable work.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/stream_util.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"
#include "src/tools/heatmap.h"
#include "src/tools/recorder.h"
#include "src/topo/topology.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

namespace wcores {
namespace {

struct RunOutput {
  double total_s = 0;
  double violation_s = 0;  // Integrated idle-while-overloaded time.
  uint64_t wakeups = 0;
  uint64_t wakeups_on_busy = 0;
  Heatmap nr;
};

RunOutput RunDb(bool fixed, const BenchOptions& bench_opts) {
  Topology topo = Topology::Bulldozer8x8();
  TelemetrySession telemetry(topo.n_cores());
  std::string label = fixed ? "fig3_fixed_" : "fig3_stock_";
  BenchStream stream;
  stream.Attach(bench_opts, &telemetry, topo, label);
  Simulator::Options opts;
  opts.features.fix_overload_wakeup = fixed;
  opts.features.autogroup_enabled = false;  // As in the paper's Figure 3 runs.
  opts.seed = 3003;
  Simulator sim(topo, opts, telemetry.sink());

  TpchConfig config;
  config.queries = {TpchQuery18(/*scale=*/6.0)};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  TransientThreadGenerator::Options topts;
  topts.mean_interval = Milliseconds(2);
  TransientThreadGenerator transients(&sim, topts);
  transients.Start();

  // Sample the invariant every millisecond to integrate violation time.
  RunOutput out;
  Time step = Milliseconds(1);
  uint64_t violated_samples = 0;
  uint64_t samples = 0;
  for (Time t = step;; t += step) {
    sim.Run(t);
    if (wl.Finished() || t > Seconds(60)) {
      break;
    }
    ++samples;
    bool idle = false;
    bool overloaded = false;
    for (CpuId c = 0; c < topo.n_cores(); ++c) {
      int nr = sim.sched().NrRunning(c);
      idle = idle || nr == 0;
      overloaded = overloaded || nr >= 2;
    }
    if (idle && overloaded) {
      ++violated_samples;
    }
  }
  out.total_s = ToSeconds(wl.TotalTime());
  out.violation_s = ToSeconds(violated_samples * step);
  out.wakeups = sim.sched().stats().wakeups;
  out.wakeups_on_busy = sim.sched().stats().wakeups_on_busy;
  out.nr = BuildHeatmap(telemetry.recorder().events(), TraceEvent::Kind::kNrRunning,
                        topo.n_cores(), 0, wl.TotalTime(), 110);
  stream.Finish(bench_opts, &telemetry, sim.Now(), label);
  if (!bench_opts.telemetry_dir.empty()) {
    std::string error;
    if (!telemetry.WriteReports(bench_opts.telemetry_dir, sim.sched(), sim.Now(), label,
                                &error)) {
      std::fprintf(stderr, "telemetry: %s\n", error.c_str());
    }
  }
  (void)samples;
  return out;
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  PrintHeader("Figure 3: the Overload-on-Wakeup bug (TPC-H Q18 + transient threads)",
              "EuroSys'16 Figure 3; threads wake on busy cores of their node while other "
              "cores sit idle");

  RunOutput buggy = RunDb(/*fixed=*/false, opts);
  RunOutput fixed = RunDb(/*fixed=*/true, opts);

  std::printf("runqueue sizes over time, stock scheduler:\n%s\n",
              HeatmapToAscii(buggy.nr, 8, 2.0).c_str());
  std::printf("runqueue sizes over time, wakeup fix applied:\n%s\n",
              HeatmapToAscii(fixed.nr, 8, 2.0).c_str());

  WriteFile(opts, "fig3_rq_sizes_stock.csv", HeatmapToCsv(buggy.nr));
  WriteFile(opts, "fig3_rq_sizes_fixed.csv", HeatmapToCsv(fixed.nr));
  WriteFile(opts, "fig3_rq_sizes_stock.pgm", HeatmapToPgm(buggy.nr, 2.0));

  std::printf("Q18 completion:            stock %.3fs, fixed %.3fs (%+.1f%%; paper: -22.2%%)\n",
              buggy.total_s, fixed.total_s,
              (fixed.total_s - buggy.total_s) / buggy.total_s * 100.0);
  std::printf("idle-while-overloaded time: stock %.3fs, fixed %.3fs\n", buggy.violation_s,
              fixed.violation_s);
  std::printf("wakeups onto busy cores:    stock %llu/%llu, fixed %llu/%llu\n",
              static_cast<unsigned long long>(buggy.wakeups_on_busy),
              static_cast<unsigned long long>(buggy.wakeups),
              static_cast<unsigned long long>(fixed.wakeups_on_busy),
              static_cast<unsigned long long>(fixed.wakeups));
  std::printf("CSV/PGM files written to %s/ (fig3_*).\n", opts.out_dir.c_str());
  return 0;
}
