// Table 2: impact of the Overload-on-Wakeup and Group Imbalance bug fixes
// on the commercial database running TPC-H (§3.3).
//
// The database uses pools of worker threads provided by container processes
// of different sizes (different autogroups -> different worker loads ->
// Group Imbalance), and its workers constantly sleep and wake (-> Overload
// on Wakeup). Transient kernel threads (<1 ms) perturb placement. Two
// workloads, as in the paper: TPC-H query 18 alone, and the full TPC-H mix.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

namespace wcores {
namespace {

struct Result {
  double q18_s = 0;
  double full_s = 0;
};

Result RunTpch(bool fix_group_imbalance, bool fix_overload_wakeup) {
  // "values averaged over five runs" (Table 2 caption).
  constexpr int kRuns = 5;
  Result result;
  for (int workload = 0; workload < 2; ++workload) {
    double total = 0;
    for (int run = 0; run < kRuns; ++run) {
      Topology topo = Topology::Bulldozer8x8();
      Simulator::Options opts;
      opts.features.fix_group_imbalance = fix_group_imbalance;
      opts.features.fix_overload_wakeup = fix_overload_wakeup;
      opts.seed = 2002 + 97 * static_cast<uint64_t>(run);
      Simulator sim(topo, opts);

      TpchConfig config;
      if (workload == 0) {
        config.queries = {TpchQuery18(/*scale=*/6.0)};
      } else {
        config.queries = FullTpchSuite(/*scale=*/1.0);
      }
      TpchWorkload wl(&sim, config);
      wl.Setup();

      TransientThreadGenerator::Options topts;
      topts.mean_interval = Milliseconds(2);
      topts.seed = 7 + static_cast<uint64_t>(run);
      TransientThreadGenerator transients(&sim, topts);
      transients.Start();

      sim.Run(Seconds(120));
      if (!wl.Finished()) {
        std::fprintf(stderr, "WARNING: TPC-H workload %d did not finish\n", workload);
      }
      total += ToSeconds(wl.TotalTime());
    }
    if (workload == 0) {
      result.q18_s = total / kRuns;
    } else {
      result.full_s = total / kRuns;
    }
  }
  return result;
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  PrintHeader("Table 2: TPC-H under the Overload-on-Wakeup / Group Imbalance fixes",
              "EuroSys'16 Table 2 — commercial DB, 64 workers, values vs the stock scheduler");

  struct Combo {
    const char* name;
    bool gi;
    bool ow;
    double paper_q18;   // Paper row, seconds.
    double paper_full;
  };
  const Combo kCombos[] = {
      {"None", false, false, 55.9, 542.9},
      {"Group Imbalance", true, false, 48.6, 513.8},
      {"Overload-on-Wakeup", false, true, 43.5, 471.1},
      {"Both", true, true, 43.3, 465.6},
  };

  double base_q18 = 0;
  double base_full = 0;
  std::string csv = "fixes,q18_s,q18_delta_pct,full_s,full_delta_pct,paper_q18_pct,paper_full_pct\n";
  std::printf("%-20s %10s %8s %10s %8s | %9s %9s\n", "bug fixes", "Q18 (s)", "delta", "full (s)",
              "delta", "paper Q18", "paper all");
  for (const Combo& combo : kCombos) {
    Result r = RunTpch(combo.gi, combo.ow);
    if (combo.name[0] == 'N') {
      base_q18 = r.q18_s;
      base_full = r.full_s;
    }
    double dq = base_q18 > 0 ? (r.q18_s - base_q18) / base_q18 * 100.0 : 0;
    double df = base_full > 0 ? (r.full_s - base_full) / base_full * 100.0 : 0;
    double pq = (combo.paper_q18 - 55.9) / 55.9 * 100.0;
    double pf = (combo.paper_full - 542.9) / 542.9 * 100.0;
    std::printf("%-20s %10.3f %+7.1f%% %10.3f %+7.1f%% | %+8.1f%% %+8.1f%%\n", combo.name,
                r.q18_s, dq, r.full_s, df, pq, pf);
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%.4f,%.1f,%.4f,%.1f,%.1f,%.1f\n", combo.name, r.q18_s,
                  dq, r.full_s, df, pq, pf);
    csv += line;
  }
  WriteFile(opts, "table2_tpch_fixes.csv", csv);
  std::printf("\nShape checks: the wakeup fix dominates; Q18 improves more than the full mix;\n"
              "adding the Group Imbalance fix on top contributes little. CSV: table2_tpch_fixes.csv\n");
  return 0;
}
