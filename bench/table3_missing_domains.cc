// Table 3: execution time of NAS applications with and without the Missing
// Scheduling Domains bug (§3.4).
//
// A core is disabled and re-enabled through the /proc-like interface before
// the run. Stock domain regeneration drops every cross-NUMA level, so all 64
// threads of each application stay on the node they were forked on (one node
// instead of eight); spin-synchronized codes then slow down super-linearly
// (lu: 138x in the paper).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"
#include "src/workloads/nas.h"

namespace wcores {
namespace {

double RunAfterHotplug(NasApp app, bool fixed, double scale) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_missing_domains = fixed;
  opts.seed = 1003;
  Simulator sim(topo, opts);

  // Disable, then re-enable a core: the regeneration bug persists after.
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);

  NasConfig config;
  config.app = app;
  config.threads = topo.n_cores();  // 64, the machine's default.
  config.spawn_cpu = 0;             // All forked from the same root (sshd-style).
  config.scale = scale;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(3600));
  if (!wl.Finished()) {
    std::fprintf(stderr, "WARNING: %s did not finish within 3600 virtual seconds\n",
                 NasAppName(app));
    return 3600.0;
  }
  return ToSeconds(wl.CompletionTime());
}

struct PaperRow {
  NasApp app;
  double with_bug;
  double without_bug;
};

// Table 3 of the paper (seconds).
constexpr PaperRow kPaperRows[] = {
    {NasApp::kBt, 122, 23}, {NasApp::kCg, 134, 5.4}, {NasApp::kEp, 72, 18},
    {NasApp::kFt, 110, 14}, {NasApp::kIs, 283, 53},  {NasApp::kLu, 2196, 16},
    {NasApp::kMg, 81, 9},   {NasApp::kSp, 109, 12},  {NasApp::kUa, 906, 14},
};

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  PrintHeader("Table 3: NAS with the Missing Scheduling Domains bug",
              "EuroSys'16 Table 3 — 64 threads after disabling + re-enabling one core");
  std::printf("%-5s %14s %14s %9s | %14s %14s %9s\n", "app", "w/ bug (s)", "w/o bug (s)",
              "speedup", "paper w/ (s)", "paper w/o (s)", "paper x");
  std::string csv = "app,with_bug_s,without_bug_s,speedup,paper_with_s,paper_without_s,paper_x\n";
  for (const PaperRow& row : kPaperRows) {
    double scale = 0.2;
    double buggy = RunAfterHotplug(row.app, /*fixed=*/false, scale);
    double fixed = RunAfterHotplug(row.app, /*fixed=*/true, scale);
    double speedup = fixed > 0 ? buggy / fixed : 0;
    double paper_x = row.with_bug / row.without_bug;
    std::printf("%-5s %14.3f %14.3f %8.2fx | %14.0f %14.0f %8.2fx\n", NasAppName(row.app), buggy,
                fixed, speedup, row.with_bug, row.without_bug, paper_x);
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%.4f,%.4f,%.2f,%.0f,%.0f,%.2f\n", NasAppName(row.app),
                  buggy, fixed, speedup, row.with_bug, row.without_bug, paper_x);
    csv += line;
  }
  WriteFile(opts, "table3_missing_domains.csv", csv);
  std::printf("\nShape checks: every app slows at least ~4x (it runs on one node instead of\n"
              "eight); lu and ua are the super-linear outliers. CSV: table3_missing_domains.csv\n");
  return 0;
}
