// Microbenchmarks of the scheduler's hot operations: the costs that motivate
// per-core runqueues and infrequent load balancing (§2.2), measured in real
// (host) time with google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/gbench_json.h"

#include "src/core/cfs_rq.h"
#include "src/core/rbtree.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/simkit/event_queue.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

// ---- Red-black runqueue structure -------------------------------------------

struct BenchItem {
  uint64_t key;
  int tid;
  RbNode node;
};

struct BenchItemLess {
  bool operator()(const BenchItem& a, const BenchItem& b) const {
    if (a.key != b.key) {
      return a.key < b.key;
    }
    return a.tid < b.tid;
  }
};

void BM_RbTreeInsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<BenchItem> items(n);
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    items[i].key = rng.Next();
    items[i].tid = i;
  }
  RbTree<BenchItem, &BenchItem::node, BenchItemLess> tree;
  for (int i = 0; i < n - 1; ++i) {
    tree.Insert(&items[i]);
  }
  for (auto _ : state) {
    tree.Insert(&items[n - 1]);
    tree.Erase(&items[n - 1]);
  }
  state.SetLabel("tree size " + std::to_string(n));
}
BENCHMARK(BM_RbTreeInsertErase)->Arg(8)->Arg(64)->Arg(1024);

// Insert/erase at the tree boundaries: the runqueue's actual enqueue
// pattern. Wakeup enqueues land at-or-below min_vruntime (sleeper credit)
// and a preempted CPU hog re-enqueues at the maximum, so both ends are the
// hot case the leftmost/rightmost hint in RbTree::Insert targets.
void BM_RbTreeInsertEraseBoundary(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<BenchItem> items(n);
  Rng rng(1);
  for (int i = 0; i < n - 2; ++i) {
    items[i].key = 1 + rng.Next() % (~0ull - 2);
    items[i].tid = i;
  }
  items[n - 2].key = 0;  // Below every other key: leftmost hint.
  items[n - 2].tid = n - 2;
  items[n - 1].key = ~0ull;  // Above every other key: rightmost hint.
  items[n - 1].tid = n - 1;
  RbTree<BenchItem, &BenchItem::node, BenchItemLess> tree;
  for (int i = 0; i < n - 2; ++i) {
    tree.Insert(&items[i]);
  }
  for (auto _ : state) {
    tree.Insert(&items[n - 2]);
    tree.Insert(&items[n - 1]);
    tree.Erase(&items[n - 2]);
    tree.Erase(&items[n - 1]);
  }
  state.SetLabel("tree size " + std::to_string(n));
}
BENCHMARK(BM_RbTreeInsertEraseBoundary)->Arg(8)->Arg(64)->Arg(1024);

void BM_RbTreeLeftmost(benchmark::State& state) {
  const int n = 1024;
  std::vector<BenchItem> items(n);
  Rng rng(1);
  RbTree<BenchItem, &BenchItem::node, BenchItemLess> tree;
  for (int i = 0; i < n; ++i) {
    items[i].key = rng.Next();
    items[i].tid = i;
    tree.Insert(&items[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Leftmost());
  }
}
BENCHMARK(BM_RbTreeLeftmost);

// ---- CFS runqueue ------------------------------------------------------------

void BM_RunqueueEnqueueDequeue(benchmark::State& state) {
  SchedTunables tunables = SchedTunables::ForCpus(64);
  CfsRunqueue rq(0, &tunables);
  const int n = static_cast<int>(state.range(0));
  std::deque<SchedEntity> entities(n);
  for (int i = 0; i < n; ++i) {
    entities[i].tid = i;
    entities[i].SetNice(0);
    entities[i].vruntime = static_cast<Time>(i) * Milliseconds(1);
    rq.Enqueue(&entities[i], 0, CfsRunqueue::EnqueueKind::kNew);
  }
  Time now = Milliseconds(1);
  for (auto _ : state) {
    SchedEntity* se = &entities[0];
    rq.DequeueQueued(se, now);
    rq.Enqueue(se, now, CfsRunqueue::EnqueueKind::kMigrate);
    now += 1;
  }
  state.SetLabel("rq size " + std::to_string(n));
}
BENCHMARK(BM_RunqueueEnqueueDequeue)->Arg(2)->Arg(16)->Arg(128);

// ---- Whole-scheduler paths ---------------------------------------------------

class NullClient : public SchedClient {
 public:
  void KickCpu(CpuId) override {}
  void NohzKick(CpuId) override {}
};

// One wakeup through select_task_rq + enqueue, then block again.
void BM_WakeupPlacement(benchmark::State& state) {
  Topology topo = Topology::Bulldozer8x8();
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(topo.n_cores()), &client);
  ThreadParams params;
  ThreadId tid = sched.CreateThread(0, params);
  sched.PickNext(0, sched.Entity(tid).cpu);
  sched.BlockCurrent(1, sched.Entity(tid).cpu);
  Time now = 2;
  for (auto _ : state) {
    CpuId cpu = sched.Wake(now, tid, 0);
    sched.PickNext(now + 1, cpu);
    sched.BlockCurrent(now + 2, cpu);
    now += 3;
  }
}
BENCHMARK(BM_WakeupPlacement);

// The wakeup-placement scan the incremental idle index replaces: the
// longest-idle cpu over the full affinity mask, at 8 and 64 cores with the
// machine mostly busy (10% idle — the overloaded case every wake hits) and
// mostly idle (90%).
void BM_LongestIdleCpu(benchmark::State& state) {
  const int n_cores = static_cast<int>(state.range(0));
  const int idle_pct = static_cast<int>(state.range(1));
  Topology topo = n_cores == 8 ? Topology::Flat(2, 4) : Topology::Bulldozer8x8();
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(n_cores), &client);
  const int n_idle = std::max(1, n_cores * idle_pct / 100);
  std::vector<bool> keep_idle(static_cast<size_t>(n_cores), false);
  for (int i = 0; i < n_idle; ++i) {
    keep_idle[static_cast<size_t>(i * n_cores / n_idle)] = true;  // Spread over nodes.
  }
  for (CpuId c = 0; c < n_cores; ++c) {
    if (keep_idle[static_cast<size_t>(c)]) {
      continue;
    }
    ThreadParams params;
    params.parent_cpu = c;
    params.affinity = CpuSet::Single(c);  // Pinned: stays busy.
    sched.CreateThread(0, params);
  }
  CpuSet allowed = topo.AllCpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.LongestIdleCpu(allowed));
  }
  state.SetLabel(std::to_string(n_cores) + " cores, " + std::to_string(idle_pct) + "% idle");
}
BENCHMARK(BM_LongestIdleCpu)->Args({8, 10})->Args({8, 90})->Args({64, 10})->Args({64, 90});

// One full periodic-balance pass over all domains of one core on a machine
// with 10 runnable threads per core, at 8 cores (one-node scale: two flat
// nodes) and 64 cores (the paper's 8x8 Bulldozer).
void BM_PeriodicBalancePass(benchmark::State& state) {
  const int n_cores = static_cast<int>(state.range(0));
  Topology topo = n_cores == 8 ? Topology::Flat(2, 4) : Topology::Bulldozer8x8();
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(topo.n_cores()), &client);
  Time now = 0;
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    for (int i = 0; i < 10; ++i) {
      ThreadParams params;
      params.parent_cpu = c;
      sched.CreateThread(now, params);
    }
    sched.PickNext(now, c);
  }
  now = Milliseconds(10);
  for (auto _ : state) {
    sched.Tick(now, 0);
    now += Milliseconds(200);  // Always past every balance interval.
  }
  state.SetLabel(std::to_string(topo.n_cores()) + " cores, " +
                 std::to_string(topo.n_cores() * 10) + " threads");
}
BENCHMARK(BM_PeriodicBalancePass)->Arg(8)->Arg(64);

// The common tick: every domain interval skips. Pre-wheel this walked all
// domains of the ticking core to increment balance_interval_skips; with the
// balance-due wheel it is one timestamp compare. Intervals are stretched so
// no balance ever comes due inside the measurement — this isolates exactly
// the all-skips path that dominates ticks on a busy machine.
void BM_TickAllSkips(benchmark::State& state) {
  Topology topo = Topology::Bulldozer8x8();
  NullClient client;
  SchedTunables tunables = SchedTunables::ForCpus(topo.n_cores());
  tunables.base_balance_interval = Seconds(100);  // Never due during the run.
  Scheduler sched(topo, SchedFeatures::Stock(), tunables, &client);
  Time now = 0;
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    ThreadParams params;  // One thread: busy tick, no NOHZ-kick scan.
    params.parent_cpu = c;
    params.affinity = CpuSet::Single(c);
    sched.CreateThread(now, params);
    sched.PickNext(now, c);
  }
  now = Milliseconds(10);
  for (auto _ : state) {
    sched.Tick(now, 0);
    now += Microseconds(1);
  }
  state.SetLabel("64 cores, all domain intervals skip");
}
BENCHMARK(BM_TickAllSkips);

// Periodic balancing with per-instant churn: every iteration reweights one
// queued thread on cpu 1, so node 0's member-version sum changes between
// passes while the seven remote node groups stay constant. This is the
// realistic mix for the cross-instant group cache — partial invalidation,
// not all-hit and not all-miss.
void BM_PeriodicBalancePassChurn(benchmark::State& state) {
  Topology topo = Topology::Bulldozer8x8();
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(topo.n_cores()), &client);
  Time now = 0;
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    for (int i = 0; i < 10; ++i) {
      ThreadParams params;
      params.parent_cpu = c;
      params.affinity = CpuSet::Single(c);  // Pinned: the stacking persists.
      sched.CreateThread(now, params);
    }
    sched.PickNext(now, c);
  }
  ThreadParams churn_params;
  churn_params.parent_cpu = 1;
  churn_params.affinity = CpuSet::Single(1);
  ThreadId churner = sched.CreateThread(now, churn_params);
  now = Milliseconds(10);
  int flip = 0;
  for (auto _ : state) {
    flip ^= 1;
    sched.SetNice(now, churner, flip);  // Reweight: version bump on cpu 1.
    sched.Tick(now, 0);
    now += Milliseconds(200);  // Always past every balance interval.
  }
  const SchedStats& st = sched.stats();
  double lookups = static_cast<double>(st.balance_group_cache_hits + st.balance_group_cache_misses);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(st.balance_group_cache_hits) / lookups : 0.0;
  state.SetLabel("64 cores, 640 threads, churn on cpu1");
}
BENCHMARK(BM_PeriodicBalancePassChurn);

// One newidle (idle-balance) pass: cpu 0 runs dry while cpus 1..7 of its
// node hold ten pinned queued threads each (nothing stealable) and every
// remote core runs one pinned hog. All trackers are born at exactly 1.0 and
// stay in the constant domain, so across instants the seven remote node
// groups can be served from the group cache; only cpu 0's own group — whose
// member versions the wake/block churn bumps — must be re-aggregated. This
// is the pass that dominates fig2_make_r/fixed wall time.
void BM_NewidlePass(benchmark::State& state) {
  Topology topo = Topology::Bulldozer8x8();
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(topo.n_cores()), &client);
  Time now = 0;
  for (CpuId c = 1; c < 8; ++c) {
    for (int i = 0; i < 10; ++i) {
      ThreadParams params;
      params.parent_cpu = c;
      params.affinity = CpuSet::Single(c);  // Pinned: newidle cannot steal it.
      sched.CreateThread(now, params);
    }
  }
  for (CpuId c = 8; c < topo.n_cores(); ++c) {
    ThreadParams params;
    params.parent_cpu = c;
    params.affinity = CpuSet::Single(c);
    sched.CreateThread(now, params);
    sched.PickNext(now, c);
  }
  ThreadParams tparams;
  tparams.parent_cpu = 0;
  tparams.affinity = CpuSet::Single(0);
  ThreadId toggler = sched.CreateThread(now, tparams);
  sched.PickNext(now, 0);
  now = Milliseconds(10);
  for (auto _ : state) {
    sched.BlockCurrent(now, 0);
    sched.PickNext(now, 0);  // Empty runqueue: the measured newidle pass.
    sched.Wake(now + 1, toggler, 0);
    sched.PickNext(now + 1, 0);
    now += Microseconds(50);  // Fresh instant per pass: cross-instant reuse.
  }
  const SchedStats& st = sched.stats();
  double lookups = static_cast<double>(st.balance_group_cache_hits + st.balance_group_cache_misses);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(st.balance_group_cache_hits) / lookups : 0.0;
  state.SetLabel("64 cores, 70 stacked on node0, newidle on cpu0");
}
BENCHMARK(BM_NewidlePass);

// One NOHZ sweep: a kicked idle core runs balancing on behalf of all ~60
// tickless idle cores of a 64-core machine while 4 cores hold pinned load.
// Every idle core's top-level domain lists the same node groups, so this is
// the sharing case the BalanceDomain group-stats memo targets; the
// cache_hit_rate counter reports how much of the sweep it absorbs.
void BM_NohzBalanceSweep(benchmark::State& state) {
  Topology topo = Topology::Bulldozer8x8();
  NullClient client;
  Scheduler sched(topo, SchedFeatures::Stock(), SchedTunables::ForCpus(topo.n_cores()), &client);
  Time now = 0;
  for (CpuId c = 0; c < 4; ++c) {
    for (int i = 0; i < 10; ++i) {
      ThreadParams params;
      params.parent_cpu = c;
      params.affinity = CpuSet::Single(c);  // Pinned: the imbalance persists.
      sched.CreateThread(now, params);
    }
    sched.PickNext(now, c);
  }
  now = Milliseconds(10);
  for (auto _ : state) {
    sched.RunNohzBalance(now, 4);
    now += Milliseconds(200);  // Always past every balance interval.
  }
  const SchedStats& st = sched.stats();
  double lookups = static_cast<double>(st.balance_group_cache_hits + st.balance_group_cache_misses);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(st.balance_group_cache_hits) / lookups : 0.0;
  state.SetLabel("64 cores, 60 idle, load pinned to 4");
}
BENCHMARK(BM_NohzBalanceSweep);

// One schedule+fire round-trip through the event queue: the per-event
// floor of everything the simulator does. This is the dispatch cost the
// InlineCallback rewrite targets (slot alloc + heap push + pop + invoke,
// no type-erasure allocation).
void BM_EventDispatch(benchmark::State& state) {
  EventQueue q;
  uint64_t fired = 0;
  uint64_t* p = &fired;
  for (auto _ : state) {
    q.ScheduleAfter(1, [p] { ++*p; });
    q.RunOne();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(fired));
}
BENCHMARK(BM_EventDispatch);

// A full simulated second of a busy 64-core machine: events per second of
// host time is the simulator's throughput metric.
void BM_SimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Topology topo = Topology::Bulldozer8x8();
    Simulator::Options opts;
    opts.seed = 5;
    auto sim = std::make_unique<Simulator>(topo, opts);
    for (int i = 0; i < 128; ++i) {
      Simulator::SpawnParams params;
      params.parent_cpu = i % topo.n_cores();
      sim->Spawn(std::make_unique<ScriptBehavior>(
                     std::vector<Action>{ComputeAction{Milliseconds(2)},
                                         SleepAction{Microseconds(500)}},
                     /*repeat=*/100000),
                 params);
    }
    state.ResumeTiming();
    sim->Run(Seconds(1));
    state.counters["events"] = static_cast<double>(sim->queue().executed_count());
  }
}
BENCHMARK(BM_SimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  return wcores::GbenchJsonMain("micro_sched_ops", argc, argv);
}
