// Microbenchmarks of the paper's tools (§4): the sanity checker's pass cost
// (the paper reports <0.5% overhead with 10,000 threads at S = 1s) and the
// visualization recorder's event cost (~20 bytes and a few nanoseconds per
// event; the commercial database produced ~186,200 events/s).
#include <benchmark/benchmark.h>

#include <memory>

#include "src/sim/simulator.h"
#include "src/tools/heatmap.h"
#include "src/tools/recorder.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

// One Algorithm-2 pass over a 64-core machine loaded with `threads` threads.
void BM_SanityCheckerPass(benchmark::State& state) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = 11;
  Simulator sim(topo, opts);
  const int threads = static_cast<int>(state.range(0));
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i % topo.n_cores();
    sim.Spawn(std::make_unique<ScriptBehavior>(
                  std::vector<Action>{ComputeAction{Seconds(3600)}}),
              params);
  }
  sim.Run(Milliseconds(50));  // Let queues settle.
  SanityChecker checker(&sim);
  CpuId idle_cpu;
  CpuId busy_cpu;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.CheckOnce(&idle_cpu, &busy_cpu));
  }
  // The paper's overhead model: one pass per S = 1s of machine time. With a
  // pass under ~50us even at 10,000 threads, that is far below the 0.5%
  // budget the paper reports.
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_SanityCheckerPass)->Arg(64)->Arg(1000)->Arg(10000);

// Appending one event to the in-memory trace array.
void BM_RecorderAppend(benchmark::State& state) {
  EventRecorder recorder(/*capacity=*/1 << 24);
  Time now = 0;
  for (auto _ : state) {
    recorder.OnNrRunning(now, static_cast<CpuId>(now % 64), static_cast<int>(now % 5));
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderAppend);

void BM_RecorderConsideredAppend(benchmark::State& state) {
  EventRecorder recorder(/*capacity=*/1 << 24);
  CpuSet considered = CpuSet::FirstN(64);
  Time now = 0;
  for (auto _ : state) {
    recorder.OnConsidered(now, 0, considered, ConsideredKind::kPeriodicBalance);
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderConsideredAppend);

// Rendering a Figure-2-sized heatmap from a trace.
void BM_HeatmapBuild(benchmark::State& state) {
  EventRecorder recorder;
  Rng rng(3);
  for (Time t = 0; t < Seconds(1); t += Microseconds(100)) {
    recorder.OnNrRunning(t, static_cast<CpuId>(rng.NextBelow(64)),
                         static_cast<int>(rng.NextBelow(4)));
  }
  for (auto _ : state) {
    Heatmap map = BuildHeatmap(recorder.events(), TraceEvent::Kind::kNrRunning, 64, 0, Seconds(1),
                               110);
    benchmark::DoNotOptimize(map.cells.data());
  }
  state.SetLabel(std::to_string(recorder.events().size()) + " events");
}
BENCHMARK(BM_HeatmapBuild);

// End-to-end recording overhead: the same busy simulation with and without
// the recorder attached; compare wall times of the two benchmarks.
void RunBusySim(TraceSink* sink) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = 13;
  Simulator sim(topo, opts, sink);
  for (int i = 0; i < 128; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = i % topo.n_cores();
    sim.Spawn(std::make_unique<ScriptBehavior>(
                  std::vector<Action>{ComputeAction{Milliseconds(1)},
                                      SleepAction{Microseconds(300)}},
                  /*repeat=*/1000),
              params);
  }
  sim.Run(Seconds(2));
}

void BM_SimWithoutRecorder(benchmark::State& state) {
  for (auto _ : state) {
    RunBusySim(nullptr);
  }
}
BENCHMARK(BM_SimWithoutRecorder)->Unit(benchmark::kMillisecond);

void BM_SimWithRecorder(benchmark::State& state) {
  for (auto _ : state) {
    EventRecorder recorder(1 << 24);
    RunBusySim(&recorder);
    state.counters["events"] = static_cast<double>(recorder.events().size());
  }
}
BENCHMARK(BM_SimWithRecorder)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wcores
