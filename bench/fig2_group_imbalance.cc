// Figure 2: the Group Imbalance bug, visualized.
//
// Workload of §3.1: a 64-thread kernel `make` plus two single-threaded R
// processes launched from different ttys (different autogroups) on the
// 64-core 8-node machine. The visualization tool records every runqueue
// size/load change; the heatmaps reproduce:
//   (a) #threads in each core's runqueue over time   — stock scheduler
//   (b) load of each core's runqueue over time       — stock scheduler
//   (c) same as (a) with the Group Imbalance fix applied
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/stream_util.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"
#include "src/tools/heatmap.h"
#include "src/tools/recorder.h"
#include "src/topo/topology.h"
#include "src/workloads/make_r.h"

namespace wcores {
namespace {

struct RunOutput {
  double make_s = 0;
  std::vector<double> r_s;
  Heatmap nr;
  Heatmap load;
};

RunOutput RunMakeR(bool fixed, const BenchOptions& bench_opts) {
  Topology topo = Topology::Bulldozer8x8();
  TelemetrySession telemetry(topo.n_cores());
  std::string label = fixed ? "fig2_fixed_" : "fig2_stock_";
  BenchStream stream;
  stream.Attach(bench_opts, &telemetry, topo, label);
  Simulator::Options opts;
  opts.features.fix_group_imbalance = fixed;
  opts.seed = 3001;
  Simulator sim(topo, opts, telemetry.sink());
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(400);
  config.r_work = Seconds(3);
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(10));
  if (!wl.MakeFinished()) {
    std::fprintf(stderr, "WARNING: make did not finish\n");
  }

  RunOutput out;
  out.make_s = ToSeconds(wl.MakeCompletionTime());
  for (Time t : wl.RCompletionTimes()) {
    out.r_s.push_back(ToSeconds(t));
  }
  Time window = wl.MakeCompletionTime();
  const std::vector<TraceEvent>& events = telemetry.recorder().events();
  out.nr = BuildHeatmap(events, TraceEvent::Kind::kNrRunning, topo.n_cores(), 0, window, 110);
  out.load = BuildHeatmap(events, TraceEvent::Kind::kLoad, topo.n_cores(), 0, window, 110);
  stream.Finish(bench_opts, &telemetry, sim.Now(), label);
  if (!bench_opts.telemetry_dir.empty()) {
    std::string error;
    if (!telemetry.WriteReports(bench_opts.telemetry_dir, sim.sched(), sim.Now(), label,
                                &error)) {
      std::fprintf(stderr, "telemetry: %s\n", error.c_str());
    }
  }
  return out;
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  PrintHeader("Figure 2: the Group Imbalance bug (make x64 + 2 R processes)",
              "EuroSys'16 Figure 2a/2b/2c; paper: make completes 13% faster with the fix");

  RunOutput buggy = RunMakeR(/*fixed=*/false, opts);
  RunOutput fixed = RunMakeR(/*fixed=*/true, opts);

  std::printf("(a) runqueue sizes over time, stock scheduler (rows: cores, node separators):\n");
  std::printf("%s\n", HeatmapToAscii(buggy.nr, 8, 3.0).c_str());
  std::printf("(b) runqueue loads over time, stock scheduler:\n");
  std::printf("%s\n", HeatmapToAscii(buggy.load, 8).c_str());
  std::printf("(c) runqueue sizes over time, Group Imbalance fix applied:\n");
  std::printf("%s\n", HeatmapToAscii(fixed.nr, 8, 3.0).c_str());

  WriteFile(opts, "fig2a_rq_sizes_stock.csv", HeatmapToCsv(buggy.nr));
  WriteFile(opts, "fig2b_rq_loads_stock.csv", HeatmapToCsv(buggy.load));
  WriteFile(opts, "fig2c_rq_sizes_fixed.csv", HeatmapToCsv(fixed.nr));
  WriteFile(opts, "fig2a_rq_sizes_stock.pgm", HeatmapToPgm(buggy.nr, 3.0));
  WriteFile(opts, "fig2c_rq_sizes_fixed.pgm", HeatmapToPgm(fixed.nr, 3.0));

  double delta = (fixed.make_s - buggy.make_s) / buggy.make_s * 100.0;
  std::printf("make completion: stock %.3fs, fixed %.3fs (%+.1f%%; paper: -13%%)\n", buggy.make_s,
              fixed.make_s, delta);
  for (size_t r = 0; r < buggy.r_s.size(); ++r) {
    std::printf("R process %zu completion: stock %.3fs, fixed %.3fs (should be ~unchanged)\n", r,
                buggy.r_s[r], fixed.r_s[r]);
  }
  std::printf("CSV/PGM files written to %s/ (fig2a/b/c).\n", opts.out_dir.c_str());
  if (!opts.telemetry_dir.empty()) {
    std::printf("telemetry reports written to %s/\n", opts.telemetry_dir.c_str());
  }
  return 0;
}
