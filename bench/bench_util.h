// Shared helpers for the table/figure reproduction binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <string>

namespace wcores {

// Results land next to the binary in bench_results/ for inspection.
inline void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================================\n");
}

}  // namespace wcores

#endif  // BENCH_BENCH_UTIL_H_
