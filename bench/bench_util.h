// Shared helpers for the table/figure reproduction binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace wcores {

// Flags shared by every reproduction binary.
struct BenchOptions {
  std::string out_dir = "out";  // CSV/PGM artifacts land here.
  std::string telemetry_dir;    // Empty = telemetry reports disabled.
  std::string stream_dir;       // --telemetry-stream artifacts; see below.
  bool stream = false;          // Streaming pipeline requested.
};

// A binary-specific flag, parsed alongside the shared set. Matches
// --NAME=VALUE; the raw VALUE is stored into *value (the binary converts).
struct BenchFlag {
  const char* name;    // Without the leading "--".
  std::string* value;
  const char* help;    // One line for the usage message.
};

// Parses the shared flags — --out=DIR, --telemetry[=DIR] (bare --telemetry
// defaults to <out_dir>/telemetry), --telemetry-stream[=DIR] (the bounded
// streaming pipeline; bare form defaults to <out_dir>/stream) — plus any
// binary-specific `extra` flags. Unknown flags abort with a usage message
// listing everything, so the binaries stay runnable with no arguments, as
// CI expects.
inline BenchOptions ParseBenchArgs(int argc, char** argv,
                                   const std::vector<BenchFlag>& extra = {}) {
  BenchOptions opts;
  bool telemetry = false;
  auto usage = [&](const char* bad) {
    std::fprintf(stderr,
                 "unknown argument '%s'\nusage: %s [--out=DIR] [--telemetry[=DIR]]"
                 " [--telemetry-stream[=DIR]]",
                 bad, argv[0]);
    for (const BenchFlag& f : extra) {
      std::fprintf(stderr, " [--%s=V]", f.name);
    }
    std::fprintf(stderr, "\n");
    for (const BenchFlag& f : extra) {
      std::fprintf(stderr, "  --%s=V  %s\n", f.name, f.help);
    }
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      opts.out_dir = arg.substr(6);
      continue;
    }
    if (arg == "--telemetry") {
      telemetry = true;
      continue;
    }
    if (arg.rfind("--telemetry=", 0) == 0) {
      opts.telemetry_dir = arg.substr(12);
      continue;
    }
    if (arg == "--telemetry-stream") {
      opts.stream = true;
      continue;
    }
    if (arg.rfind("--telemetry-stream=", 0) == 0) {
      opts.stream = true;
      opts.stream_dir = arg.substr(19);
      continue;
    }
    bool matched = false;
    for (const BenchFlag& f : extra) {
      std::string prefix = std::string("--") + f.name + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *f.value = arg.substr(prefix.size());
        matched = true;
        break;
      }
    }
    if (!matched) {
      usage(arg.c_str());
    }
  }
  if (telemetry && opts.telemetry_dir.empty()) {
    opts.telemetry_dir = opts.out_dir + "/telemetry";
  }
  if (opts.stream && opts.stream_dir.empty()) {
    opts.stream_dir = opts.out_dir + "/stream";
  }
  return opts;
}

// ---- Checked numeric flag parsing ------------------------------------------
//
// Bare std::stoi/std::stod on flag values turns a typo ("--threads=abc",
// "--seed=") into an uncaught std::invalid_argument and a terminate() with
// no indication of which flag was wrong. Every numeric flag goes through
// these instead: the whole value must parse as one in-range number, and
// anything else takes the same hard-error exit(2) path as an unknown flag.

[[noreturn]] inline void BadFlagValue(const char* flag, const std::string& value,
                                      const char* expected) {
  std::fprintf(stderr, "invalid value '%s' for --%s: expected %s\n", value.c_str(), flag,
               expected);
  std::exit(2);
}

// Signed integer in [min_value, max_value]; `def` when the flag was not given.
inline long long ParseIntFlag(const char* flag, const std::string& value, long long def,
                              long long min_value, long long max_value) {
  if (value.empty()) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() || v < min_value || v > max_value) {
    char expected[96];
    std::snprintf(expected, sizeof(expected), "an integer in [%lld, %lld]", min_value,
                  max_value);
    BadFlagValue(flag, value, expected);
  }
  return v;
}

// Unsigned 64-bit integer; `def` when the flag was not given.
inline uint64_t ParseU64Flag(const char* flag, const std::string& value, uint64_t def) {
  if (value.empty()) {
    return def;
  }
  if (value[0] == '-' || value[0] == '+') {
    BadFlagValue(flag, value, "an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) {
    BadFlagValue(flag, value, "an unsigned integer");
  }
  return v;
}

// Finite double in [min_value, max_value]; `def` when the flag was not given.
inline double ParseDoubleFlag(const char* flag, const std::string& value, double def,
                              double min_value, double max_value) {
  if (value.empty()) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size() || !std::isfinite(v) ||
      v < min_value || v > max_value) {
    char expected[96];
    std::snprintf(expected, sizeof(expected), "a number in [%g, %g]", min_value, max_value);
    BadFlagValue(flag, value, expected);
  }
  return v;
}

// ---- Host-core detection ---------------------------------------------------
//
// std::thread::hardware_concurrency() is allowed to return 0 ("not
// computable"). Callers that sweep with a fallback of 1 thread must also
// *report* 1 — recording the raw 0 while sweeping with 1 feeds trend
// tooling a host with no cores.
struct HostCores {
  int cores = 1;         // The value actually used (>= 1).
  bool detected = true;  // False when hardware_concurrency() returned 0.
};

inline HostCores DetectHostCores() {
  unsigned hw = std::thread::hardware_concurrency();
  HostCores out;
  out.detected = hw != 0;
  out.cores = out.detected ? static_cast<int>(hw) : 1;
  return out;
}

// Writes `name` into opts.out_dir, creating the directory on demand, so
// artifacts never litter the working directory itself.
inline void WriteFile(const BenchOptions& opts, const std::string& name,
                      const std::string& contents) {
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  std::ofstream out(std::filesystem::path(opts.out_dir) / name);
  out << contents;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================================\n");
}

// ---- Machine-readable bench results (BENCH_<name>.json) ---------------------
//
// The perf trajectory is tracked by checked-in BENCH_*.json files. Every
// bench that wants to participate reduces its run to a BenchReport; the
// JSON shape is deliberately flat so diffs between commits read naturally.

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  // %.17g round-trips doubles; trim to %g when exact so small integers stay
  // readable ("4" rather than "4.0000000000000000").
  std::snprintf(buf, sizeof(buf), "%g", v);
  double back = std::strtod(buf, nullptr);
  if (back != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

struct BenchReport {
  std::string bench;  // Short name: "sweep", "micro_sched_ops", ...

  struct Row {
    std::string name;
    std::map<std::string, double> metrics;       // Numeric measurements.
    std::map<std::string, std::string> labels;   // Non-numeric annotations.
  };
  std::vector<Row> rows;
  std::map<std::string, double> context_num;     // e.g. host_cores, threads.
  std::map<std::string, std::string> context;    // e.g. build_type.

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + JsonEscape(bench) + "\",\n  \"context\": {";
    bool first = true;
    for (const auto& [k, v] : context) {
      out += first ? "" : ", ";
      out += "\"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
      first = false;
    }
    for (const auto& [k, v] : context_num) {
      out += first ? "" : ", ";
      out += "\"" + JsonEscape(k) + "\": " + JsonNumber(v);
      first = false;
    }
    out += "},\n  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out += "    {\"name\": \"" + JsonEscape(row.name) + "\"";
      for (const auto& [k, v] : row.labels) {
        out += ", \"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
      }
      for (const auto& [k, v] : row.metrics) {
        out += ", \"" + JsonEscape(k) + "\": " + JsonNumber(v);
      }
      out += i + 1 < rows.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  // Writes BENCH_<bench>.json into opts.out_dir.
  void Write(const BenchOptions& opts) const {
    WriteFile(opts, "BENCH_" + bench + ".json", ToJson());
  }
};

}  // namespace wcores

#endif  // BENCH_BENCH_UTIL_H_
