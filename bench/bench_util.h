// Shared helpers for the table/figure reproduction binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace wcores {

// Flags shared by every reproduction binary.
struct BenchOptions {
  std::string out_dir = "out";  // CSV/PGM artifacts land here.
  std::string telemetry_dir;    // Empty = telemetry reports disabled.
};

// Parses the shared flags: --out=DIR, --telemetry[=DIR] (bare --telemetry
// defaults to <out_dir>/telemetry). Unknown flags abort with usage, so the
// binaries stay runnable with no arguments, as CI expects.
inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions opts;
  bool telemetry = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      opts.out_dir = arg.substr(6);
    } else if (arg == "--telemetry") {
      telemetry = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      opts.telemetry_dir = arg.substr(12);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\nusage: %s [--out=DIR] [--telemetry[=DIR]]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
  if (telemetry && opts.telemetry_dir.empty()) {
    opts.telemetry_dir = opts.out_dir + "/telemetry";
  }
  return opts;
}

// Writes `name` into opts.out_dir, creating the directory on demand, so
// artifacts never litter the working directory itself.
inline void WriteFile(const BenchOptions& opts, const std::string& name,
                      const std::string& contents) {
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  std::ofstream out(std::filesystem::path(opts.out_dir) / name);
  out << contents;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================================\n");
}

}  // namespace wcores

#endif  // BENCH_BENCH_UTIL_H_
