// Figure 5: the Missing Scheduling Domains bug, from Core 0's perspective.
//
// After a core is disabled and re-enabled, a 16-thread application is
// launched on Node 1. The visualization tool records the cores each
// balancing call examines; with the bug, Core 0 only ever considers its SMT
// sibling and the cores of its own node — never the overloaded Node 1 —
// because the cross-NUMA domain levels were dropped during regeneration.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/stream_util.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"
#include "src/tools/heatmap.h"
#include "src/tools/profiler.h"
#include "src/tools/recorder.h"
#include "src/topo/topology.h"
#include "src/workloads/nas.h"

namespace wcores {
namespace {

struct RunOutput {
  CpuSet considered_by_core0;
  std::string timeline;
  std::string csv;
  uint64_t balance_calls = 0;
  double completion_s = 0;
};

RunOutput Run(bool fixed, const BenchOptions& bench_opts) {
  Topology topo = Topology::Bulldozer8x8();
  TelemetrySession telemetry(topo.n_cores());
  std::string label = fixed ? "fig5_fixed_" : "fig5_stock_";
  BenchStream stream;
  stream.Attach(bench_opts, &telemetry, topo, label);
  EventRecorder& recorder = telemetry.recorder();
  Simulator::Options opts;
  opts.features.fix_missing_domains = fixed;
  opts.seed = 3005;
  Simulator sim(topo, opts, telemetry.sink());

  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  recorder.Clear();  // Trace only the application run.

  NasConfig config;
  config.app = NasApp::kEp;
  config.threads = 16;
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = 0.4;
  NasWorkload wl(&sim, config);
  wl.Setup();
  // Keep core 0 busy with one thread so it runs periodic balancing, as in
  // the figure (its vertical blue lines come every 4ms).
  Simulator::SpawnParams hog;
  hog.parent_cpu = 0;
  sim.Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{Seconds(2)}}),
            hog);
  sim.Run(Seconds(30));

  RunOutput out;
  out.considered_by_core0 = ConsideredUnion(recorder.events(), 0);
  out.timeline = ConsideredToAscii(recorder.events(), 0, topo.n_cores(), 64);
  out.csv = ConsideredToCsv(recorder.events(), 0);
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == TraceEvent::Kind::kConsidered && e.cpu == 0 &&
        e.sub != static_cast<uint8_t>(ConsideredKind::kWakeup)) {
      out.balance_calls += 1;
    }
  }
  out.completion_s = ToSeconds(wl.CompletionTime());
  stream.Finish(bench_opts, &telemetry, sim.Now(), label);
  if (!bench_opts.telemetry_dir.empty()) {
    std::string error;
    if (!telemetry.WriteReports(bench_opts.telemetry_dir, sim.sched(), sim.Now(), label,
                                &error)) {
      std::fprintf(stderr, "telemetry: %s\n", error.c_str());
    }
  }
  return out;
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  PrintHeader("Figure 5: the Missing Scheduling Domains bug (Core 0's balancing view)",
              "EuroSys'16 Figure 5 — cores considered by Core 0 after hotplug, 16-thread app "
              "on Node 1");

  RunOutput buggy = Run(/*fixed=*/false, opts);
  RunOutput fixed = Run(/*fixed=*/true, opts);

  std::printf("stock: cores Core 0 examined across %llu balancing calls: %s\n",
              static_cast<unsigned long long>(buggy.balance_calls),
              buggy.considered_by_core0.ToString().c_str());
  std::printf("fixed: cores Core 0 examined across %llu balancing calls: %s\n\n",
              static_cast<unsigned long long>(fixed.balance_calls),
              fixed.considered_by_core0.ToString().c_str());

  std::printf("stock timeline (rows: cores; columns: successive balancing calls by Core 0;\n"
              "'|' = considered — note Core 0 never looks past its own node):\n%s\n",
              buggy.timeline.c_str());

  std::printf("app completion: stock %.3fs, fixed %.3fs\n", buggy.completion_s,
              fixed.completion_s);
  WriteFile(opts, "fig5_considered_stock.csv", buggy.csv);
  WriteFile(opts, "fig5_considered_fixed.csv", fixed.csv);
  std::printf("CSV files written to %s/ (fig5_considered_*).\n", opts.out_dir.c_str());
  return 0;
}
