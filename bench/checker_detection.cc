// §4.1 detection-probability study: "the probability of detecting the actual
// bugs ... depends on the frequency and duration of the invariant violation.
// ... If the fraction is small, the chances of detecting the bug are also
// small, but so is the impact on performance. ... if the bug-triggering
// workload keeps running, the chances that the sanity checker detects the
// bug during at least one of the checks keep increasing."
//
// We synthesize intermittent violations (Overload-on-Wakeup style: episodes
// of a pinned 2-threads-1-core overload lasting D, recurring with duty cycle
// F) and measure, across seeds, the probability that at least one check
// confirms a violation, as a function of F and of total runtime.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/stream_util.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"
#include "src/tools/sanity_checker.h"
#include "src/topo/topology.h"

namespace wcores {
namespace {

// One run: violation episodes of duration ~`episode` starting every
// `period`, for `total` virtual time. The episodes are *real* bug
// occurrences: on a machine with the Missing Scheduling Domains bug armed
// (hotplugged core), a burst of 16 threads forked on node 0 stays confined
// to its 8 cores (2 per core) until the burst's work drains — while the
// other 56 cores idle. Returns true if the checker confirmed at least one
// violation.
bool DetectedOnce(Time episode, Time period, Time total, uint64_t seed,
                  std::string* example_report, const BenchOptions& bench_opts,
                  uint64_t* starvation_findings, std::string* last_stream_json) {
  Topology topo = Topology::Bulldozer8x8();
  // A small telemetry session rides along so confirmed violations carry a
  // machine-wide latency digest (the recorder stays tiny; only the latency
  // accountant matters here).
  TelemetrySession telemetry(topo.n_cores(), /*recorder_capacity=*/1 << 12);
  if (bench_opts.stream) {
    // The streaming starvation detector rides along as the second invariant
    // monitor of §4.1: per-task runnable-but-off-cpu horizons, next to the
    // checker's machine-level idle-while-overloaded invariant.
    telemetry.AttachStream(TelemetryStream::ForTopology(topo));
  }
  Simulator::Options opts;
  opts.seed = seed;
  Simulator sim(topo, opts, telemetry.sink());
  sim.SetCpuOnline(3, false);  // Arm the bug.
  sim.SetCpuOnline(3, true);

  // Aperiodic episodes (inter-arrival jittered +/-50%), like real bug
  // occurrences: each S-check then samples an independent alignment, so
  // longer runs accumulate detection probability.
  Rng rng(seed);
  Time start = rng.NextTime(0, period);
  while (start + episode <= total) {
    sim.At(start, [&sim, episode] {
      for (int i = 0; i < 16; ++i) {
        Simulator::SpawnParams params;
        params.parent_cpu = 0;
        sim.Spawn(std::make_unique<ScriptBehavior>(
                      std::vector<Action>{ComputeAction{episode / 2}}),
                  params);
      }
    });
    start += rng.NextTime(period / 2, period + period / 2);
  }

  SanityChecker::Options copts;
  copts.check_interval = Seconds(1);             // S, the paper's default.
  copts.confirmation_window = Milliseconds(100);  // M.
  copts.latency_snapshot = [&telemetry] { return telemetry.LatencySnapshot(); };
  SanityChecker checker(&sim, copts);
  checker.Start();
  sim.Run(total);
  if (example_report != nullptr && example_report->empty() && !checker.violations().empty()) {
    *example_report = SanityChecker::Report(checker.violations().front());
  }
  if (TelemetryStream* stream = telemetry.stream()) {
    stream->Finish(sim.Now());
    *starvation_findings += stream->analyzer().findings_total();
    *last_stream_json = stream->SummaryJson();
  }
  return !checker.violations().empty();
}

double DetectionProbability(Time episode, Time period, Time total, int runs,
                            std::string* example_report, const BenchOptions& bench_opts,
                            uint64_t* starvation_findings, std::string* last_stream_json) {
  int hits = 0;
  for (int r = 0; r < runs; ++r) {
    if (DetectedOnce(episode, period, total, 1000 + 31 * static_cast<uint64_t>(r),
                     example_report, bench_opts, starvation_findings, last_stream_json)) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / runs;
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  PrintHeader("Sanity-checker detection probability vs violation duty cycle",
              "EuroSys'16 §4.1 — S = 1s, M = 100ms, intermittent violations");

  constexpr int kRuns = 20;
  std::printf("%-28s %-12s %-12s %s\n", "episode/period", "duty cycle", "runtime",
              "P(detect >= once)");
  std::string csv = "episode_ms,period_ms,duty,total_s,p_detect\n";
  struct Row {
    Time episode;
    Time period;
    Time total;
  };
  const Row kRows[] = {
      {Milliseconds(150), Seconds(4), Seconds(10)},
      {Milliseconds(400), Seconds(4), Seconds(10)},
      {Milliseconds(800), Seconds(4), Seconds(10)},
      {Milliseconds(1500), Seconds(4), Seconds(10)},
      {Milliseconds(400), Seconds(4), Seconds(40)},
      {Milliseconds(400), Seconds(4), Seconds(160)},
  };
  std::string example_report;
  uint64_t starvation_findings = 0;
  std::string last_stream_json;
  for (const Row& row : kRows) {
    double p = DetectionProbability(row.episode, row.period, row.total, kRuns, &example_report,
                                    opts, &starvation_findings, &last_stream_json);
    char label[64];
    std::snprintf(label, sizeof(label), "%.0fms / %.0fs", ToMilliseconds(row.episode),
                  ToSeconds(row.period));
    std::printf("%-28s %10.1f%% %9.0fs  %.2f\n", label,
                100.0 * ToSeconds(row.episode) / ToSeconds(row.period), ToSeconds(row.total), p);
    char line[128];
    std::snprintf(line, sizeof(line), "%.0f,%.0f,%.3f,%.0f,%.2f\n", ToMilliseconds(row.episode),
                  ToMilliseconds(row.period), ToSeconds(row.episode) / ToSeconds(row.period),
                  ToSeconds(row.total), p);
    csv += line;
  }
  WriteFile(opts, "checker_detection.csv", csv);
  std::printf("\nShape checks: longer episodes and longer runtimes raise detection\n"
              "probability toward 1, as §4.1 argues; sub-M episodes are (correctly) missed.\n"
              "CSV: %s/checker_detection.csv\n", opts.out_dir.c_str());
  if (!example_report.empty()) {
    std::printf("\nexample confirmed violation (with latency digest):\n%s", example_report.c_str());
  }
  if (opts.stream) {
    std::printf("\nstreaming starvation detector (second monitor, 100ms horizon): "
                "%llu findings across all runs\n",
                static_cast<unsigned long long>(starvation_findings));
    if (!last_stream_json.empty()) {
      std::printf("STREAM checker_detection_last_ %s\n", last_stream_json.c_str());
      std::error_code ec;
      std::filesystem::create_directories(opts.stream_dir, ec);
      std::ofstream out(std::filesystem::path(opts.stream_dir) / "checker_detection_stream.json",
                        std::ios::binary | std::ios::trunc);
      out << last_stream_json << "\n";
    }
  }
  return 0;
}
