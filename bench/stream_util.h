// --telemetry-stream wiring shared by the reproduction binaries.
//
// Usage, once per simulated run:
//   TelemetrySession telemetry(topo.n_cores());
//   BenchStream stream;
//   stream.Attach(bench_opts, &telemetry, topo, "fig2_stock_");
//   Simulator sim(topo, opts, telemetry.sink());
//   ... run ...
//   stream.Finish(bench_opts, &telemetry, sim.Now(), "fig2_stock_");
//
// Attach is a no-op unless --telemetry-stream[=DIR] was given. Finish closes
// the pipeline, prints the one-line JSON summary to stdout (prefixed with
// "STREAM <label>" so sweeps stay grep-able) and writes <label>stream.json
// plus the Gantt span CSV under the stream directory.
#ifndef BENCH_STREAM_UTIL_H_
#define BENCH_STREAM_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/telemetry/telemetry.h"
#include "src/topo/topology.h"

namespace wcores {

struct BenchStream {
  std::ofstream spans;

  void Attach(const BenchOptions& opts, TelemetrySession* telemetry, const Topology& topo,
              const std::string& label, Time starvation_horizon = Milliseconds(100)) {
    if (!opts.stream) {
      return;
    }
    std::error_code ec;
    std::filesystem::create_directories(opts.stream_dir, ec);
    spans.open(std::filesystem::path(opts.stream_dir) / (label + "spans.csv"),
               std::ios::binary | std::ios::trunc);
    TelemetryStream::Options stream_opts =
        TelemetryStream::ForTopology(topo, starvation_horizon);
    stream_opts.analyzer.span_out = spans.is_open() ? &spans : nullptr;
    telemetry->AttachStream(std::move(stream_opts));
  }

  void Finish(const BenchOptions& opts, TelemetrySession* telemetry, Time now,
              const std::string& label) {
    TelemetryStream* stream = telemetry->stream();
    if (stream == nullptr) {
      return;
    }
    stream->Finish(now);
    std::string json = stream->SummaryJson();
    std::printf("STREAM %s %s\n", label.c_str(), json.c_str());
    std::ofstream out(std::filesystem::path(opts.stream_dir) / (label + "stream.json"),
                      std::ios::binary | std::ios::trunc);
    out << json << "\n";
    if (spans.is_open()) {
      spans.close();
    }
  }
};

}  // namespace wcores

#endif  // BENCH_STREAM_UTIL_H_
