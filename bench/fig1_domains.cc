// Figure 1 + Figure 4 + Table 5: the machine and its scheduling domains.
//
// Prints the hardware description (Table 5), the inter-node hop matrix
// (Figure 4), the scheduling-domain hierarchy of a core (Figure 1), and the
// §3.2 example: the machine-level scheduling groups as built by the stock
// kernel (from Core 0's perspective, shared by everyone) versus the fix
// (each core's own perspective).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/topo/domains.h"
#include "src/topo/topology.h"

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  (void)opts;
  Topology topo = Topology::Bulldozer8x8();

  PrintHeader("Figure 1 / Figure 4 / Table 5: machine topology and scheduling domains",
              "EuroSys'16 Figures 1 and 4, Table 5");

  const HardwareSpec& spec = topo.spec();
  std::printf("Table 5 — hardware:\n");
  std::printf("  CPUs:         %s\n", spec.cpus.c_str());
  std::printf("  Clock:        %s\n", spec.clock.c_str());
  std::printf("  Caches:       %s\n", spec.caches.c_str());
  std::printf("  Memory:       %s\n", spec.memory.c_str());
  std::printf("  Interconnect: %s\n\n", spec.interconnect.c_str());

  std::printf("Figure 4 — inter-node hop matrix:\n%s\n", topo.HopMatrixToString().c_str());

  // Figure 1 proper is drawn for a 32-core, 4-node example machine.
  Topology example = Topology::Example32();
  DomainBuildOptions example_opts;
  auto example_trees = BuildDomains(example, example.AllCpus(), example_opts);
  std::printf("Figure 1 — scheduling domains of core 0 on the 32-core example machine\n"
              "(pair, node, node + one-hop nodes, whole machine):\n%s\n",
              DomainTreeToString(example_trees[0]).c_str());

  DomainBuildOptions stock;
  stock.perspective = GroupPerspective::kCore0;
  auto stock_trees = BuildDomains(topo, topo.AllCpus(), stock);

  std::printf("The same hierarchy on the experimental machine (stock construction):\n%s\n",
              DomainTreeToString(stock_trees[0]).c_str());

  DomainBuildOptions fixed;
  fixed.perspective = GroupPerspective::kPerCore;
  auto fixed_trees = BuildDomains(topo, topo.AllCpus(), fixed);

  CpuId node2_cpu = topo.CpusOfNode(2).First();
  std::printf("Section 3.2 example — machine-level groups seen by a core of Node 2:\n");
  std::printf("stock (Core-0 perspective, bug):\n");
  const SchedDomain& stock_top = stock_trees[node2_cpu].domains.back();
  for (size_t g = 0; g < stock_top.groups.size(); ++g) {
    std::printf("  group %zu%s: cpus %s\n", g,
                static_cast<int>(g) == stock_top.local_group ? " (local)" : "",
                stock_top.groups[g].cpus.ToString().c_str());
  }
  std::printf("fixed (per-core perspective):\n");
  const SchedDomain& fixed_top = fixed_trees[node2_cpu].domains.back();
  for (size_t g = 0; g < fixed_top.groups.size(); ++g) {
    std::printf("  group %zu%s: cpus %s\n", g,
                static_cast<int>(g) == fixed_top.local_group ? " (local)" : "",
                fixed_top.groups[g].cpus.ToString().c_str());
  }
  std::printf("\nNote how with the bug, Nodes 1 (cpus 8-15) and 2 (cpus 16-23) appear\n"
              "together in every group, so neither can ever observe an imbalance in the\n"
              "other; the fix separates them in Node 2's own group list.\n");
  return 0;
}
