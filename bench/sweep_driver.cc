// Parallel scenario-sweep driver.
//
// Runs the figure/table scenario matrix (plus optional random scenarios)
// through the sweep runner at increasing host-thread counts, checks that
// the combined trace hash is identical at every count (parallelism must
// not change behavior), and reports the scaling curve. Emits
// BENCH_sweep.json with per-scenario results and per-thread-count wall
// times so the perf trajectory is machine-readable.
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/simkit/check.h"
#include "src/tools/sweep/sweep.h"

namespace wcores {
namespace {

int Main(int argc, char** argv) {
  std::string threads_s, scale_s, random_s, seed_s;
  BenchOptions opts = ParseBenchArgs(
      argc, argv,
      {
          {"threads", &threads_s, "max host threads to sweep up to (default: hardware)"},
          {"scale", &scale_s, "workload scale factor (default 0.25)"},
          {"random", &random_s, "extra random scenarios to append (default 6)"},
          {"seed", &seed_s, "seed for the random scenarios (default 99)"},
      });
  unsigned hw = std::thread::hardware_concurrency();
  int max_threads = threads_s.empty() ? static_cast<int>(hw ? hw : 1) : std::stoi(threads_s);
  if (max_threads < 1) {
    max_threads = 1;
  }
  double scale = scale_s.empty() ? 0.25 : std::stod(scale_s);
  int random_count = random_s.empty() ? 6 : std::stoi(random_s);
  uint64_t seed = seed_s.empty() ? 99 : std::stoull(seed_s);

  PrintHeader("Parallel scenario sweep", "§4 evaluation methodology (scenario matrix)");

  std::vector<Scenario> scenarios = FigureScenarios(scale);
  for (Scenario& s : RandomScenarios(seed, random_count)) {
    scenarios.push_back(std::move(s));
  }
  std::printf("%zu scenarios, up to %d host threads (host has %u)\n\n", scenarios.size(),
              max_threads, hw);

  // Thread counts: 1, 2, 4, ... up to max_threads (always including both
  // endpoints), so the 1→4 scaling factor is directly measurable.
  std::vector<int> counts;
  for (int t = 1; t < max_threads; t *= 2) {
    counts.push_back(t);
  }
  counts.push_back(max_threads);

  BenchReport report;
  report.bench = "sweep";
  report.context_num["host_cores"] = hw;
  report.context_num["scenarios"] = static_cast<double>(scenarios.size());
  report.context_num["scale"] = scale;

  uint64_t reference_hash = 0;
  double wall_1thread = 0;
  SweepReport last;
  for (size_t ci = 0; ci < counts.size(); ++ci) {
    SweepOptions sweep_opts;
    sweep_opts.threads = counts[ci];
    SweepReport r = RunSweep(scenarios, sweep_opts);
    if (ci == 0) {
      reference_hash = r.CombinedHash();
      wall_1thread = r.wall_ms;
    } else {
      // Parallelism must be invisible in the results.
      WC_CHECK(r.CombinedHash() == reference_hash, "sweep results differ across thread counts");
    }
    double speedup = wall_1thread / (r.wall_ms > 0 ? r.wall_ms : 1e-9);
    std::printf("threads=%2d  wall=%9.1f ms  speedup=%.2fx  events=%llu  hash=%016llx\n",
                r.threads, r.wall_ms, speedup,
                static_cast<unsigned long long>(r.TotalSimEvents()),
                static_cast<unsigned long long>(r.CombinedHash()));
    BenchReport::Row row;
    row.name = "scaling/threads=" + std::to_string(r.threads);
    row.metrics["threads"] = r.threads;
    row.metrics["wall_ms"] = r.wall_ms;
    row.metrics["speedup_vs_1"] = speedup;
    report.rows.push_back(std::move(row));
    last = std::move(r);
  }

  std::printf("\nper-scenario results (threads=%d):\n", last.threads);
  double total_virtual = 0;
  for (const ScenarioResult& r : last.results) {
    total_virtual += r.virtual_seconds;
    std::printf("  %-28s hash=%016llx events=%8llu switches=%7llu migr=%6llu %6.1f ms\n",
                r.name.c_str(), static_cast<unsigned long long>(r.trace_hash),
                static_cast<unsigned long long>(r.sim_events),
                static_cast<unsigned long long>(r.context_switches),
                static_cast<unsigned long long>(r.migrations), r.wall_ms);
    BenchReport::Row row;
    row.name = r.name;
    row.labels["trace_hash"] = [&] {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(r.trace_hash));
      return std::string(buf);
    }();
    row.metrics["sim_events"] = static_cast<double>(r.sim_events);
    row.metrics["context_switches"] = static_cast<double>(r.context_switches);
    row.metrics["migrations"] = static_cast<double>(r.migrations);
    row.metrics["virtual_s"] = r.virtual_seconds;
    row.metrics["wall_ms"] = r.wall_ms;
    for (const auto& [k, v] : r.metrics) {
      row.metrics[k] = v;
    }
    report.rows.push_back(std::move(row));
  }
  report.context_num["virtual_seconds_total"] = total_virtual;

  // The scaling ratio downstream tooling reads (ROADMAP "sweep scaling
  // evidence"). On a 1-core host there is only the threads=1 row and no
  // ratio to take — emit an explicit "scaling": null (NaN serializes as
  // null) rather than omitting the key, so consumers see "unmeasurable
  // here" instead of dividing by a missing row.
  if (counts.size() > 1) {
    report.context_num["scaling"] = wall_1thread / (last.wall_ms > 0 ? last.wall_ms : 1e-9);
  } else {
    report.context_num["scaling"] = std::numeric_limits<double>::quiet_NaN();
    std::printf("\n1-core host: scaling unmeasurable, reporting \"scaling\": null\n");
  }

  report.Write(opts);
  std::printf("\nwrote %s/BENCH_sweep.json\n", opts.out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) { return wcores::Main(argc, argv); }
