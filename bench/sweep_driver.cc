// Parallel scenario-sweep driver.
//
// Runs the figure/table scenario matrix (plus optional random scenarios)
// through the sweep runner at increasing host-thread counts, checks that
// the combined trace hash is identical at every count (parallelism must
// not change behavior), and reports the scaling curve. Emits
// BENCH_sweep.json with per-scenario results and per-thread-count wall
// times so the perf trajectory is machine-readable.
//
// --telemetry-stream attaches the bounded-memory streaming pipeline to every
// scenario (one STREAM summary line per run, sweep_stream.jsonl artifact)
// and cross-checks that attachment leaves every trace hash byte-identical.
// --big-mix=MIN_EVENTS instead runs one huge random mix in a single pass
// with the stream attached and asserts the pipeline's contract at scale:
// >= MIN_EVENTS trace events, zero ring drops, and peak aggregator memory
// within the O(tasks + cpus) budget.
// --policy=NAME|all instead runs the cross-policy arena: the same scenario
// matrix under each registered scheduling policy (cfs, o1, coreidle, ...),
// with a per-policy replay-determinism check, a per-scenario leaderboard,
// and BENCH_policy_arena.json.
//
// Fleet-scale sweep service (src/tools/sweep/{grid,manifest,receipts,shard}):
//   --make-manifest=FILE [--grid=SPEC]   expand a parameter grid and
//       materialize the manifest of scenario instances (SPEC defaults to
//       the 540-instance default fleet grid; see grid.h for the syntax).
//   --shard=I/N --manifest=FILE --results=DIR [--threads=T]   claim work
//       from the manifest with flock-based work stealing, append one JSON
//       receipt line per completed scenario to DIR/shard-I.jsonl, and skip
//       anything already receipted (resume). Merge and verify the shards
//       with `wc-trend merge`.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/modsched/policy_registry.h"
#include "src/simkit/check.h"
#include "src/tools/sweep/grid.h"
#include "src/tools/sweep/manifest.h"
#include "src/tools/sweep/shard.h"
#include "src/tools/sweep/sweep.h"

namespace wcores {
namespace {

// The scenario's headline completion metric (lower = better), or a negative
// value when the workload defines none (random mixes run to a fixed
// horizon and are reported, not ranked).
double CompletionScore(const ScenarioResult& r) {
  for (const char* key : {"make_s", "q18_s", "completion_s"}) {
    auto it = r.metrics.find(key);
    if (it != r.metrics.end()) {
      return it->second;
    }
  }
  return -1.0;
}

// Cross-policy arena: the full scenario matrix under every requested
// policy, a per-policy determinism check (each policy's sweep replays
// bit-identically across thread counts), a per-scenario leaderboard, and
// BENCH_policy_arena.json.
int RunPolicyArena(const BenchOptions& opts, const std::string& policy_arg, double scale,
                   int random_count, uint64_t seed, int max_threads) {
  PrintHeader("Cross-policy scheduler arena",
              "§5 modular scheduling: one scenario matrix, every registered policy");

  std::vector<std::string> policies;
  if (policy_arg == "all") {
    policies = SchedPolicyNames();
  } else {
    if (CreateSchedPolicy(policy_arg) == nullptr) {
      std::fprintf(stderr, "unknown --policy '%s'; registered:", policy_arg.c_str());
      for (const std::string& name : SchedPolicyNames()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, " all\n");
      return 2;
    }
    policies.push_back(policy_arg);
  }

  std::vector<Scenario> base = FigureScenarios(scale);
  for (Scenario& s : RandomScenarios(seed, random_count)) {
    base.push_back(std::move(s));
  }

  BenchReport report;
  report.bench = "policy_arena";
  report.context_num["scenarios"] = static_cast<double>(base.size());
  report.context_num["policies"] = static_cast<double>(policies.size());
  report.context_num["scale"] = scale;

  // results[p][i] is policy p's result for base scenario i.
  std::vector<std::vector<ScenarioResult>> results;
  for (const std::string& policy : policies) {
    std::vector<Scenario> matrix = base;
    for (Scenario& s : matrix) {
      s.policy = policy;
    }
    SweepOptions sweep_opts;
    sweep_opts.threads = max_threads;
    SweepReport run = RunSweep(matrix, sweep_opts);
    // Per-policy hash check: the same matrix at one worker must replay
    // bit-identically — every policy inherits the determinism contract,
    // not just CFS.
    SweepOptions serial;
    serial.threads = 1;
    SweepReport replay = RunSweep(matrix, serial);
    WC_CHECK(run.CombinedHash() == replay.CombinedHash(),
             "policy sweep hash differs across thread counts");
    std::printf("policy %-10s combined_hash=%016llx  wall=%8.1f ms\n", policy.c_str(),
                static_cast<unsigned long long>(run.CombinedHash()), run.wall_ms);

    for (const ScenarioResult& r : run.results) {
      BenchReport::Row row;
      row.name = policy + "/" + r.name;
      row.labels["policy"] = policy;
      row.labels["scenario"] = r.name;
      row.labels["trace_hash"] = [&] {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(r.trace_hash));
        return std::string(buf);
      }();
      row.metrics["sim_events"] = static_cast<double>(r.sim_events);
      row.metrics["context_switches"] = static_cast<double>(r.context_switches);
      row.metrics["migrations"] = static_cast<double>(r.migrations);
      row.metrics["wall_ms"] = r.wall_ms;
      double score = CompletionScore(r);
      if (score >= 0) {
        row.metrics["completion_s"] = score;
      }
      for (const auto& [k, v] : r.metrics) {
        row.metrics[k] = v;
      }
      report.rows.push_back(std::move(row));
    }
    results.push_back(std::move(run.results));
  }

  // Per-scenario leaderboard. Scenarios with a completion metric rank by
  // it; horizon-bound scenarios (random mixes) are shown unranked.
  std::printf("\nleaderboard (completion seconds; * = winner, - = horizon-bound):\n");
  std::printf("  %-28s", "scenario");
  for (const std::string& p : policies) {
    std::printf(" %12s", p.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < base.size(); ++i) {
    double best = -1.0;
    size_t best_p = 0;
    for (size_t p = 0; p < policies.size(); ++p) {
      double score = CompletionScore(results[p][i]);
      if (score >= 0 && (best < 0 || score < best)) {
        best = score;
        best_p = p;
      }
    }
    std::printf("  %-28s", base[i].name.c_str());
    for (size_t p = 0; p < policies.size(); ++p) {
      double score = CompletionScore(results[p][i]);
      if (score >= 0) {
        std::printf(" %10.3f%s", score, best >= 0 && p == best_p ? "*" : " ");
      } else {
        std::printf(" %10s -", "");
      }
    }
    std::printf("\n");
  }

  report.Write(opts);
  std::printf("\nwrote %s/BENCH_policy_arena.json\n", opts.out_dir.c_str());
  return 0;
}

// One-pass soak of the streaming pipeline. Scenario sizing (threads, scale,
// horizon) is pinned so the run deterministically crosses the event floor;
// the floor itself stays a flag so CI's intent ("at least ten million") is
// visible at the call site.
int RunBigMix(const BenchOptions& opts, uint64_t min_events, uint64_t seed) {
  PrintHeader("Streaming-telemetry soak: one-pass big random mix",
              "bounded-memory analytics over a >=10M-event trace (§4 methodology)");

  Scenario s;
  s.name = "big_mix/" + std::to_string(seed);
  s.topo = Scenario::Topo::kBulldozer8x8;
  s.workload = Scenario::Workload::kRandomMix;
  s.mix_threads = 4096;
  s.scale = 8.0;  // 40% of the mix become 16s compute hogs: sustained churn.
  s.seed = seed;
  s.horizon = Seconds(200);
  s.stream = true;

  std::printf("scenario: %s  threads=%d scale=%.1f horizon=%.0fs\n", s.name.c_str(),
              s.mix_threads, s.scale, ToSeconds(s.horizon));
  ScenarioResult r = RunScenario(s);

  std::printf("trace_events=%llu  switches=%llu  migrations=%llu  wall=%.1f ms\n",
              static_cast<unsigned long long>(r.trace_events),
              static_cast<unsigned long long>(r.context_switches),
              static_cast<unsigned long long>(r.migrations), r.wall_ms);
  std::printf("STREAM %s %s\n", r.name.c_str(), r.stream_summary.c_str());
  std::printf("memory: peak=%llu budget=%llu (%.1f%% used), ring drops=%llu\n",
              static_cast<unsigned long long>(r.stream_agg_bytes_peak),
              static_cast<unsigned long long>(r.stream_budget_bytes),
              100.0 * static_cast<double>(r.stream_agg_bytes_peak) /
                  static_cast<double>(r.stream_budget_bytes ? r.stream_budget_bytes : 1),
              static_cast<unsigned long long>(r.stream_ring_dropped));

  // The pipeline's contract, enforced: every event analyzed in one pass,
  // nothing silently lost, memory bounded by O(tasks + cpus).
  WC_CHECK(r.trace_events >= min_events, "big-mix produced fewer trace events than required");
  WC_CHECK(r.stream_ring_dropped == 0, "streaming ring dropped records while draining in-line");
  WC_CHECK(r.stream_events == r.trace_events,
           "stream analyzed a different event count than the trace hash saw");
  WC_CHECK(r.stream_within_budget, "stream aggregator memory exceeded the O(tasks+cpus) budget");

  BenchReport report;
  report.bench = "stream_soak";
  report.context_num["min_events"] = static_cast<double>(min_events);
  BenchReport::Row row;
  row.name = r.name;
  row.metrics["trace_events"] = static_cast<double>(r.trace_events);
  row.metrics["context_switches"] = static_cast<double>(r.context_switches);
  row.metrics["wall_ms"] = r.wall_ms;
  row.metrics["agg_bytes_peak"] = static_cast<double>(r.stream_agg_bytes_peak);
  row.metrics["budget_bytes"] = static_cast<double>(r.stream_budget_bytes);
  row.metrics["ring_dropped"] = static_cast<double>(r.stream_ring_dropped);
  row.metrics["starvation_findings"] = static_cast<double>(r.stream_findings);
  report.rows.push_back(std::move(row));
  report.Write(opts);
  std::printf("wrote %s/BENCH_stream_soak.json\n", opts.out_dir.c_str());
  return 0;
}

// Expand --grid into a manifest file: the materialization half of the
// fleet service. Exits through the hard-error path on a bad spec.
int RunMakeManifest(const std::string& path, const std::string& grid_spec) {
  PrintHeader("Fleet sweep: materialize scenario-grid manifest",
              "§4 methodology at fleet scale: parameter grid -> manifest of instances");
  GridSpec spec;
  std::string error;
  if (!ParseGridSpec(grid_spec, &spec, &error)) {
    std::fprintf(stderr, "invalid value '%s' for --grid: %s\n", grid_spec.c_str(),
                 error.c_str());
    return 2;
  }
  std::vector<Scenario> scenarios = ExpandGrid(spec);
  WriteManifest(path, scenarios);
  std::printf("manifest %s: %zu scenario instances\n", path.c_str(), scenarios.size());
  std::printf("  axes: %zu topos x %zu workloads x %zu feature sets x %zu policies x %zu"
              " mixes x %d seeds\n",
              spec.topos.size(), spec.workloads.size(), spec.feature_sets.size(),
              spec.policies.size(), spec.mix_threads.size(), spec.seeds_per_cell);
  return 0;
}

// One shard of a fleet run: claim scenarios from the manifest, append
// receipts, resume past anything already done.
int RunShardMode(const std::string& manifest_path, int shard_index, int shard_count,
                 const std::string& results_dir, int threads) {
  PrintHeader("Fleet sweep: sharded manifest runner",
              "§4 methodology at fleet scale: receipts make distributed runs verifiable");
  Manifest manifest;
  std::string error;
  if (!LoadManifest(manifest_path, &manifest, &error)) {
    std::fprintf(stderr, "sweep_driver: %s\n", error.c_str());
    return 1;
  }
  std::printf("shard %d/%d over %zu scenarios -> %s (threads=%d)\n", shard_index, shard_count,
              manifest.scenarios.size(), results_dir.c_str(), threads);
  ShardOptions shard_opts;
  shard_opts.results_dir = results_dir;
  shard_opts.shard_index = shard_index;
  shard_opts.shard_count = shard_count;
  shard_opts.threads = threads;
  ShardReport report = RunShard(manifest.scenarios, shard_opts);
  std::printf("shard %d/%d done: ran=%d skipped=%d contended=%d requeued=%d"
              " (scenario wall %.1f ms)\n",
              shard_index, shard_count, report.ran, report.skipped, report.contended,
              report.requeued, report.wall_ms_total);
  std::printf("receipts: %s\n", report.receipts_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  std::string threads_s, scale_s, random_s, seed_s, bigmix_s, policy_s;
  std::string manifest_s, results_s, shard_s, make_manifest_s, grid_s;
  BenchOptions opts = ParseBenchArgs(
      argc, argv,
      {
          {"threads", &threads_s, "max host threads to sweep up to (default: hardware)"},
          {"scale", &scale_s, "workload scale factor (default 0.25)"},
          {"random", &random_s, "extra random scenarios to append (default 6)"},
          {"seed", &seed_s, "seed for the random scenarios (default 99)"},
          {"big-mix", &bigmix_s,
           "skip the matrix; run one huge streamed random mix and assert >= this many events"},
          {"policy", &policy_s,
           "cross-policy arena: run the matrix under this policy name, or 'all'"},
          {"make-manifest", &make_manifest_s,
           "expand --grid and write the fleet manifest to this path, then exit"},
          {"grid", &grid_s, "grid spec for --make-manifest ('default' or key=v;... syntax)"},
          {"shard", &shard_s, "run as fleet shard I/N over --manifest into --results"},
          {"manifest", &manifest_s, "manifest file for --shard"},
          {"results", &results_s, "results directory for --shard (receipts + claims)"},
      });
  HostCores host = DetectHostCores();
  int max_threads = static_cast<int>(
      ParseIntFlag("threads", threads_s, host.cores, 1, 1 << 20));
  double scale = ParseDoubleFlag("scale", scale_s, 0.25, 1e-6, 1e6);
  int random_count = static_cast<int>(ParseIntFlag("random", random_s, 6, 0, 1 << 20));
  uint64_t seed = ParseU64Flag("seed", seed_s, 99);

  if (!make_manifest_s.empty()) {
    return RunMakeManifest(make_manifest_s, grid_s.empty() ? "default" : grid_s);
  }
  if (!shard_s.empty()) {
    size_t slash = shard_s.find('/');
    if (slash == std::string::npos) {
      BadFlagValue("shard", shard_s, "I/N with 0 <= I < N");
    }
    int shard_count = static_cast<int>(
        ParseIntFlag("shard", shard_s.substr(slash + 1), -1, 1, 1 << 20));
    int shard_index = static_cast<int>(
        ParseIntFlag("shard", shard_s.substr(0, slash), -1, 0, shard_count - 1));
    if (manifest_s.empty() || results_s.empty()) {
      std::fprintf(stderr, "--shard requires --manifest=FILE and --results=DIR\n");
      return 2;
    }
    return RunShardMode(manifest_s, shard_index, shard_count, results_s,
                        threads_s.empty() ? 1 : max_threads);
  }
  if (!manifest_s.empty() || !results_s.empty() || !grid_s.empty()) {
    std::fprintf(stderr,
                 "--manifest/--results/--grid only apply with --shard or --make-manifest\n");
    return 2;
  }

  if (!bigmix_s.empty()) {
    return RunBigMix(opts, ParseU64Flag("big-mix", bigmix_s, 0), seed);
  }
  if (!policy_s.empty()) {
    return RunPolicyArena(opts, policy_s, scale, random_count, seed, max_threads);
  }

  PrintHeader("Parallel scenario sweep", "§4 evaluation methodology (scenario matrix)");

  std::vector<Scenario> scenarios = FigureScenarios(scale);
  for (Scenario& s : RandomScenarios(seed, random_count)) {
    scenarios.push_back(std::move(s));
  }
  if (opts.stream) {
    for (Scenario& s : scenarios) {
      s.stream = true;
    }
  }
  std::printf("%zu scenarios, up to %d host threads (host has %d%s)\n\n", scenarios.size(),
              max_threads, host.cores, host.detected ? "" : ", detection failed");

  // Thread counts: 1, 2, 4, ... up to max_threads (always including both
  // endpoints), so the 1→4 scaling factor is directly measurable.
  std::vector<int> counts;
  for (int t = 1; t < max_threads; t *= 2) {
    counts.push_back(t);
  }
  counts.push_back(max_threads);

  BenchReport report;
  report.bench = "sweep";
  // host_cores is the value the sweep actually used: when detection fails
  // (hardware_concurrency() == 0) we sweep with 1 thread and must say 1,
  // not 0, or trend tooling reads a zero-core host. The detection failure
  // itself is reported explicitly alongside.
  report.context_num["host_cores"] = host.cores;
  report.context_num["host_cores_detected"] = host.detected ? 1 : 0;
  report.context_num["scenarios"] = static_cast<double>(scenarios.size());
  report.context_num["scale"] = scale;

  uint64_t reference_hash = 0;
  double wall_1thread = 0;
  SweepReport last;
  for (size_t ci = 0; ci < counts.size(); ++ci) {
    SweepOptions sweep_opts;
    sweep_opts.threads = counts[ci];
    SweepReport r = RunSweep(scenarios, sweep_opts);
    if (ci == 0) {
      reference_hash = r.CombinedHash();
      wall_1thread = r.wall_ms;
    } else {
      // Parallelism must be invisible in the results.
      WC_CHECK(r.CombinedHash() == reference_hash, "sweep results differ across thread counts");
    }
    double speedup = wall_1thread / (r.wall_ms > 0 ? r.wall_ms : 1e-9);
    std::printf("threads=%2d  wall=%9.1f ms  speedup=%.2fx  events=%llu  hash=%016llx\n",
                r.threads, r.wall_ms, speedup,
                static_cast<unsigned long long>(r.TotalSimEvents()),
                static_cast<unsigned long long>(r.CombinedHash()));
    BenchReport::Row row;
    row.name = "scaling/threads=" + std::to_string(r.threads);
    row.metrics["threads"] = r.threads;
    row.metrics["wall_ms"] = r.wall_ms;
    row.metrics["speedup_vs_1"] = speedup;
    report.rows.push_back(std::move(row));
    last = std::move(r);
  }

  std::printf("\nper-scenario results (threads=%d):\n", last.threads);
  double total_virtual = 0;
  for (const ScenarioResult& r : last.results) {
    total_virtual += r.virtual_seconds;
    std::printf("  %-28s hash=%016llx events=%8llu switches=%7llu migr=%6llu %6.1f ms\n",
                r.name.c_str(), static_cast<unsigned long long>(r.trace_hash),
                static_cast<unsigned long long>(r.sim_events),
                static_cast<unsigned long long>(r.context_switches),
                static_cast<unsigned long long>(r.migrations), r.wall_ms);
    BenchReport::Row row;
    row.name = r.name;
    row.labels["trace_hash"] = [&] {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(r.trace_hash));
      return std::string(buf);
    }();
    row.metrics["sim_events"] = static_cast<double>(r.sim_events);
    row.metrics["context_switches"] = static_cast<double>(r.context_switches);
    row.metrics["migrations"] = static_cast<double>(r.migrations);
    row.metrics["virtual_s"] = r.virtual_seconds;
    row.metrics["wall_ms"] = r.wall_ms;
    for (const auto& [k, v] : r.metrics) {
      row.metrics[k] = v;
    }
    if (opts.stream) {
      row.metrics["stream_agg_bytes_peak"] = static_cast<double>(r.stream_agg_bytes_peak);
      row.metrics["stream_budget_bytes"] = static_cast<double>(r.stream_budget_bytes);
      row.metrics["stream_ring_dropped"] = static_cast<double>(r.stream_ring_dropped);
      row.metrics["stream_findings"] = static_cast<double>(r.stream_findings);
    }
    report.rows.push_back(std::move(row));
  }
  report.context_num["virtual_seconds_total"] = total_virtual;

  if (opts.stream) {
    // One summary line per run, plus a jsonl artifact, plus the pure-observer
    // cross-check: the same matrix without the stream must hash identically.
    std::printf("\nstreaming summaries (one line per scenario):\n");
    std::error_code ec;
    std::filesystem::create_directories(opts.stream_dir, ec);
    std::ofstream jsonl(std::filesystem::path(opts.stream_dir) / "sweep_stream.jsonl");
    for (const ScenarioResult& r : last.results) {
      std::printf("STREAM %s %s\n", r.name.c_str(), r.stream_summary.c_str());
      jsonl << "{\"name\": \"" << JsonEscape(r.name) << "\", \"stream\": " << r.stream_summary
            << "}\n";
      WC_CHECK(r.stream_ring_dropped == 0, "streaming ring dropped records in the sweep");
      WC_CHECK(r.stream_within_budget, "stream aggregator memory exceeded budget in the sweep");
      WC_CHECK(r.stream_events == r.trace_events,
               "stream analyzed a different event count than the trace hash saw");
    }
    std::vector<Scenario> bare = scenarios;
    for (Scenario& s : bare) {
      s.stream = false;
    }
    SweepOptions bare_opts;
    bare_opts.threads = last.threads;
    SweepReport bare_report = RunSweep(bare, bare_opts);
    WC_CHECK(bare_report.CombinedHash() == reference_hash,
             "attaching the streaming pipeline changed a trace hash");
    std::printf("pure-observer check: %zu trace hashes identical without the stream (%016llx)\n",
                bare_report.results.size(),
                static_cast<unsigned long long>(bare_report.CombinedHash()));
    std::printf("wrote %s/sweep_stream.jsonl\n", opts.stream_dir.c_str());
  }

  // The scaling ratio downstream tooling reads (ROADMAP "sweep scaling
  // evidence"). On a 1-core host there is only the threads=1 row and no
  // ratio to take — emit an explicit "scaling": null (NaN serializes as
  // null) rather than omitting the key, so consumers see "unmeasurable
  // here" instead of dividing by a missing row.
  if (counts.size() > 1) {
    report.context_num["scaling"] = wall_1thread / (last.wall_ms > 0 ? last.wall_ms : 1e-9);
  } else {
    report.context_num["scaling"] = std::numeric_limits<double>::quiet_NaN();
    std::printf("\n1-core host: scaling unmeasurable, reporting \"scaling\": null\n");
  }

  report.Write(opts);
  std::printf("\nwrote %s/BENCH_sweep.json\n", opts.out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) { return wcores::Main(argc, argv); }
