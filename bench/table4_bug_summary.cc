// Table 4: the four bugs, with the maximum performance impact measured in
// this reproduction next to the paper's numbers.
//
// The worst cases are re-run here directly:
//  - Group Imbalance: lu (60 threads) + four single-threaded R processes;
//    the paper reports lu 13x faster with the fix.
//  - Scheduling Group Construction: lu pinned on nodes 1,2 (27x).
//  - Overload-on-Wakeup: TPC-H Q18 (22%).
//  - Missing Scheduling Domains: lu with 64 threads after hotplug (138x).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"
#include "src/workloads/behaviors.h"
#include "src/workloads/make_r.h"
#include "src/workloads/nas.h"
#include "src/workloads/tpch.h"
#include "src/workloads/transient.h"

namespace wcores {
namespace {

// lu with 60 threads + 4 single-threaded R processes (§3.1): with the
// average-load comparison, the R nodes' idle cores never steal lu threads.
double LuWithRProcesses(bool fixed) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_group_imbalance = fixed;
  opts.seed = 4001;
  Simulator sim(topo, opts);

  // Four R processes on four distinct nodes.
  for (int r = 0; r < 4; ++r) {
    Simulator::SpawnParams params;
    params.autogroup = sim.CreateAutogroup();
    params.parent_cpu = 2 * r * topo.cores_per_node();
    sim.Spawn(std::make_unique<CpuHogBehavior>(Seconds(30)), params);
  }
  NasConfig config;
  config.app = NasApp::kLu;
  config.threads = 60;
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = 0.2;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(120));
  if (!wl.Finished()) {
    std::fprintf(stderr, "WARNING: lu + 4R did not finish\n");
    return 120.0;
  }
  return ToSeconds(wl.CompletionTime());
}

double PinnedLu(bool fixed) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_group_construction = fixed;
  opts.seed = 4002;
  Simulator sim(topo, opts);
  NasConfig config;
  config.app = NasApp::kLu;
  config.threads = 16;
  config.affinity = topo.CpusOfNode(1) | topo.CpusOfNode(2);
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = 0.3;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(120));
  return ToSeconds(wl.CompletionTime());
}

double TpchQ18(bool fixed) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_overload_wakeup = fixed;
  opts.features.autogroup_enabled = false;
  opts.seed = 4003;
  Simulator sim(topo, opts);
  TpchConfig config;
  config.queries = {TpchQuery18(/*scale=*/6.0)};
  TpchWorkload wl(&sim, config);
  wl.Setup();
  TransientThreadGenerator::Options topts;
  TransientThreadGenerator transients(&sim, topts);
  transients.Start();
  sim.Run(Seconds(60));
  return ToSeconds(wl.TotalTime());
}

double HotplugLu(bool fixed) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_missing_domains = fixed;
  opts.seed = 4004;
  Simulator sim(topo, opts);
  sim.SetCpuOnline(3, false);
  sim.SetCpuOnline(3, true);
  NasConfig config;
  config.app = NasApp::kLu;
  config.threads = 64;
  config.spawn_cpu = 0;
  config.scale = 0.2;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(600));
  if (!wl.Finished()) {
    std::fprintf(stderr, "WARNING: hotplug lu did not finish\n");
    return 600.0;
  }
  return ToSeconds(wl.CompletionTime());
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  (void)opts;
  PrintHeader("Table 4: bugs found in the scheduler using our tools",
              "EuroSys'16 Table 4 — maximum measured performance impact per bug");

  double gi_buggy = LuWithRProcesses(false);
  double gi_fixed = LuWithRProcesses(true);
  double gc_buggy = PinnedLu(false);
  double gc_fixed = PinnedLu(true);
  double ow_buggy = TpchQ18(false);
  double ow_fixed = TpchQ18(true);
  double md_buggy = HotplugLu(false);
  double md_fixed = HotplugLu(true);

  std::printf("%-28s %-10s %-26s %14s %10s\n", "name", "kernels", "impacted applications",
              "measured", "paper");
  std::printf("%-28s %-10s %-26s %13.2fx %9s\n", "Group Imbalance", "2.6.38+", "all",
              gi_buggy / gi_fixed, "13x");
  std::printf("%-28s %-10s %-26s %13.2fx %9s\n", "Scheduling Group Construction", "3.9+", "all",
              gc_buggy / gc_fixed, "27x");
  std::printf("%-28s %-10s %-26s %12.1f%% %9s\n", "Overload-on-Wakeup", "2.6.32+",
              "apps that sleep or wait", (ow_buggy - ow_fixed) / ow_buggy * 100.0, "22%");
  std::printf("%-28s %-10s %-26s %13.2fx %9s\n", "Missing Scheduling Domains", "3.19+", "all",
              md_buggy / md_fixed, "138x");
  std::printf("\n(worst-case workloads: lu+4R, pinned lu, TPC-H Q18, 64-thread lu after "
              "hotplug)\n");
  return 0;
}
