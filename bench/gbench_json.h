// Custom google-benchmark main that also emits BENCH_<name>.json.
//
// The stock benchmark_main prints to the console and exits; the perf
// trajectory needs machine-readable output checked in per commit. This
// reporter keeps the normal console output and mirrors every run into a
// BenchReport row.
//
// Usage, replacing BENCHMARK_MAIN():
//   int main(int argc, char** argv) { return wcores::GbenchJsonMain("micro_x", argc, argv); }
//
// The binary accepts --out=DIR (ours) plus all --benchmark_* flags.
#ifndef BENCH_GBENCH_JSON_H_
#define BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace wcores {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      BenchReport::Row row;
      row.name = run.benchmark_name();
      row.labels["time_unit"] = benchmark::GetTimeUnitString(run.time_unit);
      row.metrics["real_time"] = run.GetAdjustedRealTime();
      row.metrics["cpu_time"] = run.GetAdjustedCPUTime();
      row.metrics["iterations"] = static_cast<double>(run.iterations);
      for (const auto& [name, counter] : run.counters) {
        row.metrics[name] = static_cast<double>(counter);
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<BenchReport::Row> rows;
};

inline int GbenchJsonMain(const std::string& bench_name, int argc, char** argv) {
  // Split our flags from benchmark's: only --out=DIR is ours; everything
  // else is handed to benchmark::Initialize, which rejects what it does
  // not know.
  BenchOptions opts;
  std::vector<char*> bm_argv;
  bm_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      opts.out_dir = arg.substr(6);
    } else {
      bm_argv.push_back(argv[i]);
    }
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_argv.data())) {
    return 1;
  }

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  BenchReport report;
  report.bench = bench_name;
  report.rows = std::move(reporter.rows);
  report.Write(opts);
  std::printf("wrote %s/BENCH_%s.json\n", opts.out_dir.c_str(), bench_name.c_str());
  return 0;
}

}  // namespace wcores

#endif  // BENCH_GBENCH_JSON_H_
