// Table 1: execution time of NAS applications with and without the
// Scheduling Group Construction bug (§3.2).
//
// Applications are launched pinned to Nodes 1 and 2 (two hops apart on the
// Figure-4 interconnect) with as many threads as those nodes have cores,
// i.e. `numactl --cpunodebind=1,2 <app>`. With the bug, both machine-level
// scheduling groups contain Nodes 1 and 2, so no imbalance is ever detected
// and every thread stays on the node it was forked on.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"
#include "src/workloads/nas.h"

namespace wcores {
namespace {

double RunPinned(NasApp app, bool fixed, double scale) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_group_construction = fixed;
  opts.seed = 1001;
  Simulator sim(topo, opts);

  NasConfig config;
  config.app = app;
  config.threads = 2 * topo.cores_per_node();  // As many threads as cores.
  config.affinity = topo.CpusOfNode(1) | topo.CpusOfNode(2);
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = scale;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(600));
  if (!wl.Finished()) {
    std::fprintf(stderr, "WARNING: %s did not finish within 600 virtual seconds\n",
                 NasAppName(app));
    return 600.0;
  }
  return ToSeconds(wl.CompletionTime());
}

struct PaperRow {
  NasApp app;
  double with_bug;
  double without_bug;
};

// Table 1 of the paper (seconds), for side-by-side shape comparison.
constexpr PaperRow kPaperRows[] = {
    {NasApp::kBt, 99, 56},  {NasApp::kCg, 42, 15},  {NasApp::kEp, 73, 36},
    {NasApp::kFt, 96, 50},  {NasApp::kIs, 271, 202}, {NasApp::kLu, 1040, 38},
    {NasApp::kMg, 49, 24},  {NasApp::kSp, 31, 14},  {NasApp::kUa, 206, 56},
};

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  PrintHeader("Table 1: NAS with the Scheduling Group Construction bug",
              "EuroSys'16 Table 1 — apps pinned on nodes 1,2 (numactl --cpunodebind=1,2)");
  std::printf("%-5s %14s %14s %9s | %14s %14s %9s\n", "app", "w/ bug (s)", "w/o bug (s)",
              "speedup", "paper w/ (s)", "paper w/o (s)", "paper x");
  std::string csv = "app,with_bug_s,without_bug_s,speedup,paper_with_s,paper_without_s,paper_x\n";
  for (const PaperRow& row : kPaperRows) {
    double scale = 0.4;
    double buggy = RunPinned(row.app, /*fixed=*/false, scale);
    double fixed = RunPinned(row.app, /*fixed=*/true, scale);
    double speedup = fixed > 0 ? buggy / fixed : 0;
    double paper_x = row.with_bug / row.without_bug;
    std::printf("%-5s %14.3f %14.3f %8.2fx | %14.0f %14.0f %8.2fx\n", NasAppName(row.app), buggy,
                fixed, speedup, row.with_bug, row.without_bug, paper_x);
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%.4f,%.4f,%.2f,%.0f,%.0f,%.2f\n", NasAppName(row.app),
                  buggy, fixed, speedup, row.with_bug, row.without_bug, paper_x);
    csv += line;
  }
  WriteFile(opts, "table1_group_construction.csv", csv);
  std::printf("\nShape checks: lu must be the extreme outlier; ep near the 2x CPU-share\n"
              "bound; is the least affected. CSV: table1_group_construction.csv\n");
  return 0;
}
