// Ablations of the design decisions DESIGN.md calls out.
//
//  (a) busy_balance_factor: without the kernel's 32x interval stretching for
//      busy cores, the balancer bounces queued threads between runqueues and
//      re-anchors their vruntime each hop — starving them (DESIGN.md #7).
//  (b) Barrier wait policy: pure-blocking barriers hide crowded threads from
//      the balancer; pure-spin barriers turn every crowding into a blow-up;
//      the hybrid reproduces the paper's tiering (DESIGN.md #10).
//  (c) Context-switch cost: sensitivity of a sync-heavy workload.
//  (d) Mid-run feature toggling: flipping fix_group_imbalance while the
//      workload runs, via Scheduler::UpdateFeatures — exercising the
//      feature-generation invalidation of the load memos outside of tests.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"
#include "src/workloads/behaviors.h"
#include "src/workloads/make_r.h"
#include "src/workloads/nas.h"

namespace wcores {
namespace {

double PinnedLuSeconds(int busy_factor, Time ctx_cost) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.seed = 6001;
  opts.tunables = SchedTunables::ForCpus(topo.n_cores());
  opts.tunables.busy_balance_factor = busy_factor;
  opts.tunables.context_switch_cost = ctx_cost;
  opts.tunables_set = true;
  Simulator sim(topo, opts);
  NasConfig config;
  config.app = NasApp::kLu;
  config.threads = 16;
  config.affinity = topo.CpusOfNode(1) | topo.CpusOfNode(2);
  config.spawn_cpu = topo.CpusOfNode(1).First();
  config.scale = 0.15;
  NasWorkload wl(&sim, config);
  wl.Setup();
  sim.Run(Seconds(120));
  if (!wl.Finished()) {
    return -1;  // Livelocked / starved within the window.
  }
  return ToSeconds(wl.CompletionTime());
}

double BarrierAppSeconds(BarrierMode mode, int threads_per_core) {
  Topology topo = Topology::Flat(2, 4, 2);
  Simulator::Options opts;
  opts.seed = 6002;
  Simulator sim(topo, opts);
  int threads = topo.n_cores() * threads_per_core;
  SyncId barrier = mode == BarrierMode::kBlock ? sim.CreateBlockingBarrier(threads)
                                               : sim.CreateSpinBarrier(threads);
  for (int i = 0; i < threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = 0;
    sim.Spawn(std::make_unique<BarrierComputeBehavior>(barrier, mode, Milliseconds(2), 0.15,
                                                       100, Milliseconds(1)),
              params);
  }
  if (!sim.RunUntilAllExited(Seconds(300))) {
    return -1;
  }
  return ToSeconds(sim.Now());
}

// make+R completion when the Group Imbalance fix is flipped mid-run at
// `toggle_at` (kTimeNever = never toggled). Starts from `initial`.
double MakeWithToggleSeconds(bool initial, Time toggle_at) {
  Topology topo = Topology::Bulldozer8x8();
  Simulator::Options opts;
  opts.features.fix_group_imbalance = initial;
  opts.seed = 6003;
  Simulator sim(topo, opts);
  MakeRConfig config;
  config.make_work_per_thread = Milliseconds(300);
  config.r_work = Seconds(3);
  MakeRWorkload wl(&sim, config);
  wl.Setup();
  if (toggle_at != kTimeNever) {
    sim.At(toggle_at, [&sim, initial] {
      SchedFeatures f = sim.sched().features();
      f.fix_group_imbalance = !initial;
      sim.sched().UpdateFeatures(f);
    });
  }
  sim.Run(Seconds(10));
  if (!wl.MakeFinished()) {
    return -1;
  }
  return ToSeconds(wl.MakeCompletionTime());
}

void Print(const char* label, double v) {
  if (v < 0) {
    std::printf("  %-34s did not finish (starvation/livelock)\n", label);
  } else {
    std::printf("  %-34s %8.3f s\n", label, v);
  }
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) {
  using namespace wcores;
  BenchOptions opts = ParseBenchArgs(argc, argv);
  (void)opts;
  PrintHeader("Ablations: the design decisions behind the reproduction",
              "DESIGN.md items 7 (busy factor), 10 (barrier policy), and switch cost");

  std::printf("(a) pinned lu (bug active) vs busy_balance_factor:\n");
  for (int factor : {1, 4, 32, 128}) {
    char label[64];
    std::snprintf(label, sizeof(label), "busy_balance_factor = %d", factor);
    Print(label, PinnedLuSeconds(factor, Microseconds(2)));
  }

  std::printf("\n(b) 100-iteration barrier app vs wait policy (1x and 2x oversubscribed):\n");
  for (int per_core : {1, 2}) {
    for (BarrierMode mode : {BarrierMode::kSpin, BarrierMode::kHybrid, BarrierMode::kBlock}) {
      const char* name = mode == BarrierMode::kSpin
                             ? "pure spin"
                             : (mode == BarrierMode::kHybrid ? "hybrid (1ms grace)" : "blocking");
      char label[64];
      std::snprintf(label, sizeof(label), "%d/core, %s", per_core, name);
      Print(label, BarrierAppSeconds(mode, per_core));
    }
  }

  std::printf("\n(c) pinned lu vs context-switch cost:\n");
  for (uint64_t us : {0ULL, 2ULL, 10ULL, 50ULL}) {
    char label[64];
    std::snprintf(label, sizeof(label), "context_switch_cost = %lluus",
                  static_cast<unsigned long long>(us));
    Print(label, PinnedLuSeconds(32, Microseconds(us)));
  }

  std::printf("\n(d) make+R vs mid-run GroupImbalance-fix toggling:\n");
  Print("stock for the whole run", MakeWithToggleSeconds(false, kTimeNever));
  Print("fix enabled at t=100ms", MakeWithToggleSeconds(false, Milliseconds(100)));
  Print("fix disabled at t=100ms", MakeWithToggleSeconds(true, Milliseconds(100)));
  Print("fixed for the whole run", MakeWithToggleSeconds(true, kTimeNever));
  return 0;
}
