#include "src/sim/simulator.h"

#include "src/simkit/check.h"

#include <cassert>

#include "src/simkit/log.h"

namespace wcores {

Simulator::Simulator(const Topology& topo, Options options, TraceSink* trace)
    : topo_(&topo),
      features_(options.features),
      tunables_(options.tunables_set ? options.tunables : SchedTunables::ForCpus(topo.n_cores())),
      rng_(options.seed),
      acct_(topo.n_cores()) {
  sched_ = std::make_unique<Scheduler>(topo, features_, tunables_, this, trace, options.policy);
  cores_.resize(topo.n_cores());
}

Simulator::~Simulator() = default;

// ---- Workload construction --------------------------------------------------

ThreadId Simulator::Spawn(std::unique_ptr<Behavior> behavior, const SpawnParams& params) {
  ThreadParams tp;
  tp.nice = params.nice;
  tp.autogroup = params.autogroup;
  tp.affinity = params.affinity;
  tp.parent_cpu = params.parent_cpu;
  if (tp.parent_cpu == kInvalidCpu && params.parent != kInvalidThread) {
    tp.parent_cpu = sched_->Entity(params.parent).cpu;
  }
  ThreadId tid = sched_->CreateThread(Now(), tp);
  WC_CHECK(tid == static_cast<ThreadId>(threads_.size()), "tid bookkeeping out of sync");
  threads_.emplace_back();
  SimThread& t = threads_.back();
  t.tid = tid;
  t.behavior = std::move(behavior);
  t.rng = rng_.Fork();
  t.created_at = Now();
  alive_ += 1;
  return tid;
}

SyncId Simulator::CreateSpinLock() {
  spin_locks_.emplace_back();
  return static_cast<SyncId>(spin_locks_.size() - 1);
}

SyncId Simulator::CreateMutex() {
  mutexes_.emplace_back();
  return static_cast<SyncId>(mutexes_.size() - 1);
}

SyncId Simulator::CreateSpinBarrier(int participants) {
  spin_barriers_.emplace_back();
  spin_barriers_.back().participants = participants;
  return static_cast<SyncId>(spin_barriers_.size() - 1);
}

SyncId Simulator::CreateBlockingBarrier(int participants) {
  blocking_barriers_.emplace_back();
  blocking_barriers_.back().participants = participants;
  return static_cast<SyncId>(blocking_barriers_.size() - 1);
}

SyncId Simulator::CreateVar() {
  vars_.emplace_back();
  return static_cast<SyncId>(vars_.size() - 1);
}

SyncId Simulator::CreateEvent() {
  events_.emplace_back();
  return static_cast<SyncId>(events_.size() - 1);
}

void Simulator::At(Time when, EventQueue::Callback fn) { queue_.ScheduleAt(when, std::move(fn)); }

void Simulator::After(Time delay, EventQueue::Callback fn) {
  queue_.ScheduleAfter(delay, std::move(fn));
}

void Simulator::SetCpuOnline(CpuId cpu, bool online) {
  if (!online) {
    // Deschedule whatever is running so the scheduler can evacuate it as a
    // queued entity; cancel the core's timers.
    Core& core = cores_[cpu];
    if (core.running != kInvalidThread) {
      StopRunning(cpu);
      core.running = kInvalidThread;
    }
    core.tick.Cancel();
    core.pending.Cancel();
  }
  sched_->SetCpuOnline(Now(), cpu, online);
}

void Simulator::WakeExternal(ThreadId tid, CpuId waker_cpu) {
  SimThread& t = threads_[tid];
  if (t.state != ThreadState::kBlocked) {
    return;
  }
  WakeThreadInternal(tid, waker_cpu);
}

// ---- Execution --------------------------------------------------------------

void Simulator::Run(Time until) { queue_.RunUntil(until); }

bool Simulator::RunUntilAllExited(Time deadline) {
  while (alive_ > 0 && queue_.RunOne(deadline)) {
  }
  return alive_ == 0;
}

// ---- SchedClient -------------------------------------------------------------

void Simulator::KickCpu(CpuId cpu) {
  Core& core = cores_[cpu];
  if (core.kick_pending) {
    return;
  }
  core.kick_pending = true;
  queue_.ScheduleAt(Now(), [this, cpu] { CheckResched(cpu); });
}

void Simulator::NohzKick(CpuId cpu) {
  queue_.ScheduleAt(Now(), [this, cpu] {
    sched_->RunNohzBalance(Now(), cpu);
    CheckResched(cpu);
  });
}

// ---- Event handlers -----------------------------------------------------------

void Simulator::CheckResched(CpuId cpu) {
  Core& core = cores_[cpu];
  core.kick_pending = false;
  if (core.running == kInvalidThread) {
    if (sched_->IsOnline(cpu) && sched_->NrRunning(cpu) > 0) {
      ContextSwitch(cpu);
    }
  } else if (sched_->NeedResched(cpu)) {
    ContextSwitch(cpu);
  }
}

void Simulator::OnTick(CpuId cpu) {
  Core& core = cores_[cpu];
  if (core.running == kInvalidThread) {
    return;  // Went idle; tickless until work arrives.
  }
  sched_->Tick(Now(), cpu);
  if (sched_->NeedResched(cpu)) {
    ContextSwitch(cpu);  // Re-arms the tick.
  } else {
    core.tick = queue_.ScheduleAfter(tunables_.tick_period, [this, cpu] { OnTick(cpu); });
  }
}

void Simulator::OnSegmentEnd(CpuId cpu) {
  Core& core = cores_[cpu];
  ThreadId tid = core.running;
  WC_CHECK(tid != kInvalidThread, "segment end on idle core");
  SimThread& t = threads_[tid];
  WC_CHECK(t.mode == RunMode::kCompute, "segment end for non-computing thread");
  t.total_compute += t.seg_remaining;
  t.seg_remaining = 0;
  t.segments_done += 1;
  t.mode = RunMode::kIdleSlot;
  ProcessActions(cpu, tid);
}

void Simulator::OnTimerWake(ThreadId tid) {
  SimThread& t = threads_[tid];
  if (!t.Alive() || t.state != ThreadState::kBlocked) {
    return;  // Woken early or exited.
  }
  // Timer expiry is handled on the core the thread slept on (§3.3: the
  // wakeup path then only considers that node's cores, stock).
  WakeThreadInternal(tid, sched_->Entity(tid).cpu);
}

// ---- Core execution control ----------------------------------------------------

void Simulator::ContextSwitch(CpuId cpu) {
  Core& core = cores_[cpu];
  StopRunning(cpu);
  ThreadId prev = core.running;
  core.running = kInvalidThread;

  ThreadId next = sched_->PickNext(Now(), cpu);
  if (next == kInvalidThread) {
    core.tick.Cancel();
    return;
  }
  core.running = next;
  if (next != prev) {
    context_switches_ += 1;
  }
  ArmTickIfNeeded(cpu);
  StartRunning(cpu, next, /*charge_cost=*/next != prev);
}

void Simulator::ArmTickIfNeeded(CpuId cpu) {
  Core& core = cores_[cpu];
  if (!core.tick.Pending()) {
    core.tick = queue_.ScheduleAfter(tunables_.tick_period, [this, cpu] { OnTick(cpu); });
  }
}

void Simulator::StopRunning(CpuId cpu) {
  Core& core = cores_[cpu];
  if (core.running == kInvalidThread) {
    return;
  }
  core.pending.Cancel();
  SimThread& t = threads_[core.running];
  Time now = Now();
  if (t.mode == RunMode::kCompute) {
    if (now > t.seg_exec_start) {
      Time ran = now - t.seg_exec_start;
      if (ran >= t.seg_remaining) {
        ran = t.seg_remaining;
      }
      t.seg_remaining -= ran;
      t.total_compute += ran;
    }
    t.seg_exec_start = now;
  } else if (t.mode == RunMode::kSpin) {
    if (now > t.spin_started) {
      Time spun = now - t.spin_started;
      t.spin_time += spun;
      if (t.spin_grace_left != kTimeNever) {
        t.spin_grace_left = spun >= t.spin_grace_left ? 0 : t.spin_grace_left - spun;
      }
    }
    t.spin_started = now;
  }
  if (now > core.run_start) {
    acct_.AddBusy(cpu, now - core.run_start);
  }
  core.run_start = now;
}

void Simulator::StartRunning(CpuId cpu, ThreadId tid, bool charge_cost) {
  Core& core = cores_[cpu];
  SimThread& t = threads_[tid];
  Time now = Now();
  core.run_start = now;
  Time cost = charge_cost ? tunables_.context_switch_cost : 0;

  switch (t.mode) {
    case RunMode::kCompute:
      t.seg_exec_start = now + cost;
      core.pending = queue_.ScheduleAt(now + cost + t.seg_remaining,
                                       [this, cpu] { OnSegmentEnd(cpu); });
      break;
    case RunMode::kSpin:
      t.spin_started = now + cost;
      if (SpinSatisfied(t)) {
        core.pending =
            queue_.ScheduleAt(now + cost, [this, cpu, tid] { OnSpinRecheck(cpu, tid); });
      } else if (t.spin_grace_left != kTimeNever) {
        ArmSpinTimeout(cpu, tid, cost);
      }
      break;
    case RunMode::kIdleSlot:
      core.pending =
          queue_.ScheduleAt(now + cost, [this, cpu, tid] { ProcessActions(cpu, tid); });
      break;
  }
}

// ---- Spin machinery ---------------------------------------------------------------

bool Simulator::SpinSatisfied(const SimThread& t) const {
  switch (t.spin.kind) {
    case SpinWait::Kind::kNone:
      return false;
    case SpinWait::Kind::kLock:
      return spin_locks_[t.spin.id].holder == kInvalidThread;
    case SpinWait::Kind::kBarrier:
      return spin_barriers_[t.spin.id].generation != t.spin.barrier_generation;
    case SpinWait::Kind::kVar:
      return vars_[t.spin.id].value >= t.spin.var_threshold;
  }
  return false;
}

bool Simulator::TryCompleteSpin(SimThread& t) {
  switch (t.spin.kind) {
    case SpinWait::Kind::kNone:
      return false;
    case SpinWait::Kind::kLock: {
      SpinLock& lock = spin_locks_[t.spin.id];
      if (lock.holder != kInvalidThread) {
        return false;  // Lost the race; keep spinning.
      }
      lock.holder = t.tid;
      lock.acquisitions += 1;
      for (size_t i = 0; i < lock.spinners.size(); ++i) {
        if (lock.spinners[i] == t.tid) {
          lock.spinners.erase(lock.spinners.begin() + static_cast<long>(i));
          break;
        }
      }
      break;
    }
    case SpinWait::Kind::kBarrier:
      if (spin_barriers_[t.spin.id].generation == t.spin.barrier_generation) {
        return false;
      }
      break;
    case SpinWait::Kind::kVar:
      if (vars_[t.spin.id].value < t.spin.var_threshold) {
        return false;
      }
      break;
  }
  t.spin = SpinWait{};
  t.spin_grace_left = kTimeNever;
  t.mode = RunMode::kIdleSlot;
  return true;
}

void Simulator::OnSpinRecheck(CpuId cpu, ThreadId tid) {
  Core& core = cores_[cpu];
  if (core.running != tid) {
    return;  // Preempted before the recheck fired.
  }
  SimThread& t = threads_[tid];
  if (t.mode != RunMode::kSpin) {
    return;
  }
  // Account the burned time up to this instant.
  Time now = Now();
  if (now > t.spin_started) {
    t.spin_time += now - t.spin_started;
    t.spin_started = now;
  }
  if (TryCompleteSpin(t)) {
    ProcessActions(cpu, tid);
  }
}

void Simulator::ArmSpinTimeout(CpuId cpu, ThreadId tid, Time extra_delay) {
  Core& core = cores_[cpu];
  Time delay = extra_delay + threads_[tid].spin_grace_left;
  core.pending = queue_.ScheduleAt(Now() + delay, [this, cpu, tid] { OnSpinTimeout(cpu, tid); });
}

void Simulator::OnSpinTimeout(CpuId cpu, ThreadId tid) {
  Core& core = cores_[cpu];
  if (core.running != tid) {
    return;
  }
  SimThread& t = threads_[tid];
  if (t.mode != RunMode::kSpin || t.spin.kind != SpinWait::Kind::kBarrier) {
    return;
  }
  // Account the burned grace period, then give up and block like an OpenMP
  // hybrid barrier does once GOMP_SPINCOUNT expires.
  Time now = Now();
  if (now > t.spin_started) {
    t.spin_time += now - t.spin_started;
  }
  t.spin_grace_left = kTimeNever;
  SpinBarrier& b = spin_barriers_[t.spin.id];
  for (size_t i = 0; i < b.spinners.size(); ++i) {
    if (b.spinners[i] == tid) {
      b.spinners.erase(b.spinners.begin() + static_cast<long>(i));
      break;
    }
  }
  // wc-lint: allow(A2 waiter list bounded by spawned threads)
  b.sleepers.push_back(tid);
  b.sleeps += 1;
  t.spin = SpinWait{};
  BlockAndSwitch(cpu, t);
}

void Simulator::NotifySpinner(ThreadId tid) {
  const SchedEntity& se = sched_->Entity(tid);
  SimThread& t = threads_[tid];
  if (t.mode != RunMode::kSpin) {
    return;
  }
  // Only spinners that currently own a core can react; descheduled spinners
  // re-check when they are scheduled again (StartRunning).
  CpuId cpu = se.cpu;
  if (cpu != kInvalidCpu && cores_[cpu].running == tid) {
    Core& core = cores_[cpu];
    core.pending.Cancel();
    core.pending = queue_.ScheduleAt(Now(), [this, cpu, tid] { OnSpinRecheck(cpu, tid); });
  }
}

// ---- Blocking helpers -----------------------------------------------------------------

void Simulator::BlockAndSwitch(CpuId cpu, SimThread& t) {
  sched_->BlockCurrent(Now(), cpu);
  t.state = ThreadState::kBlocked;
  t.mode = RunMode::kIdleSlot;
  ContextSwitch(cpu);
}

void Simulator::WakeThreadInternal(ThreadId tid, CpuId waker_cpu) {
  SimThread& t = threads_[tid];
  WC_CHECK(t.state == ThreadState::kBlocked, "waking a thread that is not blocked");
  t.sleep_timer.Cancel();
  t.state = ThreadState::kRunnable;
  t.mode = RunMode::kIdleSlot;
  sched_->Wake(Now(), tid, waker_cpu);
}

// ---- Action interpretation --------------------------------------------------------------

void Simulator::ProcessActions(CpuId cpu, ThreadId tid) {
  Core& core = cores_[cpu];
  if (core.running != tid) {
    return;  // Stale resume event.
  }
  SimThread& t = threads_[tid];
  WC_CHECK(t.Alive(), "processing actions of an exited thread");

  BehaviorContext ctx;
  ctx.tid = tid;
  ctx.rng = &t.rng;
  ctx.sim = this;

  // Zero-cost actions (lock hand-offs, variable updates, wakes) complete
  // synchronously and the loop continues; anything that occupies the core
  // or blocks returns. The guard catches behaviors that never yield.
  for (int guard = 0; guard < 100000; ++guard) {
    ctx.now = Now();
    Action action = t.behavior->Next(ctx);
    if (!ApplyAction(cpu, t, action)) {
      return;
    }
  }
  WC_CHECK(false, "behavior produced an unbounded run of zero-cost actions");
}

bool Simulator::ApplyAction(CpuId cpu, SimThread& t, const Action& action) {
  Core& core = cores_[cpu];
  Time now = Now();

  if (const auto* a = std::get_if<ComputeAction>(&action)) {
    if (a->duration == 0) {
      return true;
    }
    t.mode = RunMode::kCompute;
    t.seg_remaining = a->duration;
    t.seg_exec_start = now;
    core.pending =
        queue_.ScheduleAt(now + a->duration, [this, cpu] { OnSegmentEnd(cpu); });
    return false;
  }

  if (const auto* a = std::get_if<SleepAction>(&action)) {
    ThreadId tid = t.tid;
    t.sleep_timer =
        queue_.ScheduleAt(now + a->duration, [this, tid] { OnTimerWake(tid); });
    BlockAndSwitch(cpu, t);
    return false;
  }

  if (std::get_if<BlockAction>(&action) != nullptr) {
    BlockAndSwitch(cpu, t);
    return false;
  }

  if (const auto* a = std::get_if<SpinLockAction>(&action)) {
    SpinLock& lock = spin_locks_[a->lock];
    if (lock.holder == kInvalidThread) {
      lock.holder = t.tid;
      lock.acquisitions += 1;
      return true;
    }
    lock.contended_acquisitions += 1;
    // wc-lint: allow(A2 spinner list bounded by spawned threads)
    lock.spinners.push_back(t.tid);
    t.spin = SpinWait{SpinWait::Kind::kLock, a->lock, 0, 0};
    t.mode = RunMode::kSpin;
    t.spin_started = now;
    return false;  // Burns the core until the lock frees or preemption.
  }

  if (const auto* a = std::get_if<SpinUnlockAction>(&action)) {
    SpinLock& lock = spin_locks_[a->lock];
    WC_CHECK(lock.holder == t.tid, "unlocking a spinlock not held");
    lock.holder = kInvalidThread;
    // The earliest-arrived spinner that is actually on a core wins the
    // cacheline race; descheduled spinners try when next scheduled.
    for (ThreadId spinner : lock.spinners) {
      const SchedEntity& se = sched_->Entity(spinner);
      if (se.cpu != kInvalidCpu && cores_[se.cpu].running == spinner) {
        NotifySpinner(spinner);
        break;
      }
    }
    return true;
  }

  if (const auto* a = std::get_if<MutexLockAction>(&action)) {
    Mutex& m = mutexes_[a->mutex];
    if (m.holder == kInvalidThread) {
      m.holder = t.tid;
      m.acquisitions += 1;
      return true;
    }
    m.contended_acquisitions += 1;
    // wc-lint: allow(A2 waiter list bounded by spawned threads)
    m.waiters.push_back(t.tid);
    BlockAndSwitch(cpu, t);
    return false;
  }

  if (const auto* a = std::get_if<MutexUnlockAction>(&action)) {
    Mutex& m = mutexes_[a->mutex];
    WC_CHECK(m.holder == t.tid, "unlocking a mutex not held");
    if (!m.waiters.empty()) {
      // Direct hand-off: the head waiter owns the mutex and is woken.
      ThreadId next = m.waiters.front();
      m.waiters.pop_front();
      m.holder = next;
      m.acquisitions += 1;
      WakeThreadInternal(next, cpu);
    } else {
      m.holder = kInvalidThread;
    }
    return true;
  }

  if (const auto* a = std::get_if<SpinBarrierAction>(&action)) {
    SpinBarrier& b = spin_barriers_[a->barrier];
    b.arrived += 1;
    if (b.arrived >= b.participants) {
      b.arrived = 0;
      b.generation += 1;
      b.crossings += 1;
      std::vector<ThreadId> spinners = std::move(b.spinners);
      b.spinners.clear();
      for (ThreadId spinner : spinners) {
        NotifySpinner(spinner);
      }
      std::vector<ThreadId> sleepers = std::move(b.sleepers);
      b.sleepers.clear();
      for (ThreadId sleeper : sleepers) {
        WakeThreadInternal(sleeper, cpu);
      }
      return true;  // The last arrival passes straight through.
    }
    // wc-lint: allow(A2 spinner list bounded by spawned threads)
    b.spinners.push_back(t.tid);
    t.spin = SpinWait{SpinWait::Kind::kBarrier, a->barrier, b.generation, 0};
    t.mode = RunMode::kSpin;
    t.spin_started = now;
    t.spin_grace_left = a->spin_grace;
    if (a->spin_grace != kTimeNever) {
      ArmSpinTimeout(cpu, t.tid, 0);
    }
    return false;
  }

  if (const auto* a = std::get_if<BlockingBarrierAction>(&action)) {
    BlockingBarrier& b = blocking_barriers_[a->barrier];
    b.arrived += 1;
    if (b.arrived >= b.participants) {
      b.arrived = 0;
      b.generation += 1;
      b.crossings += 1;
      std::vector<ThreadId> sleepers = std::move(b.sleepers);
      b.sleepers.clear();
      for (ThreadId sleeper : sleepers) {
        WakeThreadInternal(sleeper, cpu);
      }
      return true;
    }
    // wc-lint: allow(A2 waiter list bounded by spawned threads)
    b.sleepers.push_back(t.tid);
    BlockAndSwitch(cpu, t);
    return false;
  }

  if (const auto* a = std::get_if<SpinUntilAction>(&action)) {
    SpinVar& v = vars_[a->var];
    if (v.value >= a->value) {
      return true;
    }
    // wc-lint: allow(A2 spinner list bounded by spawned threads)
    v.spinners.emplace_back(t.tid, a->value);
    t.spin = SpinWait{SpinWait::Kind::kVar, a->var, 0, a->value};
    t.mode = RunMode::kSpin;
    t.spin_started = now;
    return false;
  }

  if (const auto* a = std::get_if<VarAddAction>(&action)) {
    SpinVar& v = vars_[a->var];
    v.value += a->delta;
    for (size_t i = 0; i < v.spinners.size();) {
      if (v.value >= v.spinners[i].second) {
        ThreadId spinner = v.spinners[i].first;
        v.spinners.erase(v.spinners.begin() + static_cast<long>(i));
        NotifySpinner(spinner);
      } else {
        ++i;
      }
    }
    return true;
  }

  if (const auto* a = std::get_if<EventWaitAction>(&action)) {
    // wc-lint: allow(A2 waiter list bounded by spawned threads)
    events_[a->event].waiters.push_back(t.tid);
    BlockAndSwitch(cpu, t);
    return false;
  }

  if (const auto* a = std::get_if<EventSignalAction>(&action)) {
    SyncEvent& ev = events_[a->event];
    ev.signals += 1;
    int remaining = a->count < 0 ? static_cast<int>(ev.waiters.size()) : a->count;
    while (remaining > 0 && !ev.waiters.empty()) {
      ThreadId waiter = ev.waiters.front();
      ev.waiters.pop_front();
      WakeThreadInternal(waiter, cpu);
      --remaining;
    }
    return true;
  }

  if (const auto* a = std::get_if<WakeThreadAction>(&action)) {
    SimThread& target = threads_[a->target];
    if (target.state == ThreadState::kBlocked) {
      WakeThreadInternal(a->target, cpu);
    }
    return true;
  }

  if (std::get_if<ExitAction>(&action) != nullptr) {
    sched_->ExitCurrent(now, cpu);
    t.state = ThreadState::kExited;
    t.mode = RunMode::kIdleSlot;
    t.finished_at = now;
    alive_ -= 1;
    ContextSwitch(cpu);
    return false;
  }

  WC_CHECK(false, "unhandled action variant");
  return false;
}

}  // namespace wcores
