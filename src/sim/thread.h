// Simulated threads and their behaviors.
#ifndef SRC_SIM_THREAD_H_
#define SRC_SIM_THREAD_H_

#include <memory>
#include <vector>

#include "src/core/entity.h"
#include "src/sim/actions.h"
#include "src/sim/sync.h"
#include "src/simkit/event_queue.h"
#include "src/simkit/rng.h"
#include "src/simkit/time.h"

namespace wcores {

class Simulator;

// Per-thread view handed to Behavior::Next.
struct BehaviorContext {
  ThreadId tid = kInvalidThread;
  Time now = 0;
  Rng* rng = nullptr;       // Thread-private deterministic stream.
  Simulator* sim = nullptr;  // For advanced behaviors (spawning children).
};

// A thread's program: a state machine emitting one action at a time.
// Next() is called when the previous action has completed; returning
// ExitAction terminates the thread.
class Behavior {
 public:
  virtual ~Behavior() = default;
  virtual Action Next(BehaviorContext& ctx) = 0;
};

// Fixed list of actions, optionally repeated; handy for tests and simple
// workloads. If `repeat` > 1 the list is executed that many times; the
// thread exits afterwards (an explicit ExitAction in the list overrides).
class ScriptBehavior : public Behavior {
 public:
  explicit ScriptBehavior(std::vector<Action> actions, int repeat = 1)
      : actions_(std::move(actions)), repeat_(repeat) {}

  Action Next(BehaviorContext& ctx) override {
    (void)ctx;
    if (index_ >= actions_.size()) {
      index_ = 0;
      ++iteration_;
      if (iteration_ >= repeat_) {
        return ExitAction{};
      }
    }
    return actions_[index_++];
  }

 private:
  std::vector<Action> actions_;
  size_t index_ = 0;
  int repeat_ = 1;
  int iteration_ = 0;
};

// Behavior built from a lambda: Action(BehaviorContext&).
template <typename Fn>
class LambdaBehavior : public Behavior {
 public:
  explicit LambdaBehavior(Fn fn) : fn_(std::move(fn)) {}
  Action Next(BehaviorContext& ctx) override { return fn_(ctx); }

 private:
  Fn fn_;
};

template <typename Fn>
std::unique_ptr<Behavior> MakeBehavior(Fn fn) {
  return std::make_unique<LambdaBehavior<Fn>>(std::move(fn));
}

enum class ThreadState {
  kRunnable,  // In a runqueue or running.
  kBlocked,   // Sleeping / waiting on a blocking sync object.
  kExited,
};

// What the thread is doing while it owns a core.
enum class RunMode {
  kIdleSlot,  // Needs its next action fetched when it gets on cpu.
  kCompute,   // Executing a compute segment.
  kSpin,      // Burning cycles on a spin object.
};

struct SimThread {
  ThreadId tid = kInvalidThread;
  std::unique_ptr<Behavior> behavior;
  Rng rng;

  ThreadState state = ThreadState::kRunnable;
  RunMode mode = RunMode::kIdleSlot;

  // Compute-segment bookkeeping.
  Time seg_remaining = 0;   // CPU time left in the current compute segment.
  Time seg_exec_start = 0;  // When the current on-cpu stint began (while kCompute).

  SpinWait spin;
  // Remaining CPU time the thread will spin before giving up and blocking
  // (hybrid barriers); kTimeNever = spins forever.
  Time spin_grace_left = kTimeNever;

  // Pending sleep timer, cancelled if the thread is woken early.
  EventHandle sleep_timer;

  // Statistics.
  Time created_at = 0;
  Time finished_at = 0;
  Time total_compute = 0;  // Productive CPU time (excludes spinning).
  Time spin_time = 0;      // CPU time burned while spinning.
  Time spin_started = 0;   // While kSpin and on cpu.
  uint64_t segments_done = 0;

  bool Alive() const { return state != ThreadState::kExited; }
};

}  // namespace wcores

#endif  // SRC_SIM_THREAD_H_
