// Synchronization objects for simulated threads.
//
// These are plain state records; all transitions are performed by the
// Simulator (single-threaded discrete-event execution), so no atomicity is
// needed. The semantics that matter for the paper:
//
//  * Spin objects keep waiters *runnable*: a spinner occupies its core and
//    burns cycles without progress. If the lock holder (or a barrier
//    straggler) is descheduled, every spinner wastes entire timeslices —
//    the amplification mechanism behind the 27x and 138x slowdowns.
//  * Blocking objects put waiters to sleep; wakeups then go through
//    Scheduler::Wake and its (buggy) placement path.
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/entity.h"
#include "src/sim/actions.h"

namespace wcores {

struct SpinLock {
  ThreadId holder = kInvalidThread;
  // Arrival-ordered spinners (descheduled or running).
  std::vector<ThreadId> spinners;
  uint64_t acquisitions = 0;
  uint64_t contended_acquisitions = 0;
};

struct Mutex {
  ThreadId holder = kInvalidThread;
  std::deque<ThreadId> waiters;
  uint64_t acquisitions = 0;
  uint64_t contended_acquisitions = 0;
};

struct SpinBarrier {
  int participants = 0;
  int arrived = 0;
  uint64_t generation = 0;
  std::vector<ThreadId> spinners;
  // Hybrid waiters whose spin grace expired; woken by the last arrival.
  std::vector<ThreadId> sleepers;
  uint64_t crossings = 0;
  uint64_t sleeps = 0;  // Times a waiter gave up spinning and blocked.
};

struct BlockingBarrier {
  int participants = 0;
  int arrived = 0;
  uint64_t generation = 0;
  std::vector<ThreadId> sleepers;
  uint64_t crossings = 0;
};

struct SpinVar {
  int64_t value = 0;
  // (thread, threshold) pairs spinning until value >= threshold.
  std::vector<std::pair<ThreadId, int64_t>> spinners;
};

struct SyncEvent {
  std::deque<ThreadId> waiters;
  uint64_t signals = 0;
};

// What a spinning thread is waiting for; checked when the spinner is
// scheduled (and on releases while it runs).
struct SpinWait {
  enum class Kind { kNone, kLock, kBarrier, kVar };
  Kind kind = Kind::kNone;
  SyncId id = -1;
  uint64_t barrier_generation = 0;  // Generation the thread is waiting out.
  int64_t var_threshold = 0;
};

}  // namespace wcores

#endif  // SRC_SIM_SYNC_H_
