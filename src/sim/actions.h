// The vocabulary of things a simulated thread can do.
//
// A Behavior emits one Action at a time; the simulator interprets it.
// Compute consumes CPU; the synchronization actions interact with the sync
// objects owned by the simulator (src/sim/sync.h). Spin variants burn CPU
// while waiting — which is how lock-holder preemption translates scheduling
// bugs into the super-linear slowdowns of Tables 1 and 3 — while blocking
// variants sleep and later travel through the scheduler wakeup path, which
// is where the Overload-on-Wakeup bug lives.
#ifndef SRC_SIM_ACTIONS_H_
#define SRC_SIM_ACTIONS_H_

#include <cstdint>
#include <variant>

#include "src/core/entity.h"
#include "src/simkit/time.h"

namespace wcores {

using SyncId = int;

struct ComputeAction {
  Time duration;
};

// Sleep for a fixed duration; woken by a timer on the core it slept on.
struct SleepAction {
  Time duration;
};

// Block until explicitly woken (WakeThreadAction or an event signal).
struct BlockAction {};

struct SpinLockAction {
  SyncId lock;
};

struct SpinUnlockAction {
  SyncId lock;
};

struct MutexLockAction {
  SyncId mutex;
};

struct MutexUnlockAction {
  SyncId mutex;
};

// Spin-barrier: arrivals burn CPU until the last participant arrives.
// A finite `spin_grace` models OpenMP-style hybrid waiting (GOMP_SPINCOUNT):
// the thread spins for that much CPU time, then gives up and blocks; the
// releasing thread wakes blocked waiters through the scheduler.
struct SpinBarrierAction {
  SyncId barrier;
  Time spin_grace = kTimeNever;  // kTimeNever = spin forever.
};

// Blocking barrier: arrivals sleep; the last participant wakes everyone.
struct BlockingBarrierAction {
  SyncId barrier;
};

// Spin until counter `var` >= `value` (pipeline hand-off, e.g. NAS lu).
struct SpinUntilAction {
  SyncId var;
  int64_t value;
};

// Add `delta` to counter `var`, releasing satisfied spinners.
struct VarAddAction {
  SyncId var;
  int64_t delta;
};

// Block on an event object until signalled.
struct EventWaitAction {
  SyncId event;
};

// Wake up to `count` waiters of an event (-1 = all).
struct EventSignalAction {
  SyncId event;
  int count = 1;
};

// Wake a specific blocked thread (producer/consumer hand-off).
struct WakeThreadAction {
  ThreadId target;
};

struct ExitAction {};

using Action =
    std::variant<ComputeAction, SleepAction, BlockAction, SpinLockAction, SpinUnlockAction,
                 MutexLockAction, MutexUnlockAction, SpinBarrierAction, BlockingBarrierAction,
                 SpinUntilAction, VarAddAction, EventWaitAction, EventSignalAction,
                 WakeThreadAction, ExitAction>;

}  // namespace wcores

#endif  // SRC_SIM_ACTIONS_H_
