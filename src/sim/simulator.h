// The discrete-event machine simulator.
//
// Executes SimThreads on a simulated multicore machine under the CFS
// scheduler of src/core. The simulator is the SchedClient: the scheduler
// asks it (via deferred events, preserving determinism) to reschedule cores
// that received work and to run NOHZ balancing on kicked tickless cores.
//
// Timing model:
//  * A running thread's compute segments consume core time 1:1.
//  * Spinning threads consume core time without making progress.
//  * The scheduler tick fires every tunables.tick_period on busy cores;
//    idle cores are tickless (§2.2.2).
//  * Context switches cost tunables.context_switch_cost of core time.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/metrics/accounting.h"
#include "src/sim/sync.h"
#include "src/sim/thread.h"
#include "src/simkit/event_queue.h"
#include "src/simkit/rng.h"

namespace wcores {

class Simulator : public SchedClient {
 public:
  struct Options {
    SchedFeatures features;
    // Defaulted from SchedTunables::ForCpus(n_cores) when left zeroed.
    SchedTunables tunables;
    bool tunables_set = false;
    uint64_t seed = 1;
    // Scheduling policy (src/core/sched_policy.h); null = CFS. Borrowed:
    // must outlive the simulator, one instance per simulator.
    SchedPolicy* policy = nullptr;
  };

  Simulator(const Topology& topo, Options options, TraceSink* trace = nullptr);
  ~Simulator() override;

  // ---- Workload construction ----------------------------------------------

  struct SpawnParams {
    int nice = 0;
    AutogroupId autogroup = kRootAutogroup;
    CpuSet affinity;                    // Empty = all cpus.
    ThreadId parent = kInvalidThread;   // Fork on the parent's current core.
    CpuId parent_cpu = kInvalidCpu;     // Explicit override.
  };

  ThreadId Spawn(std::unique_ptr<Behavior> behavior, const SpawnParams& params);
  ThreadId Spawn(std::unique_ptr<Behavior> behavior) { return Spawn(std::move(behavior), SpawnParams{}); }

  AutogroupId CreateAutogroup() { return sched_->CreateAutogroup(); }

  SyncId CreateSpinLock();
  SyncId CreateMutex();
  SyncId CreateSpinBarrier(int participants);
  SyncId CreateBlockingBarrier(int participants);
  SyncId CreateVar();
  SyncId CreateEvent();

  // Schedules an arbitrary callback (workload generators, tools). Captures
  // must fit InlineCallback's 16-byte inline buffer; point at out-of-line
  // state for anything larger.
  void At(Time when, EventQueue::Callback fn);
  void After(Time delay, EventQueue::Callback fn);

  // CPU hotplug, the /proc interface of §3.4. Safely deschedules the
  // running thread before the scheduler evacuates the core.
  void SetCpuOnline(CpuId cpu, bool online);

  // Wakes a blocked thread from outside (tools/tests); no-op when runnable.
  void WakeExternal(ThreadId tid, CpuId waker_cpu = kInvalidCpu);

  // ---- Execution ------------------------------------------------------------

  // Runs until the event queue drains or virtual time reaches `until`.
  void Run(Time until);

  // Runs until every spawned thread has exited (or `deadline`); returns
  // true if all exited.
  bool RunUntilAllExited(Time deadline);

  Time Now() const { return queue_.now(); }

  // ---- Introspection ---------------------------------------------------------

  Scheduler& sched() { return *sched_; }
  const Scheduler& sched() const { return *sched_; }
  const Topology& topo() const { return *topo_; }
  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }

  const SimThread& thread(ThreadId tid) const { return threads_[tid]; }
  int thread_count() const { return static_cast<int>(threads_.size()); }
  int alive_threads() const { return alive_; }
  ThreadId RunningOn(CpuId cpu) const { return cores_[cpu].running; }

  CpuAccounting& accounting() { return acct_; }

  const SpinLock& spin_lock(SyncId id) const { return spin_locks_[id]; }
  const Mutex& mutex(SyncId id) const { return mutexes_[id]; }
  const SpinBarrier& spin_barrier(SyncId id) const { return spin_barriers_[id]; }
  const BlockingBarrier& blocking_barrier(SyncId id) const { return blocking_barriers_[id]; }
  const SpinVar& var(SyncId id) const { return vars_[id]; }
  int64_t VarValue(SyncId id) const { return vars_[id].value; }

  uint64_t context_switches() const { return context_switches_; }

  // ---- SchedClient ------------------------------------------------------------

  void KickCpu(CpuId cpu) override;
  void NohzKick(CpuId cpu) override;

 private:
  struct Core {
    ThreadId running = kInvalidThread;
    EventHandle tick;
    EventHandle pending;  // Segment end / action resume / spin completion.
    bool kick_pending = false;
    Time run_start = 0;
  };

  // Event handlers.
  void OnTick(CpuId cpu);
  void OnSegmentEnd(CpuId cpu);
  void OnTimerWake(ThreadId tid);
  void CheckResched(CpuId cpu);

  // Core execution control.
  void ContextSwitch(CpuId cpu);
  void StopRunning(CpuId cpu);
  void StartRunning(CpuId cpu, ThreadId tid, bool charge_cost);
  void ArmTickIfNeeded(CpuId cpu);

  // Action interpretation. ProcessActions requires threads_[tid] to be the
  // running thread of `cpu`.
  void ProcessActions(CpuId cpu, ThreadId tid);
  // Returns true if the action completed synchronously (continue the loop).
  bool ApplyAction(CpuId cpu, SimThread& t, const Action& action);

  // Spin machinery.
  bool SpinSatisfied(const SimThread& t) const;
  // Hybrid waiting: the spin grace expired; convert the spinner to a
  // blocked waiter of its barrier.
  void OnSpinTimeout(CpuId cpu, ThreadId tid);
  void ArmSpinTimeout(CpuId cpu, ThreadId tid, Time extra_delay);
  // Claims the spun-on resource if available; returns true when the thread
  // may proceed to its next action.
  bool TryCompleteSpin(SimThread& t);
  void OnSpinRecheck(CpuId cpu, ThreadId tid);
  void NotifySpinner(ThreadId tid);  // Schedule a recheck if it is on a core.

  void BlockAndSwitch(CpuId cpu, SimThread& t);
  void WakeThreadInternal(ThreadId tid, CpuId waker_cpu);

  const Topology* topo_;
  SchedFeatures features_;
  SchedTunables tunables_;
  EventQueue queue_;
  Rng rng_;
  std::unique_ptr<Scheduler> sched_;
  std::deque<SimThread> threads_;
  std::vector<Core> cores_;
  CpuAccounting acct_;
  int alive_ = 0;
  uint64_t context_switches_ = 0;

  std::deque<SpinLock> spin_locks_;
  std::deque<Mutex> mutexes_;
  std::deque<SpinBarrier> spin_barriers_;
  std::deque<BlockingBarrier> blocking_barriers_;
  std::deque<SpinVar> vars_;
  std::deque<SyncEvent> events_;
};

}  // namespace wcores

#endif  // SRC_SIM_SIMULATOR_H_
