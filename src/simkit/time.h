// Virtual time for the discrete-event simulator.
//
// All simulated time is expressed in nanoseconds since simulation start, as a
// 64-bit unsigned integer. 2^64 ns is about 584 years, far beyond any run.
#ifndef SRC_SIMKIT_TIME_H_
#define SRC_SIMKIT_TIME_H_

#include <cstdint>
#include <string>

namespace wcores {

// Nanoseconds of virtual time.
using Time = uint64_t;

// Signed durations are occasionally useful (e.g. vruntime deltas).
using Duration = int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

// A value no event can be scheduled at; used as "never" / "unset".
constexpr Time kTimeNever = ~Time{0};

constexpr Time Nanoseconds(uint64_t n) { return n * kNanosecond; }
constexpr Time Microseconds(uint64_t n) { return n * kMicrosecond; }
constexpr Time Milliseconds(uint64_t n) { return n * kMillisecond; }
constexpr Time Seconds(uint64_t n) { return n * kSecond; }

constexpr double ToSeconds(Time t) { return static_cast<double>(t) / kSecond; }
constexpr double ToMilliseconds(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double ToMicroseconds(Time t) { return static_cast<double>(t) / kMicrosecond; }

// Human-readable rendering, e.g. "1.204s", "350.0ms", "12.5us", "900ns".
std::string FormatTime(Time t);

}  // namespace wcores

#endif  // SRC_SIMKIT_TIME_H_
