#include "src/simkit/event_queue.h"

#include "src/simkit/check.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wcores {

EventHandle EventQueue::ScheduleAt(Time when, Callback fn) {
  WC_CHECK(when >= now_, "cannot schedule events in the past");
  WC_CHECK(static_cast<bool>(fn), "cannot schedule an empty callback");
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    // wc-lint: allow(A2 slot pool grows to the pending-event high-water mark, then recycles)
    slots_.emplace_back();
  }
  uint64_t generation = slots_[slot].generation;
  Push(Entry{when, next_seq_++, generation, slot, std::move(fn)});
  return EventHandle(this, slot, generation);
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  ++slots_[slot].generation;
  // wc-lint: allow(A2 free list capacity tops out at the slot-pool high-water mark)
  free_slots_.push_back(slot);
}

// A plain binary heap. A 4-ary hole-sifting variant was measured ~4% slower
// on whole-sim throughput: the pending-event set is small enough that the
// extra per-level child comparisons outweigh the halved depth (see
// EXPERIMENTS.md "Hot-path overhaul").
void EventQueue::Push(Entry entry) {
  // wc-lint: allow(A2 heap capacity tops out at the pending-event high-water mark)
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Entry& a, const Entry& b) { return Earlier(b, a); });
}

void EventQueue::Pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const Entry& a, const Entry& b) { return Earlier(b, a); });
  heap_.pop_back();
}

bool EventQueue::RunOne(Time until) {
  // Skip cancelled entries (their slot was already released on Cancel()).
  while (!heap_.empty() && !EntryLive(heap_.front())) {
    Pop();
  }
  if (heap_.empty()) {
    return false;
  }
  if (heap_.front().when > until) {
    if (until != kTimeNever) {
      now_ = std::max(now_, until);
    }
    return false;
  }
  Entry entry = std::move(heap_.front());
  Pop();
  now_ = entry.when;
  ReleaseSlot(entry.slot);  // Marks the handle non-pending once fired.
  ++executed_;
  entry.fn();
  return true;
}

bool EventQueue::Empty() const { return LiveCount() == 0; }

size_t EventQueue::LiveCount() const {
  size_t n = 0;
  for (const auto& entry : heap_) {
    if (EntryLive(entry)) {
      ++n;
    }
  }
  return n;
}

uint64_t EventQueue::RunUntil(Time until) {
  uint64_t n = 0;
  while (RunOne(until)) {
    ++n;
  }
  return n;
}

}  // namespace wcores
