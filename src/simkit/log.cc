#include "src/simkit/log.h"

namespace wcores {

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Logv(LogLevel level, const char* fmt, va_list args) {
  if (level < level_) {
    return;
  }
  static const char* const kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  if (clock_ != nullptr) {
    std::fprintf(stderr, "[%12s] %-5s ", FormatTime(*clock_).c_str(),
                 kNames[static_cast<int>(level)]);
  } else {
    std::fprintf(stderr, "%-5s ", kNames[static_cast<int>(level)]);
  }
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

void Logger::Log(LogLevel level, const char* fmt, ...) {
  if (level < level_) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  Logv(level, fmt, args);
  va_end(args);
}

}  // namespace wcores
