// Always-on invariant checks.
//
// Unlike assert(), WC_CHECK survives NDEBUG builds: scheduler-state
// corruption (double enqueue, waking a runnable thread, unlocking a lock
// that is not held) must abort loudly in every configuration, because a
// simulation that silently continues produces plausible-looking wrong
// numbers. The checks guard O(1) conditions only, so the cost is noise.
#ifndef SRC_SIMKIT_CHECK_H_
#define SRC_SIMKIT_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace wcores {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "WC_CHECK failed: %s (%s) at %s:%d\n", msg, expr, file, line);
  std::abort();
}

}  // namespace wcores

#define WC_CHECK(cond, msg)                                 \
  do {                                                      \
    if (!(cond)) {                                          \
      ::wcores::CheckFailed(#cond, __FILE__, __LINE__, msg); \
    }                                                       \
  } while (0)

#endif  // SRC_SIMKIT_CHECK_H_
