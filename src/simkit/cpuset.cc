#include "src/simkit/cpuset.h"

#include <cstdio>

namespace wcores {

std::string CpuSet::ToString() const {
  std::string out;
  char buf[32];
  CpuId run_start = kInvalidCpu;
  CpuId prev = kInvalidCpu;
  auto flush = [&] {
    if (run_start == kInvalidCpu) {
      return;
    }
    if (!out.empty()) {
      out += ',';
    }
    if (run_start == prev) {
      std::snprintf(buf, sizeof(buf), "%d", run_start);
    } else {
      std::snprintf(buf, sizeof(buf), "%d-%d", run_start, prev);
    }
    out += buf;
  };
  for (CpuId c = First(); c != kInvalidCpu; c = Next(c)) {
    if (run_start == kInvalidCpu) {
      run_start = c;
    } else if (c != prev + 1) {
      flush();
      run_start = c;
    }
    prev = c;
  }
  flush();
  if (out.empty()) {
    out = "(empty)";
  }
  return out;
}

}  // namespace wcores
