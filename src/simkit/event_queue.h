// Discrete-event queue: the heart of the simulator.
//
// Events are (time, sequence, callback) triples ordered by time, with the
// sequence number breaking ties so that two events scheduled for the same
// instant fire in scheduling order. Determinism of the whole simulation
// follows from this total order plus seeded RNG.
//
// Events can be cancelled cheaply: Schedule() returns an EventHandle whose
// cancellation marks the heap entry dead; dead entries are skipped on pop
// (lazy deletion). This is how per-core tick timers and sleep timers are
// retargeted without heap surgery.
//
// Cancellation state lives in a pooled slot table inside the queue rather
// than in a per-event heap allocation: a handle is (queue, slot, generation)
// and a heap entry is dead when its slot's generation has moved on. Slots
// are recycled through a free list, so steady-state scheduling allocates
// nothing. Handles must not outlive their queue (the simulator guarantees
// this by declaring the queue before everything that stores handles).
#ifndef SRC_SIMKIT_EVENT_QUEUE_H_
#define SRC_SIMKIT_EVENT_QUEUE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/simkit/inline_callback.h"
#include "src/simkit/time.h"

namespace wcores {

class EventQueue;

// Cancellation token for a scheduled event. Copyable; all copies observe the
// same underlying slot. Invalidated (not dangling-safe) if the queue dies
// first — see the lifetime note above.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  bool Pending() const;

  // Cancel the event if still pending. Safe to call repeatedly or on a
  // default-constructed handle.
  void Cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, uint32_t slot, uint64_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  uint32_t slot_ = 0;
  uint64_t generation_ = 0;
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `when` (must be >= now()).
  EventHandle ScheduleAt(Time when, Callback fn);

  // Schedule `fn` to run `delay` from now.
  EventHandle ScheduleAfter(Time delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // True if no live (non-cancelled) events remain. O(heap size).
  bool Empty() const;

  size_t LiveCount() const;

  // Run the earliest event. Returns false if the queue is empty or the next
  // event is later than `until` (clock is then advanced to `until`).
  bool RunOne(Time until = kTimeNever);

  // Run events until the queue drains or the clock reaches `until`.
  // Returns the number of events executed.
  uint64_t RunUntil(Time until);

  // Run everything. Returns the number of events executed.
  uint64_t RunAll() { return RunUntil(kTimeNever); }

  // Total events executed over the queue's lifetime.
  uint64_t executed_count() const { return executed_; }

 private:
  friend class EventHandle;

  struct Entry {
    Time when;
    uint64_t seq;
    uint64_t generation;
    uint32_t slot;
    Callback fn;
  };

  // Strict total order on entries: (when, seq), seq unique per queue. The
  // heap below may arrange equal-time entries any way it likes internally;
  // extraction order — the only thing the simulation observes — is fixed by
  // this order alone.
  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  bool EntryLive(const Entry& entry) const {
    return slots_[entry.slot].generation == entry.generation;
  }
  bool SlotPending(uint32_t slot, uint64_t generation) const {
    return slots_[slot].generation == generation;
  }
  void ReleaseSlot(uint32_t slot);

  void Push(Entry entry);
  void Pop();

  struct Slot {
    // Bumped on fire/cancel; an entry or handle whose generation no longer
    // matches is dead. 64-bit so recycling can never wrap within a run.
    uint64_t generation = 0;
  };

  // Binary min-heap ordered by Earlier().
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

inline bool EventHandle::Pending() const {
  return queue_ != nullptr && queue_->SlotPending(slot_, generation_);
}

inline void EventHandle::Cancel() {
  if (queue_ != nullptr && queue_->SlotPending(slot_, generation_)) {
    queue_->ReleaseSlot(slot_);
  }
  queue_ = nullptr;
}

}  // namespace wcores

#endif  // SRC_SIMKIT_EVENT_QUEUE_H_
