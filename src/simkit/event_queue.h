// Discrete-event queue: the heart of the simulator.
//
// Events are (time, sequence, callback) triples ordered by time, with the
// sequence number breaking ties so that two events scheduled for the same
// instant fire in scheduling order. Determinism of the whole simulation
// follows from this total order plus seeded RNG.
//
// Events can be cancelled cheaply: Schedule() returns an EventHandle whose
// cancellation marks the heap entry dead; dead entries are skipped on pop
// (lazy deletion). This is how per-core tick timers and sleep timers are
// retargeted without heap surgery.
#ifndef SRC_SIMKIT_EVENT_QUEUE_H_
#define SRC_SIMKIT_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/simkit/time.h"

namespace wcores {

class EventQueue;

// Shared cancellation token for a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  bool Pending() const { return state_ && !*state_; }

  // Cancel the event if still pending. Safe to call repeatedly or on a
  // default-constructed handle.
  void Cancel() {
    if (state_) {
      *state_ = true;
    }
    state_.reset();
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}

  std::shared_ptr<bool> state_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `when` (must be >= now()).
  EventHandle ScheduleAt(Time when, Callback fn);

  // Schedule `fn` to run `delay` from now.
  EventHandle ScheduleAfter(Time delay, Callback fn) { return ScheduleAt(now_ + delay, fn); }

  // True if no live (non-cancelled) events remain. O(heap size).
  bool Empty() const;

  size_t LiveCount() const;

  // Run the earliest event. Returns false if the queue is empty or the next
  // event is later than `until` (clock is then advanced to `until`).
  bool RunOne(Time until = kTimeNever);

  // Run events until the queue drains or the clock reaches `until`.
  // Returns the number of events executed.
  uint64_t RunUntil(Time until);

  // Run everything. Returns the number of events executed.
  uint64_t RunAll() { return RunUntil(kTimeNever); }

  // Total events executed over the queue's lifetime.
  uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    Time when;
    uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };

  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void Push(Entry entry);
  void Pop();

  std::vector<Entry> heap_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace wcores

#endif  // SRC_SIMKIT_EVENT_QUEUE_H_
