#include "src/simkit/time.h"

#include <cinttypes>
#include <cstdio>

namespace wcores {

std::string FormatTime(Time t) {
  char buf[64];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(t));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMilliseconds(t));
  } else if (t >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ToMicroseconds(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", t);
  }
  return buf;
}

}  // namespace wcores
