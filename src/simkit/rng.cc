#include "src/simkit/rng.h"

#include <cmath>

namespace wcores {

Time Rng::NextExponential(Time mean) {
  // Inverse-CDF sampling; clamp u away from 0 so log() is finite.
  double u = NextDouble();
  if (u < 1e-12) {
    u = 1e-12;
  }
  double value = -std::log(u) * static_cast<double>(mean);
  if (value < 0) {
    value = 0;
  }
  return static_cast<Time>(value);
}

}  // namespace wcores
