// Deterministic pseudo-random number generation for simulations.
//
// Simulation results must be reproducible from a seed alone, so this library
// never touches wall-clock entropy. The generator is xoshiro256**, seeded via
// SplitMix64, which is the conventional, well-tested combination.
#ifndef SRC_SIMKIT_RNG_H_
#define SRC_SIMKIT_RNG_H_

#include <cstdint>

#include "src/simkit/time.h"

namespace wcores {

// SplitMix64 step; used standalone for seeding and cheap hashing.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator. Cheap to copy; fork() derives independent streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Lemire's multiply-shift rejection-free-enough reduction; bias is
    // negligible for simulation bounds (<< 2^32).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * static_cast<__uint128_t>(bound)) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Duration uniform in [lo, hi].
  Time NextTime(Time lo, Time hi) { return NextInRange(lo, hi); }

  // Exponentially distributed duration with the given mean (for Poisson
  // arrival processes such as transient kernel threads).
  Time NextExponential(Time mean);

  // A new, statistically independent generator derived from this one.
  Rng Fork() { return Rng(Next()); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace wcores

#endif  // SRC_SIMKIT_RNG_H_
