// Fixed-size inline-storage callback for the event hot path.
//
// Every event the simulator schedules captures at most two pointers (the
// simulator plus a cpu or thread id), so the full generality of
// std::function — heap fallback, copyability, RTTI hooks — is pure
// overhead on the single hottest path in the codebase. InlineCallback
// stores the callable in a 16-byte inline buffer, dispatches through one
// raw function pointer, and refuses anything bigger at compile time: the
// static_assert turns a would-be allocation into a build error at the
// offending capture list.
//
// Restrictions, all deliberate:
//  * captures must fit kCapacity bytes and kAlignment alignment;
//  * the callable must be trivially copyable (moving is a memcpy, and no
//    destructor ever needs to run — cancellation can drop entries freely);
//  * move-only: accidental copies of pending events are a bug, not a cost.
#ifndef SRC_SIMKIT_INLINE_CALLBACK_H_
#define SRC_SIMKIT_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wcores {

class InlineCallback {
 public:
  static constexpr size_t kCapacity = 16;
  static constexpr size_t kAlignment = 16;

  // Compile-time admission test, usable by callers that want to branch
  // (e.g. tests probing the boundary) instead of hitting the static_assert.
  template <typename F>
  static constexpr bool CanHold() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kCapacity && alignof(D) <= kAlignment &&
           std::is_trivially_copyable_v<D>;
  }

  InlineCallback() = default;

  // Implicit on purpose: call sites pass lambdas to ScheduleAt/At exactly
  // as they did with std::function.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= kCapacity,
                  "event callback captures exceed InlineCallback::kCapacity; "
                  "capture a pointer to out-of-line state instead");
    static_assert(alignof(D) <= kAlignment,
                  "event callback over-aligned for InlineCallback storage");
    static_assert(std::is_trivially_copyable_v<D>,
                  "event callbacks must be trivially copyable (no owning "
                  "captures); keep owning state outside the event");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    invoke_ = [](void* storage) {
      (*std::launder(reinterpret_cast<D*>(storage)))();
    };
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  // Trivial-copyability of the stored callable makes a move a plain byte
  // copy; the source is emptied only so stale entries cannot double-fire.
  InlineCallback(InlineCallback&& other) noexcept : invoke_(other.invoke_) {
    std::memcpy(storage_, other.storage_, kCapacity);
    other.invoke_ = nullptr;
  }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      std::memcpy(storage_, other.storage_, kCapacity);
      invoke_ = other.invoke_;
      other.invoke_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

 private:
  alignas(kAlignment) unsigned char storage_[kCapacity];
  void (*invoke_)(void*) = nullptr;
};

}  // namespace wcores

#endif  // SRC_SIMKIT_INLINE_CALLBACK_H_
