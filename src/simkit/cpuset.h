// A fixed-capacity CPU bitmask, analogous to the kernel's cpumask_t.
//
// Used for thread affinity (taskset), scheduling-group membership, and the
// "considered cores" bitmaps recorded by the visualization tool.
#ifndef SRC_SIMKIT_CPUSET_H_
#define SRC_SIMKIT_CPUSET_H_

#include <cstdint>
#include <string>

namespace wcores {

// Core identifier. Cores are numbered densely from 0.
using CpuId = int;
constexpr CpuId kInvalidCpu = -1;

// Maximum number of cores a machine may have. The paper's machine has 64;
// 256 leaves room for larger synthetic topologies.
constexpr int kMaxCpus = 256;

class CpuSet {
 public:
  constexpr CpuSet() : words_{} {}

  // A set containing cpus [0, n).
  static CpuSet FirstN(int n) {
    CpuSet s;
    for (int i = 0; i < n; ++i) {
      s.Set(i);
    }
    return s;
  }

  static CpuSet Single(CpuId cpu) {
    CpuSet s;
    s.Set(cpu);
    return s;
  }

  constexpr void Set(CpuId cpu) { words_[Word(cpu)] |= Bit(cpu); }
  constexpr void Clear(CpuId cpu) { words_[Word(cpu)] &= ~Bit(cpu); }
  constexpr bool Test(CpuId cpu) const { return (words_[Word(cpu)] & Bit(cpu)) != 0; }

  constexpr void SetAll(int n_cpus) {
    for (int i = 0; i < n_cpus; ++i) {
      Set(i);
    }
  }

  constexpr void Reset() {
    for (auto& w : words_) {
      w = 0;
    }
  }

  constexpr bool Empty() const {
    for (auto w : words_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  constexpr int Count() const {
    int n = 0;
    for (auto w : words_) {
      n += __builtin_popcountll(w);
    }
    return n;
  }

  // Lowest set cpu, or kInvalidCpu if empty.
  constexpr CpuId First() const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] != 0) {
        return i * 64 + __builtin_ctzll(words_[i]);
      }
    }
    return kInvalidCpu;
  }

  // Lowest set cpu strictly greater than `cpu`, or kInvalidCpu.
  constexpr CpuId Next(CpuId cpu) const {
    int start = cpu + 1;
    if (start >= kMaxCpus) {
      return kInvalidCpu;
    }
    int w = Word(start);
    uint64_t masked = words_[w] & (~uint64_t{0} << (start % 64));
    if (masked != 0) {
      return w * 64 + __builtin_ctzll(masked);
    }
    for (int i = w + 1; i < kWords; ++i) {
      if (words_[i] != 0) {
        return i * 64 + __builtin_ctzll(words_[i]);
      }
    }
    return kInvalidCpu;
  }

  constexpr CpuSet operator&(const CpuSet& other) const {
    CpuSet r;
    for (int i = 0; i < kWords; ++i) {
      r.words_[i] = words_[i] & other.words_[i];
    }
    return r;
  }

  constexpr CpuSet operator|(const CpuSet& other) const {
    CpuSet r;
    for (int i = 0; i < kWords; ++i) {
      r.words_[i] = words_[i] | other.words_[i];
    }
    return r;
  }

  constexpr CpuSet operator~() const {
    CpuSet r;
    for (int i = 0; i < kWords; ++i) {
      r.words_[i] = ~words_[i];
    }
    return r;
  }

  constexpr CpuSet& operator&=(const CpuSet& other) {
    for (int i = 0; i < kWords; ++i) {
      words_[i] &= other.words_[i];
    }
    return *this;
  }

  constexpr CpuSet& operator|=(const CpuSet& other) {
    for (int i = 0; i < kWords; ++i) {
      words_[i] |= other.words_[i];
    }
    return *this;
  }

  constexpr bool operator==(const CpuSet& other) const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] != other.words_[i]) {
        return false;
      }
    }
    return true;
  }

  constexpr bool operator!=(const CpuSet& other) const { return !(*this == other); }

  // Word-lexicographic total order, so a CpuSet can key an ordered container
  // or be sorted deterministically. Not a subset relation.
  constexpr bool operator<(const CpuSet& other) const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] != other.words_[i]) {
        return words_[i] < other.words_[i];
      }
    }
    return false;
  }

  constexpr bool Intersects(const CpuSet& other) const {
    for (int i = 0; i < kWords; ++i) {
      if ((words_[i] & other.words_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  constexpr bool ContainsAll(const CpuSet& other) const {
    for (int i = 0; i < kWords; ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) {
        return false;
      }
    }
    return true;
  }

  // Renders like "0-3,8,10-11".
  std::string ToString() const;

  // Iteration support: for (CpuId c : set) { ... }
  class Iterator {
   public:
    Iterator(const CpuSet* set, CpuId cpu) : set_(set), cpu_(cpu) {}
    CpuId operator*() const { return cpu_; }
    Iterator& operator++() {
      cpu_ = set_->Next(cpu_);
      return *this;
    }
    bool operator!=(const Iterator& other) const { return cpu_ != other.cpu_; }

   private:
    const CpuSet* set_;
    CpuId cpu_;
  };

  Iterator begin() const { return Iterator(this, First()); }
  Iterator end() const { return Iterator(this, kInvalidCpu); }

 private:
  static constexpr int kWords = kMaxCpus / 64;
  static constexpr int Word(CpuId cpu) { return cpu / 64; }
  static constexpr uint64_t Bit(CpuId cpu) { return uint64_t{1} << (cpu % 64); }

  uint64_t words_[kWords];
};

}  // namespace wcores

#endif  // SRC_SIMKIT_CPUSET_H_
