// Minimal leveled logging for the simulator and tools.
//
// Logging is off (kWarn) by default so that benchmarks stay quiet; tests and
// examples can raise verbosity. Output carries the virtual timestamp when a
// clock is attached, which makes traces directly comparable across runs.
#ifndef SRC_SIMKIT_LOG_H_
#define SRC_SIMKIT_LOG_H_

#include <cstdarg>
#include <cstdio>

#include "src/simkit/time.h"

namespace wcores {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // The logger renders `*clock` as a virtual timestamp prefix when attached.
  void AttachClock(const Time* clock) { clock_ = clock; }

  void Logv(LogLevel level, const char* fmt, va_list args);
  void Log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 3, 4)));

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kWarn;
  const Time* clock_ = nullptr;
};

#define WC_LOG(level, ...) ::wcores::Logger::Get().Log((level), __VA_ARGS__)
#define WC_DEBUG(...) WC_LOG(::wcores::LogLevel::kDebug, __VA_ARGS__)
#define WC_INFO(...) WC_LOG(::wcores::LogLevel::kInfo, __VA_ARGS__)
#define WC_WARN(...) WC_LOG(::wcores::LogLevel::kWarn, __VA_ARGS__)
#define WC_ERROR(...) WC_LOG(::wcores::LogLevel::kError, __VA_ARGS__)

}  // namespace wcores

#endif  // SRC_SIMKIT_LOG_H_
