#include "src/workloads/transient.h"

#include "src/sim/thread.h"

namespace wcores {

void TransientThreadGenerator::Start() { ScheduleNext(); }

void TransientThreadGenerator::ScheduleNext() {
  Time next = sim_->Now() + rng_.NextExponential(options_.mean_interval);
  if (options_.stop_at != 0 && next > options_.stop_at) {
    return;
  }
  sim_->At(next, [this] { SpawnOne(); });
}

void TransientThreadGenerator::SpawnOne() {
  spawned_ += 1;
  Time work = rng_.NextTime(options_.min_work, options_.max_work);
  Simulator::SpawnParams params;
  // Background kernel work starts wherever the triggering activity happens:
  // a random online core.
  CpuSet online = sim_->sched().OnlineCpus();
  int index = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(online.Count())));
  CpuId cpu = online.First();
  for (int i = 0; i < index; ++i) {
    cpu = online.Next(cpu);
  }
  params.parent_cpu = cpu;
  sim_->Spawn(std::make_unique<ScriptBehavior>(std::vector<Action>{ComputeAction{work}}), params);
  ScheduleNext();
}

}  // namespace wcores
