#include "src/workloads/make_r.h"

#include <algorithm>
#include <cassert>

#include "src/workloads/behaviors.h"

namespace wcores {

void MakeRWorkload::Setup() {
  assert(make_tids_.empty() && "Setup called twice");
  started_ = sim_->Now();

  // Three ttys => three autogroups (§2.2.1, autogroup feature).
  AutogroupId make_group = sim_->CreateAutogroup();

  Simulator::SpawnParams make_params;
  make_params.autogroup = make_group;
  make_params.parent_cpu = config_.make_spawn_cpu;
  for (int i = 0; i < config_.make_threads; ++i) {
    make_tids_.push_back(
        sim_->Spawn(std::make_unique<ComputeSleepBehavior>(config_.make_work_per_thread,
                                                           config_.make_chunk, config_.make_sleep),
                    make_params));
  }

  for (int r = 0; r < config_.r_processes; ++r) {
    Simulator::SpawnParams r_params;
    r_params.autogroup = sim_->CreateAutogroup();
    r_params.parent_cpu =
        r < static_cast<int>(config_.r_cpus.size()) ? config_.r_cpus[r] : kInvalidCpu;
    r_tids_.push_back(sim_->Spawn(std::make_unique<CpuHogBehavior>(config_.r_work), r_params));
  }
}

Time MakeRWorkload::MakeCompletionTime() const {
  Time last = 0;
  for (ThreadId tid : make_tids_) {
    last = std::max(last, sim_->thread(tid).finished_at);
  }
  return last > started_ ? last - started_ : 0;
}

bool MakeRWorkload::MakeFinished() const {
  for (ThreadId tid : make_tids_) {
    if (sim_->thread(tid).Alive()) {
      return false;
    }
  }
  return true;
}

std::vector<Time> MakeRWorkload::RCompletionTimes() const {
  std::vector<Time> times;
  for (ThreadId tid : r_tids_) {
    Time fin = sim_->thread(tid).finished_at;
    times.push_back(fin > started_ ? fin - started_ : 0);
  }
  return times;
}

}  // namespace wcores
