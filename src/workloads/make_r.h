// The multi-user workload of §3.1 (Figure 2): a 64-thread kernel `make`
// plus two single-threaded R processes, launched from three different ttys
// and therefore living in three different autogroups.
//
// The autogroup load division makes one make thread ~64x lighter than one
// R thread; the average-load group comparison then conceals the idle cores
// on the R nodes — the Group Imbalance bug.
#ifndef SRC_WORKLOADS_MAKE_R_H_
#define SRC_WORKLOADS_MAKE_R_H_

#include <vector>

#include "src/sim/simulator.h"

namespace wcores {

struct MakeRConfig {
  int make_threads = 64;
  // Per-thread compile work; completion of the whole make is what the paper
  // reports (-13% with the fix).
  Time make_work_per_thread = Milliseconds(500);
  Time make_chunk = Milliseconds(2);       // Compute between I/O waits.
  Time make_sleep = Microseconds(250);     // I/O wait length.
  int r_processes = 2;
  Time r_work = Seconds(2);                // R outlives make; CPU-bound.
  // Cores the R processes start on (paper: nodes 0 and 4). Sized >= r_processes.
  std::vector<CpuId> r_cpus = {0, 32};
  CpuId make_spawn_cpu = 8;                // make's tty lives on node 1.
};

class MakeRWorkload {
 public:
  MakeRWorkload(Simulator* sim, const MakeRConfig& config) : sim_(sim), config_(config) {}

  void Setup();

  // Completion of the slowest make thread (the `make` wall time).
  Time MakeCompletionTime() const;
  bool MakeFinished() const;
  // Completion of each R process (should be unaffected by the fix).
  std::vector<Time> RCompletionTimes() const;

  const std::vector<ThreadId>& make_threads() const { return make_tids_; }
  const std::vector<ThreadId>& r_threads() const { return r_tids_; }

 private:
  Simulator* sim_;
  MakeRConfig config_;
  std::vector<ThreadId> make_tids_;
  std::vector<ThreadId> r_tids_;
  Time started_ = 0;
};

}  // namespace wcores

#endif  // SRC_WORKLOADS_MAKE_R_H_
