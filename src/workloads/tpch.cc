#include "src/workloads/tpch.h"

#include <algorithm>
#include <cassert>

#include "src/workloads/behaviors.h"

namespace wcores {

std::vector<TpchQuerySpec> FullTpchSuite(double scale) {
  // 22 queries with assorted stage counts and granularities; the totals are
  // scaled down so the whole suite simulates quickly. Q18 (three-way join +
  // group-by) gets the most, finest-grained stages, matching its role as
  // "one of the queries most sensitive to the bug".
  std::vector<TpchQuerySpec> suite;
  struct Row {
    int id;
    int stages;
    Time compute;
    double jitter;
  };
  // Most queries are scan/aggregate-heavy with coarse stages (less
  // sensitive to wakeup placement); Q18 and a few join-heavy ones
  // synchronize finely and often.
  static const Row kRows[] = {
      {1, 10, Milliseconds(5), 0.2},  {2, 6, Milliseconds(2), 0.3},
      {3, 10, Milliseconds(2), 0.3},  {4, 8, Milliseconds(2), 0.3},
      {5, 10, Milliseconds(2), 0.3},  {6, 4, Milliseconds(5), 0.2},
      {7, 10, Milliseconds(2), 0.3},  {8, 16, Milliseconds(1), 0.3},
      {9, 12, Milliseconds(2), 0.3},  {10, 8, Milliseconds(2), 0.3},
      {11, 5, Milliseconds(2), 0.3},  {12, 6, Milliseconds(2), 0.2},
      {13, 8, Milliseconds(2), 0.4},  {14, 5, Milliseconds(2), 0.3},
      {15, 6, Milliseconds(2), 0.3},  {16, 8, Milliseconds(1), 0.4},
      {17, 18, Milliseconds(1), 0.3}, {18, 60, Microseconds(700), 0.4},
      {19, 7, Milliseconds(2), 0.3},  {20, 8, Milliseconds(2), 0.3},
      {21, 22, Milliseconds(1), 0.4}, {22, 5, Milliseconds(2), 0.3},
  };
  for (const Row& row : kRows) {
    TpchQuerySpec q;
    q.id = row.id;
    q.stages = std::max(1, static_cast<int>(row.stages * scale));
    q.stage_compute = row.compute;
    q.jitter = row.jitter;
    suite.push_back(q);
  }
  return suite;
}

TpchQuerySpec TpchQuery18(double scale) {
  for (const TpchQuerySpec& q : FullTpchSuite(scale)) {
    if (q.id == 18) {
      return q;
    }
  }
  return TpchQuerySpec{};
}

namespace {

// Executes the query plan: for each stage, compute a jittered slice then
// join the other workers at a blocking barrier. Worker 0 records query
// completion times into the workload.
class DbWorker : public Behavior {
 public:
  DbWorker(TpchWorkload* wl, std::vector<Time>* query_times, Time* started,
           const std::vector<TpchQuerySpec>* queries, SyncId barrier, bool is_recorder)
      : wl_(wl), query_times_(query_times), started_(started), queries_(queries),
        barrier_(barrier), is_recorder_(is_recorder) {}

  Action Next(BehaviorContext& ctx) override {
    (void)wl_;
    if (pending_record_) {
      // Fires on the first call after the query's final barrier crossing.
      pending_record_ = false;
      query_times_->push_back(ctx.now - *started_ - PreviousQueriesTime());
    }
    if (query_ >= static_cast<int>(queries_->size())) {
      return ExitAction{};
    }
    const TpchQuerySpec& q = (*queries_)[query_];
    if (!at_barrier_) {
      at_barrier_ = true;
      Time mean = q.stage_compute;
      double factor = 1.0 + q.jitter * (2.0 * ctx.rng->NextDouble() - 1.0);
      return ComputeAction{static_cast<Time>(static_cast<double>(mean) * factor)};
    }
    at_barrier_ = false;
    ++stage_;
    if (stage_ >= q.stages) {
      stage_ = 0;
      ++query_;
      if (is_recorder_) {
        // Recorded when worker 0 passes the final barrier of the query —
        // within one wakeup latency of the true completion.
        pending_record_ = true;
      }
    }
    return BlockingBarrierAction{barrier_};
  }

 private:
  Time PreviousQueriesTime() const {
    Time total = 0;
    for (Time t : *query_times_) {
      total += t;
    }
    return total;
  }

  TpchWorkload* wl_;
  std::vector<Time>* query_times_;
  Time* started_;
  const std::vector<TpchQuerySpec>* queries_;
  SyncId barrier_;
  bool is_recorder_;
  int query_ = 0;
  int stage_ = 0;
  bool at_barrier_ = false;
  bool pending_record_ = false;
};

}  // namespace

void TpchWorkload::Setup() {
  assert(worker_tids_.empty() && "Setup called twice");
  started_ = sim_->Now();
  if (config_.queries.empty()) {
    config_.queries = FullTpchSuite();
  }

  int total = TotalWorkers();
  SyncId barrier = sim_->CreateBlockingBarrier(total);

  bool first = true;
  int pool_index = 0;
  for (int pool_size : config_.pool_sizes) {
    // One container process per pool: own autogroup, workers forked on the
    // container's node.
    Simulator::SpawnParams params;
    params.autogroup = sim_->CreateAutogroup();
    params.parent_cpu =
        (pool_index * sim_->topo().cores_per_node()) % sim_->topo().n_cores();
    for (int i = 0; i < pool_size; ++i) {
      worker_tids_.push_back(sim_->Spawn(
          std::make_unique<DbWorker>(this, &query_times_, &started_, &config_.queries, barrier,
                                     first),
          params));
      first = false;
    }
    ++pool_index;
  }
}

int TpchWorkload::TotalWorkers() const {
  int total = 0;
  for (int s : config_.pool_sizes) {
    total += s;
  }
  return total;
}

bool TpchWorkload::Finished() const {
  for (ThreadId tid : worker_tids_) {
    if (sim_->thread(tid).Alive()) {
      return false;
    }
  }
  return true;
}

Time TpchWorkload::TotalTime() const {
  Time last = 0;
  for (ThreadId tid : worker_tids_) {
    last = std::max(last, sim_->thread(tid).finished_at);
  }
  return last > started_ ? last - started_ : 0;
}

}  // namespace wcores
