#include "src/workloads/nas.h"

#include <algorithm>
#include <cassert>

#include "src/workloads/behaviors.h"

namespace wcores {

const char* NasAppName(NasApp app) {
  switch (app) {
    case NasApp::kBt:
      return "bt";
    case NasApp::kCg:
      return "cg";
    case NasApp::kEp:
      return "ep";
    case NasApp::kFt:
      return "ft";
    case NasApp::kIs:
      return "is";
    case NasApp::kLu:
      return "lu";
    case NasApp::kMg:
      return "mg";
    case NasApp::kSp:
      return "sp";
    case NasApp::kUa:
      return "ua";
  }
  return "?";
}

const std::vector<NasApp>& AllNasApps() {
  static const std::vector<NasApp> kApps = {NasApp::kBt, NasApp::kCg, NasApp::kEp,
                                            NasApp::kFt, NasApp::kIs, NasApp::kLu,
                                            NasApp::kMg, NasApp::kSp, NasApp::kUa};
  return kApps;
}

namespace {

// Per-app synchronization parameters (see the table in nas.h). Iteration
// counts target ~0.4-0.6 virtual seconds of ideal parallel runtime so a
// whole table stays fast to simulate.
struct AppParams {
  enum class Kind { kBarrier, kLock, kPipeline, kComputeOnly };
  Kind kind = Kind::kBarrier;
  BarrierMode barrier_mode = BarrierMode::kHybrid;  // kBarrier only.
  Time granularity = Milliseconds(2);
  double jitter = 0.1;
  int iterations = 250;
  Time critical = Microseconds(40);   // kLock only.
  int barrier_every = 8;              // kPipeline only.
  Time spin_grace = Milliseconds(1);  // Hybrid barrier spin budget.
};

AppParams ParamsFor(NasApp app, double scale) {
  // OpenMP-built NAS codes use hybrid barriers (spin for GOMP_SPINCOUNT,
  // then block), so when crowded most apps suffer the CPU-share loss plus a
  // bounded amount of spin waste (1.3x-2.2x in Table 1). The outliers are
  // the codes with *unbounded* userspace spinning: cg (lock-protected
  // reductions), ua (pure spin barriers over irregular work) and above all
  // lu (fine-grain spin pipeline, 27x/138x).
  AppParams p;
  switch (app) {
    case NasApp::kEp:
      p.kind = AppParams::Kind::kComputeOnly;
      p.granularity = Milliseconds(20);
      p.iterations = 25;
      break;
    case NasApp::kBt:
      p.granularity = Milliseconds(2);
      p.iterations = 250;
      p.jitter = 0.15;
      break;
    case NasApp::kCg:
      p.kind = AppParams::Kind::kLock;
      p.granularity = Microseconds(300);
      p.critical = Microseconds(80);
      p.iterations = 1300;
      break;
    case NasApp::kFt:
      p.granularity = Microseconds(1500);
      p.iterations = 330;
      p.jitter = 0.1;
      break;
    case NasApp::kIs:
      // Integer sort: coarse phases, few of them, uneven work — the least
      // synchronization-bound app (smallest factors in Tables 1 and 3).
      p.granularity = Milliseconds(10);
      p.iterations = 50;
      p.jitter = 0.45;
      break;
    case NasApp::kLu:
      // Fine-grain spin pipeline + per-time-step spin barrier: the
      // pathological case (27x / 138x).
      p.kind = AppParams::Kind::kPipeline;
      p.granularity = Microseconds(150);
      p.iterations = 1500;
      p.barrier_every = 8;
      break;
    case NasApp::kMg:
      p.granularity = Microseconds(1000);
      p.iterations = 500;
      p.jitter = 0.2;
      break;
    case NasApp::kSp:
      p.granularity = Microseconds(800);
      p.iterations = 600;
      p.jitter = 0.15;
      break;
    case NasApp::kUa:
      // Unstructured adaptive mesh: irregular work between spin-leaning
      // hybrid barriers; the paper's second-worst super-linear case.
      p.barrier_mode = BarrierMode::kHybrid;
      p.spin_grace = Milliseconds(4);
      p.granularity = Microseconds(1500);
      p.iterations = 320;
      p.jitter = 0.35;
      break;
  }
  p.iterations = std::max(1, static_cast<int>(p.iterations * scale));
  return p;
}

}  // namespace

void NasWorkload::Setup() {
  assert(tids_.empty() && "Setup called twice");
  started_ = sim_->Now();
  AppParams params = ParamsFor(config_.app, config_.scale);

  Simulator::SpawnParams sp;
  sp.affinity = config_.affinity;
  sp.parent_cpu = config_.spawn_cpu;
  if (sp.parent_cpu == kInvalidCpu && !config_.affinity.Empty()) {
    sp.parent_cpu = config_.affinity.First();
  }
  // One autogroup per application process.
  sp.autogroup = sim_->CreateAutogroup();

  switch (params.kind) {
    case AppParams::Kind::kComputeOnly: {
      SyncId barrier = sim_->CreateSpinBarrier(config_.threads);
      for (int i = 0; i < config_.threads; ++i) {
        tids_.push_back(sim_->Spawn(
            std::make_unique<ComputeOnlyBehavior>(barrier, params.granularity, params.iterations),
            sp));
      }
      break;
    }
    case AppParams::Kind::kBarrier: {
      SyncId barrier = params.barrier_mode == BarrierMode::kBlock
                           ? sim_->CreateBlockingBarrier(config_.threads)
                           : sim_->CreateSpinBarrier(config_.threads);
      for (int i = 0; i < config_.threads; ++i) {
        tids_.push_back(sim_->Spawn(std::make_unique<BarrierComputeBehavior>(
                                        barrier, params.barrier_mode, params.granularity,
                                        params.jitter, params.iterations, params.spin_grace),
                                    sp));
      }
      break;
    }
    case AppParams::Kind::kLock: {
      SyncId lock = sim_->CreateSpinLock();
      for (int i = 0; i < config_.threads; ++i) {
        tids_.push_back(sim_->Spawn(
            std::make_unique<LockComputeApp>(lock, params.granularity, params.critical,
                                             params.iterations),
            sp));
      }
      break;
    }
    case AppParams::Kind::kPipeline: {
      std::vector<SyncId> vars;
      vars.reserve(config_.threads);
      for (int i = 0; i < config_.threads; ++i) {
        vars.push_back(sim_->CreateVar());
      }
      SyncId step_barrier = sim_->CreateSpinBarrier(config_.threads);
      for (int i = 0; i < config_.threads; ++i) {
        SyncId prev = i == 0 ? -1 : vars[i - 1];
        tids_.push_back(sim_->Spawn(
            std::make_unique<PipelineBehavior>(prev, vars[i], step_barrier, params.barrier_every,
                                               params.granularity, params.iterations),
            sp));
      }
      break;
    }
  }
}

bool NasWorkload::Finished() const {
  for (ThreadId tid : tids_) {
    if (sim_->thread(tid).Alive()) {
      return false;
    }
  }
  return true;
}

Time NasWorkload::CompletionTime() const {
  Time last = 0;
  for (ThreadId tid : tids_) {
    last = std::max(last, sim_->thread(tid).finished_at);
  }
  return last > started_ ? last - started_ : 0;
}

Time NasWorkload::TotalSpinTime() const {
  Time total = 0;
  for (ThreadId tid : tids_) {
    total += sim_->thread(tid).spin_time;
  }
  return total;
}

Time NasWorkload::TotalComputeTime() const {
  Time total = 0;
  for (ThreadId tid : tids_) {
    total += sim_->thread(tid).total_compute;
  }
  return total;
}

}  // namespace wcores
