// The commercial-database TPC-H workload of §3.3 (Figure 3, Table 2).
//
// "The commercial database relies on pools of worker threads: a handful of
// container processes each provide several dozens of worker threads" — each
// container lives in its own autogroup, and the pools have *different*
// sizes, so worker loads differ (triggering the Group Imbalance bug when
// autogroups are enabled).
//
// A query runs as a sequence of fork/join stages: every worker computes a
// jittered slice, then waits on a blocking barrier. Workers therefore sleep
// and wake constantly, exercising the wakeup-placement path where the
// Overload-on-Wakeup bug lives; two workers stuck on the same core make all
// the others wait ("gaps" in Figure 3).
#ifndef SRC_WORKLOADS_TPCH_H_
#define SRC_WORKLOADS_TPCH_H_

#include <vector>

#include "src/sim/simulator.h"

namespace wcores {

struct TpchQuerySpec {
  int id = 0;
  int stages = 40;
  Time stage_compute = Milliseconds(1);
  double jitter = 0.3;
};

// The full 22-query benchmark, scaled for simulation speed. Query 18 is the
// most synchronization-sensitive one (many fine-grained stages).
std::vector<TpchQuerySpec> FullTpchSuite(double scale = 1.0);
TpchQuerySpec TpchQuery18(double scale = 1.0);

struct TpchConfig {
  // "configured with 64 worker threads (1 thread per core)". Pool sizes are
  // deliberately unequal: "different container processes have a different
  // number of worker threads", so worker loads differ up to 3x.
  std::vector<int> pool_sizes = {8, 14, 18, 24};
  std::vector<TpchQuerySpec> queries;
  uint64_t seed = 42;
};

class TpchWorkload {
 public:
  TpchWorkload(Simulator* sim, const TpchConfig& config) : sim_(sim), config_(config) {}

  void Setup();

  int TotalWorkers() const;
  bool Finished() const;
  // Wall time of the whole run and of each query.
  Time TotalTime() const;
  const std::vector<Time>& QueryTimes() const { return query_times_; }

  const std::vector<ThreadId>& workers() const { return worker_tids_; }

 private:
  friend class DbWorkerBehavior;

  Simulator* sim_;
  TpchConfig config_;
  std::vector<ThreadId> worker_tids_;
  std::vector<Time> query_times_;
  Time started_ = 0;
};

}  // namespace wcores

#endif  // SRC_WORKLOADS_TPCH_H_
