// Transient kernel threads (§3.3): "the kernel launches tasks that last
// less than a millisecond to perform background operations, such as logging
// or irq handling". Landing on a core that runs a database worker, they
// inflate its load, the balancer migrates the *database* thread away, and
// the Overload-on-Wakeup bug keeps it pinned to the wrong node.
#ifndef SRC_WORKLOADS_TRANSIENT_H_
#define SRC_WORKLOADS_TRANSIENT_H_

#include "src/sim/simulator.h"

namespace wcores {

class TransientThreadGenerator {
 public:
  struct Options {
    // Mean inter-arrival time of transient threads (Poisson process).
    Time mean_interval = Milliseconds(2);
    // Uniform compute duration range of one transient thread.
    Time min_work = Microseconds(200);
    Time max_work = Microseconds(900);
    // Stop spawning at this instant (0 = never).
    Time stop_at = 0;
    uint64_t seed = 7;
  };

  TransientThreadGenerator(Simulator* sim, Options options)
      : sim_(sim), options_(options), rng_(options.seed) {}

  // Schedules the first spawn; subsequent ones self-schedule.
  void Start();

  uint64_t spawned() const { return spawned_; }

 private:
  void SpawnOne();
  void ScheduleNext();

  Simulator* sim_;
  Options options_;
  Rng rng_;
  uint64_t spawned_ = 0;
};

}  // namespace wcores

#endif  // SRC_WORKLOADS_TRANSIENT_H_
