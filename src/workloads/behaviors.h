// Reusable thread behaviors shared by the workload models.
#ifndef SRC_WORKLOADS_BEHAVIORS_H_
#define SRC_WORKLOADS_BEHAVIORS_H_

#include <cstdint>

#include "src/sim/thread.h"

namespace wcores {

// How threads wait at a barrier.
//  kSpin:   burn CPU until release (pure spin barriers — ua, lu's steps).
//  kHybrid: spin for a grace period then block, like OpenMP's default
//           wait policy (GOMP_SPINCOUNT) — the common NAS configuration.
//  kBlock:  sleep immediately (futex/condvar barriers — databases).
enum class BarrierMode { kSpin, kHybrid, kBlock };

// compute(granularity +/- jitter) ; barrier — the dominant NAS pattern.
class BarrierComputeBehavior : public Behavior {
 public:
  BarrierComputeBehavior(SyncId barrier, BarrierMode mode, Time granularity, double jitter,
                         int iterations, Time spin_grace = Milliseconds(1))
      : barrier_(barrier), mode_(mode), granularity_(granularity), jitter_(jitter),
        iterations_(iterations), spin_grace_(spin_grace) {}

  Action Next(BehaviorContext& ctx) override {
    if (iteration_ >= iterations_) {
      return ExitAction{};
    }
    if (!at_barrier_) {
      at_barrier_ = true;
      return ComputeAction{Jittered(ctx, granularity_, jitter_)};
    }
    at_barrier_ = false;
    ++iteration_;
    switch (mode_) {
      case BarrierMode::kSpin:
        return SpinBarrierAction{barrier_};
      case BarrierMode::kHybrid:
        return SpinBarrierAction{barrier_, spin_grace_};
      case BarrierMode::kBlock:
        return BlockingBarrierAction{barrier_};
    }
    return ExitAction{};
  }

  static Time Jittered(BehaviorContext& ctx, Time mean, double jitter) {
    if (jitter <= 0) {
      return mean;
    }
    double factor = 1.0 + jitter * (2.0 * ctx.rng->NextDouble() - 1.0);
    if (factor < 0.05) {
      factor = 0.05;
    }
    return static_cast<Time>(static_cast<double>(mean) * factor);
  }

 private:
  SyncId barrier_;
  BarrierMode mode_;
  Time granularity_;
  double jitter_;
  int iterations_;
  Time spin_grace_;
  int iteration_ = 0;
  bool at_barrier_ = false;
};

// compute(g) ; lock ; compute(critical) ; unlock — spinlock-heavy codes (cg).
class LockComputeBehavior : public Behavior {
 public:
  LockComputeBehavior(SyncId lock, Time granularity, Time critical, int iterations)
      : lock_(lock), granularity_(granularity), critical_(critical), iterations_(iterations) {}

  Action Next(BehaviorContext& ctx) override {
    switch (step_) {
      case 0:
        step_ = 1;
        return ComputeAction{BarrierComputeBehavior::Jittered(ctx, granularity_, 0.3)};
      case 1:
        step_ = 2;
        return SpinLockAction{lock_};
      case 2:
        step_ = 3;
        return ComputeAction{critical_};
      default:
        step_ = 0;
        ++iteration_;
        if (iteration_ >= iterations_) {
          exit_next_ = true;
        }
        return SpinUnlockAction{lock_};
    }
  }

 private:
  SyncId lock_;
  Time granularity_;
  Time critical_;
  int iterations_;
  int iteration_ = 0;
  int step_ = 0;
  bool exit_next_ = false;

 public:
  // ScriptBehavior-style epilogue: after the last unlock, exit.
  bool exit_next() const { return exit_next_; }
};

// Pipeline hand-off (NAS lu): thread k spins until its predecessor finished
// iteration i, computes, then publishes its own progress. "lu uses a
// pipeline algorithm to parallelize work; threads wait for the data
// processed by other threads" (§3.2).
class PipelineBehavior : public Behavior {
 public:
  // `prev_var` < 0 for the pipeline head. Every `barrier_every` iterations
  // all threads additionally cross a spin barrier (SSOR's per-time-step
  // residual reduction), which is what makes lu catastrophic when cores are
  // oversubscribed: a single descheduled straggler makes every other thread
  // burn entire timeslices spinning.
  PipelineBehavior(SyncId prev_var, SyncId own_var, SyncId step_barrier, int barrier_every,
                   Time granularity, int iterations)
      : prev_var_(prev_var), own_var_(own_var), step_barrier_(step_barrier),
        barrier_every_(barrier_every), granularity_(granularity), iterations_(iterations) {}

  Action Next(BehaviorContext& ctx) override {
    switch (step_) {
      case 0:
        if (iteration_ >= iterations_) {
          return ExitAction{};
        }
        step_ = 1;
        if (prev_var_ >= 0) {
          return SpinUntilAction{prev_var_, iteration_ + 1};
        }
        [[fallthrough]];
      case 1:
        step_ = 2;
        return ComputeAction{BarrierComputeBehavior::Jittered(ctx, granularity_, 0.1)};
      case 2:
        step_ = 3;
        ++iteration_;
        return VarAddAction{own_var_, 1};
      default:
        step_ = 0;
        if (step_barrier_ >= 0 && barrier_every_ > 0 && iteration_ % barrier_every_ == 0) {
          // The per-time-step barrier is an OpenMP hybrid barrier: it blocks
          // once the spin grace expires (only the pipeline flags spin
          // unboundedly), which is what kept real lu at "only" 138x.
          return SpinBarrierAction{step_barrier_, Milliseconds(14)};
        }
        return Next(ctx);
    }
  }

 private:
  SyncId prev_var_;
  SyncId own_var_;
  SyncId step_barrier_;
  int barrier_every_;
  Time granularity_;
  int iterations_;
  int64_t iteration_ = 0;
  int step_ = 0;
};

// Fix for LockComputeBehavior's exit: wrap to emit ExitAction after the
// final unlock completes.
class LockComputeApp : public Behavior {
 public:
  LockComputeApp(SyncId lock, Time granularity, Time critical, int iterations)
      : inner_(lock, granularity, critical, iterations) {}

  Action Next(BehaviorContext& ctx) override {
    if (done_) {
      return ExitAction{};
    }
    Action a = inner_.Next(ctx);
    if (inner_.exit_next()) {
      done_ = true;
    }
    return a;
  }

 private:
  LockComputeBehavior inner_;
  bool done_ = false;
};

// Pure compute in a handful of chunks, then one final barrier (NAS ep).
class ComputeOnlyBehavior : public Behavior {
 public:
  ComputeOnlyBehavior(SyncId final_barrier, Time chunk, int chunks)
      : barrier_(final_barrier), chunk_(chunk), chunks_(chunks) {}

  Action Next(BehaviorContext& ctx) override {
    if (done_ < chunks_) {
      ++done_;
      return ComputeAction{BarrierComputeBehavior::Jittered(ctx, chunk_, 0.2)};
    }
    if (!crossed_) {
      crossed_ = true;
      return SpinBarrierAction{barrier_};
    }
    return ExitAction{};
  }

 private:
  SyncId barrier_;
  Time chunk_;
  int chunks_;
  int done_ = 0;
  bool crossed_ = false;
};

// compute/sleep loop with a fixed total compute budget — `make` compile jobs
// and other I/O-punctuated work.
class ComputeSleepBehavior : public Behavior {
 public:
  ComputeSleepBehavior(Time total_work, Time chunk_mean, Time sleep_mean)
      : remaining_(total_work), chunk_mean_(chunk_mean), sleep_mean_(sleep_mean) {}

  Action Next(BehaviorContext& ctx) override {
    if (remaining_ == 0) {
      return ExitAction{};
    }
    if (!sleeping_) {
      sleeping_ = true;
      Time chunk = BarrierComputeBehavior::Jittered(ctx, chunk_mean_, 0.5);
      if (chunk > remaining_) {
        chunk = remaining_;
      }
      remaining_ -= chunk;
      return ComputeAction{chunk};
    }
    sleeping_ = false;
    if (remaining_ == 0) {
      return ExitAction{};
    }
    return SleepAction{BarrierComputeBehavior::Jittered(ctx, sleep_mean_, 0.5)};
  }

 private:
  Time remaining_;
  Time chunk_mean_;
  Time sleep_mean_;
  bool sleeping_ = false;
};

// Uninterrupted CPU hog with a fixed total (the R processes of §3.1).
class CpuHogBehavior : public Behavior {
 public:
  explicit CpuHogBehavior(Time total_work, Time chunk = Milliseconds(50))
      : remaining_(total_work), chunk_(chunk) {}

  Action Next(BehaviorContext& ctx) override {
    (void)ctx;
    if (remaining_ == 0) {
      return ExitAction{};
    }
    Time c = chunk_ > remaining_ ? remaining_ : chunk_;
    remaining_ -= c;
    return ComputeAction{c};
  }

 private:
  Time remaining_;
  Time chunk_;
};

}  // namespace wcores

#endif  // SRC_WORKLOADS_BEHAVIORS_H_
