// Synthetic models of the NAS Parallel Benchmarks used in Tables 1 and 3.
//
// Each application is characterized by its synchronization structure and
// granularity — what determines how badly a scheduling bug hurts it:
//
//   app | model                                      | why
//   ----+--------------------------------------------+------------------------------
//   ep  | pure compute, one final barrier            | "embarrassingly parallel"
//   bt  | spin-barrier loop, medium grain            | block tridiagonal solver
//   cg  | spinlock critical sections + barriers      | conjugate gradient (reductions)
//   ft  | spin-barrier loop, medium grain            | FFT transposes
//   is  | spin-barrier loop, coarse grain, few iters | integer sort (least parallel)
//   lu  | fine-grain pipeline hand-off (SpinUntil)   | "lu uses a pipeline algorithm...
//       |                                            |  threads wait for the data
//       |                                            |  processed by other threads"
//   mg  | spin-barrier loop, fine grain              | multigrid V-cycles
//   sp  | spin-barrier loop, fine grain              | scalar pentadiagonal solver
//   ua  | spin-barrier loop, very fine, irregular    | unstructured adaptive mesh
//
// All spin primitives burn CPU while waiting, so when a bug crowds threads
// onto too few cores, descheduled stragglers make every peer waste entire
// timeslices — the paper's explanation for the super-linear (up to 138x)
// slowdowns.
#ifndef SRC_WORKLOADS_NAS_H_
#define SRC_WORKLOADS_NAS_H_

#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace wcores {

enum class NasApp { kBt, kCg, kEp, kFt, kIs, kLu, kMg, kSp, kUa };

const char* NasAppName(NasApp app);
const std::vector<NasApp>& AllNasApps();

struct NasConfig {
  NasApp app = NasApp::kLu;
  int threads = 16;
  // taskset: empty = unpinned (Table 3 runs unpinned with 64 threads;
  // Table 1 pins to nodes 1 and 2).
  CpuSet affinity;
  // All threads are created on this core ("threads are created on the same
  // node as their parent thread", §3.2). kInvalidCpu = first allowed.
  CpuId spawn_cpu = kInvalidCpu;
  // Scales iteration counts; 1.0 gives baseline runtimes of roughly half a
  // virtual second.
  double scale = 1.0;
};

class NasWorkload {
 public:
  NasWorkload(Simulator* sim, const NasConfig& config) : sim_(sim), config_(config) {}

  // Spawns all threads (call once, before running the simulator).
  void Setup();

  bool Finished() const;
  // Wall time from first spawn to last thread exit.
  Time CompletionTime() const;
  // Aggregate CPU time burned spinning (the waste the bugs amplify).
  Time TotalSpinTime() const;
  Time TotalComputeTime() const;

  const std::vector<ThreadId>& threads() const { return tids_; }

 private:
  Simulator* sim_;
  NasConfig config_;
  std::vector<ThreadId> tids_;
  Time started_ = 0;
};

}  // namespace wcores

#endif  // SRC_WORKLOADS_NAS_H_
