#include "src/topo/domains.h"

#include <cassert>
#include <cstdio>

namespace wcores {

namespace {

// Greedy group covering for a multi-node domain at hop distance `dist`:
// the first group is seeded from `seed_node` and contains all nodes within
// dist-1 hops of it; each following group is seeded from the lowest-numbered
// node not yet covered. This is exactly the construction §3.2 describes
// (groups may overlap on asymmetric interconnects).
std::vector<SchedGroup> BuildNumaGroups(const Topology& topo, const CpuSet& online,
                                        const CpuSet& span, int dist, NodeId seed_node) {
  std::vector<SchedGroup> groups;
  std::vector<bool> in_span(topo.n_nodes(), false);
  std::vector<bool> covered(topo.n_nodes(), false);
  for (NodeId n = 0; n < topo.n_nodes(); ++n) {
    in_span[n] = topo.CpusOfNode(n).Intersects(span);
  }

  NodeId seed = seed_node;
  while (seed != kInvalidNode) {
    SchedGroup group;
    group.seed_node = seed;
    for (NodeId n : topo.NodesWithin(seed, dist - 1)) {
      if (!in_span[n]) {
        continue;
      }
      group.cpus |= topo.CpusOfNode(n) & online & span;
      covered[n] = true;
    }
    if (!group.cpus.Empty()) {
      groups.push_back(group);
    }
    seed = kInvalidNode;
    for (NodeId n = 0; n < topo.n_nodes(); ++n) {
      if (in_span[n] && !covered[n]) {
        seed = n;
        break;
      }
    }
  }
  return groups;
}

void FinishDomain(SchedDomain& sd, CpuId cpu) {
  sd.local_group = -1;
  for (size_t i = 0; i < sd.groups.size(); ++i) {
    if (sd.groups[i].cpus.Test(cpu)) {
      sd.local_group = static_cast<int>(i);
      break;
    }
  }
  assert(sd.local_group >= 0 && "owning cpu must appear in one of its groups");
  for (SchedGroup& g : sd.groups) {
    g.solo = g.cpus.Count() == 1 ? g.cpus.First() : kInvalidCpu;
  }
}

}  // namespace

std::vector<DomainTree> BuildDomains(const Topology& topo, const CpuSet& online,
                                     const DomainBuildOptions& options) {
  std::vector<DomainTree> trees(topo.n_cores());

  for (CpuId cpu = 0; cpu < topo.n_cores(); ++cpu) {
    DomainTree& tree = trees[cpu];
    tree.cpu = cpu;
    if (!online.Test(cpu)) {
      continue;
    }

    int level = 0;
    Time interval = options.base_balance_interval;
    CpuSet prev_span;

    // Level: SMT siblings sharing functional units.
    if (topo.smt_width() > 1) {
      CpuSet span = topo.SmtSiblings(cpu) & online;
      if (span.Count() > 1) {
        SchedDomain sd;
        sd.name = "SMT";
        sd.level = level++;
        sd.span = span;
        sd.balance_interval = interval;
        for (CpuId c : span) {
          sd.groups.push_back(SchedGroup{CpuSet::Single(c)});
        }
        FinishDomain(sd, cpu);
        tree.domains.push_back(std::move(sd));
        prev_span = span;
        interval *= 2;
      }
    }

    // Level: the NUMA node (cores sharing the LLC). Groups are SMT pairs.
    {
      CpuSet span = topo.CpusOfNode(topo.NodeOf(cpu)) & online;
      if (span.Count() > 1 && span != prev_span) {
        SchedDomain sd;
        sd.name = "NODE";
        sd.level = level++;
        sd.span = span;
        sd.balance_interval = interval;
        CpuSet seen;
        for (CpuId c : span) {
          if (seen.Test(c)) {
            continue;
          }
          CpuSet pair = topo.SmtSiblings(c) & span;
          seen |= pair;
          sd.groups.push_back(SchedGroup{pair});
        }
        FinishDomain(sd, cpu);
        tree.domains.push_back(std::move(sd));
        prev_span = span;
        interval *= 2;
      }
    }

    // NUMA levels: nodes within 1 hop, 2 hops, ... The Missing Scheduling
    // Domains bug drops these levels entirely after hotplug.
    if (options.cross_node_levels && topo.n_nodes() > 1) {
      for (int dist = 1; dist <= topo.MaxHops(); ++dist) {
        CpuSet span = topo.CpusWithin(topo.NodeOf(cpu), dist) & online;
        if (span == prev_span || span.Count() <= 1) {
          continue;
        }
        SchedDomain sd;
        char name[32];
        std::snprintf(name, sizeof(name), "NUMA(%d)", dist);
        sd.name = name;
        sd.level = level++;
        sd.span = span;
        sd.balance_interval = interval;

        NodeId seed;
        if (options.perspective == GroupPerspective::kCore0) {
          // Bug: groups seeded from the first cpu of the span, i.e. from
          // Core 0's node for the machine-wide domain, and shared by all
          // cores regardless of their own position in the interconnect.
          seed = topo.NodeOf(span.First());
        } else {
          seed = topo.NodeOf(cpu);
        }
        sd.groups = BuildNumaGroups(topo, online, span, dist, seed);
        FinishDomain(sd, cpu);
        tree.domains.push_back(std::move(sd));
        prev_span = span;
        interval *= 2;
      }
    }
  }
  return trees;
}

std::string DomainTreeToString(const DomainTree& tree) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "cpu %d:\n", tree.cpu);
  out += buf;
  for (const SchedDomain& sd : tree.domains) {
    std::snprintf(buf, sizeof(buf), "  [%d] %-8s span=%s interval=%s\n", sd.level,
                  sd.name.c_str(), sd.span.ToString().c_str(),
                  FormatTime(sd.balance_interval).c_str());
    out += buf;
    for (size_t i = 0; i < sd.groups.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "        group %zu%s: %s\n", i,
                    static_cast<int>(i) == sd.local_group ? " (local)" : "",
                    sd.groups[i].cpus.ToString().c_str());
      out += buf;
    }
  }
  return out;
}

}  // namespace wcores
