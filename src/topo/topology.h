// Machine topology: cores, SMT siblings, NUMA nodes, and the interconnect.
//
// Mirrors what the kernel learns from ACPI/SRAT/SLIT tables. The topology is
// immutable; which cores are *online* is dynamic state owned by the scheduler
// (see src/core/scheduler.h), because hotplug is a scheduler-visible event.
#ifndef SRC_TOPO_TOPOLOGY_H_
#define SRC_TOPO_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/simkit/cpuset.h"

namespace wcores {

using NodeId = int;
constexpr NodeId kInvalidNode = -1;

// Static description of a machine, à la Table 5 of the paper.
struct HardwareSpec {
  std::string cpus = "8 x 8-core Opteron 6272 (64 threads total)";
  std::string clock = "2.1 GHz";
  std::string caches = "768 KB L1, 16 MB L2, 12 MB L3 per CPU";
  std::string memory = "512 GB of 1.6 GHz DDR-3";
  std::string interconnect = "HyperTransport 3.0";
};

class Topology {
 public:
  // A machine with `n_nodes` NUMA nodes of `cores_per_node` cores each.
  // Cores are numbered node-major: node n owns cores [n*cpn, (n+1)*cpn).
  // Consecutive pairs of cores are SMT siblings when `smt_width` == 2.
  // `node_hops` is the symmetric inter-node hop matrix; when empty, every
  // pair of distinct nodes is one hop apart (a "flat" interconnect).
  Topology(int n_nodes, int cores_per_node, int smt_width,
           std::vector<std::vector<int>> node_hops = {});

  // The paper's experimental machine (Table 5 / Figure 4): 64 cores, eight
  // nodes of eight cores, SMT pairs sharing an FPU, and the asymmetric
  // HyperTransport mesh where e.g. Nodes 1 and 2 are two hops apart.
  static Topology Bulldozer8x8();

  // A flat machine: every node one hop from every other.
  static Topology Flat(int n_nodes, int cores_per_node, int smt_width = 2);

  // Figure 1's illustrative machine: 32 cores, four nodes of eight, SMT
  // pairs, arranged in a ring so each node has two one-hop neighbours and
  // one two-hop neighbour — yielding the figure's four domain levels (pair,
  // node, node+1-hop [three nodes], whole machine).
  static Topology Example32();

  int n_cores() const { return n_cores_; }
  int n_nodes() const { return n_nodes_; }
  int cores_per_node() const { return cores_per_node_; }
  int smt_width() const { return smt_width_; }

  NodeId NodeOf(CpuId cpu) const { return cpu / cores_per_node_; }
  const CpuSet& CpusOfNode(NodeId node) const { return node_cpus_[node]; }

  // SMT siblings of `cpu`, including `cpu` itself.
  const CpuSet& SmtSiblings(CpuId cpu) const { return smt_siblings_[cpu]; }

  // Hop count between two nodes (0 for the same node).
  int NodeHops(NodeId a, NodeId b) const { return node_hops_[a][b]; }

  // Largest hop distance between any two nodes.
  int MaxHops() const { return max_hops_; }

  // Nodes within `hops` of `node` (inclusive of `node` itself).
  std::vector<NodeId> NodesWithin(NodeId node, int hops) const;

  // Union of CpusOfNode over NodesWithin.
  CpuSet CpusWithin(NodeId node, int hops) const;

  CpuSet AllCpus() const { return CpuSet::FirstN(n_cores_); }

  const HardwareSpec& spec() const { return spec_; }
  void set_spec(HardwareSpec spec) { spec_ = std::move(spec); }

  // Renders the hop matrix (Figure 4 as a table).
  std::string HopMatrixToString() const;

 private:
  int n_nodes_;
  int cores_per_node_;
  int smt_width_;
  int n_cores_;
  int max_hops_ = 0;
  std::vector<std::vector<int>> node_hops_;
  std::vector<CpuSet> node_cpus_;
  std::vector<CpuSet> smt_siblings_;
  HardwareSpec spec_;
};

}  // namespace wcores

#endif  // SRC_TOPO_TOPOLOGY_H_
