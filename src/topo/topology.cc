#include "src/topo/topology.h"

#include <cassert>
#include <cstdio>

namespace wcores {

Topology::Topology(int n_nodes, int cores_per_node, int smt_width,
                   std::vector<std::vector<int>> node_hops)
    : n_nodes_(n_nodes),
      cores_per_node_(cores_per_node),
      smt_width_(smt_width),
      n_cores_(n_nodes * cores_per_node),
      node_hops_(std::move(node_hops)) {
  assert(n_nodes >= 1);
  assert(cores_per_node >= 1);
  assert(smt_width >= 1 && cores_per_node % smt_width == 0);
  assert(n_cores_ <= kMaxCpus);

  if (node_hops_.empty()) {
    node_hops_.assign(n_nodes_, std::vector<int>(n_nodes_, 1));
    for (int n = 0; n < n_nodes_; ++n) {
      node_hops_[n][n] = 0;
    }
  }
  assert(static_cast<int>(node_hops_.size()) == n_nodes_);
  for (int a = 0; a < n_nodes_; ++a) {
    assert(static_cast<int>(node_hops_[a].size()) == n_nodes_);
    assert(node_hops_[a][a] == 0);
    for (int b = 0; b < n_nodes_; ++b) {
      assert(node_hops_[a][b] == node_hops_[b][a]);
      if (node_hops_[a][b] > max_hops_) {
        max_hops_ = node_hops_[a][b];
      }
    }
  }

  node_cpus_.resize(n_nodes_);
  for (int n = 0; n < n_nodes_; ++n) {
    for (int c = n * cores_per_node_; c < (n + 1) * cores_per_node_; ++c) {
      node_cpus_[n].Set(c);
    }
  }

  smt_siblings_.resize(n_cores_);
  for (CpuId c = 0; c < n_cores_; ++c) {
    CpuId base = c - (c % smt_width_);
    for (int i = 0; i < smt_width_; ++i) {
      smt_siblings_[c].Set(base + i);
    }
  }
}

Topology Topology::Flat(int n_nodes, int cores_per_node, int smt_width) {
  return Topology(n_nodes, cores_per_node, smt_width);
}

Topology Topology::Example32() {
  // Ring: 0-1, 0-2, 1-3, 2-3; the opposite corner is two hops away.
  std::vector<std::vector<int>> hops = {
      {0, 1, 1, 2},
      {1, 0, 2, 1},
      {1, 2, 0, 1},
      {2, 1, 1, 0},
  };
  Topology topo(/*n_nodes=*/4, /*cores_per_node=*/8, /*smt_width=*/2, std::move(hops));
  HardwareSpec spec;
  spec.cpus = "4 x 8-core (32 threads total), Figure 1's example machine";
  spec.interconnect = "ring, max 2 hops";
  topo.set_spec(spec);
  return topo;
}

Topology Topology::Bulldozer8x8() {
  // Figure 4's HyperTransport mesh. The paper pins down: Node 0's one-hop
  // neighbours are {1,2,4,6} (its machine-level group is {0,1,2,4,6});
  // Node 3's are {1,2,4,5,7}; Nodes 1 and 2 are two hops apart; every node
  // is reachable from every other in at most two hops. The adjacency below
  // satisfies all of those constraints.
  static const int kAdj[8][8] = {
      // 0  1  2  3  4  5  6  7
      {0, 1, 1, 0, 1, 0, 1, 0},  // 0: 1-hop to 1,2,4,6
      {1, 0, 0, 1, 0, 1, 0, 1},  // 1: 1-hop to 0,3,5,7
      {1, 0, 0, 1, 1, 0, 1, 0},  // 2: 1-hop to 0,3,4,6
      {0, 1, 1, 0, 1, 1, 0, 1},  // 3: 1-hop to 1,2,4,5,7
      {1, 0, 1, 1, 0, 1, 0, 0},  // 4: 1-hop to 0,2,3,5
      {0, 1, 0, 1, 1, 0, 0, 1},  // 5: 1-hop to 1,3,4,7
      {1, 0, 1, 0, 0, 0, 0, 1},  // 6: 1-hop to 0,2,7
      {0, 1, 0, 1, 0, 1, 1, 0},  // 7: 1-hop to 1,3,5,6
  };
  std::vector<std::vector<int>> hops(8, std::vector<int>(8, 2));
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a == b) {
        hops[a][b] = 0;
      } else if (kAdj[a][b] != 0) {
        hops[a][b] = 1;
      }
    }
  }
  Topology topo(/*n_nodes=*/8, /*cores_per_node=*/8, /*smt_width=*/2, std::move(hops));
  topo.set_spec(HardwareSpec{});
  return topo;
}

std::vector<NodeId> Topology::NodesWithin(NodeId node, int hops) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < n_nodes_; ++n) {
    if (node_hops_[node][n] <= hops) {
      out.push_back(n);
    }
  }
  return out;
}

CpuSet Topology::CpusWithin(NodeId node, int hops) const {
  CpuSet set;
  for (NodeId n : NodesWithin(node, hops)) {
    set |= node_cpus_[n];
  }
  return set;
}

std::string Topology::HopMatrixToString() const {
  std::string out = "     ";
  char buf[32];
  for (int b = 0; b < n_nodes_; ++b) {
    std::snprintf(buf, sizeof(buf), "N%-3d", b);
    out += buf;
  }
  out += '\n';
  for (int a = 0; a < n_nodes_; ++a) {
    std::snprintf(buf, sizeof(buf), "N%-3d ", a);
    out += buf;
    for (int b = 0; b < n_nodes_; ++b) {
      std::snprintf(buf, sizeof(buf), "%-4d", node_hops_[a][b]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace wcores
