// Scheduling domains and scheduling groups (§2.2.1 of the paper).
//
// Each core owns a bottom-up list of scheduling domains: SMT pair, NUMA node
// (cores sharing an LLC), then one level per interconnect hop distance.
// Within a domain, load balancing moves work between *scheduling groups*.
//
// Two behaviors studied in the paper live here:
//
//  * Scheduling Group Construction bug: for multi-node domains, stock kernels
//    built the group list once from the perspective of Core 0 and reused it
//    for every core, so on asymmetric interconnects two nodes that are two
//    hops apart (Nodes 1 and 2 on the paper's machine) end up together in
//    every group and can never observe an imbalance between each other.
//    GroupPerspective::kCore0 reproduces this; kPerCore is the paper's fix.
//
//  * Missing Scheduling Domains bug: after a core is disabled and re-enabled,
//    domain regeneration dropped the step that rebuilds cross-NUMA levels.
//    Passing cross_node_levels = false reproduces the truncated trees.
#ifndef SRC_TOPO_DOMAINS_H_
#define SRC_TOPO_DOMAINS_H_

#include <string>
#include <vector>

#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"
#include "src/topo/topology.h"

namespace wcores {

struct SchedGroup {
  CpuSet cpus;
  // For multi-node (possibly overlapping) groups: the node the group was
  // seeded from. Balancing on behalf of the group is the responsibility of
  // that node's cores (the kernel's group_balance_mask) — "the core
  // responsible for load balancing on each node" in the paper's fix.
  NodeId seed_node = kInvalidNode;
  // Scheduler scratch (like SchedDomain::last_balance): the slot this
  // group's stats last occupied in the balancer's group cache, so the
  // per-pass lookup skips the key scan. Purely an accelerator — the cache
  // re-verifies the cpu set, so a stale hint only costs one rescan.
  int stats_slot = -1;
  // The group's only cpu when it is a singleton (bottom-level groups are
  // one cpu each), else kInvalidCpu. Set at build time; lets the balancer
  // fold a singleton straight off the per-cpu load memo instead of going
  // through the group cache.
  CpuId solo = kInvalidCpu;
};

struct SchedDomain {
  std::string name;   // "SMT", "NODE", "NUMA(1)", ...
  int level = 0;      // 0 = bottom.
  CpuSet span;        // All cpus this domain balances across.
  std::vector<SchedGroup> groups;
  Time balance_interval = 0;  // How often periodic balancing runs here.

  // Mutable per-core balancing state (each core owns its domain copies).
  Time last_balance = 0;

  // Index of the group containing the owning cpu, set at build time.
  int local_group = -1;

  // Lazily-filled union of online group members — the set every balance
  // pass reports via OnConsidered. Valid until the next domain rebuild,
  // which is the only path that changes the online mask or the group lists
  // (and which constructs fresh SchedDomain objects, resetting the flag).
  CpuSet considered_cache;
  bool considered_cached = false;
};

// The bottom-up domain list owned by one cpu.
struct DomainTree {
  CpuId cpu = kInvalidCpu;
  std::vector<SchedDomain> domains;
};

enum class GroupPerspective {
  kCore0,    // Stock kernel: groups seeded from the domain's first cpu (bug).
  kPerCore,  // Paper's fix: groups seeded from the owning core's node.
};

struct DomainBuildOptions {
  GroupPerspective perspective = GroupPerspective::kCore0;
  // When false, NUMA levels are omitted — the Missing Scheduling Domains bug.
  bool cross_node_levels = true;
  // Balance interval of the bottom domain; each level up doubles it.
  Time base_balance_interval = Milliseconds(4);
};

// Builds a domain tree for every cpu in `online` (offline cpus get an empty
// tree). Group membership is restricted to online cpus.
std::vector<DomainTree> BuildDomains(const Topology& topo, const CpuSet& online,
                                     const DomainBuildOptions& options);

// Renders one cpu's domain list, e.g. for bench/fig1_domains.
std::string DomainTreeToString(const DomainTree& tree);

}  // namespace wcores

#endif  // SRC_TOPO_DOMAINS_H_
