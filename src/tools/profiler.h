// The systemtap stand-in (§4.1): once the sanity checker flags a bug, the
// paper profiles all load-balancing functions for 20 ms to understand why
// they fail. Here, the profiler summarizes the scheduler's balancing
// counters and the recorded trace over a window into a human-readable
// report of who tried to balance, what they looked at, and why they gave up.
#ifndef SRC_TOOLS_PROFILER_H_
#define SRC_TOOLS_PROFILER_H_

#include <string>

#include "src/core/stats.h"
#include "src/tools/recorder.h"

namespace wcores {

struct BalanceProfile {
  Time window_start = 0;
  Time window_end = 0;
  uint64_t balance_calls = 0;
  uint64_t found_busiest = 0;
  uint64_t below_local = 0;        // Gave up: busiest group not above local.
  uint64_t designation_skips = 0;  // Gave up: not the designated core.
  uint64_t interval_skips = 0;     // Gave up before the body: interval not due.
  uint64_t affinity_retries = 0;   // Tasksets forced cpu exclusion.
  uint64_t failures = 0;           // No thread could be moved.
  uint64_t success = 0;            // Bodies that moved at least one thread.
  uint64_t moved_tasks = 0;        // Threads moved by those bodies.
  uint64_t migrations = 0;
  uint64_t wakeups = 0;
  uint64_t wakeups_on_busy = 0;
};

// Stats-delta profile between two scheduler snapshots.
BalanceProfile ProfileFromStats(const SchedStats& before, const SchedStats& after, Time t0,
                                Time t1);

std::string ProfileReport(const BalanceProfile& profile);

/// The decision-verdict table of the schedstat report: one row per way an
// Algorithm-1 invocation can end (moved threads, balanced already, not the
// designated core, interval not due, pinned, nothing movable), with counts
// and the share of all invocations.
std::string BalanceVerdictTable(const BalanceProfile& profile);

// Counts, per initiator cpu, the balancing events recorded in [t0, t1) and
// renders the cores each examined — the evidence trail used in §3.4 to show
// Core 0 never looking beyond its node.
std::string ConsideredSummary(const EventRecorder& recorder, Time t0, Time t1, int n_cpus);

}  // namespace wcores

#endif  // SRC_TOOLS_PROFILER_H_
