// The rendering side of the visualization tool (§4.2): turns a recorded
// event stream into the paper's figures — heatmaps of runqueue size
// (Figures 2a/2c/3/5) and load (Figure 2b), and considered-core timelines
// (Figures 5's vertical lines).
#ifndef SRC_TOOLS_HEATMAP_H_
#define SRC_TOOLS_HEATMAP_H_

#include <string>
#include <vector>

#include "src/tools/recorder.h"

namespace wcores {

// rows = cores, cols = time bins; values are time-weighted averages of the
// quantity (runqueue size or load) over each bin.
struct Heatmap {
  int n_cpus = 0;
  int n_bins = 0;
  Time t0 = 0;
  Time t1 = 0;
  std::vector<double> cells;  // n_cpus * n_bins, row-major.

  double& At(int cpu, int bin) { return cells[static_cast<size_t>(cpu) * n_bins + bin]; }
  double At(int cpu, int bin) const { return cells[static_cast<size_t>(cpu) * n_bins + bin]; }
};

// Builds a heatmap of kNrRunning or kLoad events over [t0, t1).
Heatmap BuildHeatmap(const std::vector<TraceEvent>& events, TraceEvent::Kind kind, int n_cpus,
                     Time t0, Time t1, int n_bins);

// CSV: one row per core, one column per bin (plus a header of bin times).
std::string HeatmapToCsv(const Heatmap& map);

// Terminal rendering: one row per core, darkness scale " .:-=+*#%@".
// `cores_per_node` > 0 inserts a separator line between NUMA nodes.
std::string HeatmapToAscii(const Heatmap& map, int cores_per_node = 0, double max_value = -1);

// Portable graymap (PGM) for external viewers.
std::string HeatmapToPgm(const Heatmap& map, double max_value = -1);

// Considered-core events from `initiator` (Figure 5): each line is
// "time_ms,kind,core0,core1,..." listing the cores examined.
std::string ConsideredToCsv(const std::vector<TraceEvent>& events, CpuId initiator);

// ASCII matrix for considered-core events from one initiator: rows = cpus,
// cols = successive balancing calls; '|' marks a considered core.
std::string ConsideredToAscii(const std::vector<TraceEvent>& events, CpuId initiator, int n_cpus,
                              int max_calls = 80);

// Union of all cores `initiator` examined in balancing events.
CpuSet ConsideredUnion(const std::vector<TraceEvent>& events, CpuId initiator);

}  // namespace wcores

#endif  // SRC_TOOLS_HEATMAP_H_
