#include "src/tools/sweep/receipts.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/telemetry/chrome_trace.h"
#include "src/tools/sweep/jsonl.h"

namespace wcores {

Receipt ReceiptFromResult(const ScenarioResult& result, uint64_t fingerprint) {
  Receipt r;
  r.name = result.name;
  r.fingerprint = fingerprint;
  r.trace_hash = result.trace_hash;
  r.trace_events = result.trace_events;
  r.sim_events = result.sim_events;
  r.context_switches = result.context_switches;
  r.migrations = result.migrations;
  r.virtual_s = result.virtual_seconds;
  r.all_exited = result.all_exited;
  r.metrics = result.metrics;
  r.wall_ms = result.wall_ms;
  return r;
}

namespace {

std::string ReceiptBody(const Receipt& r, bool with_wall) {
  std::string out = "{";
  out += "\"name\": " + QuoteJson(r.name);
  out += ", \"fingerprint\": " + HexJson(r.fingerprint);
  out += ", \"trace_hash\": " + HexJson(r.trace_hash);
  out += ", \"trace_events\": " + std::to_string(r.trace_events);
  out += ", \"sim_events\": " + std::to_string(r.sim_events);
  out += ", \"context_switches\": " + std::to_string(r.context_switches);
  out += ", \"migrations\": " + std::to_string(r.migrations);
  out += ", \"virtual_s\": " + NumberJson(r.virtual_s);
  out += ", \"all_exited\": " + std::string(r.all_exited ? "1" : "0");
  out += ", \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : r.metrics) {
    out += first ? "" : ", ";
    out += QuoteJson(key) + ": " + NumberJson(value);
    first = false;
  }
  out += "}";
  if (with_wall) {
    out += ", \"wall_ms\": " + NumberJson(r.wall_ms);
  }
  out += "}";
  return out;
}

}  // namespace

std::string ReceiptLine(const Receipt& r) { return ReceiptBody(r, /*with_wall=*/true); }

std::string ReceiptCanonical(const Receipt& r) { return ReceiptBody(r, /*with_wall=*/false); }

bool ParseReceiptLine(const std::string& line, Receipt* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(line, &root, &parse_error)) {
    return fail("receipt line is not valid JSON: " + parse_error);
  }
  if (root.type != JsonValue::Type::kObject) {
    return fail("receipt line is not a JSON object");
  }
  Receipt r;
  const JsonValue* name = root.Find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString || name->str.empty()) {
    return fail("receipt line: missing 'name'");
  }
  r.name = name->str;
  auto hex_field = [&](const char* key, uint64_t* value) {
    const JsonValue* v = root.Find(key);
    return v != nullptr && v->type == JsonValue::Type::kString && ParseHex16(v->str, value);
  };
  auto count_field = [&](const char* key, uint64_t* value) {
    const JsonValue* v = root.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kNumber || v->number < 0) {
      return false;
    }
    *value = static_cast<uint64_t>(v->number);
    return true;
  };
  if (!hex_field("fingerprint", &r.fingerprint)) {
    return fail("receipt '" + r.name + "': bad 'fingerprint'");
  }
  if (!hex_field("trace_hash", &r.trace_hash)) {
    return fail("receipt '" + r.name + "': bad 'trace_hash'");
  }
  if (!count_field("trace_events", &r.trace_events) ||
      !count_field("sim_events", &r.sim_events) ||
      !count_field("context_switches", &r.context_switches) ||
      !count_field("migrations", &r.migrations)) {
    return fail("receipt '" + r.name + "': bad event counts");
  }
  const JsonValue* virtual_s = root.Find("virtual_s");
  if (virtual_s == nullptr || virtual_s->type != JsonValue::Type::kNumber) {
    return fail("receipt '" + r.name + "': bad 'virtual_s'");
  }
  r.virtual_s = virtual_s->number;
  uint64_t exited = 0;
  if (!count_field("all_exited", &exited) || exited > 1) {
    return fail("receipt '" + r.name + "': bad 'all_exited'");
  }
  r.all_exited = exited != 0;
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kObject) {
    return fail("receipt '" + r.name + "': bad 'metrics'");
  }
  for (const auto& [key, value] : metrics->object) {
    if (value.type != JsonValue::Type::kNumber) {
      return fail("receipt '" + r.name + "': non-numeric metric '" + key + "'");
    }
    r.metrics[key] = value.number;
  }
  const JsonValue* wall = root.Find("wall_ms");  // Absent in canonical form.
  if (wall != nullptr && wall->type == JsonValue::Type::kNumber) {
    r.wall_ms = wall->number;
  }
  *out = std::move(r);
  return true;
}

size_t CleanReceiptPrefixBytes(const std::string& content) {
  size_t clean_end = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t newline = content.find('\n', start);
    if (newline == std::string::npos) {
      break;  // Incomplete tail: everything from `start` is dirty.
    }
    std::string line = content.substr(start, newline - start);
    Receipt r;
    if (!line.empty() && !ParseReceiptLine(line, &r, nullptr)) {
      break;  // First unparseable complete line: stop trusting the rest.
    }
    clean_end = newline + 1;
    start = newline + 1;
  }
  return clean_end;
}

bool LoadResultsStore(const std::string& dir, ResultsStore* out, std::string* error) {
  ResultsStore store;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    *out = std::move(store);  // A results dir that does not exist yet is empty.
    return true;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    if (error != nullptr) {
      *error = "cannot list results dir '" + dir + "': " + ec.message();
    }
    return false;
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file);
    if (!in.good()) {
      if (error != nullptr) {
        *error = "cannot open results file '" + file.string() + "'";
      }
      return false;
    }
    store.files++;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
    // A file killed mid-append ends without a newline; getline still yields
    // that fragment as the final element, where the trailing-tolerance rule
    // below handles it.
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].empty()) {
        continue;
      }
      Receipt r;
      std::string parse_error;
      if (ParseReceiptLine(lines[i], &r, &parse_error)) {
        store.receipts.push_back(std::move(r));
        continue;
      }
      bool trailing = i + 1 == lines.size();
      if (trailing) {
        store.dropped_trailing++;
      } else {
        store.dropped_interior++;
      }
      std::ostringstream warning;
      warning << file.filename().string() << " line " << (i + 1) << " ("
              << (trailing ? "trailing" : "interior") << "): " << parse_error;
      store.warnings.push_back(warning.str());
    }
  }
  *out = std::move(store);
  return true;
}

}  // namespace wcores
