// Receipts: the verifiable, resumable result records of the fleet sweep.
//
// Every completed scenario reduces to one JSON line — name, canonical
// parameter fingerprint (grid.h), trace hash, event counts, metrics, wall
// time — appended to a per-shard `<results_dir>/shard-K.jsonl` file. The
// pair (fingerprint, trace_hash) is the paper's determinism contract made
// portable: any process, on any host, that runs the same parameterization
// must reproduce the same hash, so a results store doubles as a
// bit-for-bit verification artifact and a perf/correctness trajectory
// database for trend tooling (src/tools/trend).
//
// Resume semantics (shard.h relies on these, fleet_test pins them):
//  - a scenario is DONE iff the store holds at least one receipt whose
//    fingerprint matches the manifest's, and every such receipt agrees on
//    (trace_hash, trace_events);
//  - a fingerprint mismatch means the grid definition changed under the
//    store: the receipt is stale and the scenario re-runs;
//  - receipts that agree disagreeing — two matching fingerprints with
//    different hashes — mark a determinism violation or a corrupted store:
//    the scenario re-runs, and `wc-trend merge` reports the conflict
//    rather than guessing a winner.
//
// Loading tolerates a truncated or corrupt *trailing* line per file (a
// shard killed mid-append) by dropping it; the scenario simply re-runs on
// resume. Interior corruption is also dropped but counted separately —
// the merge tool treats it as an integrity error, because append-only
// writers cannot produce it.
#ifndef SRC_TOOLS_SWEEP_RECEIPTS_H_
#define SRC_TOOLS_SWEEP_RECEIPTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/tools/sweep/scenario.h"

namespace wcores {

struct Receipt {
  std::string name;
  uint64_t fingerprint = 0;
  uint64_t trace_hash = 0;
  uint64_t trace_events = 0;
  uint64_t sim_events = 0;
  uint64_t context_switches = 0;
  uint64_t migrations = 0;
  double virtual_s = 0;
  bool all_exited = false;
  std::map<std::string, double> metrics;  // Workload scalars, sorted by key.
  double wall_ms = 0;                     // Host-volatile; see CanonicalLine.
};

Receipt ReceiptFromResult(const ScenarioResult& result, uint64_t fingerprint);

// Full store line, including the host-volatile wall_ms (no newline).
std::string ReceiptLine(const Receipt& r);

// Canonical form: the full line minus wall_ms. Two runs of the same
// scenario on different hosts produce byte-identical canonical lines; the
// merge tool's "sharded == single-process" equality check compares these.
std::string ReceiptCanonical(const Receipt& r);

// Parses either form. Returns false and fills *error on malformed input.
bool ParseReceiptLine(const std::string& line, Receipt* out, std::string* error);

struct ResultsStore {
  std::vector<Receipt> receipts;  // All shard files, file-name order.
  int files = 0;
  int dropped_trailing = 0;  // Tolerated: killed-mid-append tails.
  int dropped_interior = 0;  // Store damage; merge refuses these.
  std::vector<std::string> warnings;
};

// Loads every *.jsonl file in `dir` (sorted by filename). Missing dir is
// an empty store, not an error. Returns false only on I/O failure.
bool LoadResultsStore(const std::string& dir, ResultsStore* out, std::string* error);

// Scans existing file content and returns the byte offset just past the
// last complete, parseable receipt line (0 if none). The shard runner
// truncates its own file to this offset before appending, so a tail left
// by a kill cannot become interior corruption on resume.
size_t CleanReceiptPrefixBytes(const std::string& content);

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_RECEIPTS_H_
