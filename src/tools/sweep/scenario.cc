#include "src/tools/sweep/scenario.h"

#include <chrono>
#include <functional>
#include <memory>
#include <utility>

#include "src/modsched/policy_registry.h"
#include "src/simkit/check.h"
#include "src/simkit/rng.h"
#include "src/sim/simulator.h"
#include "src/telemetry/stream/stream_sink.h"
#include "src/tools/recorder.h"
#include "src/tools/sweep/trace_hash.h"
#include "src/topo/topology.h"
#include "src/workloads/behaviors.h"
#include "src/workloads/make_r.h"
#include "src/workloads/tpch.h"

namespace wcores {

namespace {

Topology MakeTopo(Scenario::Topo topo) {
  switch (topo) {
    case Scenario::Topo::kBulldozer8x8:
      return Topology::Bulldozer8x8();
    case Scenario::Topo::kFlat1x4:
      return Topology::Flat(1, 4);
    case Scenario::Topo::kFlat2x4:
      return Topology::Flat(2, 4);
    case Scenario::Topo::kFlat4x8:
      return Topology::Flat(4, 8);
  }
  return Topology::Flat(1, 4);
}

// The workload half of a scenario. Completion metrics are read back after
// the run by the closure each Setup* returns.
using MetricsFn = std::function<void(std::map<std::string, double>*)>;

MetricsFn SetupMakeR(Simulator& sim, const Scenario& s) {
  MakeRConfig config;
  config.make_work_per_thread = static_cast<Time>(Milliseconds(400) * s.scale);
  config.r_work = static_cast<Time>(Seconds(3) * s.scale);
  auto wl = std::make_shared<MakeRWorkload>(&sim, config);
  wl->Setup();
  return [wl](std::map<std::string, double>* metrics) {
    (*metrics)["make_s"] = ToSeconds(wl->MakeCompletionTime());
    (*metrics)["make_finished"] = wl->MakeFinished() ? 1 : 0;
  };
}

MetricsFn SetupTpch(Simulator& sim, const Scenario& s) {
  TpchConfig config;
  config.queries = {TpchQuery18(s.scale)};
  config.seed = s.seed;
  auto wl = std::make_shared<TpchWorkload>(&sim, config);
  wl->Setup();
  return [wl](std::map<std::string, double>* metrics) {
    (*metrics)["q18_s"] = ToSeconds(wl->TotalTime());
    (*metrics)["finished"] = wl->Finished() ? 1 : 0;
  };
}

MetricsFn SetupNas(Simulator& sim, const Scenario& s) {
  NasConfig config;
  config.app = s.nas_app;
  config.threads = s.nas_threads;
  config.scale = s.scale;
  auto wl = std::make_shared<NasWorkload>(&sim, config);
  wl->Setup();
  return [wl](std::map<std::string, double>* metrics) {
    (*metrics)["completion_s"] = ToSeconds(wl->CompletionTime());
    (*metrics)["spin_s"] = ToSeconds(wl->TotalSpinTime());
    (*metrics)["finished"] = wl->Finished() ? 1 : 0;
  };
}

// Hogs + compute/sleep loops + a few pinned threads, all derived from the
// scenario seed. Mirrors the properties_test mix but parameterized.
MetricsFn SetupRandomMix(Simulator& sim, const Scenario& s) {
  // Decorrelate from the simulator's own Rng(seed) stream.
  uint64_t sm = s.seed;
  Rng rng(SplitMix64(sm));
  int n_cores = sim.topo().n_cores();
  for (int i = 0; i < s.mix_threads; ++i) {
    Simulator::SpawnParams params;
    params.parent_cpu = static_cast<CpuId>(rng.NextBelow(static_cast<uint64_t>(n_cores)));
    params.nice = static_cast<int>(rng.NextBelow(5)) - 2;
    if (rng.NextBool(0.2)) {
      params.affinity = CpuSet::Single(static_cast<CpuId>(
          rng.NextBelow(static_cast<uint64_t>(n_cores))));
    }
    std::vector<Action> script;
    if (rng.NextBool(0.4)) {
      script = {ComputeAction{static_cast<Time>(Seconds(2) * s.scale)}};
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script)), params);
    } else {
      script = {ComputeAction{rng.NextTime(Microseconds(500), Milliseconds(4))},
                SleepAction{rng.NextTime(Microseconds(100), Milliseconds(2))}};
      sim.Spawn(std::make_unique<ScriptBehavior>(std::move(script), /*repeat=*/400), params);
    }
  }
  return [](std::map<std::string, double>*) {};
}

}  // namespace

ScenarioResult RunScenario(const Scenario& scenario) {
  // wc-lint: allow(D3 wall_ms measures host cost only and is excluded from the trace hash) allow(A1 wall_ms never feeds the hash; the fold consumes sim-clock values only)
  auto wall_start = std::chrono::steady_clock::now();

  Topology topo = MakeTopo(scenario.topo);
  TraceHashSink hash;
  // Optional streaming pipeline, fanned out behind the hash so the digest is
  // computed from the identical callback stream (stream = pure observer).
  std::unique_ptr<TelemetryStream> stream;
  MultiSink multi;
  TraceSink* sink = &hash;
  if (scenario.stream) {
    stream = std::make_unique<TelemetryStream>(
        TelemetryStream::ForTopology(topo, scenario.stream_horizon));
    multi.Add(&hash);
    multi.Add(stream.get());
    sink = &multi;
  }
  Simulator::Options opts;
  opts.features = scenario.features;
  opts.seed = scenario.seed;
  // Named policies come from the registry, one fresh instance per scenario
  // (policies hold per-machine state; sweep workers run concurrently). The
  // default "cfs" also routes through the registry — the determinism goldens
  // therefore pin CfsPolicy *behind the policy interface*. An empty name
  // keeps the scheduler's own built-in CfsPolicy; cfs_bitexact_test holds
  // the two paths byte-identical.
  std::unique_ptr<SchedPolicy> policy;
  if (!scenario.policy.empty()) {
    policy = CreateSchedPolicy(scenario.policy);
    WC_CHECK(policy != nullptr, "unknown scheduler policy in scenario");
    opts.policy = policy.get();
  }
  Simulator sim(topo, opts, sink);

  MetricsFn metrics_fn;
  switch (scenario.workload) {
    case Scenario::Workload::kMakeR:
      metrics_fn = SetupMakeR(sim, scenario);
      break;
    case Scenario::Workload::kTpchQ18:
      metrics_fn = SetupTpch(sim, scenario);
      break;
    case Scenario::Workload::kNas:
      metrics_fn = SetupNas(sim, scenario);
      break;
    case Scenario::Workload::kRandomMix:
      metrics_fn = SetupRandomMix(sim, scenario);
      break;
  }
  sim.Run(scenario.horizon);

  ScenarioResult result;
  result.name = scenario.name;
  result.trace_hash = hash.digest();
  result.trace_events = hash.events();
  result.sim_events = sim.queue().executed_count();
  result.context_switches = sim.context_switches();
  result.migrations = sim.sched().stats().migrations_periodic +
                      sim.sched().stats().migrations_idle +
                      sim.sched().stats().migrations_nohz +
                      sim.sched().stats().migrations_hotplug;
  result.virtual_seconds = ToSeconds(sim.Now());
  result.all_exited = sim.alive_threads() == 0;
  metrics_fn(&result.metrics);
  if (stream) {
    stream->Finish(sim.Now());
    const StreamAnalyzer& a = stream->analyzer();
    result.stream_summary = stream->SummaryJson();
    result.stream_events = a.events();
    result.stream_ring_dropped = stream->ring().dropped();
    result.stream_agg_bytes_peak = a.PeakAggregatorBytes();
    result.stream_budget_bytes = a.BudgetBytes();
    result.stream_within_budget = a.WithinBudget();
    result.stream_findings = a.findings_total();
    result.stream_worst_wait_ns = a.worst_wait();
  }

  // wc-lint: allow(D3 wall_ms measures host cost only and is excluded from the trace hash) allow(A1 wall_ms never feeds the hash; the fold consumes sim-clock values only)
  auto wall_end = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(wall_end - wall_start)
          .count();
  return result;
}

std::vector<Scenario> FigureScenarios(double scale) {
  std::vector<Scenario> out;
  auto add = [&](Scenario s, const char* base) {
    s.scale = scale;
    s.name = std::string(base) + "/stock";
    s.features = SchedFeatures::Stock();
    out.push_back(s);
    s.name = std::string(base) + "/fixed";
    s.features = SchedFeatures::AllFixed();
    out.push_back(s);
  };

  Scenario make_r;
  make_r.workload = Scenario::Workload::kMakeR;
  make_r.topo = Scenario::Topo::kBulldozer8x8;
  make_r.seed = 3001;
  make_r.horizon = static_cast<Time>(Seconds(8) * scale);
  add(make_r, "fig2_make_r");

  Scenario tpch;
  tpch.workload = Scenario::Workload::kTpchQ18;
  tpch.topo = Scenario::Topo::kBulldozer8x8;
  tpch.seed = 42;
  tpch.horizon = static_cast<Time>(Seconds(4) * scale);
  add(tpch, "fig3_tpch_q18");

  Scenario nas_cg;
  nas_cg.workload = Scenario::Workload::kNas;
  nas_cg.nas_app = NasApp::kCg;
  nas_cg.nas_threads = 16;
  nas_cg.topo = Scenario::Topo::kFlat4x8;
  nas_cg.seed = 7;
  nas_cg.horizon = static_cast<Time>(Seconds(4) * scale);
  add(nas_cg, "table1_nas_cg");

  Scenario nas_lu;
  nas_lu.workload = Scenario::Workload::kNas;
  nas_lu.nas_app = NasApp::kLu;
  nas_lu.nas_threads = 16;
  nas_lu.topo = Scenario::Topo::kBulldozer8x8;
  nas_lu.seed = 11;
  nas_lu.horizon = static_cast<Time>(Seconds(4) * scale);
  add(nas_lu, "table3_nas_lu");

  Scenario mix;
  mix.workload = Scenario::Workload::kRandomMix;
  mix.topo = Scenario::Topo::kFlat2x4;
  mix.mix_threads = 24;
  mix.seed = 1234;
  mix.horizon = static_cast<Time>(Seconds(3) * scale);
  add(mix, "random_mix");

  return out;
}

std::vector<Scenario> RandomScenarios(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<Scenario> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Scenario s;
    s.name = "random/" + std::to_string(seed) + "-" + std::to_string(i);
    switch (rng.NextBelow(4)) {
      case 0: s.topo = Scenario::Topo::kFlat1x4; break;
      case 1: s.topo = Scenario::Topo::kFlat2x4; break;
      case 2: s.topo = Scenario::Topo::kFlat4x8; break;
      default: s.topo = Scenario::Topo::kBulldozer8x8; break;
    }
    s.workload = Scenario::Workload::kRandomMix;
    s.mix_threads = static_cast<int>(rng.NextInRange(8, 64));
    s.features.fix_group_imbalance = rng.NextBool(0.5);
    s.features.fix_group_construction = rng.NextBool(0.5);
    s.features.fix_overload_wakeup = rng.NextBool(0.5);
    s.features.fix_missing_domains = rng.NextBool(0.5);
    s.features.autogroup_enabled = rng.NextBool(0.8);
    s.seed = rng.Next();
    s.horizon = rng.NextTime(Milliseconds(500), Seconds(2));
    s.scale = 0.25;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace wcores
