#include "src/tools/sweep/trace_hash.h"

#include <bit>

namespace wcores {

void Fnv1a::MixDouble(double value) {
  // Bit pattern, not numeric value: the digest must notice a 1-ulp change
  // in a recorded load, because a 1-ulp change can flip a balance decision
  // later. Normalize the one double with two encodings.
  // wc-lint: allow(D4 exact compare is the point: fold -0.0 and +0.0 into one bit pattern)
  if (value == 0.0) {
    value = 0.0;  // Collapses -0.0.
  }
  Mix(std::bit_cast<uint64_t>(value));
}

void TraceHashSink::OnNrRunning(Time now, CpuId cpu, int nr_running) {
  Tag(kTagNrRunning, now);
  fnv_.Mix(static_cast<uint64_t>(cpu));
  fnv_.Mix(static_cast<uint64_t>(nr_running));
}

void TraceHashSink::OnLoad(Time now, CpuId cpu, double load) {
  Tag(kTagLoad, now);
  fnv_.Mix(static_cast<uint64_t>(cpu));
  fnv_.MixDouble(load);
}

void TraceHashSink::OnConsidered(Time now, CpuId initiator, const CpuSet& considered,
                                 ConsideredKind kind) {
  Tag(kTagConsidered, now);
  fnv_.Mix(static_cast<uint64_t>(initiator));
  fnv_.Mix(static_cast<uint64_t>(kind));
  for (CpuId c : considered) {
    fnv_.Mix(static_cast<uint64_t>(c));
  }
}

void TraceHashSink::OnMigration(Time now, ThreadId tid, CpuId from, CpuId to,
                                MigrationReason reason) {
  Tag(kTagMigration, now);
  fnv_.Mix(static_cast<uint64_t>(tid));
  fnv_.Mix(static_cast<uint64_t>(from));
  fnv_.Mix(static_cast<uint64_t>(to));
  fnv_.Mix(static_cast<uint64_t>(reason));
}

void TraceHashSink::OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) {
  Tag(kTagSwitchIn, now);
  fnv_.Mix(static_cast<uint64_t>(cpu));
  fnv_.Mix(static_cast<uint64_t>(tid));
  fnv_.Mix(waited);
}

void TraceHashSink::OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran,
                                bool still_runnable) {
  Tag(kTagSwitchOut, now);
  fnv_.Mix(static_cast<uint64_t>(cpu));
  fnv_.Mix(static_cast<uint64_t>(tid));
  fnv_.Mix(ran);
  fnv_.Mix(still_runnable ? 1 : 0);
}

void TraceHashSink::OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) {
  Tag(kTagWakeupLatency, now);
  fnv_.Mix(static_cast<uint64_t>(cpu));
  fnv_.Mix(static_cast<uint64_t>(tid));
  fnv_.Mix(latency);
}

void TraceHashSink::OnIdleEnter(Time now, CpuId cpu) {
  Tag(kTagIdleEnter, now);
  fnv_.Mix(static_cast<uint64_t>(cpu));
}

void TraceHashSink::OnIdleExit(Time now, CpuId cpu, Time idle_for) {
  Tag(kTagIdleExit, now);
  fnv_.Mix(static_cast<uint64_t>(cpu));
  fnv_.Mix(idle_for);
}

}  // namespace wcores
