#include "src/tools/sweep/sweep.h"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "src/simkit/check.h"
#include "src/tools/sweep/trace_hash.h"

namespace wcores {

uint64_t SweepReport::CombinedHash() const {
  Fnv1a fnv;
  for (const ScenarioResult& r : results) {
    for (char c : r.name) {
      fnv.Mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    fnv.Mix(r.trace_hash);
    fnv.Mix(r.trace_events);
  }
  return fnv.digest();
}

uint64_t SweepReport::TotalSimEvents() const {
  uint64_t total = 0;
  for (const ScenarioResult& r : results) {
    total += r.sim_events;
  }
  return total;
}

SweepReport RunSweep(const std::vector<Scenario>& scenarios, const SweepOptions& options) {
  // Scenario::name is documented "unique within a sweep" and everything
  // downstream — result rows, golden tables, receipt/resume keying in the
  // fleet service — relies on it. Enforce instead of trusting.
  {
    std::set<std::string> names;
    for (const Scenario& s : scenarios) {
      WC_CHECK(names.insert(s.name).second, "duplicate scenario name in sweep");
    }
  }

  SweepReport report;
  report.results.resize(scenarios.size());

  int threads = options.threads;
  if (threads < 1) {
    threads = 1;
  }
  if (threads > static_cast<int>(scenarios.size()) && !scenarios.empty()) {
    threads = static_cast<int>(scenarios.size());
  }
  report.threads = threads;

  // wc-lint: allow(D3 sweep wall_ms is a host-side timing, not part of any result hash) allow(A1 wall_ms never feeds the hash; the fold consumes sim-clock values only)
  auto wall_start = std::chrono::steady_clock::now();

  // Work stealing by atomic cursor: whichever worker is free takes the next
  // scenario. Results land in per-scenario slots, so the report does not
  // depend on which worker ran what.
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= scenarios.size()) {
        return;
      }
      report.results[i] = RunScenario(scenarios[i]);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  // wc-lint: allow(D3 sweep wall_ms is a host-side timing, not part of any result hash) allow(A1 wall_ms never feeds the hash; the fold consumes sim-clock values only)
  auto wall_end = std::chrono::steady_clock::now();
  report.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(wall_end - wall_start)
          .count();
  return report;
}

}  // namespace wcores
