// A scenario is one self-contained simulation: topology + scheduler
// configuration + workload + seed + horizon. Scenarios are *values* — they
// can be enumerated, shipped to a worker thread, and replayed bit-for-bit —
// which is what both the parallel sweep runner (sweep.h) and the
// determinism regression tests are built on.
//
// RunScenario constructs a fresh Simulator, attaches a TraceHashSink, runs
// to the horizon, and reduces the run to a ScenarioResult: the trace
// digest, throughput counters, and per-workload completion metrics.
#ifndef SRC_TOOLS_SWEEP_SCENARIO_H_
#define SRC_TOOLS_SWEEP_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/features.h"
#include "src/simkit/time.h"
#include "src/workloads/nas.h"

namespace wcores {

struct Scenario {
  std::string name;  // Unique within a sweep; names the result row.

  enum class Topo { kBulldozer8x8, kFlat1x4, kFlat2x4, kFlat4x8 };
  Topo topo = Topo::kBulldozer8x8;

  enum class Workload {
    kMakeR,      // §3.1 Figure 2: make x N + R processes, three autogroups.
    kTpchQ18,    // §3.3: barrier-heavy database query on unequal pools.
    kNas,        // Tables 1/3: one NAS app (nas_app, nas_threads below).
    kRandomMix,  // Seeded random hog/sleeper mix, properties_test-style.
  };
  Workload workload = Workload::kRandomMix;

  SchedFeatures features;
  uint64_t seed = 1;
  Time horizon = Seconds(2);  // Run(horizon); workloads may exit earlier.
  double scale = 1.0;         // Scales workload size/duration (see .cc).

  // kNas only.
  NasApp nas_app = NasApp::kCg;
  int nas_threads = 16;

  // kRandomMix only.
  int mix_threads = 24;

  // Scheduling policy, by registry name (src/modsched/policy_registry.h):
  // "cfs" (default), "o1", "coreidle". Empty bypasses the registry and runs
  // the scheduler's own built-in CfsPolicy; cfs_bitexact_test pins that the
  // two CFS paths produce byte-identical traces.
  std::string policy = "cfs";

  // Attach the bounded-memory streaming telemetry pipeline (TelemetryStream)
  // alongside the trace hash. The stream is a pure observer — the trace
  // hash must be byte-identical with or without it (determinism_test pins
  // this) — so enabling it never forks the scenario's behavior.
  bool stream = false;
  Time stream_horizon = Milliseconds(100);  // Starvation-detector horizon.
};

struct ScenarioResult {
  std::string name;
  uint64_t trace_hash = 0;   // TraceHashSink digest: the determinism value.
  uint64_t trace_events = 0; // Callbacks folded into the hash.
  uint64_t sim_events = 0;   // Discrete events executed by the event queue.
  uint64_t context_switches = 0;
  uint64_t migrations = 0;
  double virtual_seconds = 0;
  double wall_ms = 0;        // Host time for this scenario alone.
  bool all_exited = false;
  // Workload-specific scalars, e.g. "make_s", "q18_s", "completion_s".
  std::map<std::string, double> metrics;

  // Streaming-telemetry reduction; populated only when Scenario::stream was
  // set. stream_summary is the one-line JSON from TelemetryStream; the
  // scalars below mirror its machine-checkable fields so the driver can
  // WC_CHECK them without parsing JSON.
  std::string stream_summary;
  uint64_t stream_events = 0;          // Records analyzed.
  uint64_t stream_ring_dropped = 0;    // Must be 0 with in-line draining.
  uint64_t stream_agg_bytes_peak = 0;  // Peak aggregator footprint.
  uint64_t stream_budget_bytes = 0;    // O(tasks + cpus) budget.
  bool stream_within_budget = true;
  uint64_t stream_findings = 0;        // Starvation findings at stream_horizon.
  uint64_t stream_worst_wait_ns = 0;
};

ScenarioResult RunScenario(const Scenario& scenario);

// The figure/table scenarios as a sweep matrix: each paper workload at
// `scale`, stock and fixed. Scale 1.0 matches the bench binaries; the
// determinism tests use a smaller scale to stay fast.
std::vector<Scenario> FigureScenarios(double scale = 1.0);

// `count` seeded random scenarios (random topology, feature set, and
// workload mix) for coverage beyond the curated matrix.
std::vector<Scenario> RandomScenarios(uint64_t seed, int count);

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_SCENARIO_H_
