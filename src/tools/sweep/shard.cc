#include "src/tools/sweep/shard.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "src/simkit/check.h"
#include "src/tools/sweep/grid.h"
#include "src/tools/sweep/jsonl.h"
#include "src/tools/sweep/receipts.h"

namespace wcores {

namespace {

// Advisory exclusive claim on one scenario, keyed by fingerprint. The open
// fd is held for the duration of the run; closing it (or dying) releases
// the lock.
int TryClaim(const std::filesystem::path& claims_dir, uint64_t fingerprint) {
  std::filesystem::path lock = claims_dir / (Hex16(fingerprint) + ".lock");
  int fd = ::open(lock.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    return -1;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void ReleaseClaim(int fd) {
  if (fd >= 0) {
    ::close(fd);  // Drops the flock.
  }
}

// Receipt-store view for resume decisions, rebuilt from disk on demand.
struct DoneIndex {
  // name -> receipts (all fingerprints, all shards).
  std::map<std::string, std::vector<Receipt>> by_name;

  static DoneIndex Load(const std::string& dir) {
    DoneIndex index;
    ResultsStore store;
    std::string error;
    bool ok = LoadResultsStore(dir, &store, &error);
    WC_CHECK(ok, "shard runner cannot read its own results store");
    for (Receipt& r : store.receipts) {
      index.by_name[r.name].push_back(std::move(r));
    }
    return index;
  }

  // DONE iff >=1 fingerprint-matching receipt and all such receipts agree
  // on the determinism pair. `had_receipts` reports whether any receipt —
  // matching or stale — existed for the name (requeue accounting).
  bool Done(const std::string& name, uint64_t fingerprint, bool* had_receipts) const {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      *had_receipts = false;
      return false;
    }
    *had_receipts = true;
    const Receipt* first_match = nullptr;
    for (const Receipt& r : it->second) {
      if (r.fingerprint != fingerprint) {
        continue;  // Stale: the grid definition changed under the store.
      }
      if (first_match == nullptr) {
        first_match = &r;
      } else if (r.trace_hash != first_match->trace_hash ||
                 r.trace_events != first_match->trace_events) {
        return false;  // Conflicting receipts: force re-execution.
      }
    }
    return first_match != nullptr;
  }
};

}  // namespace

ShardReport RunShard(const std::vector<Scenario>& manifest, const ShardOptions& options) {
  WC_CHECK(options.shard_count >= 1, "shard count must be >= 1");
  WC_CHECK(options.shard_index >= 0 && options.shard_index < options.shard_count,
           "shard index out of range");
  WC_CHECK(!options.results_dir.empty(), "shard runner needs a results dir");

  // Names key receipts and fingerprints key claims, so both must be unique
  // across the manifest (the manifest loader enforces this for files; this
  // guards direct callers).
  {
    std::set<std::string> names;
    std::set<uint64_t> fingerprints;
    for (const Scenario& s : manifest) {
      WC_CHECK(names.insert(s.name).second, "duplicate scenario name in shard manifest");
      WC_CHECK(fingerprints.insert(ScenarioFingerprint(s)).second,
               "fingerprint collision in shard manifest");
    }
  }

  std::filesystem::path results_dir(options.results_dir);
  std::filesystem::path claims_dir = results_dir / "claims";
  std::error_code ec;
  std::filesystem::create_directories(claims_dir, ec);
  WC_CHECK(!ec, "cannot create results/claims directories");

  ShardReport report;
  std::filesystem::path receipts_path =
      results_dir / ("shard-" + std::to_string(options.shard_index) + ".jsonl");
  report.receipts_path = receipts_path.string();

  // Self-repair: if a previous incarnation of this shard was killed
  // mid-append, truncate the dirty tail now so it never becomes interior
  // corruption once we append below it.
  if (std::filesystem::exists(receipts_path, ec)) {
    std::ifstream in(receipts_path);
    std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    size_t clean = CleanReceiptPrefixBytes(content);
    if (clean != content.size()) {
      std::filesystem::resize_file(receipts_path, clean, ec);
      WC_CHECK(!ec, "cannot truncate dirty receipt tail");
    }
  }

  std::ofstream receipts_out(receipts_path, std::ios::app);
  WC_CHECK(receipts_out.good(), "cannot open shard receipts file for append");

  std::vector<uint64_t> fingerprints(manifest.size());
  for (size_t i = 0; i < manifest.size(); ++i) {
    fingerprints[i] = ScenarioFingerprint(manifest[i]);
  }

  // Startup resume scan, shared read-only by all workers. Post-claim
  // rechecks load fresh copies (one per scenario actually run, so the
  // rescan cost is proportional to fresh work, not manifest size).
  DoneIndex startup = DoneIndex::Load(options.results_dir);

  // Claim order: our own stripe first, then everyone else's (stealing).
  std::vector<size_t> order;
  order.reserve(manifest.size());
  for (size_t i = 0; i < manifest.size(); ++i) {
    if (i % static_cast<size_t>(options.shard_count) ==
        static_cast<size_t>(options.shard_index)) {
      order.push_back(i);
    }
  }
  for (size_t i = 0; i < manifest.size(); ++i) {
    if (i % static_cast<size_t>(options.shard_count) !=
        static_cast<size_t>(options.shard_index)) {
      order.push_back(i);
    }
  }

  std::atomic<size_t> cursor{0};
  std::mutex io_mutex;  // Guards receipts_out, the report counters, and rescans.

  auto worker = [&]() {
    for (;;) {
      size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
      if (slot >= order.size()) {
        return;
      }
      size_t i = order[slot];
      const Scenario& s = manifest[i];
      uint64_t fingerprint = fingerprints[i];

      bool had_receipts = false;
      if (startup.Done(s.name, fingerprint, &had_receipts)) {
        std::lock_guard<std::mutex> lock(io_mutex);
        report.skipped++;
        continue;
      }
      int claim_fd = TryClaim(claims_dir, fingerprint);
      if (claim_fd < 0) {
        // A live process owns this scenario right now; its receipt will
        // cover it. (A dead owner's flock is gone, so we would have won.)
        std::lock_guard<std::mutex> lock(io_mutex);
        report.contended++;
        continue;
      }
      // Between our startup scan and this claim another shard may have
      // finished and released; recheck against a fresh store before paying
      // for the run.
      {
        std::lock_guard<std::mutex> lock(io_mutex);
        DoneIndex fresh = DoneIndex::Load(options.results_dir);
        if (fresh.Done(s.name, fingerprint, &had_receipts)) {
          report.skipped++;
          ReleaseClaim(claim_fd);
          continue;
        }
      }

      ScenarioResult result = RunScenario(s);
      Receipt receipt = ReceiptFromResult(result, fingerprint);
      {
        std::lock_guard<std::mutex> lock(io_mutex);
        receipts_out << ReceiptLine(receipt) << "\n";
        receipts_out.flush();
        WC_CHECK(receipts_out.good(), "receipt append failed");
        report.ran++;
        if (had_receipts) {
          report.requeued++;  // Stale fingerprint or conflicting receipts.
        }
        report.wall_ms_total += result.wall_ms;
      }
      ReleaseClaim(claim_fd);
    }
  };

  int threads = options.threads;
  if (threads < 1) {
    threads = 1;
  }
  if (threads > static_cast<int>(manifest.size()) && !manifest.empty()) {
    threads = static_cast<int>(manifest.size());
  }
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return report;
}

}  // namespace wcores
