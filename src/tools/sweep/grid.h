// Parameter-grid expansion for the fleet-scale sweep service.
//
// A GridSpec names one value list per scenario axis (topology, workload,
// feature set, policy, mix size) plus a seed count; ExpandGrid takes the
// full cross product and materializes one Scenario *instance* per cell —
// thousands of seeded, self-contained simulations that the sharded runner
// (shard.h) distributes across processes. Each instance's per-cell seed is
// derived from the cell's own parameters (not from enumeration order), so
// adding a value to one axis never reseeds the instances that already
// existed.
//
// ScenarioFingerprint is the canonical identity of an instance: an FNV-1a
// fold over every behavior-affecting Scenario field in a fixed order. The
// manifest stores it, receipts are keyed by it, and resume compares it —
// if a grid definition changes under a results store, the fingerprints
// stop matching and the affected scenarios re-run instead of silently
// reusing stale receipts.
#ifndef SRC_TOOLS_SWEEP_GRID_H_
#define SRC_TOOLS_SWEEP_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tools/sweep/scenario.h"

namespace wcores {

struct GridSpec {
  std::vector<Scenario::Topo> topos = {Scenario::Topo::kFlat2x4};
  std::vector<Scenario::Workload> workloads = {Scenario::Workload::kRandomMix};
  // Named feature sets; see FeatureSetByName: "stock", "fixed", plus one
  // single-fix ablation per paper bug ("gi", "gc", "ow", "md") and "noag"
  // (all fixed, autogroups off).
  std::vector<std::string> feature_sets = {"stock", "fixed"};
  std::vector<std::string> policies = {"cfs"};
  std::vector<int> mix_threads = {24};  // kRandomMix sizing axis.
  int seeds_per_cell = 1;
  uint64_t base_seed = 1;
  double scale = 0.05;
  Time horizon = Milliseconds(200);
};

// The stock fleet grid: 4 topologies x {8,16,24} mix threads x 5 feature
// sets x every registered policy x 3 seeds = 540 scenario instances.
GridSpec DefaultFleetGrid();

// Parses a compact spec string: semicolon-separated key=value[,value...]
// pairs. Keys: topo, workload, feat, policy, mix, seeds, seed, scale,
// horizon_ms. Example:
//   "topo=flat1x4,flat2x4;feat=stock,fixed;policy=cfs,o1;mix=8;seeds=2;
//    scale=0.02;horizon_ms=40;seed=7"
// The literal spec "default" yields DefaultFleetGrid(). Returns false and
// fills *error on an unknown key or malformed value.
bool ParseGridSpec(const std::string& text, GridSpec* spec, std::string* error);

// Cross product of the spec's axes, one Scenario per cell, with unique
// names of the form grid/<topo>/<workload>/<feat>/<policy>/m<mix>/s<K>.
std::vector<Scenario> ExpandGrid(const GridSpec& spec);

// Canonical identity of a scenario instance (see file comment).
uint64_t ScenarioFingerprint(const Scenario& s);

// Named feature sets for the grid axis. Returns false on an unknown name.
bool FeatureSetByName(const std::string& name, SchedFeatures* out);

// Axis-value vocabulary shared by the grid parser and the manifest codec.
const char* TopoName(Scenario::Topo topo);
bool TopoByName(const std::string& name, Scenario::Topo* out);
const char* WorkloadName(Scenario::Workload workload);
bool WorkloadByName(const std::string& name, Scenario::Workload* out);

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_GRID_H_
