// Sharded, resumable execution of a sweep manifest across processes.
//
// Each `sweep_driver --shard=I/N` process calls RunShard with the same
// manifest and results directory. Coordination is file-based and
// crash-safe:
//
//  - CLAIMS: before running a scenario, a worker takes an exclusive
//    flock(2) on `<results>/claims/<fingerprint>.lock`. flock is advisory,
//    per open-file-description, and — the property everything rests on —
//    released automatically when the holder dies, so a SIGKILLed shard
//    never wedges the fleet. A busy lock means a *live* process is running
//    that scenario; the worker moves on (work stealing, not waiting).
//
//  - RECEIPTS: a completed scenario appends one JSON line (receipts.h) to
//    this shard's own `<results>/shard-I.jsonl`. One writer per file, so
//    cross-process appends never interleave; in-process worker threads
//    serialize on a mutex.
//
//  - RESUME: at startup the runner loads every shard's receipts and skips
//    scenarios that are already DONE (fingerprint match + consistent
//    hashes; see receipts.h). After winning a claim it reloads the store
//    once more, closing the window where another shard finished the
//    scenario between our startup scan and our claim.
//
//  - STRIPING: shard I claims indices congruent to I mod N first, then
//    sweeps everyone else's stripe. Disjoint stripes mean near-zero claim
//    contention while all shards are alive; stealing means one dead shard
//    costs nothing but the time to re-run its unfinished scenarios.
//
// Thread-count invariance of scenario results (pinned by determinism_test)
// is what makes this sharding determinism-free: any partition of the
// manifest across any number of processes yields byte-identical canonical
// receipts, which `wc-trend merge` verifies rather than assumes.
#ifndef SRC_TOOLS_SWEEP_SHARD_H_
#define SRC_TOOLS_SWEEP_SHARD_H_

#include <string>
#include <vector>

#include "src/tools/sweep/scenario.h"

namespace wcores {

struct ShardOptions {
  std::string results_dir;
  int shard_index = 0;  // I in --shard=I/N; names shard-I.jsonl.
  int shard_count = 1;  // N in --shard=I/N; the striping modulus.
  int threads = 1;      // In-process workers on top of process sharding.
};

struct ShardReport {
  int ran = 0;        // Scenarios this call executed and receipted.
  int skipped = 0;    // Already DONE in the store at startup.
  int contended = 0;  // Claim held by a live process; left to them.
  int requeued = 0;   // Stale fingerprint or conflicting receipts: re-ran.
  double wall_ms_total = 0;  // Sum of per-scenario host times (fresh runs).
  std::string receipts_path;
};

ShardReport RunShard(const std::vector<Scenario>& manifest, const ShardOptions& options);

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_SHARD_H_
