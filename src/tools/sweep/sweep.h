// Parallel scenario-sweep runner.
//
// Fans a batch of independent scenarios out across host threads. Each
// scenario is one single-threaded, seed-deterministic simulation
// (RunScenario); workers share nothing but an atomic cursor into the
// scenario list, and every result is written to that scenario's own slot.
// The aggregate is therefore identical for any worker count or host
// scheduling — a property sweep_test asserts by hashing the result set at
// 1, 2, and 4 threads.
#ifndef SRC_TOOLS_SWEEP_SWEEP_H_
#define SRC_TOOLS_SWEEP_SWEEP_H_

#include <string>
#include <vector>

#include "src/tools/sweep/scenario.h"

namespace wcores {

struct SweepOptions {
  int threads = 1;  // Host worker threads; clamped to [1, scenarios].
};

struct SweepReport {
  std::vector<ScenarioResult> results;  // Same order as the input scenarios.
  double wall_ms = 0;                   // End-to-end host time for the batch.
  int threads = 1;                      // Worker count actually used.

  // Order-sensitive FNV-1a over (name, trace_hash, trace_events) of every
  // result: one value summarizing the whole sweep's behavior.
  uint64_t CombinedHash() const;
  uint64_t TotalSimEvents() const;
};

SweepReport RunSweep(const std::vector<Scenario>& scenarios, const SweepOptions& options);

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_SWEEP_H_
