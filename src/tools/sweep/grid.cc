#include "src/tools/sweep/grid.h"

#include <cstdlib>

#include "src/modsched/policy_registry.h"
#include "src/simkit/check.h"
#include "src/simkit/rng.h"
#include "src/tools/sweep/trace_hash.h"
#include "src/workloads/nas.h"

namespace wcores {

namespace {

struct TopoEntry {
  Scenario::Topo topo;
  const char* name;
};
constexpr TopoEntry kTopos[] = {
    {Scenario::Topo::kBulldozer8x8, "bulldozer8x8"},
    {Scenario::Topo::kFlat1x4, "flat1x4"},
    {Scenario::Topo::kFlat2x4, "flat2x4"},
    {Scenario::Topo::kFlat4x8, "flat4x8"},
};

struct WorkloadEntry {
  Scenario::Workload workload;
  const char* name;
};
constexpr WorkloadEntry kWorkloads[] = {
    {Scenario::Workload::kMakeR, "make_r"},
    {Scenario::Workload::kTpchQ18, "tpch_q18"},
    {Scenario::Workload::kNas, "nas"},
    {Scenario::Workload::kRandomMix, "mix"},
};

void MixString(Fnv1a* fnv, const std::string& s) {
  for (char c : s) {
    fnv->Mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  // Length terminator: "ab"+"c" must not collide with "a"+"bc".
  fnv->Mix(s.size());
}

}  // namespace

const char* TopoName(Scenario::Topo topo) {
  for (const TopoEntry& e : kTopos) {
    if (e.topo == topo) {
      return e.name;
    }
  }
  return "unknown";
}

bool TopoByName(const std::string& name, Scenario::Topo* out) {
  for (const TopoEntry& e : kTopos) {
    if (name == e.name) {
      *out = e.topo;
      return true;
    }
  }
  return false;
}

const char* WorkloadName(Scenario::Workload workload) {
  for (const WorkloadEntry& e : kWorkloads) {
    if (e.workload == workload) {
      return e.name;
    }
  }
  return "unknown";
}

bool WorkloadByName(const std::string& name, Scenario::Workload* out) {
  for (const WorkloadEntry& e : kWorkloads) {
    if (name == e.name) {
      *out = e.workload;
      return true;
    }
  }
  return false;
}

bool FeatureSetByName(const std::string& name, SchedFeatures* out) {
  if (name == "stock") {
    *out = SchedFeatures::Stock();
  } else if (name == "fixed") {
    *out = SchedFeatures::AllFixed();
  } else if (name == "gi") {
    *out = SchedFeatures::Stock();
    out->fix_group_imbalance = true;
  } else if (name == "gc") {
    *out = SchedFeatures::Stock();
    out->fix_group_construction = true;
  } else if (name == "ow") {
    *out = SchedFeatures::Stock();
    out->fix_overload_wakeup = true;
  } else if (name == "md") {
    *out = SchedFeatures::Stock();
    out->fix_missing_domains = true;
  } else if (name == "noag") {
    *out = SchedFeatures::AllFixed();
    out->autogroup_enabled = false;
  } else {
    return false;
  }
  return true;
}

uint64_t ScenarioFingerprint(const Scenario& s) {
  Fnv1a fnv;
  MixString(&fnv, s.name);
  fnv.Mix(static_cast<uint64_t>(s.topo));
  fnv.Mix(static_cast<uint64_t>(s.workload));
  fnv.Mix(s.features.fix_group_imbalance ? 1 : 0);
  fnv.Mix(s.features.fix_group_construction ? 1 : 0);
  fnv.Mix(s.features.fix_overload_wakeup ? 1 : 0);
  fnv.Mix(s.features.fix_missing_domains ? 1 : 0);
  fnv.Mix(s.features.autogroup_enabled ? 1 : 0);
  fnv.Mix(s.seed);
  fnv.Mix(s.horizon);
  fnv.MixDouble(s.scale);
  fnv.Mix(static_cast<uint64_t>(s.nas_app));
  fnv.Mix(static_cast<uint64_t>(s.nas_threads));
  fnv.Mix(static_cast<uint64_t>(s.mix_threads));
  MixString(&fnv, s.policy);
  fnv.Mix(s.stream ? 1 : 0);
  fnv.Mix(s.stream_horizon);
  return fnv.digest();
}

GridSpec DefaultFleetGrid() {
  GridSpec spec;
  spec.topos = {Scenario::Topo::kFlat1x4, Scenario::Topo::kFlat2x4, Scenario::Topo::kFlat4x8,
                Scenario::Topo::kBulldozer8x8};
  spec.workloads = {Scenario::Workload::kRandomMix};
  spec.feature_sets = {"stock", "fixed", "gi", "ow", "noag"};
  spec.policies = SchedPolicyNames();
  spec.mix_threads = {8, 16, 24};
  spec.seeds_per_cell = 3;
  spec.base_seed = 1;
  spec.scale = 0.05;
  spec.horizon = Milliseconds(200);
  return spec;
}

namespace {

std::vector<std::string> SplitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      end = s.size();
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseWholeU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseWholeDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

bool ParseGridSpec(const std::string& text, GridSpec* spec, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  if (text == "default" || text.empty()) {
    *spec = DefaultFleetGrid();
    return true;
  }
  GridSpec out;
  out.policies = {"cfs"};
  for (const std::string& pair : SplitList(text, ';')) {
    if (pair.empty()) {
      continue;
    }
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return fail("grid spec entry '" + pair + "' is not key=value");
    }
    std::string key = pair.substr(0, eq);
    std::vector<std::string> values = SplitList(pair.substr(eq + 1), ',');
    if (values.empty() || (values.size() == 1 && values[0].empty())) {
      return fail("grid spec key '" + key + "' has no value");
    }
    if (key == "topo") {
      out.topos.clear();
      for (const std::string& v : values) {
        Scenario::Topo topo;
        if (!TopoByName(v, &topo)) {
          return fail("unknown topology '" + v + "'");
        }
        out.topos.push_back(topo);
      }
    } else if (key == "workload") {
      out.workloads.clear();
      for (const std::string& v : values) {
        Scenario::Workload workload;
        if (!WorkloadByName(v, &workload)) {
          return fail("unknown workload '" + v + "'");
        }
        out.workloads.push_back(workload);
      }
    } else if (key == "feat") {
      out.feature_sets.clear();
      for (const std::string& v : values) {
        SchedFeatures features;
        if (!FeatureSetByName(v, &features)) {
          return fail("unknown feature set '" + v + "'");
        }
        out.feature_sets.push_back(v);
      }
    } else if (key == "policy") {
      out.policies.clear();
      for (const std::string& v : values) {
        if (CreateSchedPolicy(v) == nullptr) {
          return fail("unknown policy '" + v + "'");
        }
        out.policies.push_back(v);
      }
    } else if (key == "mix") {
      out.mix_threads.clear();
      for (const std::string& v : values) {
        uint64_t n = 0;
        if (!ParseWholeU64(v, &n) || n < 1 || n > 65536) {
          return fail("bad mix thread count '" + v + "'");
        }
        out.mix_threads.push_back(static_cast<int>(n));
      }
    } else if (key == "seeds") {
      uint64_t n = 0;
      if (values.size() != 1 || !ParseWholeU64(values[0], &n) || n < 1 || n > 100000) {
        return fail("bad seeds count '" + pair.substr(eq + 1) + "'");
      }
      out.seeds_per_cell = static_cast<int>(n);
    } else if (key == "seed") {
      uint64_t n = 0;
      if (values.size() != 1 || !ParseWholeU64(values[0], &n)) {
        return fail("bad base seed '" + pair.substr(eq + 1) + "'");
      }
      out.base_seed = n;
    } else if (key == "scale") {
      double v = 0;
      if (values.size() != 1 || !ParseWholeDouble(values[0], &v) || !(v > 0)) {
        return fail("bad scale '" + pair.substr(eq + 1) + "'");
      }
      out.scale = v;
    } else if (key == "horizon_ms") {
      uint64_t n = 0;
      if (values.size() != 1 || !ParseWholeU64(values[0], &n) || n < 1) {
        return fail("bad horizon_ms '" + pair.substr(eq + 1) + "'");
      }
      out.horizon = Milliseconds(n);
    } else {
      return fail("unknown grid spec key '" + key + "'");
    }
  }
  *spec = out;
  return true;
}

std::vector<Scenario> ExpandGrid(const GridSpec& spec) {
  std::vector<Scenario> out;
  out.reserve(spec.topos.size() * spec.workloads.size() * spec.feature_sets.size() *
              spec.policies.size() * spec.mix_threads.size() *
              static_cast<size_t>(spec.seeds_per_cell));
  for (Scenario::Topo topo : spec.topos) {
    for (Scenario::Workload workload : spec.workloads) {
      for (const std::string& feat : spec.feature_sets) {
        for (const std::string& policy : spec.policies) {
          for (int mix : spec.mix_threads) {
            for (int k = 0; k < spec.seeds_per_cell; ++k) {
              Scenario s;
              s.name = std::string("grid/") + TopoName(topo) + "/" + WorkloadName(workload) +
                       "/" + feat + "/" + policy + "/m" + std::to_string(mix) + "/s" +
                       std::to_string(k);
              s.topo = topo;
              s.workload = workload;
              SchedFeatures features;
              bool known = FeatureSetByName(feat, &features);
              WC_CHECK(known, "grid spec carries an unknown feature-set name");
              s.features = features;
              s.policy = policy;
              s.mix_threads = mix;
              s.scale = spec.scale;
              s.horizon = spec.horizon;
              // Per-cell seed from the cell's identity, not its enumeration
              // index: growing an axis leaves existing cells' seeds (and so
              // their fingerprints and receipts) untouched.
              Fnv1a id;
              MixString(&id, s.name);
              id.Mix(spec.base_seed);
              uint64_t sm = id.digest();
              s.seed = SplitMix64(sm);
              out.push_back(std::move(s));
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace wcores
