// The sweep manifest: a materialized list of scenario instances that shard
// processes execute cooperatively.
//
// Format: JSON Lines. The first line is a header object
//   {"wc_manifest": 1, "count": N}
// followed by one self-contained object per scenario carrying every
// Scenario field plus the instance's canonical fingerprint (grid.h). A
// shard process reconstructs the exact Scenario values from the file alone
// — the manifest, not the binary's flag defaults, is the unit of work
// distribution — and the loader recomputes each fingerprint to reject
// hand-edited or version-skewed manifests before any simulation runs.
//
// Scenario names must be unique within a manifest: they key the receipt
// store (receipts.h), so a duplicate would silently alias two different
// parameterizations onto one resume slot. Both the writer and the loader
// enforce this.
#ifndef SRC_TOOLS_SWEEP_MANIFEST_H_
#define SRC_TOOLS_SWEEP_MANIFEST_H_

#include <string>
#include <vector>

#include "src/tools/sweep/scenario.h"

namespace wcores {

// One scenario as a canonical single-line JSON object (no trailing newline).
std::string ScenarioToJsonLine(const Scenario& s);

// Inverse of ScenarioToJsonLine. Returns false and fills *error on
// malformed input, unknown axis values, or a fingerprint that does not
// match the reconstructed scenario.
bool ScenarioFromJsonLine(const std::string& line, Scenario* out, std::string* error);

struct Manifest {
  std::vector<Scenario> scenarios;
};

// Writes header + one line per scenario. WC_CHECKs name uniqueness (a
// duplicate here is a grid-construction bug, not an input error).
void WriteManifest(const std::string& path, const std::vector<Scenario>& scenarios);

// Loads and validates a manifest (header, per-line parse, fingerprint
// recomputation, name uniqueness). Returns false and fills *error on any
// violation; a manifest is trusted entirely or not at all.
bool LoadManifest(const std::string& path, Manifest* out, std::string* error);

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_MANIFEST_H_
