#include "src/tools/sweep/manifest.h"

#include <filesystem>
#include <fstream>
#include <set>

#include "src/simkit/check.h"
#include "src/telemetry/chrome_trace.h"
#include "src/tools/sweep/grid.h"
#include "src/tools/sweep/jsonl.h"

namespace wcores {

namespace {

const char* NasAppAxisName(NasApp app) {
  switch (app) {
    case NasApp::kBt: return "bt";
    case NasApp::kCg: return "cg";
    case NasApp::kEp: return "ep";
    case NasApp::kFt: return "ft";
    case NasApp::kIs: return "is";
    case NasApp::kLu: return "lu";
    case NasApp::kMg: return "mg";
    case NasApp::kSp: return "sp";
    case NasApp::kUa: return "ua";
  }
  return "lu";
}

bool NasAppByAxisName(const std::string& name, NasApp* out) {
  for (NasApp app : {NasApp::kBt, NasApp::kCg, NasApp::kEp, NasApp::kFt, NasApp::kIs,
                     NasApp::kLu, NasApp::kMg, NasApp::kSp, NasApp::kUa}) {
    if (name == NasAppAxisName(app)) {
      *out = app;
      return true;
    }
  }
  return false;
}

// Typed field lookups over a parsed line. Each returns false on a missing
// key or a wrong type, which the caller turns into one uniform error.
bool GetString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) {
    return false;
  }
  *out = v->str;
  return true;
}

bool GetU64Number(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber || v->number < 0) {
    return false;
  }
  *out = static_cast<uint64_t>(v->number);
  return true;
}

bool GetDouble(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    return false;
  }
  *out = v->number;
  return true;
}

bool GetHex64(const JsonValue& obj, const char* key, uint64_t* out) {
  std::string s;
  return GetString(obj, key, &s) && ParseHex16(s, out);
}

bool GetBool01(const JsonValue& obj, const char* key, bool* out) {
  uint64_t v = 0;
  if (!GetU64Number(obj, key, &v) || v > 1) {
    return false;
  }
  *out = v != 0;
  return true;
}

}  // namespace

std::string ScenarioToJsonLine(const Scenario& s) {
  std::string out = "{";
  out += "\"name\": " + QuoteJson(s.name);
  out += ", \"fingerprint\": " + HexJson(ScenarioFingerprint(s));
  out += ", \"topo\": " + QuoteJson(TopoName(s.topo));
  out += ", \"workload\": " + QuoteJson(WorkloadName(s.workload));
  out += ", \"fix_group_imbalance\": " + std::string(s.features.fix_group_imbalance ? "1" : "0");
  out += ", \"fix_group_construction\": " +
         std::string(s.features.fix_group_construction ? "1" : "0");
  out += ", \"fix_overload_wakeup\": " + std::string(s.features.fix_overload_wakeup ? "1" : "0");
  out += ", \"fix_missing_domains\": " + std::string(s.features.fix_missing_domains ? "1" : "0");
  out += ", \"autogroup\": " + std::string(s.features.autogroup_enabled ? "1" : "0");
  out += ", \"seed\": " + HexJson(s.seed);
  out += ", \"horizon_ns\": " + HexJson(s.horizon);
  out += ", \"scale\": " + NumberJson(s.scale);
  out += ", \"nas_app\": " + QuoteJson(NasAppAxisName(s.nas_app));
  out += ", \"nas_threads\": " + std::to_string(s.nas_threads);
  out += ", \"mix_threads\": " + std::to_string(s.mix_threads);
  out += ", \"policy\": " + QuoteJson(s.policy);
  out += ", \"stream\": " + std::string(s.stream ? "1" : "0");
  out += ", \"stream_horizon_ns\": " + HexJson(s.stream_horizon);
  out += "}";
  return out;
}

bool ScenarioFromJsonLine(const std::string& line, Scenario* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(line, &root, &parse_error)) {
    return fail("manifest line is not valid JSON: " + parse_error);
  }
  if (root.type != JsonValue::Type::kObject) {
    return fail("manifest line is not a JSON object");
  }
  Scenario s;
  std::string topo_name, workload_name, nas_name;
  uint64_t fingerprint = 0, nas_threads = 0, mix_threads = 0;
  if (!GetString(root, "name", &s.name) || s.name.empty()) {
    return fail("manifest line: missing or empty 'name'");
  }
  if (!GetHex64(root, "fingerprint", &fingerprint)) {
    return fail("manifest line '" + s.name + "': bad 'fingerprint'");
  }
  if (!GetString(root, "topo", &topo_name) || !TopoByName(topo_name, &s.topo)) {
    return fail("manifest line '" + s.name + "': bad 'topo'");
  }
  if (!GetString(root, "workload", &workload_name) ||
      !WorkloadByName(workload_name, &s.workload)) {
    return fail("manifest line '" + s.name + "': bad 'workload'");
  }
  if (!GetBool01(root, "fix_group_imbalance", &s.features.fix_group_imbalance) ||
      !GetBool01(root, "fix_group_construction", &s.features.fix_group_construction) ||
      !GetBool01(root, "fix_overload_wakeup", &s.features.fix_overload_wakeup) ||
      !GetBool01(root, "fix_missing_domains", &s.features.fix_missing_domains) ||
      !GetBool01(root, "autogroup", &s.features.autogroup_enabled)) {
    return fail("manifest line '" + s.name + "': bad feature flags");
  }
  if (!GetHex64(root, "seed", &s.seed)) {
    return fail("manifest line '" + s.name + "': bad 'seed'");
  }
  if (!GetHex64(root, "horizon_ns", &s.horizon)) {
    return fail("manifest line '" + s.name + "': bad 'horizon_ns'");
  }
  if (!GetDouble(root, "scale", &s.scale) || !(s.scale > 0)) {
    return fail("manifest line '" + s.name + "': bad 'scale'");
  }
  if (!GetString(root, "nas_app", &nas_name) || !NasAppByAxisName(nas_name, &s.nas_app)) {
    return fail("manifest line '" + s.name + "': bad 'nas_app'");
  }
  if (!GetU64Number(root, "nas_threads", &nas_threads) || nas_threads < 1 ||
      nas_threads > 65536) {
    return fail("manifest line '" + s.name + "': bad 'nas_threads'");
  }
  s.nas_threads = static_cast<int>(nas_threads);
  if (!GetU64Number(root, "mix_threads", &mix_threads) || mix_threads < 1 ||
      mix_threads > 65536) {
    return fail("manifest line '" + s.name + "': bad 'mix_threads'");
  }
  s.mix_threads = static_cast<int>(mix_threads);
  if (!GetString(root, "policy", &s.policy)) {
    return fail("manifest line '" + s.name + "': bad 'policy'");
  }
  if (!GetBool01(root, "stream", &s.stream)) {
    return fail("manifest line '" + s.name + "': bad 'stream'");
  }
  if (!GetHex64(root, "stream_horizon_ns", &s.stream_horizon)) {
    return fail("manifest line '" + s.name + "': bad 'stream_horizon_ns'");
  }
  // The stored fingerprint must equal the one the reconstructed scenario
  // produces: this catches hand-edits, axis-vocabulary skew between binary
  // versions, and any field this codec would silently default.
  if (ScenarioFingerprint(s) != fingerprint) {
    return fail("manifest line '" + s.name +
                "': fingerprint mismatch (stale or edited manifest)");
  }
  *out = std::move(s);
  return true;
}

void WriteManifest(const std::string& path, const std::vector<Scenario>& scenarios) {
  std::set<std::string> names;
  for (const Scenario& s : scenarios) {
    bool inserted = names.insert(s.name).second;
    WC_CHECK(inserted, "duplicate scenario name in manifest");
  }
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(p);
  WC_CHECK(out.good(), "cannot open manifest path for writing");
  out << "{\"wc_manifest\": 1, \"count\": " << scenarios.size() << "}\n";
  for (const Scenario& s : scenarios) {
    out << ScenarioToJsonLine(s) << "\n";
  }
  out.flush();
  WC_CHECK(out.good(), "manifest write failed");
}

bool LoadManifest(const std::string& path, Manifest* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  std::ifstream in(path);
  if (!in.good()) {
    return fail("cannot open manifest '" + path + "'");
  }
  std::string header;
  if (!std::getline(in, header)) {
    return fail("manifest '" + path + "' is empty");
  }
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(header, &root, &parse_error) || root.type != JsonValue::Type::kObject) {
    return fail("manifest '" + path + "': bad header line: " + parse_error);
  }
  uint64_t version = 0, count = 0;
  if (!GetU64Number(root, "wc_manifest", &version) || version != 1) {
    return fail("manifest '" + path + "': unsupported header (want wc_manifest: 1)");
  }
  if (!GetU64Number(root, "count", &count)) {
    return fail("manifest '" + path + "': header missing 'count'");
  }
  Manifest manifest;
  std::set<std::string> names;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    Scenario s;
    if (!ScenarioFromJsonLine(line, &s, error)) {
      return false;
    }
    if (!names.insert(s.name).second) {
      return fail("manifest '" + path + "': duplicate scenario name '" + s.name + "'");
    }
    manifest.scenarios.push_back(std::move(s));
  }
  if (manifest.scenarios.size() != count) {
    return fail("manifest '" + path + "': header count " + std::to_string(count) +
                " != " + std::to_string(manifest.scenarios.size()) + " scenario lines");
  }
  *out = std::move(manifest);
  return true;
}

}  // namespace wcores
