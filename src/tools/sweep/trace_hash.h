// Deterministic digest of a scheduler trace stream.
//
// The determinism contract of the whole repo — same seed, same scenario,
// same decisions — is checkable only if a run can be reduced to a value.
// TraceHashSink folds every TraceSink callback (kind tag + all fields, with
// doubles hashed by bit pattern) into a 64-bit FNV-1a digest, in callback
// order. Two runs have equal digests iff the scheduler made the same
// decisions at the same instants; the determinism regression test and the
// sweep driver both gate on it.
#ifndef SRC_TOOLS_SWEEP_TRACE_HASH_H_
#define SRC_TOOLS_SWEEP_TRACE_HASH_H_

#include <array>
#include <cstdint>

#include "src/core/trace.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

// FNV-1a, 64-bit. Stable across platforms and build modes.
class Fnv1a {
 public:
  static constexpr uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  void Mix(uint64_t value) {
    // Canonically: eight rounds of h = (h ^ byte) * prime, bytes LSB-first.
    // A zero byte's round is h = (h ^ 0) * prime = h * prime, and multiply
    // mod 2^64 is associative, so a run of k trailing zero bytes collapses
    // into one multiply by prime^k — the same digest, bit for bit (the
    // golden determinism hashes pin this equivalence in tests). Most mixed
    // values are tiny (tags, cpu ids, nr counts), turning the serial
    // 8-multiply dependency chain — this sink runs on every trace event —
    // into two multiplies.
    // Interior zero-byte runs (timestamps and double bit patterns carry
    // plenty) collapse the same way mid-stream.
    uint64_t h = hash_;
    int bytes = 0;
    while (value != 0) {
      if ((value & 0xff) == 0) {
        int run = __builtin_ctzll(value) >> 3;  // value != 0 here.
        h *= kZeroTail[run];
        value >>= run * 8;
        bytes += run;
      } else {
        h = (h ^ (value & 0xff)) * kPrime;
        value >>= 8;
        ++bytes;
      }
    }
    hash_ = h * kZeroTail[8 - bytes];
  }
  void MixDouble(double value);

  uint64_t digest() const { return hash_; }

 private:
  // kZeroTail[k] = kPrime^k mod 2^64: the collapsed factor for k all-zero
  // trailing bytes (see Mix).
  static constexpr auto kZeroTail = [] {
    std::array<uint64_t, 9> t{};
    t[0] = 1;
    for (int k = 1; k < 9; ++k) {
      t[k] = t[k - 1] * kPrime;
    }
    return t;
  }();

  uint64_t hash_ = kOffset;
};

class TraceHashSink : public TraceSink {
 public:
  uint64_t digest() const { return fnv_.digest(); }
  uint64_t events() const { return events_; }

  void OnNrRunning(Time now, CpuId cpu, int nr_running) override;
  void OnLoad(Time now, CpuId cpu, double load) override;
  void OnConsidered(Time now, CpuId initiator, const CpuSet& considered,
                    ConsideredKind kind) override;
  void OnMigration(Time now, ThreadId tid, CpuId from, CpuId to, MigrationReason reason) override;
  void OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) override;
  void OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran, bool still_runnable) override;
  void OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) override;
  void OnIdleEnter(Time now, CpuId cpu) override;
  void OnIdleExit(Time now, CpuId cpu, Time idle_for) override;

 private:
  // Each callback starts with a distinct tag so that, e.g., an IdleEnter
  // followed by an IdleExit cannot collide with the reverse order.
  enum : uint64_t {
    kTagNrRunning = 1,
    kTagLoad,
    kTagConsidered,
    kTagMigration,
    kTagSwitchIn,
    kTagSwitchOut,
    kTagWakeupLatency,
    kTagIdleEnter,
    kTagIdleExit,
  };

  void Tag(uint64_t tag, Time now) {
    fnv_.Mix(tag);
    fnv_.Mix(now);
    ++events_;
  }

  Fnv1a fnv_;
  uint64_t events_ = 0;
};

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_TRACE_HASH_H_
