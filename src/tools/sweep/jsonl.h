// Minimal JSON text helpers for the fleet-sweep stores (manifest lines,
// receipt lines, merged trend output).
//
// These stores are *canonical*: the same logical record must serialize to
// the same bytes on every host and in every process, because the merge tool
// compares sharded runs to single-process runs with a byte equality check.
// That rules out std::to_string for doubles (locale-dependent) and demands a
// fixed round-trip format, so the helpers live here instead of each caller
// improvising.
//
// (bench/bench_util.h carries similar helpers for the BENCH_*.json reports;
// they are deliberately not shared — bench_util is a header-only host-side
// convenience, while these definitions are part of the receipt format
// contract and are versioned with the sweep library.)
#ifndef SRC_TOOLS_SWEEP_JSONL_H_
#define SRC_TOOLS_SWEEP_JSONL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace wcores {

// "quoted" JSON string with the mandatory escapes.
inline std::string QuoteJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Shortest %g rendering that round-trips the double exactly; falls back to
// %.17g when %g loses bits. Non-finite values serialize as null.
inline std::string NumberJson(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  double back = std::strtod(buf, nullptr);
  bool exact = !(back < v) && !(v < back);  // bitwise-equal magnitudes round-trip.
  if (!exact) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

// uint64 values (seeds, fingerprints, trace hashes) as fixed-width hex
// strings: JSON numbers are doubles and silently lose bits above 2^53.
inline std::string HexJson(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016llx\"", static_cast<unsigned long long>(v));
  return buf;
}

inline std::string Hex16(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// Strict parse of a 16-digit hex string (the HexJson payload).
inline bool ParseHex16(const std::string& s, uint64_t* out) {
  if (s.size() != 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace wcores

#endif  // SRC_TOOLS_SWEEP_JSONL_H_
