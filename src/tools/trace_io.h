// Trace serialization (§4.2): "we also wrote a kernel module that makes it
// possible to ... output the global array to a file. We also wrote scripts
// that plot the results." This is that file format: a line-oriented CSV that
// round-trips the recorder's event array, loadable by any plotting tool
// (and by LoadTraceCsv, for offline analysis sessions).
//
// Format, one event per line:
//   ns,kind,sub,cpu,cpu2,tid,value,considered
// where kind is N/L/C/M (nr-running / load / considered / migration) or
// I/O/W/E/X (switch-in / switch-out / wakeup-latency / idle-enter /
// idle-exit), sub is the ConsideredKind or MigrationReason ordinal (or the
// still-runnable bit of a switch-out), and considered is the cpu list in
// cpuset notation ("0-3,8") or empty.
#ifndef SRC_TOOLS_TRACE_IO_H_
#define SRC_TOOLS_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/tools/recorder.h"

namespace wcores {

// Serializes events to the CSV format above (with a header line).
std::string TraceToCsv(const std::vector<TraceEvent>& events);
void WriteTraceCsv(const std::string& path, const std::vector<TraceEvent>& events);

// Parses the CSV format back into events. Returns false (and leaves
// `events` in an unspecified state) on malformed input.
bool TraceFromCsv(const std::string& csv, std::vector<TraceEvent>* events);
bool LoadTraceCsv(const std::string& path, std::vector<TraceEvent>* events);

// Summary statistics of a trace: counts per kind, span, events/second.
struct TraceSummary {
  uint64_t nr_running_events = 0;
  uint64_t load_events = 0;
  uint64_t considered_events = 0;
  uint64_t migration_events = 0;
  uint64_t switch_events = 0;          // Switch-in + switch-out.
  uint64_t wakeup_latency_events = 0;
  uint64_t idle_events = 0;            // Idle-enter + idle-exit.
  Time first = 0;
  Time last = 0;

  uint64_t Total() const {
    return nr_running_events + load_events + considered_events + migration_events +
           switch_events + wakeup_latency_events + idle_events;
  }
  double EventsPerSecond() const {
    return last > first ? static_cast<double>(Total()) / ToSeconds(last - first) : 0.0;
  }
};

TraceSummary SummarizeTrace(const std::vector<TraceEvent>& events);

}  // namespace wcores

#endif  // SRC_TOOLS_TRACE_IO_H_
