// The online sanity checker (§4.1): periodically verifies the
// work-conserving invariant "no core remains idle while another core is
// overloaded" (Algorithm 2), distinguishing acceptable short-term violations
// from the long-term ones that indicate scheduler bugs.
//
// Operation, as in the paper:
//  * Every S (default 1 s) run the invariant check: for each idle CPU1, look
//    for a CPU2 with nr_running >= 2 whose queue holds a thread allowed to
//    run on CPU1 (can_steal).
//  * On a hit, start monitoring for M (default 100 ms) — here, by watching
//    migrations/forks/exits through the trace stream and re-evaluating at
//    the end of the window. If the same core is still idle and stealable
//    work still exists, flag a violation and capture a profile.
#ifndef SRC_TOOLS_SANITY_CHECKER_H_
#define SRC_TOOLS_SANITY_CHECKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

class SanityChecker {
 public:
  struct Options {
    Time check_interval = Seconds(1);        // S.
    Time confirmation_window = Milliseconds(100);  // M.
    // Stop scheduling checks after this instant (0 = forever).
    Time stop_at = 0;
    // Optional: called when a violation is confirmed; its return value is
    // stored in Violation::latency_snapshot. Lets callers attach telemetry
    // (e.g. TelemetrySession::LatencySnapshot) without this tool depending
    // on the telemetry library.
    std::function<std::string()> latency_snapshot;
  };

  struct Violation {
    Time detected_at = 0;
    Time confirmed_at = 0;
    CpuId idle_cpu = kInvalidCpu;
    CpuId overloaded_cpu = kInvalidCpu;
    int overloaded_nr_running = 0;
    // Snapshot at confirmation: per-cpu runqueue sizes.
    std::vector<int> nr_running;
    // Scheduler-stats delta over the confirmation window (profile).
    uint64_t balance_calls = 0;
    uint64_t balance_below_local = 0;
    uint64_t balance_designation_skips = 0;
    uint64_t migrations = 0;
    // Machine-wide latency digest at confirmation, if a provider was set.
    std::string latency_snapshot;
  };

  SanityChecker(Simulator* sim, Options options);
  explicit SanityChecker(Simulator* sim) : SanityChecker(sim, Options{}) {}

  // Schedules the first check at now + S.
  void Start();

  uint64_t checks_run() const { return checks_run_; }
  uint64_t candidates() const { return candidates_; }
  const std::vector<Violation>& violations() const { return violations_; }

  // Total virtual time during which a confirmed violation was in effect
  // (approximated as one confirmation window per confirmed hit).
  Time FlaggedTime() const {
    return static_cast<Time>(violations_.size()) * options_.confirmation_window;
  }

  // Runs Algorithm 2 once; returns true and fills the pair on violation.
  // Public so benches can measure the cost of a single pass.
  bool CheckOnce(CpuId* idle_cpu, CpuId* overloaded_cpu) const;

  static std::string Report(const Violation& v);

 private:
  // A candidate awaiting the end of its M-window. Kept out-of-line (FIFO
  // deque) so the confirmation event captures only `this`: SchedStats is far
  // larger than InlineCallback's inline buffer. Confirmation events fire in
  // detection order (same fixed window offset), so popping the front is
  // always the right entry.
  struct PendingConfirmation {
    CpuId idle_cpu;
    Time detected_at;
    SchedStats stats_before;
  };

  void ScheduleNext();
  void RunCheck();
  void Confirm(CpuId idle_cpu, Time detected_at, const SchedStats& stats_before);
  void ConfirmHead();

  Simulator* sim_;
  Options options_;
  uint64_t checks_run_ = 0;
  uint64_t candidates_ = 0;
  std::deque<PendingConfirmation> pending_;
  std::vector<Violation> violations_;
};

}  // namespace wcores

#endif  // SRC_TOOLS_SANITY_CHECKER_H_
