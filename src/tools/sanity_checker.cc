#include "src/tools/sanity_checker.h"

#include <cstdio>
#include <utility>

namespace wcores {

SanityChecker::SanityChecker(Simulator* sim, Options options) : sim_(sim), options_(options) {}

void SanityChecker::Start() { ScheduleNext(); }

void SanityChecker::ScheduleNext() {
  Time next = sim_->Now() + options_.check_interval;
  if (options_.stop_at != 0 && next > options_.stop_at) {
    return;
  }
  sim_->At(next, [this] { RunCheck(); });
}

bool SanityChecker::CheckOnce(CpuId* idle_cpu, CpuId* overloaded_cpu) const {
  const Scheduler& sched = sim_->sched();
  // Algorithm 2: "No core remains idle while another core is overloaded."
  for (CpuId cpu1 : sched.OnlineCpus()) {
    if (sched.NrRunning(cpu1) >= 1) {
      continue;  // CPU1 is not idle.
    }
    for (CpuId cpu2 : sched.OnlineCpus()) {
      if (cpu2 == cpu1 || sched.NrRunning(cpu2) < 2) {
        continue;
      }
      if (sched.CanSteal(cpu1, cpu2)) {
        if (idle_cpu != nullptr) {
          *idle_cpu = cpu1;
        }
        if (overloaded_cpu != nullptr) {
          *overloaded_cpu = cpu2;
        }
        return true;
      }
    }
  }
  return false;
}

void SanityChecker::RunCheck() {
  checks_run_ += 1;
  CpuId idle_cpu = kInvalidCpu;
  CpuId overloaded_cpu = kInvalidCpu;
  if (CheckOnce(&idle_cpu, &overloaded_cpu)) {
    candidates_ += 1;
    // Begin the M-window monitoring phase before deciding it is a bug.
    Time detected = sim_->Now();
    pending_.push_back(PendingConfirmation{idle_cpu, detected, sim_->sched().stats()});
    sim_->At(detected + options_.confirmation_window, [this] { ConfirmHead(); });
  }
  ScheduleNext();
}

void SanityChecker::ConfirmHead() {
  PendingConfirmation p = std::move(pending_.front());
  pending_.pop_front();
  Confirm(p.idle_cpu, p.detected_at, p.stats_before);
}

void SanityChecker::Confirm(CpuId idle_cpu, Time detected_at, const SchedStats& stats_before) {
  const Scheduler& sched = sim_->sched();
  // The violation is "promptly fixed" if the idle core got work meanwhile
  // (its idle period no longer spans the detection) or no overloaded core
  // with stealable work remains.
  if (sched.NrRunning(idle_cpu) >= 1 || sched.IdleSince(idle_cpu) > detected_at ||
      !sched.IsOnline(idle_cpu)) {
    return;
  }
  CpuId overloaded = kInvalidCpu;
  for (CpuId cpu2 : sched.OnlineCpus()) {
    if (cpu2 != idle_cpu && sched.NrRunning(cpu2) >= 2 && sched.CanSteal(idle_cpu, cpu2)) {
      overloaded = cpu2;
      break;
    }
  }
  if (overloaded == kInvalidCpu) {
    return;
  }

  Violation v;
  v.detected_at = detected_at;
  v.confirmed_at = sim_->Now();
  v.idle_cpu = idle_cpu;
  v.overloaded_cpu = overloaded;
  v.overloaded_nr_running = sched.NrRunning(overloaded);
  for (CpuId c = 0; c < sim_->topo().n_cores(); ++c) {
    v.nr_running.push_back(sched.IsOnline(c) ? sched.NrRunning(c) : -1);
  }
  const SchedStats& after = sched.stats();
  v.balance_calls = after.balance_calls - stats_before.balance_calls;
  v.balance_below_local = after.balance_below_local - stats_before.balance_below_local;
  v.balance_designation_skips =
      after.balance_designation_skips - stats_before.balance_designation_skips;
  v.migrations = after.TotalMigrations() - stats_before.TotalMigrations();
  if (options_.latency_snapshot) {
    v.latency_snapshot = options_.latency_snapshot();
  }
  violations_.push_back(std::move(v));
}

std::string SanityChecker::Report(const Violation& v) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "invariant violation: core %d idle since before %s while core %d has %d "
                "runnable threads (confirmed %s; window: %llu balance calls, %llu "
                "below-local, %llu designation skips, %llu migrations)\n",
                v.idle_cpu, FormatTime(v.detected_at).c_str(), v.overloaded_cpu,
                v.overloaded_nr_running, FormatTime(v.confirmed_at).c_str(),
                static_cast<unsigned long long>(v.balance_calls),
                static_cast<unsigned long long>(v.balance_below_local),
                static_cast<unsigned long long>(v.balance_designation_skips),
                static_cast<unsigned long long>(v.migrations));
  std::string out = buf;
  if (!v.latency_snapshot.empty()) {
    out += "  latency at confirmation: " + v.latency_snapshot + "\n";
  }
  return out;
}

}  // namespace wcores
