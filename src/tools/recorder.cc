#include "src/tools/recorder.h"

namespace wcores {

uint64_t EventRecorder::CountKind(TraceEvent::Kind kind) const {
  uint64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) {
      ++n;
    }
  }
  return n;
}

}  // namespace wcores
