// The scheduler visualization tool's data collection side (§4.2).
//
// "To provide maximum accuracy, it does not use sampling; it records every
// change in the size of run queues or load, as well as a set of considered
// cores at each load rebalancing or thread wakeup event. To keep the
// overhead low, we store all profiling information in a large global array
// in memory of a static size."
//
// This recorder is the TraceSink the scheduler calls; src/tools/heatmap.h
// turns the array into the paper's figures.
#ifndef SRC_TOOLS_RECORDER_H_
#define SRC_TOOLS_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/core/trace.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

struct TraceEvent {
  enum class Kind : uint8_t {
    kNrRunning,      // value = new runqueue size of `cpu`.
    kLoad,           // value = new runqueue load of `cpu`.
    kConsidered,     // `cpu` examined `considered` during balancing/wakeup.
    kMigration,      // thread `tid` moved `cpu` -> `cpu2`.
    kSwitchIn,       // `tid` started running on `cpu`; value = ns waited queued.
    kSwitchOut,      // `tid` stopped running on `cpu`; value = ns it ran;
                     // sub = 1 if still runnable (preempted), 0 if blocked.
    kWakeupLatency,  // `tid` first ran after a wakeup; value = ns of latency.
    kIdleEnter,      // `cpu` ran out of work.
    kIdleExit,       // `cpu` received work; value = ns it sat idle.
  };

  Time when = 0;
  Kind kind = Kind::kNrRunning;
  uint8_t sub = 0;  // ConsideredKind or MigrationReason.
  int16_t cpu = -1;
  int16_t cpu2 = -1;
  int32_t tid = -1;
  double value = 0;
  CpuSet considered;  // Only meaningful for kConsidered.
};

class EventRecorder : public TraceSink {
 public:
  // `capacity` bounds memory like the paper's static global array; further
  // events are dropped (and counted).
  explicit EventRecorder(size_t capacity = 1 << 22) : capacity_(capacity) {
    events_.reserve(capacity < 4096 ? capacity : 4096);
  }

  void OnNrRunning(Time now, CpuId cpu, int nr_running) override {
    Append(TraceEvent{now, TraceEvent::Kind::kNrRunning, 0, static_cast<int16_t>(cpu), -1, -1,
                      static_cast<double>(nr_running), CpuSet{}});
  }

  void OnLoad(Time now, CpuId cpu, double load) override {
    Append(TraceEvent{now, TraceEvent::Kind::kLoad, 0, static_cast<int16_t>(cpu), -1, -1, load,
                      CpuSet{}});
  }

  void OnConsidered(Time now, CpuId initiator, const CpuSet& considered,
                    ConsideredKind kind) override {
    Append(TraceEvent{now, TraceEvent::Kind::kConsidered, static_cast<uint8_t>(kind),
                      static_cast<int16_t>(initiator), -1, -1, 0, considered});
  }

  void OnMigration(Time now, ThreadId tid, CpuId from, CpuId to, MigrationReason reason) override {
    Append(TraceEvent{now, TraceEvent::Kind::kMigration, static_cast<uint8_t>(reason),
                      static_cast<int16_t>(from), static_cast<int16_t>(to), tid, 0, CpuSet{}});
  }

  void OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) override {
    Append(TraceEvent{now, TraceEvent::Kind::kSwitchIn, 0, static_cast<int16_t>(cpu), -1, tid,
                      static_cast<double>(waited), CpuSet{}});
  }

  void OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran, bool still_runnable) override {
    Append(TraceEvent{now, TraceEvent::Kind::kSwitchOut,
                      static_cast<uint8_t>(still_runnable ? 1 : 0), static_cast<int16_t>(cpu), -1,
                      tid, static_cast<double>(ran), CpuSet{}});
  }

  void OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) override {
    Append(TraceEvent{now, TraceEvent::Kind::kWakeupLatency, 0, static_cast<int16_t>(cpu), -1,
                      tid, static_cast<double>(latency), CpuSet{}});
  }

  void OnIdleEnter(Time now, CpuId cpu) override {
    Append(TraceEvent{now, TraceEvent::Kind::kIdleEnter, 0, static_cast<int16_t>(cpu), -1, -1, 0,
                      CpuSet{}});
  }

  void OnIdleExit(Time now, CpuId cpu, Time idle_for) override {
    Append(TraceEvent{now, TraceEvent::Kind::kIdleExit, 0, static_cast<int16_t>(cpu), -1, -1,
                      static_cast<double>(idle_for), CpuSet{}});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }
  // Fraction of the static array already used, for sinks that must warn
  // before events start dropping.
  double FillFraction() const {
    return capacity_ == 0 ? 1.0 : static_cast<double>(events_.size()) / static_cast<double>(capacity_);
  }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Recording can be paused (the paper's profiler "is only active when a
  // bug is detected").
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  uint64_t CountKind(TraceEvent::Kind kind) const;

 private:
  // By reference: TraceEvent carries a CpuSet, and pass-by-value copied it
  // once per recorded event on the scheduler's hottest paths.
  void Append(const TraceEvent& event) {
    if (!enabled_) {
      return;
    }
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  size_t capacity_;
  bool enabled_ = true;
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

// Fans one scheduler trace stream out to several sinks.
class MultiSink : public TraceSink {
 public:
  void Add(TraceSink* sink) { sinks_.push_back(sink); }

  void OnNrRunning(Time now, CpuId cpu, int nr) override {
    for (TraceSink* s : sinks_) {
      s->OnNrRunning(now, cpu, nr);
    }
  }
  void OnLoad(Time now, CpuId cpu, double load) override {
    for (TraceSink* s : sinks_) {
      s->OnLoad(now, cpu, load);
    }
  }
  void OnConsidered(Time now, CpuId initiator, const CpuSet& considered,
                    ConsideredKind kind) override {
    for (TraceSink* s : sinks_) {
      s->OnConsidered(now, initiator, considered, kind);
    }
  }
  void OnMigration(Time now, ThreadId tid, CpuId from, CpuId to, MigrationReason reason) override {
    for (TraceSink* s : sinks_) {
      s->OnMigration(now, tid, from, to, reason);
    }
  }
  void OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) override {
    for (TraceSink* s : sinks_) {
      s->OnSwitchIn(now, cpu, tid, waited);
    }
  }
  void OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran, bool still_runnable) override {
    for (TraceSink* s : sinks_) {
      s->OnSwitchOut(now, cpu, tid, ran, still_runnable);
    }
  }
  void OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) override {
    for (TraceSink* s : sinks_) {
      s->OnWakeupLatency(now, cpu, tid, latency);
    }
  }
  void OnIdleEnter(Time now, CpuId cpu) override {
    for (TraceSink* s : sinks_) {
      s->OnIdleEnter(now, cpu);
    }
  }
  void OnIdleExit(Time now, CpuId cpu, Time idle_for) override {
    for (TraceSink* s : sinks_) {
      s->OnIdleExit(now, cpu, idle_for);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace wcores

#endif  // SRC_TOOLS_RECORDER_H_
