#include "src/tools/heatmap.h"

#include <algorithm>
#include <cstdio>

namespace wcores {

Heatmap BuildHeatmap(const std::vector<TraceEvent>& events, TraceEvent::Kind kind, int n_cpus,
                     Time t0, Time t1, int n_bins) {
  Heatmap map;
  map.n_cpus = n_cpus;
  map.n_bins = n_bins;
  map.t0 = t0;
  map.t1 = t1;
  map.cells.assign(static_cast<size_t>(n_cpus) * n_bins, 0.0);
  if (t1 <= t0 || n_bins <= 0) {
    return map;
  }

  // Integrate the piecewise-constant signal per cpu: walk events in order,
  // accumulating value * dt into the bins the interval covers.
  std::vector<double> current(n_cpus, 0.0);
  std::vector<Time> last(n_cpus, t0);

  auto accumulate = [&](int cpu, Time from, Time to, double value) {
    if (to <= from || to <= t0 || from >= t1) {
      return;
    }
    from = std::max(from, t0);
    to = std::min(to, t1);
    double bin_width = static_cast<double>(t1 - t0) / n_bins;
    int b0 = static_cast<int>(static_cast<double>(from - t0) / bin_width);
    int b1 = static_cast<int>(static_cast<double>(to - t0) / bin_width);
    b0 = std::clamp(b0, 0, n_bins - 1);
    b1 = std::clamp(b1, 0, n_bins - 1);
    for (int b = b0; b <= b1; ++b) {
      Time bin_start = t0 + static_cast<Time>(b * bin_width);
      Time bin_end = t0 + static_cast<Time>((b + 1) * bin_width);
      Time lo = std::max(from, bin_start);
      Time hi = std::min(to, bin_end);
      if (hi > lo) {
        map.At(cpu, b) += value * static_cast<double>(hi - lo);
      }
    }
  };

  for (const TraceEvent& e : events) {
    if (e.kind != kind || e.cpu < 0 || e.cpu >= n_cpus) {
      continue;
    }
    if (e.when >= t1) {
      break;
    }
    accumulate(e.cpu, last[e.cpu], e.when, current[e.cpu]);
    current[e.cpu] = e.value;
    last[e.cpu] = e.when;
  }
  for (int c = 0; c < n_cpus; ++c) {
    accumulate(c, last[c], t1, current[c]);
  }

  // Normalize integrals into time-weighted averages.
  double bin_width = static_cast<double>(t1 - t0) / n_bins;
  for (double& cell : map.cells) {
    cell /= bin_width;
  }
  return map;
}

std::string HeatmapToCsv(const Heatmap& map) {
  std::string out = "core";
  char buf[64];
  for (int b = 0; b < map.n_bins; ++b) {
    double t_ms = ToMilliseconds(map.t0) +
                  (b + 0.5) * (ToMilliseconds(map.t1) - ToMilliseconds(map.t0)) / map.n_bins;
    std::snprintf(buf, sizeof(buf), ",t%.1fms", t_ms);
    out += buf;
  }
  out += '\n';
  for (int c = 0; c < map.n_cpus; ++c) {
    std::snprintf(buf, sizeof(buf), "%d", c);
    out += buf;
    for (int b = 0; b < map.n_bins; ++b) {
      std::snprintf(buf, sizeof(buf), ",%.4f", map.At(c, b));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string HeatmapToAscii(const Heatmap& map, int cores_per_node, double max_value) {
  static const char kScale[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kScale) - 2);
  if (max_value <= 0) {
    for (double v : map.cells) {
      max_value = std::max(max_value, v);
    }
    if (max_value <= 0) {
      max_value = 1;
    }
  }
  std::string out;
  char buf[32];
  for (int c = 0; c < map.n_cpus; ++c) {
    if (cores_per_node > 0 && c > 0 && c % cores_per_node == 0) {
      out += "     ";
      out.append(static_cast<size_t>(map.n_bins), '-');
      out += '\n';
    }
    std::snprintf(buf, sizeof(buf), "%3d |", c);
    out += buf;
    for (int b = 0; b < map.n_bins; ++b) {
      double norm = std::clamp(map.At(c, b) / max_value, 0.0, 1.0);
      out += kScale[static_cast<int>(norm * kLevels)];
    }
    out += '\n';
  }
  return out;
}

std::string HeatmapToPgm(const Heatmap& map, double max_value) {
  if (max_value <= 0) {
    for (double v : map.cells) {
      max_value = std::max(max_value, v);
    }
    if (max_value <= 0) {
      max_value = 1;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "P2\n%d %d\n255\n", map.n_bins, map.n_cpus);
  std::string out = buf;
  for (int c = 0; c < map.n_cpus; ++c) {
    for (int b = 0; b < map.n_bins; ++b) {
      int level = static_cast<int>(std::clamp(map.At(c, b) / max_value, 0.0, 1.0) * 255.0);
      std::snprintf(buf, sizeof(buf), "%d ", level);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string ConsideredToCsv(const std::vector<TraceEvent>& events, CpuId initiator) {
  static const char* const kKinds[] = {"periodic", "idle", "nohz", "wakeup"};
  std::string out = "time_ms,kind,cores\n";
  char buf[64];
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::kConsidered || e.cpu != initiator) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%.3f,%s,", ToMilliseconds(e.when), kKinds[e.sub]);
    out += buf;
    out += e.considered.ToString();
    out += '\n';
  }
  return out;
}

std::string ConsideredToAscii(const std::vector<TraceEvent>& events, CpuId initiator, int n_cpus,
                              int max_calls) {
  // Collect the first `max_calls` balancing events from `initiator`.
  std::vector<const TraceEvent*> calls;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kConsidered && e.cpu == initiator &&
        e.sub != static_cast<uint8_t>(ConsideredKind::kWakeup)) {
      calls.push_back(&e);
      if (static_cast<int>(calls.size()) >= max_calls) {
        break;
      }
    }
  }
  std::string out;
  char buf[32];
  for (int c = 0; c < n_cpus; ++c) {
    std::snprintf(buf, sizeof(buf), "%3d |", c);
    out += buf;
    for (const TraceEvent* e : calls) {
      out += e->considered.Test(c) ? '|' : ' ';
    }
    out += '\n';
  }
  return out;
}

CpuSet ConsideredUnion(const std::vector<TraceEvent>& events, CpuId initiator) {
  CpuSet all;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kConsidered && e.cpu == initiator &&
        e.sub != static_cast<uint8_t>(ConsideredKind::kWakeup)) {
      all |= e.considered;
    }
  }
  return all;
}

}  // namespace wcores
