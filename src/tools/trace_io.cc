#include "src/tools/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace wcores {

namespace {

char KindChar(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kNrRunning:
      return 'N';
    case TraceEvent::Kind::kLoad:
      return 'L';
    case TraceEvent::Kind::kConsidered:
      return 'C';
    case TraceEvent::Kind::kMigration:
      return 'M';
    case TraceEvent::Kind::kSwitchIn:
      return 'I';
    case TraceEvent::Kind::kSwitchOut:
      return 'O';
    case TraceEvent::Kind::kWakeupLatency:
      return 'W';
    case TraceEvent::Kind::kIdleEnter:
      return 'E';
    case TraceEvent::Kind::kIdleExit:
      return 'X';
  }
  return '?';
}

bool KindFromChar(char c, TraceEvent::Kind* kind) {
  switch (c) {
    case 'N':
      *kind = TraceEvent::Kind::kNrRunning;
      return true;
    case 'L':
      *kind = TraceEvent::Kind::kLoad;
      return true;
    case 'C':
      *kind = TraceEvent::Kind::kConsidered;
      return true;
    case 'M':
      *kind = TraceEvent::Kind::kMigration;
      return true;
    case 'I':
      *kind = TraceEvent::Kind::kSwitchIn;
      return true;
    case 'O':
      *kind = TraceEvent::Kind::kSwitchOut;
      return true;
    case 'W':
      *kind = TraceEvent::Kind::kWakeupLatency;
      return true;
    case 'X':
      *kind = TraceEvent::Kind::kIdleExit;
      return true;
    case 'E':
      *kind = TraceEvent::Kind::kIdleEnter;
      return true;
    default:
      return false;
  }
}

// Parses "a-b" / "a" tokens separated by commas into a CpuSet.
bool CpuSetFromString(const std::string& text, CpuSet* set) {
  set->Reset();
  if (text.empty() || text == "(empty)") {
    return true;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    char* end = nullptr;
    long lo = std::strtol(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos || lo < 0 || lo >= kMaxCpus) {
      return false;
    }
    long hi = lo;
    pos = static_cast<size_t>(end - text.c_str());
    if (pos < text.size() && text[pos] == '-') {
      hi = std::strtol(text.c_str() + pos + 1, &end, 10);
      if (hi < lo || hi >= kMaxCpus) {
        return false;
      }
      pos = static_cast<size_t>(end - text.c_str());
    }
    for (long c = lo; c <= hi; ++c) {
      set->Set(static_cast<CpuId>(c));
    }
    if (pos < text.size()) {
      if (text[pos] != ',') {
        return false;
      }
      ++pos;
    }
  }
  return true;
}

}  // namespace

std::string TraceToCsv(const std::vector<TraceEvent>& events) {
  std::string out = "ns,kind,sub,cpu,cpu2,tid,value,considered\n";
  char buf[160];
  for (const TraceEvent& e : events) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%c,%u,%d,%d,%d,%.17g,", e.when,
                  KindChar(e.kind), e.sub, e.cpu, e.cpu2, e.tid, e.value);
    out += buf;
    if (e.kind == TraceEvent::Kind::kConsidered) {
      out += e.considered.ToString();
    }
    out += '\n';
  }
  return out;
}

void WriteTraceCsv(const std::string& path, const std::vector<TraceEvent>& events) {
  std::ofstream out(path);
  out << TraceToCsv(events);
}

bool TraceFromCsv(const std::string& csv, std::vector<TraceEvent>* events) {
  events->clear();
  std::istringstream in(csv);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;  // Header.
      continue;
    }
    if (line.empty()) {
      continue;
    }
    // Split into the 8 fields.
    std::vector<std::string> fields;
    size_t pos = 0;
    for (int i = 0; i < 7; ++i) {
      size_t comma = line.find(',', pos);
      if (comma == std::string::npos) {
        return false;
      }
      fields.push_back(line.substr(pos, comma - pos));
      pos = comma + 1;
    }
    fields.push_back(line.substr(pos));

    TraceEvent e;
    e.when = std::strtoull(fields[0].c_str(), nullptr, 10);
    if (fields[1].size() != 1 || !KindFromChar(fields[1][0], &e.kind)) {
      return false;
    }
    e.sub = static_cast<uint8_t>(std::atoi(fields[2].c_str()));
    e.cpu = static_cast<int16_t>(std::atoi(fields[3].c_str()));
    e.cpu2 = static_cast<int16_t>(std::atoi(fields[4].c_str()));
    e.tid = std::atoi(fields[5].c_str());
    e.value = std::strtod(fields[6].c_str(), nullptr);
    if (e.kind == TraceEvent::Kind::kConsidered &&
        !CpuSetFromString(fields[7], &e.considered)) {
      return false;
    }
    events->push_back(e);
  }
  return true;
}

bool LoadTraceCsv(const std::string& path, std::vector<TraceEvent>* events) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceFromCsv(buffer.str(), events);
}

TraceSummary SummarizeTrace(const std::vector<TraceEvent>& events) {
  TraceSummary summary;
  bool first = true;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::kNrRunning:
        summary.nr_running_events += 1;
        break;
      case TraceEvent::Kind::kLoad:
        summary.load_events += 1;
        break;
      case TraceEvent::Kind::kConsidered:
        summary.considered_events += 1;
        break;
      case TraceEvent::Kind::kMigration:
        summary.migration_events += 1;
        break;
      case TraceEvent::Kind::kSwitchIn:
      case TraceEvent::Kind::kSwitchOut:
        summary.switch_events += 1;
        break;
      case TraceEvent::Kind::kWakeupLatency:
        summary.wakeup_latency_events += 1;
        break;
      case TraceEvent::Kind::kIdleEnter:
      case TraceEvent::Kind::kIdleExit:
        summary.idle_events += 1;
        break;
    }
    if (first) {
      summary.first = e.when;
      first = false;
    }
    summary.last = e.when;
  }
  return summary;
}

}  // namespace wcores
