#include "src/tools/trend/trend.h"

#include <fstream>
#include <map>
#include <set>

#include "src/tools/sweep/grid.h"
#include "src/tools/sweep/jsonl.h"
#include "src/tools/sweep/trace_hash.h"

namespace wcores {

MergeReport MergeResults(const Manifest& manifest, const ResultsStore& store) {
  MergeReport report;
  report.receipts = static_cast<int>(store.receipts.size());
  report.dropped_trailing = store.dropped_trailing;
  report.dropped_interior = store.dropped_interior;

  std::map<std::string, uint64_t> expected;  // name -> current fingerprint.
  for (const Scenario& s : manifest.scenarios) {
    expected[s.name] = ScenarioFingerprint(s);
  }

  // Bucket fingerprint-current receipts by name, in canonical form so
  // byte-identical re-runs (benign claim races) collapse to one copy.
  std::map<std::string, std::vector<const Receipt*>> current;
  std::set<std::string> orphan_names;
  for (const Receipt& r : store.receipts) {
    auto it = expected.find(r.name);
    if (it == expected.end()) {
      orphan_names.insert(r.name);
      continue;
    }
    if (r.fingerprint != it->second) {
      report.stale++;
      continue;
    }
    current[r.name].push_back(&r);
  }
  report.orphans.assign(orphan_names.begin(), orphan_names.end());

  Fnv1a combined;
  for (const Scenario& s : manifest.scenarios) {
    auto it = current.find(s.name);
    if (it == current.end()) {
      report.missing.push_back(s.name);
      continue;
    }
    const std::vector<const Receipt*>& candidates = it->second;
    std::string canonical = ReceiptCanonical(*candidates[0]);
    bool conflict = false;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (ReceiptCanonical(*candidates[i]) != canonical) {
        conflict = true;
      } else {
        report.duplicates++;
      }
    }
    if (conflict) {
      report.conflicts.push_back(s.name);
      continue;
    }
    report.unique++;
    report.canonical += canonical;
    report.canonical += "\n";
    const Receipt& r = *candidates[0];
    for (char c : r.name) {
      combined.Mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    combined.Mix(r.trace_hash);
    combined.Mix(r.trace_events);
  }
  report.combined_hash = combined.digest();
  return report;
}

DiffReport DiffStores(const std::vector<Receipt>& a, const std::vector<Receipt>& b) {
  DiffReport report;
  std::map<std::string, const Receipt*> in_a, in_b;
  for (const Receipt& r : a) {
    in_a[r.name] = &r;
  }
  for (const Receipt& r : b) {
    in_b[r.name] = &r;
  }
  for (const auto& [name, receipt] : in_a) {
    (void)receipt;
    if (in_b.find(name) == in_b.end()) {
      report.removed.push_back(name);
    }
  }
  for (const auto& [name, receipt] : in_b) {
    (void)receipt;
    if (in_a.find(name) == in_a.end()) {
      report.added.push_back(name);
    }
  }
  for (const auto& [name, ra] : in_a) {
    auto it = in_b.find(name);
    if (it == in_b.end()) {
      continue;
    }
    const Receipt* rb = it->second;
    bool changed = false;
    if (ra->trace_hash != rb->trace_hash || ra->trace_events != rb->trace_events) {
      report.hash_changes.push_back({name, ra->trace_hash, rb->trace_hash});
      changed = true;
    }
    // Union of metric keys; equality on the canonical serialized value, so
    // a one-ulp drift registers without any float comparison.
    std::set<std::string> keys;
    for (const auto& [key, value] : ra->metrics) {
      (void)value;
      keys.insert(key);
    }
    for (const auto& [key, value] : rb->metrics) {
      (void)value;
      keys.insert(key);
    }
    for (const std::string& key : keys) {
      auto ma = ra->metrics.find(key);
      auto mb = rb->metrics.find(key);
      std::string va = ma == ra->metrics.end() ? "" : NumberJson(ma->second);
      std::string vb = mb == rb->metrics.end() ? "" : NumberJson(mb->second);
      if (va != vb) {
        report.metric_deltas.push_back({name, key, va, vb});
        changed = true;
      }
    }
    // Count drift (sim_events etc.) without a hash change still counts as
    // changed for the unchanged tally.
    if (!changed && (ra->sim_events != rb->sim_events ||
                     ra->context_switches != rb->context_switches ||
                     ra->migrations != rb->migrations)) {
      changed = true;
    }
    if (!changed) {
      report.unchanged++;
    }
  }
  return report;
}

bool LoadMergedStore(const std::string& path, std::vector<Receipt>* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  std::ifstream in(path);
  if (!in.good()) {
    return fail("cannot open merged store '" + path + "'");
  }
  std::vector<Receipt> receipts;
  std::set<std::string> names;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    Receipt r;
    std::string parse_error;
    if (!ParseReceiptLine(line, &r, &parse_error)) {
      return fail(path + " line " + std::to_string(line_no) + ": " + parse_error);
    }
    if (!names.insert(r.name).second) {
      return fail(path + ": duplicate scenario '" + r.name + "' (not a merged store?)");
    }
    receipts.push_back(std::move(r));
  }
  *out = std::move(receipts);
  return true;
}

}  // namespace wcores
