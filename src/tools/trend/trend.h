// wc-trend: merge, verify, and diff fleet-sweep result stores.
//
// MERGE unions every shard's receipt file under a results directory,
// verifies the store against its manifest — every scenario receipted, all
// fingerprints current, no conflicting receipts, no interior corruption —
// and emits one canonical line per scenario in manifest order. Because
// canonical receipt lines are byte-stable (receipts.h), the merged output
// of any sharding of a manifest equals the merged output of a
// single-process run `cmp`-bit-for-bit; ci.sh stage 7 enforces exactly
// that, with a kill/resume in the middle.
//
// DIFF compares two merged stores across commits: scenarios added or
// removed, trace-hash changes (behavior drift — the "invisible without the
// right instrumentation" lesson as a database query), and metric deltas on
// scenarios whose hash moved or stayed. Metric equality is decided on the
// canonical serialized form, never on float ==.
#ifndef SRC_TOOLS_TREND_TREND_H_
#define SRC_TOOLS_TREND_TREND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tools/sweep/manifest.h"
#include "src/tools/sweep/receipts.h"

namespace wcores {

struct MergeReport {
  int receipts = 0;    // Parsed receipt lines across all shard files.
  int unique = 0;      // Scenarios with a usable receipt.
  int duplicates = 0;  // Extra byte-identical canonical copies (benign
                       // claim races; dropped).
  int stale = 0;       // Fingerprint-mismatched receipts (ignored).
  int dropped_trailing = 0;   // Tolerated killed-mid-append tails.
  int dropped_interior = 0;   // Store damage: fails verification.
  std::vector<std::string> missing;    // Manifest names with no receipt.
  std::vector<std::string> conflicts;  // Names with disagreeing receipts.
  std::vector<std::string> orphans;    // Receipt names not in the manifest.
  std::string canonical;  // One canonical line per scenario, manifest order.
  uint64_t combined_hash = 0;  // Same fold as SweepReport::CombinedHash.

  bool ok() const {
    return missing.empty() && conflicts.empty() && orphans.empty() && dropped_interior == 0;
  }
};

MergeReport MergeResults(const Manifest& manifest, const ResultsStore& store);

struct DiffReport {
  std::vector<std::string> added;    // In B only.
  std::vector<std::string> removed;  // In A only.
  struct HashChange {
    std::string name;
    uint64_t hash_a = 0;
    uint64_t hash_b = 0;
  };
  std::vector<HashChange> hash_changes;
  struct MetricDelta {
    std::string name;
    std::string key;
    // Canonical serializations; empty string = metric absent on that side.
    std::string value_a;
    std::string value_b;
  };
  std::vector<MetricDelta> metric_deltas;
  int unchanged = 0;  // Same hash, same counts, same metrics.

  bool identical() const {
    return added.empty() && removed.empty() && hash_changes.empty() && metric_deltas.empty();
  }
};

// Inputs are merged canonical stores (one receipt per name).
DiffReport DiffStores(const std::vector<Receipt>& a, const std::vector<Receipt>& b);

// Loads a merged canonical file written by MERGE. Returns false and fills
// *error on parse failure or duplicate names.
bool LoadMergedStore(const std::string& path, std::vector<Receipt>* out, std::string* error);

}  // namespace wcores

#endif  // SRC_TOOLS_TREND_TREND_H_
