// wc-trend CLI: merge/verify sharded sweep results, diff merged stores.
//
//   wc-trend merge --manifest=FILE --results=DIR [--out=FILE]
//       Union shard receipts, verify against the manifest, write the
//       canonical merged store. Exit 0 iff the store is complete and
//       consistent; 1 on missing/conflicting/corrupt receipts.
//
//   wc-trend diff A.jsonl B.jsonl
//       Compare two merged stores (e.g. two commits' runs): added/removed
//       scenarios, trace-hash changes, metric deltas. Always exits 0 when
//       both stores parse; the report is the product.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/tools/sweep/jsonl.h"
#include "src/tools/trend/trend.h"

namespace wcores {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wc-trend merge --manifest=FILE --results=DIR [--out=FILE]\n"
               "  wc-trend diff A.jsonl B.jsonl\n");
  return 2;
}

int RunMerge(const std::vector<std::string>& args) {
  std::string manifest_path, results_dir, out_path;
  for (const std::string& arg : args) {
    if (arg.rfind("--manifest=", 0) == 0) {
      manifest_path = arg.substr(11);
    } else if (arg.rfind("--results=", 0) == 0) {
      results_dir = arg.substr(10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "wc-trend merge: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (manifest_path.empty() || results_dir.empty()) {
    return Usage();
  }
  Manifest manifest;
  std::string error;
  if (!LoadManifest(manifest_path, &manifest, &error)) {
    std::fprintf(stderr, "wc-trend: %s\n", error.c_str());
    return 1;
  }
  ResultsStore store;
  if (!LoadResultsStore(results_dir, &store, &error)) {
    std::fprintf(stderr, "wc-trend: %s\n", error.c_str());
    return 1;
  }
  for (const std::string& warning : store.warnings) {
    std::fprintf(stderr, "wc-trend: warning: dropped receipt line: %s\n", warning.c_str());
  }
  MergeReport report = MergeResults(manifest, store);
  std::printf(
      "merge: %zu scenarios, %d receipts in %d shard files -> %d unique"
      " (%d duplicate, %d stale, %d trailing dropped)\n",
      manifest.scenarios.size(), report.receipts, store.files, report.unique,
      report.duplicates, report.stale, report.dropped_trailing);
  std::printf("combined_hash=%s\n", Hex16(report.combined_hash).c_str());
  for (const std::string& name : report.missing) {
    std::printf("MISSING %s\n", name.c_str());
  }
  for (const std::string& name : report.conflicts) {
    std::printf("CONFLICT %s\n", name.c_str());
  }
  for (const std::string& name : report.orphans) {
    std::printf("ORPHAN %s\n", name.c_str());
  }
  if (report.dropped_interior > 0) {
    std::printf("CORRUPT %d interior receipt line(s) dropped\n", report.dropped_interior);
  }
  if (!report.ok()) {
    std::printf("merge FAILED: %zu missing, %zu conflicts, %zu orphans, %d corrupt\n",
                report.missing.size(), report.conflicts.size(), report.orphans.size(),
                report.dropped_interior);
    return 1;
  }
  if (!out_path.empty()) {
    std::filesystem::path p(out_path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(p);
    if (!out.good()) {
      std::fprintf(stderr, "wc-trend: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << report.canonical;
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "wc-trend: write to '%s' failed\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%d canonical receipts)\n", out_path.c_str(), report.unique);
  }
  std::printf("merge OK: store is complete and consistent\n");
  return 0;
}

int RunDiff(const std::vector<std::string>& args) {
  std::string path_a, path_b;
  for (const std::string& arg : args) {
    if (arg.rfind("--a=", 0) == 0) {
      path_a = arg.substr(4);
    } else if (arg.rfind("--b=", 0) == 0) {
      path_b = arg.substr(4);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "wc-trend diff: unknown argument '%s'\n", arg.c_str());
      return Usage();
    } else if (path_a.empty()) {
      path_a = arg;
    } else if (path_b.empty()) {
      path_b = arg;
    } else {
      return Usage();
    }
  }
  if (path_a.empty() || path_b.empty()) {
    return Usage();
  }
  std::vector<Receipt> a, b;
  std::string error;
  if (!LoadMergedStore(path_a, &a, &error) || !LoadMergedStore(path_b, &b, &error)) {
    std::fprintf(stderr, "wc-trend: %s\n", error.c_str());
    return 1;
  }
  DiffReport report = DiffStores(a, b);
  std::printf("diff: %zu vs %zu scenarios\n", a.size(), b.size());
  for (const std::string& name : report.removed) {
    std::printf("REMOVED %s\n", name.c_str());
  }
  for (const std::string& name : report.added) {
    std::printf("ADDED %s\n", name.c_str());
  }
  for (const DiffReport::HashChange& change : report.hash_changes) {
    std::printf("HASH %s %s -> %s\n", change.name.c_str(), Hex16(change.hash_a).c_str(),
                Hex16(change.hash_b).c_str());
  }
  for (const DiffReport::MetricDelta& delta : report.metric_deltas) {
    std::printf("METRIC %s %s %s -> %s\n", delta.name.c_str(), delta.key.c_str(),
                delta.value_a.empty() ? "(absent)" : delta.value_a.c_str(),
                delta.value_b.empty() ? "(absent)" : delta.value_b.c_str());
  }
  if (report.identical()) {
    std::printf("stores are identical (%d scenarios unchanged)\n", report.unchanged);
  } else {
    std::printf("%zu added, %zu removed, %zu hash changes, %zu metric deltas, %d unchanged\n",
                report.added.size(), report.removed.size(), report.hash_changes.size(),
                report.metric_deltas.size(), report.unchanged);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    args.push_back(argv[i]);
  }
  if (std::strcmp(argv[1], "merge") == 0) {
    return RunMerge(args);
  }
  if (std::strcmp(argv[1], "diff") == 0) {
    return RunDiff(args);
  }
  std::fprintf(stderr, "wc-trend: unknown command '%s'\n", argv[1]);
  return Usage();
}

}  // namespace
}  // namespace wcores

int main(int argc, char** argv) { return wcores::Main(argc, argv); }
