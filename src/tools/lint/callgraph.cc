#include "src/tools/lint/callgraph.h"

#include <deque>
#include <set>

namespace wcores::lint {

namespace {

// Adds the candidate callee `r` for a call whose receiver is (or derives
// from) class `recv`. Methods of `recv` itself, of its ancestors (inherited
// implementations) and of its descendants (virtual overrides) all qualify.
bool ReceiverMatches(const SymbolTable& syms, const std::string& recv, const FnRef& r) {
  return syms.DerivesFrom(recv, r.def->cls) || syms.DerivesFrom(r.def->cls, recv);
}

}  // namespace

CallGraph::CallGraph(const SymbolTable& syms) : syms_(syms) {
  const std::vector<FnRef>& fns = syms.functions();
  edges_.resize(fns.size());
  redges_.resize(fns.size());
  for (const FnRef& caller : fns) {
    std::set<int> seen;  // Dedup edges per caller.
    for (const CallSite& cs : caller.def->calls) {
      std::vector<const FnRef*> targets;
      if (!cs.qualifier.empty() && syms.FindClass(cs.qualifier) != nullptr) {
        // Qualified static-ish call: Cls::Fn(...).
        for (const FnRef* r : syms.MethodsNamed(cs.callee)) {
          if (syms.DerivesFrom(cs.qualifier, r->def->cls)) {
            targets.push_back(r);
          }
        }
      } else if (!cs.qualifier.empty()) {
        // Namespace-qualified free call.
        targets = syms.FreeFunctionsNamed(cs.callee);
      } else if (cs.via_member) {
        if (cs.object == "this" && !caller.def->cls.empty()) {
          for (const FnRef* r : syms.MethodsNamed(cs.callee)) {
            if (ReceiverMatches(syms, caller.def->cls, *r)) {
              targets.push_back(r);
            }
          }
        } else {
          // Receiver class unknown: link every method of that name.
          targets = syms.MethodsNamed(cs.callee);
        }
      } else {
        // Unqualified: implicit this-> members of the enclosing class, plus
        // free functions.
        if (!caller.def->cls.empty()) {
          for (const FnRef* r : syms.MethodsNamed(cs.callee)) {
            if (ReceiverMatches(syms, caller.def->cls, *r)) {
              targets.push_back(r);
            }
          }
        }
        for (const FnRef* r : syms.FreeFunctionsNamed(cs.callee)) {
          targets.push_back(r);
        }
      }
      for (const FnRef* r : targets) {
        if (r->id == caller.id || !seen.insert(r->id).second) {
          continue;
        }
        edges_[caller.id].push_back(Edge{r->id, &cs});
        redges_[r->id].push_back(caller.id);
      }
    }
  }
}

Reach CallGraph::Forward(const std::vector<int>& roots) const {
  Reach r;
  r.in_set.assign(edges_.size(), false);
  r.parent.assign(edges_.size(), -1);
  std::deque<int> work;
  for (int id : roots) {
    if (id >= 0 && id < NodeCount() && !r.in_set[id]) {
      r.in_set[id] = true;
      work.push_back(id);
    }
  }
  while (!work.empty()) {
    int cur = work.front();
    work.pop_front();
    for (const Edge& e : edges_[cur]) {
      if (!r.in_set[e.to]) {
        r.in_set[e.to] = true;
        r.parent[e.to] = cur;
        work.push_back(e.to);
      }
    }
  }
  return r;
}

Reach CallGraph::Backward(const std::vector<int>& targets) const {
  Reach r;
  r.in_set.assign(edges_.size(), false);
  r.parent.assign(edges_.size(), -1);
  std::deque<int> work;
  for (int id : targets) {
    if (id >= 0 && id < NodeCount() && !r.in_set[id]) {
      r.in_set[id] = true;
      work.push_back(id);
    }
  }
  while (!work.empty()) {
    int cur = work.front();
    work.pop_front();
    for (int from : redges_[cur]) {
      if (!r.in_set[from]) {
        r.in_set[from] = true;
        r.parent[from] = cur;  // Points one hop toward the target.
        work.push_back(from);
      }
    }
  }
  return r;
}

std::string CallGraph::Chain(const Reach& r, int id) const {
  std::string out;
  int cur = id;
  int guard = 0;
  while (cur >= 0 && guard++ < 32) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += SymbolTable::IdOf(*syms_.functions()[cur].def);
    cur = r.parent[cur];
  }
  return out;
}

}  // namespace wcores::lint
