#include "src/tools/lint/rules.h"

#include <algorithm>

#include "src/tools/lint/lexer.h"

namespace wcores::lint {

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "pointer-valued key in an ordered container (ASLR-dependent iteration order)"},
      {"D2", "unordered container in trace-affecting code (hash-dependent iteration order)"},
      {"D3", "nondeterminism source outside the seeded-RNG / host-timing seams"},
      {"D4", "floating-point == / != comparison in scheduler decision code"},
      {"D5", "std::function in a designated hot-path file (type-erasure overhead)"},
      {"D6", "per-entity decayed-load read in balancing code (bypasses the group-stats cache)"},
      {"D7", "unbounded container growth (push_back/emplace_back) in bounded-memory code"},
  };
  return kRules;
}

namespace {

std::string Trim(std::string s) {
  size_t b = s.find_first_not_of(" \t");
  size_t e = s.find_last_not_of(" \t");
  return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

}  // namespace

// Scans one comment's text for the annotation marker and its allow clauses.
// Malformed clauses become SUPPRESS findings right away. (The marker string
// is assembled from pieces so this file's own comments and string literals
// never parse as annotations.)
void ParseAllowAnnotations(const Token& comment, const std::string& path,
                           std::vector<AllowSite>* out, std::vector<Finding>* findings) {
  static const std::string kMarker = std::string("wc-lint") + ":";
  const std::string& text = comment.text;
  size_t at = text.find(kMarker);
  if (at == std::string::npos) {
    return;
  }
  size_t pos = at;
  while ((pos = text.find("allow(", pos)) != std::string::npos) {
    size_t open = pos + 5;  // index of '('
    size_t close = text.find(')', open);
    if (close == std::string::npos) {
      if (findings != nullptr) {
        findings->push_back(Finding{path, comment.line, "SUPPRESS", Severity::kError,
                                    "malformed wc-lint annotation: allow( without closing ')'", false, {}});
      }
      return;
    }
    std::string inner = text.substr(open + 1, close - open - 1);
    size_t space = inner.find_first_of(" \t");
    std::string rule = space == std::string::npos ? Trim(inner) : Trim(inner.substr(0, space));
    std::string reason = space == std::string::npos ? std::string() : Trim(inner.substr(space));
    if (rule.empty()) {
      if (findings != nullptr) {
        findings->push_back(Finding{path, comment.line, "SUPPRESS", Severity::kError,
                                    "wc-lint allow() names no rule", false, {}});
      }
    } else if (reason.empty()) {
      if (findings != nullptr) {
        findings->push_back(Finding{path, comment.line, "SUPPRESS", Severity::kError,
                                    "suppression allow(" + rule +
                                        ") is missing a reason; write allow(" + rule + " why)",
                                    false, {}});
      }
    } else {
      out->push_back(AllowSite{comment.line, rule, reason});
    }
    pos = close;
  }
}

void ApplyAllows(const std::vector<AllowSite>& allows, std::vector<Finding>* findings) {
  for (Finding& f : *findings) {
    if (f.suppressed) {
      continue;
    }
    for (const AllowSite& s : allows) {
      if (s.rule == f.rule && (f.line == s.line || f.line == s.line + 1)) {
        f.suppressed = true;
        f.suppress_reason = s.reason;
        break;
      }
    }
  }
}

namespace {

// The rule scanners work on the comment/preprocessor-free token stream.
class Scanner {
 public:
  Scanner(const std::string& path, const std::vector<Token>& all,
          const std::map<std::string, Severity>& severities)
      : path_(path), severities_(severities) {
    code_.reserve(all.size());
    for (const Token& t : all) {
      if (t.kind != TokKind::kComment && t.kind != TokKind::kPreproc &&
          t.kind != TokKind::kAttribute) {
        code_.push_back(&t);
      }
    }
  }

  std::vector<Finding> Run() {
    for (size_t i = 0; i < code_.size(); ++i) {
      CheckD1(i);
      CheckD2(i);
      CheckD3(i);
      CheckD4(i);
      CheckD5(i);
      CheckD6(i);
      CheckD7(i);
    }
    return std::move(findings_);
  }

 private:
  Severity SeverityOf(const std::string& rule) const {
    auto it = severities_.find(rule);
    return it == severities_.end() ? Severity::kOff : it->second;
  }

  bool Enabled(const std::string& rule) const { return SeverityOf(rule) != Severity::kOff; }

  const Token* At(size_t i) const { return i < code_.size() ? code_[i] : nullptr; }
  bool IsIdent(const Token* t, std::string_view name) const {
    return t != nullptr && t->kind == TokKind::kIdent && t->text == name;
  }
  bool IsPunct(const Token* t, std::string_view text) const {
    return t != nullptr && t->kind == TokKind::kPunct && t->text == text;
  }

  void Report(const std::string& rule, int line, std::string message) {
    findings_.push_back(Finding{path_, line, rule, SeverityOf(rule), std::move(message), false, {}});
  }

  // True when code_[i] is an identifier qualified as std::name — or
  // unqualified, which we accept only for `name`s distinctive enough that a
  // collision with user code is implausible (callers decide via
  // `require_std`).
  bool StdQualified(size_t i) const {
    return i >= 2 && IsPunct(At(i - 1), "::") && IsIdent(At(i - 2), "std");
  }
  bool MemberAccess(size_t i) const {
    return i >= 1 && (IsPunct(At(i - 1), ".") || IsPunct(At(i - 1), "->"));
  }
  // Qualified by some namespace other than std (mylib::map).
  bool ForeignQualified(size_t i) const {
    return i >= 1 && IsPunct(At(i - 1), "::") && !StdQualified(i);
  }

  // D1: std::map< / std::set< (and multi- variants) whose first template
  // argument contains a '*' at top level. Requires std:: qualification so
  // that variables named `map`/`set` never trip it.
  void CheckD1(size_t i) {
    if (!Enabled("D1")) {
      return;
    }
    const Token* t = At(i);
    if (t == nullptr || t->kind != TokKind::kIdent) {
      return;
    }
    if (t->text != "map" && t->text != "set" && t->text != "multimap" && t->text != "multiset") {
      return;
    }
    if (!StdQualified(i) || !IsPunct(At(i + 1), "<")) {
      return;
    }
    int depth = 1;
    int parens = 0;
    for (size_t j = i + 2; j < code_.size() && j < i + 202; ++j) {
      const Token* u = code_[j];
      if (u->kind != TokKind::kPunct) {
        continue;
      }
      if (u->text == "<") {
        ++depth;
      } else if (u->text == ">") {
        if (--depth == 0) {
          return;
        }
      } else if (u->text == ">>") {
        if ((depth -= 2) <= 0) {
          return;
        }
      } else if (u->text == "(") {
        ++parens;
      } else if (u->text == ")") {
        --parens;
      } else if (u->text == "," && depth == 1 && parens == 0) {
        return;  // Key type ended without a top-level '*'.
      } else if (u->text == ";" || u->text == "{") {
        return;  // Mis-parse guard (comparison, not a template).
      } else if (u->text == "*" && depth >= 1) {
        Report("D1", t->line,
               "pointer-valued key in std::" + t->text +
                   ": iteration order follows allocation addresses, which ASLR re-randomizes "
                   "every run; key by a stable id (tid, cpu, index) instead");
        return;
      }
    }
  }

  // D2: any mention of an unordered associative container. Scoped to
  // trace-affecting directories by policy.
  void CheckD2(size_t i) {
    if (!Enabled("D2")) {
      return;
    }
    const Token* t = At(i);
    if (t == nullptr || t->kind != TokKind::kIdent) {
      return;
    }
    if (t->text != "unordered_map" && t->text != "unordered_set" &&
        t->text != "unordered_multimap" && t->text != "unordered_multiset") {
      return;
    }
    if (MemberAccess(i) || ForeignQualified(i)) {
      return;
    }
    Report("D2", t->line,
           "std::" + t->text +
               " in trace-affecting code: iteration order depends on the hasher and bucket "
               "count; one leaked walk perturbs the golden trace hash — use std::map, std::set, "
               "or a sorted vector");
  }

  // D3: wall-clock, entropy, and environment reads. Simulation code gets
  // time from the virtual clock and randomness from the seeded Rng.
  void CheckD3(size_t i) {
    if (!Enabled("D3")) {
      return;
    }
    const Token* t = At(i);
    if (t == nullptr || t->kind != TokKind::kIdent || MemberAccess(i)) {
      return;
    }
    const std::string& name = t->text;
    bool distinctive = name == "random_device" || name == "steady_clock" ||
                       name == "system_clock" || name == "high_resolution_clock";
    if (distinctive) {
      // std::chrono::steady_clock arrives here qualified by `chrono`, which
      // must not count as a foreign namespace.
      bool chrono = i >= 2 && IsPunct(At(i - 1), "::") && IsIdent(At(i - 2), "chrono");
      if (ForeignQualified(i) && !chrono) {
        return;
      }
      Report("D3", t->line,
             (StdQualified(i) ? "std::" : "std::chrono::") + name +
                 ": host clock/entropy is invisible to the determinism gate; use virtual Time "
                 "(src/simkit/time.h) or the seeded Rng (src/simkit/rng.h)");
      return;
    }
    bool call_like = name == "rand" || name == "srand" || name == "drand48" || name == "time" ||
                     name == "clock" || name == "getenv" || name == "secure_getenv";
    if (!call_like || !IsPunct(At(i + 1), "(")) {
      return;
    }
    if (ForeignQualified(i)) {
      return;
    }
    // `Time time(0)` declares a variable; `return time(nullptr)` calls. An
    // identifier directly before the name means a declaration — unless it is
    // a statement keyword.
    const Token* prev = i >= 1 ? At(i - 1) : nullptr;
    if (prev != nullptr && prev->kind == TokKind::kIdent && prev->text != "return" &&
        prev->text != "case" && prev->text != "else" && prev->text != "do") {
      return;
    }
    Report("D3", t->line,
           name + "(): " +
               (name == "getenv" || name == "secure_getenv"
                    ? "environment reads make a run depend on the invoking shell"
                    : "host clock/entropy is invisible to the determinism gate") +
               "; thread configuration through flags, virtual Time, or the seeded Rng");
  }

  // D4: == / != with a floating-point literal operand. A lexical
  // approximation of "float equality in decision code": it cannot see
  // declared types, but every equality-against-literal decision is caught.
  void CheckD4(size_t i) {
    if (!Enabled("D4")) {
      return;
    }
    const Token* t = At(i);
    if (t == nullptr || t->kind != TokKind::kPunct || (t->text != "==" && t->text != "!=")) {
      return;
    }
    const Token* prev = i >= 1 ? At(i - 1) : nullptr;
    const Token* next = At(i + 1);
    bool prev_float = prev != nullptr && prev->kind == TokKind::kNumber && prev->is_float;
    bool next_float = next != nullptr && next->kind == TokKind::kNumber && next->is_float;
    if (!next_float && (IsPunct(next, "-") || IsPunct(next, "+"))) {
      const Token* after = At(i + 2);
      next_float = after != nullptr && after->kind == TokKind::kNumber && after->is_float;
    }
    if (!prev_float && !next_float) {
      return;
    }
    Report("D4", t->line,
           "floating-point " + t->text +
               " against a literal: a 1-ulp perturbation flips the comparison and, behind it, "
               "a scheduling decision; compare in integer units or against an epsilon");
  }

  // D5: std::function. Scoped by policy to the designated hot-path files.
  void CheckD5(size_t i) {
    if (!Enabled("D5")) {
      return;
    }
    const Token* t = At(i);
    if (!IsIdent(t, "function") || !StdQualified(i)) {
      return;
    }
    Report("D5", t->line,
           "std::function in a designated hot-path file: type erasure costs an indirect call "
           "and possible heap allocation per event (ROADMAP: replace with a fixed-size "
           "inline-storage callback)");
  }

  // D6: a call to one of the per-entity decayed-load accessors. Scoped by
  // policy to balancing code, where every load the balancer folds into a
  // group comparison must come through Scheduler::RqLoad / GroupStats so the
  // decay-forward memo stays the single source of truth. A direct
  // tracker.ValueAt(now) / CfsRunqueue::EntityLoad(...) there re-decays one
  // entity outside the cache: cheap-looking, O(entities) in aggregate, and a
  // bit-exactness hazard the moment its fold order diverges from LoadAt's.
  void CheckD6(size_t i) {
    if (!Enabled("D6")) {
      return;
    }
    const Token* t = At(i);
    if (t == nullptr || t->kind != TokKind::kIdent || !IsPunct(At(i + 1), "(")) {
      return;
    }
    const std::string& name = t->text;
    if (name != "ValueAt" && name != "EntityLoad" && name != "LoadAt" &&
        name != "RqLoadRecomputed") {
      return;
    }
    Report("D6", t->line,
           name + "() in balancing code bypasses the group-stats cache: group aggregates must "
                  "come from Scheduler::RqLoad / GroupStats so the decay-forward memo stays "
                  "authoritative (per-entity reads re-decay outside it and can diverge from the "
                  "cached fold)");
  }

  // D7: a .push_back( / .emplace_back( member call. Scoped by policy to
  // code that advertises an O(tasks+cpus) memory bound (the streaming
  // telemetry pipeline): there, every growth point must either write into
  // preallocated storage or carry an allow() stating the bound, because one
  // per-event append silently converts "bounded" into "O(events)" and the
  // budget check only catches it at peak, long after the author moved on.
  void CheckD7(size_t i) {
    if (!Enabled("D7")) {
      return;
    }
    const Token* t = At(i);
    if (t == nullptr || t->kind != TokKind::kIdent) {
      return;
    }
    if (t->text != "push_back" && t->text != "emplace_back") {
      return;
    }
    if (!MemberAccess(i) || !IsPunct(At(i + 1), "(")) {
      return;
    }
    Report("D7", t->line,
           t->text + "() in bounded-memory (streaming) code: growth must be provably bounded "
                     "— write into preallocated storage, or state the bound in an annotation: "
                     "allow(D7 <why the size is O(tasks+cpus), not O(events)>)");
  }

  const std::string& path_;
  const std::map<std::string, Severity>& severities_;
  std::vector<const Token*> code_;
  std::vector<Finding> findings_;
};

}  // namespace

FileLintResult LintSource(const std::string& path, std::string_view source,
                          const std::map<std::string, Severity>& severities) {
  FileLintResult result;
  LexResult lexed = Lex(source);

  std::vector<AllowSite> suppressions;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokKind::kComment) {
      ParseAllowAnnotations(t, path, &suppressions, &result.findings);
    }
  }

  Scanner scanner(path, lexed.tokens, severities);
  for (Finding& f : scanner.Run()) {
    result.findings.push_back(std::move(f));
  }
  ApplyAllows(suppressions, &result.findings);

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  for (const Finding& f : result.findings) {
    if (f.suppressed) {
      result.suppressed += 1;
    } else if (f.severity == Severity::kError) {
      result.errors += 1;
    } else if (f.severity == Severity::kWarn) {
      result.warnings += 1;
    }
  }
  return result;
}

std::string FormatFinding(const Finding& f) {
  std::string out = f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] ";
  if (f.suppressed) {
    out += "suppressed (" + f.suppress_reason + "): ";
  } else {
    out += std::string(SeverityName(f.severity)) + ": ";
  }
  out += f.message;
  return out;
}

}  // namespace wcores::lint
