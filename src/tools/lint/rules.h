// The wc-lint rule engine: determinism and scheduler-invariant checks over
// the token stream produced by lexer.h.
//
// Rule catalogue (see DESIGN.md "Static guardrails" for the rationale):
//
//   D1  pointer-valued keys in ordered containers (std::map<T*,..>,
//       std::set<T*>): iteration order is allocation-address order, which
//       ASLR re-randomizes every run — any trace-visible walk over such a
//       container breaks the golden-hash determinism contract.
//   D2  std::unordered_map / std::unordered_set in trace-affecting code:
//       bucket order depends on hasher, libstdc++ version, and seed.
//   D3  banned nondeterminism sources: rand()/srand(), std::random_device,
//       steady_clock/system_clock/high_resolution_clock, time(), clock(),
//       getenv() — simulation code must use the virtual clock and the
//       seeded Rng.
//   D4  floating-point == / != against a float literal in decision code:
//       exact-equality decisions are one ulp away from flipping.
//   D5  std::function in designated hot-path files (policy-scoped): tracks
//       the ROADMAP inline-callback item as a finding, not a failure.
//   D6  per-entity decayed-load reads (ValueAt / EntityLoad / LoadAt /
//       RqLoadRecomputed calls) in balancing code (policy-scoped): the
//       balancer must read group aggregates through the decay-forward memo
//       (Scheduler::RqLoad / GroupStats), never re-decay entities itself.
//   D7  .push_back( / .emplace_back( member calls in bounded-memory code
//       (policy-scoped to the streaming telemetry pipeline): unannotated
//       container growth is how an O(tasks+cpus) analyzer quietly becomes
//       O(events); every append must be into preallocated storage or carry
//       an allow() whose reason states the size bound.
//
// Findings are suppressed only by an inline annotation on the same line or
// the line above:   // wc-lint: allow(D3 measuring host wall time)
// The reason is mandatory; a reasonless allow() is itself an error-severity
// finding (rule SUPPRESS), so every waiver is self-documenting.
#ifndef SRC_TOOLS_LINT_RULES_H_
#define SRC_TOOLS_LINT_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "src/tools/lint/lexer.h"
#include "src/tools/lint/policy.h"

namespace wcores::lint {

struct RuleInfo {
  const char* id;
  const char* summary;
};

// All real rules (D1..D7), in report order. SUPPRESS is not listed: it is
// the meta-rule guarding the annotation grammar and cannot be configured.
const std::vector<RuleInfo>& RuleCatalog();

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
  bool suppressed = false;      // An allow() annotation covered it.
  std::string suppress_reason;  // Valid when suppressed.
};

struct FileLintResult {
  std::vector<Finding> findings;  // In line order; includes suppressed ones.
  int errors = 0;                 // Unsuppressed error-severity findings.
  int warnings = 0;               // Unsuppressed warn-severity findings.
  int suppressed = 0;
};

// One parsed `allow(RULE reason)` clause. Covers findings on its own line
// (trailing style) and on the next line (leading style) — the semantics both
// wc-lint and wc-analyze apply.
struct AllowSite {
  int line = 0;
  std::string rule;
  std::string reason;
};

// Scans one comment token for the wc-lint annotation marker and its allow
// clauses. Well-formed clauses land in `out`; malformed ones (no rule, no
// reason, unclosed paren) become error-severity SUPPRESS findings when
// `findings` is non-null. Shared by the token-level linter and wc-analyze so
// the two tools agree on the suppression grammar.
void ParseAllowAnnotations(const Token& comment, const std::string& path,
                           std::vector<AllowSite>* out, std::vector<Finding>* findings);

// Marks findings covered by an allow of the same rule on the same line or
// the line above as suppressed, copying the reason.
void ApplyAllows(const std::vector<AllowSite>& allows, std::vector<Finding>* findings);

// Lints one in-memory source. `severities` maps rule id -> severity for this
// file (see policy.h); rules absent from the map default to off.
FileLintResult LintSource(const std::string& path, std::string_view source,
                          const std::map<std::string, Severity>& severities);

// "path:line: [RULE] severity: message" — the format the golden test pins.
std::string FormatFinding(const Finding& f);

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_RULES_H_
