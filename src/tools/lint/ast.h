// A lightweight declaration/definition parser on top of the wc-lint lexer.
//
// This is deliberately not a C++ front end: no preprocessor, no overload
// resolution, no types. It recovers exactly the structure the
// interprocedural rules (flow_rules.h) need —
//
//   - class/struct definitions with their base classes, member access
//     levels (public/protected/private sections), and friend declarations,
//   - function definitions with their owning class (in-class bodies and
//     out-of-line `Cls::Fn` definitions both), and
//   - per-body facts: call sites (with qualifier / member-object context),
//     non-call member accesses, operator-new expressions, and
//     pointer-to-integer casts
//
// — and nothing else. Everything it cannot classify it skips statement-wise
// (to the next `;` or balanced brace), so an exotic construct degrades into
// a missing edge, never a desynced parse. The golden self-application test
// over src/ + bench/ is the regression net for that claim.
#ifndef SRC_TOOLS_LINT_AST_H_
#define SRC_TOOLS_LINT_AST_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/tools/lint/rules.h"

namespace wcores::lint {

enum class Access { kPublic, kProtected, kPrivate };

const char* AccessName(Access a);

// One call site inside a function body: `f(...)`, `Cls::f(...)`,
// `obj.f(...)`, `obj->f(...)`.
struct CallSite {
  std::string callee;       // Unqualified name ("PickNext", "operator<").
  std::string qualifier;    // Innermost explicit qualifier: "Cls" in Cls::f.
  bool via_member = false;  // obj.f / obj->f / this->f.
  std::string object;       // The identifier before . / -> when it is one
                            // ("sched_", "tree_", "this"); "" for complex
                            // expressions like a[i].f().
  int line = 0;
};

// A member access that is not a call: obj.field / obj->field.
struct FieldUse {
  std::string object;
  std::string field;
  int line = 0;
};

// Non-call body facts the flow rules care about.
enum class BodyOpKind {
  kNewExpr,     // operator-new expression
  kPtrIntCast,  // reinterpret_cast (or C-style cast) of a value to an
                // integer type, or std::hash over a pointer type: the
                // pointer-as-integer nondeterminism source of rule A1
};

struct BodyOp {
  BodyOpKind kind;
  int line = 0;
  std::string detail;  // The spelled cast target / hashed type.
};

struct FunctionDef {
  std::string name;  // "PickNext", "operator()", "~Foo".
  // Owning class. Set directly for in-class bodies; for out-of-line
  // definitions SymbolTable::Finalize resolves it from qualifier_chain
  // (the last element naming a known class wins; pure namespace qualifiers
  // leave it empty).
  std::string cls;
  std::vector<std::string> qualifier_chain;  // As written: {"Scheduler"}.
  std::string file;
  int line = 0;
  bool has_body = false;  // Declarations are recorded for access maps only.
  std::vector<CallSite> calls;
  std::vector<FieldUse> field_uses;
  std::vector<BodyOp> ops;
};

struct MemberInfo {
  Access access = Access::kPublic;
  bool is_function = false;
  int line = 0;
};

struct ClassInfo {
  std::string name;  // Unqualified; nested classes are recorded flat.
  std::string file;
  int line = 0;
  bool is_struct = false;
  std::vector<std::string> bases;  // Unqualified base-class names.
  // Declared methods and fields by name. Overloads collapse into one entry
  // (first declaration wins), which is enough for access checking.
  std::map<std::string, MemberInfo> members;
  // Befriended class/function names. Recorded so tooling can surface them;
  // the A3 confinement rule deliberately does NOT model friendship — a
  // friend backdoor into mechanism state is exactly what it must flag.
  std::vector<std::string> friends;
};

struct TranslationUnit {
  std::string file;
  std::vector<FunctionDef> functions;
  std::vector<ClassInfo> classes;
  std::vector<AllowSite> allows;     // wc-lint allow() annotations.
  std::vector<std::string> errors;   // Lexer diagnostics, non-fatal.
};

// Parses one source file. Never fails: unparseable regions are skipped and
// reported in `errors`.
TranslationUnit ParseUnit(const std::string& file, std::string_view source);

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_AST_H_
