// Per-directory severity policy for wc-lint rules.
//
// A `.wc-lint.policy` file in a directory applies to every source file in it
// and below. Policies nest: the chain is built from the lint root down to the
// file's directory, and the innermost file that mentions a rule wins. Within
// one file, later lines override earlier ones.
//
// Grammar (one directive per line, '#' starts a comment):
//
//   RULE  error|warn|off  [basename-glob]
//
// The optional glob (with '*' wildcards, matched against the file's basename)
// scopes a directive to specific files — that is how "designated hot-path
// files" are expressed for D5, e.g.:
//
//   D5 warn event_queue.h
#ifndef SRC_TOOLS_LINT_POLICY_H_
#define SRC_TOOLS_LINT_POLICY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wcores::lint {

enum class Severity { kOff, kWarn, kError };

const char* SeverityName(Severity s);

struct PolicyDirective {
  std::string rule;
  Severity severity = Severity::kOff;
  std::string file_glob;  // Empty = all files.
};

struct Policy {
  std::vector<PolicyDirective> directives;
  std::vector<std::string> errors;  // Parse diagnostics, "line N: ...".
};

// Parses policy text. Unknown severities and malformed lines are reported in
// `errors` and skipped; the rest of the file still applies.
Policy ParsePolicy(std::string_view text);

// '*'-only glob match against a file basename.
bool GlobMatch(std::string_view glob, std::string_view name);

// Severity for each rule id, for a file named `basename`, under the policy
// chain `outer_to_inner` (front = lint root, back = file's own directory).
// Rules not mentioned anywhere fall back to `defaults`.
std::map<std::string, Severity> ResolveSeverities(
    const std::vector<const Policy*>& outer_to_inner,
    const std::map<std::string, Severity>& defaults, const std::string& basename);

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_POLICY_H_
