#include "src/tools/lint/policy.h"

#include <sstream>

namespace wcores::lint {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kOff:
      return "off";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "?";
}

namespace {

std::optional<Severity> ParseSeverity(std::string_view word) {
  if (word == "off") {
    return Severity::kOff;
  }
  if (word == "warn") {
    return Severity::kWarn;
  }
  if (word == "error") {
    return Severity::kError;
  }
  return std::nullopt;
}

}  // namespace

Policy ParsePolicy(std::string_view text) {
  Policy policy;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string rule, sev_word, glob, extra;
    if (!(fields >> rule)) {
      continue;  // Blank / comment-only line.
    }
    if (!(fields >> sev_word)) {
      policy.errors.push_back("line " + std::to_string(lineno) + ": missing severity for " + rule);
      continue;
    }
    std::optional<Severity> sev = ParseSeverity(sev_word);
    if (!sev) {
      policy.errors.push_back("line " + std::to_string(lineno) + ": unknown severity '" +
                              sev_word + "' (want error|warn|off)");
      continue;
    }
    fields >> glob;
    if (fields >> extra) {
      policy.errors.push_back("line " + std::to_string(lineno) + ": trailing junk '" + extra + "'");
      continue;
    }
    policy.directives.push_back(PolicyDirective{rule, *sev, glob});
  }
  return policy;
}

bool GlobMatch(std::string_view glob, std::string_view name) {
  // Iterative '*' matcher with backtracking; no other metacharacters.
  size_t g = 0, n = 0, star = std::string_view::npos, mark = 0;
  while (n < name.size()) {
    if (g < glob.size() && (glob[g] == name[n])) {
      ++g;
      ++n;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = n;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') {
    ++g;
  }
  return g == glob.size();
}

std::map<std::string, Severity> ResolveSeverities(
    const std::vector<const Policy*>& outer_to_inner,
    const std::map<std::string, Severity>& defaults, const std::string& basename) {
  std::map<std::string, Severity> out = defaults;
  for (const Policy* p : outer_to_inner) {
    for (const PolicyDirective& d : p->directives) {
      if (!d.file_glob.empty() && !GlobMatch(d.file_glob, basename)) {
        continue;
      }
      out[d.rule] = d.severity;
    }
  }
  return out;
}

}  // namespace wcores::lint
