#include "src/tools/lint/lexer.h"

#include <cctype>

namespace wcores::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Cursor over the source with line tracking.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }
  bool Match(char c) {
    if (Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  size_t pos() const { return pos_; }
  int line() const { return line_; }
  std::string_view Slice(size_t from) const { return src_.substr(from, pos_ - from); }

 private:
  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

// Raw-string literal prefixes, checked when an identifier is immediately
// followed by a double quote.
bool IsRawPrefix(std::string_view ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" || ident == "u8R";
}
// Ordinary string/char prefixes (u8"x", L'c', ...).
bool IsStringPrefix(std::string_view ident) {
  return ident == "L" || ident == "u" || ident == "U" || ident == "u8";
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : cur_(src) {}

  LexResult Run() {
    while (!cur_.AtEnd()) {
      LexOne();
    }
    return std::move(result_);
  }

 private:
  void Emit(TokKind kind, size_t start, int line, bool is_float = false) {
    result_.tokens.push_back(Token{kind, std::string(cur_.Slice(start)), line, is_float});
  }

  void Error(int line, const std::string& what) {
    result_.errors.push_back("line " + std::to_string(line) + ": " + what);
  }

  void LexOne() {
    char c = cur_.Peek();
    if (c == '\n') {
      at_line_start_ = true;
      cur_.Advance();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur_.Advance();
      return;
    }
    if (c == '#' && at_line_start_) {
      LexPreproc();
      return;
    }
    at_line_start_ = false;
    if (c == '/' && (cur_.Peek(1) == '/' || cur_.Peek(1) == '*')) {
      LexComment();
      return;
    }
    if (IsIdentStart(c)) {
      LexIdentOrPrefixedString();
      return;
    }
    if (IsDigit(c) || (c == '.' && IsDigit(cur_.Peek(1)))) {
      LexNumber();
      return;
    }
    if (c == '"') {
      LexString('"');
      return;
    }
    if (c == '\'') {
      LexString('\'');
      return;
    }
    if (c == '[' && cur_.Peek(1) == '[') {
      LexAttribute();
      return;
    }
    LexPunct();
  }

  // [[attr]] / [[ns::attr(args)]] as a single token. Attribute arguments may
  // contain string literals (e.g. [[deprecated("why")]]) whose brackets must
  // not count toward nesting.
  void LexAttribute() {
    size_t start = cur_.pos();
    int line = cur_.line();
    cur_.Advance();  // '['
    cur_.Advance();  // '['
    int depth = 2;
    while (!cur_.AtEnd() && depth > 0) {
      char c = cur_.Peek();
      if (c == '"' || c == '\'') {
        char quote = c;
        cur_.Advance();
        while (!cur_.AtEnd()) {
          char d = cur_.Advance();
          if (d == '\\' && !cur_.AtEnd()) {
            cur_.Advance();
            continue;
          }
          if (d == quote || d == '\n') {
            break;
          }
        }
        continue;
      }
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
      }
      cur_.Advance();
    }
    if (depth > 0) {
      Error(line, "unterminated [[attribute]]");
    }
    Emit(TokKind::kAttribute, start, line);
  }

  // A whole preprocessor logical line, backslash continuations included.
  void LexPreproc() {
    size_t start = cur_.pos();
    int line = cur_.line();
    while (!cur_.AtEnd()) {
      char c = cur_.Peek();
      if (c == '\\' && cur_.Peek(1) == '\n') {
        cur_.Advance();
        cur_.Advance();
        continue;
      }
      if (c == '\n') {
        break;
      }
      cur_.Advance();
    }
    Emit(TokKind::kPreproc, start, line);
    at_line_start_ = true;
  }

  void LexComment() {
    size_t start = cur_.pos();
    int line = cur_.line();
    cur_.Advance();  // '/'
    if (cur_.Advance() == '/') {
      while (!cur_.AtEnd() && cur_.Peek() != '\n') {
        cur_.Advance();
      }
    } else {
      bool closed = false;
      while (!cur_.AtEnd()) {
        if (cur_.Peek() == '*' && cur_.Peek(1) == '/') {
          cur_.Advance();
          cur_.Advance();
          closed = true;
          break;
        }
        cur_.Advance();
      }
      if (!closed) {
        Error(line, "unterminated block comment");
      }
    }
    Emit(TokKind::kComment, start, line);
  }

  void LexIdentOrPrefixedString() {
    size_t start = cur_.pos();
    int line = cur_.line();
    while (IsIdentCont(cur_.Peek())) {
      cur_.Advance();
    }
    std::string_view ident = cur_.Slice(start);
    if (cur_.Peek() == '"' && IsRawPrefix(ident)) {
      LexRawStringBody(start, line);
      return;
    }
    if ((cur_.Peek() == '"' || cur_.Peek() == '\'') && IsStringPrefix(ident)) {
      LexStringBody(start, line, cur_.Peek());
      return;
    }
    Emit(TokKind::kIdent, start, line);
  }

  void LexString(char quote) { LexStringBody(cur_.pos(), cur_.line(), quote); }

  void LexStringBody(size_t start, int line, char quote) {
    cur_.Advance();  // opening quote
    bool closed = false;
    while (!cur_.AtEnd()) {
      char c = cur_.Peek();
      if (c == '\\' && cur_.Peek(1) != '\0') {
        cur_.Advance();
        cur_.Advance();
        continue;
      }
      if (c == '\n') {
        break;  // Unterminated on this line; don't swallow the file.
      }
      cur_.Advance();
      if (c == quote) {
        closed = true;
        break;
      }
    }
    if (!closed) {
      Error(line, "unterminated literal");
    }
    Emit(TokKind::kString, start, line);
  }

  // R"delim( ... )delim" — no escapes inside, may span lines.
  void LexRawStringBody(size_t start, int line) {
    cur_.Advance();  // '"'
    std::string delim;
    while (!cur_.AtEnd() && cur_.Peek() != '(' && cur_.Peek() != '\n') {
      delim.push_back(cur_.Advance());
    }
    if (!cur_.Match('(')) {
      Error(line, "malformed raw string delimiter");
      Emit(TokKind::kString, start, line);
      return;
    }
    std::string closer = ")" + delim + "\"";
    size_t matched = 0;
    bool closed = false;
    while (!cur_.AtEnd()) {
      char c = cur_.Advance();
      matched = (c == closer[matched]) ? matched + 1 : (c == closer[0] ? 1 : 0);
      if (matched == closer.size()) {
        closed = true;
        break;
      }
    }
    if (!closed) {
      Error(line, "unterminated raw string");
    }
    Emit(TokKind::kString, start, line);
  }

  // C++ pp-number: [.]digit then [alnum _ . '] with +/- allowed after an
  // exponent letter. Also classifies floats for the D4 heuristic.
  void LexNumber() {
    size_t start = cur_.pos();
    int line = cur_.line();
    bool hex = cur_.Peek() == '0' && (cur_.Peek(1) == 'x' || cur_.Peek(1) == 'X');
    bool is_float = false;
    while (!cur_.AtEnd()) {
      char c = cur_.Peek();
      if (c == '.') {
        is_float = true;
        cur_.Advance();
        continue;
      }
      if ((c == 'e' || c == 'E') && !hex && (cur_.Peek(1) == '+' || cur_.Peek(1) == '-')) {
        is_float = true;
        cur_.Advance();
        cur_.Advance();
        continue;
      }
      if ((c == 'p' || c == 'P') && hex) {
        is_float = true;
        cur_.Advance();
        if (cur_.Peek() == '+' || cur_.Peek() == '-') {
          cur_.Advance();
        }
        continue;
      }
      if (c == '\'' && IsIdentCont(cur_.Peek(1))) {  // digit separator
        cur_.Advance();
        continue;
      }
      if (IsIdentCont(c)) {
        // A decimal float exponent without a sign (1e9) lands here too.
        if ((c == 'e' || c == 'E') && !hex) {
          is_float = true;
        }
        cur_.Advance();
        continue;
      }
      break;
    }
    Emit(TokKind::kNumber, start, line, is_float);
  }

  void LexPunct() {
    static constexpr std::string_view kThree[] = {"<<=", ">>=", "...", "->*"};
    static constexpr std::string_view kTwo[] = {"::", "->", "==", "!=", "<=", ">=", "&&",
                                                "||", "<<", ">>", "+=", "-=", "*=", "/=",
                                                "%=", "&=", "|=", "^=", "++", "--"};
    size_t start = cur_.pos();
    int line = cur_.line();
    char a = cur_.Peek(0);
    char b = cur_.Peek(1);
    char c = cur_.Peek(2);
    std::string three{a, b, c};
    std::string two{a, b};
    bool took = false;
    for (std::string_view t : kThree) {
      if (three == t) {
        cur_.Advance();
        cur_.Advance();
        cur_.Advance();
        took = true;
        break;
      }
    }
    if (!took) {
      for (std::string_view t : kTwo) {
        if (two == t) {
          cur_.Advance();
          cur_.Advance();
          took = true;
          break;
        }
      }
    }
    if (!took) {
      cur_.Advance();
    }
    Emit(TokKind::kPunct, start, line);
  }

  Cursor cur_;
  LexResult result_;
  bool at_line_start_ = true;
};

}  // namespace

LexResult Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace wcores::lint
