// Cross-TU symbol table for wc-analyze.
//
// Merges every parsed TranslationUnit into one view: classes by name,
// function definitions indexed for call resolution, and the inheritance
// relation needed by the access-confinement rule (A3). Names are
// unqualified — the tree under analysis has no same-name class collisions,
// and collapsing namespaces keeps resolution trivially fast.
#ifndef SRC_TOOLS_LINT_SYMTAB_H_
#define SRC_TOOLS_LINT_SYMTAB_H_

#include <map>
#include <string>
#include <vector>

#include "src/tools/lint/ast.h"

namespace wcores::lint {

// A function definition plus where it came from. `id` is stable across the
// table's lifetime and indexes CallGraph nodes.
struct FnRef {
  const FunctionDef* def = nullptr;
  const TranslationUnit* tu = nullptr;
  int id = 0;
};

class SymbolTable {
 public:
  // Takes ownership of the unit. No more adds after Finalize().
  void AddUnit(TranslationUnit unit);

  // Resolves out-of-line definitions to their owning class (the last
  // qualifier naming a known class wins) and builds the name indexes.
  void Finalize();

  const std::vector<TranslationUnit>& units() const { return units_; }
  const std::vector<FnRef>& functions() const { return fns_; }

  const ClassInfo* FindClass(const std::string& name) const;

  // True when `cls` is `base` or transitively derives from it (reflexive).
  bool DerivesFrom(const std::string& cls, const std::string& base) const;

  // Looks `member` up in `cls` and its bases; on success optionally reports
  // which class declared it. Returns nullptr when unknown.
  const MemberInfo* FindMember(const std::string& cls, const std::string& member,
                               std::string* found_in = nullptr) const;

  // All method definitions with this (unqualified) name, any class.
  std::vector<const FnRef*> MethodsNamed(const std::string& name) const;
  // All free-function definitions with this name.
  std::vector<const FnRef*> FreeFunctionsNamed(const std::string& name) const;

  // "Cls::Fn" or "Fn" — the id format AnalyzeConfig roots use.
  static std::string IdOf(const FunctionDef& def);

 private:
  bool finalized_ = false;
  std::vector<TranslationUnit> units_;
  std::vector<FnRef> fns_;
  std::map<std::string, const ClassInfo*> classes_;
  std::map<std::string, std::vector<int>> methods_by_name_;
  std::map<std::string, std::vector<int>> free_by_name_;
};

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_SYMTAB_H_
