#include "src/tools/lint/driver.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace wcores::lint {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string ReadFileToString(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

void CollectFiles(const fs::path& p, std::vector<fs::path>* out,
                  std::vector<std::string>* errors) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<fs::path> entries;
    for (const fs::directory_entry& e : fs::directory_iterator(p, ec)) {
      entries.push_back(e.path());
    }
    if (ec) {
      errors->push_back(p.string() + ": " + ec.message());
      return;
    }
    // directory_iterator order is unspecified; sort so diagnostics, reports,
    // and the golden tests are stable (the linters practice what D1/D2
    // preach).
    std::sort(entries.begin(), entries.end());
    for (const fs::path& e : entries) {
      if (fs::is_directory(e, ec)) {
        CollectFiles(e, out, errors);
      } else if (HasSourceExtension(e)) {
        out->push_back(e);
      }
    }
    return;
  }
  if (fs::exists(p, ec)) {
    out->push_back(p);
  } else {
    errors->push_back(p.string() + ": no such file or directory");
  }
}

const Policy* PolicyCache::ForDirectory(const fs::path& dir, std::vector<std::string>* errors) {
  std::string key = dir.string();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    return it->second.has_value() ? &*it->second : nullptr;
  }
  std::optional<Policy> loaded;
  fs::path file = dir / kPolicyFileName;
  std::error_code ec;
  if (fs::exists(file, ec)) {
    bool ok = false;
    std::string text = ReadFileToString(file, &ok);
    if (ok) {
      loaded = ParsePolicy(text);
      for (const std::string& e : loaded->errors) {
        errors->push_back(file.string() + ": " + e);
      }
    } else {
      errors->push_back(file.string() + ": unreadable");
    }
  }
  auto [pos, _] = cache_.emplace(std::move(key), std::move(loaded));
  return pos->second.has_value() ? &*pos->second : nullptr;
}

std::vector<const Policy*> PolicyChainFor(const fs::path& file, const fs::path& root,
                                          PolicyCache* cache,
                                          std::vector<std::string>* errors) {
  std::vector<fs::path> dirs;
  fs::path dir = fs::absolute(file).lexically_normal().parent_path();
  fs::path stop = fs::absolute(root).lexically_normal();
  for (;;) {
    dirs.push_back(dir);
    if (dir == stop || dir == dir.parent_path()) {
      break;
    }
    dir = dir.parent_path();
  }
  std::vector<const Policy*> chain;
  for (auto it = dirs.rbegin(); it != dirs.rend(); ++it) {
    if (const Policy* p = cache->ForDirectory(*it, errors)) {
      chain.push_back(p);
    }
  }
  return chain;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteSarifReport(const std::string& path, const std::string& tool_name,
                      const std::vector<RuleInfo>& rules, const std::vector<Finding>& findings,
                      bool with_schema) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << "{\n";
  if (with_schema) {
    out << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  }
  out << "  \"version\": \"2.1.0\",\n  \"runs\": [{\n";
  out << "    \"tool\": {\"driver\": {\"name\": \"" << tool_name << "\", \"rules\": [\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "      {\"id\": \"" << rules[i].id << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "    ]}},\n    \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << f.rule << "\", \"level\": \""
        << (f.severity == Severity::kError ? "error" : "warning") << "\", "
        << "\"message\": {\"text\": \"" << JsonEscape(f.message) << "\"}, "
        << "\"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]";
    if (f.suppressed) {
      out << ", \"suppressions\": [{\"kind\": \"inSource\", \"justification\": \""
          << JsonEscape(f.suppress_reason) << "\"}]";
    }
    out << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }]\n}\n";
  return out.good();
}

}  // namespace wcores::lint
