// A small, dependency-free C++ tokenizer for wc-lint.
//
// This is not a compiler front end: it has no preprocessor, no symbol table,
// and no types. It only needs to be exact about the four things that make
// naive regex linting wrong — comments, string literals (including raw
// strings), character literals, and preprocessor lines — so that rules never
// fire on quoted or commented text, and suppression annotations are read
// from real comments only.
#ifndef SRC_TOOLS_LINT_LEXER_H_
#define SRC_TOOLS_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace wcores::lint {

enum class TokKind {
  kIdent,      // identifiers and keywords
  kNumber,     // pp-numbers: 123, 0x1f, 1.5e3, 0x1.0p-53, 1'000'000
  kString,     // "..."  '...'  R"tag(...)tag"  (prefix included in text)
  kPunct,      // operators and punctuation, longest-match up to 3 chars
  kComment,    // // ... and /* ... */, text includes the delimiters
  kPreproc,    // a whole preprocessor logical line, continuations included
  kAttribute,  // [[...]] as one token, so attributes never desync
               // token-offset-based rules or the declaration parser
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;           // 1-based line of the token's first character.
  bool is_float = false;  // kNumber only: has '.', decimal e/E, or hex p/P.
};

struct LexResult {
  std::vector<Token> tokens;
  // Malformed input (unterminated string/comment). The tokens produced up
  // to that point are still usable; linting continues.
  std::vector<std::string> errors;
};

LexResult Lex(std::string_view source);

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_LEXER_H_
