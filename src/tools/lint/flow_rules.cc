#include "src/tools/lint/flow_rules.h"

#include <algorithm>
#include <set>

namespace wcores::lint {

namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// All findings are produced through this gate: a rule that is off (or not
// mentioned) for the file produces nothing.
class Emitter {
 public:
  Emitter(const std::map<std::string, std::map<std::string, Severity>>& severities_for,
          std::map<std::string, std::vector<Finding>>* by_file)
      : severities_for_(severities_for), by_file_(by_file) {}

  void Emit(const std::string& file, int line, const std::string& rule,
            const std::string& message) {
    auto fit = severities_for_.find(file);
    if (fit == severities_for_.end()) {
      return;
    }
    auto rit = fit->second.find(rule);
    if (rit == fit->second.end() || rit->second == Severity::kOff) {
      return;
    }
    Finding f;
    f.file = file;
    f.line = line;
    f.rule = rule;
    f.severity = rit->second;
    f.message = message;
    // Reachability rules can derive the same fact along several call chains;
    // report each (file, line, rule) once.
    for (const Finding& prev : (*by_file_)[file]) {
      if (prev.line == line && prev.rule == rule) {
        return;
      }
    }
    (*by_file_)[file].push_back(std::move(f));
  }

 private:
  const std::map<std::string, std::map<std::string, Severity>>& severities_for_;
  std::map<std::string, std::vector<Finding>>* by_file_;
};

// Resolves "Cls::Fn" / "Fn" id strings to node ids.
class IdIndex {
 public:
  explicit IdIndex(const SymbolTable& syms) {
    for (const FnRef& r : syms.functions()) {
      ids_[SymbolTable::IdOf(*r.def)].push_back(r.id);
    }
  }
  void AppendNamed(const std::vector<std::string>& names, std::vector<int>* out) const {
    for (const std::string& n : names) {
      auto it = ids_.find(n);
      if (it != ids_.end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
      }
    }
  }

 private:
  std::map<std::string, std::vector<int>> ids_;
};

// Classes deriving (reflexively) from the policy base.
std::set<std::string> PolicyClasses(const SymbolTable& syms, const AnalyzeConfig& cfg) {
  std::set<std::string> out;
  for (const TranslationUnit& tu : syms.units()) {
    for (const ClassInfo& c : tu.classes) {
      if (syms.DerivesFrom(c.name, cfg.policy_base)) {
        out.insert(c.name);
      }
    }
  }
  return out;
}

// Node ids of policy-class methods whose name is in `hooks`.
std::vector<int> PolicyHookNodes(const SymbolTable& syms, const std::set<std::string>& policy,
                                 const std::vector<std::string>& hooks) {
  std::vector<int> out;
  for (const FnRef& r : syms.functions()) {
    if (!r.def->cls.empty() && policy.count(r.def->cls) != 0 && Contains(hooks, r.def->name)) {
      out.push_back(r.id);
    }
  }
  return out;
}

// ---- A1: nondeterminism taint ---------------------------------------------

void RunA1(const SymbolTable& syms, const CallGraph& graph, const AnalyzeConfig& cfg,
           Emitter* emit) {
  std::vector<int> sinks;
  for (const FnRef& r : syms.functions()) {
    if (Contains(cfg.sink_methods, r.def->name)) {
      sinks.push_back(r.id);
    }
  }
  // T: functions from which a sink is reachable (the trace-affecting set).
  Reach to_sink = graph.Backward(sinks);
  // E: everything a trace-affecting function (transitively) calls — a source
  // there can feed values back up into the fold even though the callee
  // itself never calls the sink.
  std::vector<int> t_nodes;
  for (int i = 0; i < graph.NodeCount(); ++i) {
    if (to_sink.in_set[i]) {
      t_nodes.push_back(i);
    }
  }
  Reach from_t = graph.Forward(t_nodes);

  for (const FnRef& r : syms.functions()) {
    int id = r.id;
    bool in_t = to_sink.in_set[id];
    bool in_e = from_t.in_set[id];
    if (!in_t && !in_e) {
      continue;
    }
    const std::string& file = r.def->file;
    auto describe = [&](const std::string& what, int line) {
      std::string msg = what;
      if (in_t) {
        msg += " in trace-affecting code (reaches sink via " + graph.Chain(to_sink, id) + ")";
      } else {
        msg += " in code called from trace-affecting functions (" + graph.Chain(from_t, id) +
               " reaches here)";
      }
      emit->Emit(file, line, "A1", msg);
    };
    for (const CallSite& cs : r.def->calls) {
      if (!cs.via_member && Contains(cfg.source_calls, cs.callee) &&
          (cs.qualifier.empty() || cs.qualifier == "std")) {
        describe("nondeterminism source " + cs.callee + "()", cs.line);
      }
      if (Contains(cfg.source_types, cs.callee) || Contains(cfg.source_types, cs.qualifier)) {
        describe("nondeterminism source " +
                     (Contains(cfg.source_types, cs.qualifier) ? cs.qualifier : cs.callee),
                 cs.line);
      }
    }
    for (const BodyOp& op : r.def->ops) {
      if (op.kind == BodyOpKind::kPtrIntCast) {
        describe("pointer-as-integer (" + op.detail + ")", op.line);
      }
    }
  }
}

// ---- A2: hot-path allocation ----------------------------------------------

void RunA2(const SymbolTable& syms, const CallGraph& graph, const Reach& hot,
           const AnalyzeConfig& cfg, Emitter* emit) {
  for (const FnRef& r : syms.functions()) {
    if (!hot.in_set[r.id]) {
      continue;
    }
    const std::string chain = graph.Chain(hot, r.id);
    for (const BodyOp& op : r.def->ops) {
      if (op.kind == BodyOpKind::kNewExpr) {
        emit->Emit(r.def->file, op.line, "A2",
                   "heap allocation on the hot path (" + chain + ")");
      }
    }
    for (const CallSite& cs : r.def->calls) {
      if (!cs.via_member && Contains(cfg.alloc_calls, cs.callee)) {
        emit->Emit(r.def->file, cs.line, "A2",
                   cs.callee + "() on the hot path (" + chain + ")");
      }
      if (cs.via_member && Contains(cfg.growth_methods, cs.callee)) {
        emit->Emit(r.def->file, cs.line, "A2",
                   "container growth ." + cs.callee + "() on the hot path (" + chain + ")");
      }
    }
  }
}

// ---- A3: policy confinement -----------------------------------------------

void RunA3(const SymbolTable& syms, const CallGraph& graph, const AnalyzeConfig& cfg,
           const std::set<std::string>& policy, Emitter* emit) {
  // Policy world: every policy-class method, plus the non-mechanism helpers
  // they (transitively) call. Traversal stops AT mechanism-class methods —
  // crossing that boundary is what gets access-checked.
  std::set<std::string> mech(cfg.mechanism_classes.begin(), cfg.mechanism_classes.end());
  std::vector<int> world;
  std::vector<bool> in_world(graph.NodeCount(), false);
  for (const FnRef& r : syms.functions()) {
    if (!r.def->cls.empty() && policy.count(r.def->cls) != 0 && !in_world[r.id]) {
      in_world[r.id] = true;
      world.push_back(r.id);
    }
  }
  for (size_t w = 0; w < world.size(); ++w) {
    for (const Edge& e : graph.EdgesFrom(world[w])) {
      const FunctionDef& callee = *syms.functions()[e.to].def;
      if (mech.count(callee.cls) != 0) {
        continue;  // Boundary: checked below, not traversed.
      }
      if (!in_world[e.to]) {
        in_world[e.to] = true;
        world.push_back(e.to);
      }
    }
  }

  for (int id : world) {
    const FnRef& r = syms.functions()[id];
    const std::string& file = r.def->file;
    // Member/qualified calls that name a mechanism member: check access
    // against the declaration, not edge resolution — a declared-but-inline
    // method may have no graph node, and must still be confined.
    for (const CallSite& cs : r.def->calls) {
      // The policy's own member of the same name shadows the mechanism one.
      if (!r.def->cls.empty() && syms.FindMember(r.def->cls, cs.callee) != nullptr) {
        continue;
      }
      for (const std::string& m : cfg.mechanism_classes) {
        if (!cs.qualifier.empty() && cs.qualifier != m) {
          continue;  // Explicitly qualified with some other class.
        }
        if (cs.qualifier.empty() && !cs.via_member) {
          continue;  // Plain call: a free helper, not a mechanism member.
        }
        std::string found_in;
        const MemberInfo* mi = syms.FindMember(m, cs.callee, &found_in);
        if (mi != nullptr && mi->access != Access::kPublic) {
          emit->Emit(file, cs.line, "A3",
                     "policy code calls " + std::string(AccessName(mi->access)) +
                         " mechanism member " + found_in + "::" + cs.callee +
                         " (via " + SymbolTable::IdOf(*r.def) +
                         "); use the public Scheduler::Cfs* API");
          break;
        }
      }
    }
    // Direct reads/writes of non-public mechanism fields.
    for (const FieldUse& fu : r.def->field_uses) {
      if (!r.def->cls.empty() && syms.FindMember(r.def->cls, fu.field) != nullptr) {
        continue;  // The policy's own field.
      }
      for (const std::string& m : cfg.mechanism_classes) {
        std::string found_in;
        const MemberInfo* mi = syms.FindMember(m, fu.field, &found_in);
        if (mi != nullptr && !mi->is_function && mi->access != Access::kPublic) {
          emit->Emit(file, fu.line, "A3",
                     "policy code touches " + std::string(AccessName(mi->access)) +
                         " mechanism field " + found_in + "::" + fu.field + " (via " +
                         SymbolTable::IdOf(*r.def) + ")");
          break;
        }
      }
    }
  }
}

// ---- A4: fold-order-sensitive float accumulation --------------------------

void RunA4(const SymbolTable& syms, const CallGraph& graph, const Reach& balance,
           const AnalyzeConfig& cfg, Emitter* emit) {
  for (const FnRef& r : syms.functions()) {
    if (!balance.in_set[r.id]) {
      continue;
    }
    const std::string chain = graph.Chain(balance, r.id);
    bool bumps = false;
    for (const CallSite& cs : r.def->calls) {
      if (cs.callee == cfg.fold_version_bump) {
        bumps = true;
      }
    }
    for (const CallSite& cs : r.def->calls) {
      if (Contains(cfg.entity_load_calls, cs.callee)) {
        emit->Emit(r.def->file, cs.line, "A4",
                   "per-entity decayed-load read " + cs.callee +
                       "() reachable from balancing (" + chain +
                       "); read group aggregates through the decay-forward memo");
      }
      // An rq-tree mutation in balance-reachable code with no load-version
      // bump anywhere in the same body permutes the memoized float fold
      // order without re-keying the memo — the PickSpecific bug class.
      if (!bumps && cs.via_member && Contains(cfg.fold_tree_objects, cs.object) &&
          Contains(cfg.fold_mutators, cs.callee)) {
        emit->Emit(r.def->file, cs.line, "A4",
                   cs.object + "." + cs.callee + "() in balance-reachable " +
                       SymbolTable::IdOf(*r.def) + " without a " + cfg.fold_version_bump +
                       "() in the same body: fold order can change under the memo");
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& AnalyzeRuleCatalog() {
  static const std::vector<RuleInfo> kRules = {
      {"A1", "nondeterminism source can reach a trace sink (interprocedural D3)"},
      {"A2", "heap allocation / container growth reachable from the event-dispatch hot path"},
      {"A3", "policy code reaches mechanism internals bypassing the public API"},
      {"A4", "fold-order-sensitive float accumulation reachable from balancing"},
  };
  return kRules;
}

AnalyzeResult RunAnalysis(const SymbolTable& syms, const CallGraph& graph,
                          const AnalyzeConfig& config,
                          const std::map<std::string, std::map<std::string, Severity>>&
                              severities_for) {
  AnalyzeResult result;
  result.functions = static_cast<int>(syms.functions().size());

  std::map<std::string, std::vector<Finding>> by_file;
  Emitter emit(severities_for, &by_file);
  IdIndex ids(syms);
  std::set<std::string> policy = PolicyClasses(syms, config);

  // Hot set: dispatch roots + policy hooks (invoked from dispatch).
  std::vector<int> hot_roots;
  ids.AppendNamed(config.hot_root_ids, &hot_roots);
  for (int id : PolicyHookNodes(syms, policy, config.policy_hooks)) {
    hot_roots.push_back(id);
  }
  Reach hot = graph.Forward(hot_roots);
  for (int i = 0; i < graph.NodeCount(); ++i) {
    if (hot.in_set[i]) {
      ++result.hot_reachable;
    }
  }

  // Balance set: balancing entry points + balance-deciding policy hooks.
  std::vector<int> balance_roots;
  ids.AppendNamed(config.balance_root_ids, &balance_roots);
  for (int id : PolicyHookNodes(syms, policy, config.balance_hooks)) {
    balance_roots.push_back(id);
  }
  Reach balance = graph.Forward(balance_roots);

  RunA1(syms, graph, config, &emit);
  RunA2(syms, graph, hot, config, &emit);
  RunA3(syms, graph, config, policy, &emit);
  RunA4(syms, graph, balance, config, &emit);

  // Apply each TU's allow() annotations to its file's findings, then count.
  for (const TranslationUnit& tu : syms.units()) {
    auto it = by_file.find(tu.file);
    if (it != by_file.end()) {
      ApplyAllows(tu.allows, &it->second);
    }
  }
  for (auto& [file, findings] : by_file) {
    for (Finding& f : findings) {
      result.findings.push_back(std::move(f));
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.rule < b.rule;
            });
  for (const Finding& f : result.findings) {
    if (f.suppressed) {
      ++result.suppressed;
    } else if (f.severity == Severity::kError) {
      ++result.errors;
    } else if (f.severity == Severity::kWarn) {
      ++result.warnings;
    }
  }
  return result;
}

}  // namespace wcores::lint
