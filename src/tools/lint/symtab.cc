#include "src/tools/lint/symtab.h"

#include <set>

namespace wcores::lint {

void SymbolTable::AddUnit(TranslationUnit unit) {
  units_.push_back(std::move(unit));
}

void SymbolTable::Finalize() {
  finalized_ = true;
  classes_.clear();
  for (const TranslationUnit& tu : units_) {
    for (const ClassInfo& c : tu.classes) {
      // First definition wins; headers are parsed before their .cc in the
      // driver, so the declaration-bearing definition is the one kept.
      classes_.emplace(c.name, &c);
    }
  }
  // Resolve out-of-line owners, then index. The owning class of
  // `Outer::Inner::Fn` is the LAST chain element naming a known class
  // (namespaces prefix the chain, nested classes resolve to the innermost).
  fns_.clear();
  int id = 0;
  for (TranslationUnit& tu : units_) {
    for (FunctionDef& f : tu.functions) {
      if (f.cls.empty()) {
        for (auto it = f.qualifier_chain.rbegin(); it != f.qualifier_chain.rend(); ++it) {
          if (classes_.count(*it) != 0) {
            f.cls = *it;
            break;
          }
        }
      }
      fns_.push_back(FnRef{&f, &tu, id++});
    }
  }
  methods_by_name_.clear();
  free_by_name_.clear();
  for (const FnRef& r : fns_) {
    if (r.def->cls.empty()) {
      free_by_name_[r.def->name].push_back(r.id);
    } else {
      methods_by_name_[r.def->name].push_back(r.id);
    }
  }
}

const ClassInfo* SymbolTable::FindClass(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second;
}

bool SymbolTable::DerivesFrom(const std::string& cls, const std::string& base) const {
  if (cls == base) {
    return true;
  }
  std::set<std::string> seen;
  std::vector<std::string> work{cls};
  while (!work.empty()) {
    std::string cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) {
      continue;
    }
    const ClassInfo* ci = FindClass(cur);
    if (ci == nullptr) {
      continue;
    }
    for (const std::string& b : ci->bases) {
      if (b == base) {
        return true;
      }
      work.push_back(b);
    }
  }
  return false;
}

const MemberInfo* SymbolTable::FindMember(const std::string& cls, const std::string& member,
                                          std::string* found_in) const {
  std::set<std::string> seen;
  std::vector<std::string> work{cls};
  while (!work.empty()) {
    std::string cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) {
      continue;
    }
    const ClassInfo* ci = FindClass(cur);
    if (ci == nullptr) {
      continue;
    }
    auto it = ci->members.find(member);
    if (it != ci->members.end()) {
      if (found_in != nullptr) {
        *found_in = cur;
      }
      return &it->second;
    }
    for (const std::string& b : ci->bases) {
      work.push_back(b);
    }
  }
  return nullptr;
}

std::vector<const FnRef*> SymbolTable::MethodsNamed(const std::string& name) const {
  std::vector<const FnRef*> out;
  auto it = methods_by_name_.find(name);
  if (it != methods_by_name_.end()) {
    for (int id : it->second) {
      out.push_back(&fns_[id]);
    }
  }
  return out;
}

std::vector<const FnRef*> SymbolTable::FreeFunctionsNamed(const std::string& name) const {
  std::vector<const FnRef*> out;
  auto it = free_by_name_.find(name);
  if (it != free_by_name_.end()) {
    for (int id : it->second) {
      out.push_back(&fns_[id]);
    }
  }
  return out;
}

std::string SymbolTable::IdOf(const FunctionDef& def) {
  return def.cls.empty() ? def.name : def.cls + "::" + def.name;
}

}  // namespace wcores::lint
