// wc-lint command line driver.
//
//   wc-lint [--root=DIR] [--json=FILE] [--sarif=FILE] [--verbose] PATH...
//
// PATHs are files or directories (directories are walked recursively for
// .h/.hpp/.cc/.cpp, in sorted order so output is stable). Severities come
// from .wc-lint.policy files found between --root (default: the current
// directory) and each source file; see policy.h for the format. --json keeps
// the historical schema-less SARIF shape; --sarif adds the "$schema" member
// for strict consumers.
//
// Exit status: 1 if any unsuppressed error-severity finding (including the
// SUPPRESS meta-rule guarding reasonless annotations) was emitted, else 0.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/tools/lint/driver.h"
#include "src/tools/lint/policy.h"
#include "src/tools/lint/rules.h"

namespace wcores::lint {
namespace {

namespace fs = std::filesystem;

// Built-in severities when no policy file says otherwise. D1 is the one
// rule that is wrong everywhere; the directory-scoped rules default to warn
// (D2/D3/D4) or off (D5/D6/D7, which are opt-in per hot-path / balancing /
// bounded-memory directory).
std::map<std::string, Severity> BuiltinDefaults() {
  return {{"D1", Severity::kError},
          {"D2", Severity::kWarn},
          {"D3", Severity::kWarn},
          {"D4", Severity::kWarn},
          {"D5", Severity::kOff},
          {"D6", Severity::kOff},
          {"D7", Severity::kOff}};
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  std::string sarif_path;
  std::string root = ".";
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: wc-lint [--root=DIR] [--json=FILE] [--sarif=FILE] [--verbose] "
                   "PATH...\n"
                   "Rules:\n");
      for (const RuleInfo& r : RuleCatalog()) {
        std::fprintf(stderr, "  %s  %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "wc-lint: unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "wc-lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<std::string> io_errors;
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    CollectFiles(p, &files, &io_errors);
  }

  PolicyCache policies;
  std::map<std::string, Severity> defaults = BuiltinDefaults();
  std::vector<Finding> all;
  int errors = 0, warnings = 0, suppressed = 0;
  for (const fs::path& file : files) {
    bool ok = false;
    std::string source = ReadFileToString(file, &ok);
    if (!ok) {
      io_errors.push_back(file.string() + ": unreadable");
      continue;
    }
    std::vector<const Policy*> chain = PolicyChainFor(file, root, &policies, &io_errors);
    std::map<std::string, Severity> sev =
        ResolveSeverities(chain, defaults, file.filename().string());
    // The SUPPRESS meta-rule is always an error; it is not policy-tunable.
    FileLintResult r = LintSource(file.generic_string(), source, sev);
    errors += r.errors;
    warnings += r.warnings;
    suppressed += r.suppressed;
    for (Finding& f : r.findings) {
      if (!f.suppressed || verbose) {
        std::printf("%s\n", FormatFinding(f).c_str());
      }
      all.push_back(std::move(f));
    }
  }
  for (const std::string& e : io_errors) {
    std::fprintf(stderr, "wc-lint: %s\n", e.c_str());
  }
  if (!json_path.empty() &&
      !WriteSarifReport(json_path, "wc-lint", RuleCatalog(), all, /*with_schema=*/false)) {
    std::fprintf(stderr, "wc-lint: cannot write %s\n", json_path.c_str());
    return 2;
  }
  if (!sarif_path.empty() &&
      !WriteSarifReport(sarif_path, "wc-lint", RuleCatalog(), all, /*with_schema=*/true)) {
    std::fprintf(stderr, "wc-lint: cannot write %s\n", sarif_path.c_str());
    return 2;
  }
  std::printf("wc-lint: %zu files, %d errors, %d warnings, %d suppressed\n", files.size(),
              errors, warnings, suppressed);
  if (!io_errors.empty()) {
    return 2;
  }
  return errors > 0 ? 1 : 0;
}

}  // namespace
}  // namespace wcores::lint

int main(int argc, char** argv) { return wcores::lint::Main(argc, argv); }
