// wc-lint command line driver.
//
//   wc-lint [--root=DIR] [--json=FILE] [--verbose] PATH...
//
// PATHs are files or directories (directories are walked recursively for
// .h/.hpp/.cc/.cpp, in sorted order so output is stable). Severities come
// from .wc-lint.policy files found between --root (default: the current
// directory) and each source file; see policy.h for the format.
//
// Exit status: 1 if any unsuppressed error-severity finding (including the
// SUPPRESS meta-rule guarding reasonless annotations) was emitted, else 0.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/tools/lint/policy.h"
#include "src/tools/lint/rules.h"

namespace wcores::lint {
namespace {

namespace fs = std::filesystem;

const char kPolicyFileName[] = ".wc-lint.policy";

// Built-in severities when no policy file says otherwise. D1 is the one
// rule that is wrong everywhere; the directory-scoped rules default to warn
// (D2/D3/D4) or off (D5/D6/D7, which are opt-in per hot-path / balancing /
// bounded-memory directory).
std::map<std::string, Severity> BuiltinDefaults() {
  return {{"D1", Severity::kError},
          {"D2", Severity::kWarn},
          {"D3", Severity::kWarn},
          {"D4", Severity::kWarn},
          {"D5", Severity::kOff},
          {"D6", Severity::kOff},
          {"D7", Severity::kOff}};
}

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string ReadFile(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

// Loads (and caches) the policy of one directory; nullptr when it has none.
class PolicyCache {
 public:
  const Policy* ForDirectory(const fs::path& dir, std::vector<std::string>* errors) {
    std::string key = dir.string();
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      return it->second.has_value() ? &*it->second : nullptr;
    }
    std::optional<Policy> loaded;
    fs::path file = dir / kPolicyFileName;
    std::error_code ec;
    if (fs::exists(file, ec)) {
      bool ok = false;
      std::string text = ReadFile(file, &ok);
      if (ok) {
        loaded = ParsePolicy(text);
        for (const std::string& e : loaded->errors) {
          errors->push_back(file.string() + ": " + e);
        }
      } else {
        errors->push_back(file.string() + ": unreadable");
      }
    }
    auto [pos, _] = cache_.emplace(std::move(key), std::move(loaded));
    return pos->second.has_value() ? &*pos->second : nullptr;
  }

 private:
  std::map<std::string, std::optional<Policy>> cache_;
};

// Policy chain for `file`: root-most directory first, the file's own
// directory last (innermost wins in ResolveSeverities).
std::vector<const Policy*> ChainFor(const fs::path& file, const fs::path& root,
                                    PolicyCache* cache, std::vector<std::string>* errors) {
  std::vector<fs::path> dirs;
  fs::path dir = fs::absolute(file).lexically_normal().parent_path();
  fs::path stop = fs::absolute(root).lexically_normal();
  for (;;) {
    dirs.push_back(dir);
    if (dir == stop || dir == dir.parent_path()) {
      break;
    }
    dir = dir.parent_path();
  }
  std::vector<const Policy*> chain;
  for (auto it = dirs.rbegin(); it != dirs.rend(); ++it) {
    if (const Policy* p = cache->ForDirectory(*it, errors)) {
      chain.push_back(p);
    }
  }
  return chain;
}

void CollectFiles(const fs::path& p, std::vector<fs::path>* out, std::vector<std::string>* errors) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<fs::path> entries;
    for (const fs::directory_entry& e : fs::directory_iterator(p, ec)) {
      entries.push_back(e.path());
    }
    if (ec) {
      errors->push_back(p.string() + ": " + ec.message());
      return;
    }
    // directory_iterator order is unspecified; sort so diagnostics, the JSON
    // report, and the golden test are stable (wc-lint practices what D1/D2
    // preach).
    std::sort(entries.begin(), entries.end());
    for (const fs::path& e : entries) {
      if (fs::is_directory(e, ec)) {
        CollectFiles(e, out, errors);
      } else if (HasSourceExtension(e)) {
        out->push_back(e);
      }
    }
    return;
  }
  if (fs::exists(p, ec)) {
    out->push_back(p);
  } else {
    errors->push_back(p.string() + ": no such file or directory");
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// SARIF 2.1.0-shaped report: tool.driver.rules + one result per finding.
// Suppressed findings are included with a suppressions[] entry, as SARIF
// models them, so CI artifacts show the waivers too.
bool WriteJsonReport(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << "{\n  \"version\": \"2.1.0\",\n  \"runs\": [{\n";
  out << "    \"tool\": {\"driver\": {\"name\": \"wc-lint\", \"rules\": [\n";
  const auto& rules = RuleCatalog();
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "      {\"id\": \"" << rules[i].id << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "    ]}},\n    \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << f.rule << "\", \"level\": \""
        << (f.severity == Severity::kError ? "error" : "warning") << "\", "
        << "\"message\": {\"text\": \"" << JsonEscape(f.message) << "\"}, "
        << "\"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]";
    if (f.suppressed) {
      out << ", \"suppressions\": [{\"kind\": \"inSource\", \"justification\": \""
          << JsonEscape(f.suppress_reason) << "\"}]";
    }
    out << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }]\n}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  std::string root = ".";
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: wc-lint [--root=DIR] [--json=FILE] [--verbose] PATH...\n"
                   "Rules:\n");
      for (const RuleInfo& r : RuleCatalog()) {
        std::fprintf(stderr, "  %s  %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "wc-lint: unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "wc-lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<std::string> io_errors;
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    CollectFiles(p, &files, &io_errors);
  }

  PolicyCache policies;
  std::map<std::string, Severity> defaults = BuiltinDefaults();
  std::vector<Finding> all;
  int errors = 0, warnings = 0, suppressed = 0;
  for (const fs::path& file : files) {
    bool ok = false;
    std::string source = ReadFile(file, &ok);
    if (!ok) {
      io_errors.push_back(file.string() + ": unreadable");
      continue;
    }
    std::vector<const Policy*> chain = ChainFor(file, root, &policies, &io_errors);
    std::map<std::string, Severity> sev =
        ResolveSeverities(chain, defaults, file.filename().string());
    // The SUPPRESS meta-rule is always an error; it is not policy-tunable.
    FileLintResult r = LintSource(file.generic_string(), source, sev);
    errors += r.errors;
    warnings += r.warnings;
    suppressed += r.suppressed;
    for (Finding& f : r.findings) {
      if (!f.suppressed || verbose) {
        std::printf("%s\n", FormatFinding(f).c_str());
      }
      all.push_back(std::move(f));
    }
  }
  for (const std::string& e : io_errors) {
    std::fprintf(stderr, "wc-lint: %s\n", e.c_str());
  }
  if (!json_path.empty() && !WriteJsonReport(json_path, all)) {
    std::fprintf(stderr, "wc-lint: cannot write %s\n", json_path.c_str());
    return 2;
  }
  std::printf("wc-lint: %zu files, %d errors, %d warnings, %d suppressed\n", files.size(),
              errors, warnings, suppressed);
  if (!io_errors.empty()) {
    return 2;
  }
  return errors > 0 ? 1 : 0;
}

}  // namespace
}  // namespace wcores::lint

int main(int argc, char** argv) { return wcores::lint::Main(argc, argv); }
