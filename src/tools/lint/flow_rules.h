// The interprocedural rules of wc-analyze, over SymbolTable + CallGraph.
//
//   A1  nondeterminism taint: a banned-source use (rand/clocks/getenv, or a
//       pointer-to-integer cast) inside any function from which a trace sink
//       (TraceSink::On* / Fnv1a::Mix/MixDouble) is reachable, or inside
//       anything those functions call. Token-level D3 sees the source; A1
//       sees whether it can reach the golden hash.
//   A2  hot-path allocation: operator new, malloc-family calls, and
//       unannotated container growth (push_back/emplace_back/resize/reserve)
//       in functions reachable from the event-dispatch roots (Simulator
//       handlers, EventQueue::RunUntil, SchedPolicy hooks). Off by default;
//       .wc-lint.policy turns it on for the simulation core.
//   A3  policy confinement: SchedPolicy subclasses may use the mechanism
//       (Scheduler / CfsRunqueue) only through its public API. Flags calls
//       that resolve to non-public mechanism members and direct reads of
//       non-public mechanism fields, transitively through policy-side
//       helpers. Friendship is deliberately not modelled: a friend backdoor
//       is exactly the drift this rule exists to catch.
//   A4  fold-order-sensitive float accumulation: per-entity decayed-load
//       reads (interprocedural D6) reachable from the balancing entry
//       points, and rq-tree mutations (tree_.Insert/Erase) in such functions
//       without a load_version bump in the same body — the PR 7
//       PickSpecific bug class.
//
// Findings reuse wc-lint's Finding struct, severity policy files, and
// allow() suppression grammar, so one annotation vocabulary covers both
// tools.
#ifndef SRC_TOOLS_LINT_FLOW_RULES_H_
#define SRC_TOOLS_LINT_FLOW_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "src/tools/lint/callgraph.h"
#include "src/tools/lint/rules.h"
#include "src/tools/lint/symtab.h"

namespace wcores::lint {

// The A-rule catalogue, in report order (mirrors RuleCatalog for D rules).
const std::vector<RuleInfo>& AnalyzeRuleCatalog();

// Everything the rules treat as a fixed point of the codebase. Defaults
// describe this repo; tests override fields to build directed scenarios.
struct AnalyzeConfig {
  // -- shared roots ---------------------------------------------------------
  // Hot-path roots, as "Cls::Fn" / "Fn" ids: the event-dispatch handlers.
  std::vector<std::string> hot_root_ids = {
      "Simulator::Run",          "Simulator::RunUntilAllExited",
      "Simulator::OnTick",       "Simulator::OnSegmentEnd",
      "Simulator::OnTimerWake",  "Simulator::ContextSwitch",
      "Simulator::OnSpinRecheck", "Simulator::OnSpinTimeout",
      "Simulator::KickCpu",      "Simulator::NohzKick",
      "Simulator::CheckResched", "Simulator::StartRunning",
      "Simulator::StopRunning",  "EventQueue::RunUntil",
      "Scheduler::Tick",         "Scheduler::PickNext",
      "Scheduler::Wake",         "Scheduler::RunNohzBalance",
  };
  // Policy hook methods: every override in a SchedPolicy subclass is a hot
  // root too (the mechanism invokes them from dispatch).
  std::string policy_base = "SchedPolicy";
  std::vector<std::string> policy_hooks = {
      "SelectWakeCpu",  "SelectForkCpu", "PickNextEntity", "TickPreempt",
      "WakeupPreempts", "PeriodicBalance", "NewIdleBalance", "NohzBalance",
      "OnRqEnqueue",    "OnRqDequeue",   "OnRqPick",        "OnRqReweight",
  };

  // -- A1 -------------------------------------------------------------------
  // Methods whose bodies ARE the trace sinks (fold into the golden hash).
  std::vector<std::string> sink_methods = {
      "OnNrRunning", "OnLoad",      "OnConsidered",   "OnMigration", "OnSwitchIn",
      "OnSwitchOut", "OnWakeupLatency", "OnIdleEnter", "OnIdleExit",  "Mix",
      "MixDouble",
  };
  // Call-spellable nondeterminism sources (free calls).
  std::vector<std::string> source_calls = {
      "rand", "srand", "drand48", "time", "clock", "getenv", "secure_getenv",
  };
  // Source types: spelled as callee or qualifier anywhere in a body.
  std::vector<std::string> source_types = {
      "random_device", "steady_clock", "system_clock", "high_resolution_clock",
  };

  // -- A2 -------------------------------------------------------------------
  std::vector<std::string> alloc_calls = {
      "malloc", "calloc", "realloc", "make_unique", "make_shared",
  };
  std::vector<std::string> growth_methods = {
      "push_back", "emplace_back", "resize", "reserve",
  };

  // -- A3 -------------------------------------------------------------------
  std::vector<std::string> mechanism_classes = {"Scheduler", "CfsRunqueue"};

  // -- A4 -------------------------------------------------------------------
  // Balancing entry points (mechanism ids + policy hook names).
  std::vector<std::string> balance_root_ids = {
      "Scheduler::CfsPeriodicBalance", "Scheduler::CfsIdleBalance",
      "Scheduler::CfsNohzBalance",     "Scheduler::IdleBalance",
      "Scheduler::BalanceDomain",      "Scheduler::MoveTasks",
      "Scheduler::RunNohzBalance",     "Scheduler::PickNext",
  };
  std::vector<std::string> balance_hooks = {
      "PeriodicBalance", "NewIdleBalance", "NohzBalance", "PickNextEntity",
  };
  // Per-entity decayed-load accessors (the D6 vocabulary).
  std::vector<std::string> entity_load_calls = {
      "ValueAt", "EntityLoad", "LoadAt", "RqLoadRecomputed",
  };
  // The rq-tree member objects whose mutation permutes float fold order, the
  // mutating methods, and the version bump that re-keys the memo.
  std::vector<std::string> fold_tree_objects = {"tree_"};
  std::vector<std::string> fold_mutators = {"Insert", "Erase"};
  std::string fold_version_bump = "BumpLoadVersion";
};

struct AnalyzeResult {
  std::vector<Finding> findings;  // Sorted by (file, line, rule).
  int errors = 0;                 // Unsuppressed error-severity findings.
  int warnings = 0;
  int suppressed = 0;
  int functions = 0;       // Function definitions analyzed.
  int hot_reachable = 0;   // Functions reachable from the hot roots.
};

// Runs A1..A4. `severities_for` maps each analyzed file to its resolved
// rule->severity map (policy chain already applied by the driver); files
// absent from the map get every rule off. Allow annotations from each TU are
// applied before counting.
AnalyzeResult RunAnalysis(const SymbolTable& syms, const CallGraph& graph,
                          const AnalyzeConfig& config,
                          const std::map<std::string, std::map<std::string, Severity>>&
                              severities_for);

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_FLOW_RULES_H_
