// wc-analyze command line driver.
//
//   wc-analyze [--root=DIR] [--json=FILE] [--sarif=FILE] [--verbose] PATH...
//
// Parses every .h/.hpp/.cc/.cpp under the given paths into one symbol
// table, builds the cross-file call graph, and runs the interprocedural
// rules A1..A4 (see flow_rules.h). Severities come from the same
// .wc-lint.policy files wc-lint reads — A rules are configured next to the
// D rules — and the same inline allow() grammar suppresses findings.
//
// Exit status: 1 if any unsuppressed error-severity finding was emitted,
// 2 on IO/flag errors, else 0.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/tools/lint/ast.h"
#include "src/tools/lint/callgraph.h"
#include "src/tools/lint/driver.h"
#include "src/tools/lint/flow_rules.h"
#include "src/tools/lint/policy.h"
#include "src/tools/lint/symtab.h"

namespace wcores::lint {
namespace {

namespace fs = std::filesystem;

// A1/A3/A4 guard the determinism and layering contracts everywhere; A2 is
// opt-in per hot-path directory (the simulation core turns it on in its
// .wc-lint.policy, test/bench scaffolding stays quiet).
std::map<std::string, Severity> AnalyzeDefaults() {
  return {{"A1", Severity::kError},
          {"A2", Severity::kOff},
          {"A3", Severity::kError},
          {"A4", Severity::kError}};
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  std::string sarif_path;
  std::string root = ".";
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: wc-analyze [--root=DIR] [--json=FILE] [--sarif=FILE] [--verbose] "
                   "PATH...\n"
                   "Rules:\n");
      for (const RuleInfo& r : AnalyzeRuleCatalog()) {
        std::fprintf(stderr, "  %s  %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "wc-analyze: unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "wc-analyze: no paths given (try --help)\n");
    return 2;
  }

  std::vector<std::string> io_errors;
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    CollectFiles(p, &files, &io_errors);
  }

  // Parse headers before implementation files so class definitions land in
  // the symbol table from their declaring header.
  std::stable_sort(files.begin(), files.end(), [](const fs::path& a, const fs::path& b) {
    bool ah = a.extension() == ".h" || a.extension() == ".hpp";
    bool bh = b.extension() == ".h" || b.extension() == ".hpp";
    return ah && !bh;
  });

  PolicyCache policies;
  std::map<std::string, Severity> defaults = AnalyzeDefaults();
  std::map<std::string, std::map<std::string, Severity>> severities_for;
  SymbolTable syms;
  for (const fs::path& file : files) {
    bool ok = false;
    std::string source = ReadFileToString(file, &ok);
    if (!ok) {
      io_errors.push_back(file.string() + ": unreadable");
      continue;
    }
    std::string name = file.generic_string();
    std::vector<const Policy*> chain = PolicyChainFor(file, root, &policies, &io_errors);
    severities_for[name] = ResolveSeverities(chain, defaults, file.filename().string());
    syms.AddUnit(ParseUnit(name, source));
  }
  syms.Finalize();
  CallGraph graph(syms);
  AnalyzeResult result = RunAnalysis(syms, graph, AnalyzeConfig{}, severities_for);

  for (const Finding& f : result.findings) {
    if (!f.suppressed || verbose) {
      std::printf("%s\n", FormatFinding(f).c_str());
    }
  }
  for (const std::string& e : io_errors) {
    std::fprintf(stderr, "wc-analyze: %s\n", e.c_str());
  }
  if (!json_path.empty() && !WriteSarifReport(json_path, "wc-analyze", AnalyzeRuleCatalog(),
                                              result.findings, /*with_schema=*/false)) {
    std::fprintf(stderr, "wc-analyze: cannot write %s\n", json_path.c_str());
    return 2;
  }
  if (!sarif_path.empty() && !WriteSarifReport(sarif_path, "wc-analyze", AnalyzeRuleCatalog(),
                                               result.findings, /*with_schema=*/true)) {
    std::fprintf(stderr, "wc-analyze: cannot write %s\n", sarif_path.c_str());
    return 2;
  }
  std::printf(
      "wc-analyze: %zu files, %d functions, %d hot-reachable, %d errors, %d warnings, "
      "%d suppressed\n",
      files.size(), result.functions, result.hot_reachable, result.errors, result.warnings,
      result.suppressed);
  if (!io_errors.empty()) {
    return 2;
  }
  return result.errors > 0 ? 1 : 0;
}

}  // namespace
}  // namespace wcores::lint

int main(int argc, char** argv) { return wcores::lint::Main(argc, argv); }
