// Cross-file call graph over SymbolTable function definitions.
//
// Resolution is deliberately an over-approximation: a member call through an
// object of statically unknown class links to EVERY method of that name
// (virtual-dispatch closure). For reachability rules that is the safe
// direction — a spurious edge can only make a finding fire that a human then
// reason-allows; a missing edge would silently hide one.
#ifndef SRC_TOOLS_LINT_CALLGRAPH_H_
#define SRC_TOOLS_LINT_CALLGRAPH_H_

#include <string>
#include <vector>

#include "src/tools/lint/symtab.h"

namespace wcores::lint {

struct Edge {
  int to = 0;                     // Callee node id.
  const CallSite* site = nullptr;  // The syntactic call that induced it.
};

// Forward/backward reachability result. `parent` lets rule messages print a
// witness chain: for Forward() parent points toward the root, for Backward()
// toward the target.
struct Reach {
  std::vector<bool> in_set;
  std::vector<int> parent;  // -1 for roots/targets and unreached nodes.
};

class CallGraph {
 public:
  explicit CallGraph(const SymbolTable& syms);

  int NodeCount() const { return static_cast<int>(edges_.size()); }
  const std::vector<Edge>& EdgesFrom(int id) const { return edges_[id]; }

  Reach Forward(const std::vector<int>& roots) const;
  Reach Backward(const std::vector<int>& targets) const;

  // "A -> B -> C": the witness path from node `id` following parents.
  std::string Chain(const Reach& r, int id) const;

 private:
  const SymbolTable& syms_;
  std::vector<std::vector<Edge>> edges_;
  std::vector<std::vector<int>> redges_;  // Reverse adjacency (ids only).
};

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_CALLGRAPH_H_
