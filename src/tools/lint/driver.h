// Shared command-line plumbing for wc-lint and wc-analyze: file collection,
// policy-chain resolution, and the SARIF report writer. Keeping it in one
// place guarantees the two tools walk the same files, resolve the same
// .wc-lint.policy chains, and emit byte-compatible reports.
#ifndef SRC_TOOLS_LINT_DRIVER_H_
#define SRC_TOOLS_LINT_DRIVER_H_

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/tools/lint/policy.h"
#include "src/tools/lint/rules.h"

namespace wcores::lint {

inline constexpr char kPolicyFileName[] = ".wc-lint.policy";

bool HasSourceExtension(const std::filesystem::path& p);

std::string ReadFileToString(const std::filesystem::path& p, bool* ok);

// Recursively collects .h/.hpp/.cc/.cpp under `p` (or `p` itself when it is
// a file), in sorted order so every report is stable.
void CollectFiles(const std::filesystem::path& p, std::vector<std::filesystem::path>* out,
                  std::vector<std::string>* errors);

// Loads (and caches) the policy of one directory; nullptr when it has none.
class PolicyCache {
 public:
  const Policy* ForDirectory(const std::filesystem::path& dir,
                             std::vector<std::string>* errors);

 private:
  std::map<std::string, std::optional<Policy>> cache_;
};

// Policy chain for `file`: root-most directory first, the file's own
// directory last (innermost wins in ResolveSeverities).
std::vector<const Policy*> PolicyChainFor(const std::filesystem::path& file,
                                          const std::filesystem::path& root, PolicyCache* cache,
                                          std::vector<std::string>* errors);

std::string JsonEscape(const std::string& s);

// SARIF 2.1.0 report: tool.driver.{name,rules} + one result per finding.
// Suppressed findings carry a suppressions[] entry, as SARIF models them.
// `with_schema` adds the "$schema" member (the strict form --sarif emits;
// --json keeps the historical schema-less shape byte-for-byte).
bool WriteSarifReport(const std::string& path, const std::string& tool_name,
                      const std::vector<RuleInfo>& rules, const std::vector<Finding>& findings,
                      bool with_schema);

}  // namespace wcores::lint

#endif  // SRC_TOOLS_LINT_DRIVER_H_
