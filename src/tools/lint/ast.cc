#include "src/tools/lint/ast.h"

#include <cstddef>
#include <set>

namespace wcores::lint {

const char* AccessName(Access a) {
  switch (a) {
    case Access::kPublic:
      return "public";
    case Access::kProtected:
      return "protected";
    case Access::kPrivate:
      return "private";
  }
  return "?";
}

namespace {

// Keywords and other identifiers that can never be a call-site or
// declaration name. Keeps the heuristics from mistaking `if (...)`,
// `sizeof(...)`, `return (...)` etc. for calls.
const std::set<std::string>& Reserved() {
  static const std::set<std::string> kReserved = {
      "if",        "for",      "while",    "switch",       "return",   "sizeof",
      "alignof",   "alignas",  "decltype", "noexcept",     "throw",    "catch",
      "new",       "delete",   "do",       "else",         "case",     "default",
      "break",     "continue", "goto",     "static_assert", "typeid",  "co_await",
      "co_yield",  "co_return", "requires", "concept",     "explicit", "constexpr",
      "consteval", "constinit", "inline",  "static",       "extern",   "mutable",
      "virtual",   "override", "final",    "const",        "volatile", "typename",
      "template",  "class",    "struct",   "union",        "enum",     "namespace",
      "using",     "typedef",  "friend",   "public",       "private",  "protected",
      "operator",  "this",     "void",     "bool",         "char",     "short",
      "int",       "long",     "float",    "double",       "signed",   "unsigned",
      "auto",      "true",     "false",    "nullptr",      "and",      "or",
      "not",       "try",      "asm",      "register",     "thread_local",
  };
  return kReserved;
}

bool IsReserved(const std::string& s) { return Reserved().count(s) != 0; }

// Field names on the right of . / -> that are really language constructs
// or too generic to be a meaningful member-access fact.
bool IsReservedField(const std::string& s) {
  return IsReserved(s) || s == "get" || s == "reset" || s == "release";
}

// Integer-type spellings that make a reinterpret_cast a pointer-as-integer
// conversion (the A1 source).
bool IsIntTypeWord(const std::string& s) {
  return s == "uintptr_t" || s == "intptr_t" || s == "size_t" || s == "uint64_t" ||
         s == "uint32_t" || s == "int64_t" || s == "ptrdiff_t" || s == "unsigned" ||
         s == "long" || s == "int";
}

class Parser {
 public:
  Parser(const std::string& file, std::string_view source) {
    tu_.file = file;
    lexed_ = Lex(source);
    tu_.errors = lexed_.errors;
    for (const Token& t : lexed_.tokens) {
      if (t.kind == TokKind::kComment) {
        ParseAllowAnnotations(t, file, &tu_.allows, nullptr);
        continue;
      }
      if (t.kind == TokKind::kPreproc || t.kind == TokKind::kAttribute) {
        continue;
      }
      code_.push_back(&t);
    }
  }

  TranslationUnit Run() {
    size_t i = 0;
    ParseDeclarations(&i, nullptr, Access::kPublic, /*until_brace=*/false);
    return std::move(tu_);
  }

 private:
  // ---- token access --------------------------------------------------------

  size_t Size() const { return code_.size(); }
  bool AtEnd(size_t i) const { return i >= code_.size(); }
  const Token& At(size_t i) const { return *code_[i]; }
  const std::string& TextAt(size_t i) const {
    static const std::string kEmpty;
    return i < code_.size() ? code_[i]->text : kEmpty;
  }
  bool IsP(size_t i, const char* p) const {
    return i < code_.size() && code_[i]->kind == TokKind::kPunct && code_[i]->text == p;
  }
  bool IsI(size_t i, const char* w) const {
    return i < code_.size() && code_[i]->kind == TokKind::kIdent && code_[i]->text == w;
  }
  bool IsIdent(size_t i) const { return i < code_.size() && code_[i]->kind == TokKind::kIdent; }
  int LineAt(size_t i) const { return i < code_.size() ? code_[i]->line : 0; }

  // ---- generic skippers ----------------------------------------------------

  // `from` indexes a `<`. Returns the index just past the matching `>`, or
  // from+1 when this is not a template-argument list after all (comparison
  // operator, lost balance, statement boundary). `>>` closes two levels.
  size_t SkipAngles(size_t from) const {
    size_t i = from + 1;
    int depth = 1;
    int parens = 0;
    size_t budget = 300;
    while (!AtEnd(i) && budget-- > 0) {
      const std::string& t = TextAt(i);
      if (At(i).kind == TokKind::kPunct) {
        if (t == "(") {
          ++parens;
        } else if (t == ")") {
          if (parens == 0) {
            return from + 1;  // `a < b)` — a comparison inside a call.
          }
          --parens;
        } else if (parens == 0) {
          if (t == "<") {
            ++depth;
          } else if (t == ">") {
            if (--depth == 0) {
              return i + 1;
            }
          } else if (t == ">>") {
            depth -= 2;
            if (depth <= 0) {
              return i + 1;
            }
          } else if (t == ";" || t == "{" || t == "}" || t == "&&" || t == "||") {
            return from + 1;  // Statement boundary: it was a comparison.
          }
        }
      }
      ++i;
    }
    return from + 1;
  }

  // `from` indexes an opener ( { [. Returns the index just past its match.
  size_t SkipMatched(size_t from) const {
    const std::string open = TextAt(from);
    const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    size_t i = from;
    while (!AtEnd(i)) {
      if (At(i).kind == TokKind::kPunct) {
        if (TextAt(i) == open) {
          ++depth;
        } else if (TextAt(i) == close) {
          if (--depth == 0) {
            return i + 1;
          }
        }
      }
      ++i;
    }
    return i;
  }

  // Advances to just past the next `;` at the current brace depth. If a `}`
  // closes the enclosing scope first, stops AT it (caller sees the brace).
  size_t SkipToSemi(size_t from) const {
    size_t i = from;
    int depth = 0;
    while (!AtEnd(i)) {
      if (At(i).kind == TokKind::kPunct) {
        const std::string& t = TextAt(i);
        if (t == "{" || t == "(" || t == "[") {
          i = SkipMatched(i);
          continue;
        }
        if (t == "}") {
          return i;  // Enclosing scope ends; do not consume.
        }
        if (t == ";" && depth == 0) {
          return i + 1;
        }
      }
      ++i;
    }
    return i;
  }

  void SkipTemplateHeader(size_t* i) {
    ++*i;  // "template"
    if (IsP(*i, "<")) {
      *i = SkipAngles(*i);
    }
  }

  // enum [class|struct] [name] [: underlying] { ... } ;
  void SkipEnum(size_t* i) {
    ++*i;  // "enum"
    if (IsI(*i, "class") || IsI(*i, "struct")) {
      ++*i;
    }
    if (IsIdent(*i)) {
      ++*i;
    }
    if (IsP(*i, ":")) {
      ++*i;
      while (IsIdent(*i) || IsP(*i, "::")) {
        ++*i;
      }
    }
    if (IsP(*i, "{")) {
      *i = SkipMatched(*i);
    }
    if (IsP(*i, ";")) {
      ++*i;
    }
  }

  // ---- declaration loop ----------------------------------------------------

  // Parses declarations until EOF (until_brace=false) or the `}` closing the
  // current scope (until_brace=true, `}` is consumed). `cls` is non-null when
  // inside a class body.
  void ParseDeclarations(size_t* i, ClassInfo* cls, Access access, bool until_brace) {
    size_t guard = 0;
    while (!AtEnd(*i)) {
      if (++guard > 200000) {
        tu_.errors.push_back("parser guard tripped in " + tu_.file);
        return;
      }
      if (IsP(*i, "}")) {
        if (until_brace) {
          ++*i;
        }
        return;
      }
      if (IsP(*i, ";")) {
        ++*i;
        continue;
      }
      if (IsI(*i, "namespace")) {
        ++*i;
        while (IsIdent(*i) || IsP(*i, "::")) {
          ++*i;
        }
        if (IsP(*i, "=")) {  // namespace alias
          *i = SkipToSemi(*i);
          continue;
        }
        if (IsP(*i, "{")) {
          ++*i;
          ParseDeclarations(i, nullptr, Access::kPublic, /*until_brace=*/true);
        }
        continue;
      }
      if (IsI(*i, "using") || IsI(*i, "typedef") || IsI(*i, "static_assert")) {
        *i = SkipToSemi(*i);
        continue;
      }
      if (IsI(*i, "template")) {
        SkipTemplateHeader(i);
        continue;
      }
      if (cls != nullptr && (IsI(*i, "public") || IsI(*i, "protected") || IsI(*i, "private")) &&
          IsP(*i + 1, ":")) {
        access = IsI(*i, "public")      ? Access::kPublic
                 : IsI(*i, "protected") ? Access::kProtected
                                        : Access::kPrivate;
        *i += 2;
        continue;
      }
      if (cls != nullptr && IsI(*i, "friend")) {
        size_t j = *i + 1;
        while (!AtEnd(j) && !IsP(j, ";") && !IsP(j, "{")) {
          if (IsIdent(j) && !IsReserved(TextAt(j))) {
            cls->friends.push_back(TextAt(j));
          }
          if (IsP(j, "(")) {
            j = SkipMatched(j);
            continue;
          }
          ++j;
        }
        *i = IsP(j, ";") ? j + 1 : j;
        continue;
      }
      if (IsI(*i, "class") || IsI(*i, "struct") || IsI(*i, "union")) {
        ParseClassOrSkip(i, cls, access);
        continue;
      }
      if (IsI(*i, "enum")) {
        SkipEnum(i);
        continue;
      }
      if (IsI(*i, "extern")) {
        // `extern "C" {` opens a plain scope; `extern` otherwise is just a
        // specifier on the following declaration.
        if (!AtEnd(*i + 1) && At(*i + 1).kind == TokKind::kString && IsP(*i + 2, "{")) {
          *i += 3;
          ParseDeclarations(i, cls, access, /*until_brace=*/true);
          continue;
        }
        ++*i;
        continue;
      }
      ParseDeclOrFunction(i, cls, access);
    }
  }

  // ---- class parsing -------------------------------------------------------

  // At "class"/"struct"/"union". Handles forward declarations, definitions
  // (recursing for the body) and `class Foo x;` style uses.
  void ParseClassOrSkip(size_t* i, ClassInfo* enclosing, Access enclosing_access) {
    bool is_struct = !IsI(*i, "class");
    bool is_union = IsI(*i, "union");
    ++*i;
    // Skip attributes already dropped by the token filter; skip alignas(...)
    if (IsI(*i, "alignas") && IsP(*i + 1, "(")) {
      *i = SkipMatched(*i + 1);
    }
    if (!IsIdent(*i) || IsReserved(TextAt(*i))) {
      // Anonymous struct/union or something exotic: skip its body if any.
      while (!AtEnd(*i) && !IsP(*i, "{") && !IsP(*i, ";")) {
        ++*i;
      }
      if (IsP(*i, "{")) {
        *i = SkipMatched(*i);
      }
      *i = SkipToSemi(*i);
      return;
    }
    std::string name = TextAt(*i);
    int line = LineAt(*i);
    ++*i;
    if (IsP(*i, "<")) {  // explicit specialization
      *i = SkipAngles(*i);
    }
    if (IsI(*i, "final")) {
      ++*i;
    }
    if (IsP(*i, ";")) {  // forward declaration
      ++*i;
      return;
    }
    ClassInfo info;
    info.name = name;
    info.file = tu_.file;
    info.line = line;
    info.is_struct = is_struct;
    if (IsP(*i, ":")) {
      ++*i;
      // Comma-separated base list; keep the last identifier of each base
      // (drops namespace qualifiers, which member lookup doesn't need).
      std::string last;
      while (!AtEnd(*i) && !IsP(*i, "{") && !IsP(*i, ";")) {
        if (IsP(*i, ",")) {
          if (!last.empty()) {
            info.bases.push_back(last);
          }
          last.clear();
          ++*i;
          continue;
        }
        if (IsP(*i, "<")) {
          *i = SkipAngles(*i);
          continue;
        }
        if (IsIdent(*i) && !IsReserved(TextAt(*i))) {
          last = TextAt(*i);
        }
        ++*i;
      }
      if (!last.empty()) {
        info.bases.push_back(last);
      }
    }
    if (!IsP(*i, "{")) {
      // `class Foo x;` — an elaborated type specifier inside a declaration.
      *i = SkipToSemi(*i);
      return;
    }
    ++*i;
    Access body_access = (is_struct || is_union) ? Access::kPublic : Access::kPrivate;
    // Parse into the local `info` (not yet in tu_.classes) so nested class
    // pushes cannot invalidate our pointer.
    ParseDeclarations(i, &info, body_access, /*until_brace=*/true);
    // `} trailing-declarators ;`
    *i = SkipToSemi(*i);
    tu_.classes.push_back(std::move(info));
    // Record the nested class as a member of the enclosing one.
    if (enclosing != nullptr) {
      enclosing->members.emplace(name, MemberInfo{enclosing_access, false, line});
    }
  }

  // ---- declarations and function definitions -------------------------------

  // Extracts the declared name when `paren` indexes the `(` opening a
  // parameter list. Returns "" when the tokens before `(` cannot be a
  // function name. Sets *name_tok to the name token's index.
  std::string ExtractName(size_t paren, size_t* name_tok) const {
    if (paren == 0) {
      return "";
    }
    size_t p = paren - 1;
    // operator forms: `operator<=` `operator()` `operator[]` `operator new`...
    if (IsIdent(p) && IsReserved(TextAt(p)) && TextAt(p) != "operator") {
      return "";
    }
    if (IsIdent(p)) {
      if (p > 0 && IsI(p - 1, "operator")) {
        *name_tok = p - 1;
        return "operator " + TextAt(p);  // operator new / operator bool
      }
      *name_tok = p;
      std::string name = TextAt(p);
      if (p > 0 && IsP(p - 1, "~")) {
        return "~" + name;
      }
      return name;
    }
    if (At(p).kind == TokKind::kPunct) {
      // `operator<(`, `operator==(`, `operator+(`, ...
      if (p > 0 && IsI(p - 1, "operator")) {
        *name_tok = p - 1;
        return "operator" + TextAt(p);
      }
      // `operator()(args)` — the scanned `(` is the *empty call parens*;
      // handled by the caller looking ahead. `operator[](args)` similar.
      if (TextAt(p) == "]" && p >= 2 && IsP(p - 1, "[") && IsI(p - 2, "operator")) {
        *name_tok = p - 2;
        return "operator[]";
      }
      if (TextAt(p) == ")" && p >= 2 && IsP(p - 1, "(") && IsI(p - 2, "operator")) {
        *name_tok = p - 2;
        return "operator()";
      }
    }
    return "";
  }

  // Walks `A::B::name` backwards from the name token, collecting qualifiers
  // outermost-first. Handles templated qualifiers: `RbTree<K>::Insert`.
  std::vector<std::string> QualifierChain(size_t name_tok) const {
    std::vector<std::string> chain;
    size_t p = name_tok;
    while (p >= 2 && IsP(p - 1, "::")) {
      size_t q = p - 2;
      if (At(q).kind == TokKind::kPunct && TextAt(q) == ">") {
        // Templated qualifier: scan back to the matching `<`, whose left
        // neighbour is the qualifier name.
        int depth = 1;
        size_t k = q;
        while (k > 0 && depth > 0) {
          --k;
          if (IsP(k, ">")) {
            ++depth;
          } else if (IsP(k, "<")) {
            --depth;
          } else if (TextAt(k) == ">>") {
            depth += 2;
          }
        }
        if (depth != 0 || k == 0 || !IsIdent(k - 1)) {
          break;
        }
        chain.insert(chain.begin(), TextAt(k - 1));
        p = k - 1;
        continue;
      }
      if (!IsIdent(q) || IsReserved(TextAt(q))) {
        break;
      }
      chain.insert(chain.begin(), TextAt(q));
      p = q;
    }
    return chain;
  }

  // From a depth-0 `:` after a parameter list (ctor initializer list), finds
  // the body `{`. Member initializers use braces too (`: tree_{...}`), so a
  // `{` only starts the body when the previous token is `)` or `}`.
  size_t FindCtorBody(size_t from) const {
    size_t i = from + 1;
    int depth = 0;
    while (!AtEnd(i)) {
      const std::string& t = TextAt(i);
      if (At(i).kind == TokKind::kPunct) {
        if (t == "(" || t == "[") {
          i = SkipMatched(i);
          continue;
        }
        if (t == "{") {
          if (depth == 0 && i > 0 && (IsP(i - 1, ")") || IsP(i - 1, "}"))) {
            return i;  // the body
          }
          i = SkipMatched(i);  // a member brace-init
          continue;
        }
        if (t == ";" || t == "}") {
          return i;  // malformed; bail
        }
      }
      ++i;
    }
    return i;
  }

  void RecordMethodDecl(ClassInfo* cls, Access access, const std::string& name, int line) {
    if (cls == nullptr || name.empty()) {
      return;
    }
    cls->members.emplace(name, MemberInfo{access, true, line});
  }

  void RecordField(ClassInfo* cls, Access access, size_t decl_start, size_t semi) {
    if (cls == nullptr) {
      return;
    }
    // The field name is the last identifier before the `;` (or before `=` /
    // `{` initializers), scanning back over bracket groups.
    size_t p = semi;
    while (p > decl_start) {
      --p;
      if (At(p).kind == TokKind::kPunct) {
        const std::string& t = TextAt(p);
        if (t == "]" || t == "}" || t == ")") {
          // Scan back to the matching opener.
          const std::string open = t == "]" ? "[" : t == "}" ? "{" : "(";
          int depth = 1;
          while (p > decl_start && depth > 0) {
            --p;
            if (TextAt(p) == t) {
              ++depth;
            } else if (TextAt(p) == open) {
              --depth;
            }
          }
          continue;
        }
        continue;
      }
      if (IsIdent(p) && !IsReserved(TextAt(p))) {
        cls->members.emplace(TextAt(p), MemberInfo{access, false, LineAt(p)});
        return;
      }
    }
  }

  // Handles one declaration starting at *i: a function definition (parse the
  // body), a function declaration (record the member), a field, or something
  // to skip. Leaves *i past the declaration.
  void ParseDeclOrFunction(size_t* i, ClassInfo* cls, Access access) {
    size_t start = *i;
    size_t j = start;
    int brackets = 0;
    size_t paren = static_cast<size_t>(-1);
    // Find the first top-level `(` of this declaration.
    while (!AtEnd(j)) {
      const std::string& t = TextAt(j);
      if (At(j).kind == TokKind::kPunct) {
        if (t == ";" || t == "}") {
          break;
        }
        if (t == "{") {
          break;  // brace before any paren: braced init or weird scope
        }
        if (t == "[") {
          ++brackets;
        } else if (t == "]") {
          --brackets;
        } else if (t == "(" && brackets == 0) {
          paren = j;
          break;
        } else if (t == "<" && j > start && IsIdent(j - 1) && !IsI(j - 1, "operator") &&
                   !IsReserved(TextAt(j - 1))) {
          j = SkipAngles(j);
          continue;
        } else if (t == "=") {
          break;  // initializer before any paren: a field
        }
      }
      ++j;
    }
    if (paren == static_cast<size_t>(-1)) {
      // No parameter list: plain field or statementish construct.
      if (IsP(j, ";")) {
        RecordField(cls, access, start, j);
        *i = j + 1;
        return;
      }
      if (IsP(j, "=")) {
        size_t semi = SkipToSemi(j);
        RecordField(cls, access, start, j);
        *i = semi;
        return;
      }
      if (IsP(j, "{")) {
        size_t past = SkipMatched(j);
        if (IsP(past, ";")) {
          RecordField(cls, access, start, j);  // brace-init field
          *i = past + 1;
          return;
        }
        *i = past;
        return;
      }
      *i = AtEnd(j) ? j : j + 1;
      return;
    }

    size_t name_tok = paren;
    std::string name = ExtractName(paren, &name_tok);
    // `operator()` declarations: the scanned paren is the `()` of the name;
    // the parameter list follows it.
    if (name == "operator()" && IsP(paren + 1, ")") && IsP(paren + 2, "(")) {
      paren += 2;
    }
    if (name.empty()) {
      // `(` not preceded by a name: parenthesized expression/initializer.
      *i = SkipToSemi(start);
      if (IsP(*i, "}")) {
        return;  // let the caller see the closing brace? no — caller loops
      }
      return;
    }
    size_t after_params = SkipMatched(paren);
    // Trailer: const/override/noexcept/-> type/= 0/= default...
    size_t k = after_params;
    while (!AtEnd(k)) {
      const std::string& t = TextAt(k);
      if (At(k).kind == TokKind::kIdent) {
        if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
            t == "mutable" || t == "volatile" || t == "try") {
          if (t == "noexcept" && IsP(k + 1, "(")) {
            k = SkipMatched(k + 1);
            continue;
          }
          ++k;
          continue;
        }
        break;  // next declaration's tokens — this was a declaration w/o ;?
      }
      if (IsP(k, "->")) {  // trailing return type
        ++k;
        while (!AtEnd(k) && !IsP(k, "{") && !IsP(k, ";") && !IsP(k, "=")) {
          if (IsP(k, "<")) {
            k = SkipAngles(k);
            continue;
          }
          ++k;
        }
        continue;
      }
      break;
    }
    if (IsP(k, ";")) {
      RecordMethodDecl(cls, access, name, LineAt(name_tok));
      *i = k + 1;
      return;
    }
    if (IsP(k, "=")) {
      // = 0; / = default; / = delete;  — declaration. But `x = f(args);` is a
      // statement-looking field init; either way record and skip to `;`.
      RecordMethodDecl(cls, access, name, LineAt(name_tok));
      *i = SkipToSemi(k);
      return;
    }
    if (IsP(k, ":")) {
      // Constructor initializer list.
      size_t body = FindCtorBody(k);
      if (IsP(body, "{")) {
        RecordMethodDecl(cls, access, name, LineAt(name_tok));
        FunctionDef fn = MakeFn(name, name_tok, cls);
        ParseBody(body, &fn);
        tu_.functions.push_back(std::move(fn));
        *i = SkipMatched(body);
        return;
      }
      *i = SkipToSemi(k);
      return;
    }
    if (IsP(k, "{")) {
      RecordMethodDecl(cls, access, name, LineAt(name_tok));
      FunctionDef fn = MakeFn(name, name_tok, cls);
      ParseBody(k, &fn);
      tu_.functions.push_back(std::move(fn));
      *i = SkipMatched(k);
      return;
    }
    // None of the above: probably an expression statement `foo(bar);` at
    // namespace scope (macro-ish) or a declarator list. Skip the statement.
    *i = SkipToSemi(k);
  }

  FunctionDef MakeFn(const std::string& name, size_t name_tok, ClassInfo* cls) {
    FunctionDef fn;
    fn.name = name;
    fn.file = tu_.file;
    fn.line = LineAt(name_tok);
    fn.has_body = true;
    fn.qualifier_chain = QualifierChain(name_tok);
    if (cls != nullptr) {
      fn.cls = cls->name;
    }
    return fn;
  }

  // ---- body fact extraction ------------------------------------------------

  // `body` indexes the `{`. Records calls, member accesses, new-exprs and
  // pointer-to-integer casts.
  void ParseBody(size_t body, FunctionDef* fn) {
    size_t end = SkipMatched(body);
    for (size_t i = body + 1; i + 1 < end; ++i) {
      const Token& t = At(i);
      if (t.kind == TokKind::kIdent) {
        const std::string& w = t.text;
        if (w == "new") {
          // `operator new` mentions and placement-new both count; `new` after
          // `operator` is a declaration-ish mention, skip it.
          if (!(i > body && IsI(i - 1, "operator"))) {
            fn->ops.push_back(BodyOp{BodyOpKind::kNewExpr, t.line, "new expression"});
          }
          continue;
        }
        if (w == "reinterpret_cast" && IsP(i + 1, "<")) {
          size_t close = SkipAngles(i + 1);
          bool has_int = false;
          bool has_ptr = false;
          std::string spelled;
          for (size_t k = i + 2; k + 1 < close; ++k) {
            if (IsIdent(k) && IsIntTypeWord(TextAt(k))) {
              has_int = true;
            }
            if (IsP(k, "*")) {
              has_ptr = true;
            }
            if (!spelled.empty()) {
              spelled += " ";
            }
            spelled += TextAt(k);
          }
          if (has_int && !has_ptr) {
            fn->ops.push_back(
                BodyOp{BodyOpKind::kPtrIntCast, t.line, "reinterpret_cast<" + spelled + ">"});
          }
          i = close - 1;
          continue;
        }
        if (w == "hash" && IsP(i + 1, "<")) {
          size_t close = SkipAngles(i + 1);
          for (size_t k = i + 2; k + 1 < close; ++k) {
            if (IsP(k, "*")) {
              fn->ops.push_back(
                  BodyOp{BodyOpKind::kPtrIntCast, t.line, "std::hash over a pointer type"});
              break;
            }
          }
          i = close - 1;
          continue;
        }
        if (IsReserved(w)) {
          continue;
        }
        // Call site?  ident (  — possibly ident<...> (
        size_t after = i + 1;
        if (IsP(after, "<")) {
          size_t close = SkipAngles(after);
          if (close != after + 1) {
            after = close;
          }
        }
        if (IsP(after, "(")) {
          CallSite cs;
          cs.callee = w;
          cs.line = t.line;
          // Qualifier: `Q::f(` (innermost).
          if (i >= 2 && IsP(i - 1, "::") && IsIdent(i - 2) && !IsReserved(TextAt(i - 2))) {
            cs.qualifier = TextAt(i - 2);
          } else if (i >= 1 && (IsP(i - 1, ".") || IsP(i - 1, "->"))) {
            cs.via_member = true;
            if (i >= 2 && (IsIdent(i - 2) || IsI(i - 2, "this"))) {
              // Plain `obj.f(` / `this->f(`; complex expressions like
              // `a[i].f(` or `g().f(` leave object empty.
              bool simple =
                  i < 3 || !(IsP(i - 3, "]") || IsP(i - 3, ")") || IsP(i - 3, ".") ||
                             IsP(i - 3, "->") || IsP(i - 3, "::"));
              cs.object = simple ? TextAt(i - 2) : "";
            }
          }
          fn->calls.push_back(std::move(cs));
          continue;
        }
        // Member access that is not a call: obj.field / obj->field.
        if (i >= 2 && (IsP(i - 1, ".") || IsP(i - 1, "->")) && IsIdent(i - 2) &&
            !IsReservedField(w)) {
          bool simple = i < 3 || !(IsP(i - 3, "]") || IsP(i - 3, ")") || IsP(i - 3, ".") ||
                                   IsP(i - 3, "->") || IsP(i - 3, "::"));
          if (simple && !IsReserved(TextAt(i - 2))) {
            fn->field_uses.push_back(FieldUse{TextAt(i - 2), w, t.line});
          }
        }
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "(") {
        // C-style pointer-to-integer cast: `(uintptr_t) p`.
        if (IsIdent(i + 1) && IsP(i + 2, ")") &&
            (TextAt(i + 1) == "uintptr_t" || TextAt(i + 1) == "intptr_t")) {
          fn->ops.push_back(
              BodyOp{BodyOpKind::kPtrIntCast, t.line, "(" + TextAt(i + 1) + ") cast"});
        }
      }
    }
  }

  LexResult lexed_;
  std::vector<const Token*> code_;
  TranslationUnit tu_;
};

}  // namespace

TranslationUnit ParseUnit(const std::string& file, std::string_view source) {
  return Parser(file, source).Run();
}

}  // namespace wcores::lint
