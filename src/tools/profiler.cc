#include "src/tools/profiler.h"

#include <cstdio>
#include <map>

namespace wcores {

BalanceProfile ProfileFromStats(const SchedStats& before, const SchedStats& after, Time t0,
                                Time t1) {
  BalanceProfile p;
  p.window_start = t0;
  p.window_end = t1;
  p.balance_calls = after.balance_calls - before.balance_calls;
  p.found_busiest = after.balance_found_busiest - before.balance_found_busiest;
  p.below_local = after.balance_below_local - before.balance_below_local;
  p.designation_skips = after.balance_designation_skips - before.balance_designation_skips;
  p.interval_skips = after.balance_interval_skips - before.balance_interval_skips;
  p.affinity_retries = after.balance_affinity_retries - before.balance_affinity_retries;
  p.failures = after.balance_failures - before.balance_failures;
  p.success = after.balance_success - before.balance_success;
  p.moved_tasks = after.balance_moved_tasks - before.balance_moved_tasks;
  p.migrations = after.TotalMigrations() - before.TotalMigrations();
  p.wakeups = after.wakeups - before.wakeups;
  p.wakeups_on_busy = after.wakeups_on_busy - before.wakeups_on_busy;
  return p;
}

std::string ProfileReport(const BalanceProfile& p) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "balance profile [%s, %s]:\n"
      "  balance calls        %llu (found busiest: %llu)\n"
      "  gave up, not above local load   %llu\n"
      "  skipped, not designated core    %llu\n"
      "  affinity (taskset) retries      %llu\n"
      "  moved nothing                   %llu\n"
      "  migrations                      %llu\n"
      "  wakeups                         %llu (onto busy cores: %llu)\n",
      FormatTime(p.window_start).c_str(), FormatTime(p.window_end).c_str(),
      static_cast<unsigned long long>(p.balance_calls),
      static_cast<unsigned long long>(p.found_busiest),
      static_cast<unsigned long long>(p.below_local),
      static_cast<unsigned long long>(p.designation_skips),
      static_cast<unsigned long long>(p.affinity_retries),
      static_cast<unsigned long long>(p.failures),
      static_cast<unsigned long long>(p.migrations), static_cast<unsigned long long>(p.wakeups),
      static_cast<unsigned long long>(p.wakeups_on_busy));
  return buf;
}

std::string BalanceVerdictTable(const BalanceProfile& p) {
  // Every invocation of the balancing machinery ends in exactly one verdict.
  // Interval/designation skips happen before the Algorithm-1 body runs;
  // bodies end moved / below-local / nothing-movable.
  struct Row {
    const char* verdict;
    uint64_t count;
  };
  const Row rows[] = {
      {"moved threads", p.success},
      {"balanced (busiest <= local)", p.below_local},
      {"nothing movable (pinned/empty)", p.failures},
      {"skipped: interval not due", p.interval_skips},
      {"skipped: not designated core", p.designation_skips},
  };
  uint64_t total = 0;
  for (const Row& r : rows) {
    total += r.count;
  }
  std::string out = "balance decision verdicts:\n";
  char buf[128];
  for (const Row& r : rows) {
    double share = total > 0 ? 100.0 * static_cast<double>(r.count) / static_cast<double>(total)
                             : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-32s %10llu  (%5.1f%%)\n", r.verdict,
                  static_cast<unsigned long long>(r.count), share);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-32s %10llu\n  threads moved per success: %.2f\n",
                "total invocations", static_cast<unsigned long long>(total),
                p.success > 0 ? static_cast<double>(p.moved_tasks) / static_cast<double>(p.success)
                              : 0.0);
  out += buf;
  return out;
}

std::string ConsideredSummary(const EventRecorder& recorder, Time t0, Time t1, int n_cpus) {
  // initiator -> (call count, union of considered cores).
  std::map<int, std::pair<uint64_t, CpuSet>> per_cpu;
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind != TraceEvent::Kind::kConsidered || e.when < t0 || e.when >= t1) {
      continue;
    }
    if (e.sub == static_cast<uint8_t>(ConsideredKind::kWakeup)) {
      continue;
    }
    auto& entry = per_cpu[e.cpu];
    entry.first += 1;
    entry.second |= e.considered;
  }
  std::string out = "balancing calls per initiator core:\n";
  char buf[128];
  for (int c = 0; c < n_cpus; ++c) {
    auto it = per_cpu.find(c);
    if (it == per_cpu.end()) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "  core %3d: %6llu calls, examined cores ", c,
                  static_cast<unsigned long long>(it->second.first));
    out += buf;
    out += it->second.second.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace wcores
