// Small statistics helpers used by benches and tests.
#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace wcores {

// Accumulates samples; computes mean / quantiles on demand.
class Summary {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  // Folds another summary's samples in; used to aggregate per-cpu summaries
  // into per-node and machine-wide ones.
  void Merge(const Summary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = samples_.empty();
  }

  size_t Count() const { return samples_.size(); }

  double Sum() const {
    double s = 0;
    for (double v : samples_) {
      s += v;
    }
    return s;
  }

  double Mean() const { return samples_.empty() ? 0.0 : Sum() / samples_.size(); }

  double Min() const {
    EnsureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
  }

  double Max() const {
    EnsureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  // Linear-interpolated quantile, q in [0, 1].
  double Quantile(double q) const {
    EnsureSorted();
    if (samples_.empty()) {
      return 0.0;
    }
    double pos = q * (samples_.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = pos - lo;
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  double Stddev() const {
    if (samples_.size() < 2) {
      return 0.0;
    }
    double m = Mean();
    double acc = 0;
    for (double v : samples_) {
      acc += (v - m) * (v - m);
    }
    return std::sqrt(acc / (samples_.size() - 1));
  }

 private:
  void EnsureSorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace wcores

#endif  // SRC_METRICS_HISTOGRAM_H_
