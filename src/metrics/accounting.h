// Per-core CPU time accounting maintained by the simulator.
#ifndef SRC_METRICS_ACCOUNTING_H_
#define SRC_METRICS_ACCOUNTING_H_

#include <vector>

#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

class CpuAccounting {
 public:
  explicit CpuAccounting(int n_cpus) : busy_(n_cpus, 0) {}

  void AddBusy(CpuId cpu, Time delta) { busy_[cpu] += delta; }

  Time Busy(CpuId cpu) const { return busy_[cpu]; }

  Time TotalBusy() const {
    Time total = 0;
    for (Time b : busy_) {
      total += b;
    }
    return total;
  }

  // Fraction of `elapsed` the core spent running threads.
  double Utilization(CpuId cpu, Time elapsed) const {
    return elapsed == 0 ? 0.0 : static_cast<double>(busy_[cpu]) / static_cast<double>(elapsed);
  }

  double MachineUtilization(Time elapsed) const {
    if (elapsed == 0 || busy_.empty()) {
      return 0.0;
    }
    return static_cast<double>(TotalBusy()) /
           (static_cast<double>(elapsed) * static_cast<double>(busy_.size()));
  }

  int n_cpus() const { return static_cast<int>(busy_.size()); }

 private:
  std::vector<Time> busy_;
};

}  // namespace wcores

#endif  // SRC_METRICS_ACCOUNTING_H_
