#include "src/core/features.h"

namespace wcores {

SchedTunables SchedTunables::ForCpus(int n_cpus) {
  int factor = 1;
  while ((1 << factor) < n_cpus && factor < 8) {
    ++factor;
  }
  // factor == min(1 + ceil(log2(n_cpus)), 8) for n_cpus > 1; 1 for n_cpus == 1.
  if (n_cpus > 1) {
    factor = factor + 1 > 8 ? 8 : factor + 1;
  }
  SchedTunables t;
  t.sched_latency = Milliseconds(6) * factor;
  t.min_granularity = Microseconds(750) * factor;
  t.wakeup_granularity = Milliseconds(1) * factor;
  return t;
}

}  // namespace wcores
