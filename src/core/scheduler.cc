#include "src/core/scheduler.h"

#include "src/simkit/check.h"

#include <algorithm>
#include <cassert>

#include "src/core/sched_policy.h"
#include "src/simkit/log.h"

namespace wcores {

TraceSink* Scheduler::NullSink() {
  static TraceSink sink;
  return &sink;
}

Scheduler::Scheduler(const Topology& topo, const SchedFeatures& features,
                     const SchedTunables& tunables, SchedClient* client, TraceSink* trace,
                     SchedPolicy* policy)
    : topo_(&topo),
      features_(features),
      tunables_(tunables),
      client_(client),
      trace_(trace != nullptr ? trace : NullSink()) {
  WC_CHECK(client_ != nullptr, "scheduler needs a client");
  if (policy != nullptr) {
    policy_ = policy;
  } else {
    owned_policy_ = std::make_unique<CfsPolicy>();
    policy_ = owned_policy_.get();
  }
  // Size every structure-of-arrays member up front (never reallocated after
  // this: the runqueues hold raw pointers into nr_running_/load_version_).
  const size_t n = static_cast<size_t>(topo.n_cores());
  nr_running_.assign(n, 0);
  load_version_.assign(n, 0);
  tickless_.assign(n, 0);
  imbalanced_.assign(n, 0);
  idle_since_.assign(n, 0);
  idle_prev_.assign(n, kInvalidCpu);
  idle_next_.assign(n, kInvalidCpu);
  load_cache_now_.assign(n, kTimeNever);
  load_cache_version_.assign(n, 0);
  load_cache_epoch_.assign(n, 0);
  load_cache_feat_.assign(n, 0);
  load_cache_const_.assign(n, 0);
  load_cache_value_.assign(n, 0.0);
  wheel_.assign(n, BalanceWheel{});
  node_idle_gen_.assign(static_cast<size_t>(topo.n_nodes()), 0);
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    cpus_.emplace_back(c, &tunables_, &balance_epoch_);
    cpus_[c].rq.set_stat_slots(&nr_running_[c], &load_version_[c], &overloaded_cpus_);
    online_.Set(c);
  }
  autogroups_.push_back(Autogroup{kRootAutogroup, 0});

  // Boot-time domain construction always includes the cross-NUMA levels; the
  // Missing Scheduling Domains bug only manifests on *regeneration* (§3.4).
  DomainBuildOptions opts;
  opts.perspective = features_.fix_group_construction ? GroupPerspective::kPerCore
                                                      : GroupPerspective::kCore0;
  opts.cross_node_levels = true;
  opts.base_balance_interval = tunables_.base_balance_interval;
  auto trees = BuildDomains(*topo_, online_, opts);
  idle_head_.assign(static_cast<size_t>(topo.n_nodes()), kInvalidCpu);
  idle_tail_.assign(static_cast<size_t>(topo.n_nodes()), kInvalidCpu);
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    cpus_[c].domains = std::move(trees[c]);
    RecomputeWheelDues(c);  // Before the idle inserts: they sum wheel ndoms.
  }
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    tickless_[c] = 1;
    IdleIndexInsert(c);  // All cpus boot idle since t=0.
  }
  RecomputeNohzGlobals();

  policy_->Attach(this);
  if (policy_->WantsQueueEvents()) {
    for (Cpu& c : cpus_) {
      c.rq.set_observer(policy_);
    }
  }
}

Scheduler::~Scheduler() = default;

AutogroupId Scheduler::CreateAutogroup() {
  AutogroupId id = static_cast<AutogroupId>(autogroups_.size());
  autogroups_.push_back(Autogroup{id, 0});
  return id;
}

double Scheduler::AutogroupDivisor(AutogroupId id) const {
  if (!features_.autogroup_enabled) {
    return 1.0;
  }
  return autogroups_[id].divisor();
}

double Scheduler::RqLoadFill(Time now, CpuId cpu) const {
  // The miss path of the inline memo in scheduler.h: recompute the fold and
  // snapshot every input the memo keys on.
  bool all_const = false;
  // wc-lint: allow(A4 the memo's own fill path; every other balance read hits the cache above)
  double load = cpus_[cpu].rq.LoadAt(
      now, [this](AutogroupId id) { return AutogroupDivisor(id); }, &all_const);
  load_cache_now_[cpu] = now;
  load_cache_version_[cpu] = load_version_[cpu];
  load_cache_epoch_[cpu] = ag_epoch_;
  load_cache_feat_[cpu] = feature_gen_;
  load_cache_const_[cpu] = all_const ? 1 : 0;
  load_cache_value_[cpu] = load;
  return load;
}

double Scheduler::RqLoadRecomputed(Time now, CpuId cpu) const {
  return cpus_[cpu].rq.LoadAt(now, [this](AutogroupId id) { return AutogroupDivisor(id); });
}

void Scheduler::UpdateFeatures(const SchedFeatures& features) {
  features_ = features;
  feature_gen_ += 1;
  // No feature flag feeds the balance intervals or DesignatedCpu today
  // (domain-construction flags take effect at the next rebuild), but drop
  // the cached designation bits anyway: the wheel must never be the thing
  // that couples a new feature to stale decisions. Dues are untouched —
  // they are pure last_balance + interval arithmetic.
  for (uint64_t& gen : node_idle_gen_) {
    gen += 1;
  }
}

void Scheduler::SetNice(Time now, ThreadId tid, int nice) {
  SchedEntity& se = entities_[tid];
  if (se.nice == nice) {
    return;
  }
  if (se.on_rq) {
    cpus_[se.cpu].rq.Reweight(&se, now, nice);
    NotifyLoad(now, se.cpu);
  } else {
    se.SetNice(nice);
  }
}

ThreadId Scheduler::CurrentThread(CpuId cpu) const {
  const SchedEntity* curr = cpus_[cpu].rq.curr();
  return curr != nullptr ? curr->tid : kInvalidThread;
}

CpuId Scheduler::FirstAllowedOnline(const CpuSet& affinity) const {
  CpuId c = (affinity & online_).First();
  return c != kInvalidCpu ? c : online_.First();
}

CpuId Scheduler::CfsForkCpu(const SchedEntity& se, CpuId parent_cpu) const {
  // Fork placement: the parent's core when allowed (§3.2), otherwise the
  // first allowed online cpu.
  if (parent_cpu != kInvalidCpu && online_.Test(parent_cpu) && se.affinity.Test(parent_cpu)) {
    return parent_cpu;
  }
  return FirstAllowedOnline(se.affinity);
}

void Scheduler::NotifyNrRunning(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  int nr = nr_running_[cpu];
  if (nr != c.last_nr_reported) {
    c.last_nr_reported = nr;
    trace_->OnNrRunning(now, cpu, nr);
  }
}

void Scheduler::NotifyLoad(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  double load = RqLoad(now, cpu);
  if (load != c.last_load_reported) {
    c.last_load_reported = load;
    trace_->OnLoad(now, cpu, load);
  }
}

void Scheduler::UpdateIdleState(Time now, CpuId cpu) {
  if (nr_running_[cpu] == 0) {
    if (tickless_[cpu] == 0) {
      idle_since_[cpu] = now;
      tickless_[cpu] = 1;
      // An idleness flip can change DesignatedCpu answers for this node;
      // invalidate its cached designation bits (see BalanceWheel).
      node_idle_gen_[topo_->NodeOf(cpu)] += 1;
      if (online_.Test(cpu)) {
        IdleIndexInsert(cpu);
      }
      trace_->OnIdleEnter(now, cpu);
    }
  } else {
    if (tickless_[cpu] != 0) {
      trace_->OnIdleExit(now, cpu, now - idle_since_[cpu]);
      node_idle_gen_[topo_->NodeOf(cpu)] += 1;
      if (online_.Test(cpu)) {
        IdleIndexRemove(cpu);
      }
    }
    tickless_[cpu] = 0;
  }
}

void Scheduler::IdleIndexInsert(CpuId cpu) {
  NodeId node = topo_->NodeOf(cpu);
  // A cpu going idle at the current instant carries the largest
  // (idle_since, cpu) key of its node except for same-instant ties, so the
  // backward walk from the tail almost always stops immediately.
  CpuId after = idle_tail_[node];
  while (after != kInvalidCpu &&
         (idle_since_[after] > idle_since_[cpu] ||
          (idle_since_[after] == idle_since_[cpu] && after > cpu))) {
    after = idle_prev_[after];
  }
  idle_prev_[cpu] = after;
  idle_next_[cpu] = after == kInvalidCpu ? idle_head_[node] : idle_next_[after];
  if (idle_next_[cpu] != kInvalidCpu) {
    idle_prev_[idle_next_[cpu]] = cpu;
  } else {
    idle_tail_[node] = cpu;
  }
  if (after == kInvalidCpu) {
    idle_head_[node] = cpu;
  } else {
    idle_next_[after] = cpu;
  }
  // NOHZ wheel: a new delegate joins. Its dues only move forward, so
  // min-folding keeps nohz_all_due_ a sound lower bound (see scheduler.h).
  idle_ndom_sum_ += wheel_[cpu].ndom;
  nohz_all_due_ = std::min(nohz_all_due_, wheel_[cpu].all_idle);
}

void Scheduler::IdleIndexRemove(CpuId cpu) {
  NodeId node = topo_->NodeOf(cpu);
  if (idle_prev_[cpu] != kInvalidCpu) {
    idle_next_[idle_prev_[cpu]] = idle_next_[cpu];
  } else {
    idle_head_[node] = idle_next_[cpu];
  }
  if (idle_next_[cpu] != kInvalidCpu) {
    idle_prev_[idle_next_[cpu]] = idle_prev_[cpu];
  } else {
    idle_tail_[node] = idle_prev_[cpu];
  }
  idle_prev_[cpu] = kInvalidCpu;
  idle_next_[cpu] = kInvalidCpu;
  // nohz_all_due_ is left stale-low on purpose: raising it exactly would
  // cost a full index scan here. A too-low bound only costs a fast-path
  // miss; the next NOHZ slow pass recomputes it exactly.
  idle_ndom_sum_ -= wheel_[cpu].ndom;
}

CpuId Scheduler::LongestIdleCpu(const CpuSet& allowed) const {
  // Each node list is sorted ascending by (idle_since, cpu), so its first
  // allowed entry is the node minimum, and the minimum over node minima is
  // the machine minimum — the same cpu the old full scan produced: lowest
  // idle_since, ties to the lowest cpu id.
  CpuId best = kInvalidCpu;
  Time best_since = kTimeNever;
  for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
    for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = idle_next_[c]) {
      if (!allowed.Test(c)) {
        continue;
      }
      Time since = idle_since_[c];
      if (since < best_since || (since == best_since && c < best)) {
        best_since = since;
        best = c;
      }
      break;  // Later entries of this node can only have larger keys.
    }
  }
  return best;
}

bool Scheduler::ValidateIdleIndex() const {
  std::vector<bool> in_index(cpus_.size(), false);
  for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
    CpuId prev = kInvalidCpu;
    for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = idle_next_[c]) {
      if (topo_->NodeOf(c) != n || idle_prev_[c] != prev) {
        return false;
      }
      if (!online_.Test(c) || tickless_[c] == 0 || in_index[c]) {
        return false;
      }
      if (prev != kInvalidCpu &&
          (idle_since_[prev] > idle_since_[c] ||
           (idle_since_[prev] == idle_since_[c] && prev > c))) {
        return false;
      }
      in_index[c] = true;
      prev = c;
    }
    if (idle_tail_[n] != prev) {
      return false;
    }
  }
  for (CpuId c = 0; c < static_cast<CpuId>(cpus_.size()); ++c) {
    if (in_index[c] != (online_.Test(c) && tickless_[c] != 0)) {
      return false;
    }
  }
  return true;
}

bool Scheduler::ValidateBalanceWheel() const {
  // Write-through mirrors and the overload counter.
  int overloaded = 0;
  for (CpuId c = 0; c < static_cast<CpuId>(cpus_.size()); ++c) {
    if (nr_running_[c] != cpus_[c].rq.nr_running() ||
        load_version_[c] != cpus_[c].rq.load_version()) {
      return false;
    }
    if (nr_running_[c] >= 2) {
      overloaded += 1;
    }
  }
  if (overloaded != overloaded_cpus_) {
    return false;
  }
  // Per-cpu due minima from scratch, and designation bits against the
  // truth whenever their generation is current (stale generations are
  // never consulted, so their bit contents are unconstrained — but the
  // fire minima must still be the bit-derived subset minima, since
  // RecomputeWheelDues rebuilds them from whatever bits it kept).
  const Time factor = static_cast<Time>(tunables_.busy_balance_factor);
  for (CpuId c = 0; c < static_cast<CpuId>(cpus_.size()); ++c) {
    const BalanceWheel& w = wheel_[c];
    const bool gen_current = w.desig_gen == node_idle_gen_[topo_->NodeOf(c)];
    Time all_busy = kTimeNever;
    Time all_idle = kTimeNever;
    Time fire_busy = kTimeNever;
    Time fire_idle = kTimeNever;
    int i = 0;
    for (const SchedDomain& sd : cpus_[c].domains.domains) {
      const uint32_t bit = i < 32 ? (1u << i) : 0u;
      Time due_idle = sd.last_balance + sd.balance_interval;
      Time due_busy = sd.last_balance + sd.balance_interval * factor;
      all_idle = std::min(all_idle, due_idle);
      all_busy = std::min(all_busy, due_busy);
      bool known = (w.desig_known & bit) != 0;
      bool self = (w.desig_self & bit) != 0;
      if (known && gen_current && self != (DesignatedCpu(c, sd) == c)) {
        return false;  // A current-generation bit disagrees with the truth.
      }
      if (!known || self) {
        fire_idle = std::min(fire_idle, due_idle);
        fire_busy = std::min(fire_busy, due_busy);
      }
      ++i;
    }
    if (w.ndom != i || w.all_busy != all_busy || w.all_idle != all_idle) {
      return false;
    }
    // fire minima may be *stale-high relative to cleared bits* never: they
    // are recomputed whenever bits change. They must match the recorded
    // bits exactly when those were folded in as valid, and must never be
    // below the all-domain minimum.
    if (w.fire_busy < w.all_busy || w.fire_idle < w.all_idle) {
      return false;
    }
    if (gen_current && (w.fire_busy > fire_busy || w.fire_idle > fire_idle)) {
      // Under a current generation the fast paths consult fire_*: they must
      // not exceed the bit-derived minima, or a due+unknown/self domain
      // could be skipped without a walk.
      return false;
    }
  }
  // NOHZ wheel: the sum is exact over index members; the due bound is a
  // lower bound (stale-low is sound, stale-high is not).
  int sum = 0;
  Time true_min = kTimeNever;
  for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
    for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = idle_next_[c]) {
      sum += wheel_[c].ndom;
      true_min = std::min(true_min, wheel_[c].all_idle);
    }
  }
  if (sum != idle_ndom_sum_ || nohz_all_due_ > true_min) {
    return false;
  }
  return true;
}

bool Scheduler::CanSteal(CpuId idle_cpu, CpuId busy_cpu) const {
  return cpus_[busy_cpu].rq.HasStealableFor(idle_cpu);
}

ThreadId Scheduler::CreateThread(Time now, const ThreadParams& params) {
  ThreadId tid = static_cast<ThreadId>(entities_.size());
  entities_.emplace_back();
  SchedEntity& se = entities_.back();
  se.tid = tid;
  se.SetNice(params.nice);
  se.autogroup = params.autogroup;
  se.affinity = params.affinity.Empty() ? topo_->AllCpus() : params.affinity;
  se.load = LoadTracker(1.0);
  se.load.SetState(now, true);
  autogroups_[se.autogroup].nr_threads += 1;
  ++ag_epoch_;
  stats_.forks += 1;

  // Fork placement is the policy's call; the core checks the answer is an
  // online allowed cpu (any online cpu when affinity has no online member).
  CpuId target = policy_->SelectForkCpu(now, se, params.parent_cpu);
  WC_CHECK(target != kInvalidCpu && online_.Test(target) &&
               (se.affinity.Test(target) || (se.affinity & online_).Empty()),
           "policy fork placement violated affinity/online");

  Cpu& c = cpus_[target];
  bool was_idle = c.rq.Idle();
  c.rq.Enqueue(&se, now, CfsRunqueue::EnqueueKind::kNew);
  UpdateIdleState(now, target);
  NotifyNrRunning(now, target);
  NotifyLoad(now, target);
  if (was_idle) {
    client_->KickCpu(target);
  } else if (policy_->WakeupPreempts(now, target, se)) {
    c.need_resched = true;
    client_->KickCpu(target);
  }
  return tid;
}

void Scheduler::ExitCurrent(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  SchedEntity* se = c.rq.curr();
  WC_CHECK(se != nullptr, "no running thread to exit");
  trace_->OnSwitchOut(now, cpu, se->tid, now - se->switched_in_at, /*still_runnable=*/false);
  c.rq.PutCurr(now, CfsRunqueue::PutKind::kBlocked);
  se->load.SetState(now, false);
  autogroups_[se->autogroup].nr_threads -= 1;
  ++ag_epoch_;
  stats_.exits += 1;
  UpdateIdleState(now, cpu);
  NotifyNrRunning(now, cpu);
  NotifyLoad(now, cpu);
}

void Scheduler::BlockCurrent(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  SchedEntity* se = c.rq.curr();
  WC_CHECK(se != nullptr, "no running thread to block");
  trace_->OnSwitchOut(now, cpu, se->tid, now - se->switched_in_at, /*still_runnable=*/false);
  c.rq.PutCurr(now, CfsRunqueue::PutKind::kBlocked);
  se->load.SetState(now, false);
  UpdateIdleState(now, cpu);
  NotifyNrRunning(now, cpu);
  NotifyLoad(now, cpu);
}

CpuId Scheduler::Wake(Time now, ThreadId tid, CpuId waker_cpu) {
  SchedEntity& se = entities_[tid];
  WC_CHECK(!se.on_rq, "waking a runnable thread");
  se.load.Advance(now);
  se.last_wakeup = now;
  se.wakeup_pending = true;
  stats_.wakeups += 1;

  CpuSet considered;
  CpuId target = policy_->SelectWakeCpu(now, se, waker_cpu, &considered);
  WC_CHECK(target != kInvalidCpu && online_.Test(target) &&
               (se.affinity.Test(target) || (se.affinity & online_).Empty()),
           "policy wakeup placement violated affinity/online");
  trace_->OnConsidered(now, waker_cpu != kInvalidCpu ? waker_cpu : target, considered,
                       ConsideredKind::kWakeup);

  if (target == se.cpu) {
    stats_.wakeups_on_prev += 1;
  }
  if (cpus_[target].rq.Idle()) {
    stats_.wakeups_on_idle += 1;
  } else {
    stats_.wakeups_on_busy += 1;
  }

  // Cross-cpu wake: re-base vruntime between the queues, as the kernel does
  // in migrate_task_rq_fair + enqueue.
  if (target != se.cpu && se.cpu != kInvalidCpu) {
    Time src_min = cpus_[se.cpu].rq.min_vruntime();
    Time dst_min = cpus_[target].rq.min_vruntime();
    Time rel = se.vruntime > src_min ? se.vruntime - src_min : 0;
    se.vruntime = dst_min + rel;
  }
  EnqueueWake(now, &se, target);
  return target;
}

void Scheduler::EnqueueWake(Time now, SchedEntity* se, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  bool was_idle = c.rq.Idle();
  c.rq.Enqueue(se, now, CfsRunqueue::EnqueueKind::kWakeup);
  se->load.SetState(now, true);
  UpdateIdleState(now, cpu);
  NotifyNrRunning(now, cpu);
  NotifyLoad(now, cpu);
  if (was_idle) {
    client_->KickCpu(cpu);
  } else if (policy_->WakeupPreempts(now, cpu, *se)) {
    c.need_resched = true;
    client_->KickCpu(cpu);
  }
}

ThreadId Scheduler::PickNext(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  c.need_resched = false;
  if (!online_.Test(cpu)) {
    return kInvalidThread;
  }
  SchedEntity* prev = c.rq.curr();
  if (prev != nullptr) {
    prev->load.Advance(now);
    c.rq.PutCurr(now, CfsRunqueue::PutKind::kStillRunnable);
  }
  SchedEntity* next = PickEntityOn(now, cpu);
  if (next == nullptr) {
    // "Emergency" balancing when a core becomes idle (§2.2).
    policy_->NewIdleBalance(now, cpu);
    next = PickEntityOn(now, cpu);
  }
  // Switch accounting, with kernel sched_switch semantics: re-picking the
  // same thread is not a switch and reports nothing.
  if (next != prev) {
    if (prev != nullptr) {
      trace_->OnSwitchOut(now, cpu, prev->tid, now - prev->switched_in_at,
                          /*still_runnable=*/true);
    }
    if (next != nullptr) {
      trace_->OnSwitchIn(now, cpu, next->tid, now - next->queued_since);
      next->switched_in_at = now;
      if (next->wakeup_pending) {
        next->wakeup_pending = false;
        trace_->OnWakeupLatency(now, cpu, next->tid, now - next->last_wakeup);
      }
    }
  }
  UpdateIdleState(now, cpu);
  return next != nullptr ? next->tid : kInvalidThread;
}

SchedEntity* Scheduler::PickEntityOn(Time now, CpuId cpu) {
  SchedEntity* cand = policy_->PickNextEntity(now, cpu);
  if (cand == nullptr) {
    return nullptr;
  }
  return cpus_[cpu].rq.PickSpecific(cand, now);
}

void Scheduler::Tick(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  if (!online_.Test(cpu)) {
    return;
  }
  stats_.ticks += 1;
  c.rq.UpdateCurr(now);
  if (c.rq.curr() != nullptr) {
    c.rq.curr()->load.Advance(now);
  }
  if (policy_->TickPreempt(now, cpu)) {
    c.need_resched = true;
  }

  policy_->PeriodicBalance(now, cpu);

  // NOHZ: an overloaded core wakes the first tickless idle core and assigns
  // it the NOHZ balancer role (§2.2.2).
  if (nr_running_[cpu] >= 2 && now >= c.last_nohz_kick + tunables_.nohz_kick_interval) {
    CpuId t = NohzKickTarget();
    if (t != kInvalidCpu) {
      c.last_nohz_kick = now;
      stats_.nohz_kicks += 1;
      client_->NohzKick(t);
    }
  }
}

CpuId Scheduler::NohzKickTarget() const {
  // The replaced linear scan took the first online cpu, in ascending id
  // order, with tickless && Idle — i.e. the minimum id over {online &&
  // tickless && idle}. The idle index holds exactly the online tickless
  // cpus, so the same minimum falls out of walking its node lists (sorted
  // by idle_since, hence no early exit within a node, but the lists are
  // short exactly when this check runs: the kicking cpu is overloaded).
  // The Idle() re-check mirrors the old scan's condition verbatim.
  CpuId best = kInvalidCpu;
  for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
    for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = idle_next_[c]) {
      if (nr_running_[c] == 0 && (best == kInvalidCpu || c < best)) {
        best = c;
      }
    }
  }
  return best;
}

void Scheduler::RunNohzBalance(Time now, CpuId cpu) { policy_->NohzBalance(now, cpu); }

void Scheduler::CfsPeriodicBalance(Time now, CpuId cpu) {
  // Periodic load balancing: Algorithm 1, bottom-up over this core's
  // scheduling domains. This core is busy (it is taking a tick), so its
  // intervals are stretched by busy_balance_factor, as in the kernel.
  //
  // The common tick does O(1) work via the balance-due wheel: the walk it
  // replaces is pure skip accounting unless some domain is both due and
  // designated to this cpu, and the wheel's precomputed minima prove the
  // negative without touching the domains (exactness argued at BalanceWheel
  // and in EXPERIMENTS.md "Tick epoch-ization").
  BalanceWheel& w = wheel_[cpu];
  if (now < w.all_busy) {
    // Every domain would interval-skip; account them in bulk.
    stats_.balance_interval_skips += static_cast<uint64_t>(w.ndom);
    return;
  }
  if (w.desig_gen == node_idle_gen_[topo_->NodeOf(cpu)] && now < w.fire_busy) {
    // Some domain is due, but its cached designation says another cpu
    // balances it (now < fire_busy leaves no due domain unknown or ours).
    // Classify with integer compares only — no DesignatedCpu calls.
    for (SchedDomain& sd : cpus_[cpu].domains.domains) {
      Time interval = sd.balance_interval * static_cast<Time>(tunables_.busy_balance_factor);
      if (now < sd.last_balance + interval) {
        stats_.balance_interval_skips += 1;
      } else {
        stats_.balance_designation_skips += 1;
      }
    }
    return;
  }
  BalanceDomainsWalk(now, cpu, /*busy=*/true, ConsideredKind::kPeriodicBalance);
  RecomputeWheelDues(cpu);
}

void Scheduler::CfsNohzBalance(Time now, CpuId cpu) {
  // The kicked core runs the periodic balancing routine for itself and on
  // behalf of all tickless idle cores (§2.2.2).
  //
  // Fast path: nohz_all_due_ lower-bounds every idle-index member's
  // earliest due time, so "now < nohz_all_due_" proves the whole delegated
  // sweep would be interval skips — account them in bulk (idle_ndom_sum_)
  // without visiting a single domain. The kicked cpu itself participates
  // unconditionally; if it left the index since the kick (woke up busy),
  // its own wheel must also clear.
  if (now < nohz_all_due_) {
    if (tickless_[cpu] != 0) {
      // cpu is an index member: participants == index members exactly.
      stats_.balance_interval_skips += static_cast<uint64_t>(idle_ndom_sum_);
      return;
    }
    if (now < wheel_[cpu].all_idle) {
      stats_.balance_interval_skips +=
          static_cast<uint64_t>(idle_ndom_sum_) + static_cast<uint64_t>(wheel_[cpu].ndom);
      return;
    }
  }
  for (CpuId x : online_) {
    if (x != cpu && !(tickless_[x] != 0 && nr_running_[x] == 0)) {
      continue;
    }
    BalanceWheel& w = wheel_[x];
    if (now < w.all_idle) {
      stats_.balance_interval_skips += static_cast<uint64_t>(w.ndom);
      continue;
    }
    if (w.desig_gen == node_idle_gen_[topo_->NodeOf(x)] && now < w.fire_idle) {
      for (SchedDomain& sd : cpus_[x].domains.domains) {
        if (now < sd.last_balance + sd.balance_interval) {
          stats_.balance_interval_skips += 1;
        } else {
          stats_.balance_designation_skips += 1;
        }
      }
      continue;
    }
    BalanceDomainsWalk(now, x, /*busy=*/false, ConsideredKind::kNohzBalance);
    RecomputeWheelDues(x);
  }
  // The sweep may have fired balances (dues moved forward) or only proved
  // the bound stale-low; either way re-derive the globals exactly.
  RecomputeNohzGlobals();
}

void Scheduler::BalanceDomainsWalk(Time now, CpuId cpu, bool busy, ConsideredKind kind) {
  // The pre-wheel per-domain loop, verbatim: interval check, designation
  // check, fire. The only addition is bookkeeping — designation answers are
  // recorded into the wheel (and served from it while its generation holds)
  // so the next ticks can skip without calling DesignatedCpu at all.
  NodeId node = topo_->NodeOf(cpu);
  BalanceWheel& w = wheel_[cpu];
  if (w.desig_gen != node_idle_gen_[node]) {
    w.desig_known = 0;
    w.desig_self = 0;
    w.desig_gen = node_idle_gen_[node];
  }
  int i = 0;
  for (SchedDomain& sd : cpus_[cpu].domains.domains) {
    // Levels beyond the 32 designation bits (never reached: trees are a
    // handful of levels) simply stay unknown — conservative, not wrong.
    const uint32_t bit = i < 32 ? (1u << i) : 0u;
    ++i;
    Time interval = busy ? sd.balance_interval * static_cast<Time>(tunables_.busy_balance_factor)
                         : sd.balance_interval;
    if (now < sd.last_balance + interval) {
      stats_.balance_interval_skips += 1;
      continue;
    }
    bool self;
    if ((w.desig_known & bit) != 0 && w.desig_gen == node_idle_gen_[node]) {
      self = (w.desig_self & bit) != 0;
    } else {
      self = DesignatedCpu(cpu, sd) == cpu;
      w.desig_known |= bit;
      if (self) {
        w.desig_self |= bit;
      } else {
        w.desig_self &= ~bit;
      }
    }
    if (!self) {
      stats_.balance_designation_skips += 1;
      continue;
    }
    sd.last_balance = now;
    BalanceDomain(now, cpu, sd, kind);
  }
  if (w.desig_gen != node_idle_gen_[node]) {
    // A balance moved tasks and flipped idleness mid-walk: bits recorded
    // above mix generations. Drop them all; the next walk refills.
    w.desig_known = 0;
    w.desig_self = 0;
    w.desig_gen = node_idle_gen_[node];
  }
}

void Scheduler::RecomputeWheelDues(CpuId cpu) {
  BalanceWheel& w = wheel_[cpu];
  const Time factor = static_cast<Time>(tunables_.busy_balance_factor);
  const bool bits_valid = w.desig_gen == node_idle_gen_[topo_->NodeOf(cpu)];
  Time all_busy = kTimeNever;
  Time all_idle = kTimeNever;
  Time fire_busy = kTimeNever;
  Time fire_idle = kTimeNever;
  int i = 0;
  for (const SchedDomain& sd : cpus_[cpu].domains.domains) {
    const uint32_t bit = i < 32 ? (1u << i) : 0u;
    ++i;
    Time due_idle = sd.last_balance + sd.balance_interval;
    Time due_busy = sd.last_balance + sd.balance_interval * factor;
    all_idle = std::min(all_idle, due_idle);
    all_busy = std::min(all_busy, due_busy);
    // fire_* drops only domains *known* to be someone else's; unknown ones
    // are conservatively treated as would-fire.
    bool known_not_self =
        bits_valid && (w.desig_known & bit) != 0 && (w.desig_self & bit) == 0;
    if (!known_not_self) {
      fire_idle = std::min(fire_idle, due_idle);
      fire_busy = std::min(fire_busy, due_busy);
    }
  }
  w.all_busy = all_busy;
  w.all_idle = all_idle;
  w.fire_busy = fire_busy;
  w.fire_idle = fire_idle;
  w.ndom = i;
}

void Scheduler::RecomputeNohzGlobals() {
  Time min_due = kTimeNever;
  int sum = 0;
  for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
    for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = idle_next_[c]) {
      min_due = std::min(min_due, wheel_[c].all_idle);
      sum += wheel_[c].ndom;
    }
  }
  nohz_all_due_ = min_due;
  idle_ndom_sum_ = sum;
}

void Scheduler::SetCpuOnline(Time now, CpuId cpu, bool online) {
  Cpu& c = cpus_[cpu];
  if (online_.Test(cpu) == online) {
    return;
  }
  balance_epoch_ += 1;  // Group membership (n_cpus) is about to change.
  topo_epoch_ += 1;     // Per-entry slice of the same fact, for group_cache_.
  if (!online) {
    // If the core sits idle in the index, drop it first: offline cpus are
    // never listed (the evacuation below re-checks idle state with the
    // online bit already cleared, so it will not re-insert).
    if (tickless_[cpu] != 0) {
      IdleIndexRemove(cpu);
    }
    online_.Clear(cpu);

    // Evacuate the runqueue: the running thread first, then queued ones.
    // Member scratch, not a local vector: hotplug churn (the fuzzer, the
    // hotplug scenarios) should not allocate per event.
    evacuees_scratch_.clear();
    if (c.rq.curr() != nullptr) {
      SchedEntity* curr = c.rq.curr();
      trace_->OnSwitchOut(now, cpu, curr->tid, now - curr->switched_in_at,
                          /*still_runnable=*/true);
      c.rq.PutCurr(now, CfsRunqueue::PutKind::kBlocked);
      curr->queued_since = now;  // Starts waiting on the evacuation target.
      evacuees_scratch_.push_back(curr);
    }
    c.rq.ForEachQueued([&](const SchedEntity* se) {
      evacuees_scratch_.push_back(const_cast<SchedEntity*>(se));
      return true;
    });
    for (SchedEntity* se : evacuees_scratch_) {
      if (se->on_rq) {
        c.rq.DequeueQueued(se, now);
      }
      CpuId target = FirstAllowedOnline(se->affinity);
      Time src_min = c.rq.min_vruntime();
      Time dst_min = cpus_[target].rq.min_vruntime();
      Time rel = se->vruntime > src_min ? se->vruntime - src_min : 0;
      se->vruntime = dst_min + rel;
      bool was_idle = cpus_[target].rq.Idle();
      cpus_[target].rq.Enqueue(se, now, CfsRunqueue::EnqueueKind::kMigrate);
      se->cpu = target;
      stats_.migrations_hotplug += 1;
      trace_->OnMigration(now, se->tid, cpu, target, MigrationReason::kHotplug);
      UpdateIdleState(now, target);
      NotifyNrRunning(now, target);
      NotifyLoad(now, target);
      if (was_idle) {
        client_->KickCpu(target);
      }
    }
    UpdateIdleState(now, cpu);
    NotifyNrRunning(now, cpu);
    NotifyLoad(now, cpu);
    client_->KickCpu(cpu);
  } else {
    online_.Set(cpu);
    idle_since_[cpu] = now;
    tickless_[cpu] = 1;
    c.need_resched = false;
    // The insert sums a wheel ndom that is stale (the offline tree was
    // empty); RebuildDomains below recomputes the NOHZ globals exactly
    // before any balancer can observe them.
    IdleIndexInsert(cpu);
  }
  RebuildDomains();
}

CpuId Scheduler::DesignatedCpu(CpuId cpu, const SchedDomain& sd) const {
  // Within multi-node (possibly overlapping) groups, balancing on the
  // group's behalf is the responsibility of each node's own cores — "the
  // core responsible for load balancing on each node" (§3.2) — so the
  // balance mask is the local group restricted to this cpu's node. For
  // SMT/NODE domains the local group is the balance mask itself.
  const SchedGroup& local = sd.groups[sd.local_group];
  CpuSet mask = local.cpus & online_;
  if (local.seed_node != kInvalidNode) {
    CpuSet node_cpus = topo_->CpusOfNode(topo_->NodeOf(cpu)) & mask;
    if (!node_cpus.Empty()) {
      mask = node_cpus;
    }
  }
  for (CpuId c : mask) {
    if (nr_running_[c] == 0) {
      return c;
    }
  }
  return mask.First();
}

void Scheduler::RebuildDomains() {
  // §3.4: regeneration is a two-step process — domains inside NUMA nodes,
  // then across them. Stock kernels dropped the second step during a
  // refactoring; fix_missing_domains restores it.
  DomainBuildOptions opts;
  opts.perspective = features_.fix_group_construction ? GroupPerspective::kPerCore
                                                      : GroupPerspective::kCore0;
  opts.cross_node_levels = features_.fix_missing_domains;
  opts.base_balance_interval = tunables_.base_balance_interval;
  auto trees = BuildDomains(*topo_, online_, opts);
  for (CpuId c = 0; c < topo_->n_cores(); ++c) {
    cpus_[c].domains = std::move(trees[c]);
  }
  // Fresh trees mean fresh SchedDomain objects (last_balance reset) and a
  // possibly-changed online mask: rebuild the whole wheel layer. Bumping
  // every node generation drops all cached designation bits — the online
  // mask is a DesignatedCpu input that the idle generations do not
  // otherwise cover.
  for (uint64_t& gen : node_idle_gen_) {
    gen += 1;
  }
  for (CpuId c = 0; c < topo_->n_cores(); ++c) {
    BalanceWheel& w = wheel_[c];
    w.desig_known = 0;
    w.desig_self = 0;
    w.desig_gen = node_idle_gen_[topo_->NodeOf(c)];
    RecomputeWheelDues(c);
  }
  RecomputeNohzGlobals();
}

}  // namespace wcores
