#include "src/core/scheduler.h"

#include "src/simkit/check.h"

#include <cassert>

#include "src/core/sched_policy.h"
#include "src/simkit/log.h"

namespace wcores {

TraceSink* Scheduler::NullSink() {
  static TraceSink sink;
  return &sink;
}

Scheduler::Scheduler(const Topology& topo, const SchedFeatures& features,
                     const SchedTunables& tunables, SchedClient* client, TraceSink* trace,
                     SchedPolicy* policy)
    : topo_(&topo),
      features_(features),
      tunables_(tunables),
      client_(client),
      trace_(trace != nullptr ? trace : NullSink()) {
  WC_CHECK(client_ != nullptr, "scheduler needs a client");
  if (policy != nullptr) {
    policy_ = policy;
  } else {
    owned_policy_ = std::make_unique<CfsPolicy>();
    policy_ = owned_policy_.get();
  }
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    cpus_.emplace_back(c, &tunables_, &balance_epoch_);
    online_.Set(c);
  }
  autogroups_.push_back(Autogroup{kRootAutogroup, 0});

  // Boot-time domain construction always includes the cross-NUMA levels; the
  // Missing Scheduling Domains bug only manifests on *regeneration* (§3.4).
  DomainBuildOptions opts;
  opts.perspective = features_.fix_group_construction ? GroupPerspective::kPerCore
                                                      : GroupPerspective::kCore0;
  opts.cross_node_levels = true;
  opts.base_balance_interval = tunables_.base_balance_interval;
  auto trees = BuildDomains(*topo_, online_, opts);
  idle_head_.assign(static_cast<size_t>(topo.n_nodes()), kInvalidCpu);
  idle_tail_.assign(static_cast<size_t>(topo.n_nodes()), kInvalidCpu);
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    cpus_[c].domains = std::move(trees[c]);
    cpus_[c].tickless = true;
    IdleIndexInsert(c);  // All cpus boot idle since t=0.
  }

  policy_->Attach(this);
  if (policy_->WantsQueueEvents()) {
    for (Cpu& c : cpus_) {
      c.rq.set_observer(policy_);
    }
  }
}

Scheduler::~Scheduler() = default;

AutogroupId Scheduler::CreateAutogroup() {
  AutogroupId id = static_cast<AutogroupId>(autogroups_.size());
  autogroups_.push_back(Autogroup{id, 0});
  return id;
}

double Scheduler::AutogroupDivisor(AutogroupId id) const {
  if (!features_.autogroup_enabled) {
    return 1.0;
  }
  return autogroups_[id].divisor();
}

double Scheduler::RqLoad(Time now, CpuId cpu) const {
  // Memoized exactly, so the cached value is bit-identical to a recompute:
  // the key covers everything LoadAt reads. Membership and weight changes
  // bump rq.load_version(); divisor changes bump ag_epoch_ or feature_gen_;
  // and a member tracker's SetState/Advance at the same instant leaves
  // ValueAt(now) unchanged (decay only accrues across instants), so same
  // (now, version, epochs) implies the same sum.
  //
  // Cross-instant: when load_cache_const is set, every member tracker was
  // constant from load_cache_now on (LoadTracker::ConstantFrom), so under an
  // unchanged version the sum at any later instant is the same doubles
  // folded in the same order — serve the cached value. The one tracker
  // mutation without a version bump, Tick's Advance on curr, cannot break
  // this: Advance of a constant tracker lands on avg == 1.0 and preserves
  // constancy, and a non-constant curr at fill time made load_cache_const
  // false to begin with.
  const Cpu& c = cpus_[cpu];
  if (c.load_cache_version == c.rq.load_version() && c.load_cache_epoch == ag_epoch_ &&
      c.load_cache_feat == feature_gen_ &&
      (c.load_cache_now == now || (c.load_cache_const && now > c.load_cache_now))) {
    return c.load_cache_value;
  }
  bool all_const = false;
  // wc-lint: allow(A4 the memo's own fill path; every other balance read hits the cache above)
  double load = cpus_[cpu].rq.LoadAt(
      now, [this](AutogroupId id) { return AutogroupDivisor(id); }, &all_const);
  c.load_cache_now = now;
  c.load_cache_version = c.rq.load_version();
  c.load_cache_epoch = ag_epoch_;
  c.load_cache_feat = feature_gen_;
  c.load_cache_const = all_const;
  c.load_cache_value = load;
  return load;
}

double Scheduler::RqLoadRecomputed(Time now, CpuId cpu) const {
  return cpus_[cpu].rq.LoadAt(now, [this](AutogroupId id) { return AutogroupDivisor(id); });
}

void Scheduler::UpdateFeatures(const SchedFeatures& features) {
  features_ = features;
  feature_gen_ += 1;
}

void Scheduler::SetNice(Time now, ThreadId tid, int nice) {
  SchedEntity& se = entities_[tid];
  if (se.nice == nice) {
    return;
  }
  if (se.on_rq) {
    cpus_[se.cpu].rq.Reweight(&se, now, nice);
    NotifyLoad(now, se.cpu);
  } else {
    se.SetNice(nice);
  }
}

ThreadId Scheduler::CurrentThread(CpuId cpu) const {
  const SchedEntity* curr = cpus_[cpu].rq.curr();
  return curr != nullptr ? curr->tid : kInvalidThread;
}

CpuId Scheduler::FirstAllowedOnline(const CpuSet& affinity) const {
  CpuId c = (affinity & online_).First();
  return c != kInvalidCpu ? c : online_.First();
}

CpuId Scheduler::CfsForkCpu(const SchedEntity& se, CpuId parent_cpu) const {
  // Fork placement: the parent's core when allowed (§3.2), otherwise the
  // first allowed online cpu.
  if (parent_cpu != kInvalidCpu && online_.Test(parent_cpu) && se.affinity.Test(parent_cpu)) {
    return parent_cpu;
  }
  return FirstAllowedOnline(se.affinity);
}

void Scheduler::NotifyNrRunning(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  int nr = c.rq.nr_running();
  if (nr != c.last_nr_reported) {
    c.last_nr_reported = nr;
    trace_->OnNrRunning(now, cpu, nr);
  }
}

void Scheduler::NotifyLoad(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  double load = RqLoad(now, cpu);
  if (load != c.last_load_reported) {
    c.last_load_reported = load;
    trace_->OnLoad(now, cpu, load);
  }
}

void Scheduler::UpdateIdleState(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  if (c.rq.Idle()) {
    if (!c.tickless) {
      c.idle_since = now;
      c.tickless = true;
      if (c.online) {
        IdleIndexInsert(cpu);
      }
      trace_->OnIdleEnter(now, cpu);
    }
  } else {
    if (c.tickless) {
      trace_->OnIdleExit(now, cpu, now - c.idle_since);
      if (c.online) {
        IdleIndexRemove(cpu);
      }
    }
    c.tickless = false;
  }
}

void Scheduler::IdleIndexInsert(CpuId cpu) {
  Cpu& c = cpus_[cpu];
  NodeId node = topo_->NodeOf(cpu);
  // A cpu going idle at the current instant carries the largest
  // (idle_since, cpu) key of its node except for same-instant ties, so the
  // backward walk from the tail almost always stops immediately.
  CpuId after = idle_tail_[node];
  while (after != kInvalidCpu &&
         (cpus_[after].idle_since > c.idle_since ||
          (cpus_[after].idle_since == c.idle_since && after > cpu))) {
    after = cpus_[after].idle_prev;
  }
  c.idle_prev = after;
  c.idle_next = after == kInvalidCpu ? idle_head_[node] : cpus_[after].idle_next;
  if (c.idle_next != kInvalidCpu) {
    cpus_[c.idle_next].idle_prev = cpu;
  } else {
    idle_tail_[node] = cpu;
  }
  if (after == kInvalidCpu) {
    idle_head_[node] = cpu;
  } else {
    cpus_[after].idle_next = cpu;
  }
}

void Scheduler::IdleIndexRemove(CpuId cpu) {
  Cpu& c = cpus_[cpu];
  NodeId node = topo_->NodeOf(cpu);
  if (c.idle_prev != kInvalidCpu) {
    cpus_[c.idle_prev].idle_next = c.idle_next;
  } else {
    idle_head_[node] = c.idle_next;
  }
  if (c.idle_next != kInvalidCpu) {
    cpus_[c.idle_next].idle_prev = c.idle_prev;
  } else {
    idle_tail_[node] = c.idle_prev;
  }
  c.idle_prev = kInvalidCpu;
  c.idle_next = kInvalidCpu;
}

CpuId Scheduler::LongestIdleCpu(const CpuSet& allowed) const {
  // Each node list is sorted ascending by (idle_since, cpu), so its first
  // allowed entry is the node minimum, and the minimum over node minima is
  // the machine minimum — the same cpu the old full scan produced: lowest
  // idle_since, ties to the lowest cpu id.
  CpuId best = kInvalidCpu;
  Time best_since = kTimeNever;
  for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
    for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = cpus_[c].idle_next) {
      if (!allowed.Test(c)) {
        continue;
      }
      Time since = cpus_[c].idle_since;
      if (since < best_since || (since == best_since && c < best)) {
        best_since = since;
        best = c;
      }
      break;  // Later entries of this node can only have larger keys.
    }
  }
  return best;
}

bool Scheduler::ValidateIdleIndex() const {
  std::vector<bool> in_index(cpus_.size(), false);
  for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
    CpuId prev = kInvalidCpu;
    for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = cpus_[c].idle_next) {
      const Cpu& entry = cpus_[c];
      if (topo_->NodeOf(c) != n || entry.idle_prev != prev) {
        return false;
      }
      if (!entry.online || !entry.tickless || in_index[c]) {
        return false;
      }
      if (prev != kInvalidCpu &&
          (cpus_[prev].idle_since > entry.idle_since ||
           (cpus_[prev].idle_since == entry.idle_since && prev > c))) {
        return false;
      }
      in_index[c] = true;
      prev = c;
    }
    if (idle_tail_[n] != prev) {
      return false;
    }
  }
  for (CpuId c = 0; c < static_cast<CpuId>(cpus_.size()); ++c) {
    if (in_index[c] != (cpus_[c].online && cpus_[c].tickless)) {
      return false;
    }
  }
  return true;
}

bool Scheduler::CanSteal(CpuId idle_cpu, CpuId busy_cpu) const {
  return cpus_[busy_cpu].rq.HasStealableFor(idle_cpu);
}

ThreadId Scheduler::CreateThread(Time now, const ThreadParams& params) {
  ThreadId tid = static_cast<ThreadId>(entities_.size());
  entities_.emplace_back();
  SchedEntity& se = entities_.back();
  se.tid = tid;
  se.SetNice(params.nice);
  se.autogroup = params.autogroup;
  se.affinity = params.affinity.Empty() ? topo_->AllCpus() : params.affinity;
  se.load = LoadTracker(1.0);
  se.load.SetState(now, true);
  autogroups_[se.autogroup].nr_threads += 1;
  ++ag_epoch_;
  stats_.forks += 1;

  // Fork placement is the policy's call; the core checks the answer is an
  // online allowed cpu (any online cpu when affinity has no online member).
  CpuId target = policy_->SelectForkCpu(now, se, params.parent_cpu);
  WC_CHECK(target != kInvalidCpu && online_.Test(target) &&
               (se.affinity.Test(target) || (se.affinity & online_).Empty()),
           "policy fork placement violated affinity/online");

  Cpu& c = cpus_[target];
  bool was_idle = c.rq.Idle();
  c.rq.Enqueue(&se, now, CfsRunqueue::EnqueueKind::kNew);
  UpdateIdleState(now, target);
  NotifyNrRunning(now, target);
  NotifyLoad(now, target);
  if (was_idle) {
    client_->KickCpu(target);
  } else if (policy_->WakeupPreempts(now, target, se)) {
    c.need_resched = true;
    client_->KickCpu(target);
  }
  return tid;
}

void Scheduler::ExitCurrent(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  SchedEntity* se = c.rq.curr();
  WC_CHECK(se != nullptr, "no running thread to exit");
  trace_->OnSwitchOut(now, cpu, se->tid, now - se->switched_in_at, /*still_runnable=*/false);
  c.rq.PutCurr(now, CfsRunqueue::PutKind::kBlocked);
  se->load.SetState(now, false);
  autogroups_[se->autogroup].nr_threads -= 1;
  ++ag_epoch_;
  stats_.exits += 1;
  UpdateIdleState(now, cpu);
  NotifyNrRunning(now, cpu);
  NotifyLoad(now, cpu);
}

void Scheduler::BlockCurrent(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  SchedEntity* se = c.rq.curr();
  WC_CHECK(se != nullptr, "no running thread to block");
  trace_->OnSwitchOut(now, cpu, se->tid, now - se->switched_in_at, /*still_runnable=*/false);
  c.rq.PutCurr(now, CfsRunqueue::PutKind::kBlocked);
  se->load.SetState(now, false);
  UpdateIdleState(now, cpu);
  NotifyNrRunning(now, cpu);
  NotifyLoad(now, cpu);
}

CpuId Scheduler::Wake(Time now, ThreadId tid, CpuId waker_cpu) {
  SchedEntity& se = entities_[tid];
  WC_CHECK(!se.on_rq, "waking a runnable thread");
  se.load.Advance(now);
  se.last_wakeup = now;
  se.wakeup_pending = true;
  stats_.wakeups += 1;

  CpuSet considered;
  CpuId target = policy_->SelectWakeCpu(now, se, waker_cpu, &considered);
  WC_CHECK(target != kInvalidCpu && online_.Test(target) &&
               (se.affinity.Test(target) || (se.affinity & online_).Empty()),
           "policy wakeup placement violated affinity/online");
  trace_->OnConsidered(now, waker_cpu != kInvalidCpu ? waker_cpu : target, considered,
                       ConsideredKind::kWakeup);

  if (target == se.cpu) {
    stats_.wakeups_on_prev += 1;
  }
  if (cpus_[target].rq.Idle()) {
    stats_.wakeups_on_idle += 1;
  } else {
    stats_.wakeups_on_busy += 1;
  }

  // Cross-cpu wake: re-base vruntime between the queues, as the kernel does
  // in migrate_task_rq_fair + enqueue.
  if (target != se.cpu && se.cpu != kInvalidCpu) {
    Time src_min = cpus_[se.cpu].rq.min_vruntime();
    Time dst_min = cpus_[target].rq.min_vruntime();
    Time rel = se.vruntime > src_min ? se.vruntime - src_min : 0;
    se.vruntime = dst_min + rel;
  }
  EnqueueWake(now, &se, target);
  return target;
}

void Scheduler::EnqueueWake(Time now, SchedEntity* se, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  bool was_idle = c.rq.Idle();
  c.rq.Enqueue(se, now, CfsRunqueue::EnqueueKind::kWakeup);
  se->load.SetState(now, true);
  UpdateIdleState(now, cpu);
  NotifyNrRunning(now, cpu);
  NotifyLoad(now, cpu);
  if (was_idle) {
    client_->KickCpu(cpu);
  } else if (policy_->WakeupPreempts(now, cpu, *se)) {
    c.need_resched = true;
    client_->KickCpu(cpu);
  }
}

ThreadId Scheduler::PickNext(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  c.need_resched = false;
  if (!c.online) {
    return kInvalidThread;
  }
  SchedEntity* prev = c.rq.curr();
  if (prev != nullptr) {
    prev->load.Advance(now);
    c.rq.PutCurr(now, CfsRunqueue::PutKind::kStillRunnable);
  }
  SchedEntity* next = PickEntityOn(now, cpu);
  if (next == nullptr) {
    // "Emergency" balancing when a core becomes idle (§2.2).
    policy_->NewIdleBalance(now, cpu);
    next = PickEntityOn(now, cpu);
  }
  // Switch accounting, with kernel sched_switch semantics: re-picking the
  // same thread is not a switch and reports nothing.
  if (next != prev) {
    if (prev != nullptr) {
      trace_->OnSwitchOut(now, cpu, prev->tid, now - prev->switched_in_at,
                          /*still_runnable=*/true);
    }
    if (next != nullptr) {
      trace_->OnSwitchIn(now, cpu, next->tid, now - next->queued_since);
      next->switched_in_at = now;
      if (next->wakeup_pending) {
        next->wakeup_pending = false;
        trace_->OnWakeupLatency(now, cpu, next->tid, now - next->last_wakeup);
      }
    }
  }
  UpdateIdleState(now, cpu);
  return next != nullptr ? next->tid : kInvalidThread;
}

SchedEntity* Scheduler::PickEntityOn(Time now, CpuId cpu) {
  SchedEntity* cand = policy_->PickNextEntity(now, cpu);
  if (cand == nullptr) {
    return nullptr;
  }
  return cpus_[cpu].rq.PickSpecific(cand, now);
}

void Scheduler::Tick(Time now, CpuId cpu) {
  Cpu& c = cpus_[cpu];
  if (!c.online) {
    return;
  }
  stats_.ticks += 1;
  c.rq.UpdateCurr(now);
  if (c.rq.curr() != nullptr) {
    c.rq.curr()->load.Advance(now);
  }
  if (policy_->TickPreempt(now, cpu)) {
    c.need_resched = true;
  }

  policy_->PeriodicBalance(now, cpu);

  // NOHZ: an overloaded core wakes the first tickless idle core and assigns
  // it the NOHZ balancer role (§2.2.2).
  if (c.rq.nr_running() >= 2 && now >= c.last_nohz_kick + tunables_.nohz_kick_interval) {
    for (CpuId t : online_) {
      if (cpus_[t].tickless && cpus_[t].rq.Idle()) {
        c.last_nohz_kick = now;
        stats_.nohz_kicks += 1;
        client_->NohzKick(t);
        break;
      }
    }
  }
}

void Scheduler::RunNohzBalance(Time now, CpuId cpu) { policy_->NohzBalance(now, cpu); }

void Scheduler::CfsPeriodicBalance(Time now, CpuId cpu) {
  // Periodic load balancing: Algorithm 1, bottom-up over this core's
  // scheduling domains. This core is busy (it is taking a tick), so its
  // intervals are stretched by busy_balance_factor, as in the kernel.
  Cpu& c = cpus_[cpu];
  for (SchedDomain& sd : c.domains.domains) {
    Time interval = sd.balance_interval * static_cast<Time>(tunables_.busy_balance_factor);
    if (now < sd.last_balance + interval) {
      stats_.balance_interval_skips += 1;
      continue;
    }
    if (DesignatedCpu(cpu, sd) != cpu) {
      stats_.balance_designation_skips += 1;
      continue;
    }
    sd.last_balance = now;
    BalanceDomain(now, cpu, sd, ConsideredKind::kPeriodicBalance);
  }
}

void Scheduler::CfsNohzBalance(Time now, CpuId cpu) {
  // The kicked core runs the periodic balancing routine for itself and on
  // behalf of all tickless idle cores (§2.2.2).
  for (CpuId x : online_) {
    if (x != cpu && !(cpus_[x].tickless && cpus_[x].rq.Idle())) {
      continue;
    }
    for (SchedDomain& sd : cpus_[x].domains.domains) {
      if (now < sd.last_balance + sd.balance_interval) {
        stats_.balance_interval_skips += 1;
        continue;
      }
      if (DesignatedCpu(x, sd) != x) {
        stats_.balance_designation_skips += 1;
        continue;
      }
      sd.last_balance = now;
      BalanceDomain(now, x, sd, ConsideredKind::kNohzBalance);
    }
  }
}

void Scheduler::SetCpuOnline(Time now, CpuId cpu, bool online) {
  Cpu& c = cpus_[cpu];
  if (c.online == online) {
    return;
  }
  balance_epoch_ += 1;  // Group membership (n_cpus) is about to change.
  topo_epoch_ += 1;     // Per-entry slice of the same fact, for group_cache_.
  if (!online) {
    // If the core sits idle in the index, drop it first: offline cpus are
    // never listed (the evacuation below re-checks idle state with
    // c.online already false, so it will not re-insert).
    if (c.tickless) {
      IdleIndexRemove(cpu);
    }
    c.online = false;
    online_.Clear(cpu);

    // Evacuate the runqueue: the running thread first, then queued ones.
    std::vector<SchedEntity*> evacuees;
    if (c.rq.curr() != nullptr) {
      SchedEntity* curr = c.rq.curr();
      trace_->OnSwitchOut(now, cpu, curr->tid, now - curr->switched_in_at,
                          /*still_runnable=*/true);
      c.rq.PutCurr(now, CfsRunqueue::PutKind::kBlocked);
      curr->queued_since = now;  // Starts waiting on the evacuation target.
      evacuees.push_back(curr);
    }
    c.rq.ForEachQueued([&](const SchedEntity* se) {
      evacuees.push_back(const_cast<SchedEntity*>(se));
      return true;
    });
    for (SchedEntity* se : evacuees) {
      if (se->on_rq) {
        c.rq.DequeueQueued(se, now);
      }
      CpuId target = FirstAllowedOnline(se->affinity);
      Time src_min = c.rq.min_vruntime();
      Time dst_min = cpus_[target].rq.min_vruntime();
      Time rel = se->vruntime > src_min ? se->vruntime - src_min : 0;
      se->vruntime = dst_min + rel;
      bool was_idle = cpus_[target].rq.Idle();
      cpus_[target].rq.Enqueue(se, now, CfsRunqueue::EnqueueKind::kMigrate);
      se->cpu = target;
      stats_.migrations_hotplug += 1;
      trace_->OnMigration(now, se->tid, cpu, target, MigrationReason::kHotplug);
      UpdateIdleState(now, target);
      NotifyNrRunning(now, target);
      NotifyLoad(now, target);
      if (was_idle) {
        client_->KickCpu(target);
      }
    }
    UpdateIdleState(now, cpu);
    NotifyNrRunning(now, cpu);
    NotifyLoad(now, cpu);
    client_->KickCpu(cpu);
  } else {
    c.online = true;
    online_.Set(cpu);
    c.idle_since = now;
    c.tickless = true;
    c.need_resched = false;
    IdleIndexInsert(cpu);
  }
  RebuildDomains();
}

CpuId Scheduler::DesignatedCpu(CpuId cpu, const SchedDomain& sd) const {
  // Within multi-node (possibly overlapping) groups, balancing on the
  // group's behalf is the responsibility of each node's own cores — "the
  // core responsible for load balancing on each node" (§3.2) — so the
  // balance mask is the local group restricted to this cpu's node. For
  // SMT/NODE domains the local group is the balance mask itself.
  const SchedGroup& local = sd.groups[sd.local_group];
  CpuSet mask = local.cpus & online_;
  if (local.seed_node != kInvalidNode) {
    CpuSet node_cpus = topo_->CpusOfNode(topo_->NodeOf(cpu)) & mask;
    if (!node_cpus.Empty()) {
      mask = node_cpus;
    }
  }
  for (CpuId c : mask) {
    if (cpus_[c].rq.Idle()) {
      return c;
    }
  }
  return mask.First();
}

void Scheduler::RebuildDomains() {
  // §3.4: regeneration is a two-step process — domains inside NUMA nodes,
  // then across them. Stock kernels dropped the second step during a
  // refactoring; fix_missing_domains restores it.
  DomainBuildOptions opts;
  opts.perspective = features_.fix_group_construction ? GroupPerspective::kPerCore
                                                      : GroupPerspective::kCore0;
  opts.cross_node_levels = features_.fix_missing_domains;
  opts.base_balance_interval = tunables_.base_balance_interval;
  auto trees = BuildDomains(*topo_, online_, opts);
  for (CpuId c = 0; c < topo_->n_cores(); ++c) {
    cpus_[c].domains = std::move(trees[c]);
  }
}

}  // namespace wcores
