// The per-core CFS runqueue (§2.1-2.2).
//
// "Scalability concerns dictate using per-core runqueues": each core owns a
// red-black tree of runnable entities sorted by vruntime plus the currently
// running entity (kept outside the tree, as in the kernel). Picking the next
// thread to run takes the leftmost node.
#ifndef SRC_CORE_CFS_RQ_H_
#define SRC_CORE_CFS_RQ_H_

#include <cstdint>

#include "src/core/entity.h"
#include "src/core/features.h"
#include "src/core/rbtree.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

class RqObserver;

class CfsRunqueue {
 public:
  // `shared_load_epoch`, when given, is bumped alongside load_version_ so an
  // owner with many runqueues (the scheduler) can invalidate cross-runqueue
  // caches in O(1) instead of summing per-queue versions.
  CfsRunqueue(CpuId cpu, const SchedTunables* tunables, uint64_t* shared_load_epoch = nullptr)
      : cpu_(cpu), tunables_(tunables), shared_load_epoch_(shared_load_epoch) {}
  CfsRunqueue(const CfsRunqueue&) = delete;
  CfsRunqueue& operator=(const CfsRunqueue&) = delete;

  CpuId cpu() const { return cpu_; }

  // ---- Entity placement -------------------------------------------------

  enum class EnqueueKind {
    kWakeup,   // Thread waking from sleep: receives the sleeper credit.
    kNew,      // Freshly forked thread: starts at min_vruntime.
    kMigrate,  // Moved by the balancer: vruntime already re-based by caller.
    kPutPrev,  // Previously running thread being requeued after preemption.
  };

  void Enqueue(SchedEntity* se, Time now, EnqueueKind kind);

  // Removes a *queued* (not running) entity, e.g. when stolen.
  void DequeueQueued(SchedEntity* se, Time now);

  // Changes the nice value of an entity currently on this queue (queued or
  // running). The vruntime key is untouched — weight scales only future
  // accrual, which is why no re-insert is needed — but the load sum and
  // total_weight_ change, so the load version is bumped exactly like an
  // enqueue/dequeue would be.
  void Reweight(SchedEntity* se, Time now, int nice);

  // ---- The running entity ----------------------------------------------

  SchedEntity* curr() const { return curr_; }

  // Dequeues the leftmost entity and makes it curr. Pre: no curr.
  SchedEntity* PickNext(Time now);

  // Dequeues a specific *queued* entity and makes it curr — the generalized
  // pick used by non-CFS policies (src/core/sched_policy.h), which may run
  // something other than the vruntime leftmost. PickNext(now) is exactly
  // PickSpecific(PeekLeftmost(), now).
  SchedEntity* PickSpecific(SchedEntity* se, Time now);

  // The entity PickNext would choose, without dequeuing it.
  SchedEntity* PeekLeftmost() const { return tree_.Leftmost(); }

  // Accounts curr's runtime into vruntime/min_vruntime. Call at ticks and
  // before any decision that reads vruntime or load.
  void UpdateCurr(Time now);

  // Stops running curr. The entity is re-enqueued (kStillRunnable) or
  // removed entirely (thread blocked or exited).
  enum class PutKind { kStillRunnable, kBlocked };
  void PutCurr(Time now, PutKind kind);

  // ---- Introspection -----------------------------------------------------

  // Queued + running, like the kernel's rq->nr_running.
  int nr_running() const { return static_cast<int>(tree_.Size()) + (curr_ != nullptr ? 1 : 0); }
  int queued() const { return static_cast<int>(tree_.Size()); }
  bool Idle() const { return nr_running() == 0; }

  Time min_vruntime() const { return min_vruntime_; }

  // Sum of entity loads (weight x runnable-fraction / autogroup divisor);
  // `divisor_of(autogroup_id)` supplies the autogroup division.
  //
  // The fold order — curr first, then the tree in vruntime order — is part
  // of the contract: float addition does not commute bit-wise, and the
  // RqLoad memo (scheduler.cc) replays cached sums verbatim, so every path
  // that recomputes must fold in this exact order.
  template <typename DivisorFn>
  double LoadAt(Time now, DivisorFn&& divisor_of) const {
    bool ignored;
    // wc-lint: allow(A4 this IS the canonical fold the memo caches)
    return LoadAt(now, divisor_of, &ignored);
  }

  // As above, additionally reporting whether every runnable entity's tracker
  // is constant from `now` on (LoadTracker::ConstantFrom): if so, this exact
  // sum — same doubles, same fold order — is what any later-instant
  // recomputation would produce, as long as membership, weights, and
  // divisors are unchanged. The scheduler's cross-instant load memos key on
  // this.
  template <typename DivisorFn>
  double LoadAt(Time now, DivisorFn&& divisor_of, bool* all_constant) const {
    double total = 0;
    bool all_const = true;
    if (curr_ != nullptr) {
      // wc-lint: allow(A4 curr-first is the pinned fold order the memo replays)
      total += EntityLoad(*curr_, now, divisor_of(curr_->autogroup));
      all_const = all_const && curr_->load.ConstantFrom(now);
    }
    tree_.ForEach([&](const SchedEntity* se) {
      // wc-lint: allow(A4 vruntime-order tree walk is the pinned fold order)
      total += EntityLoad(*se, now, divisor_of(se->autogroup));
      all_const = all_const && se->load.ConstantFrom(now);
      return true;
    });
    *all_constant = all_const;
    return total;
  }

  static double EntityLoad(const SchedEntity& se, Time now, double divisor) {
    // wc-lint: allow(A4 the one sanctioned per-entity read under LoadAt)
    return static_cast<double>(se.weight) * se.load.ValueAt(now) / divisor;
  }

  // Visits queued entities in increasing vruntime order. Visitor returns
  // false to stop.
  template <typename Visitor>
  void ForEachQueued(Visitor&& visit) const {
    tree_.ForEach(visit);
  }

  // True if any *queued* entity may run on `cpu` (the sanity checker's
  // can_steal, and the balancer's affinity screen).
  bool HasStealableFor(CpuId cpu) const;

  // CFS timeslice for `se` on this queue: sched_latency weighted by se's
  // share of the queue's total weight, floored at min_granularity.
  Time TimesliceFor(const SchedEntity& se) const;

  // Preemption test at tick: true if curr exhausted its timeslice (and
  // someone is waiting), or leads the leftmost by more than the slice.
  bool CheckPreemptTick() const;

  // Preemption test on wakeup of `woken` onto this queue.
  bool CheckPreemptWakeup(const SchedEntity& woken, Time now) const;

  // Total raw weight of all runnable entities (used for timeslices).
  uint64_t total_weight() const { return total_weight_; }

  // Bumped whenever the set of runnable entities changes; RqLoad caching
  // keys on it (see scheduler.cc).
  uint64_t load_version() const { return load_version_; }

  // Test support: red-black invariants, queued-entity bookkeeping
  // (on_rq/running/cpu), vruntime ordering, and total_weight consistency.
  bool ValidateInvariants() const;

  // Membership observer for stateful scheduling policies (the O(1) policy
  // mirrors the queue into priority arrays). Null for the default CFS
  // policy, so the hot path pays one predictable branch per event.
  void set_observer(RqObserver* observer) { observer_ = observer; }

  // Write-through stat slots for an owner keeping structure-of-arrays
  // mirrors (the scheduler's balance folds stream over dense per-cpu arrays
  // instead of pointer-chasing runqueues). After this call, every mutation
  // of nr_running() writes `nr_slot` (adjusting `overloaded_counter` on
  // 1<->2 crossings) and every BumpLoadVersion writes `version_slot`, in
  // the same statement as the source of truth — the mirrors are exact by
  // construction, not eventually consistent. All three must outlive the
  // runqueue. Call before any entity is enqueued.
  void set_stat_slots(int* nr_slot, uint64_t* version_slot, int* overloaded_counter) {
    nr_slot_ = nr_slot;
    version_slot_ = version_slot;
    overloaded_counter_ = overloaded_counter;
    *nr_slot_ = nr_running();
    *version_slot_ = load_version_;
  }

 private:
  void UpdateMinVruntime();

  // Syncs the nr_running mirror after any change to tree size or curr.
  // Cheap enough to call unconditionally from every mutator; the overload
  // counter moves only when the queue crosses the >= 2 threshold.
  void SyncNr() {
    const int nr = nr_running();
    if ((nr >= 2) != (*nr_slot_ >= 2)) {
      *overloaded_counter_ += (nr >= 2) ? 1 : -1;
    }
    *nr_slot_ = nr;
  }

  CpuId cpu_;
  const SchedTunables* tunables_;
  RbTree<SchedEntity, &SchedEntity::rb, EntityByVruntime> tree_;
  SchedEntity* curr_ = nullptr;
  Time min_vruntime_ = 0;
  uint64_t total_weight_ = 0;
  uint64_t load_version_ = 0;
  uint64_t* shared_load_epoch_ = nullptr;
  RqObserver* observer_ = nullptr;
  // Write-through mirror slots (set_stat_slots). The scheduler installs
  // them at construction, before any entity exists; standalone runqueues
  // (unit tests) point them at the dummies so mutators stay branch-free.
  int nr_dummy_ = 0;
  uint64_t version_dummy_ = 0;
  int overloaded_dummy_ = 0;
  int* nr_slot_ = &nr_dummy_;
  uint64_t* version_slot_ = &version_dummy_;
  int* overloaded_counter_ = &overloaded_dummy_;

  void BumpLoadVersion() {
    load_version_ += 1;
    *version_slot_ = load_version_;
    if (shared_load_epoch_ != nullptr) {
      *shared_load_epoch_ += 1;
    }
  }
};

// Receives runqueue membership events. Every transition of a *queued*
// entity is reported: enqueue (with its kind), dequeue of a queued entity
// (steal, hotplug evacuation), a queued entity becoming curr, and reweight.
// The running entity leaving (block/exit) needs no event — it was already
// removed from the queued set when it was picked.
class RqObserver {
 public:
  virtual ~RqObserver() = default;
  virtual void OnRqEnqueue(Time now, CpuId cpu, SchedEntity* se,
                           CfsRunqueue::EnqueueKind kind) = 0;
  virtual void OnRqDequeue(Time now, CpuId cpu, SchedEntity* se) = 0;
  virtual void OnRqPick(Time now, CpuId cpu, SchedEntity* se) = 0;
  virtual void OnRqReweight(Time now, CpuId cpu, SchedEntity* se, int old_nice) = 0;
};

}  // namespace wcores

#endif  // SRC_CORE_CFS_RQ_H_
