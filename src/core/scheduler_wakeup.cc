// Wakeup placement (select_task_rq_fair): §2.2.2 and the Overload-on-Wakeup
// bug of §3.3.
#include <cassert>

#include "src/core/scheduler.h"

namespace wcores {

namespace {

// Total load of a node's runqueues; used by the wake_affine choice between
// the sleeper's node and the waker's node.
double NodeLoad(const Scheduler& sched, const Topology& topo, Time now, NodeId node) {
  double total = 0;
  for (CpuId c : topo.CpusOfNode(node)) {
    if (sched.IsOnline(c)) {
      total += sched.RqLoad(now, c);
    }
  }
  return total;
}

}  // namespace

CpuId Scheduler::SelectTaskRq(Time now, const SchedEntity& se, CpuId waker_cpu,
                              CpuSet* considered) {
  CpuSet allowed = se.affinity & online_;
  if (allowed.Empty()) {
    allowed = online_;  // Affinity became unsatisfiable (hotplug); break it.
  }

  // Modular scheduling (§5): an attached optimization module suggests the
  // placement, and the core arbitrates — the suggestion is taken verbatim
  // unless it breaks the work-conserving invariant (busy target while an
  // allowed core is idle), in which case the core overrides it with the
  // longest-idle core.
  if (wake_policy_ != nullptr) {
    WakeContext ctx;
    ctx.sched = this;
    ctx.entity = &se;
    ctx.waker_cpu = waker_cpu;
    ctx.now = now;
    ctx.allowed = allowed;
    CpuId suggested = wake_policy_->Suggest(ctx);
    if (suggested != kInvalidCpu && allowed.Test(suggested)) {
      considered->Set(suggested);
      if (nr_running_[suggested] != 0) {
        CpuId idle = LongestIdleCpu(allowed);
        if (idle != kInvalidCpu) {
          stats_.wake_policy_vetoes += 1;
          considered->Set(idle);
          return idle;
        }
      }
      stats_.wake_policy_suggestions += 1;
      return suggested;
    }
    // Module abstained: fall through to the built-in paths.
  }

  if (features_.fix_overload_wakeup) {
    // The paper's fix: wake on the local core — where the thread ran last —
    // if idle; otherwise on the core that has been idle the longest (the
    // head of the kernel's idle-core list, a constant-time pick); otherwise
    // fall back to the original algorithm.
    if (se.cpu != kInvalidCpu && allowed.Test(se.cpu) && nr_running_[se.cpu] == 0) {
      considered->Set(se.cpu);
      return se.cpu;
    }
    CpuId longest = LongestIdleCpu(allowed);
    if (longest != kInvalidCpu) {
      // The trace records every allowed idle core as considered; walk the
      // idle index (exactly the online idle cpus) instead of re-scanning
      // the whole machine for them.
      for (NodeId n = 0; n < topo_->n_nodes(); ++n) {
        for (CpuId c = idle_head_[n]; c != kInvalidCpu; c = idle_next_[c]) {
          if (allowed.Test(c)) {
            considered->Set(c);
          }
        }
      }
      return longest;
    }
  }
  return SelectTaskRqStock(now, se, waker_cpu, considered);
}

CpuId Scheduler::SelectTaskRqStock(Time now, const SchedEntity& se, CpuId waker_cpu,
                                   CpuSet* considered) {
  CpuSet allowed = se.affinity & online_;
  if (allowed.Empty()) {
    allowed = online_;
  }

  CpuId prev = se.cpu;
  if (prev == kInvalidCpu || !online_.Test(prev)) {
    prev = allowed.First();
  }
  NodeId prev_node = topo_->NodeOf(prev);
  NodeId waker_node = waker_cpu != kInvalidCpu ? topo_->NodeOf(waker_cpu) : prev_node;

  // wake_affine: choose between the node the thread slept on and the node
  // of the waker; favour the less loaded one (ties keep the sleeper's node).
  NodeId target_node = prev_node;
  if (waker_node != prev_node) {
    if (NodeLoad(*this, *topo_, now, waker_node) < NodeLoad(*this, *topo_, now, prev_node)) {
      target_node = waker_node;
    }
  }

  // select_idle_sibling: "the scheduler only considers the cores of Node X
  // for scheduling the awakened thread" — this node-local search is the
  // Overload-on-Wakeup bug when every core of the node is busy while other
  // nodes have idle cores.
  CpuSet candidates = topo_->CpusOfNode(target_node) & allowed;
  if (candidates.Empty()) {
    NodeId other = target_node == prev_node ? waker_node : prev_node;
    candidates = topo_->CpusOfNode(other) & allowed;
  }
  if (candidates.Empty()) {
    // Pinned entirely outside both nodes; fall back to the affinity mask.
    candidates = allowed;
  }
  *considered |= candidates;

  // Prefer the core the thread last ran on, for cache reuse.
  if (candidates.Test(prev) && nr_running_[prev] == 0) {
    return prev;
  }
  // Any idle core of the node.
  for (CpuId c : candidates) {
    if (nr_running_[c] == 0) {
      return c;
    }
  }
  // All cores of the node are busy: wake on the least loaded one anyway.
  CpuId best = kInvalidCpu;
  int best_nr = 0;
  double best_load = 0;
  for (CpuId c : candidates) {
    int nr = nr_running_[c];
    double load = RqLoad(now, c);
    if (best == kInvalidCpu || nr < best_nr || (nr == best_nr && load < best_load)) {
      best = c;
      best_nr = nr;
      best_load = load;
    }
  }
  assert(best != kInvalidCpu);
  return best;
}

}  // namespace wcores
